// Command gemstoned is the GemStone campaign worker daemon: it serves the
// internal/dist wire protocol, executing simulation jobs a coordinator
// (gemstone -workers) ships to it. Every platform the repo models is
// available — the coordinator names one by spec + configuration
// fingerprint and the daemon rebuilds it locally, so both binaries must
// model the same machine for a job to be accepted.
//
// When a job arrives carrying a recording trace context (coordinator
// run with -trace, or `gemstone serve -trace-campaigns`), the worker
// records spans for its phases — dispatch receive, cache probe,
// simulate, encode — and returns them with the result; the coordinator
// stitches them, clock-offset corrected, into the fleet-wide campaign
// trace. Without a recording context the daemon records nothing.
//
// Usage:
//
//	gemstoned [flags]
//
//	-listen       host:port  job endpoint                  (default :9177)
//	-max-parallel N          concurrent simulations        (default GOMAXPROCS)
//	-metrics-addr host:port  serve Prometheus /metrics, /debug/pprof and
//	                         /healthz while running
//	-log-format   text|json  structured-log output format  (default text)
//
// SIGINT drains in-flight jobs and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"time"

	"gemstone/internal/dist"
	"gemstone/internal/obs"
)

func main() {
	listen := flag.String("listen", ":9177", "serve the worker protocol on this host:port")
	maxParallel := flag.Int("max-parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/pprof and /healthz on this host:port")
	logFormat := flag.String("log-format", obs.LogText, "log output format (text|json)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemstoned:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg)
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			logger.Error("metrics listener failed", "err", err)
			os.Exit(1)
		}
		defer srv.Close()
		logger.Info("metrics listening", "addr", srv.Addr())
	}

	worker := dist.NewWorker(dist.WorkerConfig{
		MaxParallel: *maxParallel,
		Registry:    reg,
		Log:         logger,
	})
	server := &http.Server{Addr: *listen, Handler: worker.Handler()}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		logger.Info("draining", "runs", worker.Runs())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = server.Shutdown(shutdownCtx)
	}()

	logger.Info("worker listening", "addr", *listen,
		"capacity", worker.Capacity(), "proto", dist.ProtoVersion)
	if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("worker server failed", "err", err)
		os.Exit(1)
	}
	logger.Info("worker stopped", "runs", worker.Runs())
}
