// Command gemwatch is GemStone's result-drift watchdog. It compares the
// newest entry of a results ledger (written by gemstone -ledger) against
// a committed baseline ledger and fails when the results moved:
//
//   - headline MPE/MAPE outside a tolerance band (in percentage points),
//   - power-model R² degradation or MAPE movement,
//   - lmbench latency divergence,
//   - per-workload PE deltas flagged as robust (MAD-based) outliers,
//     reported by the baseline's HCA cluster so a shifted workload family
//     is named, not just counted,
//   - workload-set mismatches (missing or new workloads).
//
// Usage:
//
//	gemwatch [flags]
//
//	-ledger   file   results ledger to check   (default ledger.jsonl)
//	-baseline file   blessed baseline ledger   (default baselines/ledger.jsonl)
//	-html     file   also write a self-contained HTML drift report
//	-tol-mpe  pp     headline MPE tolerance    (default 2)
//	-tol-mape pp     headline MAPE tolerance   (default 2)
//	-tol-r2   d      allowed power R² drop     (default 0.01)
//	-pe-floor pp     min |ΔPE| to flag a workload outlier (default 5)
//	-mad-k    k      robust z-score outlier threshold     (default 3.5)
//
// Beyond model accuracy, gemwatch also watches service-level SLOs:
// -bench-serve compares a gemload bench export (latency percentiles
// and throughput per op class) against the committed BENCH_serve.json
// baseline, direction-aware — latency up or throughput down beyond
// -tol-serve-pct is drift, improvements never are. The rows join the
// headline table. When only the serve comparison is wanted (no result
// ledger on disk, e.g. in a load-test CI job), gemwatch degrades to a
// serve-only report instead of failing:
//
//	-bench-serve file       current gemload bench export
//	-bench-serve-base file  committed baseline (default BENCH_serve.json)
//	-tol-serve-pct pct      allowed SLO regression percent (default 25)
//
// The atomic fidelity tier has its own contract: -bench-atomic compares
// a `scripts/bench.sh -atomic` export (the detailed-vs-atomic Collect
// pair) against the committed BENCH_atomic.json the same way, and
// additionally requires the current detailed/atomic per-op speedup to
// stay above -min-atomic-speedup — the fast path must remain a real
// multiple of the detailed tier, not merely avoid drifting. These rows
// join the headline table and the serve-only degrade path alike:
//
//	-bench-atomic file       current atomic-tier bench export
//	-bench-atomic-base file  committed baseline (default BENCH_atomic.json)
//	-min-atomic-speedup x    required detailed/atomic speedup (default 5)
//
// Exit status: 0 when the latest entry is within tolerance, 1 on drift,
// 2 on usage or I/O errors (missing ledgers, no valid entries).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gemstone"
	"gemstone/internal/ledger"
	"gemstone/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gemwatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ledgerPath := fs.String("ledger", "ledger.jsonl", "results ledger to check (newest entry is compared)")
	basePath := fs.String("baseline", "baselines/ledger.jsonl", "blessed baseline ledger (oldest entry is the reference)")
	htmlPath := fs.String("html", "", "also write a self-contained HTML drift report to this file")
	tolMPE := fs.Float64("tol-mpe", 0, "headline MPE tolerance in percentage points (0 = default 2)")
	tolMAPE := fs.Float64("tol-mape", 0, "headline MAPE tolerance in percentage points (0 = default 2)")
	tolR2 := fs.Float64("tol-r2", 0, "allowed power-model R² degradation (0 = default 0.01)")
	peFloor := fs.Float64("pe-floor", 0, "minimum |ΔPE| in pp to flag a workload outlier (0 = default 5)")
	madK := fs.Float64("mad-k", 0, "robust z-score threshold for workload outliers (0 = default 3.5)")
	benchServe := fs.String("bench-serve", "", "current serve bench export (gemload -bench-out) to compare")
	benchServeBase := fs.String("bench-serve-base", "BENCH_serve.json", "committed serve bench baseline")
	tolServePct := fs.Float64("tol-serve-pct", 0, "allowed serve SLO regression percent (0 = default 25)")
	benchAtomic := fs.String("bench-atomic", "", "current atomic-tier bench export (scripts/bench.sh -atomic) to compare")
	benchAtomicBase := fs.String("bench-atomic-base", "BENCH_atomic.json", "committed atomic-tier bench baseline")
	minSpeedup := fs.Float64("min-atomic-speedup", 0, "required detailed/atomic per-op speedup (0 = default 5)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var serveRows []ledger.HeadlineDrift
	var serveNotes []string
	if *benchServe != "" {
		baseBench, err := ledger.LoadBenchMetrics(*benchServeBase)
		if err != nil {
			fmt.Fprintln(stderr, "gemwatch:", err)
			return 2
		}
		curBench, err := ledger.LoadBenchMetrics(*benchServe)
		if err != nil {
			fmt.Fprintln(stderr, "gemwatch:", err)
			return 2
		}
		serveRows, serveNotes = ledger.CompareServeBench(baseBench, curBench, *tolServePct)
	}
	if *benchAtomic != "" {
		baseBench, err := ledger.LoadBenchMetrics(*benchAtomicBase)
		if err != nil {
			fmt.Fprintln(stderr, "gemwatch:", err)
			return 2
		}
		curBench, err := ledger.LoadBenchMetrics(*benchAtomic)
		if err != nil {
			fmt.Fprintln(stderr, "gemwatch:", err)
			return 2
		}
		rows, notes := ledger.CompareServeBench(baseBench, curBench, *tolServePct)
		serveRows = append(serveRows, rows...)
		serveNotes = append(serveNotes, notes...)

		// Speedup floor: the row's Base is the committed baseline's own
		// ratio (for context), Tolerance is the floor, and the breach is
		// absolute — a current ratio under the floor fails even if the
		// baseline had already sagged.
		cur, err := atomicSpeedup(curBench)
		if err != nil {
			fmt.Fprintf(stderr, "gemwatch: %s: %v\n", *benchAtomic, err)
			return 2
		}
		base, err := atomicSpeedup(baseBench)
		if err != nil {
			fmt.Fprintf(stderr, "gemwatch: %s: %v\n", *benchAtomicBase, err)
			return 2
		}
		floor := *minSpeedup
		if floor <= 0 {
			floor = 5
		}
		serveRows = append(serveRows, ledger.HeadlineDrift{
			Name:      "atomic_speedup_x",
			Base:      base,
			Cur:       cur,
			Delta:     cur - base,
			Tolerance: floor,
			Breach:    cur < floor,
		})
	}

	// benchOnly: a bench comparison (serve SLOs or the atomic tier) was
	// requested, so a missing result ledger degrades to a bench-only
	// report instead of failing — the load-test and bench CI jobs have
	// no ledger on disk.
	benchOnly := *benchServe != "" || *benchAtomic != ""

	// serveOnly renders a report carrying just the bench rows.
	serveOnly := func(why string) int {
		fmt.Fprintf(stderr, "gemwatch: %s; bench comparison only\n", why)
		basePlat, curPlat := *benchServeBase, *benchServe
		if *benchServe == "" {
			basePlat, curPlat = *benchAtomicBase, *benchAtomic
		}
		r := &ledger.DriftReport{
			BasePlatform:  basePlat,
			CurPlatform:   curPlat,
			Headlines:     serveRows,
			ManifestNotes: serveNotes,
		}
		for _, h := range serveRows {
			r.Drift = r.Drift || h.Breach
		}
		fmt.Fprint(stdout, report.Drift(r))
		if r.Drift {
			return 1
		}
		return 0
	}

	base, ok, err := gemstone.OpenLedger(*basePath).Baseline()
	if err != nil {
		if benchOnly {
			return serveOnly(fmt.Sprintf("no baseline ledger (%v)", err))
		}
		fmt.Fprintln(stderr, "gemwatch:", err)
		return 2
	}
	if !ok {
		if benchOnly {
			return serveOnly(fmt.Sprintf("no valid baseline entries in %s", *basePath))
		}
		fmt.Fprintf(stderr, "gemwatch: no valid baseline entries in %s\n", *basePath)
		return 2
	}
	scan, err := gemstone.OpenLedger(*ledgerPath).Scan()
	if err != nil {
		if benchOnly {
			return serveOnly(fmt.Sprintf("no results ledger (%v)", err))
		}
		fmt.Fprintln(stderr, "gemwatch:", err)
		return 2
	}
	if scan.Skipped > 0 {
		fmt.Fprintf(stderr, "gemwatch: skipped %d corrupt or incompatible ledger lines\n", scan.Skipped)
	}
	if len(scan.Entries) == 0 {
		if benchOnly {
			return serveOnly(fmt.Sprintf("no valid entries in %s", *ledgerPath))
		}
		fmt.Fprintf(stderr, "gemwatch: no valid entries in %s (run gemstone -ledger %s first)\n",
			*ledgerPath, *ledgerPath)
		return 2
	}
	cur := scan.Entries[len(scan.Entries)-1]

	r := gemstone.CompareLedgerEntries(base, cur, gemstone.DriftOptions{
		MPETolerancePP:  *tolMPE,
		MAPETolerancePP: *tolMAPE,
		R2Tolerance:     *tolR2,
		PEFloorPP:       *peFloor,
		OutlierZ:        *madK,
	})
	// The serve SLO rows join the headline table and the verdict.
	r.Headlines = append(r.Headlines, serveRows...)
	r.ManifestNotes = append(r.ManifestNotes, serveNotes...)
	for _, h := range serveRows {
		r.Drift = r.Drift || h.Breach
	}
	fmt.Fprint(stdout, report.Drift(r))

	if *htmlPath != "" {
		// History for the sparklines: the baseline first, then every valid
		// ledger entry in append order.
		history := append([]ledger.Entry{base}, scan.Entries...)
		html, err := report.DriftHTML(r, history)
		if err != nil {
			fmt.Fprintln(stderr, "gemwatch:", err)
			return 2
		}
		if err := os.WriteFile(*htmlPath, []byte(html), 0o644); err != nil {
			fmt.Fprintln(stderr, "gemwatch:", err)
			return 2
		}
		fmt.Fprintf(stdout, "drift report written to %s\n", *htmlPath)
	}

	if r.Drift {
		return 1
	}
	return 0
}

// atomicSpeedup returns the detailed/atomic per-op time ratio from a
// bench export produced by scripts/bench.sh -atomic. go-bench names
// carry a -GOMAXPROCS suffix, so the pair is matched on the name up to
// the first dash.
func atomicSpeedup(ms []ledger.BenchMetric) (float64, error) {
	var det, atom float64
	for _, m := range ms {
		name, _, _ := strings.Cut(m.Name, "-")
		switch name {
		case "BenchmarkCollect_ColdCache":
			det = m.Value
		case "BenchmarkCollect_ColdCacheAtomic":
			atom = m.Value
		}
	}
	if det <= 0 || atom <= 0 {
		return 0, fmt.Errorf("export lacks the BenchmarkCollect_ColdCache / BenchmarkCollect_ColdCacheAtomic pair")
	}
	return det / atom, nil
}
