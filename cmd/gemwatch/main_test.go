package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gemstone/internal/ledger"
)

// entry fabricates a ledger record with the given model fingerprint and
// headline MPE; per-workload PEs are centred on the headline.
func entry(model string, mpe float64, pes map[string]float64) ledger.Entry {
	e := ledger.Entry{
		Manifest: ledger.RunManifest{
			Schema:           ledger.SchemaVersion,
			HWPlatform:       "odroid-xu3",
			ModelPlatform:    "gem5-ex5-" + model,
			HWFingerprint:    "hw-fp",
			ModelFingerprint: "model-fp-" + model,
			Cluster:          "a15",
			FreqMHz:          1000,
		},
		Results: ledger.Results{
			Cluster: "a15", FreqMHz: 1000,
			MAPE: mpe * -1, MPE: mpe,
		},
	}
	label := 0
	for wl, pe := range pes {
		e.Results.Workloads = append(e.Results.Workloads,
			ledger.WorkloadResult{Workload: wl, HCACluster: label % 2, PE: pe})
		label++
	}
	return e
}

func writeLedger(t *testing.T, path string, entries ...ledger.Entry) {
	t.Helper()
	st := ledger.Open(path)
	for _, e := range entries {
		if err := st.Append(e); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunNoDrift(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.jsonl")
	curPath := filepath.Join(dir, "ledger.jsonl")
	pes := map[string]float64{"w1": -50, "w2": -52, "w3": -48}
	writeLedger(t, basePath, entry("v1", -51, pes))
	writeLedger(t, curPath, entry("v1", -50.5, pes))

	var out, errb bytes.Buffer
	code := run([]string{"-ledger", curPath, "-baseline", basePath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "OK — within tolerance") {
		t.Fatalf("verdict missing:\n%s", out.String())
	}
}

func TestRunDetectsDriftAndWritesHTML(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.jsonl")
	curPath := filepath.Join(dir, "ledger.jsonl")
	htmlPath := filepath.Join(dir, "drift.html")
	// The Section VII swing: v1's branch-predictor bug vs the v2 fix.
	writeLedger(t, basePath, entry("v1", -51.7,
		map[string]float64{"w1": -50, "w2": -52, "w3": -48, "w4": -494}))
	writeLedger(t, curPath,
		entry("v1", -51.7, map[string]float64{"w1": -50, "w2": -52, "w3": -48, "w4": -494}),
		entry("v2", 10.2, map[string]float64{"w1": 9, "w2": 11, "w3": 10, "w4": -30}))

	var out, errb bytes.Buffer
	code := run([]string{"-ledger", curPath, "-baseline", basePath, "-html", htmlPath}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (drift). stderr: %s", code, errb.String())
	}
	for _, want := range []string{"DRIFT DETECTED", "MPE", "fingerprint changed"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, out.String())
		}
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!doctype html", "Drift detected", "polyline"} {
		if !strings.Contains(string(html), want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
}

func TestRunMissingLedgers(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{
		"-ledger", filepath.Join(dir, "none.jsonl"),
		"-baseline", filepath.Join(dir, "nobase.jsonl"),
	}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no valid baseline entries") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestRunToleratesCorruptLines(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.jsonl")
	curPath := filepath.Join(dir, "ledger.jsonl")
	pes := map[string]float64{"w1": -50}
	writeLedger(t, basePath, entry("v1", -51, pes))
	writeLedger(t, curPath, entry("v1", -51, pes))
	// A writer died mid-append: the watchdog must still compare the last
	// complete record.
	f, err := os.OpenFile(curPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"manifest":{"schema":1,"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out, errb bytes.Buffer
	code := run([]string{"-ledger", curPath, "-baseline", basePath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "skipped 1 corrupt") {
		t.Fatalf("corruption warning missing: %s", errb.String())
	}
}

// serveBenchFile writes a BENCH_serve.json-shaped export.
func serveBenchFile(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunServeBenchAlongsideLedger(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.jsonl")
	curPath := filepath.Join(dir, "ledger.jsonl")
	pes := map[string]float64{"w1": -50, "w2": -52, "w3": -48}
	writeLedger(t, basePath, entry("v1", -51, pes))
	writeLedger(t, curPath, entry("v1", -50.5, pes))

	baseBench := serveBenchFile(t, dir, "base.json",
		`[{"name":"serve/cold/p99_ms","value":100,"unit":"ms"},
		  {"name":"serve/cold/rps","value":50,"unit":"rps"}]`)
	// Within tolerance: exit 0, serve rows in the headline table.
	okBench := serveBenchFile(t, dir, "ok.json",
		`[{"name":"serve/cold/p99_ms","value":110,"unit":"ms"},
		  {"name":"serve/cold/rps","value":48,"unit":"rps"}]`)
	var out, errb bytes.Buffer
	code := run([]string{"-ledger", curPath, "-baseline", basePath,
		"-bench-serve", okBench, "-bench-serve-base", baseBench}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "serve/cold/p99_ms") {
		t.Fatalf("serve rows missing from headline table:\n%s", out.String())
	}

	// A latency regression beyond tolerance drifts even when the model
	// accuracy is clean.
	badBench := serveBenchFile(t, dir, "bad.json",
		`[{"name":"serve/cold/p99_ms","value":200,"unit":"ms"},
		  {"name":"serve/cold/rps","value":50,"unit":"rps"}]`)
	out.Reset()
	errb.Reset()
	code = run([]string{"-ledger", curPath, "-baseline", basePath,
		"-bench-serve", badBench, "-bench-serve-base", baseBench}, &out, &errb)
	if code != 1 {
		t.Fatalf("serve regression: exit = %d, want 1\nstdout: %s", code, out.String())
	}
}

func TestRunServeBenchWithoutLedger(t *testing.T) {
	dir := t.TempDir()
	baseBench := serveBenchFile(t, dir, "base.json",
		`[{"name":"serve/warm/p50_ms","value":10,"unit":"ms"}]`)
	curBench := serveBenchFile(t, dir, "cur.json",
		`[{"name":"serve/warm/p50_ms","value":11,"unit":"ms"}]`)

	// No ledgers anywhere: the serve comparison still runs, degraded to
	// a serve-only report.
	var out, errb bytes.Buffer
	code := run([]string{
		"-ledger", filepath.Join(dir, "missing.jsonl"),
		"-baseline", filepath.Join(dir, "missing-base.jsonl"),
		"-bench-serve", curBench, "-bench-serve-base", baseBench}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "serve/warm/p50_ms") {
		t.Fatalf("serve row missing:\n%s", out.String())
	}

	// Same, with a breach: exit 1.
	badBench := serveBenchFile(t, dir, "bad.json",
		`[{"name":"serve/warm/p50_ms","value":100,"unit":"ms"}]`)
	out.Reset()
	errb.Reset()
	code = run([]string{
		"-ledger", filepath.Join(dir, "missing.jsonl"),
		"-baseline", filepath.Join(dir, "missing-base.jsonl"),
		"-bench-serve", badBench, "-bench-serve-base", baseBench}, &out, &errb)
	if code != 1 {
		t.Fatalf("serve-only regression: exit = %d, want 1\nstdout: %s", code, out.String())
	}

	// A missing baseline file is still a hard usage error.
	out.Reset()
	errb.Reset()
	code = run([]string{"-bench-serve", curBench,
		"-bench-serve-base", filepath.Join(dir, "nope.json")}, &out, &errb)
	if code != 2 {
		t.Fatalf("missing bench baseline: exit = %d, want 2", code)
	}
}

// TestRunAtomicBench pins the atomic-tier watchdog: the committed
// baseline pair is compared like any bench export, plus an absolute
// speedup floor on the current detailed/atomic ratio — and like the
// serve comparison it degrades to a bench-only report with no ledger.
func TestRunAtomicBench(t *testing.T) {
	dir := t.TempDir()
	baseBench := serveBenchFile(t, dir, "base.json",
		`[{"name":"BenchmarkCollect_ColdCache-8","ns_per_op":2850000000},
		  {"name":"BenchmarkCollect_ColdCacheAtomic-8","ns_per_op":256000000}]`)
	// Healthy: ~11x, comfortably above the floor and within drift bands.
	okBench := serveBenchFile(t, dir, "ok.json",
		`[{"name":"BenchmarkCollect_ColdCache-8","ns_per_op":2900000000},
		  {"name":"BenchmarkCollect_ColdCacheAtomic-8","ns_per_op":260000000}]`)
	missing := []string{
		"-ledger", filepath.Join(dir, "missing.jsonl"),
		"-baseline", filepath.Join(dir, "missing-base.jsonl"),
	}
	var out, errb bytes.Buffer
	code := run(append(missing, "-bench-atomic", okBench, "-bench-atomic-base", baseBench), &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "atomic_speedup_x") {
		t.Fatalf("speedup row missing:\n%s", out.String())
	}

	// The atomic tier slowed to 2x: within generic drift tolerance of
	// nothing in particular, but under the speedup floor — drift.
	slowBench := serveBenchFile(t, dir, "slow.json",
		`[{"name":"BenchmarkCollect_ColdCache-8","ns_per_op":2850000000},
		  {"name":"BenchmarkCollect_ColdCacheAtomic-8","ns_per_op":1425000000}]`)
	out.Reset()
	errb.Reset()
	code = run(append(missing, "-bench-atomic", slowBench, "-bench-atomic-base", baseBench, "-tol-serve-pct", "10000"), &out, &errb)
	if code != 1 {
		t.Fatalf("sub-floor speedup: exit = %d, want 1\nstdout: %s", code, out.String())
	}

	// An export without the pair is a usage error.
	halfBench := serveBenchFile(t, dir, "half.json",
		`[{"name":"BenchmarkCollect_ColdCache-8","ns_per_op":2850000000}]`)
	out.Reset()
	errb.Reset()
	code = run(append(missing, "-bench-atomic", halfBench, "-bench-atomic-base", baseBench), &out, &errb)
	if code != 2 {
		t.Fatalf("half export: exit = %d, want 2", code)
	}
}
