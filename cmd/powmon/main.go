// Command powmon builds and validates the empirical PMC-based power models
// of the paper's Section V: it runs the power-characterisation experiments
// (all 65 workloads across the cluster's DVFS points on the reference
// board), selects PMC events with constrained forward-stepwise regression,
// fits the model, reports the quality statistics, and prints the run-time
// power equation that can be inserted into gem5.
//
// Usage:
//
//	powmon [-cluster a15|a7] [-pool restricted|full] [-maxevents N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"gemstone"
	"gemstone/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powmon: ")

	cluster := flag.String("cluster", gemstone.ClusterA15, "cluster to model (a7|a15)")
	pool := flag.String("pool", "restricted", "candidate event pool: restricted (gem5-compatible) or full")
	maxEvents := flag.Int("maxevents", 0, "cap on selected events (0 = p-value rule only)")
	flag.Parse()

	opt := gemstone.PowerBuildOptions{MaxEvents: *maxEvents}
	switch *pool {
	case "restricted":
		opt.Pool = gemstone.RestrictedPool()
	case "full":
		opt.Pool = gemstone.DefaultPool()
	default:
		log.Fatalf("unknown pool %q (want restricted|full)", *pool)
	}

	// Experiments 3/4: every workload (including the Longbottom/LMbench
	// stressors) at every DVFS point, with power sensing.
	log.Printf("characterising %s power across %d workloads x %d DVFS points...",
		*cluster, len(gemstone.Workloads()), len(gemstone.ExperimentFrequencies(*cluster)))
	runs, err := gemstone.Collect(context.Background(), gemstone.HardwarePlatform(), gemstone.CollectOptions{
		Workloads: gemstone.Workloads(),
		Clusters:  []string{*cluster},
	})
	if err != nil {
		log.Fatal(err)
	}

	model, err := gemstone.BuildPowerModel(runs, *cluster, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.PowerModel(model))
	fmt.Println("\nmodel form:")
	fmt.Println("  " + model.String())
	fmt.Println("\nrun-time gem5 power equation:")
	fmt.Println("  " + model.Equation(gemstone.DefaultMapping()))
}
