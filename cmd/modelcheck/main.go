// Command modelcheck is the regression gate the paper motivates in
// Section VII: "a researcher would see very different results for their
// study depending on when they downloaded gem5 ... GemStone can be run
// after a change has been made to the simulator to verify the model
// behaviour against the HW reference (i.e. ensuring no major bugs have
// been introduced)."
//
// It validates a gem5 model version against the hardware reference and
// exits non-zero if the execution-time error exceeds the given bounds, so
// it can gate a CI pipeline.
//
// Usage:
//
//	modelcheck [-cluster a15|a7] [-version 1|2]
//	           [-max-mape pct] [-max-abs-mpe pct] [-workloads N]
//	           [-log-format text|json]
//
// Example: `modelcheck -version 2 -max-mape 25 -max-abs-mpe 20` passes for
// the fixed model and fails (exit 1) for the buggy one. In CI, pass
// -log-format json for machine-readable progress lines; the PASS/FAIL
// verdict itself goes to stdout either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"gemstone"
	"gemstone/internal/obs"
	"gemstone/internal/report"
)

func main() {
	cluster := flag.String("cluster", gemstone.ClusterA15, "cluster to validate (a7|a15)")
	version := flag.Int("version", 1, "gem5 model version (1|2)")
	maxMAPE := flag.Float64("max-mape", 25, "fail if MAPE exceeds this percentage")
	maxAbsMPE := flag.Float64("max-abs-mpe", 20, "fail if |MPE| exceeds this percentage")
	nWorkloads := flag.Int("workloads", 0, "limit to the first N validation workloads (0 = all)")
	logFormat := flag.String("log-format", obs.LogText, "log output format (text|json)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(2)
	}
	fatal := func(err error) {
		logger.Error("modelcheck failed", "err", err)
		os.Exit(1)
	}

	ver := gemstone.V1
	if *version == 2 {
		ver = gemstone.V2
	}
	profiles := gemstone.ValidationWorkloads()
	if *nWorkloads > 0 && *nWorkloads < len(profiles) {
		profiles = profiles[:*nWorkloads]
	}
	opt := func() gemstone.CollectOptions {
		return gemstone.CollectOptions{Workloads: profiles, Clusters: []string{*cluster}}
	}

	logger.Info("validating gem5 against the hardware reference",
		"version", fmt.Sprint(ver), "cluster", *cluster)
	hwRuns, err := gemstone.Collect(context.Background(), gemstone.HardwarePlatform(), opt())
	if err != nil {
		fatal(err)
	}
	simRuns, err := gemstone.Collect(context.Background(), gemstone.Gem5Platform(ver), opt())
	if err != nil {
		fatal(err)
	}
	vs, err := gemstone.Validate(hwRuns, simRuns, *cluster)
	if err != nil {
		fatal(err)
	}
	fmt.Print(report.ValidationSummary(fmt.Sprintf("modelcheck gem5 %v", ver), vs))

	ok := true
	if vs.MAPE > *maxMAPE {
		fmt.Printf("FAIL: MAPE %.1f%% exceeds bound %.1f%%\n", vs.MAPE, *maxMAPE)
		ok = false
	}
	abs := vs.MPE
	if abs < 0 {
		abs = -abs
	}
	if abs > *maxAbsMPE {
		fmt.Printf("FAIL: |MPE| %.1f%% exceeds bound %.1f%%\n", abs, *maxAbsMPE)
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Printf("PASS: within bounds (MAPE <= %.1f%%, |MPE| <= %.1f%%)\n", *maxMAPE, *maxAbsMPE)
}
