// Command eventdiag reports, for each event of a power model, how
// accurately the gem5 model reproduces the hardware PMC rate — the
// per-event rate/total MAPEs shown in the legend of the paper's Fig. 7.
// It is the tool a user runs to decide which events to exclude from the
// power-model selection pool (Section V's restriction step).
//
// Usage:
//
//	eventdiag [-cluster a15|a7] [-freq MHz] [-version 1|2] [-pool restricted|full]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"gemstone"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eventdiag: ")

	cluster := flag.String("cluster", gemstone.ClusterA15, "cluster (a7|a15)")
	freq := flag.Int("freq", 1000, "comparison frequency in MHz")
	version := flag.Int("version", 1, "gem5 model version (1|2)")
	pool := flag.String("pool", "restricted", "candidate pool: restricted|full")
	flag.Parse()

	ver := gemstone.V1
	if *version == 2 {
		ver = gemstone.V2
	}
	opt := gemstone.PowerBuildOptions{}
	switch *pool {
	case "restricted":
		opt.Pool = gemstone.RestrictedPool()
	case "full":
		opt.Pool = gemstone.DefaultPool()
	default:
		log.Fatalf("unknown pool %q", *pool)
	}

	log.Println("power characterisation (65 workloads)...")
	hwRuns, err := gemstone.Collect(context.Background(), gemstone.HardwarePlatform(), gemstone.CollectOptions{
		Workloads: gemstone.Workloads(), Clusters: []string{*cluster}})
	if err != nil {
		log.Fatal(err)
	}
	model, err := gemstone.BuildPowerModel(hwRuns, *cluster, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s\n(training MAPE %.2f%%, adj R2 %.4f)\n\n",
		model.String(), model.Quality.MAPE, model.Quality.AdjR2)

	log.Printf("running gem5 %v at %d MHz...", ver, *freq)
	simRuns, err := gemstone.Collect(context.Background(), gemstone.Gem5Platform(ver), gemstone.CollectOptions{
		Clusters: []string{*cluster}, Freqs: map[string][]int{*cluster: {*freq}}})
	if err != nil {
		log.Fatal(err)
	}

	mapping := gemstone.DefaultMapping()
	rel, err := gemstone.AssessEventReliability(hwRuns, simRuns, *cluster, *freq, mapping, model.Events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12s %12s\n", "event", "rate MAPE", "total MAPE")
	for _, r := range rel {
		fmt.Printf("%-28s %11.1f%% %11.1f%%\n", r.Event.String(), r.RateMAPE, r.TotalMAPE)
	}

	// The Fig. 1 feedback loop, automated: which candidates survive?
	kept, excluded, err := gemstone.DeriveEventRestraints(hwRuns, simRuns, *cluster, *freq,
		mapping, opt.Pool, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nautomated restraints (rate MAPE > 60%% or unmappable): %d kept, %d excluded\n",
		len(kept), len(excluded))
	for _, e := range excluded {
		fmt.Printf("  excluded: %s\n", e)
	}
}
