// Command gemload is GemStone's service load generator: it replays a
// mix of cold campaigns, warm-cache resubmissions, SSE event
// subscribers and analysis reads against a gemstone serve endpoint
// (or an in-process fleet it boots itself), measures every request
// end-to-end into HDR latency histograms, and reconciles the
// client-observed SLOs against the server's own gemstone_serve_*
// metrics so both sides of the wire agree on what happened.
//
// Two scheduling modes:
//
//   - closed loop (default): -concurrency slots issue back-to-back,
//     so offered load adapts to service speed;
//   - open loop (-rate R): arrivals follow a Poisson process at R/s
//     and latency is measured from each intended arrival instant, so
//     a saturated service shows queueing delay instead of silently
//     thinning the load (no coordinated omission).
//
// Tenant and replay-target selection are Zipf-skewed (-skew), spec
// size is -invoke workloads per campaign — the skew/invokeLength/
// totalTime knobs of serverless load generators like ReqBench, aimed
// at a simulation campaign service.
//
// Usage:
//
//	gemload [flags]
//
//	-target URL      load an existing gemstone serve endpoint
//	-fleet N         boot an in-process fleet with N workers instead
//	-duration D      offered-load window              (default 5s)
//	-rate R          open-loop arrival rate per second (0 = closed loop)
//	-concurrency N   request slots                    (default 4)
//	-tenants N       tenant namespaces                (default 3)
//	-skew S          Zipf exponent for tenant/replay skew (default 1.1)
//	-invoke K        workloads per campaign spec      (default 1)
//	-mix SPEC        op weights, e.g. cold=1,warm=3,events=3,analysis=3
//	-seed N          RNG seed                         (default 1)
//	-tol F           latency reconciliation relative tolerance (default 0.35)
//	-tol-abs-ms MS   latency reconciliation absolute slack     (default 250)
//	-out FILE        write the full JSON report
//	-bench-out FILE  write bench metrics (BENCH_serve.json shape)
//	-kill-every D    fleet mode: kill a worker every D (chaos soak)
//	-chaos           fleet mode: inject drops/duplicates/corruption
//	-max-campaigns N fleet mode: admission bound (default 2×concurrency)
//	-tenant-quota N  fleet mode: per-tenant bound  (default unlimited)
//	-q               suppress the human report on stdout
//
// Exit status: 0 when every reconciliation check passes and no
// campaign failed, 1 on an SLO/reconciliation failure, 2 on usage or
// setup errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gemstone/internal/dist"
	"gemstone/internal/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// parseMix decodes "cold=1,warm=3,events=3,analysis=3"; omitted ops
// weigh zero, an empty spec means the default mix.
func parseMix(spec string) (load.Mix, error) {
	var m load.Mix
	if spec == "" {
		return m, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("mix: %q is not op=weight", part)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("mix: bad weight %q for %q", v, k)
		}
		switch k {
		case "cold":
			m.Cold = w
		case "warm":
			m.Warm = w
		case "events":
			m.Events = w
		case "analysis":
			m.Analysis = w
		default:
			return m, fmt.Errorf("mix: unknown op %q (cold, warm, events, analysis)", k)
		}
	}
	if m == (load.Mix{}) {
		return m, fmt.Errorf("mix: all weights zero")
	}
	return m, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gemload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", "", "gemstone serve endpoint to load (mutually exclusive with -fleet)")
	fleetN := fs.Int("fleet", 0, "boot an in-process fleet with this many workers")
	duration := fs.Duration("duration", 5*time.Second, "offered-load window")
	rate := fs.Float64("rate", 0, "open-loop Poisson arrival rate per second (0 = closed loop)")
	concurrency := fs.Int("concurrency", 4, "request slots")
	tenants := fs.Int("tenants", 3, "tenant namespaces the load spreads over")
	skew := fs.Float64("skew", 1.1, "Zipf exponent for tenant and replay-target selection")
	invoke := fs.Int("invoke", 1, "workloads per campaign spec")
	mixSpec := fs.String("mix", "", "op weights, e.g. cold=1,warm=3,events=3,analysis=3")
	seed := fs.Uint64("seed", 1, "RNG seed")
	tol := fs.Float64("tol", 0.35, "latency reconciliation relative tolerance")
	tolAbsMs := fs.Float64("tol-abs-ms", 250, "latency reconciliation absolute slack in ms")
	outPath := fs.String("out", "", "write the full JSON report to this file")
	benchPath := fs.String("bench-out", "", "write bench metrics (BENCH_serve.json shape) to this file")
	killEvery := fs.Duration("kill-every", 0, "fleet mode: kill a worker every this often")
	chaos := fs.Bool("chaos", false, "fleet mode: inject drops/duplicates/corruption on the worker wire")
	maxCampaigns := fs.Int("max-campaigns", 0, "fleet mode: fleet-wide admission bound (0 = 2×concurrency)")
	tenantQuota := fs.Int("tenant-quota", -1, "fleet mode: per-tenant in-flight bound (-1 = unlimited)")
	quiet := fs.Bool("q", false, "suppress the human report on stdout")
	verbose := fs.Bool("v", false, "log per-op failures to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*target == "") == (*fleetN == 0) {
		fmt.Fprintln(stderr, "gemload: exactly one of -target or -fleet is required")
		return 2
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		fmt.Fprintf(stderr, "gemload: %v\n", err)
		return 2
	}

	var log *slog.Logger
	if *verbose {
		log = slog.New(slog.NewTextHandler(stderr, nil))
	}

	baseURL := *target
	if *fleetN > 0 {
		fc := load.FleetConfig{
			Workers:      *fleetN,
			MaxCampaigns: *maxCampaigns,
			TenantQuota:  *tenantQuota,
			KillEvery:    *killEvery,
			Log:          log,
		}
		if fc.MaxCampaigns == 0 {
			// The fleet exists to absorb this run: admit up to twice the
			// driver's concurrency so admission control is exercised only
			// under genuine pile-up, not by default.
			fc.MaxCampaigns = 2 * *concurrency
		}
		if *chaos {
			fc.Chaos = &dist.Chaos{
				Seed:          *seed,
				DropProb:      0.05,
				DuplicateProb: 0.05,
				CorruptProb:   0.05,
				MaxFaults:     64,
			}
		}
		fleet, err := load.StartFleet(fc)
		if err != nil {
			fmt.Fprintf(stderr, "gemload: %v\n", err)
			return 2
		}
		defer fleet.Close()
		baseURL = fleet.URL
		if !*quiet {
			fmt.Fprintf(stdout, "gemload: in-process fleet of %d workers at %s\n", *fleetN, baseURL)
		}
	}

	d, err := load.NewDriver(load.Config{
		BaseURL:      baseURL,
		Concurrency:  *concurrency,
		RateHz:       *rate,
		Duration:     *duration,
		Seed:         *seed,
		Skew:         *skew,
		Tenants:      *tenants,
		InvokeLength: *invoke,
		Mix:          mix,
		Tol: load.Tolerance{
			Rel: *tol,
			Abs: time.Duration(*tolAbsMs * float64(time.Millisecond)),
		},
		Log: log,
	})
	if err != nil {
		fmt.Fprintf(stderr, "gemload: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	r, err := d.Run(ctx)
	if err != nil {
		fmt.Fprintf(stderr, "gemload: %v\n", err)
		return 2
	}

	if !*quiet {
		fmt.Fprint(stdout, r.String())
	}
	if *outPath != "" {
		if err := writeJSON(*outPath, r); err != nil {
			fmt.Fprintf(stderr, "gemload: %v\n", err)
			return 2
		}
	}
	if *benchPath != "" {
		if err := writeBenchJSON(*benchPath, r.Bench()); err != nil {
			fmt.Fprintf(stderr, "gemload: %v\n", err)
			return 2
		}
	}
	if !r.OK {
		return 1
	}
	return 0
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// writeBenchJSON writes one compact object per line, the shape the
// other BENCH_*.json files use (and the one scripts/bench.sh's
// line-oriented awk comparison parses).
func writeBenchJSON(path string, metrics []load.BenchMetric) error {
	var b strings.Builder
	b.WriteString("[\n")
	for i, m := range metrics {
		row, err := json.Marshal(m)
		if err != nil {
			return err
		}
		b.WriteString("  ")
		b.Write(row)
		if i < len(metrics)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("]\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
