package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gemstone/internal/load"
)

func TestParseMix(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want load.Mix
		err  bool
	}{
		{"", load.Mix{}, false},
		{"cold=1,warm=3,events=3,analysis=3", load.Mix{Cold: 1, Warm: 3, Events: 3, Analysis: 3}, false},
		{"cold=2", load.Mix{Cold: 2}, false},
		{" cold=1, analysis=0.5", load.Mix{Cold: 1, Analysis: 0.5}, false},
		{"cold=0,warm=0", load.Mix{}, true}, // all-zero mix
		{"cold", load.Mix{}, true},
		{"frob=1", load.Mix{}, true},
		{"cold=-1", load.Mix{}, true},
		{"cold=x", load.Mix{}, true},
	} {
		got, err := parseMix(tc.spec)
		if (err != nil) != tc.err {
			t.Errorf("parseMix(%q) err = %v, want err=%v", tc.spec, err, tc.err)
			continue
		}
		if !tc.err && got != tc.want {
			t.Errorf("parseMix(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	// Neither -target nor -fleet.
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no mode: exit %d, want 2", code)
	}
	// Both at once.
	if code := run([]string{"-target", "http://x", "-fleet", "2"}, &out, &errb); code != 2 {
		t.Fatalf("both modes: exit %d, want 2", code)
	}
	// Bad mix.
	if code := run([]string{"-fleet", "1", "-mix", "frob=1"}, &out, &errb); code != 2 {
		t.Fatalf("bad mix: exit %d, want 2", code)
	}
	// Unreachable target fails setup, not the SLO.
	if code := run([]string{"-target", "http://127.0.0.1:1", "-duration", "1s"}, &out, &errb); code != 2 {
		t.Fatalf("unreachable target: exit %d, want 2", code)
	}
}

// TestRunFleetSmoke is the CLI end-to-end: boot the in-process fleet,
// run a short closed-loop load, and check the report files and the
// exit code.
func TestRunFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet smoke skipped in -short (covered by internal/load e2e)")
	}
	dir := t.TempDir()
	outPath := filepath.Join(dir, "report.json")
	benchPath := filepath.Join(dir, "bench.json")
	var out, errb bytes.Buffer
	code := run([]string{
		"-fleet", "2", "-duration", "1500ms", "-concurrency", "3",
		"-tenants", "2", "-seed", "21",
		"-out", outPath, "-bench-out", benchPath,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "SLO: PASS") {
		t.Fatalf("stdout lacks SLO verdict:\n%s", out.String())
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.CampaignsDone == 0 {
		t.Fatalf("report: ok=%v done=%d", rep.OK, rep.CampaignsDone)
	}

	raw, err = os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var bench []load.BenchMetric
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	if len(bench) == 0 {
		t.Fatal("empty bench export")
	}
	for _, m := range bench {
		if m.Name == "" || m.Unit == "" {
			t.Fatalf("malformed bench metric: %+v", m)
		}
	}
}
