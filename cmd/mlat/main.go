// Command mlat runs the lat_mem_rd-style memory-latency microbenchmark of
// the paper's Fig. 4 against the hardware and gem5 model clusters, printing
// the latency-vs-working-set curves side by side.
//
// Usage:
//
//	mlat [-cluster a15|a7] [-freq MHz] [-stride bytes] [-version 1|2]
package main

import (
	"flag"
	"fmt"
	"log"

	"gemstone"
	"gemstone/internal/lmbench"
	"gemstone/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlat: ")

	cluster := flag.String("cluster", gemstone.ClusterA15, "cluster to probe (a7|a15)")
	freq := flag.Int("freq", 1000, "core frequency in MHz")
	stride := flag.Int("stride", 256, "access stride in bytes")
	version := flag.Int("version", 1, "gem5 model version (1|2)")
	flag.Parse()

	ver := gemstone.V1
	if *version == 2 {
		ver = gemstone.V2
	}
	sizes := gemstone.DefaultLatencySizes()
	curves := map[string][]lmbench.Point{}
	switch *cluster {
	case gemstone.ClusterA15:
		curves["hw-a15"] = gemstone.MemoryLatency(gemstone.HardwareA15(), *freq, *stride, sizes)
		curves["gem5-a15"] = gemstone.MemoryLatency(gemstone.Gem5Big(ver), *freq, *stride, sizes)
	case gemstone.ClusterA7:
		curves["hw-a7"] = gemstone.MemoryLatency(gemstone.HardwareA7(), *freq, *stride, sizes)
		curves["gem5-a7"] = gemstone.MemoryLatency(gemstone.Gem5LITTLE(ver), *freq, *stride, sizes)
	default:
		log.Fatalf("unknown cluster %q", *cluster)
	}
	fmt.Print(report.Fig4(curves))
}
