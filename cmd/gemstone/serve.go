package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/dist"
	"gemstone/internal/ledger"
	"gemstone/internal/obs"
	"gemstone/internal/serve"
)

// serveMain is the `gemstone serve` subcommand: the multi-tenant
// campaign service. Where the bare CLI runs one campaign and exits,
// serve turns the same collector into a daemon — campaigns are POSTed
// as JSON, followed over SSE, and their analyses and canonical archives
// read back over HTTP.
//
// Usage:
//
//	gemstone serve [flags]
//
//	-listen        host:port  API endpoint                   (default :9178)
//	-workers       host:port,... distribute campaigns across these
//	                          gemstoned workers (local execution when empty)
//	-cachedir      dir        persistent run cache (namespaced per tenant)
//	-ledger        file       append per-campaign provenance entries
//	-max-campaigns N          fleet-wide in-flight campaign bound (default 4)
//	-tenant-quota  N          per-tenant in-flight campaign bound (default 2)
//	-max-retained  N          terminal campaigns kept in memory before the
//	                          oldest are evicted (default 64, -1 = forever)
//	-campaign-workers N       per-campaign local parallelism (0 = GOMAXPROCS)
//	-trace-campaigns          record a fleet-wide trace per campaign, with
//	                          worker spans stitched in, served from
//	                          GET /v1/campaigns/{id}/trace once terminal
//	-metrics-addr  host:port  separate observability endpoint; the API
//	                          itself always serves /metrics and /healthz
//	-log-format    text|json  structured-log output format   (default text)
//
// SIGINT stops admission, cancels running campaigns (their SSE streams
// end with an error frame) and exits.
func serveMain(args []string) {
	fs := flag.NewFlagSet("gemstone serve", flag.ExitOnError)
	listen := fs.String("listen", ":9178", "serve the campaign API on this host:port")
	workers := fs.String("workers", "", "comma-separated gemstoned worker addresses")
	cacheDir := fs.String("cachedir", "", "memoise runs in a persistent cache at this directory")
	ledgerPath := fs.String("ledger", "", "append per-campaign provenance entries to this JSONL ledger")
	maxCampaigns := fs.Int("max-campaigns", 0, "max in-flight campaigns fleet-wide (0 = default)")
	tenantQuota := fs.Int("tenant-quota", 0, "max in-flight campaigns per tenant (0 = default)")
	maxRetained := fs.Int("max-retained", 0, "terminal campaigns retained before eviction (0 = default, -1 = forever)")
	campaignWorkers := fs.Int("campaign-workers", 0, "per-campaign local collection parallelism (0 = GOMAXPROCS)")
	traceCampaigns := fs.Bool("trace-campaigns", false, "record a fleet-wide Chrome trace per campaign, served from /v1/campaigns/{id}/trace")
	metricsAddr := fs.String("metrics-addr", "", "serve a separate /metrics endpoint on this host:port")
	logFormat := fs.String("log-format", obs.LogText, "log output format (text|json)")
	_ = fs.Parse(args)

	logger, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemstone serve:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg)
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			logger.Error("metrics listener failed", "err", err)
			os.Exit(1)
		}
		defer srv.Close()
		logger.Info("metrics listening", "addr", srv.Addr())
	}

	var cache core.RunCache
	if *cacheDir != "" {
		if cache, err = core.OpenRunCache(*cacheDir); err != nil {
			logger.Error("run cache unavailable", "err", err)
			os.Exit(1)
		}
	}

	var store *ledger.Store
	if *ledgerPath != "" {
		store = ledger.Open(*ledgerPath)
	}

	var coord *dist.Coordinator
	if *workers != "" {
		var addrs []string
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		coord = dist.NewCoordinator(dist.CoordinatorConfig{
			Workers:  addrs,
			Registry: reg,
			Log:      logger,
		})
		logger.Info("distributing campaigns", "workers", len(addrs))
	}

	svc := serve.New(serve.Config{
		Coordinator:    coord,
		Cache:          cache,
		Ledger:         store,
		Registry:       reg,
		Log:            logger,
		MaxCampaigns:   *maxCampaigns,
		TenantQuota:    *tenantQuota,
		MaxRetained:    *maxRetained,
		Workers:        *campaignWorkers,
		TraceCampaigns: *traceCampaigns,
	})

	server := &http.Server{
		Addr:              *listen,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		logger.Info("shutting down")
		// Cancel campaigns first so SSE streams terminate with their
		// error frame, then drain the HTTP server.
		_ = svc.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = server.Shutdown(shutdownCtx)
	}()

	logger.Info("campaign service listening", "addr", *listen)
	if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server failed", "err", err)
		os.Exit(1)
	}
}
