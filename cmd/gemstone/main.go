// Command gemstone runs the full GemStone pipeline: it characterises the
// reference hardware platform, runs the gem5 model simulations, identifies
// sources of error with the statistical analyses of the paper's Section
// IV, builds and applies empirical power models (Sections V/VI), and
// compares model versions (Section VII).
//
// Usage:
//
//	gemstone [flags]
//	gemstone serve [flags]   start the multi-tenant campaign service
//	                         (HTTP/JSON API; see serve.go for flags)
//
//	-cluster   a15|a7        cluster to analyse            (default a15)
//	-freq      MHz           analysis operating point      (default 1000)
//	-version   1|2           gem5 model version            (default 1)
//	-analyses  list          comma-separated subset of:
//	                         validate,fig3,fig4,fig5,gem5corr,regress,
//	                         fig6,power,fig7,fig8,versions,dendro,
//	                         consistency,workloads  (default all)
//	-workloads N             limit to the first N validation workloads
//	-csvdir    dir           also write CSV artefacts into dir
//	-cachedir  dir           memoise runs in a persistent cache at dir;
//	                         re-invocations replay instead of re-simulating
//	-progress                log per-campaign progress while collecting
//	-validate                run invariant validators over every collected
//	                         measurement (counter conservation laws, DVFS
//	                         monotonicity, energy = power × time, ...)
//	-ledger    file          append a provenance manifest plus the campaign
//	                         results to this JSONL ledger (the experiment
//	                         flight recorder; compare runs with gemwatch)
//	-trace     file          write a Chrome trace-event JSON profile of
//	                         the campaigns (open in chrome://tracing or
//	                         ui.perfetto.dev); combined with -workers the
//	                         profile is fleet-wide — every worker's spans
//	                         are shipped back, clock-offset corrected and
//	                         stitched under the dispatching campaign span,
//	                         one process lane per worker
//	-metrics-addr host:port  serve Prometheus /metrics, /debug/pprof and
//	                         /healthz while running
//	-log-format text|json    structured-log output format (default text)
//	-workers   host:port,... distribute campaigns across these gemstoned
//	                         workers; when none answer, campaigns degrade
//	                         to local execution (identical results)
//
// Campaigns are cancellable: SIGINT stops the outstanding simulations and
// exits; with -cachedir the completed runs are kept, so rerunning resumes
// where the campaign stopped.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"gemstone"
	"gemstone/internal/core"
	"gemstone/internal/dist"
	"gemstone/internal/ledger"
	"gemstone/internal/lmbench"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/pmu"
	"gemstone/internal/report"
	"gemstone/internal/stats"
)

// progressObserver logs campaign progress at ~10% granularity — each line
// carrying the completion count, the measured run rate and the ETA — plus
// per-run failures and the final per-stage time report. All callbacks
// fire concurrently from campaign workers and serialise on mu.
type progressObserver struct {
	log *slog.Logger
	now func() time.Time // injectable clock for tests

	// violations, when set, is polled at CollectDone so the final summary
	// carries the invariant-validator tally next to the cache hit-rate.
	violations func() int

	mu    sync.Mutex
	total int
	done  int
	next  int // completion count at which to log the next line
	start time.Time
}

func newProgressObserver(log *slog.Logger) *progressObserver {
	return &progressObserver{log: log, now: time.Now}
}

func (p *progressObserver) CollectStart(platformName string, totalJobs int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = totalJobs
	p.done = 0
	p.next = (totalJobs + 9) / 10
	p.start = p.now()
	p.log.Info("campaign queued", "platform", platformName, "runs", totalJobs)
}

func (p *progressObserver) RunStart(core.RunKey) {}

// step advances the completion count and logs at the next 10% boundary.
// Callers hold p.mu.
func (p *progressObserver) step() {
	p.done++
	if p.done >= p.next {
		attrs := []any{"done", p.done, "total", p.total}
		if elapsed := p.now().Sub(p.start); elapsed > 0 {
			rate := float64(p.done) / elapsed.Seconds()
			attrs = append(attrs, "runs_per_sec", fmt.Sprintf("%.1f", rate))
			if rate > 0 {
				eta := time.Duration(float64(p.total-p.done)/rate) * time.Second
				attrs = append(attrs, "eta", eta.Round(time.Second).String())
			}
		}
		p.log.Info("progress", attrs...)
		p.next += (p.total + 9) / 10
	}
}

func (p *progressObserver) CacheHit(core.RunKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.step()
}

func (p *progressObserver) RunDone(core.RunKey, platform.Measurement, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.step()
}

func (p *progressObserver) RunError(key core.RunKey, err error) {
	// Failed runs count toward N/N like completed ones — without this the
	// progress line stalls short of the total on failing campaigns — and
	// the lock keeps the failure line ordered against step()'s output.
	p.mu.Lock()
	defer p.mu.Unlock()
	p.log.Error("run failed", "key", key.String(), "err", err)
	p.step()
}

func (p *progressObserver) CollectDone(s core.CollectStats) {
	attrs := []any{"stats", s.String()}
	if s.Jobs > 0 {
		attrs = append(attrs, "cache_hit_rate",
			fmt.Sprintf("%.0f%%", 100*float64(s.CacheHits)/float64(s.Jobs)))
	}
	if p.violations != nil {
		attrs = append(attrs, "validator_violations", p.violations())
	}
	p.log.Info("campaign done", attrs...)
}

// logger is the process-wide structured logger; main replaces it once
// -log-format is parsed. writeCSV and the observers share it.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// exitHooks run (last-registered first) before any process exit so the
// trace file and metrics listener are flushed even on fatal errors.
var exitHooks []func()

func exit(code int) {
	for i := len(exitHooks) - 1; i >= 0; i-- {
		exitHooks[i]()
	}
	os.Exit(code)
}

func fatal(err error) {
	logger.Error("gemstone failed", "err", err)
	exit(1)
}

func main() {
	// Subcommand dispatch: `gemstone serve` starts the campaign service;
	// everything else is the classic one-shot flag-driven pipeline.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	cluster := flag.String("cluster", gemstone.ClusterA15, "cluster to analyse (a7|a15)")
	freq := flag.Int("freq", 1000, "analysis frequency in MHz")
	version := flag.Int("version", 1, "gem5 model version (1|2)")
	analyses := flag.String("analyses", "all", "comma-separated analyses to run")
	nWorkloads := flag.Int("workloads", 0, "limit to the first N validation workloads (0 = all)")
	csvDir := flag.String("csvdir", "", "write CSV artefacts into this directory")
	statsDir := flag.String("statsdir", "", "dump one gem5 stats.txt per model run into this directory")
	cacheDir := flag.String("cachedir", "", "memoise runs in a persistent cache at this directory")
	progress := flag.Bool("progress", false, "log campaign progress while collecting")
	validateRuns := flag.Bool("validate", false, "run invariant validators over every collected measurement")
	ledgerPath := flag.String("ledger", "", "append a provenance manifest + results entry to this JSONL ledger")
	traceFile := flag.String("trace", "", "write a Chrome trace-event JSON profile to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/pprof and /healthz on this host:port")
	logFormat := flag.String("log-format", obs.LogText, "log output format (text|json)")
	workers := flag.String("workers", "", "comma-separated gemstoned worker addresses for distributed campaigns")
	fidelityFlag := flag.String("fidelity", "detailed", "simulation tier (detailed|atomic)")
	screen := flag.Bool("screen", false, "screen-then-resimulate: sweep the grid at the atomic tier, re-simulate the flagged points detailed")
	flag.Parse()

	lg, err := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemstone:", err)
		os.Exit(2)
	}
	fid, err := gemstone.ParseFidelity(*fidelityFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gemstone:", err)
		os.Exit(2)
	}
	if *screen && fid != gemstone.FidelityDetailed {
		fmt.Fprintln(os.Stderr, "gemstone: -fidelity cannot be combined with -screen (the screen sets the tier per phase)")
		os.Exit(2)
	}
	logger = lg
	slog.SetDefault(lg)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	var tracer *gemstone.Tracer
	if *traceFile != "" {
		tracer = gemstone.NewTracer()
		exitHooks = append(exitHooks, func() {
			f, err := os.Create(*traceFile)
			if err != nil {
				logger.Error("trace not written", "err", err)
				return
			}
			err = tracer.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				logger.Error("trace not written", "err", err)
				return
			}
			logger.Info("trace written", "file", *traceFile, "spans", len(tracer.Events()))
		})
	}

	var cache gemstone.RunCache
	if *cacheDir != "" {
		if cache, err = gemstone.OpenRunCache(*cacheDir); err != nil {
			fatal(err)
		}
	}
	metrics := gemstone.NewCollectMetrics()
	// The registry always exists: gemstone_build_info and the validator
	// counters land in it whether or not -metrics-addr serves it, so the
	// ledger manifest and a scrape cite the same provenance source.
	reg := gemstone.NewMetricsRegistry()
	gemstone.RegisterBuildInfo(reg)
	observers := []gemstone.CollectObserver{metrics}
	if *metricsAddr != "" {
		srv, err := gemstone.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		exitHooks = append(exitHooks, func() { srv.Close() })
		observers = append(observers, gemstone.NewRegistryCollectObserver(reg))
		logger.Info("metrics listening", "addr", srv.Addr())
	}
	recorder := gemstone.NewCampaignRecorder()
	observers = append(observers, recorder)
	var validator *gemstone.Validator
	if *validateRuns {
		validator = gemstone.NewValidator(reg)
	}
	if *progress {
		po := newProgressObserver(logger)
		if validator != nil {
			po.violations = validator.Count
		}
		observers = append(observers, po)
	}
	observer := gemstone.MultiCollectObserver(observers...)
	var coord *dist.Coordinator
	if *workers != "" {
		var addrs []string
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		coord = dist.NewCoordinator(dist.CoordinatorConfig{
			Workers:  addrs,
			Registry: reg,
			Log:      logger,
		})
		logger.Info("distributing campaigns", "workers", len(addrs))
	}
	collect := func(pl *gemstone.Platform, opt gemstone.CollectOptions) (*gemstone.RunSet, error) {
		opt.Cache = cache
		opt.Observer = observer
		opt.Tracer = tracer
		if validator != nil {
			validator.AddPlatform(pl)
		}
		var rs *gemstone.RunSet
		var err error
		if coord != nil {
			rs, err = coord.Collect(ctx, pl, opt)
		} else {
			rs, err = gemstone.Collect(ctx, pl, opt)
		}
		if err == nil && validator != nil {
			// Sweep the completed set instead of observing RunDone: cache
			// hits replay without a RunDone callback, and the whole-set
			// view enables the cross-run DVFS-monotonicity check.
			for _, m := range rs.Runs {
				validator.CheckMeasurement(m)
			}
			validator.CheckRunSet(rs)
		}
		return rs, err
	}

	want := map[string]bool{}
	for _, a := range strings.Split(*analyses, ",") {
		want[strings.TrimSpace(a)] = true
	}
	on := func(name string) bool { return want["all"] || want[name] }

	ver := gemstone.V1
	if *version == 2 {
		ver = gemstone.V2
	}

	profiles := gemstone.ValidationWorkloads()
	if *nWorkloads > 0 && *nWorkloads < len(profiles) {
		profiles = profiles[:*nWorkloads]
	}
	opt := func() gemstone.CollectOptions {
		return gemstone.CollectOptions{
			Workloads: profiles,
			Clusters:  []string{*cluster},
			Fidelity:  fid,
		}
	}

	var hwRuns, simRuns *gemstone.RunSet
	var flagged []gemstone.RunKey
	if *screen {
		logger.Info("screening campaign", "workloads", len(profiles), "cluster", *cluster)
		res, serr := gemstone.Screen(ctx, gemstone.HardwarePlatform(), gemstone.Gem5Platform(ver),
			gemstone.ScreenOptions{
				Options: opt(),
				Collect: func(_ context.Context, pl *gemstone.Platform, o gemstone.CollectOptions) (*gemstone.RunSet, error) {
					return collect(pl, o)
				},
			})
		if serr != nil {
			fatal(serr)
		}
		hwRuns, simRuns, flagged = res.HW, res.Sim, res.Flagged
		logger.Info("screen complete", "points", len(res.ScreenedPE), "flagged", len(res.Flagged))
	} else {
		logger.Info("collecting hardware characterisation", "workloads", len(profiles), "cluster", *cluster)
		hwRuns, err = collect(gemstone.HardwarePlatform(), opt())
		if err != nil {
			fatal(err)
		}
		logger.Info("running gem5 simulations", "version", fmt.Sprint(ver))
		simRuns, err = collect(gemstone.Gem5Platform(ver), opt())
		if err != nil {
			fatal(err)
		}
	}
	if *statsDir != "" {
		if err := dumpStatsFiles(*statsDir, simRuns); err != nil {
			fatal(err)
		}
		logger.Info("wrote gem5 stats files", "count", len(simRuns.Runs), "dir", *statsDir)
	}

	// All Section IV-VII analyses below share one operating point; the
	// Session captures it once.
	session := gemstone.NewSession(hwRuns, simRuns, *cluster, *freq)

	var clustering *gemstone.WorkloadClustering
	needClusters := on("fig3") || on("fig6") || on("fig7") || on("fig8") || on("versions")
	if needClusters {
		clustering, err = session.ClusterWorkloads(16)
		if err != nil {
			fatal(err)
		}
	} else if *ledgerPath != "" {
		// Best-effort HCA labels for the ledger's per-workload table; a
		// trimmed -workloads run may have too few members for the paper's
		// 16 clusters, so shrink k rather than fail the recording.
		k := 16
		if n := len(profiles); n < k {
			k = n
		}
		if wc, cerr := session.ClusterWorkloads(k); cerr == nil {
			clustering = wc
		} else {
			logger.Warn("ledger: clustering unavailable", "err", cerr)
		}
	}

	var summary *gemstone.ValidationSummary
	if on("validate") || *ledgerPath != "" {
		summary, err = session.Validate()
		if err != nil {
			fatal(err)
		}
		if validator != nil {
			validator.CheckValidation(summary)
		}
	}
	if on("validate") {
		fmt.Print(report.ValidationSummary(fmt.Sprintf("gem5 %v vs hardware", ver), summary))
		if mape, mpe, n := summary.SuiteSummary("parsec-"); n > 0 {
			fmt.Printf("PARSEC only: MAPE %.1f%% MPE %+.1f%% (%d runs)\n", mape, mpe, n)
		}
		fmt.Println()
		writeCSV(*csvDir, "validation.csv", func() ([]string, [][]string) { return report.ValidationSummaryCSV(summary) })
	}
	if on("fig3") {
		fmt.Println(report.Fig3(clustering))
		writeCSV(*csvDir, "fig3.csv", func() ([]string, [][]string) { return report.Fig3CSV(clustering) })
	}
	if on("fig4") {
		curves := map[string][]lmbench.Point{}
		sizes := gemstone.DefaultLatencySizes()
		if *cluster == gemstone.ClusterA15 {
			curves["hw-a15"] = gemstone.MemoryLatency(gemstone.HardwareA15(), *freq, 256, sizes)
			curves["gem5-a15"] = gemstone.MemoryLatency(gemstone.Gem5Big(ver), *freq, 256, sizes)
		} else {
			curves["hw-a7"] = gemstone.MemoryLatency(gemstone.HardwareA7(), *freq, 256, sizes)
			curves["gem5-a7"] = gemstone.MemoryLatency(gemstone.Gem5LITTLE(ver), *freq, 256, sizes)
		}
		fmt.Println(report.Fig4(curves))
	}
	if on("fig5") {
		rows, err := session.PMCErrorCorrelation(30)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Fig5(rows))
		writeCSV(*csvDir, "fig5.csv", func() ([]string, [][]string) { return report.Fig5CSV(rows) })
	}
	if on("workloads") {
		fmt.Println("=== Workload suite ===")
		fmt.Printf("%-26s %-12s %7s %10s\n", "name", "suite", "threads", "insts")
		for _, p := range gemstone.Workloads() {
			fmt.Printf("%-26s %-12s %7d %10d\n", p.Name, p.Suite, p.Threads, p.TotalInsts)
		}
		fmt.Println()
	}
	if on("dendro") {
		// The hierarchical view behind the Fig. 3 cluster labels.
		X, names, err := workloadRateMatrix(hwRuns, *cluster, *freq)
		if err != nil {
			fatal(err)
		}
		dend := stats.Agglomerate(stats.EuclideanDist(stats.Standardize(X)), stats.AverageLinkage)
		fmt.Println("=== Workload dendrogram (HCA of HW PMC rates) ===")
		fmt.Println(report.Dendrogram(dend, names))
	}
	if on("consistency") {
		fc, err := session.ErrorConsistency()
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Cross-frequency error-pattern consistency ===")
		for _, p := range fc.Pairs {
			fmt.Printf("  %4d vs %4d MHz: pearson %+.2f  rank %+.2f\n",
				p.FreqA, p.FreqB, p.Pearson, p.Spearman)
		}
		fmt.Println()
	}
	if on("gem5corr") {
		rows, err := session.Gem5EventCorrelation(0.3, 8)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Gem5Correlation(rows))
	}
	if on("regress") {
		sw := gemstone.DefaultStepwiseOptions()
		sw.MaxTerms = 8
		pmcRep, err := session.ErrorRegressionPMC(sw)
		if err != nil {
			fatal(err)
		}
		g5Rep, err := session.ErrorRegressionGem5(sw)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Regression(pmcRep, g5Rep))
	}
	if on("fig6") {
		excl := pathologicalCluster(clustering)
		ratios, bp, err := session.EventComparison(clustering.Labels, nil, gemstone.DefaultMapping(), excl)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Fig6(ratios, bp))
	}

	var model *gemstone.PowerModel
	if on("power") || on("fig7") || on("fig8") || on("versions") {
		logger.Info("building power model", "cluster", *cluster, "pool", "restricted")
		model, err = session.BuildPowerModel(
			gemstone.PowerBuildOptions{Pool: gemstone.RestrictedPool()})
		if err != nil {
			fatal(err)
		}
	}
	if model == nil && *ledgerPath != "" {
		// The ledger tracks power-model quality (R², SER) even when no
		// power analysis was requested; tolerate failure rather than lose
		// the timing results.
		logger.Info("building power model for the ledger", "cluster", *cluster)
		if m, merr := session.BuildPowerModel(
			gemstone.PowerBuildOptions{Pool: gemstone.RestrictedPool()}); merr == nil {
			model = m
		} else {
			logger.Warn("ledger: power model unavailable", "err", merr)
		}
	}
	if on("power") {
		fmt.Println(report.PowerModel(model))
		fmt.Println("run-time gem5 equation:")
		fmt.Println("  " + model.Equation(gemstone.DefaultMapping()))
		fmt.Println()
		writeCSV(*csvDir, "power_model.csv", func() ([]string, [][]string) { return report.PowerModelCSV(model) })
	}
	if on("fig7") {
		an, err := session.AnalyzePowerEnergy(model, gemstone.DefaultMapping(), clustering.Labels)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Fig7(an))
	}
	if on("fig8") {
		models := map[string]*gemstone.PowerModel{*cluster: model}
		baseFreq := gemstone.ExperimentFrequencies(*cluster)[0]
		hwCurve, err := gemstone.ScalingAnalysis(hwRuns, models, gemstone.DefaultMapping(),
			false, clustering.Labels, *cluster, baseFreq)
		if err != nil {
			fatal(err)
		}
		simCurve, err := gemstone.ScalingAnalysis(simRuns, models, gemstone.DefaultMapping(),
			true, clustering.Labels, *cluster, baseFreq)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Fig8(hwCurve, simCurve))
	}
	if on("versions") {
		other := gemstone.V2
		if ver == gemstone.V2 {
			other = gemstone.V1
		}
		logger.Info("running gem5 simulations for the version comparison", "version", fmt.Sprint(other))
		otherRuns, err := collect(gemstone.Gem5Platform(other), opt())
		if err != nil {
			fatal(err)
		}
		v1Runs, v2Runs := simRuns, otherRuns
		if ver == gemstone.V2 {
			v1Runs, v2Runs = otherRuns, simRuns
		}
		vc, err := session.WithSim(v1Runs).CompareVersions(v2Runs,
			model, gemstone.DefaultMapping(), clustering.Labels)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Versions(vc))
	}

	if validator != nil {
		for _, d := range validator.Violations() {
			logger.Warn("invariant violation",
				"invariant", d.Invariant, "run", d.Run, "detail", d.Detail)
		}
	}

	if *ledgerPath != "" {
		entry := buildLedgerEntry(ledgerInputs{
			hw:         gemstone.HardwarePlatform(),
			sim:        gemstone.Gem5Platform(ver),
			version:    *version,
			cluster:    *cluster,
			freqMHz:    *freq,
			fidelity:   fid,
			screened:   *screen,
			flagged:    flagged,
			profiles:   profiles,
			recorder:   recorder,
			tracer:     tracer,
			summary:    summary,
			clustering: clustering,
			model:      model,
			validator:  validator,
			coord:      coord,
		})
		if err := gemstone.OpenLedger(*ledgerPath).Append(entry); err != nil {
			fatal(err)
		}
		logger.Info("ledger entry appended", "path", *ledgerPath,
			"workloads", len(entry.Results.Workloads),
			"validator_checks", entry.Results.ValidatorChecks,
			"validator_violations", entry.Results.ValidatorViolations)
	}

	if s := metrics.Stats(); s.Jobs > 0 {
		attrs := []any{
			"platforms", strings.Join(metrics.Platforms(), "+"),
			"runs", s.Jobs, "simulated", s.Simulated,
			"cache_hits", s.CacheHits, "skipped", s.Skipped,
			"plan", s.PlanTime.Round(time.Microsecond).String(),
			"cache", s.CacheTime.Round(time.Microsecond).String(),
			"sim", s.SimTime.Round(time.Millisecond).String(),
			"wall", s.WallTime.Round(time.Millisecond).String(),
			"cache_hit_rate", fmt.Sprintf("%.0f%%", 100*float64(s.CacheHits)/float64(s.Jobs)),
		}
		if validator != nil {
			attrs = append(attrs, "validator_checks", validator.Checks(),
				"validator_violations", validator.Count())
		}
		logger.Info("campaigns total", attrs...)
	}
	exit(0)
}

// ledgerInputs gathers everything buildLedgerEntry distils into a record.
type ledgerInputs struct {
	hw, sim    *gemstone.Platform
	version    int
	cluster    string
	freqMHz    int
	fidelity   gemstone.Fidelity
	screened   bool
	flagged    []gemstone.RunKey
	profiles   []gemstone.WorkloadProfile
	recorder   *gemstone.CampaignRecorder
	tracer     *gemstone.Tracer
	summary    *gemstone.ValidationSummary
	clustering *gemstone.WorkloadClustering
	model      *gemstone.PowerModel
	validator  *gemstone.Validator
	coord      *dist.Coordinator
}

// buildLedgerEntry assembles the flight-recorder record for this
// invocation: provenance manifest (build, fingerprints, workload set,
// DVFS grid, campaign stats, phase times), results (headline and
// per-workload errors, power-model quality, lmbench digest) and any
// validator diagnostics.
func buildLedgerEntry(in ledgerInputs) gemstone.LedgerEntry {
	hwCfg, simCfg := in.hw.Config(), in.sim.Config()
	names, setHash, seed := ledger.WorkloadSetDigest(in.profiles)
	grid := make(map[string][]int, len(hwCfg.Clusters))
	for _, cc := range hwCfg.Clusters {
		grid[cc.Name] = cc.Frequencies()
	}
	man := gemstone.RunManifest{
		Schema:           ledger.SchemaVersion,
		CreatedUnix:      time.Now().Unix(),
		Build:            gemstone.ReadBuildInfo(),
		HWPlatform:       hwCfg.Name,
		ModelPlatform:    simCfg.Name,
		HWFingerprint:    hwCfg.Fingerprint(),
		ModelFingerprint: simCfg.Fingerprint(),
		Gem5Version:      in.version,
		Cluster:          in.cluster,
		FreqMHz:          in.freqMHz,
		Workloads:        names,
		WorkloadSetHash:  setHash,
		Seed:             seed,
		DVFSGrid:         grid,
		Campaigns:        in.recorder.Campaigns(),
	}
	if in.fidelity != gemstone.FidelityDetailed {
		man.Fidelity = in.fidelity.String()
	}
	if in.screened {
		man.Mode = "screen"
		for _, k := range in.flagged {
			man.ScreenFlagged = append(man.ScreenFlagged,
				fmt.Sprintf("%s/%s/%d", k.Workload, k.Cluster, k.FreqMHz))
		}
	}
	if in.tracer != nil {
		man.PhaseSeconds = ledger.PhaseSeconds(in.tracer.Events())
	}
	if in.coord != nil {
		for _, ws := range in.coord.WorkerStats() {
			man.DistWorkers = append(man.DistWorkers, ledger.DistWorker{
				Addr:     ws.Addr,
				Capacity: ws.Capacity,
				Jobs:     ws.Jobs,
				Retries:  ws.Retries,
				Alive:    ws.Alive,
			})
		}
	}

	var results gemstone.LedgerResults
	if in.summary != nil {
		results = ledger.ResultsFromValidation(in.summary, in.freqMHz, in.clustering)
	} else {
		results = gemstone.LedgerResults{Cluster: in.cluster, FreqMHz: in.freqMHz}
	}
	results.Power = ledger.PowerFromModel(in.model)
	results.Latency = ledgerLatency(in.version, in.cluster, in.freqMHz)

	entry := gemstone.LedgerEntry{Manifest: man, Results: results}
	if in.validator != nil {
		entry.Results.ValidatorChecks = in.validator.Checks()
		entry.Diagnostics = in.validator.Violations()
		entry.Results.ValidatorViolations = len(entry.Diagnostics)
	}
	return entry
}

// ledgerLatency runs the lmbench-style latency sweep on both platforms
// for the ledger's Fig. 4 digest.
func ledgerLatency(version int, cluster string, freqMHz int) []ledger.LatencyDigest {
	ver := gemstone.V1
	if version == 2 {
		ver = gemstone.V2
	}
	sizes := gemstone.DefaultLatencySizes()
	var hwCurve, simCurve []gemstone.LatencyPoint
	if cluster == gemstone.ClusterA15 {
		hwCurve = gemstone.MemoryLatency(gemstone.HardwareA15(), freqMHz, 256, sizes)
		simCurve = gemstone.MemoryLatency(gemstone.Gem5Big(ver), freqMHz, 256, sizes)
	} else {
		hwCurve = gemstone.MemoryLatency(gemstone.HardwareA7(), freqMHz, 256, sizes)
		simCurve = gemstone.MemoryLatency(gemstone.Gem5LITTLE(ver), freqMHz, 256, sizes)
	}
	return ledger.LatencyFromPoints(hwCurve, simCurve)
}

// workloadRateMatrix rebuilds the standardisable PMC-rate matrix of the
// hardware runs for dendrogram rendering (workload x event rates).
func workloadRateMatrix(hwRuns *gemstone.RunSet, cluster string, freq int) ([][]float64, []string, error) {
	names := hwRuns.Workloads()
	var rows [][]float64
	var kept []string
	for _, name := range names {
		m, err := hwRuns.Get(gemstone.RunKey{Workload: name, Cluster: cluster, FreqMHz: freq})
		if err != nil {
			continue
		}
		var row []float64
		for _, e := range pmu.AllEvents() {
			row = append(row, m.Sample.Rate(e))
		}
		rows = append(rows, row)
		kept = append(kept, name)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("no runs for %s at %d MHz", cluster, freq)
	}
	return rows, kept, nil
}

// pathologicalCluster mimics the paper's Fig. 6 mean, which excludes its
// Cluster 16 (the extreme-regularity loop kernels).
func pathologicalCluster(wc *gemstone.WorkloadClustering) map[int]bool {
	excl := map[int]bool{}
	if l, ok := wc.Labels["par-basicmath-rad2deg"]; ok {
		excl[l] = true
	}
	return excl
}

// dumpStatsFiles writes one gem5-format stats.txt per run, named
// <workload>-<cluster>-<freq>.stats.txt — the files a real gem5 campaign
// would leave behind for retrospective analysis.
func dumpStatsFiles(dir string, rs *gemstone.RunSet) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for key, m := range rs.Runs {
		name := fmt.Sprintf("%s-%s-%d.stats.txt", key.Workload, key.Cluster, key.FreqMHz)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		err = gemstone.WriteGem5StatsFile(f, gemstone.Gem5Stats(m))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(dir, name string, gen func() ([]string, [][]string)) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	header, rows := gen()
	if err := report.WriteCSV(f, header, rows); err != nil {
		fatal(err)
	}
}
