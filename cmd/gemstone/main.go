// Command gemstone runs the full GemStone pipeline: it characterises the
// reference hardware platform, runs the gem5 model simulations, identifies
// sources of error with the statistical analyses of the paper's Section
// IV, builds and applies empirical power models (Sections V/VI), and
// compares model versions (Section VII).
//
// Usage:
//
//	gemstone [flags]
//
//	-cluster   a15|a7        cluster to analyse            (default a15)
//	-freq      MHz           analysis operating point      (default 1000)
//	-version   1|2           gem5 model version            (default 1)
//	-analyses  list          comma-separated subset of:
//	                         validate,fig3,fig4,fig5,gem5corr,regress,
//	                         fig6,power,fig7,fig8,versions,dendro,
//	                         consistency,workloads  (default all)
//	-workloads N             limit to the first N validation workloads
//	-csvdir    dir           also write CSV artefacts into dir
//	-cachedir  dir           memoise runs in a persistent cache at dir;
//	                         re-invocations replay instead of re-simulating
//	-progress                log per-campaign progress while collecting
//
// Campaigns are cancellable: SIGINT stops the outstanding simulations and
// exits; with -cachedir the completed runs are kept, so rerunning resumes
// where the campaign stopped.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"gemstone"
	"gemstone/internal/core"
	"gemstone/internal/lmbench"
	"gemstone/internal/platform"
	"gemstone/internal/pmu"
	"gemstone/internal/report"
	"gemstone/internal/stats"
)

// progressObserver logs campaign progress at ~10% granularity plus the
// final per-stage time report.
type progressObserver struct {
	mu    sync.Mutex
	total int
	done  int
	next  int // completion count at which to log the next line
}

func (p *progressObserver) CollectStart(platformName string, totalJobs int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = totalJobs
	p.done = 0
	p.next = (totalJobs + 9) / 10
	log.Printf("  %s: %d runs queued", platformName, totalJobs)
}

func (p *progressObserver) RunStart(core.RunKey) {}

func (p *progressObserver) step() {
	p.done++
	if p.done >= p.next {
		log.Printf("  %d/%d runs done", p.done, p.total)
		p.next += (p.total + 9) / 10
	}
}

func (p *progressObserver) CacheHit(core.RunKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.step()
}

func (p *progressObserver) RunDone(core.RunKey, platform.Measurement, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.step()
}

func (p *progressObserver) RunError(key core.RunKey, err error) {
	log.Printf("  run %s failed: %v", key, err)
}

func (p *progressObserver) CollectDone(stats core.CollectStats) {
	log.Printf("  campaign: %s", stats)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemstone: ")

	cluster := flag.String("cluster", gemstone.ClusterA15, "cluster to analyse (a7|a15)")
	freq := flag.Int("freq", 1000, "analysis frequency in MHz")
	version := flag.Int("version", 1, "gem5 model version (1|2)")
	analyses := flag.String("analyses", "all", "comma-separated analyses to run")
	nWorkloads := flag.Int("workloads", 0, "limit to the first N validation workloads (0 = all)")
	csvDir := flag.String("csvdir", "", "write CSV artefacts into this directory")
	statsDir := flag.String("statsdir", "", "dump one gem5 stats.txt per model run into this directory")
	cacheDir := flag.String("cachedir", "", "memoise runs in a persistent cache at this directory")
	progress := flag.Bool("progress", false, "log campaign progress while collecting")
	flag.Parse()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	var cache gemstone.RunCache
	if *cacheDir != "" {
		var err error
		if cache, err = gemstone.OpenRunCache(*cacheDir); err != nil {
			log.Fatal(err)
		}
	}
	metrics := gemstone.NewCollectMetrics()
	observer := gemstone.CollectObserver(metrics)
	if *progress {
		observer = gemstone.MultiCollectObserver(metrics, &progressObserver{})
	}
	collect := func(pl *gemstone.Platform, opt gemstone.CollectOptions) (*gemstone.RunSet, error) {
		opt.Cache = cache
		opt.Observer = observer
		return gemstone.CollectContext(ctx, pl, opt)
	}

	want := map[string]bool{}
	for _, a := range strings.Split(*analyses, ",") {
		want[strings.TrimSpace(a)] = true
	}
	on := func(name string) bool { return want["all"] || want[name] }

	ver := gemstone.V1
	if *version == 2 {
		ver = gemstone.V2
	}

	profiles := gemstone.ValidationWorkloads()
	if *nWorkloads > 0 && *nWorkloads < len(profiles) {
		profiles = profiles[:*nWorkloads]
	}
	opt := func() gemstone.CollectOptions {
		return gemstone.CollectOptions{
			Workloads: profiles,
			Clusters:  []string{*cluster},
		}
	}

	log.Printf("collecting hardware characterisation (%d workloads, cluster %s)...", len(profiles), *cluster)
	hwRuns, err := collect(gemstone.HardwarePlatform(), opt())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("running gem5 %v simulations...", ver)
	simRuns, err := collect(gemstone.Gem5Platform(ver), opt())
	if err != nil {
		log.Fatal(err)
	}
	if *statsDir != "" {
		if err := dumpStatsFiles(*statsDir, simRuns); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d stats.txt files to %s", len(simRuns.Runs), *statsDir)
	}

	var clustering *gemstone.WorkloadClustering
	needClusters := on("fig3") || on("fig6") || on("fig7") || on("fig8") || on("versions")
	if needClusters {
		clustering, err = gemstone.ClusterWorkloads(hwRuns, simRuns, *cluster, *freq, 16)
		if err != nil {
			log.Fatal(err)
		}
	}

	if on("validate") {
		vs, err := gemstone.Validate(hwRuns, simRuns, *cluster)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report.ValidationSummary(fmt.Sprintf("gem5 %v vs hardware", ver), vs))
		if mape, mpe, n := vs.SuiteSummary("parsec-"); n > 0 {
			fmt.Printf("PARSEC only: MAPE %.1f%% MPE %+.1f%% (%d runs)\n", mape, mpe, n)
		}
		fmt.Println()
	}
	if on("fig3") {
		fmt.Println(report.Fig3(clustering))
		writeCSV(*csvDir, "fig3.csv", func() ([]string, [][]string) { return report.Fig3CSV(clustering) })
	}
	if on("fig4") {
		curves := map[string][]lmbench.Point{}
		sizes := gemstone.DefaultLatencySizes()
		if *cluster == gemstone.ClusterA15 {
			curves["hw-a15"] = gemstone.MemoryLatency(gemstone.HardwareA15(), *freq, 256, sizes)
			curves["gem5-a15"] = gemstone.MemoryLatency(gemstone.Gem5Big(ver), *freq, 256, sizes)
		} else {
			curves["hw-a7"] = gemstone.MemoryLatency(gemstone.HardwareA7(), *freq, 256, sizes)
			curves["gem5-a7"] = gemstone.MemoryLatency(gemstone.Gem5LITTLE(ver), *freq, 256, sizes)
		}
		fmt.Println(report.Fig4(curves))
	}
	if on("fig5") {
		rows, err := gemstone.PMCErrorCorrelation(hwRuns, simRuns, *cluster, *freq, 30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.Fig5(rows))
		writeCSV(*csvDir, "fig5.csv", func() ([]string, [][]string) { return report.Fig5CSV(rows) })
	}
	if on("workloads") {
		fmt.Println("=== Workload suite ===")
		fmt.Printf("%-26s %-12s %7s %10s\n", "name", "suite", "threads", "insts")
		for _, p := range gemstone.Workloads() {
			fmt.Printf("%-26s %-12s %7d %10d\n", p.Name, p.Suite, p.Threads, p.TotalInsts)
		}
		fmt.Println()
	}
	if on("dendro") {
		// The hierarchical view behind the Fig. 3 cluster labels.
		X, names, err := workloadRateMatrix(hwRuns, *cluster, *freq)
		if err != nil {
			log.Fatal(err)
		}
		dend := stats.Agglomerate(stats.EuclideanDist(stats.Standardize(X)), stats.AverageLinkage)
		fmt.Println("=== Workload dendrogram (HCA of HW PMC rates) ===")
		fmt.Println(report.Dendrogram(dend, names))
	}
	if on("consistency") {
		fc, err := core.ErrorConsistency(hwRuns, simRuns, *cluster)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("=== Cross-frequency error-pattern consistency ===")
		for _, p := range fc.Pairs {
			fmt.Printf("  %4d vs %4d MHz: pearson %+.2f  rank %+.2f\n",
				p.FreqA, p.FreqB, p.Pearson, p.Spearman)
		}
		fmt.Println()
	}
	if on("gem5corr") {
		rows, err := gemstone.Gem5EventCorrelation(hwRuns, simRuns, *cluster, *freq, 0.3, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.Gem5Correlation(rows))
	}
	if on("regress") {
		sw := gemstone.DefaultStepwiseOptions()
		sw.MaxTerms = 8
		pmcRep, err := gemstone.ErrorRegressionPMC(hwRuns, simRuns, *cluster, *freq, sw)
		if err != nil {
			log.Fatal(err)
		}
		g5Rep, err := gemstone.ErrorRegressionGem5(hwRuns, simRuns, *cluster, *freq, sw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.Regression(pmcRep, g5Rep))
	}
	if on("fig6") {
		excl := pathologicalCluster(clustering)
		ratios, bp, err := gemstone.EventComparison(hwRuns, simRuns, *cluster, *freq,
			clustering.Labels, nil, gemstone.DefaultMapping(), excl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.Fig6(ratios, bp))
	}

	var model *gemstone.PowerModel
	if on("power") || on("fig7") || on("fig8") || on("versions") {
		log.Printf("building %s power model (restricted pool)...", *cluster)
		model, err = gemstone.BuildPowerModel(hwRuns, *cluster,
			gemstone.PowerBuildOptions{Pool: gemstone.RestrictedPool()})
		if err != nil {
			log.Fatal(err)
		}
	}
	if on("power") {
		fmt.Println(report.PowerModel(model))
		fmt.Println("run-time gem5 equation:")
		fmt.Println("  " + model.Equation(gemstone.DefaultMapping()))
		fmt.Println()
	}
	if on("fig7") {
		an, err := gemstone.AnalyzePowerEnergy(model, gemstone.DefaultMapping(),
			hwRuns, simRuns, *cluster, *freq, clustering.Labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.Fig7(an))
	}
	if on("fig8") {
		models := map[string]*gemstone.PowerModel{*cluster: model}
		baseFreq := gemstone.ExperimentFrequencies(*cluster)[0]
		hwCurve, err := gemstone.ScalingAnalysis(hwRuns, models, gemstone.DefaultMapping(),
			false, clustering.Labels, *cluster, baseFreq)
		if err != nil {
			log.Fatal(err)
		}
		simCurve, err := gemstone.ScalingAnalysis(simRuns, models, gemstone.DefaultMapping(),
			true, clustering.Labels, *cluster, baseFreq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.Fig8(hwCurve, simCurve))
	}
	if on("versions") {
		other := gemstone.V2
		if ver == gemstone.V2 {
			other = gemstone.V1
		}
		log.Printf("running gem5 %v simulations for the version comparison...", other)
		otherRuns, err := collect(gemstone.Gem5Platform(other), opt())
		if err != nil {
			log.Fatal(err)
		}
		v1Runs, v2Runs := simRuns, otherRuns
		if ver == gemstone.V2 {
			v1Runs, v2Runs = otherRuns, simRuns
		}
		vc, err := gemstone.CompareVersions(hwRuns, v1Runs, v2Runs, *cluster, *freq,
			model, gemstone.DefaultMapping(), clustering.Labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.Versions(vc))
	}

	if s := metrics.Stats(); s.Jobs > 0 {
		log.Printf("campaigns total: %d runs (%d simulated, %d cache hits, %d skipped) | plan %v cache %v sim %v wall %v",
			s.Jobs, s.Simulated, s.CacheHits, s.Skipped,
			s.PlanTime.Round(time.Microsecond), s.CacheTime.Round(time.Microsecond),
			s.SimTime.Round(time.Millisecond), s.WallTime.Round(time.Millisecond))
	}
}

// workloadRateMatrix rebuilds the standardisable PMC-rate matrix of the
// hardware runs for dendrogram rendering (workload x event rates).
func workloadRateMatrix(hwRuns *gemstone.RunSet, cluster string, freq int) ([][]float64, []string, error) {
	names := hwRuns.Workloads()
	var rows [][]float64
	var kept []string
	for _, name := range names {
		m, err := hwRuns.Get(gemstone.RunKey{Workload: name, Cluster: cluster, FreqMHz: freq})
		if err != nil {
			continue
		}
		var row []float64
		for _, e := range pmu.AllEvents() {
			row = append(row, m.Sample.Rate(e))
		}
		rows = append(rows, row)
		kept = append(kept, name)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("no runs for %s at %d MHz", cluster, freq)
	}
	return rows, kept, nil
}

// pathologicalCluster mimics the paper's Fig. 6 mean, which excludes its
// Cluster 16 (the extreme-regularity loop kernels).
func pathologicalCluster(wc *gemstone.WorkloadClustering) map[int]bool {
	excl := map[int]bool{}
	if l, ok := wc.Labels["par-basicmath-rad2deg"]; ok {
		excl[l] = true
	}
	return excl
}

// dumpStatsFiles writes one gem5-format stats.txt per run, named
// <workload>-<cluster>-<freq>.stats.txt — the files a real gem5 campaign
// would leave behind for retrospective analysis.
func dumpStatsFiles(dir string, rs *gemstone.RunSet) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for key, m := range rs.Runs {
		name := fmt.Sprintf("%s-%s-%d.stats.txt", key.Workload, key.Cluster, key.FreqMHz)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		err = gemstone.WriteGem5StatsFile(f, gemstone.Gem5Stats(m))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(dir, name string, gen func() ([]string, [][]string)) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	header, rows := gen()
	if err := report.WriteCSV(f, header, rows); err != nil {
		log.Fatal(err)
	}
}
