package main

import (
	"bytes"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/platform"
)

// TestProgressObserverReachesTotalWithErrors is the regression test for
// RunError: failed runs must advance the progress count, so a campaign
// with failures still reports N/N instead of stalling short.
func TestProgressObserverReachesTotalWithErrors(t *testing.T) {
	var buf bytes.Buffer
	p := newProgressObserver(slog.New(slog.NewTextHandler(&buf, nil)))
	now := time.Unix(1000, 0)
	p.now = func() time.Time { return now }

	key := core.RunKey{Workload: "w", Cluster: "a15", FreqMHz: 1000}
	p.CollectStart("odroid-xu3", 4)
	now = now.Add(2 * time.Second)
	p.RunDone(key, platform.Measurement{}, time.Second)
	p.RunError(key, errors.New("boom"))
	now = now.Add(2 * time.Second)
	p.CacheHit(key)
	p.RunDone(key, platform.Measurement{}, time.Second)

	out := buf.String()
	if !strings.Contains(out, "done=4") || !strings.Contains(out, "total=4") {
		t.Fatalf("progress never reached 4/4 — RunError must step:\n%s", out)
	}
	if !strings.Contains(out, "run failed") || !strings.Contains(out, "boom") {
		t.Fatalf("missing failure line:\n%s", out)
	}
}

// TestProgressObserverRateAndETA pins the throughput figures: two runs
// done two seconds in is 1.0 runs/sec, leaving a 2s ETA for the rest.
func TestProgressObserverRateAndETA(t *testing.T) {
	var buf bytes.Buffer
	p := newProgressObserver(slog.New(slog.NewTextHandler(&buf, nil)))
	now := time.Unix(1000, 0)
	p.now = func() time.Time { return now }

	key := core.RunKey{Workload: "w", Cluster: "a15", FreqMHz: 1000}
	p.CollectStart("odroid-xu3", 4)
	now = now.Add(2 * time.Second)
	p.RunDone(key, platform.Measurement{}, time.Second)
	p.RunDone(key, platform.Measurement{}, time.Second)

	out := buf.String()
	if !strings.Contains(out, "runs_per_sec=1.0") {
		t.Fatalf("missing runs_per_sec=1.0:\n%s", out)
	}
	if !strings.Contains(out, "eta=2s") {
		t.Fatalf("missing eta=2s:\n%s", out)
	}
}
