#!/bin/sh
# gemload smoke and soak against an in-process fleet: boots N gemstoned
# workers behind gemstone serve on loopback, replays the default
# cold/warm/events/analysis mix, and fails unless every client/server
# SLO reconciliation check passes.
#
# Usage:
#   scripts/loadtest.sh [-soak] [-bench out.json] [-out report.json] [-duration D]
#
#   default   2-worker fleet, short closed-loop smoke (CI quick job)
#   -soak     3-worker fleet, a worker killed every 2s plus wire chaos
#             (drops/duplicates/corruption) for the full window — the
#             SLO contract must hold through rolling worker death
#   -bench    also write the BENCH_serve.json-shaped metric export
#   -out      also write the full JSON report (CI uploads it)
#   -duration override the offered-load window
#
# The seed is pinned so the offered load (arrival schedule, tenant skew,
# spec sequence) is reproducible; wall-clock latencies of course vary
# with the machine.
set -eu
cd "$(dirname "$0")/.."

soak=0
bench=""
out=""
duration=""
while [ $# -gt 0 ]; do
	case "$1" in
	-soak) soak=1 ;;
	-bench)
		bench="$2"
		shift
		;;
	-out)
		out="$2"
		shift
		;;
	-duration)
		duration="$2"
		shift
		;;
	*)
		echo "usage: scripts/loadtest.sh [-soak] [-bench out.json] [-out report.json] [-duration D]" >&2
		exit 2
		;;
	esac
	shift
done

set -- -seed 42 -tenants 3 -skew 1.1
if [ "$soak" = 1 ]; then
	set -- "$@" -fleet 3 -concurrency 4 -kill-every 2s -chaos -duration "${duration:-20s}"
else
	set -- "$@" -fleet 2 -concurrency 3 -duration "${duration:-4s}"
fi
[ -n "$bench" ] && set -- "$@" -bench-out "$bench"
[ -n "$out" ] && set -- "$@" -out "$out"

exec go run ./cmd/gemload "$@"
