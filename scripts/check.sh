#!/bin/sh
# Tier-1 verification: build, vet, full test suite under the race
# detector. Equivalent to `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

# ISSUE.md's acceptance boxes must not reference files that don't
# exist: extract backticked tokens that look like paths (contain a
# slash, no spaces, not a flag) and stat each one. Catches the
# acceptance list drifting from the tree. (Satellite boxes may cite Go
# import paths like encoding/csv, so only the acceptance section is
# path-checked.)
if [ -f ISSUE.md ]; then
	missing=$(awk '/^## Acceptance criteria/{f=1;next} /^## /{f=0} f' ISSUE.md |
		(grep '^- \[' || true) |
		(grep -o '`[^`]*`' || true) | tr -d '`' | sort -u |
		while IFS= read -r ref; do
			case $ref in
			*" "*| -* | \.\.\.*) continue ;;
			*/*) [ -e "$ref" ] || printf '%s\n' "$ref" ;;
			esac
		done)
	if [ -n "$missing" ]; then
		echo "check.sh: ISSUE.md checklist references missing files:" >&2
		printf '  %s\n' $missing >&2
		exit 1
	fi
fi

go build ./...
go vet ./...
# The race detector slows the simulator ~10x; the core campaign tests
# need more than the default 10m timeout.
go test -race -timeout 45m ./...

# Execute (not merely build) the committed fuzz seed corpora: running a
# Fuzz target without -fuzz replays every seed in testdata/fuzz/ as a
# unit test, so a regressing seed fails the gate deterministically. The
# explicit -run keeps this step honest even if the main suite above ever
# narrows its selection.
go test -count=1 -run '^Fuzz' \
	./internal/core ./internal/workload ./internal/serve

# Trace-overhead smoke (mirrors `make trace-smoke`): traced vs untraced
# two-worker campaigns, best-of-5, asserting the <=2% tracing bar. Run
# without -race on purpose — it is a wall-clock measurement.
GEMSTONE_TRACE_SMOKE=1 go test -short -count=1 \
	-run TestTraceOverheadSmoke ./internal/dist/

# Fidelity-tier smoke (mirrors `make screen-smoke`): the atomic tier's
# error bound (short workload sweep) plus the screen-then-resimulate
# split at the core and serve layers.
go test -short -count=1 \
	-run 'TestAtomicErrorBound|TestScreenMixedFidelity|TestScreenModeCampaign' \
	./internal/platform/ ./internal/core/ ./internal/serve/

# staticcheck is advisory: run it when installed, but only fail the
# gate when CHECK_STRICT=1 (CI images without the tool still pass).
if command -v staticcheck >/dev/null 2>&1; then
	if ! staticcheck ./...; then
		if [ "${CHECK_STRICT:-0}" = "1" ]; then
			echo "check.sh: staticcheck failed (CHECK_STRICT=1)" >&2
			exit 1
		fi
		echo "check.sh: staticcheck reported issues (advisory; set CHECK_STRICT=1 to enforce)" >&2
	fi
else
	echo "check.sh: staticcheck not installed; skipping" >&2
fi
