#!/bin/sh
# Tier-1 verification: build, vet, full test suite under the race
# detector. Equivalent to `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
# The race detector slows the simulator ~10x; the core campaign tests
# need more than the default 10m timeout.
go test -race -timeout 45m ./...
