#!/bin/sh
# Tier-1 verification: build, vet, full test suite under the race
# detector. Equivalent to `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
# The race detector slows the simulator ~10x; the core campaign tests
# need more than the default 10m timeout.
go test -race -timeout 45m ./...

# staticcheck is advisory: run it when installed, but only fail the
# gate when CHECK_STRICT=1 (CI images without the tool still pass).
if command -v staticcheck >/dev/null 2>&1; then
	if ! staticcheck ./...; then
		if [ "${CHECK_STRICT:-0}" = "1" ]; then
			echo "check.sh: staticcheck failed (CHECK_STRICT=1)" >&2
			exit 1
		fi
		echo "check.sh: staticcheck reported issues (advisory; set CHECK_STRICT=1 to enforce)" >&2
	fi
else
	echo "check.sh: staticcheck not installed; skipping" >&2
fi
