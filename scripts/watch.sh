#!/bin/sh
# Result-drift watchdog (make watch): re-run the v1 validation campaign
# with the invariant validators enabled, append the results to a scratch
# ledger, and compare it against the committed baseline with gemwatch.
# Exit status follows gemwatch: 0 within tolerance, 1 drift, 2 errors.
#
#   sh scripts/watch.sh           compare against baselines/ledger.jsonl
#   sh scripts/watch.sh -update   re-bless the baseline from this run
#
# Environment:
#   BASELINE        baseline ledger path (default baselines/ledger.jsonl)
#   GEMSTONE_FLAGS  extra gemstone flags (e.g. "-version 2" to reproduce
#                   the Section VII drift on purpose)
#   GEMWATCH_FLAGS  extra gemwatch flags (e.g. "-html drift.html")
set -eu
cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-baselines/ledger.jsonl}
LEDGER=$(mktemp "${TMPDIR:-/tmp}/gemstone-ledger.XXXXXX")
trap 'rm -f "$LEDGER"' EXIT

# The campaign is deterministic, so an unchanged model reproduces the
# baseline numbers exactly; -analyses none skips the report rendering.
go run ./cmd/gemstone -analyses none -validate -ledger "$LEDGER" \
	${GEMSTONE_FLAGS:-} >/dev/null

if [ "${1:-}" = "-update" ]; then
	mkdir -p "$(dirname "$BASELINE")"
	cp "$LEDGER" "$BASELINE"
	echo "watch.sh: baseline re-blessed at $BASELINE"
	exit 0
fi

go run ./cmd/gemwatch -ledger "$LEDGER" -baseline "$BASELINE" \
	${GEMWATCH_FLAGS:-}
