#!/bin/sh
# Benchmark suite: campaign-engine Collect benchmarks (cold/traced/warm —
# the traced-vs-untraced pair bounds the tracing overhead), the obs span
# micro-benchmarks, and the stats kernels. The raw `go test -bench` output
# is converted to machine-readable JSON with no tooling beyond awk, so CI
# can diff runs across commits.
#
# Usage:
#   scripts/bench.sh [out.json]                 run, write out.json
#   scripts/bench.sh -c baseline.json [out.json]
#       run, write out.json, then print a per-benchmark comparison against
#       the committed baseline; time or allocation deltas beyond +-10% are
#       highlighted.
#   scripts/bench.sh -serve [-c baseline.json] [out.json]
#       run the gemload service-level benchmark (scripts/loadtest.sh) and
#       write/compare serve SLO metrics (latency percentiles, req/s)
#       instead of the go-bench suite. The committed baseline is
#       BENCH_serve.json.
#   scripts/bench.sh -atomic [-c baseline.json] [out.json]
#       run only the fidelity-tier pair (BenchmarkCollect_ColdCache vs
#       BenchmarkCollect_ColdCacheAtomic) and write the atomic-tier
#       baseline. The committed baseline is BENCH_atomic.json; gemwatch
#       -bench-atomic enforces the detailed/atomic speedup floor on it.
#
# The comparison understands both metric shapes: go-bench rows keyed on
# ns_per_op/allocs_per_op, and serve rows keyed on a generic value+unit
# (where ms and rps deltas highlight exactly like ns/op ones).
set -eu
cd "$(dirname "$0")/.."

serve=0
atomic=0
if [ "${1:-}" = "-serve" ]; then
	serve=1
	shift
elif [ "${1:-}" = "-atomic" ]; then
	atomic=1
	shift
fi
baseline=""
if [ "${1:-}" = "-c" ]; then
	baseline="$2"
	shift 2
fi

# compare BASELINE CURRENT: per-metric delta table. The value is
# ns_per_op when present (go-bench shape) and the generic "value" field
# otherwise (serve shape); allocations compare only when both sides
# carry them.
compare() {
	awk -v FS='[":,{}]+' '
	function field(line, key,   i, n, parts) {
		n = split(line, parts, FS)
		for (i = 1; i < n; i++) if (parts[i] == key) return parts[i+1]
		return ""
	}
	{
		name = field($0, "name"); if (name == "") next
		ns = field($0, "ns_per_op")
		if (ns == "") ns = field($0, "value")
		al = field($0, "allocs_per_op")
		un = field($0, "unit"); if (un == "") un = "ns/op"
		if (pass == 1) { base_ns[name] = ns; base_al[name] = al }
		else {
			new_ns[name] = ns; new_al[name] = al; unit[name] = un
			if (!(name in seen)) { order[++cnt] = name; seen[name] = 1 }
		}
	}
	END {
		printf "%-44s %14s %14s %9s %9s\n", "benchmark", "base", "new", "delta", "allocs"
		for (i = 1; i <= cnt; i++) {
			name = order[i]
			if (!(name in base_ns)) { printf "%-44s %14s %14s %9s\n", name, "-", new_ns[name], "new"; continue }
			dt = (new_ns[name] - base_ns[name]) / base_ns[name] * 100
			da = "-"
			mark = ""
			if (base_al[name] != "" && new_al[name] != "" && base_al[name] + 0 > 0) {
				dav = (new_al[name] - base_al[name]) / base_al[name] * 100
				da = sprintf("%+.1f%%", dav)
				if (dav > 10 || dav < -10) mark = " <<<"
			}
			if (dt > 10 || dt < -10) mark = " <<<"
			printf "%-44s %14s %14s %8.1f%% %9s%s (%s)\n", name, base_ns[name], new_ns[name], dt, da, mark, unit[name]
		}
	}
	' pass=1 "$1" pass=2 "$2"
}

if [ "$serve" = 1 ]; then
	out="${1:-BENCH_serve.json}"
	sh scripts/loadtest.sh -bench "$out"
	echo "wrote $out"
else
	if [ "$atomic" = 1 ]; then
		out="${1:-BENCH_atomic.json}"
	else
		out="${1:-BENCH_hotloop.json}"
	fi
	tmp="$(mktemp)"
	trap 'rm -f "$tmp"' EXIT INT TERM

	if [ "$atomic" = 1 ]; then
		# Just the fidelity-tier pair: the detailed cold campaign and the
		# identical campaign at the atomic tier. The ratio of the two rows
		# is the per-op speedup gemwatch -bench-atomic guards.
		go test -run '^$' -bench 'BenchmarkCollect_ColdCache$|BenchmarkCollect_ColdCacheAtomic$' -benchtime 2x -benchmem . | tee "$tmp"
	else
		# The cold campaign simulates the full validation suite per iteration
		# (~seconds each); 2 timed iterations keeps the suite bounded.
		go test -run '^$' -bench 'BenchmarkCollect_' -benchtime 2x -benchmem . | tee "$tmp"
		# Distributed traced-vs-untraced pair (the tracing-overhead bar on the
		# wire path; the committed baseline for it is BENCH_trace.json).
		go test -run '^$' -bench 'BenchmarkRemoteCampaign' -benchtime 20x -benchmem ./internal/dist | tee -a "$tmp"
		go test -run '^$' -bench 'BenchmarkSpan' -benchmem ./internal/obs | tee -a "$tmp"
		go test -run '^$' -bench '.' -benchmem ./internal/stats | tee -a "$tmp"
	fi

	awk '
	BEGIN { print "[" }
	/^Benchmark/ {
		if (n++) printf ",\n"
		printf "  {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", $1, $2, $3
		for (i = 4; i < NF; i++) {
			if ($(i+1) == "B/op")      printf ",\"bytes_per_op\":%s", $i
			if ($(i+1) == "allocs/op") printf ",\"allocs_per_op\":%s", $i
		}
		printf "}"
	}
	END { if (n) printf "\n"; print "]" }
	' "$tmp" >"$out"
	echo "wrote $out"
fi

if [ -n "$baseline" ]; then
	if [ ! -f "$baseline" ]; then
		echo "baseline $baseline not found" >&2
		exit 1
	fi
	echo
	echo "comparison vs $baseline (deltas beyond +-10% marked <<<):"
	compare "$baseline" "$out"
fi
