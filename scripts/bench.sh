#!/bin/sh
# Observability benchmark suite: campaign-engine Collect benchmarks
# (cold/traced/warm — the traced-vs-untraced pair bounds the tracing
# overhead), the obs span micro-benchmarks, and the stats kernels. The
# raw `go test -bench` output is converted to machine-readable JSON at
# BENCH_obs.json (or $1) with no tooling beyond awk, so CI can diff
# runs across commits.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_obs.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT INT TERM

# The cold campaign simulates the full validation suite per iteration
# (~seconds each); 2 timed iterations keeps the suite bounded.
go test -run '^$' -bench 'BenchmarkCollect_' -benchtime 2x -benchmem . | tee "$tmp"
go test -run '^$' -bench 'BenchmarkSpan' -benchmem ./internal/obs | tee -a "$tmp"
go test -run '^$' -bench '.' -benchmem ./internal/stats | tee -a "$tmp"

awk '
BEGIN { print "[" }
/^Benchmark/ {
	if (n++) printf ",\n"
	printf "  {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s", $1, $2, $3
	for (i = 4; i < NF; i++) {
		if ($(i+1) == "B/op")      printf ",\"bytes_per_op\":%s", $i
		if ($(i+1) == "allocs/op") printf ",\"allocs_per_op\":%s", $i
	}
	printf "}"
}
END { if (n) printf "\n"; print "]" }
' "$tmp" >"$out"
echo "wrote $out"
