// Benchmark harness regenerating every table and figure of the paper's
// evaluation. Each benchmark times the analysis it names and prints the
// regenerated artefact once (the rows/series the paper reports), so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Data collection (the simulated
// Experiments 1-4) is shared across benchmarks and excluded from timing.
package gemstone_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"gemstone"
	"gemstone/internal/lmbench"
	"gemstone/internal/report"
)

// benchDataT holds the full experiment campaign shared by the benchmarks.
type benchDataT struct {
	hwVal    *gemstone.RunSet // 45 validation workloads, both clusters, 4 freqs
	v1, v2   *gemstone.RunSet
	hwPower  *gemstone.RunSet // 65 workloads for power characterisation (A15+A7)
	models   map[string]*gemstone.PowerModel
	clusters *gemstone.WorkloadClustering // A15 @ 1 GHz
}

var (
	benchOnce sync.Once
	benchErr  error
	bench     benchDataT
	printed   sync.Map
)

func benchData(b *testing.B) *benchDataT {
	b.Helper()
	benchOnce.Do(func() {
		valOpt := func() gemstone.CollectOptions { return gemstone.CollectOptions{} }
		if bench.hwVal, benchErr = gemstone.Collect(context.Background(), gemstone.HardwarePlatform(), valOpt()); benchErr != nil {
			return
		}
		if bench.v1, benchErr = gemstone.Collect(context.Background(), gemstone.Gem5Platform(gemstone.V1), valOpt()); benchErr != nil {
			return
		}
		if bench.v2, benchErr = gemstone.Collect(context.Background(), gemstone.Gem5Platform(gemstone.V2), valOpt()); benchErr != nil {
			return
		}
		if bench.hwPower, benchErr = gemstone.Collect(context.Background(), gemstone.HardwarePlatform(), gemstone.CollectOptions{
			Workloads: gemstone.Workloads(),
		}); benchErr != nil {
			return
		}
		bench.models = map[string]*gemstone.PowerModel{}
		for _, cl := range []string{gemstone.ClusterA7, gemstone.ClusterA15} {
			m, err := gemstone.BuildPowerModel(bench.hwPower, cl,
				gemstone.PowerBuildOptions{Pool: gemstone.RestrictedPool()})
			if err != nil {
				benchErr = err
				return
			}
			bench.models[cl] = m
		}
		bench.clusters, benchErr = gemstone.ClusterWorkloads(bench.hwVal, bench.v1, gemstone.ClusterA15, 1000, 16)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return &bench
}

// printOnce emits an artefact a single time across all benchmark
// iterations and -count repetitions.
func printOnce(key, artefact string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Println(artefact)
	}
}

func (d *benchDataT) excludePathological() map[int]bool {
	excl := map[int]bool{}
	if l, ok := d.clusters.Labels["par-basicmath-rad2deg"]; ok {
		excl[l] = true
	}
	return excl
}

// BenchmarkTable1_HeadlineErrors regenerates the Section IV headline
// numbers: per-cluster execution-time MAPE/MPE across all DVFS levels,
// the PARSEC-only subset, and the per-frequency breakdown.
func BenchmarkTable1_HeadlineErrors(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		a15, err := gemstone.Validate(d.hwVal, d.v1, gemstone.ClusterA15)
		if err != nil {
			b.Fatal(err)
		}
		a7, err := gemstone.Validate(d.hwVal, d.v1, gemstone.ClusterA7)
		if err != nil {
			b.Fatal(err)
		}
		pm, pmpe, _ := a15.SuiteSummary("parsec-")
		out = report.ValidationSummary("T1 gem5-v1 ex5_big", a15) +
			report.ValidationSummary("T1 gem5-v1 ex5_LITTLE", a7) +
			fmt.Sprintf("PARSEC-only (A15): MAPE %.1f%% MPE %+.1f%%  [paper: 25.5%% / -7.5%%]\n", pm, pmpe)
	}
	printOnce("t1", out)
}

// BenchmarkFig3_WorkloadMPEByCluster regenerates Fig. 3: per-workload MPE
// at 1 GHz on the A15, ordered and labelled by HCA cluster.
func BenchmarkFig3_WorkloadMPEByCluster(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	var wc *gemstone.WorkloadClustering
	for i := 0; i < b.N; i++ {
		var err error
		wc, err = gemstone.ClusterWorkloads(d.hwVal, d.v1, gemstone.ClusterA15, 1000, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig3", report.Fig3(wc))
}

// BenchmarkFig4_MemoryLatency regenerates Fig. 4: the lat_mem_rd curves on
// hardware and the gem5 models, both clusters, stride 256.
func BenchmarkFig4_MemoryLatency(b *testing.B) {
	sizes := gemstone.DefaultLatencySizes()
	var curves map[string][]lmbench.Point
	for i := 0; i < b.N; i++ {
		curves = map[string][]lmbench.Point{
			"hw-a15":   gemstone.MemoryLatency(gemstone.HardwareA15(), 1000, 256, sizes),
			"gem5-a15": gemstone.MemoryLatency(gemstone.Gem5Big(gemstone.V1), 1000, 256, sizes),
			"hw-a7":    gemstone.MemoryLatency(gemstone.HardwareA7(), 1000, 256, sizes),
			"gem5-a7":  gemstone.MemoryLatency(gemstone.Gem5LITTLE(gemstone.V1), 1000, 256, sizes),
		}
	}
	printOnce("fig4", report.Fig4(curves))
}

// BenchmarkFig5_PMCCorrelation regenerates Fig. 5: correlation of each HW
// PMC rate with the execution-time MPE, grouped by event HCA cluster.
func BenchmarkFig5_PMCCorrelation(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	var rows []gemstone.EventCorr
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = gemstone.PMCErrorCorrelation(d.hwVal, d.v1, gemstone.ClusterA15, 1000, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig5", report.Fig5(rows))
}

// BenchmarkTable2_Gem5EventCorrelation regenerates the Section IV-C
// analysis: gem5 statistics with |r| >= 0.3 versus the error, clustered.
func BenchmarkTable2_Gem5EventCorrelation(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	var rows []gemstone.Gem5EventCorr
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = gemstone.Gem5EventCorrelation(d.hwVal, d.v1, gemstone.ClusterA15, 1000, 0.3, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("t2", report.Gem5Correlation(rows))
}

// BenchmarkTable3_ErrorRegression regenerates the Section IV-D stepwise
// regressions of the error onto HW PMCs and onto gem5 statistics.
func BenchmarkTable3_ErrorRegression(b *testing.B) {
	d := benchData(b)
	sw := gemstone.DefaultStepwiseOptions()
	sw.MaxTerms = 8
	b.ResetTimer()
	var pmcRep, g5Rep *gemstone.RegressionReport
	for i := 0; i < b.N; i++ {
		var err error
		pmcRep, err = gemstone.ErrorRegressionPMC(d.hwVal, d.v1, gemstone.ClusterA15, 1000, sw)
		if err != nil {
			b.Fatal(err)
		}
		g5Rep, err = gemstone.ErrorRegressionGem5(d.hwVal, d.v1, gemstone.ClusterA15, 1000, sw)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("t3", report.Regression(pmcRep, g5Rep))
}

// BenchmarkFig6_EventComparison regenerates Fig. 6: gem5 events normalised
// to their HW PMC equivalents, per cluster, plus the BP accuracy numbers.
func BenchmarkFig6_EventComparison(b *testing.B) {
	d := benchData(b)
	excl := d.excludePathological()
	b.ResetTimer()
	var ratios []gemstone.EventRatio
	var bp *gemstone.BPComparison
	for i := 0; i < b.N; i++ {
		var err error
		ratios, bp, err = gemstone.EventComparison(d.hwVal, d.v1, gemstone.ClusterA15, 1000,
			d.clusters.Labels, nil, gemstone.DefaultMapping(), excl)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig6", report.Fig6(ratios, bp))
}

// BenchmarkTable4_PowerModelQuality regenerates the Section V power-model
// fit: constrained stepwise selection + OLS on the 65-workload campaign.
func BenchmarkTable4_PowerModelQuality(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	var a15, a7 *gemstone.PowerModel
	for i := 0; i < b.N; i++ {
		var err error
		a15, err = gemstone.BuildPowerModel(d.hwPower, gemstone.ClusterA15,
			gemstone.PowerBuildOptions{Pool: gemstone.RestrictedPool()})
		if err != nil {
			b.Fatal(err)
		}
		a7, err = gemstone.BuildPowerModel(d.hwPower, gemstone.ClusterA7,
			gemstone.PowerBuildOptions{Pool: gemstone.RestrictedPool()})
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("t4", report.PowerModel(a15)+report.PowerModel(a7))
}

// BenchmarkFig7_PowerEnergyByCluster regenerates Fig. 7: power and energy
// from HW PMCs versus gem5 events, per workload cluster.
func BenchmarkFig7_PowerEnergyByCluster(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	var a15An, a7An *gemstone.PowerEnergyAnalysis
	for i := 0; i < b.N; i++ {
		var err error
		a15An, err = gemstone.AnalyzePowerEnergy(d.models[gemstone.ClusterA15], gemstone.DefaultMapping(),
			d.hwVal, d.v1, gemstone.ClusterA15, 1000, d.clusters.Labels)
		if err != nil {
			b.Fatal(err)
		}
		a7An, err = gemstone.AnalyzePowerEnergy(d.models[gemstone.ClusterA7], gemstone.DefaultMapping(),
			d.hwVal, d.v1, gemstone.ClusterA7, 1000, d.clusters.Labels)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("fig7", report.Fig7(a15An)+report.Fig7(a7An))
}

// BenchmarkFig8_DVFSScaling regenerates Fig. 8: performance/power/energy
// scaling normalised to the A7 at 200 MHz, hardware vs model, plus the
// Section VI A15 speedup/energy spread.
func BenchmarkFig8_DVFSScaling(b *testing.B) {
	d := benchData(b)
	mapping := gemstone.DefaultMapping()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		hwCurve, err := gemstone.ScalingAnalysis(d.hwVal, d.models, mapping, false,
			d.clusters.Labels, gemstone.ClusterA7, 200)
		if err != nil {
			b.Fatal(err)
		}
		simCurve, err := gemstone.ScalingAnalysis(d.v1, d.models, mapping, true,
			d.clusters.Labels, gemstone.ClusterA7, 200)
		if err != nil {
			b.Fatal(err)
		}
		hwPerf, err := gemstone.ClusterRatio(d.hwVal, gemstone.ClusterA15, 600, 1800,
			d.clusters.Labels, gemstone.MetricSpeedup, d.models, mapping, false)
		if err != nil {
			b.Fatal(err)
		}
		hwEn, err := gemstone.ClusterRatio(d.hwVal, gemstone.ClusterA15, 600, 1800,
			d.clusters.Labels, gemstone.MetricEnergyIncrease, d.models, mapping, false)
		if err != nil {
			b.Fatal(err)
		}
		simPerf, err := gemstone.ClusterRatio(d.v1, gemstone.ClusterA15, 600, 1800,
			d.clusters.Labels, gemstone.MetricSpeedup, d.models, mapping, true)
		if err != nil {
			b.Fatal(err)
		}
		simEn, err := gemstone.ClusterRatio(d.v1, gemstone.ClusterA15, 600, 1800,
			d.clusters.Labels, gemstone.MetricEnergyIncrease, d.models, mapping, true)
		if err != nil {
			b.Fatal(err)
		}
		out = report.Fig8(hwCurve, simCurve) +
			"A15 600 MHz -> 1800 MHz (Section VI):\n" +
			report.Speedups("hardware", hwPerf, hwEn) +
			report.Speedups("gem5 v1", simPerf, simEn)
	}
	printOnce("fig8", out)
}

// BenchmarkTable5_ModelVersionComparison regenerates the Section VII
// study: gem5 v1 (BP bug) vs v2 (fixed) against the same hardware.
func BenchmarkTable5_ModelVersionComparison(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	var vc *gemstone.VersionComparison
	for i := 0; i < b.N; i++ {
		var err error
		vc, err = gemstone.CompareVersions(d.hwVal, d.v1, d.v2, gemstone.ClusterA15, 1000,
			d.models[gemstone.ClusterA15], gemstone.DefaultMapping(), d.clusters.Labels)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("t5", report.Versions(vc))
}

// BenchmarkAblation_FixOneDefect quantifies what repairing each gem5
// defect in isolation does to the A15 model's error at 1 GHz. It
// regenerates the paper's Section IV-F/VII findings: fixing the BP bug is
// the dominant improvement, while fixing the L1 ITLB size alone makes the
// error larger because the BP bug still drives the ITLB traffic.
func BenchmarkAblation_FixOneDefect(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	var rows []gemstone.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = gemstone.RunAblationStudy(d.hwVal, nil, 1000, gemstone.FixOneDefect)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("ablation-fix", report.Ablation("fix one defect at a time (A15 @ 1 GHz)", rows))
}

// BenchmarkAblation_OnlyOneDefect measures each defect's standalone error
// contribution against a defect-free model.
func BenchmarkAblation_OnlyOneDefect(b *testing.B) {
	d := benchData(b)
	b.ResetTimer()
	var rows []gemstone.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = gemstone.RunAblationStudy(d.hwVal, nil, 1000, gemstone.OnlyOneDefect)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("ablation-only", report.Ablation("one defect at a time (A15 @ 1 GHz)", rows))
}

// BenchmarkImprovementLoop regenerates the Section IV-F repair procedure:
// greedily fix the most significant remaining defect, re-validating the
// whole system after every change. The loop must find the BP bug first.
func BenchmarkImprovementLoop(b *testing.B) {
	d := benchData(b)
	var profiles []gemstone.WorkloadProfile
	for _, name := range []string{
		"mi-crc32", "whetstone", "dhrystone", "parsec-canneal-1",
		"mi-qsort", "mi-adpcm-d", "parsec-blackscholes-1", "par-bitcount",
	} {
		p, err := gemstone.WorkloadByName(name)
		if err != nil {
			b.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	b.ResetTimer()
	var steps []gemstone.ImprovementStep
	for i := 0; i < b.N; i++ {
		var err error
		steps, err = gemstone.IterateImprovements(d.hwVal, profiles, 1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("improve", report.Improvements(steps))
}

// BenchmarkBaseline_AnalyticalVsEmpirical reproduces the paper's Section
// II positioning: an uncalibrated McPAT-style analytical model versus the
// fitted empirical PMC model, validated against the same sensor data.
func BenchmarkBaseline_AnalyticalVsEmpirical(b *testing.B) {
	d := benchData(b)
	var obs []gemstone.PowerObservation
	for _, m := range d.hwPower.Runs {
		if m.Cluster == gemstone.ClusterA15 {
			obs = append(obs, gemstone.MeasurementObservation(m))
		}
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		analytical, err := gemstone.NewAnalyticalPowerModel(gemstone.HardwareA15(), gemstone.DefaultAnalyticalConfig())
		if err != nil {
			b.Fatal(err)
		}
		qa := analytical.Validate(obs)
		qe := d.models[gemstone.ClusterA15].Quality
		out = fmt.Sprintf("=== Baseline — analytical (McPAT-style) vs empirical PMC model (A15) ===\n"+
			"analytical (uncalibrated): MAPE %5.1f%%  MPE %+6.1f%%  max APE %5.1f%%   [paper cites ~25%% for McPAT on this board]\n"+
			"empirical (Section V):     MAPE %5.2f%%  MPE %+6.2f%%  max APE %5.1f%%\n",
			qa.MAPE, qa.MPE, qa.MaxAPE, qe.MAPE, qe.MPE, qe.MaxAPE)
	}
	printOnce("baseline", out)
}

// campaignOpt is the validation campaign the cache benchmarks collect:
// all 45 validation workloads across the A15's Experiment-1 DVFS points.
func campaignOpt(cache gemstone.RunCache) gemstone.CollectOptions {
	return gemstone.CollectOptions{
		Clusters: []string{gemstone.ClusterA15},
		Cache:    cache,
	}
}

// BenchmarkCollect_ColdCache measures the validation campaign with an
// empty cache: every run simulates (and is stored). Compare against
// BenchmarkCollect_WarmCache for the replay speedup.
func BenchmarkCollect_ColdCache(b *testing.B) {
	pl := gemstone.HardwarePlatform()
	for i := 0; i < b.N; i++ {
		rs, err := gemstone.Collect(context.Background(), pl, campaignOpt(gemstone.NewMemoryRunCache(0)))
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Runs) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCollect_ColdCacheAtomic is BenchmarkCollect_ColdCache at the
// atomic fidelity tier: the identical campaign grid predicted from
// short anchor runs instead of full detailed simulation. The acceptance
// bar (BENCH_atomic.json) is a >= 10x per-op win over the detailed cold
// run — the fast path that makes screen-then-resimulate campaigns pay.
func BenchmarkCollect_ColdCacheAtomic(b *testing.B) {
	pl := gemstone.HardwarePlatform()
	for i := 0; i < b.N; i++ {
		opt := campaignOpt(gemstone.NewMemoryRunCache(0))
		opt.Fidelity = gemstone.FidelityAtomic
		rs, err := gemstone.Collect(context.Background(), pl, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Runs) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCollect_ColdCacheTraced is BenchmarkCollect_ColdCache with a
// span tracer attached, so the pair bounds the tracing overhead on a
// real campaign. The acceptance bar is <= 2% over the untraced cold run;
// the per-run span cost is tens of nanoseconds against simulations that
// take milliseconds (see BenchmarkSpanEnabled in internal/obs).
func BenchmarkCollect_ColdCacheTraced(b *testing.B) {
	pl := gemstone.HardwarePlatform()
	for i := 0; i < b.N; i++ {
		opt := campaignOpt(gemstone.NewMemoryRunCache(0))
		opt.Tracer = gemstone.NewTracer()
		rs, err := gemstone.Collect(context.Background(), pl, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Runs) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkCollect_WarmCache measures the same campaign replayed from a
// warm in-memory cache: no run simulates. The acceptance bar is a >= 10x
// speedup over BenchmarkCollect_ColdCache; in practice it is orders of
// magnitude.
func BenchmarkCollect_WarmCache(b *testing.B) {
	pl := gemstone.HardwarePlatform()
	cache := gemstone.NewMemoryRunCache(0)
	if _, err := gemstone.Collect(context.Background(), pl, campaignOpt(cache)); err != nil {
		b.Fatal(err)
	}
	metrics := gemstone.NewCollectMetrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := campaignOpt(cache)
		opt.Observer = metrics
		rs, err := gemstone.Collect(context.Background(), pl, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Runs) == 0 {
			b.Fatal("empty campaign")
		}
	}
	b.StopTimer()
	if s := metrics.Stats(); s.Simulated != 0 {
		b.Fatalf("warm campaign simulated %d runs", s.Simulated)
	}
}

// BenchmarkCollect_WarmDiskCache replays the campaign from the on-disk
// tier only (a fresh memory tier every iteration), measuring the
// persistent-store decode path.
func BenchmarkCollect_WarmDiskCache(b *testing.B) {
	pl := gemstone.HardwarePlatform()
	disk, err := gemstone.NewDiskRunCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := gemstone.Collect(context.Background(), pl, campaignOpt(disk)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := gemstone.Collect(context.Background(), pl, campaignOpt(disk))
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Runs) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: one full
// workload run on the reference A15 per iteration, reported in MIPS.
func BenchmarkSimulatorThroughput(b *testing.B) {
	board := gemstone.HardwarePlatform()
	prof, err := gemstone.WorkloadByName("dhrystone")
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := board.Run(prof, gemstone.ClusterA15, 1000)
		if err != nil {
			b.Fatal(err)
		}
		insts += m.Sample.Tally.Committed
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "MIPS")
}
