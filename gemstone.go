// Package gemstone is the public API of GemStone-Go, a hardware-validated
// CPU performance and energy modelling framework reproducing Walker et
// al., "Hardware-Validated CPU Performance and Energy Modelling"
// (ISPASS 2018).
//
// GemStone compares CPU performance models (simulated gem5 "ex5" models of
// the Exynos-5422) against a reference platform (a simulated ODROID-XU3
// board with PMU counters and power sensors), identifies sources of error
// with statistical techniques that need no detailed CPU specifications,
// and builds empirical PMC-based power models that can be applied to both
// hardware PMC data and gem5 statistics.
//
// The typical flow mirrors the paper's Fig. 1:
//
//	hwRuns, _ := gemstone.Collect(gemstone.HardwarePlatform(), gemstone.CollectOptions{})  // Experiment 1/3/4
//	simRuns, _ := gemstone.Collect(gemstone.Gem5Platform(gemstone.V1), gemstone.CollectOptions{}) // Experiment 2
//	s := gemstone.NewSession(hwRuns, simRuns, gemstone.ClusterA15, 1000)
//	summary, _ := s.Validate()
//	clusters, _ := s.ClusterWorkloads(16)
//	model, _ := s.BuildPowerModel(gemstone.PowerBuildOptions{Pool: gemstone.RestrictedPool()})
//	energy, _ := s.AnalyzePowerEnergy(model, gemstone.DefaultMapping(), clusters.Labels)
//
// Every Session method also exists as a top-level function taking the run
// sets and operating point explicitly (gemstone.Validate, ...); the two
// surfaces are interchangeable. Campaigns distribute across machines with
// internal/dist's coordinator and the gemstoned worker daemon.
package gemstone

import (
	"context"
	"io"

	"gemstone/internal/core"
	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/isa"
	"gemstone/internal/ledger"
	"gemstone/internal/lmbench"
	"gemstone/internal/mcpat"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/pmu"
	"gemstone/internal/power"
	"gemstone/internal/stats"
	"gemstone/internal/workload"
)

// Cluster names of the Exynos-5422's two CPU clusters.
const (
	ClusterA7  = hw.ClusterA7
	ClusterA15 = hw.ClusterA15
)

// Gem5 model versions (Section VII: V1 carries the branch-predictor bug,
// V2 the fix).
const (
	V1 = gem5.V1
	V2 = gem5.V2
)

// Platform and measurement types.
type (
	// Platform is a runnable system: the reference board or a gem5 model.
	Platform = platform.Platform
	// Measurement is the result of one workload run at one DVFS point.
	Measurement = platform.Measurement
	// ClusterConfig describes one CPU cluster.
	ClusterConfig = platform.ClusterConfig
	// DVFSPoint is one frequency/voltage operating point.
	DVFSPoint = platform.DVFSPoint
	// Fidelity selects a simulation tier (detailed or atomic); see
	// FidelityDetailed and FidelityAtomic.
	Fidelity = platform.Fidelity
)

// Simulation tiers. The detailed tier runs the full pipeline timing model
// and is pinned bit-for-bit by the golden equivalence tests; the atomic
// tier predicts measurements from truncated anchor runs an order of
// magnitude faster, within a documented error bound (see README.md,
// "Fidelity tiers").
const (
	FidelityDetailed = platform.FidelityDetailed
	FidelityAtomic   = platform.FidelityAtomic
)

// ParseFidelity maps a spelling ("", "detailed", "atomic") to its tier.
func ParseFidelity(s string) (Fidelity, error) { return platform.ParseFidelity(s) }

// Workload types.
type (
	// WorkloadProfile describes one synthetic benchmark.
	WorkloadProfile = workload.Profile
)

// Campaign-engine types (see internal/core for full documentation).
type (
	// RunCache memoises measurements under content-addressed keys; see
	// NewMemoryRunCache, NewDiskRunCache and OpenRunCache.
	RunCache = core.RunCache
	// CollectObserver receives per-run campaign lifecycle callbacks.
	CollectObserver = core.CollectObserver
	// CollectStats aggregates one campaign's counters and stage times.
	CollectStats = core.CollectStats
	// CollectMetrics is a ready-made thread-safe counting observer.
	CollectMetrics = core.Metrics
	// CollectError reports an incomplete campaign; it carries the failed
	// runs, the skipped jobs and the completed partial results.
	CollectError = core.CollectError
	// RunError is one failed run inside a CollectError.
	RunError = core.RunError
	// ScreenOptions configures a screen-then-resimulate campaign.
	ScreenOptions = core.ScreenOptions
	// ScreenResult is the outcome of a screen-then-resimulate campaign:
	// mixed-fidelity run sets plus the flagged (re-simulated) points.
	ScreenResult = core.ScreenResult
)

// Observability types (see internal/obs for full documentation).
type (
	// Tracer records named spans; export with WriteChromeTrace and open
	// the file in chrome://tracing or ui.perfetto.dev. A nil *Tracer is
	// the disabled tracer: every instrumented path reduces to a pointer
	// check.
	Tracer = obs.Tracer
	// TraceSpan is one in-flight trace region.
	TraceSpan = obs.Span
	// TraceAttr annotates a span.
	TraceAttr = obs.Attr
	// MetricsRegistry holds Prometheus-style counters/gauges/histograms.
	MetricsRegistry = obs.Registry
	// MetricsServer is a running /metrics + /debug/pprof endpoint.
	MetricsServer = obs.Server
)

// NewTracer returns an enabled span tracer. Pass it as
// CollectOptions.Tracer (campaign phases + simulator phases per run) or
// attach it to a Platform with SetTracer for direct Run calls.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ServeMetrics starts the observability HTTP endpoint on addr: the
// registry in Prometheus text format on /metrics, the Go profiler on
// /debug/pprof/ and a liveness probe on /healthz.
func ServeMetrics(addr string, reg *MetricsRegistry) (*MetricsServer, error) {
	return obs.Serve(addr, reg)
}

// NewRegistryCollectObserver returns a CollectObserver exporting campaign
// progress and simulator tallies (stall breakdown, cache/TLB misses, sim
// time histogram, run-cache hit ratio) as gemstone_* metrics in reg.
func NewRegistryCollectObserver(reg *MetricsRegistry) CollectObserver {
	return core.NewRegistryObserver(reg)
}

// BuildInfo identifies the running binary: Go version, module version and
// VCS revision. It is embedded in ledger manifests and exported as the
// gemstone_build_info metric — one provenance source for both.
type BuildInfo = obs.BuildInfo

// ReadBuildInfo returns the binary's build identity.
func ReadBuildInfo() BuildInfo { return obs.ReadBuildInfo() }

// RegisterBuildInfo sets the gemstone_build_info gauge (value 1, identity
// in labels) in reg and returns the underlying build identity.
func RegisterBuildInfo(reg *MetricsRegistry) BuildInfo { return obs.RegisterBuildInfo(reg) }

// Experiment flight-recorder types (see internal/ledger for full
// documentation).
type (
	// LedgerEntry is one flight-recorder record: provenance manifest +
	// campaign results + validator diagnostics, one JSON line on disk.
	LedgerEntry = ledger.Entry
	// LedgerStore is an append-only, corruption-tolerant JSONL ledger.
	LedgerStore = ledger.Store
	// RunManifest answers "what produced these numbers?": build identity,
	// platform fingerprints, workload set digest, DVFS grid, campaign
	// statistics and phase times.
	RunManifest = ledger.RunManifest
	// LedgerResults holds the comparable scientific outputs of one run.
	LedgerResults = ledger.Results
	// LedgerDiagnostic is one invariant-validator violation.
	LedgerDiagnostic = ledger.Diagnostic
	// Validator checks physical invariants (counter conservation, DVFS
	// monotonicity, energy = power x time, PE sign consistency) over
	// collected measurements; it is also a CollectObserver.
	Validator = ledger.Validator
	// CampaignRecorder is a CollectObserver keeping per-campaign stats
	// for the manifest.
	CampaignRecorder = ledger.CampaignRecorder
	// DriftReport is the outcome of comparing two ledger entries.
	DriftReport = ledger.DriftReport
	// DriftOptions tunes the drift tolerances (zero value = defaults).
	DriftOptions = ledger.DriftOptions
)

// OpenLedger returns the append-only results ledger at path. No I/O
// happens until the first Append or Scan; a missing file reads as empty.
func OpenLedger(path string) *LedgerStore { return ledger.Open(path) }

// NewValidator returns an invariant validator exporting
// gemstone_validator_* counters to reg (nil disables the metrics).
func NewValidator(reg *MetricsRegistry) *Validator { return ledger.NewValidator(reg) }

// NewCampaignRecorder returns an empty per-campaign stats recorder.
func NewCampaignRecorder() *CampaignRecorder { return ledger.NewCampaignRecorder() }

// CompareLedgerEntries diffs a current ledger entry against a baseline:
// headline tolerance bands, per-workload PE deltas with MAD-based outlier
// flagging grouped by the baseline's HCA clusters, and provenance notes.
func CompareLedgerEntries(base, cur LedgerEntry, opt DriftOptions) *DriftReport {
	return ledger.Compare(base, cur, opt)
}

// Analysis types (see internal/core for full documentation).
type (
	RunKey              = core.RunKey
	RunSet              = core.RunSet
	CollectOptions      = core.CollectOptions
	ValidationSummary   = core.ValidationSummary
	WorkloadError       = core.WorkloadError
	WorkloadClustering  = core.WorkloadClustering
	Fig3Row             = core.Fig3Row
	EventCorr           = core.EventCorr
	Gem5EventCorr       = core.Gem5EventCorr
	RegressionReport    = core.RegressionReport
	EventRatio          = core.EventRatio
	BPComparison        = core.BPComparison
	PowerEnergyAnalysis = core.PowerEnergyAnalysis
	ScalingCurve        = core.ScalingCurve
	ScalingPoint        = core.ScalingPoint
	SpeedupStats        = core.SpeedupStats
	VersionComparison   = core.VersionComparison
)

// Power-modelling types.
type (
	PowerModel        = power.Model
	PowerObservation  = power.Observation
	PowerBuildOptions = power.BuildOptions
	PowerQuality      = power.Quality
	EventMapping      = power.Mapping
	PowerComponent    = power.Component
)

// PMU event namespace.
type PMUEvent = pmu.Event

// Op is an instruction class (for the op-latency microbenchmarks).
type Op = isa.Op

// Instruction classes usable with OpLatency.
const (
	OpIntALU = isa.OpIntALU
	OpIntMul = isa.OpIntMul
	OpIntDiv = isa.OpIntDiv
	OpFPAdd  = isa.OpFPAdd
	OpFPMul  = isa.OpFPMul
	OpFPDiv  = isa.OpFPDiv
	OpSIMD   = isa.OpSIMD
	OpLoad   = isa.OpLoad
	OpStore  = isa.OpStore
)

// Microbenchmark types.
type LatencyPoint = lmbench.Point

// StepwiseOptions configures the error-regression analysis.
type StepwiseOptions = stats.StepwiseOptions

// HardwarePlatform returns the simulated ODROID-XU3 reference board (with
// PMU counters and 3.8 Hz power sensors).
func HardwarePlatform() *Platform { return hw.Platform() }

// Gem5Platform returns the simulated gem5 ex5 model platform for the given
// version. gem5 platforms produce event statistics but no power.
func Gem5Platform(v gem5.Version) *Platform { return gem5.Platform(v) }

// Workloads returns the full 65-workload suite (validation + power
// characterisation).
func Workloads() []WorkloadProfile { return workload.All() }

// ValidationWorkloads returns the paper's 45-workload validation set.
func ValidationWorkloads() []WorkloadProfile { return workload.Validation() }

// WorkloadByName looks up one workload profile.
func WorkloadByName(name string) (WorkloadProfile, error) { return workload.ByName(name) }

// ExperimentFrequencies returns the per-cluster DVFS points of the paper's
// Experiment 1 (2 GHz excluded on the A15: thermal throttling).
func ExperimentFrequencies(cluster string) []int { return hw.ExperimentFrequencies(cluster) }

// Collect runs an experiment campaign (Experiments 1-4 of the paper,
// depending on the platform) at the tier selected by opt.Fidelity and
// returns the collected measurements.
//
// The campaign stops early (without burning CPU on the remaining jobs)
// when ctx is cancelled or a run fails, returning a *CollectError that
// preserves the completed partial results. Combined with opt.Cache, a
// failed campaign is resumed by simply collecting again — finished runs
// replay as cache hits.
func Collect(ctx context.Context, pl *Platform, opt CollectOptions) (*RunSet, error) {
	return core.Collect(ctx, pl, opt)
}

// CollectContext is the former name of Collect.
//
// Deprecated: call Collect — it has carried the context since the
// fidelity-tier redesign collapsed the Collect/CollectContext split.
func CollectContext(ctx context.Context, pl *Platform, opt CollectOptions) (*RunSet, error) {
	return core.Collect(ctx, pl, opt)
}

// Screen runs a screen-then-resimulate campaign: the full grid on both
// platforms at the atomic tier, error screening (top-K |percent error|
// plus robust outliers), then detailed re-simulation of only the flagged
// points. The returned run sets are mixed-fidelity; every measurement
// carries its tier in Measurement.Fidelity.
func Screen(ctx context.Context, hwPl, simPl *Platform, opt ScreenOptions) (*ScreenResult, error) {
	return core.Screen(ctx, hwPl, simPl, opt)
}

// CacheKey returns the content-addressed run-cache key of one
// detailed-tier (platform, workload, cluster, frequency) run: a stable
// hash of the workload profile, the full cluster configuration
// fingerprint, the platform identity and the DVFS point.
func CacheKey(pl *Platform, prof WorkloadProfile, cluster string, freqMHz int) (string, error) {
	return core.CacheKey(pl, prof, cluster, freqMHz)
}

// CacheKeyFidelity is CacheKey with an explicit simulation tier; keys of
// different tiers never collide.
func CacheKeyFidelity(pl *Platform, prof WorkloadProfile, cluster string, freqMHz int, fid Fidelity) (string, error) {
	return core.CacheKeyFidelity(pl, prof, cluster, freqMHz, fid)
}

// NewMemoryRunCache builds an in-memory LRU run cache (0 entries selects
// the default capacity).
func NewMemoryRunCache(maxEntries int) RunCache { return core.NewMemoryCache(maxEntries) }

// NewDiskRunCache opens a persistent on-disk run cache rooted at dir.
// Entries are individually versioned and corruption-tolerant: a damaged
// entry is a cache miss, never a failure.
func NewDiskRunCache(dir string) (RunCache, error) {
	c, err := core.NewDiskCache(dir)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// OpenRunCache builds the standard two-tier run cache: an in-memory LRU
// in front of an on-disk store at dir.
func OpenRunCache(dir string) (RunCache, error) {
	c, err := core.OpenRunCache(dir)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// NewCollectMetrics returns an empty metrics accumulator to pass as
// CollectOptions.Observer.
func NewCollectMetrics() *CollectMetrics { return core.NewMetrics() }

// MultiCollectObserver fans campaign callbacks out to several observers.
func MultiCollectObserver(obs ...CollectObserver) CollectObserver {
	return core.MultiObserver(obs...)
}

// Validate compares a model run set against the hardware reference.
func Validate(hwRuns, simRuns *RunSet, cluster string) (*ValidationSummary, error) {
	return core.Validate(hwRuns, simRuns, cluster)
}

// ClusterWorkloads groups workloads by hardware PMC behaviour (HCA) and
// annotates the groups with model errors — the paper's Fig. 3 analysis.
func ClusterWorkloads(hwRuns, simRuns *RunSet, cluster string, freqMHz, k int) (*WorkloadClustering, error) {
	return core.ClusterWorkloads(hwRuns, simRuns, cluster, freqMHz, k)
}

// PMCErrorCorrelation correlates every hardware PMC rate with the model's
// execution-time error (Fig. 5).
func PMCErrorCorrelation(hwRuns, simRuns *RunSet, cluster string, freqMHz, kEvents int) ([]EventCorr, error) {
	return core.PMCErrorCorrelation(hwRuns, simRuns, cluster, freqMHz, kEvents)
}

// Gem5EventCorrelation correlates gem5 statistics with the execution-time
// error and clusters the significant ones (Section IV-C).
func Gem5EventCorrelation(hwRuns, simRuns *RunSet, cluster string, freqMHz int, minAbsCorr float64, k int) ([]Gem5EventCorr, error) {
	return core.Gem5EventCorrelation(hwRuns, simRuns, cluster, freqMHz, minAbsCorr, k)
}

// ErrorRegressionPMC regresses the model error onto hardware PMC events
// with forward stepwise selection (Section IV-D).
func ErrorRegressionPMC(hwRuns, simRuns *RunSet, cluster string, freqMHz int, opt StepwiseOptions) (*RegressionReport, error) {
	return core.ErrorRegressionPMC(hwRuns, simRuns, cluster, freqMHz, opt)
}

// ErrorRegressionGem5 regresses the model error onto gem5 statistics.
func ErrorRegressionGem5(hwRuns, simRuns *RunSet, cluster string, freqMHz int, opt StepwiseOptions) (*RegressionReport, error) {
	return core.ErrorRegressionGem5(hwRuns, simRuns, cluster, freqMHz, opt)
}

// EventComparison matches gem5 events to HW PMC equivalents and reports
// their count ratios per workload cluster (Fig. 6).
func EventComparison(hwRuns, simRuns *RunSet, cluster string, freqMHz int,
	labels map[string]int, events []PMUEvent, mapping EventMapping,
	excludeClusters map[int]bool) ([]EventRatio, *BPComparison, error) {
	return core.EventComparison(hwRuns, simRuns, cluster, freqMHz, labels, events, mapping, excludeClusters)
}

// BuildPowerModel trains an empirical PMC power model on a sensored run
// set (Section V).
func BuildPowerModel(hwRuns *RunSet, cluster string, opt PowerBuildOptions) (*PowerModel, error) {
	return core.BuildPowerModel(hwRuns, cluster, opt)
}

// DefaultPool returns the unrestricted power-model candidate events.
func DefaultPool() []PMUEvent { return power.DefaultPool() }

// RestrictedPool returns the candidate events that are available and
// accurate in gem5 (the paper's constrained selection).
func RestrictedPool() []PMUEvent { return power.RestrictedPool() }

// DefaultMapping returns the PMC-to-gem5-statistic equivalence table.
func DefaultMapping() EventMapping { return power.DefaultMapping() }

// AnalyzePowerEnergy applies one power model to HW PMC data and gem5
// statistics and compares the resulting power and energy (Fig. 7).
func AnalyzePowerEnergy(model *PowerModel, mapping EventMapping,
	hwRuns, simRuns *RunSet, cluster string, freqMHz int, labels map[string]int) (*PowerEnergyAnalysis, error) {
	return core.AnalyzePowerEnergy(model, mapping, hwRuns, simRuns, cluster, freqMHz, labels)
}

// ScalingAnalysis computes the performance/power/energy DVFS scaling
// curves of a run set (Fig. 8).
func ScalingAnalysis(rs *RunSet, models map[string]*PowerModel, mapping EventMapping,
	isGem5 bool, labels map[string]int, baseCluster string, baseFreq int) (*ScalingCurve, error) {
	return core.ScalingAnalysis(rs, models, mapping, isGem5, labels, baseCluster, baseFreq)
}

// RatioMetric selects the quantity ClusterRatio summarises.
type RatioMetric = core.RatioMetric

// Ratio metrics for ClusterRatio.
const (
	MetricSpeedup        = core.MetricSpeedup
	MetricEnergyIncrease = core.MetricEnergyIncrease
)

// ClusterRatio summarises the per-workload-cluster spread of a metric's
// ratio between two frequencies (Section VI's A15 speedup analysis).
func ClusterRatio(rs *RunSet, cluster string, loFreq, hiFreq int,
	labels map[string]int, metric RatioMetric,
	models map[string]*PowerModel, mapping EventMapping, isGem5 bool) (SpeedupStats, error) {
	return core.ClusterRatio(rs, cluster, loFreq, hiFreq, labels, metric, models, mapping, isGem5)
}

// CompareVersions runs the Section VII study: two gem5 model versions
// validated against the same hardware reference.
func CompareVersions(hwRuns, v1Runs, v2Runs *RunSet, cluster string, freqMHz int,
	model *PowerModel, mapping EventMapping, labels map[string]int) (*VersionComparison, error) {
	return core.CompareVersions(hwRuns, v1Runs, v2Runs, cluster, freqMHz, model, mapping, labels)
}

// Ablation types and modes (defect attribution for the gem5 big model).
type (
	AblationRow  = core.AblationRow
	AblationMode = core.AblationMode
	Gem5Defect   = gem5.Defect
)

// Ablation modes.
const (
	FixOneDefect  = core.FixOneDefect
	OnlyOneDefect = core.OnlyOneDefect
)

// Gem5Defects lists the individual specification errors of the ex5_big
// model; gem5.AllDefects is V1, V2Defects is the post-fix model.
func Gem5Defects() []Gem5Defect { return gem5.Defects() }

// Gem5PlatformWithDefects builds a gem5 platform whose big cluster carries
// exactly the given defects.
func Gem5PlatformWithDefects(d Gem5Defect) *Platform { return gem5.PlatformWithDefects(d) }

// RunAblationStudy toggles the big-model defects one at a time and
// validates each configuration against hardware (Section IV-F/VII).
func RunAblationStudy(hwRuns *RunSet, profiles []WorkloadProfile, freqMHz int, mode AblationMode) ([]AblationRow, error) {
	return core.AblationStudy(hwRuns, profiles, freqMHz, mode)
}

// ImprovementStep is one iteration of the greedy repair loop.
type ImprovementStep = core.ImprovementStep

// IterateImprovements applies the paper's repair procedure: fix the most
// significant remaining error source, re-validate the whole system, and
// repeat (Section IV-F).
func IterateImprovements(hwRuns *RunSet, profiles []WorkloadProfile, freqMHz int) ([]ImprovementStep, error) {
	return core.IterateImprovements(hwRuns, profiles, freqMHz)
}

// EventReliability reports the gem5-vs-hardware error of one PMC event.
type EventReliability = core.EventReliability

// AssessEventReliability computes per-event gem5 accuracy (the Fig. 7
// legend numbers).
func AssessEventReliability(hwRuns, simRuns *RunSet, cluster string, freqMHz int,
	mapping EventMapping, candidates []PMUEvent) ([]EventReliability, error) {
	return core.AssessEventReliability(hwRuns, simRuns, cluster, freqMHz, mapping, candidates)
}

// DeriveEventRestraints implements Fig. 1's feedback path: events that are
// unavailable or badly modelled in gem5 are excluded from the power-model
// candidate pool automatically.
func DeriveEventRestraints(hwRuns, simRuns *RunSet, cluster string, freqMHz int,
	mapping EventMapping, candidates []PMUEvent, maxMAPE float64) (pool, excluded []PMUEvent, err error) {
	return core.DeriveEventRestraints(hwRuns, simRuns, cluster, freqMHz, mapping, candidates, maxMAPE)
}

// FrequencyConsistency quantifies the cross-frequency similarity of the
// per-workload error pattern (Section IV).
type FrequencyConsistency = core.FrequencyConsistency

// ErrorConsistency computes the cross-frequency error-pattern correlation.
func ErrorConsistency(hwRuns, simRuns *RunSet, cluster string) (*FrequencyConsistency, error) {
	return core.ErrorConsistency(hwRuns, simRuns, cluster)
}

// Analytical (McPAT-style) baseline power modelling.
type (
	AnalyticalPowerModel  = mcpat.Model
	AnalyticalModelConfig = mcpat.Config
)

// NewAnalyticalPowerModel derives a McPAT-style structural power model for
// a cluster — the uncalibrated simulator-based baseline the paper's
// empirical models are compared against.
func NewAnalyticalPowerModel(cl ClusterConfig, cfg AnalyticalModelConfig) (*AnalyticalPowerModel, error) {
	return mcpat.New(cl, cfg)
}

// DefaultAnalyticalConfig returns common McPAT-style technology
// assumptions (nearest shipped library, nominal volt).
func DefaultAnalyticalConfig() AnalyticalModelConfig { return mcpat.DefaultConfig() }

// MemoryLatency runs the lat_mem_rd-style microbenchmark against a cluster
// configuration (Fig. 4).
func MemoryLatency(cl ClusterConfig, freqMHz, strideBytes int, sizes []int) []LatencyPoint {
	return lmbench.MemoryLatency(cl, freqMHz, strideBytes, sizes)
}

// DefaultLatencySizes returns the Fig. 4 working-set sweep.
func DefaultLatencySizes() []int { return lmbench.DefaultSizes() }

// HardwareA7 returns the reference A7 cluster configuration (for
// microbenchmarks and custom platforms).
func HardwareA7() ClusterConfig { return hw.A7Cluster() }

// HardwareA15 returns the reference A15 cluster configuration.
func HardwareA15() ClusterConfig { return hw.A15Cluster() }

// Gem5LITTLE returns the ex5_LITTLE model cluster configuration.
func Gem5LITTLE(v gem5.Version) ClusterConfig { return gem5.LITTLECluster(v) }

// Gem5Big returns the ex5_big model cluster configuration.
func Gem5Big(v gem5.Version) ClusterConfig { return gem5.BigCluster(v) }

// Gem5Stats returns the gem5-style statistics map of a model run
// (Experiment 2's stats.txt).
func Gem5Stats(m Measurement) map[string]float64 { return core.Gem5Stats(m) }

// OpLatency measures a dependent-chain operation latency on a cluster's
// timing model.
func OpLatency(cl ClusterConfig, op Op, freqMHz int) float64 {
	return lmbench.OpLatency(cl, op, freqMHz)
}

// DefaultStepwiseOptions mirror the paper's regression setup (p-enter 0.05).
func DefaultStepwiseOptions() StepwiseOptions { return stats.DefaultStepwiseOptions() }

// WriteGem5StatsFile renders a statistics map in gem5's stats.txt format.
func WriteGem5StatsFile(w io.Writer, stats map[string]float64) error {
	return gem5.WriteStatsFile(w, stats)
}

// ParseGem5StatsFile parses a gem5 stats.txt dump (first dump of the file).
func ParseGem5StatsFile(r io.Reader) (map[string]float64, error) {
	return gem5.ParseStatsFile(r)
}

// SavePowerModel / LoadPowerModel persist fitted power models as JSON —
// the released-model format of the paper's artefacts.
func SavePowerModel(w io.Writer, m *PowerModel) error { return power.SaveModel(w, m) }

// LoadPowerModel restores a model saved by SavePowerModel.
func LoadPowerModel(r io.Reader) (*PowerModel, error) { return power.LoadModel(r) }

// WriteObservationsCSV / ReadObservationsCSV persist power-characterisation
// datasets.
func WriteObservationsCSV(w io.Writer, obs []PowerObservation) error {
	return power.WriteObservationsCSV(w, obs)
}

// ReadObservationsCSV restores a dataset written by WriteObservationsCSV.
func ReadObservationsCSV(r io.Reader) ([]PowerObservation, error) {
	return power.ReadObservationsCSV(r)
}

// SaveRunSet / LoadRunSet archive a full measurement campaign so analyses
// can be re-run without re-simulating.
func SaveRunSet(w io.Writer, rs *RunSet) error { return core.SaveRunSet(w, rs) }

// LoadRunSet restores an archive written by SaveRunSet.
func LoadRunSet(r io.Reader) (*RunSet, error) { return core.LoadRunSet(r) }

// MeasurementObservation converts a sensored hardware measurement into a
// power-model observation (rates for every PMU event plus measured power).
func MeasurementObservation(m Measurement) PowerObservation {
	return core.PowerObservation(m)
}
