package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gemstone/internal/obs"
	"gemstone/internal/serve"
	"gemstone/internal/workload"
	"gemstone/internal/xrand"
)

// OpKind names one request class of the mix.
type OpKind string

// The request classes gemload replays. Cold and warm are full
// campaigns measured POST → terminal SSE frame; events replays a
// finished campaign's SSE history; analysis reads a finished
// campaign's validation summary.
const (
	OpCold     OpKind = "cold"     // fresh spec: every job simulates
	OpWarm     OpKind = "warm"     // replayed spec: every job cache-hits
	OpEvents   OpKind = "events"   // SSE history subscriber
	OpAnalysis OpKind = "analysis" // GET /validation
)

// OpKinds lists every request class in mix order.
var OpKinds = []OpKind{OpCold, OpWarm, OpEvents, OpAnalysis}

// Mix weights the request classes. The zero Mix means the default
// 1:3:3:3 — campaigns are expensive, reads are cheap and plentiful,
// which is what a fleet serving dashboards over a few sweeps looks
// like.
type Mix struct {
	Cold     float64 `json:"cold"`
	Warm     float64 `json:"warm"`
	Events   float64 `json:"events"`
	Analysis float64 `json:"analysis"`
}

func (m Mix) orDefault() Mix {
	if m == (Mix{}) {
		return Mix{Cold: 1, Warm: 3, Events: 3, Analysis: 3}
	}
	return m
}

func (m Mix) weights() []float64 {
	return []float64{m.Cold, m.Warm, m.Events, m.Analysis}
}

// Tolerance bounds the client/server latency reconciliation: the
// client-observed number may differ from the server-reported one by
// Rel (fraction) plus Abs (absolute seconds-scale slack for HTTP,
// SSE delivery and scheduler jitter).
type Tolerance struct {
	Rel float64       `json:"rel"`
	Abs time.Duration `json:"abs"`
}

func (t Tolerance) orDefault() Tolerance {
	if t.Rel == 0 {
		t.Rel = 0.35
	}
	if t.Abs == 0 {
		t.Abs = 250 * time.Millisecond
	}
	return t
}

// Config shapes one load run. The zero value of every field except
// BaseURL is usable.
type Config struct {
	// BaseURL is the gemstone serve endpoint ("http://host:port").
	BaseURL string
	// Client issues all requests; nil builds one sized for Concurrency.
	Client *http.Client
	// Concurrency is the number of in-flight request slots. In closed-
	// loop mode it is the offered concurrency (each slot issues
	// back-to-back); in open-loop mode it bounds parallel execution of
	// the scheduled arrivals. 0 means 4.
	Concurrency int
	// RateHz, when positive, switches to open-loop mode: arrivals are
	// scheduled by a Poisson process at this rate and latency is
	// measured from the *intended* arrival instant, so a saturated
	// server shows up as queueing delay instead of silently thinning
	// the load (no coordinated omission). 0 means closed loop.
	RateHz float64
	// Duration is how long new work is issued; in-flight operations
	// then drain to completion. 0 means 5s.
	Duration time.Duration
	// Seed seeds every sampler (arrivals, tenant and spec selection,
	// mix); 0 means 1.
	Seed uint64
	// Skew is the Zipf exponent for tenant and replay-target selection
	// (ReqBench's skew knob). 0 means uniform.
	Skew float64
	// Tenants is how many tenant namespaces the load spreads over
	// (Zipf-skewed); 0 means 3.
	Tenants int
	// InvokeLength is the number of workloads per campaign spec
	// (ReqBench's invokeLength: the size of one invocation); 0 means 1.
	InvokeLength int
	// Mix weights the request classes; the zero value means 1:3:3:3.
	Mix Mix
	// Cluster and FreqsMHz shape the campaign specs; defaults a15 at
	// {1000}.
	Cluster  string
	FreqsMHz []int
	// OpTimeout bounds one operation end-to-end; 0 means 120s.
	OpTimeout time.Duration
	// Tol bounds the client/server latency reconciliation.
	Tol Tolerance
	// Log, when non-nil, receives driver progress logging.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Concurrency == 0 {
		c.Concurrency = 4
	}
	if c.Duration == 0 {
		c.Duration = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tenants == 0 {
		c.Tenants = 3
	}
	if c.InvokeLength == 0 {
		c.InvokeLength = 1
	}
	if c.Cluster == "" {
		c.Cluster = "a15"
	}
	if len(c.FreqsMHz) == 0 {
		c.FreqsMHz = []int{1000}
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 120 * time.Second
	}
	c.Tol = c.Tol.orDefault()
	return c
}

// completedRec is one finished campaign a tenant can replay against.
type completedRec struct {
	id   string
	spec *serve.CampaignSpec
}

// shard is one worker's private measurement state: HDR latency shards
// and outcome counters, merged after the run. No locks on the hot path.
type shard struct {
	hdr      map[OpKind]*obs.HDR
	issued   map[OpKind]int
	okCount  map[OpKind]int
	rejected map[OpKind]int
	errs     map[OpKind]int
	done     int // campaign "done" frames observed
	failed   int // campaign "error" frames observed
	lastErr  error
}

func newShard() *shard {
	s := &shard{
		hdr:      map[OpKind]*obs.HDR{},
		issued:   map[OpKind]int{},
		okCount:  map[OpKind]int{},
		rejected: map[OpKind]int{},
		errs:     map[OpKind]int{},
	}
	for _, k := range OpKinds {
		s.hdr[k] = obs.NewHDR()
	}
	return s
}

// Driver replays the configured mix against one service.
type Driver struct {
	cfg     Config
	mix     Mix
	client  *http.Client
	catalog []string // workload names cold specs draw from
	log     *slog.Logger

	coldSeq atomic.Int64

	mu        sync.Mutex
	completed map[string][]completedRec // tenant → finished campaigns
}

// maxReplayTargets caps the Zipf rank space for replay-target
// selection; the actual per-tenant window is replayWindow().
const maxReplayTargets = 48

// replayWindow sizes the per-tenant completed-campaign window the
// replay ops draw from: the tenants' windows together stay below
// serve's default retention cap (64 terminal campaigns fleet-wide,
// evicted oldest-first), so a windowed target is usually still
// retained when a replay op reaches it. Targets that lose the race
// with eviction anyway are pruned on 404.
func (d *Driver) replayWindow() int {
	w := 56 / d.cfg.Tenants
	if w < 4 {
		w = 4
	}
	if w > maxReplayTargets {
		w = maxReplayTargets
	}
	return w
}

// NewDriver validates cfg and builds a driver.
func NewDriver(cfg Config) (*Driver, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("load: BaseURL required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	var catalog []string
	for _, p := range workload.Validation() {
		catalog = append(catalog, p.Name)
	}
	if cfg.InvokeLength > len(catalog) {
		return nil, fmt.Errorf("load: invoke length %d exceeds the %d-workload catalogue",
			cfg.InvokeLength, len(catalog))
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = cfg.Concurrency + 2
		client = &http.Client{Transport: tr}
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(discardHandler{})
	}
	return &Driver{
		cfg:       cfg,
		mix:       cfg.Mix.orDefault(),
		client:    client,
		catalog:   catalog,
		log:       log,
		completed: map[string][]completedRec{},
	}, nil
}

// discardHandler drops log records (slog.DiscardHandler is Go 1.24+).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// tenantName formats the i-th tenant namespace.
func tenantName(i int) string { return fmt.Sprintf("load-t%d", i) }

// Run executes the load shape and returns the measured, reconciled
// report. The returned error covers setup failures (unreachable
// server, missing /metrics); request-level failures are counted in the
// report instead.
func (d *Driver) Run(ctx context.Context) (*Report, error) {
	base, err := d.scrapeMetrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: baseline metrics scrape: %w", err)
	}

	root := xrand.New(d.cfg.Seed)
	weighted := xrand.NewWeighted(d.mix.weights())

	var arrivals chan time.Time
	var backlog atomic.Int64
	start := time.Now()
	deadline := start.Add(d.cfg.Duration)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	mode := "closed"
	if d.cfg.RateHz > 0 {
		mode = "open"
		arrivals = make(chan time.Time, 1<<16)
		p := NewPoisson(root.Split(), d.cfg.RateHz)
		go func() {
			defer close(arrivals)
			next := start
			for {
				next = next.Add(p.Next())
				if next.After(deadline) {
					return
				}
				if !sleepUntil(runCtx, next) {
					return
				}
				select {
				case arrivals <- next:
				default:
					backlog.Add(1) // scheduler outran the buffer; count, don't block
				}
			}
		}()
	}

	shards := make([]*shard, d.cfg.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < d.cfg.Concurrency; w++ {
		sh := newShard()
		shards[w] = sh
		rng := root.Split()
		tenantPick := NewZipf(rng.Split(), d.cfg.Tenants, d.cfg.Skew)
		replayPick := NewZipf(rng.Split(), maxReplayTargets, d.cfg.Skew)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var issuedAt time.Time
				if arrivals != nil {
					t, ok := <-arrivals
					if !ok {
						return
					}
					if time.Now().After(deadline) {
						// The offered window is over; arrivals still queued
						// were never issued. Counting them (instead of
						// draining them late) bounds the run's wall time
						// while keeping the saturation visible.
						backlog.Add(1)
						continue
					}
					issuedAt = t // intended arrival: queueing delay counts
				} else {
					if !time.Now().Before(deadline) || runCtx.Err() != nil {
						return
					}
					issuedAt = time.Now()
				}
				op := OpKinds[weighted.Sample(rng)]
				tenant := tenantName(tenantPick.Next())
				d.runOp(runCtx, sh, op, tenant, rng, replayPick, issuedAt)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	cur, err := d.scrapeMetrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("load: final metrics scrape: %w", err)
	}
	statusz, _ := d.fetchStatusz(ctx)

	r := d.buildReport(mode, wall, shards, int(backlog.Load()), base, cur, statusz)
	return r, nil
}

// sleepUntil sleeps until t or ctx cancellation; false means cancelled.
func sleepUntil(ctx context.Context, t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runOp executes one operation and records its latency into the shard.
func (d *Driver) runOp(ctx context.Context, sh *shard, op OpKind, tenant string,
	rng *xrand.RNG, replayPick *Zipf, issuedAt time.Time) {
	// Replay ops need a finished campaign; fall back to cold until the
	// tenant has one.
	var target *completedRec
	if op != OpCold {
		target = d.pickCompleted(tenant, replayPick)
		if target == nil {
			op = OpCold
		}
	}
	sh.issued[op]++

	opCtx, cancel := context.WithTimeout(ctx, d.cfg.OpTimeout)
	defer cancel()

	var err error
	var rejected bool
	switch op {
	case OpCold:
		err, rejected = d.campaignOp(opCtx, sh, tenant, d.coldSpec())
	case OpWarm:
		err, rejected = d.campaignOp(opCtx, sh, tenant, target.spec)
	case OpEvents:
		err = d.eventsOp(opCtx, tenant, target.id)
	case OpAnalysis:
		err = d.analysisOp(opCtx, tenant, target.id)
	}
	switch {
	case rejected:
		sh.rejected[op]++
		// Back off briefly so a saturated admission queue isn't hammered.
		sleepUntil(ctx, time.Now().Add(time.Duration(5+rng.Intn(25))*time.Millisecond))
	case err != nil:
		if errors.Is(err, errStale) && target != nil {
			d.dropCompleted(tenant, target.id)
		}
		sh.errs[op]++
		sh.lastErr = err
		d.log.Warn("op failed", "op", string(op), "tenant", tenant, "err", err)
	default:
		sh.okCount[op]++
		sh.hdr[op].RecordDuration(time.Since(issuedAt))
	}
}

// coldSpec deterministically enumerates distinct campaign specs: a
// rotating window with a growing stride over the workload catalogue,
// so consecutive cold campaigns (across all workers) miss the run
// cache for as long as the combination space lasts.
func (d *Driver) coldSpec() *serve.CampaignSpec {
	n := len(d.catalog)
	k := d.cfg.InvokeLength
	seq := int(d.coldSeq.Add(1)) - 1
	stride := seq/n + 1
	used := make(map[int]bool, k)
	names := make([]string, 0, k)
	idx := seq % n
	for len(names) < k {
		for used[idx] {
			idx = (idx + 1) % n
		}
		used[idx] = true
		names = append(names, d.catalog[idx])
		idx = (idx + stride) % n
	}
	return &serve.CampaignSpec{
		Cluster:   d.cfg.Cluster,
		FreqMHz:   d.cfg.FreqsMHz[0],
		FreqsMHz:  append([]int(nil), d.cfg.FreqsMHz...),
		Workloads: names,
	}
}

// pickCompleted selects a finished campaign of the tenant, Zipf-skewed
// towards the newest (still-retained, cache-hottest) entries; nil when
// the tenant has none.
func (d *Driver) pickCompleted(tenant string, pick *Zipf) *completedRec {
	d.mu.Lock()
	defer d.mu.Unlock()
	list := d.completed[tenant]
	if len(list) == 0 {
		return nil
	}
	rec := list[len(list)-1-pick.Next()%len(list)]
	return &rec
}

// noteCompleted registers a finished campaign as a replay target,
// sliding the per-tenant window so only the newest targets survive —
// the oldest are the ones the service's retention cap evicts first.
func (d *Driver) noteCompleted(tenant, id string, spec *serve.CampaignSpec) {
	d.mu.Lock()
	defer d.mu.Unlock()
	list := append(d.completed[tenant], completedRec{id: id, spec: spec})
	if w := d.replayWindow(); len(list) > w {
		list = list[len(list)-w:]
	}
	d.completed[tenant] = list
}

// dropCompleted prunes a replay target the service no longer retains.
func (d *Driver) dropCompleted(tenant, id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	list := d.completed[tenant]
	for i, rec := range list {
		if rec.id == id {
			d.completed[tenant] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// errRejected marks an admission-control 429.
var errRejected = fmt.Errorf("load: admission rejected")

// errStale marks a replay target the service has evicted (404): the
// driver prunes it and moves on — retention is the service's contract,
// not an SLO failure, but repeated hits would be the driver's bug.
var errStale = fmt.Errorf("load: replay target evicted")

// campaignOp submits spec and follows its SSE stream to the terminal
// frame. rejected is true on a 429 (not an error, not a latency
// sample).
func (d *Driver) campaignOp(ctx context.Context, sh *shard, tenant string, spec *serve.CampaignSpec) (err error, rejected bool) {
	body, err := json.Marshal(spec)
	if err != nil {
		return err, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		d.cfg.BaseURL+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		return err, false
	}
	req.Header.Set(serve.TenantHeader, tenant)
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return err, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusTooManyRequests {
		return errRejected, true
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: status %d", resp.StatusCode), false
	}
	var status struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return fmt.Errorf("submit: decode: %v", err), false
	}

	terminal, err := d.followEvents(ctx, tenant, status.ID)
	if err != nil {
		return err, false
	}
	switch terminal {
	case "done":
		sh.done++
		d.noteCompleted(tenant, status.ID, spec)
		return nil, false
	case "error":
		sh.failed++
		return fmt.Errorf("campaign %s failed", status.ID), false
	default:
		return fmt.Errorf("campaign %s: stream ended without terminal frame", status.ID), false
	}
}

// eventsOp replays a finished campaign's SSE history to its terminal
// frame.
func (d *Driver) eventsOp(ctx context.Context, tenant, id string) error {
	terminal, err := d.followEvents(ctx, tenant, id)
	if err != nil {
		return err
	}
	if terminal == "" {
		return fmt.Errorf("events %s: no terminal frame", id)
	}
	return nil
}

// followEvents reads the campaign's SSE stream until a terminal frame
// and returns its type ("done" or "error").
func (d *Driver) followEvents(ctx context.Context, tenant, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		d.cfg.BaseURL+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		return "", err
	}
	req.Header.Set(serve.TenantHeader, tenant)
	resp, err := d.client.Do(req)
	if err != nil {
		return "", err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return "", fmt.Errorf("events %s: %w", id, errStale)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("events %s: status %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 16<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			switch ev := strings.TrimPrefix(line, "event: "); ev {
			case "done", "error":
				return ev, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("events %s: %v", id, err)
	}
	return "", nil
}

// analysisOp reads a finished campaign's validation summary.
func (d *Driver) analysisOp(ctx context.Context, tenant, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		d.cfg.BaseURL+"/v1/campaigns/"+id+"/validation", nil)
	if err != nil {
		return err
	}
	req.Header.Set(serve.TenantHeader, tenant)
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("validation %s: %w", id, errStale)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("validation %s: status %d", id, resp.StatusCode)
	}
	var vs struct {
		MAPE float64 `json:"mape"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vs); err != nil {
		return fmt.Errorf("validation %s: decode: %v", id, err)
	}
	if math.IsNaN(vs.MAPE) {
		return fmt.Errorf("validation %s: NaN MAPE", id)
	}
	return nil
}

// scrapeMetrics fetches and parses the server's /metrics.
func (d *Driver) scrapeMetrics(ctx context.Context) (*Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.cfg.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d (reconciliation needs the serve registry)", resp.StatusCode)
	}
	return ParseMetrics(resp.Body)
}

// fetchStatusz fetches the raw /v1/statusz snapshot.
func (d *Driver) fetchStatusz(ctx context.Context) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.cfg.BaseURL+"/v1/statusz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/statusz: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	return json.RawMessage(raw), nil
}
