package load

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Client-side parsing of the server's Prometheus text exposition, for
// the reconciliation report: gemload scrapes /metrics before and after
// a run and diffs the gemstone_serve_* families, so client-observed
// latencies and counts can be checked against what the server itself
// recorded.

// Sample is one parsed exposition line: a metric name, its label set
// and the sample value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Metrics is a parsed scrape.
type Metrics struct {
	Samples []Sample
}

// ParseMetrics parses a Prometheus text-format exposition (version
// 0.0.4, the format obs.Registry writes). Comment and blank lines are
// skipped; malformed sample lines are an error — the scrape comes from
// our own server, so leniency would only hide bugs.
func ParseMetrics(r io.Reader) (*Metrics, error) {
	var m Metrics
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, err
		}
		m.Samples = append(m.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &m, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.Name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return s, fmt.Errorf("load: malformed sample %q", line)
		}
		if err := parseLabels(line[i+1:j], s.Labels); err != nil {
			return s, fmt.Errorf("load: %v in %q", err, line)
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return s, fmt.Errorf("load: malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	v, err := parseValue(strings.Fields(rest)[0])
	if err != nil {
		return s, fmt.Errorf("load: bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(f string) (float64, error) {
	switch f {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(f, 64)
}

// parseLabels parses `a="x",b="y"` into out, unescaping values.
func parseLabels(s string, out map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return fmt.Errorf("malformed labels %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		// Scan the quoted value honouring backslash escapes.
		var b strings.Builder
		i := eq + 2
		for {
			if i >= len(s) {
				return fmt.Errorf("unterminated label value %q", s)
			}
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
			i++
		}
		out[name] = b.String()
		s = s[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// matches reports whether the sample's labels are a superset of match.
func (s Sample) matches(name string, match map[string]string) bool {
	if s.Name != name {
		return false
	}
	for k, v := range match {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Sum adds every sample of name whose labels include match. Missing
// families sum to zero, which is exactly what a diff against an
// earlier scrape (before the family existed) needs.
func (m *Metrics) Sum(name string, match map[string]string) float64 {
	var total float64
	for _, s := range m.Samples {
		if s.matches(name, match) {
			total += s.Value
		}
	}
	return total
}

// SumDelta is cur.Sum − base.Sum: the family's growth over a run. base
// may be nil (treated as zero).
func SumDelta(base, cur *Metrics, name string, match map[string]string) float64 {
	d := cur.Sum(name, match)
	if base != nil {
		d -= base.Sum(name, match)
	}
	return d
}

// histBucket is one cumulative bucket of a diffed histogram.
type histBucket struct {
	le    float64
	count float64
}

// HistogramQuantileDelta computes the [lo, hi] value bounds of the
// q-th quantile of the *delta* between two scrapes of a Prometheus
// histogram family (summed over every series matching match — e.g.
// all tenants). Because the exposition only carries bucket counts, the
// quantile is known only to bucket resolution: the true quantile lies
// in [lo, hi] where hi is the upper bound of the bucket holding the
// quantile rank and lo the bound below it. ok is false when the delta
// holds no observations.
func HistogramQuantileDelta(base, cur *Metrics, name string, match map[string]string, q float64) (lo, hi float64, ok bool) {
	// Collect per-le cumulative deltas.
	byLE := map[float64]float64{}
	for _, s := range cur.Samples {
		if s.matches(name+"_bucket", match) {
			le, err := parseValue(s.Labels["le"])
			if err != nil {
				continue
			}
			byLE[le] += s.Value
		}
	}
	if base != nil {
		for _, s := range base.Samples {
			if s.matches(name+"_bucket", match) {
				le, err := parseValue(s.Labels["le"])
				if err != nil {
					continue
				}
				byLE[le] -= s.Value
			}
		}
	}
	buckets := make([]histBucket, 0, len(byLE))
	for le, c := range byLE {
		buckets = append(buckets, histBucket{le: le, count: c})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	if len(buckets) == 0 {
		return 0, 0, false
	}
	total := buckets[len(buckets)-1].count // the +Inf bucket
	if total <= 0 {
		return 0, 0, false
	}
	rank := q * total
	prev := 0.0
	for _, b := range buckets {
		if b.count >= rank && b.count > 0 {
			return prev, b.le, true
		}
		prev = b.le
	}
	last := buckets[len(buckets)-1]
	return prev, last.le, true
}
