package load

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"gemstone/internal/obs"
)

// OpStats summarises one request class over the run. Latencies are
// client-observed end-to-end: from the intended arrival instant (open
// loop) or issue instant (closed loop) to the last byte — for
// campaigns, the terminal SSE frame.
type OpStats struct {
	Op       string `json:"op"`
	Issued   int    `json:"issued"`
	OK       int    `json:"ok"`
	Rejected int    `json:"rejected,omitempty"` // admission-control 429s
	Errors   int    `json:"errors,omitempty"`

	ThroughputRPS float64 `json:"throughput_rps"`
	MeanMs        float64 `json:"mean_ms"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
	MaxMs         float64 `json:"max_ms"`
}

// Check is one client/server reconciliation row: the same quantity
// measured from both sides of the wire, with the allowed gap. Counts
// reconcile exactly; latencies within Tolerance (plus server histogram
// bucket resolution for percentiles).
type Check struct {
	Name      string  `json:"name"`
	Client    float64 `json:"client"`
	Server    float64 `json:"server"`
	Tolerance float64 `json:"tolerance"` // allowed |client−server|, same unit
	OK        bool    `json:"ok"`
	Detail    string  `json:"detail,omitempty"`
}

// Report is one gemload run: per-op client-side stats plus the
// reconciliation against the server's own metrics. OK is the SLO
// verdict — every check passed and no campaign failed.
type Report struct {
	Mode            string  `json:"mode"` // "open" or "closed"
	Seed            uint64  `json:"seed"`
	Concurrency     int     `json:"concurrency"`
	RateHz          float64 `json:"rate_hz,omitempty"`
	Skew            float64 `json:"skew"`
	Tenants         int     `json:"tenants"`
	InvokeLength    int     `json:"invoke_length"`
	Mix             Mix     `json:"mix"`
	DurationSeconds float64 `json:"duration_seconds"` // actual wall incl. drain
	Backlog         int     `json:"backlog,omitempty"`

	Ops             []OpStats `json:"ops"`
	CampaignsDone   int       `json:"campaigns_done"`
	CampaignsFailed int       `json:"campaigns_failed"`
	LastError       string    `json:"last_error,omitempty"`

	Checks []Check `json:"checks"`
	OK     bool    `json:"ok"`

	Statusz json.RawMessage `json:"statusz,omitempty"`
}

// buildReport merges the worker shards and reconciles them against the
// base→cur server metrics delta.
func (d *Driver) buildReport(mode string, wall time.Duration, shards []*shard,
	backlog int, base, cur *Metrics, statusz json.RawMessage) *Report {
	r := &Report{
		Mode:            mode,
		Seed:            d.cfg.Seed,
		Concurrency:     d.cfg.Concurrency,
		RateHz:          d.cfg.RateHz,
		Skew:            d.cfg.Skew,
		Tenants:         d.cfg.Tenants,
		InvokeLength:    d.cfg.InvokeLength,
		Mix:             d.mix,
		DurationSeconds: wall.Seconds(),
		Backlog:         backlog,
		Statusz:         statusz,
	}

	merged := map[OpKind]*obs.HDR{}
	for _, k := range OpKinds {
		merged[k] = obs.NewHDR()
	}
	campaignHDR := obs.NewHDR() // cold+warm pooled, for the latency checks
	for _, sh := range shards {
		r.CampaignsDone += sh.done
		r.CampaignsFailed += sh.failed
		if sh.lastErr != nil {
			r.LastError = sh.lastErr.Error()
		}
		for _, k := range OpKinds {
			merged[k].Merge(sh.hdr[k])
			if k == OpCold || k == OpWarm {
				campaignHDR.Merge(sh.hdr[k])
			}
		}
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, k := range OpKinds {
		var st OpStats
		st.Op = string(k)
		h := merged[k]
		for _, sh := range shards {
			st.Issued += sh.issued[k]
			st.OK += sh.okCount[k]
			st.Rejected += sh.rejected[k]
			st.Errors += sh.errs[k]
		}
		if st.Issued == 0 {
			continue
		}
		if wall > 0 {
			st.ThroughputRPS = float64(st.OK) / wall.Seconds()
		}
		if h.Count() > 0 {
			st.MeanMs = h.Mean() / float64(time.Millisecond)
			st.P50Ms = ms(h.QuantileDuration(0.50))
			st.P95Ms = ms(h.QuantileDuration(0.95))
			st.P99Ms = ms(h.QuantileDuration(0.99))
			st.P999Ms = ms(h.QuantileDuration(0.999))
			st.MaxMs = ms(time.Duration(h.Max()))
		}
		r.Ops = append(r.Ops, st)
	}

	r.Checks = d.reconcile(r, campaignHDR, base, cur)
	r.OK = r.CampaignsFailed == 0
	for _, c := range r.Checks {
		r.OK = r.OK && c.OK
	}
	return r
}

// tenantSum sums a metric delta over this run's tenant set, one label
// match per tenant so other tenants' traffic never pollutes the check.
func (d *Driver) tenantSum(base, cur *Metrics, name string, extra map[string]string) float64 {
	var total float64
	for i := 0; i < d.cfg.Tenants; i++ {
		match := map[string]string{"tenant": tenantName(i)}
		for k, v := range extra {
			match[k] = v
		}
		total += SumDelta(base, cur, name, match)
	}
	return total
}

// reconcile cross-checks the client-observed run against the server's
// gemstone_serve_* metrics delta:
//
//   - campaign outcome counts match the server's counters exactly —
//     every terminal frame the client saw must be a settled campaign,
//     and vice versa;
//   - the queue is drained: the final gemstone_serve_queue_depth over
//     this run's tenants is zero, so nothing the client submitted is
//     still owed;
//   - mean campaign latency agrees within Tolerance (client measures
//     POST→terminal frame, the server measures admit→settle; the gap is
//     HTTP plus SSE delivery);
//   - client percentiles land inside the server histogram's bucket
//     bounds for the same quantile, widened by Tolerance — the server
//     histogram is bucketed, so bounds are the honest comparison.
func (d *Driver) reconcile(r *Report, campaigns *obs.HDR, base, cur *Metrics) []Check {
	var checks []Check
	tol := d.cfg.Tol
	absS := tol.Abs.Seconds()

	serverDone := d.tenantSum(base, cur, "gemstone_serve_campaigns_total", map[string]string{"outcome": "done"})
	serverFailed := d.tenantSum(base, cur, "gemstone_serve_campaigns_total", map[string]string{"outcome": "failed"})
	checks = append(checks,
		Check{
			Name: "campaigns-done", Client: float64(r.CampaignsDone), Server: serverDone,
			OK:     float64(r.CampaignsDone) == serverDone,
			Detail: "terminal done frames vs gemstone_serve_campaigns_total{outcome=done}",
		},
		Check{
			Name: "campaigns-failed", Client: float64(r.CampaignsFailed), Server: serverFailed,
			OK:     float64(r.CampaignsFailed) == serverFailed,
			Detail: "terminal error frames vs gemstone_serve_campaigns_total{outcome=failed}",
		})

	// Final queue depth over our tenants: cur only, not a delta — the
	// gauge must read zero once every submitted campaign is terminal.
	var depth float64
	for i := 0; i < d.cfg.Tenants; i++ {
		depth += cur.Sum("gemstone_serve_queue_depth", map[string]string{"tenant": tenantName(i)})
	}
	checks = append(checks, Check{
		Name: "queue-drained", Client: 0, Server: depth,
		OK:     depth == 0,
		Detail: "final gemstone_serve_queue_depth over the run's tenants",
	})

	if campaigns.Count() == 0 {
		return checks
	}

	clientMean := campaigns.Mean() / float64(time.Second)
	serverCount := SumDelta(base, cur, "gemstone_serve_campaign_seconds_count", map[string]string{"outcome": "done"})
	serverSum := SumDelta(base, cur, "gemstone_serve_campaign_seconds_sum", map[string]string{"outcome": "done"})
	if serverCount > 0 {
		serverMean := serverSum / serverCount
		allowed := tol.Rel*serverMean + absS
		checks = append(checks, Check{
			Name: "latency-mean-s", Client: clientMean, Server: serverMean,
			Tolerance: allowed,
			OK:        math.Abs(clientMean-serverMean) <= allowed,
			Detail:    "mean campaign seconds, client POST→done vs server admit→settle",
		})
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		lo, hi, ok := HistogramQuantileDelta(base, cur, "gemstone_serve_campaign_seconds",
			map[string]string{"outcome": "done"}, q)
		if !ok {
			continue
		}
		clientQ := campaigns.QuantileDuration(q).Seconds()
		// The server histogram resolves this quantile to [lo, hi]; the
		// client number must land inside, widened by the tolerance. hi
		// is +Inf when the quantile falls in the overflow bucket — only
		// the lower bound binds there.
		pass := clientQ >= lo-tol.Rel*lo-absS
		if !math.IsInf(hi, 1) {
			pass = pass && clientQ <= hi+tol.Rel*hi+absS
		}
		checks = append(checks, Check{
			Name:   fmt.Sprintf("latency-p%g-s", q*100),
			Client: clientQ, Server: hi, Tolerance: tol.Rel*hi + absS,
			OK:     pass,
			Detail: fmt.Sprintf("client p%g vs server bucket [%g, %g]", q*100, lo, hi),
		})
	}
	return checks
}

// BenchMetric is one scalar for BENCH_serve.json, the committed
// baseline scripts/bench.sh and gemwatch compare against.
type BenchMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Bench flattens the report into comparable scalars: per-op p50/p95/p99
// latency and throughput. Lower is better for *_ms, higher for *_rps —
// the unit carries the direction.
func (r *Report) Bench() []BenchMetric {
	var out []BenchMetric
	for _, op := range r.Ops {
		if op.OK == 0 {
			continue
		}
		pfx := "serve/" + op.Op + "/"
		out = append(out,
			BenchMetric{Name: pfx + "p50_ms", Value: round2(op.P50Ms), Unit: "ms"},
			BenchMetric{Name: pfx + "p95_ms", Value: round2(op.P95Ms), Unit: "ms"},
			BenchMetric{Name: pfx + "p99_ms", Value: round2(op.P99Ms), Unit: "ms"},
			BenchMetric{Name: pfx + "rps", Value: round2(op.ThroughputRPS), Unit: "rps"},
		)
	}
	return out
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// String renders the operator-facing run summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gemload %s-loop", r.Mode)
	if r.RateHz > 0 {
		fmt.Fprintf(&b, " rate=%.4g/s", r.RateHz)
	}
	fmt.Fprintf(&b, " conc=%d tenants=%d skew=%.4g invoke=%d seed=%d wall=%.2fs\n",
		r.Concurrency, r.Tenants, r.Skew, r.InvokeLength, r.Seed, r.DurationSeconds)
	if r.Backlog > 0 {
		fmt.Fprintf(&b, "  backlog: %d scheduled arrivals never issued (scheduler outran workers)\n", r.Backlog)
	}
	fmt.Fprintf(&b, "  %-9s %7s %7s %7s %6s %9s %9s %9s %9s %9s\n",
		"op", "issued", "ok", "reject", "err", "rps", "p50ms", "p95ms", "p99ms", "maxms")
	for _, op := range r.Ops {
		fmt.Fprintf(&b, "  %-9s %7d %7d %7d %6d %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			op.Op, op.Issued, op.OK, op.Rejected, op.Errors,
			op.ThroughputRPS, op.P50Ms, op.P95Ms, op.P99Ms, op.MaxMs)
	}
	fmt.Fprintf(&b, "  campaigns: %d done, %d failed\n", r.CampaignsDone, r.CampaignsFailed)
	fmt.Fprintf(&b, "  reconciliation (client vs server):\n")
	for _, c := range r.Checks {
		verdict := "ok"
		if !c.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "    %-16s client=%-10.4g server=%-10.4g tol=%-8.4g %s\n",
			c.Name, c.Client, c.Server, c.Tolerance, verdict)
	}
	if r.OK {
		fmt.Fprintf(&b, "  SLO: PASS\n")
	} else {
		fmt.Fprintf(&b, "  SLO: FAIL")
		if r.LastError != "" {
			fmt.Fprintf(&b, " (last error: %s)", r.LastError)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
