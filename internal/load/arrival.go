// Package load is gemload's engine: a ReqBench-style open/closed-loop
// load driver that replays realistic request mixes — cold campaigns,
// warm-cache hits, SSE progress subscribers and analysis-only queries —
// against a running `gemstone serve` fleet, measures every request
// end-to-end into mergeable HDR latency shards, and reconciles the
// client-observed SLOs against the server's own gemstone_serve_*
// metrics and /v1/statusz snapshot.
//
// Everything is deterministically seeded: the arrival process, the
// tenant and spec selection and the operation mix all derive from one
// seed, so a load shape reproduces across runs (modulo the service's
// actual timing, which is the thing being measured).
package load

import (
	"math"
	"time"

	"gemstone/internal/xrand"
)

// Poisson generates open-loop inter-arrival gaps with exponentially
// distributed spacing — a Poisson arrival process at RateHz requests
// per second. ReqBench's open-loop trials do the same: arrivals are
// scheduled by the process, not by request completion, so a slow
// server cannot slow the offered load (no coordinated omission).
type Poisson struct {
	rng  *xrand.RNG
	mean float64 // mean gap in seconds
}

// NewPoisson returns a Poisson arrival process at rateHz arrivals per
// second, drawing from rng. rateHz must be positive.
func NewPoisson(rng *xrand.RNG, rateHz float64) *Poisson {
	if rateHz <= 0 {
		panic("load: NewPoisson with non-positive rate")
	}
	return &Poisson{rng: rng, mean: 1 / rateHz}
}

// Next returns the gap until the next arrival.
func (p *Poisson) Next() time.Duration {
	return time.Duration(p.rng.Exp(p.mean) * float64(time.Second))
}

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s — the rank-frequency law behind skewed tenant and key
// popularity (ReqBench's `skew` knob). s = 0 degenerates to uniform;
// larger s concentrates mass on the low ranks. Sampling is inverse
// transform over a precomputed CDF (O(log n) per draw), so the sampler
// is deterministic given its RNG.
type Zipf struct {
	rng *xrand.RNG
	cdf []float64
}

// NewZipf returns a Zipf sampler over n ranks with exponent s >= 0.
func NewZipf(rng *xrand.RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("load: NewZipf with non-positive n")
	}
	if s < 0 {
		s = 0
	}
	cdf := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -s)
		cdf[r] = total
	}
	for r := range cdf {
		cdf[r] /= total
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next draws one rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the sampler's rank count.
func (z *Zipf) N() int { return len(z.cdf) }
