package load

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gemstone/internal/obs"
)

func TestParseMetricsRoundTrip(t *testing.T) {
	// Build a registry the way the server does, render it, parse it
	// back, and check the numbers survive — the parser and the
	// exposition writer must agree or reconciliation is fiction.
	reg := obs.NewRegistry()
	c := reg.Counter("gemload_test_total", "help text", "tenant", "outcome")
	c.Add(3, "alice", "done")
	c.Add(2, "bob", "done")
	c.Add(1, "bob", "failed")
	g := reg.Gauge("gemload_test_depth", "", "tenant")
	g.Set(4, "alice")
	h := reg.Histogram("gemload_test_seconds", "lat", []float64{0.1, 1, 10}, "tenant")
	h.Observe(0.05, "alice")
	h.Observe(0.5, "alice")
	h.Observe(5, "alice")
	h.Observe(50, "alice")

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got := m.Sum("gemload_test_total", map[string]string{"outcome": "done"}); got != 5 {
		t.Fatalf("done sum = %v, want 5", got)
	}
	if got := m.Sum("gemload_test_total", nil); got != 6 {
		t.Fatalf("total sum = %v, want 6", got)
	}
	if got := m.Sum("gemload_test_depth", map[string]string{"tenant": "alice"}); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
	if got := m.Sum("gemload_test_seconds_count", nil); got != 4 {
		t.Fatalf("hist count = %v, want 4", got)
	}

	// Histogram quantiles to bucket resolution: the median of
	// {0.05, 0.5, 5, 50} is rank 2 → the (0.1, 1] bucket.
	lo, hi, ok := HistogramQuantileDelta(nil, m, "gemload_test_seconds", nil, 0.5)
	if !ok || lo != 0.1 || hi != 1 {
		t.Fatalf("median bucket = [%v,%v] ok=%v, want [0.1,1]", lo, hi, ok)
	}
	// p99 lands in the +Inf bucket: hi is +Inf, lo the last finite bound.
	lo, hi, ok = HistogramQuantileDelta(nil, m, "gemload_test_seconds", nil, 0.99)
	if !ok || lo != 10 || !math.IsInf(hi, 1) {
		t.Fatalf("p99 bucket = [%v,%v] ok=%v, want [10,+Inf]", lo, hi, ok)
	}
}

func TestHistogramQuantileDeltaSubtractsBaseline(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("d_seconds", "", []float64{1, 10}, "tenant")
	h.Observe(0.5, "a") // pre-run observation
	var pre bytes.Buffer
	if err := reg.WritePrometheus(&pre); err != nil {
		t.Fatal(err)
	}
	base, err := ParseMetrics(&pre)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(5, "a")
	h.Observe(5, "b")
	var post bytes.Buffer
	if err := reg.WritePrometheus(&post); err != nil {
		t.Fatal(err)
	}
	cur, err := ParseMetrics(&post)
	if err != nil {
		t.Fatal(err)
	}
	// The delta is two observations of 5s (the 0.5s one is baseline):
	// every quantile lives in the (1, 10] bucket.
	for _, q := range []float64{0.25, 0.5, 0.99} {
		lo, hi, ok := HistogramQuantileDelta(base, cur, "d_seconds", nil, q)
		if !ok || lo != 1 || hi != 10 {
			t.Fatalf("q%v = [%v,%v] ok=%v, want [1,10]", q, lo, hi, ok)
		}
	}
	if d := SumDelta(base, cur, "d_seconds_count", nil); d != 2 {
		t.Fatalf("count delta = %v, want 2", d)
	}
	// Empty delta: base == cur.
	if _, _, ok := HistogramQuantileDelta(cur, cur, "d_seconds", nil, 0.5); ok {
		t.Fatal("zero-delta histogram must report !ok")
	}
}

func TestParseMetricsEscapesAndErrors(t *testing.T) {
	m, err := ParseMetrics(strings.NewReader(
		"# HELP x h\n# TYPE x counter\n" +
			"x{v=\"a\\\\b\\\"c\\nd\"} 7\n" +
			"plain 1.5\n" +
			"inf_g +Inf\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Samples[0].Labels["v"] != "a\\b\"c\nd" {
		t.Fatalf("unescaped label = %q", m.Samples[0].Labels["v"])
	}
	if m.Samples[1].Name != "plain" || m.Samples[1].Value != 1.5 {
		t.Fatalf("plain sample = %+v", m.Samples[1])
	}
	if !math.IsInf(m.Samples[2].Value, 1) {
		t.Fatalf("inf sample = %v", m.Samples[2].Value)
	}
	if _, err := ParseMetrics(strings.NewReader("garbage\n")); err == nil {
		t.Fatal("malformed line must error")
	}
}
