package load

import (
	"math"
	"testing"

	"gemstone/internal/xrand"
)

// Golden tests: the arrival processes are part of the reproducibility
// contract — a given seed must generate the identical load shape on
// every machine and every run, so a BENCH_serve.json regression can be
// replayed exactly. These sequences were generated once and pinned.

func TestPoissonGolden(t *testing.T) {
	p := NewPoisson(xrand.New(1), 100)
	want := []int64{8360055, 13695621, 35405544, 5876332, 5874631, 14392496}
	for i, w := range want {
		if got := p.Next().Nanoseconds(); got != w {
			t.Fatalf("gap[%d] = %d ns, want %d", i, got, w)
		}
	}
}

func TestZipfGolden(t *testing.T) {
	z := NewZipf(xrand.New(2), 10, 1.0)
	want := []int{2, 4, 2, 4, 0, 1, 4, 4, 0, 4, 0, 1}
	for i, w := range want {
		if got := z.Next(); got != w {
			t.Fatalf("zipf[%d] = %d, want %d", i, got, w)
		}
	}
	uni := NewZipf(xrand.New(3), 5, 0)
	wantU := []int{0, 3, 3, 0, 1, 3, 0, 4, 2, 4, 3, 3}
	for i, w := range wantU {
		if got := uni.Next(); got != w {
			t.Fatalf("uniform zipf[%d] = %d, want %d", i, got, w)
		}
	}
}

// Statistical sanity: the generators must actually have the
// distributions they claim, not merely be deterministic.

func TestPoissonInterArrivalMean(t *testing.T) {
	const rate = 250.0
	const n = 200000
	p := NewPoisson(xrand.New(42), rate)
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Next().Seconds()
	}
	mean := sum / n
	want := 1 / rate
	// Standard error of the mean for Exp(λ) is (1/λ)/√n ≈ 0.22% here;
	// a 2% band is ~9 sigma — loose enough to never flake, tight
	// enough to catch a wrong distribution.
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("mean inter-arrival %.6fs, want %.6fs ±2%%", mean, want)
	}
}

func TestZipfRankFrequencySlope(t *testing.T) {
	const s = 1.2
	const n = 50
	const draws = 400000
	z := NewZipf(xrand.New(9), n, s)
	freq := make([]float64, n)
	for i := 0; i < draws; i++ {
		freq[z.Next()]++
	}
	// OLS fit of log(freq) on log(rank+1) over the well-populated head:
	// the slope of a Zipf(s) rank-frequency plot is -s.
	var sx, sy, sxx, sxy float64
	k := 0
	for r := 0; r < 20; r++ {
		if freq[r] < 10 {
			break
		}
		x, y := math.Log(float64(r+1)), math.Log(freq[r])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		k++
	}
	if k < 10 {
		t.Fatalf("only %d populated head ranks", k)
	}
	slope := (float64(k)*sxy - sx*sy) / (float64(k)*sxx - sx*sx)
	if math.Abs(slope-(-s)) > 0.1 {
		t.Fatalf("rank-frequency slope %.3f, want %.3f ±0.1", slope, -s)
	}
}

func TestZipfUniformWhenSkewZero(t *testing.T) {
	const n = 8
	const draws = 160000
	z := NewZipf(xrand.New(5), n, 0)
	freq := make([]float64, n)
	for i := 0; i < draws; i++ {
		freq[z.Next()]++
	}
	want := float64(draws) / n
	for r, f := range freq {
		if math.Abs(f-want)/want > 0.05 {
			t.Fatalf("rank %d frequency %.0f, want %.0f ±5%%", r, f, want)
		}
	}
}

func TestZipfCoversAllRanks(t *testing.T) {
	z := NewZipf(xrand.New(6), 4, 2.5)
	if z.N() != 4 {
		t.Fatalf("N = %d", z.N())
	}
	seen := map[int]bool{}
	for i := 0; i < 20000; i++ {
		r := z.Next()
		if r < 0 || r >= 4 {
			t.Fatalf("rank %d out of range", r)
		}
		seen[r] = true
	}
	// Even heavily skewed, every rank has positive mass.
	if len(seen) != 4 {
		t.Fatalf("only %d of 4 ranks sampled", len(seen))
	}
}
