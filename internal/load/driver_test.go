package load

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"gemstone/internal/dist"
)

// runDuration scales load windows down under -short.
func runDuration(t *testing.T, full time.Duration) time.Duration {
	t.Helper()
	if testing.Short() {
		return full / 2
	}
	return full
}

// TestDriverClosedLoopEndToEnd drives a real in-process fleet with the
// default mix in closed-loop mode and checks the full contract: ops
// complete, latencies are recorded, and the client-side view reconciles
// against the server's own metrics.
func TestDriverClosedLoopEndToEnd(t *testing.T) {
	fleet, err := StartFleet(FleetConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	d, err := NewDriver(Config{
		BaseURL:     fleet.URL,
		Concurrency: 3,
		Duration:    runDuration(t, 2*time.Second),
		Seed:        7,
		Skew:        1.1,
		Tenants:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if r.Mode != "closed" {
		t.Fatalf("mode = %q, want closed", r.Mode)
	}
	if r.CampaignsDone == 0 {
		t.Fatal("no campaigns completed")
	}
	if r.CampaignsFailed != 0 {
		t.Fatalf("%d campaigns failed (last error: %s)", r.CampaignsFailed, r.LastError)
	}
	var issued, ok int
	for _, op := range r.Ops {
		issued += op.Issued
		ok += op.OK
		if op.OK > 0 && op.P50Ms <= 0 {
			t.Errorf("op %s: %d ok but p50 = %v", op.Op, op.OK, op.P50Ms)
		}
		if op.P99Ms+1e-9 < op.P50Ms {
			t.Errorf("op %s: p99 %v < p50 %v", op.Op, op.P99Ms, op.P50Ms)
		}
	}
	if issued == 0 || ok == 0 {
		t.Fatalf("issued=%d ok=%d", issued, ok)
	}
	// The cold op always runs (replay ops fall back to it before any
	// campaign has finished).
	if r.Ops[0].Op != string(OpCold) || r.Ops[0].OK == 0 {
		t.Fatalf("cold op stats missing: %+v", r.Ops)
	}

	if len(r.Checks) == 0 {
		t.Fatal("no reconciliation checks")
	}
	if !r.OK {
		t.Fatalf("reconciliation failed:\n%s", r)
	}
	names := map[string]bool{}
	for _, c := range r.Checks {
		names[c.Name] = true
	}
	for _, want := range []string{"campaigns-done", "campaigns-failed", "queue-drained", "latency-mean-s"} {
		if !names[want] {
			t.Errorf("missing check %q in %v", want, names)
		}
	}

	if len(r.Statusz) == 0 {
		t.Fatal("no statusz snapshot")
	}
	var sz struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(r.Statusz, &sz); err != nil || sz.Status == "" {
		t.Fatalf("statusz snapshot malformed: %v %s", err, r.Statusz)
	}

	// The bench export carries every exercised op.
	bench := r.Bench()
	if len(bench) == 0 {
		t.Fatal("empty bench export")
	}
	seen := map[string]bool{}
	for _, m := range bench {
		seen[m.Name] = true
		if m.Unit != "ms" && m.Unit != "rps" {
			t.Errorf("bench %s: unit %q", m.Name, m.Unit)
		}
	}
	if !seen["serve/cold/p50_ms"] || !seen["serve/cold/rps"] {
		t.Errorf("bench export missing cold metrics: %v", seen)
	}

	// The human rendering mentions the verdict.
	if s := r.String(); !strings.Contains(s, "SLO: PASS") {
		t.Errorf("report string lacks verdict:\n%s", s)
	}
}

// TestDriverOpenLoop runs the Poisson-scheduled open loop and checks
// arrivals were issued and measured from their intended instants.
func TestDriverOpenLoop(t *testing.T) {
	fleet, err := StartFleet(FleetConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	d, err := NewDriver(Config{
		BaseURL:     fleet.URL,
		Concurrency: 4,
		RateHz:      40,
		Duration:    runDuration(t, 2*time.Second),
		Seed:        11,
		Skew:        1.0,
		Tenants:     3,
		Mix:         Mix{Cold: 1, Warm: 2, Events: 4, Analysis: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != "open" {
		t.Fatalf("mode = %q, want open", r.Mode)
	}
	var issued int
	for _, op := range r.Ops {
		issued += op.Issued
	}
	// The Poisson schedule is deterministic given the seed: every
	// generated arrival is either issued or counted as backlog, and at
	// 40/s the window produces far more than this floor.
	if total := issued + r.Backlog; total < 30 {
		t.Fatalf("open loop scheduled %d arrivals (issued %d, backlog %d), want >= 30",
			total, issued, r.Backlog)
	}
	if issued == 0 {
		t.Fatal("open loop issued nothing")
	}
	if !r.OK {
		t.Fatalf("reconciliation failed:\n%s", r)
	}
}

// TestDriverRejectsBadConfig covers constructor validation.
func TestDriverRejectsBadConfig(t *testing.T) {
	if _, err := NewDriver(Config{}); err == nil {
		t.Fatal("empty BaseURL must error")
	}
	if _, err := NewDriver(Config{BaseURL: "http://x", InvokeLength: 10_000}); err == nil {
		t.Fatal("oversized invoke length must error")
	}
}

// TestChaosSoak is the SLO soak: a three-worker fleet with one worker
// dying (and the previous victim reviving) on a fixed schedule plus a
// fault-injecting transport, under sustained mixed load. The SLO
// contract: zero failed campaigns, and the client/server views still
// reconcile — worker death costs tail latency, never correctness.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	fleet, err := StartFleet(FleetConfig{
		Workers:   3,
		KillEvery: 500 * time.Millisecond,
		Chaos: &dist.Chaos{
			Seed:          5,
			DropProb:      0.05,
			DuplicateProb: 0.05,
			CorruptProb:   0.05,
			MaxFaults:     40,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	d, err := NewDriver(Config{
		BaseURL:     fleet.URL,
		Concurrency: 4,
		Duration:    4 * time.Second,
		Seed:        13,
		Skew:        1.1,
		Tenants:     3,
		Mix:         Mix{Cold: 2, Warm: 3, Events: 2, Analysis: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Kills() == 0 {
		t.Fatal("kill schedule never fired")
	}
	if r.CampaignsFailed != 0 {
		t.Fatalf("%d campaigns failed under chaos (last error: %s)", r.CampaignsFailed, r.LastError)
	}
	if !r.OK {
		t.Fatalf("SLO reconciliation failed under chaos:\n%s", r)
	}
}
