package load

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/dist"
	"gemstone/internal/obs"
	"gemstone/internal/serve"
)

// FleetConfig shapes an in-process fleet: N gemstoned workers behind
// one gemstone serve instance on a loopback listener. gemload -fleet
// and the driver's own tests use it so a load run never needs external
// processes.
type FleetConfig struct {
	// Workers is the gemstoned worker count; 0 means 2.
	Workers int
	// MaxCampaigns / TenantQuota pass through to serve admission
	// control (0 keeps the serve defaults, negative means unlimited).
	MaxCampaigns int
	TenantQuota  int
	// KillEvery, when positive, cycles worker death: every KillEvery
	// one worker drops (all its connections reset, like a crashed
	// process) and the previously killed one revives — the chaos-soak
	// schedule "a worker dies every N seconds".
	KillEvery time.Duration
	// Chaos, when non-nil, is installed as the coordinator's transport
	// so run exchanges see drops, duplicates, corruption and delays.
	Chaos *dist.Chaos
	// Log, when non-nil, receives serve and coordinator logging.
	Log *slog.Logger
}

// Fleet is a running in-process service: URL is the serve endpoint,
// Registry the serve metrics registry the driver reconciles against.
type Fleet struct {
	URL      string
	Registry *obs.Registry

	svc     *serve.Server
	servers []*http.Server
	kills   []*dist.KillSwitch
	stop    chan struct{}
	wg      sync.WaitGroup
	killed  atomic.Int64
}

// Kills reports how many kill cycles the chaos schedule has fired.
func (f *Fleet) Kills() int64 { return f.killed.Load() }

// serveOn starts an HTTP server for h on a fresh loopback port.
func serveOn(h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return srv, "http://" + ln.Addr().String(), nil
}

// StartFleet boots the workers and the service. Close releases
// everything.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	f := &Fleet{
		Registry: obs.NewRegistry(),
		stop:     make(chan struct{}),
	}
	var workerURLs []string
	for i := 0; i < cfg.Workers; i++ {
		w := dist.NewWorker(dist.WorkerConfig{MaxParallel: 2})
		// After is effectively infinite: only the explicit Kill/Revive
		// schedule downs a worker.
		ks := &dist.KillSwitch{Handler: w.Handler(), After: 1 << 62}
		srv, url, err := serveOn(ks)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("load: start worker %d: %w", i, err)
		}
		f.kills = append(f.kills, ks)
		f.servers = append(f.servers, srv)
		workerURLs = append(workerURLs, url)
	}

	coordCfg := dist.CoordinatorConfig{
		Workers:  workerURLs,
		Registry: f.Registry,
		Log:      cfg.Log,
	}
	if cfg.Chaos != nil {
		coordCfg.Client = &http.Client{Transport: cfg.Chaos}
	}
	coord := dist.NewCoordinator(coordCfg)

	f.svc = serve.New(serve.Config{
		Coordinator:  coord,
		Cache:        core.NewMemoryCache(0),
		Registry:     f.Registry,
		Log:          cfg.Log,
		MaxCampaigns: cfg.MaxCampaigns,
		TenantQuota:  cfg.TenantQuota,
	})
	srv, url, err := serveOn(f.svc.Handler())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("load: start service: %w", err)
	}
	f.servers = append(f.servers, srv)
	f.URL = url

	if cfg.KillEvery > 0 && len(f.kills) > 0 {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			t := time.NewTicker(cfg.KillEvery)
			defer t.Stop()
			i := 0
			n := len(f.kills)
			for {
				select {
				case <-f.stop:
					for _, k := range f.kills {
						k.Revive()
					}
					return
				case <-t.C:
					// Revive the previous victim, drop the next: exactly
					// one worker is down at a time, rotating through the
					// fleet.
					if i > 0 {
						f.kills[(i-1)%n].Revive()
					}
					f.kills[i%n].Kill()
					f.killed.Add(1)
					i++
				}
			}
		}()
	}
	return f, nil
}

// Close revives every worker, stops the chaos schedule and shuts the
// servers down.
func (f *Fleet) Close() {
	if f.stop != nil {
		close(f.stop)
	}
	f.wg.Wait()
	if f.svc != nil {
		f.svc.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, srv := range f.servers {
		srv.Shutdown(ctx)
	}
}
