package serve

import (
	"sync"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
)

// State is a campaign's lifecycle phase.
type State string

// Campaign states. The only transitions are pending → running →
// done | failed; terminal states never change.
const (
	StatePending State = "pending"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Event is one frame of a campaign's progress stream. Seq is assigned
// at append time and is the SSE event id, so a reconnecting client can
// see where the stream it re-reads diverges from what it already saw
// (the stream always replays from the start — campaigns are bounded, so
// the full history is small).
type Event struct {
	// Seq is the 1-based position of the event in the campaign stream.
	Seq int `json:"seq"`
	// Type names the frame: submitted, started, collect-start, run-done,
	// collect-done, screened, validated, done, error.
	Type string `json:"type"`
	// Platform scopes collect-start/run-done/collect-done frames.
	Platform string `json:"platform,omitempty"`
	// Jobs is the campaign size on collect-start frames.
	Jobs int `json:"jobs,omitempty"`
	// Done counts completed runs on run-done/collect-done frames.
	Done int `json:"done,omitempty"`
	// CacheHits counts replayed runs on collect-done frames.
	CacheHits int `json:"cache_hits,omitempty"`
	// Flagged counts the points a screen-mode campaign selected for
	// detailed re-simulation, on screened frames.
	Flagged int `json:"flagged,omitempty"`
	// MAPE carries the headline error on validated/done frames.
	MAPE float64 `json:"mape,omitempty"`
	// Error carries the failure message on error frames.
	Error string `json:"error,omitempty"`
}

// Campaign is one submitted campaign: its identity, spec, event history
// and (once done) its collected run sets. All mutable state is guarded
// by mu; readers take snapshots.
type Campaign struct {
	// ID is the service-assigned campaign identifier.
	ID string
	// Tenant is the submitting tenant.
	Tenant string
	// Spec is the validated campaign spec.
	Spec *CampaignSpec
	// Created is the submission time.
	Created time.Time
	// tracer records the campaign's fleet-wide trace when the server has
	// tracing enabled; nil otherwise. It is set once before the campaign
	// goroutine starts and never mutated, so handlers read it without
	// holding mu. Its Chrome export is served by /v1/campaigns/{id}/trace
	// once the campaign is terminal.
	tracer *obs.Tracer

	mu     sync.Mutex
	state  State
	events []Event
	notify chan struct{} // closed and replaced on every append
	hw     *core.RunSet
	sim    *core.RunSet
	err    error
	vs     *core.ValidationSummary // cached validation analysis
}

func newCampaign(id, tenant string, spec *CampaignSpec) *Campaign {
	return &Campaign{
		ID:      id,
		Tenant:  tenant,
		Spec:    spec,
		Created: time.Now(),
		state:   StatePending,
		notify:  make(chan struct{}),
	}
}

// append records an event (assigning its sequence number) and wakes
// every stream subscriber. Returns the stored event.
func (c *Campaign) append(e Event) Event {
	c.mu.Lock()
	e = c.appendLocked(e)
	c.mu.Unlock()
	return e
}

// appendLocked is append's body; the caller holds mu. Terminal
// transitions use it to publish their frame and state in one critical
// section.
func (c *Campaign) appendLocked(e Event) Event {
	e.Seq = len(c.events) + 1
	c.events = append(c.events, e)
	close(c.notify)
	c.notify = make(chan struct{})
	return e
}

// setState transitions the campaign.
func (c *Campaign) setState(s State) {
	c.mu.Lock()
	c.state = s
	c.mu.Unlock()
}

// State returns the current lifecycle phase.
func (c *Campaign) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// snapshot returns the events from index from on, the channel that will
// be closed on the next append, and the current state. A subscriber
// loops: drain events, and if the state is terminal stop, otherwise
// wait on the channel.
func (c *Campaign) snapshot(from int) ([]Event, <-chan struct{}, State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var tail []Event
	if from < len(c.events) {
		tail = append(tail, c.events[from:]...)
	}
	return tail, c.notify, c.state
}

// complete records a successful campaign: results, the terminal "done"
// frame and the StateDone transition commit under one mutex hold, so no
// snapshot can ever observe a terminal state whose terminal event is
// not yet in the history (the stream handler keys its exit on exactly
// that invariant).
func (c *Campaign) complete(hw, sim *core.RunSet, vs *core.ValidationSummary, e Event) Event {
	c.mu.Lock()
	c.hw, c.sim, c.vs = hw, sim, vs
	e = c.appendLocked(e)
	c.state = StateDone
	c.mu.Unlock()
	return e
}

// failWith records a failed campaign; like complete, the error, the
// terminal "error" frame and the StateFailed transition are atomic.
func (c *Campaign) failWith(err error, e Event) Event {
	c.mu.Lock()
	c.err = err
	e = c.appendLocked(e)
	c.state = StateFailed
	c.mu.Unlock()
	return e
}

// results returns the collected run sets and cached validation; ok is
// false until the campaign is done.
func (c *Campaign) results() (hw, sim *core.RunSet, vs *core.ValidationSummary, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hw, c.sim, c.vs, c.state == StateDone
}

// Err returns the failure of a failed campaign, nil otherwise.
func (c *Campaign) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// campaignObserver adapts a campaign's event stream to the collector's
// observer callbacks. Counters are per-collect (the campaign runs two:
// hardware then model); emit routes through the server so event metrics
// stay accurate.
//
// It also times the campaign's SLO phases. A campaign's wall time is
// partitioned into queued / leased / simulating / collating; the
// observer measures the middle two as, per collect half:
//
//	leased     — collect start until the first run activity (the lag
//	             before any worker or local lane picks up work)
//	simulating — first run activity until the half's CollectDone
//
// summed across halves. queued and collating are measured by
// runCampaign, which sees the campaign's creation and terminal times.
type campaignObserver struct {
	emit func(Event)
	// onDone, when non-nil, receives each half's CollectStats (the
	// server folds them into its statusz cache accumulators).
	onDone func(core.CollectStats)

	mu       sync.Mutex
	platform string
	done     int

	collectStart time.Time     // current half's CollectStart time
	activityAt   time.Time     // first run activity of the current half
	leaseWait    time.Duration // Σ first activity − collect start
	simWall      time.Duration // Σ collect done − first activity
	lastDone     time.Time     // most recent CollectDone
}

// CollectStart implements core.CollectObserver.
func (o *campaignObserver) CollectStart(platformName string, jobs int) {
	o.mu.Lock()
	o.platform, o.done = platformName, 0
	o.collectStart, o.activityAt = time.Now(), time.Time{}
	o.mu.Unlock()
	o.emit(Event{Type: "collect-start", Platform: platformName, Jobs: jobs})
}

// markActivityLocked records the half's first sign of run progress.
func (o *campaignObserver) markActivityLocked() {
	if o.activityAt.IsZero() {
		o.activityAt = time.Now()
		o.leaseWait += o.activityAt.Sub(o.collectStart)
	}
}

// RunStart implements core.CollectObserver.
func (o *campaignObserver) RunStart(core.RunKey) {
	o.mu.Lock()
	o.markActivityLocked()
	o.mu.Unlock()
}

// CacheHit implements core.CollectObserver.
func (o *campaignObserver) CacheHit(core.RunKey) { o.runDone() }

// RunDone implements core.CollectObserver.
func (o *campaignObserver) RunDone(core.RunKey, platform.Measurement, time.Duration) {
	o.runDone()
}

func (o *campaignObserver) runDone() {
	o.mu.Lock()
	o.markActivityLocked()
	o.done++
	e := Event{Type: "run-done", Platform: o.platform, Done: o.done}
	o.mu.Unlock()
	o.emit(e)
}

// RunError implements core.CollectObserver. Failures surface through
// the collector's returned error; per-run noise stays off the stream.
func (o *campaignObserver) RunError(core.RunKey, error) {}

// CollectDone implements core.CollectObserver.
func (o *campaignObserver) CollectDone(s core.CollectStats) {
	o.mu.Lock()
	now := time.Now()
	// A fully-cached half may finish without a single RunStart callback
	// reaching us before CollectDone; count the whole half as simulating.
	o.markActivityLocked()
	o.simWall += now.Sub(o.activityAt)
	o.lastDone = now
	o.mu.Unlock()
	if o.onDone != nil {
		o.onDone(s)
	}
	o.emit(Event{
		Type:      "collect-done",
		Platform:  s.Platform,
		Done:      s.Simulated + s.CacheHits,
		CacheHits: s.CacheHits,
	})
}

// phases reports the accumulated leased and simulating time and the
// last CollectDone instant (zero if no half completed).
func (o *campaignObserver) phases() (leased, simulating time.Duration, lastDone time.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.leaseWait, o.simWall, o.lastDone
}
