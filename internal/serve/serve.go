package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/dist"
	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/ledger"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/power"
)

// CollectFunc executes one platform half of a campaign. opt.Name
// attributes the work ("<campaign-id>/hw", "<campaign-id>/sim") so a
// distributed coordinator can key its lease table per campaign, and
// opt.Fidelity carries the simulation tier. Tests install a stub here.
type CollectFunc func(ctx context.Context, pl *platform.Platform, opt core.CollectOptions) (*core.RunSet, error)

// Config assembles a campaign service.
type Config struct {
	// Coordinator, when non-nil, executes campaigns over a distributed
	// worker fleet; nil runs campaigns in-process.
	Coordinator *dist.Coordinator
	// Collector overrides campaign execution entirely (test seam);
	// when nil the coordinator (or local collection) is used.
	Collector CollectFunc
	// Cache memoises runs. It is shared across tenants but accessed
	// through per-tenant namespaces, so no tenant can replay another's
	// entries. Nil disables caching.
	Cache core.RunCache
	// Ledger, when non-nil, receives one provenance entry per completed
	// campaign, attributed with tenant and campaign ID.
	Ledger *ledger.Store
	// Registry, when non-nil, receives gemstone_serve_* metrics and the
	// per-route HTTP instrumentation.
	Registry *obs.Registry
	// Tracer, when non-nil, records one span per campaign.
	Tracer *obs.Tracer
	// TraceCampaigns, when true, gives every campaign its own fleet-wide
	// tracer: the coordinator stitches worker-side spans into it and
	// GET /v1/campaigns/{id}/trace serves the merged Chrome timeline once
	// the campaign is terminal. Traces live exactly as long as their
	// campaign (the retention cap evicts both together).
	TraceCampaigns bool
	// Log, when non-nil, receives service logging.
	Log *slog.Logger
	// MaxCampaigns bounds fleet-wide in-flight campaigns; 0 means 4,
	// negative means unlimited.
	MaxCampaigns int
	// TenantQuota bounds in-flight campaigns per tenant; 0 means 2,
	// negative means unlimited.
	TenantQuota int
	// MaxRetained bounds terminal (done or failed) campaigns kept in
	// memory across all tenants; when a campaign settles beyond the cap
	// the oldest terminal campaigns — and their run sets, analyses and
	// event histories — are evicted, so a long-running daemon's memory
	// is bounded by in-flight work plus a fixed archive window, not by
	// lifetime submissions. Evicted campaigns 404; clients that need an
	// archive longer download it (or re-submit: the run cache replays
	// it). 0 means 64, negative means retain forever.
	MaxRetained int
	// Workers bounds each campaign's local collection parallelism
	// (core.CollectOptions.Workers); 0 means GOMAXPROCS.
	Workers int
}

// DefaultMaxCampaigns, DefaultTenantQuota and DefaultMaxRetained are
// the zero-value admission and retention bounds.
const (
	DefaultMaxCampaigns = 4
	DefaultTenantQuota  = 2
	DefaultMaxRetained  = 64
)

// DefaultTenant is the tenant of requests without an X-Gemstone-Tenant
// header.
const DefaultTenant = "default"

// TenantHeader carries the tenant identifier.
const TenantHeader = "X-Gemstone-Tenant"

// tenantRE constrains tenant identifiers: they appear in cache
// namespaces, metric labels and ledger entries, so keep them to a safe
// token alphabet.
var tenantRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// Server is the campaign service. Create with New, mount Handler, and
// Close to stop accepting work and wait for running campaigns.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	ctx    context.Context
	cancel context.CancelCauseFunc
	wg     sync.WaitGroup
	seq    atomic.Int64

	mu        sync.Mutex
	closed    bool
	campaigns map[string]*Campaign
	order     []string // submission order, for listing
	active    int
	perTenant map[string]int

	started time.Time   // server start, for /v1/statusz uptime
	slo     *sloTracker // rolling per-tenant phase latencies

	cacheJobs atomic.Int64 // jobs observed across completed collects
	cacheHits atomic.Int64 // cache hits across completed collects

	mCampaigns *obs.Counter   // gemstone_serve_campaigns_total{tenant,outcome}
	mActive    *obs.Gauge     // gemstone_serve_campaigns_active{tenant}
	mQueue     *obs.Gauge     // gemstone_serve_queue_depth{tenant}
	mRejected  *obs.Counter   // gemstone_serve_rejected_total{tenant,reason}
	mEvents    *obs.Counter   // gemstone_serve_events_total{tenant,type}
	mEvicted   *obs.Counter   // gemstone_serve_evicted_total
	mSeconds   *obs.Histogram // gemstone_serve_campaign_seconds{tenant,outcome}
	mSLO       *obs.Histogram // gemstone_serve_slo_phase_seconds{tenant,phase}
}

// campaignDurationBounds buckets campaign wall time from warm-cache
// smoke campaigns to full multi-hour sweeps.
var campaignDurationBounds = []float64{
	0.1, 0.5, 2.5, 10, 60, 300, 1800, 7200, 28800,
}

// New builds a campaign service from cfg.
func New(cfg Config) *Server {
	if cfg.MaxCampaigns == 0 {
		cfg.MaxCampaigns = DefaultMaxCampaigns
	}
	if cfg.TenantQuota == 0 {
		cfg.TenantQuota = DefaultTenantQuota
	}
	if cfg.MaxRetained == 0 {
		cfg.MaxRetained = DefaultMaxRetained
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		campaigns: make(map[string]*Campaign),
		perTenant: make(map[string]int),
		started:   time.Now(),
		slo:       newSLOTracker(),
	}
	if reg := cfg.Registry; reg != nil {
		s.mCampaigns = reg.Counter("gemstone_serve_campaigns_total",
			"Campaigns accepted, by tenant and final outcome.", "tenant", "outcome")
		s.mActive = reg.Gauge("gemstone_serve_campaigns_active",
			"Campaigns currently pending or running, by tenant.", "tenant")
		s.mQueue = reg.Gauge("gemstone_serve_queue_depth",
			"Admitted campaigns not yet terminal, by tenant: the work the service still owes. "+
				"A load generator reconciling its latencies against the service uses this to "+
				"attribute tail latency to queueing rather than simulation.", "tenant")
		s.mRejected = reg.Counter("gemstone_serve_rejected_total",
			"Campaign submissions rejected by admission control, by tenant and reason.", "tenant", "reason")
		s.mEvents = reg.Counter("gemstone_serve_events_total",
			"Campaign stream events emitted, by tenant and event type.", "tenant", "type")
		s.mEvicted = reg.Counter("gemstone_serve_evicted_total",
			"Terminal campaigns evicted by the retention cap.")
		s.mSeconds = reg.Histogram("gemstone_serve_campaign_seconds",
			"Campaign wall time in seconds, by tenant and outcome.", campaignDurationBounds, "tenant", "outcome")
		s.mSLO = reg.Histogram("gemstone_serve_slo_phase_seconds",
			"Campaign time spent per SLO phase (queued, leased, simulating, collating), by tenant.",
			campaignDurationBounds, "tenant", "phase")
	}
	s.mux = s.routes()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops admission, cancels running campaigns and waits for their
// goroutines. Event streams observe the terminal error frame first, so
// connected clients see a clean end of stream.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel(fmt.Errorf("serve: server closed"))
	s.wg.Wait()
	return nil
}

func (s *Server) log() *slog.Logger {
	if s.cfg.Log != nil {
		return s.cfg.Log
	}
	return slog.New(discardHandler{})
}

// discardHandler drops records (slog.DiscardHandler is Go 1.24+; the
// module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// routes assembles the Go 1.22 method/wildcard mux, wrapping each route
// in the registry's HTTP instrumentation and the request log when either
// is configured. The log correlator runs after the mux has matched, so
// path values are populated and every request line carries its tenant
// and (where the route has one) campaign ID alongside the request ID the
// middleware assigns.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	correlate := func(r *http.Request) []any {
		attrs := []any{"tenant", tenantLabel(r)}
		if id := r.PathValue("id"); id != "" {
			attrs = append(attrs, "campaign", id)
		}
		return attrs
	}
	handle := func(method, route string, h http.HandlerFunc) {
		var wrapped http.Handler = h
		if s.cfg.Registry != nil || s.cfg.Log != nil {
			wrapped = obs.InstrumentHandlerLog(s.cfg.Registry, "gemstone_serve", route,
				wrapped, s.cfg.Log, correlate)
		}
		mux.Handle(method+" "+route, wrapped)
	}
	handle("POST", "/v1/campaigns", s.handleSubmit)
	handle("GET", "/v1/campaigns", s.handleList)
	handle("GET", "/v1/campaigns/{id}", s.handleStatus)
	handle("DELETE", "/v1/campaigns/{id}", s.handleDelete)
	handle("GET", "/v1/campaigns/{id}/events", s.handleEvents)
	handle("GET", "/v1/campaigns/{id}/validation", s.handleValidation)
	handle("GET", "/v1/campaigns/{id}/clusters", s.handleClusters)
	handle("GET", "/v1/campaigns/{id}/power", s.handlePower)
	handle("GET", "/v1/campaigns/{id}/archive/{set}", s.handleArchive)
	handle("GET", "/v1/campaigns/{id}/trace", s.handleTrace)
	handle("GET", "/v1/statusz", s.handleStatusz)
	handle("GET", "/readyz", s.handleReady)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.Registry != nil {
		mux.Handle("GET /metrics", s.cfg.Registry.Handler())
	}
	return mux
}

// tenantLabel is the tenant for logging and metric labels: the header
// when it is well-formed, DefaultTenant when absent, "invalid" when
// malformed — so an abusive header can never mint unbounded label
// values.
func tenantLabel(r *http.Request) string {
	t := r.Header.Get(TenantHeader)
	switch {
	case t == "":
		return DefaultTenant
	case tenantRE.MatchString(t):
		return t
	default:
		return "invalid"
	}
}

// apiError is the uniform error body.
type apiError struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, reason, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...), Reason: reason})
}

// tenant extracts and validates the request tenant; ok=false means the
// response has been written.
func (s *Server) tenant(w http.ResponseWriter, r *http.Request) (string, bool) {
	t := r.Header.Get(TenantHeader)
	if t == "" {
		return DefaultTenant, true
	}
	if !tenantRE.MatchString(t) {
		writeError(w, http.StatusBadRequest, "bad-tenant",
			"tenant must match %s", tenantRE.String())
		return "", false
	}
	return t, true
}

// lookup resolves a campaign for the requesting tenant. A campaign
// owned by another tenant is indistinguishable from a missing one —
// 404, never 403 — so the ID space leaks nothing across tenants.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request, tenant string) (*Campaign, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil || c.Tenant != tenant {
		writeError(w, http.StatusNotFound, "", "no campaign %q", id)
		return nil, false
	}
	return c, true
}

// statusBody is the campaign resource representation.
type statusBody struct {
	ID      string        `json:"id"`
	Tenant  string        `json:"tenant"`
	State   State         `json:"state"`
	Created time.Time     `json:"created"`
	Spec    *CampaignSpec `json:"spec"`
	Error   string        `json:"error,omitempty"`
}

func campaignStatus(c *Campaign) statusBody {
	b := statusBody{
		ID: c.ID, Tenant: c.Tenant, State: c.State(),
		Created: c.Created, Spec: c.Spec,
	}
	if err := c.Err(); err != nil {
		b.Error = err.Error()
	}
	return b
}

// handleSubmit is POST /v1/campaigns: decode, admit, start.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.tenant(w, r)
	if !ok {
		return
	}
	spec, err := ParseCampaignSpec(r.Body)
	if err != nil {
		switch {
		case errors.Is(err, ErrMalformed):
			writeError(w, http.StatusBadRequest, "malformed", "%v", err)
		default:
			writeError(w, http.StatusUnprocessableEntity, "invalid", "%v", err)
		}
		return
	}

	id := fmt.Sprintf("c-%06d", s.seq.Add(1))
	c := newCampaign(id, tenant, spec)
	if s.cfg.TraceCampaigns {
		c.tracer = obs.NewTracer()
	}

	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "closed", "server is shutting down")
		return
	case s.cfg.MaxCampaigns > 0 && s.active >= s.cfg.MaxCampaigns:
		s.mu.Unlock()
		s.rejected(tenant, "capacity")
		writeError(w, http.StatusTooManyRequests, "capacity",
			"%d campaigns in flight (limit %d)", s.cfg.MaxCampaigns, s.cfg.MaxCampaigns)
		return
	case s.cfg.TenantQuota > 0 && s.perTenant[tenant] >= s.cfg.TenantQuota:
		s.mu.Unlock()
		s.rejected(tenant, "tenant-quota")
		writeError(w, http.StatusTooManyRequests, "tenant-quota",
			"tenant %q has %d campaigns in flight (quota %d)", tenant, s.cfg.TenantQuota, s.cfg.TenantQuota)
		return
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.active++
	s.perTenant[tenant]++
	// The waitgroup add happens under mu, so Close (which sets closed
	// under the same lock before waiting) can never miss a campaign
	// admitted concurrently.
	s.wg.Add(1)
	s.mu.Unlock()
	if s.mActive != nil {
		s.mActive.Add(1, tenant)
	}
	if s.mQueue != nil {
		s.mQueue.Add(1, tenant)
	}

	s.emit(c, Event{Type: "submitted"})
	go s.runCampaign(c)

	s.log().Info("campaign accepted", "campaign", id, "tenant", tenant,
		"cluster", spec.Cluster, "workloads", len(spec.Workloads), "freqs", len(spec.FreqsMHz))
	w.Header().Set("Location", "/v1/campaigns/"+id)
	writeJSON(w, http.StatusAccepted, campaignStatus(c))
}

func (s *Server) rejected(tenant, reason string) {
	if s.mRejected != nil {
		s.mRejected.Inc(tenant, reason)
	}
}

// handleList is GET /v1/campaigns: the tenant's campaigns, submission
// order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.tenant(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	var out []statusBody
	for _, id := range s.order {
		if c := s.campaigns[id]; c != nil && c.Tenant == tenant {
			out = append(out, campaignStatus(c))
		}
	}
	s.mu.Unlock()
	if out == nil {
		out = []statusBody{}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus is GET /v1/campaigns/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.tenant(w, r)
	if !ok {
		return
	}
	c, ok := s.lookup(w, r, tenant)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, campaignStatus(c))
}

// handleDelete is DELETE /v1/campaigns/{id}: release a terminal
// campaign's results and event history ahead of the retention cap.
// Running campaigns 409 — cancellation is not part of the surface, so
// an admission slot can never be freed by deleting its campaign.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.tenant(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	if c == nil || c.Tenant != tenant {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "", "no campaign %q", id)
		return
	}
	if !c.State().Terminal() {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "not-done",
			"campaign is %s; only terminal campaigns can be deleted", c.State())
		return
	}
	delete(s.campaigns, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	s.log().Info("campaign deleted", "campaign", id, "tenant", tenant)
	w.WriteHeader(http.StatusNoContent)
}

// handleEvents is GET /v1/campaigns/{id}/events: the SSE stream. The
// full event history replays from the start, then frames stream live
// until the campaign reaches a terminal state, whose frame ("done" or
// "error") is always the last thing written.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.tenant(w, r)
	if !ok {
		return
	}
	c, ok := s.lookup(w, r, tenant)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "", "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	cursor := 0
	for {
		tail, notify, state := c.snapshot(cursor)
		for _, e := range tail {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", e.Type, e.Seq, data); err != nil {
				return
			}
			cursor++
			if e.Type == "done" || e.Type == "error" {
				// The terminal frame is always the stream's last write:
				// close immediately so exactly one is ever delivered.
				flusher.Flush()
				return
			}
		}
		flusher.Flush()
		// Backstop: complete/failWith append the terminal frame and set
		// the terminal state under one campaign mutex hold, so a terminal
		// state with nothing left to drain means the terminal frame was
		// already written above — never that it is still in flight.
		if state.Terminal() && len(tail) == 0 {
			return
		}
		if len(tail) > 0 {
			continue // drain before blocking: state may already be terminal
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			// Server shutdown: the campaign's error frame (appended by
			// runCampaign before it exits) arrives via notify; give it a
			// bounded grace period, then cut the stream.
			select {
			case <-notify:
			case <-time.After(2 * time.Second):
				return
			}
		}
	}
}

// needDone gates the analysis endpoints: 409 until the campaign has
// completed successfully.
func (s *Server) needDone(w http.ResponseWriter, c *Campaign) (*core.RunSet, *core.RunSet, *core.ValidationSummary, bool) {
	hwSet, simSet, vs, ok := c.results()
	if !ok {
		st := c.State()
		if st == StateFailed {
			writeError(w, http.StatusConflict, "failed", "campaign failed: %v", c.Err())
		} else {
			writeError(w, http.StatusConflict, "not-done", "campaign is %s", st)
		}
		return nil, nil, nil, false
	}
	return hwSet, simSet, vs, true
}

// handleValidation is GET /v1/campaigns/{id}/validation: the Section IV
// summary (cached from campaign completion).
func (s *Server) handleValidation(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.tenant(w, r)
	if !ok {
		return
	}
	c, ok := s.lookup(w, r, tenant)
	if !ok {
		return
	}
	_, _, vs, ok := s.needDone(w, c)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, vs)
}

// handleClusters is GET /v1/campaigns/{id}/clusters?k=N: the Fig. 3
// workload clustering at the spec's analysis frequency.
func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.tenant(w, r)
	if !ok {
		return
	}
	c, ok := s.lookup(w, r, tenant)
	if !ok {
		return
	}
	hwSet, simSet, _, ok := s.needDone(w, c)
	if !ok {
		return
	}
	k := min(8, len(c.Spec.Workloads))
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "", "bad k %q", q)
			return
		}
		k = n
	}
	wc, err := core.ClusterWorkloads(hwSet, simSet, c.Spec.Cluster, c.Spec.FreqMHz, k)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "", "clustering: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, wc)
}

// handlePower is GET /v1/campaigns/{id}/power: a power model trained on
// the campaign's hardware runs (Section V), in the ledger's JSON shape.
func (s *Server) handlePower(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.tenant(w, r)
	if !ok {
		return
	}
	c, ok := s.lookup(w, r, tenant)
	if !ok {
		return
	}
	hwSet, _, _, ok := s.needDone(w, c)
	if !ok {
		return
	}
	model, err := core.BuildPowerModel(hwSet, c.Spec.Cluster, power.BuildOptions{})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "", "power model: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ledger.PowerFromModel(model))
}

// handleArchive is GET /v1/campaigns/{id}/archive/{set}: the canonical
// gob archive of one run set ("hw" or "sim") — byte-for-byte what
// core.SaveRunSet of a local Collect of the same spec writes.
func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.tenant(w, r)
	if !ok {
		return
	}
	c, ok := s.lookup(w, r, tenant)
	if !ok {
		return
	}
	hwSet, simSet, _, ok := s.needDone(w, c)
	if !ok {
		return
	}
	var rs *core.RunSet
	switch r.PathValue("set") {
	case "hw":
		rs = hwSet
	case "sim":
		rs = simSet
	default:
		writeError(w, http.StatusNotFound, "", "no archive %q (want hw or sim)", r.PathValue("set"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := core.SaveRunSet(w, rs); err != nil {
		s.log().Warn("archive write failed", "campaign", c.ID, "err", err)
	}
}

// emit appends an event to the campaign and counts it. Terminal frames
// never pass through here — complete/failWith append them atomically
// with the state transition, and the caller counts them via countEvent.
func (s *Server) emit(c *Campaign, e Event) {
	c.append(e)
	s.countEvent(c.Tenant, e.Type)
}

func (s *Server) countEvent(tenant, typ string) {
	if s.mEvents != nil {
		s.mEvents.Inc(tenant, typ)
	}
}

// collector resolves the campaign execution function: the configured
// stub, the distributed coordinator, or in-process collection.
func (s *Server) collector() CollectFunc {
	if s.cfg.Collector != nil {
		return s.cfg.Collector
	}
	if coord := s.cfg.Coordinator; coord != nil {
		return coord.Collect
	}
	return core.Collect
}

// runCampaign executes one campaign: hardware reference, then the gem5
// model, then eager validation, ledger provenance and the terminal
// event. It owns the campaign's terminal state transition.
func (s *Server) runCampaign(c *Campaign) {
	defer s.wg.Done()
	start := time.Now()
	var span *obs.Span
	if s.cfg.Tracer != nil {
		span = s.cfg.Tracer.Start("serve-campaign",
			obs.String("campaign", c.ID), obs.String("tenant", c.Tenant))
		defer span.End()
	}
	// The fleet-wide campaign trace: root brackets the whole campaign;
	// the coordinator's collect spans and every worker's imported spans
	// nest under it. Nil c.tracer (tracing disabled) makes every span
	// call a no-op.
	root := c.tracer.Start("campaign",
		obs.String("campaign", c.ID), obs.String("tenant", c.Tenant))

	observer := &campaignObserver{
		emit:   func(e Event) { s.emit(c, e) },
		onDone: s.noteCollect,
	}
	outcome := "done"
	defer func() {
		// SLO phase accounting: queued + leased + simulating + collating
		// partition the campaign's lifetime. queued is admission to
		// goroutine start; collating is last collect completion to the
		// terminal transition (validation, ledger I/O, bookkeeping); the
		// observer measured the middle two.
		leased, simulating, lastDone := observer.phases()
		queued := start.Sub(c.Created)
		var collating time.Duration
		if !lastDone.IsZero() {
			collating = time.Since(lastDone)
		}
		s.noteSLO(c.Tenant, queued, leased, simulating, collating)
		s.settle(c, outcome, time.Since(start))
	}()

	c.setState(StateRunning)
	s.emit(c, Event{Type: "started"})

	cache := s.cfg.Cache
	if cache != nil {
		cache = core.NewNamespaceCache(c.Tenant, cache)
	}
	recorder := ledger.NewCampaignRecorder()
	collect := s.collector()

	baseOpt := func(name string) core.CollectOptions {
		opt := c.Spec.Options()
		opt.Name = c.ID + "/" + name
		opt.Cache = cache
		opt.Workers = s.cfg.Workers
		opt.Observer = core.MultiObserver(recorder, observer)
		opt.Tracer = c.tracer
		opt.Trace = obs.TraceContext{Campaign: c.ID, Tenant: c.Tenant}
		return opt
	}

	hwPl := hw.Platform()
	simPl := gem5.Platform(gem5.Version(c.Spec.Gem5Version))

	var hwSet, simSet *core.RunSet
	var flagged []core.RunKey
	var err error
	if c.Spec.Screening() {
		// Screen mode: core.Screen drives both platforms itself (two
		// atomic sweeps, then detailed re-simulation of the flagged
		// points), all through the same collector, so distributed and
		// cached execution work unchanged.
		var res *core.ScreenResult
		res, err = core.Screen(s.ctx, hwPl, simPl, core.ScreenOptions{
			Options: baseOpt("screen"),
			Collect: collect,
		})
		if err == nil {
			hwSet, simSet, flagged = res.HW, res.Sim, res.Flagged
			s.emit(c, Event{Type: "screened", Flagged: len(flagged)})
		}
	} else {
		hwSet, err = collect(s.ctx, hwPl, baseOpt("hw"))
		if err == nil {
			simSet, err = collect(s.ctx, simPl, baseOpt("sim"))
		}
	}
	if err == nil {
		collate := root.Child("collate")
		var vs *core.ValidationSummary
		vs, err = core.Validate(hwSet, simSet, c.Spec.Cluster)
		if err == nil {
			s.emit(c, Event{Type: "validated", MAPE: vs.MAPE})
			s.appendLedger(c, hwPl, simPl, recorder, vs, flagged)
			collate.End()
			// End the trace before the terminal transition commits:
			// /trace serves only terminal campaigns, so every span a
			// client can observe is complete.
			root.End()
			// The results, the terminal frame and the StateDone
			// transition commit atomically (after the ledger I/O), so
			// no event stream can observe a terminal campaign whose
			// "done" frame is not yet appended.
			c.complete(hwSet, simSet, vs, Event{Type: "done", MAPE: vs.MAPE})
			s.noteTerminal(c.Tenant)
			s.countEvent(c.Tenant, "done")
			s.log().Info("campaign done", "campaign", c.ID, "tenant", c.Tenant,
				"mape", vs.MAPE, "wall", time.Since(start))
			return
		}
		collate.End()
	}
	outcome = "failed"
	root.Annotate(obs.Bool("failed", true))
	root.End()
	c.failWith(err, Event{Type: "error", Error: err.Error()})
	s.noteTerminal(c.Tenant)
	s.countEvent(c.Tenant, "error")
	s.log().Warn("campaign failed", "campaign", c.ID, "tenant", c.Tenant, "err", err)
}

// noteTerminal decrements the tenant's queue-depth gauge the moment a
// campaign's terminal transition commits — not at settle, so the gauge
// tracks "work the service still owes a client", the quantity a load
// generator reconciles its own completion count against.
func (s *Server) noteTerminal(tenant string) {
	if s.mQueue != nil {
		s.mQueue.Add(-1, tenant)
	}
}

// noteCollect folds one completed collect half into the server-wide
// cache accumulators surfaced by /v1/statusz.
func (s *Server) noteCollect(st core.CollectStats) {
	s.cacheJobs.Add(int64(st.Simulated + st.CacheHits))
	s.cacheHits.Add(int64(st.CacheHits))
}

// noteSLO records one campaign's phase split into the histogram and the
// rolling statusz window.
func (s *Server) noteSLO(tenant string, queued, leased, simulating, collating time.Duration) {
	phases := [...]struct {
		name string
		d    time.Duration
	}{
		{"queued", queued}, {"leased", leased},
		{"simulating", simulating}, {"collating", collating},
	}
	for _, p := range phases {
		if s.mSLO != nil {
			s.mSLO.Observe(p.d.Seconds(), tenant, p.name)
		}
		s.slo.observe(p.name, p.d)
	}
}

// settle releases the campaign's admission slot, applies the retention
// cap and records outcome metrics.
func (s *Server) settle(c *Campaign, outcome string, wall time.Duration) {
	s.mu.Lock()
	s.active--
	s.perTenant[c.Tenant]--
	if s.perTenant[c.Tenant] == 0 {
		delete(s.perTenant, c.Tenant)
	}
	evicted := s.evictLocked()
	s.mu.Unlock()
	if len(evicted) > 0 {
		if s.mEvicted != nil {
			s.mEvicted.Add(float64(len(evicted)))
		}
		s.log().Info("evicted terminal campaigns beyond retention cap",
			"evicted", evicted, "cap", s.cfg.MaxRetained)
	}
	if s.mActive != nil {
		s.mActive.Add(-1, c.Tenant)
	}
	if s.mCampaigns != nil {
		s.mCampaigns.Inc(c.Tenant, outcome)
	}
	if s.mSeconds != nil {
		s.mSeconds.Observe(wall.Seconds(), c.Tenant, outcome)
	}
}

// evictLocked enforces cfg.MaxRetained: while more terminal campaigns
// are retained than the cap allows, the oldest are dropped (in-flight
// campaigns are never touched — admission control bounds those). The
// caller holds s.mu; the returned IDs are for logging.
func (s *Server) evictLocked() []string {
	max := s.cfg.MaxRetained
	if max < 0 {
		return nil
	}
	terminal := 0
	for _, id := range s.order {
		if c := s.campaigns[id]; c != nil && c.State().Terminal() {
			terminal++
		}
	}
	if terminal <= max {
		return nil
	}
	var evicted []string
	kept := s.order[:0]
	for _, id := range s.order {
		c := s.campaigns[id]
		if terminal > max && c != nil && c.State().Terminal() {
			delete(s.campaigns, id)
			terminal--
			evicted = append(evicted, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	return evicted
}

// appendLedger writes the campaign's provenance entry, attributed to
// tenant and campaign ID. It runs before the campaign's terminal
// transition (the "done" frame means the ledger write has already been
// attempted), and its failures are logged, never fatal.
func (s *Server) appendLedger(c *Campaign, hwPl, simPl *platform.Platform,
	recorder *ledger.CampaignRecorder, vs *core.ValidationSummary, flagged []core.RunKey) {
	if s.cfg.Ledger == nil {
		return
	}
	names, hash, seed := ledger.WorkloadSetDigest(c.Spec.Profiles())
	var fidelity string
	if fid := c.Spec.ResolvedFidelity(); fid != platform.FidelityDetailed {
		fidelity = fid.String()
	}
	var screenFlagged []string
	for _, k := range flagged {
		screenFlagged = append(screenFlagged, fmt.Sprintf("%s/%s/%d", k.Workload, k.Cluster, k.FreqMHz))
	}
	man := ledger.RunManifest{
		Schema:           ledger.SchemaVersion,
		CreatedUnix:      time.Now().Unix(),
		Build:            obs.ReadBuildInfo(),
		HWPlatform:       hwPl.Name(),
		ModelPlatform:    simPl.Name(),
		HWFingerprint:    hwPl.Config().Fingerprint(),
		ModelFingerprint: simPl.Config().Fingerprint(),
		Gem5Version:      c.Spec.Gem5Version,
		Tenant:           c.Tenant,
		CampaignID:       c.ID,
		Fidelity:         fidelity,
		Mode:             c.Spec.Mode,
		ScreenFlagged:    screenFlagged,
		Cluster:          c.Spec.Cluster,
		FreqMHz:          c.Spec.FreqMHz,
		Workloads:        names,
		WorkloadSetHash:  hash,
		Seed:             seed,
		DVFSGrid:         map[string][]int{c.Spec.Cluster: append([]int(nil), c.Spec.FreqsMHz...)},
		Campaigns:        recorder.Campaigns(),
	}
	entry := ledger.Entry{
		Manifest: man,
		Results:  ledger.ResultsFromValidation(vs, c.Spec.FreqMHz, nil),
	}
	if err := s.cfg.Ledger.Append(entry); err != nil {
		s.log().Warn("ledger append failed", "campaign", c.ID, "err", err)
	}
}
