package serve

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"

	"gemstone/internal/dist"
)

// sloWindow is the number of recent observations each phase's rolling
// percentile window retains. Campaigns are heavyweight (seconds to
// hours), so a few hundred covers days of typical service load while
// keeping the statusz percentile sort trivial.
const sloWindow = 256

// sloTracker keeps a rolling window of per-phase latencies for the
// /v1/statusz snapshot. The Prometheus histogram carries the full
// per-tenant distribution; this tracker answers the operator's "what
// are my percentiles right now" without a metrics pipeline.
type sloTracker struct {
	mu     sync.Mutex
	phases map[string]*sloRing
}

type sloRing struct {
	count int // lifetime observations
	max   time.Duration
	buf   []time.Duration // rolling window, insertion order
	next  int
}

func newSLOTracker() *sloTracker {
	return &sloTracker{phases: make(map[string]*sloRing)}
}

func (t *sloTracker) observe(phase string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.phases[phase]
	if r == nil {
		r = &sloRing{}
		t.phases[phase] = r
	}
	r.count++
	if d > r.max {
		r.max = d
	}
	if len(r.buf) < sloWindow {
		r.buf = append(r.buf, d)
	} else {
		r.buf[r.next] = d
		r.next = (r.next + 1) % sloWindow
	}
}

// sloPhaseSummary is one phase's rolling-window latency summary.
type sloPhaseSummary struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// summary snapshots every phase. Percentiles are over the rolling
// window; Count and Max are lifetime.
func (t *sloTracker) summary() map[string]sloPhaseSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]sloPhaseSummary, len(t.phases))
	for name, r := range t.phases {
		window := append([]time.Duration(nil), r.buf...)
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		pct := func(p float64) float64 {
			if len(window) == 0 {
				return 0
			}
			i := int(p * float64(len(window)-1))
			return float64(window[i]) / float64(time.Millisecond)
		}
		out[name] = sloPhaseSummary{
			Count: r.count,
			P50Ms: pct(0.50),
			P95Ms: pct(0.95),
			P99Ms: pct(0.99),
			MaxMs: float64(r.max) / float64(time.Millisecond),
		}
	}
	return out
}

// handleTrace is GET /v1/campaigns/{id}/trace: the campaign's merged
// fleet-wide Chrome trace (chrome://tracing / Perfetto JSON). 409 while
// the campaign is still running — the trace is complete only once the
// campaign is terminal — and 404 when the server runs without
// TraceCampaigns.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.tenant(w, r)
	if !ok {
		return
	}
	c, ok := s.lookup(w, r, tenant)
	if !ok {
		return
	}
	if c.tracer == nil {
		writeError(w, http.StatusNotFound, "untraced",
			"campaign tracing is disabled (start the server with tracing enabled)")
		return
	}
	if !c.State().Terminal() {
		writeError(w, http.StatusConflict, "not-done",
			"campaign is %s; the trace is available once it is terminal", c.State())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := c.tracer.WriteChromeTrace(w); err != nil {
		s.log().Warn("trace write failed", "campaign", c.ID, "err", err)
	}
}

// statuszBody is the /v1/statusz health and SLO snapshot.
type statuszBody struct {
	// Status is "ok", or "degraded" when a coordinator is configured and
	// no worker was alive after the last probe.
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Campaigns     struct {
		Active      int            `json:"active"`
		Retained    int            `json:"retained_terminal"`
		MaxRetained int            `json:"max_retained"`
		PerTenant   map[string]int `json:"per_tenant,omitempty"`
		// QueueDepth counts admitted-but-not-terminal campaigns per
		// tenant (the gemstone_serve_queue_depth gauge): the work the
		// service still owes. A reconciliation report attributes client
		// latency to queueing vs. simulation with it.
		QueueDepth map[string]int `json:"queue_depth,omitempty"`
	} `json:"campaigns"`
	Workers []dist.WorkerStats `json:"workers,omitempty"`
	Cache   struct {
		Jobs    int64   `json:"jobs"`
		Hits    int64   `json:"hits"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	SLO map[string]sloPhaseSummary `json:"slo"`
}

// handleStatusz is GET /v1/statusz: one JSON page answering "is the
// service healthy and is it meeting its latency objectives". It reads
// only cached state (the coordinator's last-probe worker stats, the
// rolling SLO window) so scraping it is always cheap; /readyz is the
// endpoint that actively probes the fleet.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var body statuszBody
	body.Status = "ok"
	body.UptimeSeconds = time.Since(s.started).Seconds()

	s.mu.Lock()
	body.Campaigns.Active = s.active
	retained := 0
	queue := map[string]int{}
	for _, id := range s.order {
		c := s.campaigns[id]
		if c == nil {
			continue
		}
		if c.State().Terminal() {
			retained++
		} else {
			queue[c.Tenant]++
		}
	}
	body.Campaigns.Retained = retained
	if len(queue) > 0 {
		body.Campaigns.QueueDepth = queue
	}
	body.Campaigns.MaxRetained = s.cfg.MaxRetained
	if len(s.perTenant) > 0 {
		body.Campaigns.PerTenant = make(map[string]int, len(s.perTenant))
		for t, n := range s.perTenant {
			body.Campaigns.PerTenant[t] = n
		}
	}
	s.mu.Unlock()

	if coord := s.cfg.Coordinator; coord != nil {
		body.Workers = coord.WorkerStats()
		alive := 0
		for _, ws := range body.Workers {
			if ws.Alive {
				alive++
			}
		}
		if len(body.Workers) > 0 && alive == 0 {
			body.Status = "degraded"
		}
	}

	body.Cache.Jobs = s.cacheJobs.Load()
	body.Cache.Hits = s.cacheHits.Load()
	if body.Cache.Jobs > 0 {
		body.Cache.HitRate = float64(body.Cache.Hits) / float64(body.Cache.Jobs)
	}
	body.SLO = s.slo.summary()
	writeJSON(w, http.StatusOK, body)
}

// handleReady is GET /readyz, the readiness variant of /healthz: it
// actively probes the worker fleet and reports "degraded" — with a 200,
// because a degraded service still serves campaigns by falling back to
// local execution — when no worker answers. Orchestrators that want to
// gate on full capacity can match on the body's status field.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ok"}
	if coord := s.cfg.Coordinator; coord != nil {
		ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
		live := coord.LiveWorkers(ctx)
		cancel()
		body["mode"] = "distributed"
		body["workers_live"] = live
		if live == 0 {
			body["status"] = "degraded"
			body["reason"] = "no live workers; campaigns degrade to local execution"
		}
	} else {
		body["mode"] = "local"
	}
	writeJSON(w, http.StatusOK, body)
}
