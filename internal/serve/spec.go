// Package serve is the campaign service: a long-running daemon that
// promotes the one-shot CLI campaign flow into a multi-tenant HTTP/JSON
// API. A client POSTs a campaign spec, follows the run over an SSE event
// stream, and reads the Session analysis surface (validation, workload
// clustering, power model) plus the canonical gob archives back off the
// same campaign resource. Execution is byte-compatible with the CLI: the
// service drives the identical collector (local or distributed), so an
// archive downloaded from the service is byte-for-byte the archive a
// local Collect of the same spec would produce.
//
// Tenancy is namespace isolation, not authentication: the X-Gemstone-Tenant
// header scopes campaign visibility, run-cache keys and ledger provenance.
// Admission control bounds the damage any one tenant can do to the shared
// fleet (max in-flight campaigns, per-tenant quotas, 429 on overflow).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"gemstone/internal/core"
	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/platform"
	"gemstone/internal/workload"
)

// Spec decode errors. The HTTP layer maps ErrMalformed to 400 (the bytes
// are not a spec) and ErrInvalid to 422 (the spec parses but names
// something the service cannot run).
var (
	ErrMalformed = errors.New("malformed campaign spec")
	ErrInvalid   = errors.New("invalid campaign spec")
)

// MaxSpecBytes bounds the request body a spec may occupy. Specs are a
// few hundred bytes of JSON; anything near the limit is hostile.
const MaxSpecBytes = 1 << 20

// CampaignSpec is the request body of POST /v1/campaigns: which gem5
// model to validate, on which cluster, at which DVFS points, over which
// workloads. Every field is optional — the zero spec is the paper's
// default validation campaign (model V1, A15 cluster, Experiment-1
// frequencies, the full validation workload set).
type CampaignSpec struct {
	// Gem5Version selects the simulated model version (1 or 2, Section
	// VII); 0 means 1.
	Gem5Version int `json:"gem5_version,omitempty"`
	// Cluster is the analysed cluster ("a15" or "a7"); empty means a15.
	Cluster string `json:"cluster,omitempty"`
	// FreqMHz is the analysis operating point for the per-workload
	// analyses (clustering, power); 0 means 1000. It must be one of the
	// swept frequencies.
	FreqMHz int `json:"freq_mhz,omitempty"`
	// FreqsMHz lists the swept DVFS points; empty means the paper's
	// Experiment-1 frequencies for the cluster. Each must exist in the
	// cluster's DVFS table.
	FreqsMHz []int `json:"freqs_mhz,omitempty"`
	// Workloads names the workload profiles to run; empty means the
	// validation set. Names must exist in the suite catalogue.
	Workloads []string `json:"workloads,omitempty"`
	// MaxWorkloads truncates the workload list (after defaulting) to the
	// first n entries — the knob that makes smoke campaigns cheap without
	// enumerating names. 0 means no truncation.
	MaxWorkloads int `json:"max_workloads,omitempty"`
	// Fidelity selects the simulation tier ("detailed" or "atomic");
	// empty means detailed. Atomic campaigns predict from short anchor
	// runs — an order of magnitude cheaper, with a documented error
	// bound — and are cached and job-addressed separately from detailed
	// runs. Incompatible with screen mode, which sets the tier per phase.
	Fidelity string `json:"fidelity,omitempty"`
	// Mode selects the campaign shape: "" or "full" runs the whole grid
	// at one tier; "screen" sweeps the grid atomically on both platforms,
	// flags the largest-error points, and re-simulates only those at the
	// detailed tier (mixed-fidelity results, per-run provenance in the
	// archives and ledger entry).
	Mode string `json:"mode,omitempty"`

	// profiles is the resolved workload list, populated by Validate.
	profiles []workload.Profile
	// fidelity is the parsed Fidelity, populated by Validate.
	fidelity platform.Fidelity
}

// Campaign modes.
const (
	ModeFull   = "full"
	ModeScreen = "screen"
)

// ParseCampaignSpec decodes and validates one spec from r. Unknown
// fields, trailing data, oversized bodies and type mismatches are
// ErrMalformed; a well-formed spec naming an unknown model, cluster,
// workload or frequency is ErrInvalid.
func ParseCampaignSpec(r io.Reader) (*CampaignSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxSpecBytes+1))
	dec.DisallowUnknownFields()
	var s CampaignSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	// A spec is exactly one JSON value: trailing bytes mean the client
	// and server disagree about the protocol, so reject rather than
	// silently ignore.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after spec", ErrMalformed)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate applies defaults and checks the spec against the catalogue
// and the platform DVFS tables, resolving workload names to profiles.
// All failures wrap ErrInvalid.
func (s *CampaignSpec) Validate() error {
	fid, err := platform.ParseFidelity(s.Fidelity)
	if err != nil {
		return fmt.Errorf("%w: unknown fidelity %q (want \"detailed\" or \"atomic\")", ErrInvalid, s.Fidelity)
	}
	s.fidelity = fid
	switch s.Mode {
	case "", ModeFull:
	case ModeScreen:
		if s.Fidelity != "" {
			return fmt.Errorf("%w: fidelity cannot be set in screen mode (the screen sets the tier per phase)", ErrInvalid)
		}
	default:
		return fmt.Errorf("%w: unknown mode %q (want \"full\" or \"screen\")", ErrInvalid, s.Mode)
	}
	if s.Gem5Version == 0 {
		s.Gem5Version = int(gem5.V1)
	}
	switch gem5.Version(s.Gem5Version) {
	case gem5.V1, gem5.V2:
	default:
		return fmt.Errorf("%w: unknown gem5 version %d", ErrInvalid, s.Gem5Version)
	}
	if s.Cluster == "" {
		s.Cluster = hw.ClusterA15
	}
	cc, err := hw.Platform().Cluster(s.Cluster)
	if err != nil {
		return fmt.Errorf("%w: unknown cluster %q", ErrInvalid, s.Cluster)
	}
	if len(s.FreqsMHz) == 0 {
		s.FreqsMHz = hw.ExperimentFrequencies(s.Cluster)
	}
	table := map[int]bool{}
	for _, f := range cc.Frequencies() {
		table[f] = true
	}
	seen := map[int]bool{}
	for _, f := range s.FreqsMHz {
		if !table[f] {
			return fmt.Errorf("%w: frequency %d MHz not in %s DVFS table", ErrInvalid, f, s.Cluster)
		}
		if seen[f] {
			return fmt.Errorf("%w: duplicate frequency %d MHz", ErrInvalid, f)
		}
		seen[f] = true
	}
	if s.FreqMHz == 0 {
		s.FreqMHz = 1000
	}
	if !seen[s.FreqMHz] {
		return fmt.Errorf("%w: analysis frequency %d MHz not among swept frequencies", ErrInvalid, s.FreqMHz)
	}
	if s.MaxWorkloads < 0 {
		return fmt.Errorf("%w: negative max_workloads", ErrInvalid)
	}
	if len(s.Workloads) == 0 {
		for _, p := range workload.Validation() {
			s.Workloads = append(s.Workloads, p.Name)
		}
	}
	if s.MaxWorkloads > 0 && len(s.Workloads) > s.MaxWorkloads {
		s.Workloads = s.Workloads[:s.MaxWorkloads]
	}
	s.profiles = s.profiles[:0]
	dup := map[string]bool{}
	for _, name := range s.Workloads {
		if dup[name] {
			return fmt.Errorf("%w: duplicate workload %q", ErrInvalid, name)
		}
		dup[name] = true
		p, err := workload.ByName(name)
		if err != nil {
			return fmt.Errorf("%w: unknown workload %q", ErrInvalid, name)
		}
		s.profiles = append(s.profiles, p)
	}
	return nil
}

// Profiles returns the resolved workload profiles (Validate must have
// succeeded).
func (s *CampaignSpec) Profiles() []workload.Profile { return s.profiles }

// ResolvedFidelity returns the parsed simulation tier (Validate must
// have succeeded).
func (s *CampaignSpec) ResolvedFidelity() platform.Fidelity { return s.fidelity }

// Screening reports whether the spec requests a screen-then-resimulate
// campaign.
func (s *CampaignSpec) Screening() bool { return s.Mode == ModeScreen }

// Options builds the collector options for one platform run of this
// spec. Each call returns a fresh value so the two campaign halves
// (hardware reference, model) never share mutable state.
func (s *CampaignSpec) Options() core.CollectOptions {
	return core.CollectOptions{
		Workloads: append([]workload.Profile(nil), s.profiles...),
		Clusters:  []string{s.Cluster},
		Freqs:     map[string][]int{s.Cluster: append([]int(nil), s.FreqsMHz...)},
		Fidelity:  s.fidelity,
	}
}
