package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"gemstone/internal/core"
	"gemstone/internal/ledger"
	"gemstone/internal/platform"
)

// loadArchive fetches and decodes one campaign run-set archive.
func loadArchive(t *testing.T, base, tenant, id, set string) *core.RunSet {
	t.Helper()
	status, body := fetch(t, base, tenant, "/v1/campaigns/"+id+"/archive/"+set)
	if status != http.StatusOK {
		t.Fatalf("%s archive status %d", set, status)
	}
	rs, err := core.LoadRunSet(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestAtomicCampaign runs a full atomic-tier campaign through the
// service and checks tier provenance end to end: every archived run is
// atomic, and the ledger entry records the tier.
func TestAtomicCampaign(t *testing.T) {
	n := campaignSize(t)
	ledgerPath := filepath.Join(t.TempDir(), "ledger.jsonl")
	svc := New(Config{Ledger: ledger.Open(ledgerPath)})
	defer svc.Close()
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	spec := testSpec(n)
	spec.Fidelity = "atomic"
	id := submit(t, api.URL, "t", spec)
	events := followSSE(t, api.URL, "t", id)
	if last := events[len(events)-1]; last.Type != "done" {
		t.Fatalf("stream ended with %q (error=%q), want done", last.Type, last.Error)
	}

	for _, set := range []string{"hw", "sim"} {
		rs := loadArchive(t, api.URL, "t", id, set)
		for k, m := range rs.Runs {
			if m.Fidelity != platform.FidelityAtomic {
				t.Fatalf("%s run %v has fidelity %s, want atomic", set, k, m.Fidelity)
			}
		}
	}

	scan, err := ledger.Open(ledgerPath).Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Entries) != 1 {
		t.Fatalf("ledger has %d entries, want 1", len(scan.Entries))
	}
	if got := scan.Entries[0].Manifest.Fidelity; got != "atomic" {
		t.Fatalf("ledger fidelity %q, want atomic", got)
	}
}

// TestCampaignCacheFidelityIsolation pins the tenant-namespaced cache
// separation between tiers: a detailed campaign followed by an atomic
// campaign of the identical spec, same tenant, same shared cache — the
// atomic campaign must never be served the detailed campaign's cached
// measurements (or vice versa).
func TestCampaignCacheFidelityIsolation(t *testing.T) {
	n := campaignSize(t)
	svc := New(Config{Cache: core.NewMemoryCache(0)})
	defer svc.Close()
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	detSpec := testSpec(n)
	detID := submit(t, api.URL, "t", detSpec)
	if last := followSSE(t, api.URL, "t", detID); last[len(last)-1].Type != "done" {
		t.Fatalf("detailed campaign failed: %+v", last[len(last)-1])
	}

	atomSpec := testSpec(n)
	atomSpec.Fidelity = "atomic"
	atomID := submit(t, api.URL, "t", atomSpec)
	if last := followSSE(t, api.URL, "t", atomID); last[len(last)-1].Type != "done" {
		t.Fatalf("atomic campaign failed: %+v", last[len(last)-1])
	}

	det := loadArchive(t, api.URL, "t", detID, "sim")
	atom := loadArchive(t, api.URL, "t", atomID, "sim")
	if len(det.Runs) != len(atom.Runs) || len(det.Runs) == 0 {
		t.Fatalf("run counts differ: %d vs %d", len(det.Runs), len(atom.Runs))
	}
	for k, dm := range det.Runs {
		am, ok := atom.Runs[k]
		if !ok {
			t.Fatalf("atomic campaign missing run %v", k)
		}
		if dm.Fidelity != platform.FidelityDetailed {
			t.Fatalf("detailed run %v has fidelity %s", k, dm.Fidelity)
		}
		if am.Fidelity != platform.FidelityAtomic {
			t.Fatalf("atomic run %v has fidelity %s — cache served a detailed entry across tiers", k, am.Fidelity)
		}
	}
}

// TestScreenModeCampaign runs a screen-then-resimulate campaign through
// the service: the stream carries a "screened" frame, the flagged points
// hold detailed measurements in the merged archives, and the ledger
// entry records the mode and the flagged points.
func TestScreenModeCampaign(t *testing.T) {
	n := campaignSize(t)
	ledgerPath := filepath.Join(t.TempDir(), "ledger.jsonl")
	svc := New(Config{Ledger: ledger.Open(ledgerPath)})
	defer svc.Close()
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	spec := testSpec(n)
	spec.Mode = ModeScreen
	id := submit(t, api.URL, "t", spec)
	events := followSSE(t, api.URL, "t", id)
	if last := events[len(events)-1]; last.Type != "done" {
		t.Fatalf("stream ended with %q (error=%q), want done", last.Type, last.Error)
	}
	screened := -1
	for _, e := range events {
		if e.Type == "screened" {
			screened = e.Flagged
		}
	}
	if screened < 0 {
		t.Fatal("no screened frame on the event stream")
	}

	scan, err := ledger.Open(ledgerPath).Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Entries) != 1 {
		t.Fatalf("ledger has %d entries, want 1", len(scan.Entries))
	}
	man := scan.Entries[0].Manifest
	if man.Mode != ModeScreen {
		t.Fatalf("ledger mode %q, want screen", man.Mode)
	}
	if len(man.ScreenFlagged) != screened {
		t.Fatalf("ledger flags %d points, screened frame said %d", len(man.ScreenFlagged), screened)
	}

	// The smoke grid is smaller than the screen's default top-K, so every
	// point is flagged and re-simulated: the merged archives must be all
	// detailed, and byte-identical to a plain detailed campaign.
	goldenHW, goldenSim := localGolden(t, testSpec(n))
	for _, tc := range []struct {
		set    string
		golden *core.RunSet
	}{{"hw", goldenHW}, {"sim", goldenSim}} {
		rs := loadArchive(t, api.URL, "t", id, tc.set)
		if screened != len(rs.Runs) {
			t.Fatalf("screened %d points, %s archive has %d runs", screened, tc.set, len(rs.Runs))
		}
		for k, m := range rs.Runs {
			if m.Fidelity != platform.FidelityDetailed {
				t.Fatalf("%s flagged run %v still %s after re-simulation", tc.set, k, m.Fidelity)
			}
		}
		if got, want := archiveBytes(t, rs), archiveBytes(t, tc.golden); !bytes.Equal(got, want) {
			t.Fatalf("%s screen archive differs from detailed golden (%d vs %d bytes)", tc.set, len(got), len(want))
		}
	}
}
