package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/dist"
	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/ledger"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/workload"
)

// testSpec is the small real campaign every service test runs: n
// validation workloads on the big cluster at one frequency, model V1.
func testSpec(n int) *CampaignSpec {
	var names []string
	for _, p := range workload.Validation()[:n] {
		names = append(names, p.Name)
	}
	return &CampaignSpec{
		Gem5Version: 1,
		Cluster:     hw.ClusterA15,
		FreqMHz:     1000,
		FreqsMHz:    []int{1000},
		Workloads:   names,
	}
}

func campaignSize(t *testing.T) int {
	t.Helper()
	if testing.Short() {
		return 2
	}
	return 3
}

// startWorker serves a fresh gemstoned worker over httptest.
func startWorker(t *testing.T, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	h := http.Handler(dist.NewWorker(dist.WorkerConfig{MaxParallel: 2}).Handler())
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// archiveBytes renders the canonical RunSet archive.
func archiveBytes(t *testing.T, rs *core.RunSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.SaveRunSet(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// localGolden collects the spec locally on both platforms — the byte
// equivalence reference for everything the service serves.
func localGolden(t *testing.T, spec *CampaignSpec) (hwSet, simSet *core.RunSet) {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	hwSet, err := core.Collect(context.Background(), hw.Platform(), spec.Options())
	if err != nil {
		t.Fatal(err)
	}
	simSet, err = core.Collect(context.Background(), gem5.Platform(gem5.V1), spec.Options())
	if err != nil {
		t.Fatal(err)
	}
	return hwSet, simSet
}

// client issues one API request with the tenant header.
func doReq(t *testing.T, method, url, tenant string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// submit POSTs a spec and returns the assigned campaign ID.
func submit(t *testing.T, base, tenant string, spec *CampaignSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp := doReq(t, http.MethodPost, base+"/v1/campaigns", tenant, bytes.NewReader(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("submit: empty campaign id")
	}
	return st.ID
}

// followSSE reads the campaign's event stream to completion and returns
// the decoded events. The server closes the stream after the terminal
// frame, so reading to EOF is the termination contract.
func followSSE(t *testing.T, base, tenant, id string) []Event {
	t.Helper()
	resp := doReq(t, http.MethodGet, base+"/v1/campaigns/"+id+"/events", tenant, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var e Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatalf("events: bad frame %q: %v", data, err)
			}
			events = append(events, e)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("events: stream error: %v", err)
	}
	return events
}

// fetch GETs a campaign sub-resource and returns status + body.
func fetch(t *testing.T, base, tenant, path string) (int, []byte) {
	t.Helper()
	resp := doReq(t, http.MethodGet, base+path, tenant, nil)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServiceEndToEnd is the acceptance golden test: two concurrent
// campaigns from distinct tenants run through `gemstone serve` over a
// two-worker fleet with one worker killed mid-campaign, and each
// produces gob archives byte-identical to a local Collect of the same
// spec. It runs in -short mode (smaller campaign), so CI's short serve
// step exercises the full path.
func TestServiceEndToEnd(t *testing.T) {
	n := campaignSize(t)
	spec := testSpec(n)
	goldenHW, goldenSim := localGolden(t, spec)

	healthy := startWorker(t, nil)
	// The doomed worker dies after one accepted job: every later request
	// aborts like a crashed process, mid-campaign.
	doomed := startWorker(t, func(h http.Handler) http.Handler {
		return &dist.KillSwitch{Handler: h, After: 1}
	})
	reg := obs.NewRegistry()
	coord := dist.NewCoordinator(dist.CoordinatorConfig{
		Workers:  []string{healthy.URL, doomed.URL},
		Registry: reg,
	})
	ledgerPath := filepath.Join(t.TempDir(), "ledger.jsonl")
	svc := New(Config{
		Coordinator:    coord,
		Cache:          core.NewMemoryCache(0),
		Ledger:         ledger.Open(ledgerPath),
		Registry:       reg,
		TraceCampaigns: true,
		Log:            slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	defer svc.Close()
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	tenants := []string{"alice", "bob"}
	ids := make([]string, len(tenants))
	for i, tn := range tenants {
		ids[i] = submit(t, api.URL, tn, testSpec(n))
	}

	// Follow both event streams concurrently — the campaigns overlap on
	// the shared fleet.
	eventsByTenant := make([][]Event, len(tenants))
	var wg sync.WaitGroup
	for i := range tenants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eventsByTenant[i] = followSSE(t, api.URL, tenants[i], ids[i])
		}(i)
	}
	wg.Wait()

	wantHW, wantSim := archiveBytes(t, goldenHW), archiveBytes(t, goldenSim)
	for i, tn := range tenants {
		events := eventsByTenant[i]
		if len(events) == 0 {
			t.Fatalf("%s: empty event stream", tn)
		}
		last := events[len(events)-1]
		if last.Type != "done" {
			t.Fatalf("%s: stream ended with %q (error=%q), want done", tn, last.Type, last.Error)
		}
		for j, e := range events {
			if e.Seq != j+1 {
				t.Fatalf("%s: event %d has seq %d", tn, j, e.Seq)
			}
		}

		// The acceptance criterion: service archives byte-identical to
		// local Collect.
		status, gotHW := fetch(t, api.URL, tn, "/v1/campaigns/"+ids[i]+"/archive/hw")
		if status != http.StatusOK {
			t.Fatalf("%s: hw archive status %d", tn, status)
		}
		if !bytes.Equal(gotHW, wantHW) {
			t.Errorf("%s: hw archive differs from local collect (%d vs %d bytes)", tn, len(gotHW), len(wantHW))
		}
		status, gotSim := fetch(t, api.URL, tn, "/v1/campaigns/"+ids[i]+"/archive/sim")
		if status != http.StatusOK {
			t.Fatalf("%s: sim archive status %d", tn, status)
		}
		if !bytes.Equal(gotSim, wantSim) {
			t.Errorf("%s: sim archive differs from local collect (%d vs %d bytes)", tn, len(gotSim), len(wantSim))
		}

		// The analysis surface matches a local Session.
		status, body := fetch(t, api.URL, tn, "/v1/campaigns/"+ids[i]+"/validation")
		if status != http.StatusOK {
			t.Fatalf("%s: validation status %d: %s", tn, status, body)
		}
		var vs core.ValidationSummary
		if err := json.Unmarshal(body, &vs); err != nil {
			t.Fatal(err)
		}
		localVS, err := core.Validate(goldenHW, goldenSim, spec.Cluster)
		if err != nil {
			t.Fatal(err)
		}
		if vs.MAPE != localVS.MAPE || vs.MPE != localVS.MPE {
			t.Errorf("%s: served MAPE/MPE %.4f/%.4f, local %.4f/%.4f",
				tn, vs.MAPE, vs.MPE, localVS.MAPE, localVS.MPE)
		}

		status, body = fetch(t, api.URL, tn, "/v1/campaigns/"+ids[i]+"/clusters")
		if status != http.StatusOK {
			t.Fatalf("%s: clusters status %d: %s", tn, status, body)
		}
		var wc core.WorkloadClustering
		if err := json.Unmarshal(body, &wc); err != nil {
			t.Fatal(err)
		}
		if len(wc.Labels) != n {
			t.Errorf("%s: clustering labelled %d workloads, want %d", tn, len(wc.Labels), n)
		}

		// Power models need more observations than a smoke campaign
		// provides; the endpoint must answer cleanly either way.
		if status, _ = fetch(t, api.URL, tn, "/v1/campaigns/"+ids[i]+"/power"); status != http.StatusOK && status != http.StatusUnprocessableEntity {
			t.Errorf("%s: power status %d, want 200 or 422", tn, status)
		}
	}

	t.Run("tenancy", func(t *testing.T) {
		// Cross-tenant reads 404: bob cannot see alice's campaign, and
		// the response is indistinguishable from a missing ID.
		if status, _ := fetch(t, api.URL, "bob", "/v1/campaigns/"+ids[0]); status != http.StatusNotFound {
			t.Fatalf("cross-tenant status %d, want 404", status)
		}
		if status, _ := fetch(t, api.URL, "bob", "/v1/campaigns/"+ids[0]+"/archive/hw"); status != http.StatusNotFound {
			t.Fatalf("cross-tenant archive status %d, want 404", status)
		}
		// Listing is tenant-scoped.
		status, body := fetch(t, api.URL, "alice", "/v1/campaigns")
		if status != http.StatusOK {
			t.Fatalf("list status %d", status)
		}
		var list []json.RawMessage
		if err := json.Unmarshal(body, &list); err != nil {
			t.Fatal(err)
		}
		if len(list) != 1 {
			t.Fatalf("alice sees %d campaigns, want 1", len(list))
		}
	})

	t.Run("ledger provenance", func(t *testing.T) {
		scan, err := ledger.Open(ledgerPath).Scan()
		if err != nil {
			t.Fatal(err)
		}
		if len(scan.Entries) != 2 {
			t.Fatalf("ledger has %d entries, want 2", len(scan.Entries))
		}
		seen := map[string]bool{}
		for _, e := range scan.Entries {
			if e.Manifest.Tenant == "" || e.Manifest.CampaignID == "" {
				t.Fatalf("entry missing tenant/campaign provenance: %+v", e.Manifest)
			}
			seen[e.Manifest.Tenant] = true
		}
		if !seen["alice"] || !seen["bob"] {
			t.Fatalf("ledger tenants %v, want alice and bob", seen)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		snap := reg.Snapshot()
		for _, tn := range tenants {
			key := fmt.Sprintf(`gemstone_serve_campaigns_total{tenant=%q,outcome="done"}`, tn)
			if snap[key] != 1 {
				t.Errorf("%s = %v, want 1", key, snap[key])
			}
		}
		for _, tn := range tenants {
			key := fmt.Sprintf(`gemstone_serve_campaigns_active{tenant=%q}`, tn)
			if snap[key] != 0 {
				t.Errorf("%s = %v after completion", key, snap[key])
			}
		}
		if snap[`gemstone_serve_requests_total{route="/v1/campaigns",method="POST",code="202"}`] < 2 {
			t.Error("HTTP instrumentation missing POST /v1/campaigns samples")
		}
	})

	t.Run("trace", func(t *testing.T) {
		// The terminal campaign serves its merged fleet-wide Chrome trace.
		resp := doReq(t, http.MethodGet, api.URL+"/v1/campaigns/"+ids[0]+"/trace", tenants[0], nil)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trace status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("trace content type %q", ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		// CI uploads the merged trace as a build artifact when the
		// directory is provided.
		if dir := os.Getenv("GEMSTONE_TRACE_ARTIFACT_DIR"); dir != "" {
			if err := os.WriteFile(filepath.Join(dir, "serve-e2e-"+tenants[0]+".json"), raw, 0o644); err != nil {
				t.Errorf("artifact write: %v", err)
			}
		}

		var doc struct {
			TraceEvents []struct {
				Name string         `json:"name"`
				Ph   string         `json:"ph"`
				Ts   float64        `json:"ts"`
				Dur  float64        `json:"dur"`
				Pid  int            `json:"pid"`
				Args map[string]any `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		var rootTs, rootEnd float64
		workerPids := map[int]bool{}
		for _, ev := range doc.TraceEvents {
			switch {
			case ev.Ph == "M" && ev.Name == "process_name":
				if name, _ := ev.Args["name"].(string); strings.HasPrefix(name, "worker ") {
					workerPids[ev.Pid] = true
				}
			case ev.Ph == "X" && ev.Name == "campaign" && ev.Pid == 1:
				rootTs, rootEnd = ev.Ts, ev.Ts+ev.Dur
				if got, _ := ev.Args["campaign"].(string); got != ids[0] {
					t.Errorf("campaign span labelled %q, want %s", got, ids[0])
				}
				if got, _ := ev.Args["tenant"].(string); got != tenants[0] {
					t.Errorf("campaign span tenant %q, want %s", got, tenants[0])
				}
			}
		}
		if rootEnd == 0 {
			t.Fatal("no campaign root span on pid 1")
		}
		if len(workerPids) == 0 {
			t.Fatal("no worker process in the merged trace")
		}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" && workerPids[ev.Pid] {
				if ev.Ts < rootTs-0.01 || ev.Ts+ev.Dur > rootEnd+0.01 {
					t.Errorf("worker span %q [%.1f,%.1f] escapes campaign span [%.1f,%.1f]",
						ev.Name, ev.Ts, ev.Ts+ev.Dur, rootTs, rootEnd)
				}
			}
		}

		// Cross-tenant trace reads 404 like every other sub-resource.
		if status, _ := fetch(t, api.URL, "bob", "/v1/campaigns/"+ids[0]+"/trace"); status != http.StatusNotFound {
			t.Errorf("cross-tenant trace status %d, want 404", status)
		}
	})

	t.Run("statusz", func(t *testing.T) {
		status, body := fetch(t, api.URL, "", "/v1/statusz")
		if status != http.StatusOK {
			t.Fatalf("statusz status %d", status)
		}
		var sz statuszBody
		if err := json.Unmarshal(body, &sz); err != nil {
			t.Fatalf("statusz is not valid JSON: %v", err)
		}
		// The healthy worker is still alive, so the fleet is not degraded.
		if sz.Status != "ok" {
			t.Errorf("statusz status %q, want ok", sz.Status)
		}
		if sz.Campaigns.Active != 0 {
			t.Errorf("active campaigns %d after completion", sz.Campaigns.Active)
		}
		if sz.Campaigns.Retained != 2 {
			t.Errorf("retained campaigns %d, want 2", sz.Campaigns.Retained)
		}
		if len(sz.Workers) != 2 {
			t.Errorf("statusz reports %d workers, want 2", len(sz.Workers))
		}
		if sz.Cache.Jobs <= 0 {
			t.Errorf("cache jobs %d, want > 0", sz.Cache.Jobs)
		}
		for _, phase := range []string{"queued", "leased", "simulating", "collating"} {
			if sz.SLO[phase].Count < 2 {
				t.Errorf("SLO phase %q observed %d times, want >= 2", phase, sz.SLO[phase].Count)
			}
		}
	})

	t.Run("request IDs", func(t *testing.T) {
		resp1 := doReq(t, http.MethodGet, api.URL+"/v1/campaigns", tenants[0], nil)
		resp1.Body.Close()
		resp2 := doReq(t, http.MethodGet, api.URL+"/v1/campaigns", tenants[0], nil)
		resp2.Body.Close()
		id1, id2 := resp1.Header.Get(obs.RequestIDHeader), resp2.Header.Get(obs.RequestIDHeader)
		if id1 == "" || id2 == "" {
			t.Fatalf("missing request ID headers: %q, %q", id1, id2)
		}
		if id1 == id2 {
			t.Errorf("request IDs not unique: %s", id1)
		}
	})
}

// TestTraceEndpointStates pins the non-200 trace responses: 409 while
// the campaign is still running, 404 when the server was started
// without campaign tracing.
func TestTraceEndpointStates(t *testing.T) {
	release := make(chan struct{})
	stub := func(ctx context.Context, pl *platform.Platform, opt core.CollectOptions) (*core.RunSet, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, fmt.Errorf("stub: campaign aborted")
	}

	traced := New(Config{Collector: stub, TraceCampaigns: true})
	defer traced.Close()
	tracedAPI := httptest.NewServer(traced.Handler())
	defer tracedAPI.Close()

	id := submit(t, tracedAPI.URL, "alice", testSpec(1))
	if status, body := fetch(t, tracedAPI.URL, "alice", "/v1/campaigns/"+id+"/trace"); status != http.StatusConflict {
		t.Fatalf("running campaign trace status %d: %s, want 409", status, body)
	}
	close(release)

	untraced := New(Config{Collector: stub})
	defer untraced.Close()
	untracedAPI := httptest.NewServer(untraced.Handler())
	defer untracedAPI.Close()

	id2 := submit(t, untracedAPI.URL, "alice", testSpec(1))
	if status, body := fetch(t, untracedAPI.URL, "alice", "/v1/campaigns/"+id2+"/trace"); status != http.StatusNotFound {
		t.Fatalf("untraced campaign trace status %d: %s, want 404", status, body)
	}
}

// TestReadyz pins the readiness contract: always 200, with the body
// distinguishing full capacity from degraded (local-fallback) mode.
func TestReadyz(t *testing.T) {
	local := New(Config{})
	defer local.Close()
	localAPI := httptest.NewServer(local.Handler())
	defer localAPI.Close()
	status, body := fetch(t, localAPI.URL, "", "/readyz")
	if status != http.StatusOK {
		t.Fatalf("local readyz status %d", status)
	}
	var rb map[string]any
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if rb["status"] != "ok" || rb["mode"] != "local" {
		t.Fatalf("local readyz body %s", body)
	}

	// A coordinator whose only worker is unreachable: degraded, not
	// failing — campaigns still run via local fallback.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	coord := dist.NewCoordinator(dist.CoordinatorConfig{Workers: []string{dead.URL}})
	degraded := New(Config{Coordinator: coord})
	defer degraded.Close()
	degradedAPI := httptest.NewServer(degraded.Handler())
	defer degradedAPI.Close()
	status, body = fetch(t, degradedAPI.URL, "", "/readyz")
	if status != http.StatusOK {
		t.Fatalf("degraded readyz status %d (readiness must degrade, not fail)", status)
	}
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if rb["status"] != "degraded" || rb["mode"] != "distributed" {
		t.Fatalf("degraded readyz body %s", body)
	}
	if live, ok := rb["workers_live"].(float64); !ok || live != 0 {
		t.Fatalf("degraded readyz workers_live %v, want 0", rb["workers_live"])
	}
}

// TestAdmissionControl pins the 429 surface: fleet capacity and
// per-tenant quotas, with slots released when campaigns finish.
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 16)
	stub := func(ctx context.Context, pl *platform.Platform, opt core.CollectOptions) (*core.RunSet, error) {
		name := opt.Name
		started <- name
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("stub: campaign aborted")
	}
	reg := obs.NewRegistry()
	svc := New(Config{Collector: stub, Registry: reg, MaxCampaigns: 2, TenantQuota: 1})
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	spec := testSpec(1)
	post := func(tenant string) *http.Response {
		body, _ := json.Marshal(spec)
		return doReq(t, http.MethodPost, api.URL+"/v1/campaigns", tenant, bytes.NewReader(body))
	}

	// First campaign per tenant is admitted, the second trips the
	// tenant quota, a third tenant trips fleet capacity.
	r1 := post("alice")
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("alice #1: %d", r1.StatusCode)
	}
	r1.Body.Close()
	<-started

	r2 := post("alice")
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice #2: %d, want 429", r2.StatusCode)
	}
	var e apiError
	if err := json.NewDecoder(r2.Body).Decode(&e); err != nil || e.Reason != "tenant-quota" {
		t.Fatalf("alice #2 reason %q (err %v), want tenant-quota", e.Reason, err)
	}
	r2.Body.Close()

	r3 := post("bob")
	if r3.StatusCode != http.StatusAccepted {
		t.Fatalf("bob: %d", r3.StatusCode)
	}
	r3.Body.Close()
	<-started

	r4 := post("carol")
	if r4.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("carol: %d, want 429", r4.StatusCode)
	}
	e = apiError{}
	if err := json.NewDecoder(r4.Body).Decode(&e); err != nil || e.Reason != "capacity" {
		t.Fatalf("carol reason %q (err %v), want capacity", e.Reason, err)
	}
	r4.Body.Close()

	snap := reg.Snapshot()
	if snap[`gemstone_serve_rejected_total{tenant="alice",reason="tenant-quota"}`] != 1 ||
		snap[`gemstone_serve_rejected_total{tenant="carol",reason="capacity"}`] != 1 {
		t.Errorf("rejection metrics wrong: %v %v",
			snap[`gemstone_serve_rejected_total{tenant="alice",reason="tenant-quota"}`],
			snap[`gemstone_serve_rejected_total{tenant="carol",reason="capacity"}`])
	}

	// Releasing the stub frees the slots: carol is admitted once the
	// in-flight campaigns settle.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := post("carol")
		code := r.StatusCode
		r.Body.Close()
		if code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("carol still rejected (%d) after slots should have freed", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	svc.Close()
}

// TestSpecErrors pins the decode taxonomy at the HTTP boundary —
// malformed bytes 400, well-formed-but-invalid specs 422 — and that
// rejected submissions neither start campaigns nor leak goroutines.
func TestSpecErrors(t *testing.T) {
	svc := New(Config{Collector: func(context.Context, *platform.Platform, core.CollectOptions) (*core.RunSet, error) {
		t.Error("rejected spec started a campaign")
		return nil, nil
	}})
	defer svc.Close()
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", "", http.StatusBadRequest},
		{"not json", "not json at all", http.StatusBadRequest},
		{"wrong type", `"a string"`, http.StatusBadRequest},
		{"unknown field", `{"bogus_field": 1}`, http.StatusBadRequest},
		{"trailing data", `{} {}`, http.StatusBadRequest},
		{"type mismatch", `{"freq_mhz": "fast"}`, http.StatusBadRequest},
		{"bad version", `{"gem5_version": 99}`, http.StatusUnprocessableEntity},
		{"bad cluster", `{"cluster": "m7"}`, http.StatusUnprocessableEntity},
		{"bad workload", `{"workloads": ["no-such-workload"]}`, http.StatusUnprocessableEntity},
		{"dup workload", `{"workloads": ["mi-qsort", "mi-qsort"]}`, http.StatusUnprocessableEntity},
		{"bad freq", `{"freqs_mhz": [123]}`, http.StatusUnprocessableEntity},
		{"analysis freq not swept", `{"freq_mhz": 1400, "freqs_mhz": [1000]}`, http.StatusUnprocessableEntity},
		{"negative max", `{"max_workloads": -1}`, http.StatusUnprocessableEntity},
		{"fidelity wrong type", `{"fidelity": 7}`, http.StatusBadRequest},
		{"bad fidelity", `{"fidelity": "turbo"}`, http.StatusUnprocessableEntity},
		{"bad mode", `{"mode": "sideways"}`, http.StatusUnprocessableEntity},
		{"fidelity in screen mode", `{"mode": "screen", "fidelity": "atomic"}`, http.StatusUnprocessableEntity},
	}
	before := runtime.NumGoroutine()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doReq(t, http.MethodPost, api.URL+"/v1/campaigns", "t", strings.NewReader(tc.body))
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, b)
			}
		})
	}
	// Rejected submissions must not leave campaign goroutines behind.
	// Allow slack for the HTTP server's transient conn goroutines.
	time.Sleep(50 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before+5 {
		t.Errorf("goroutines grew %d -> %d across rejected submissions", before, after)
	}

	t.Run("bad tenant header", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet, api.URL+"/v1/campaigns", nil)
		req.Header.Set(TenantHeader, "no spaces allowed")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
}

// TestChaosSoak runs a campaign through the service while the transport
// drops, corrupts and delays worker traffic and a KillSwitch crashes a
// worker mid-campaign. The SSE stream must still terminate with a
// complete, correct result set — byte-identical archives. Guarded by
// -short: the retry/backoff churn makes it the slowest service test.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in short mode")
	}
	n := 4
	spec := testSpec(n)
	goldenHW, goldenSim := localGolden(t, spec)

	healthy := startWorker(t, nil)
	doomed := startWorker(t, func(h http.Handler) http.Handler {
		return &dist.KillSwitch{Handler: h, After: 2}
	})
	chaos := &dist.Chaos{
		Seed:          7,
		DropProb:      0.15,
		DuplicateProb: 0.05,
		CorruptProb:   0.1,
		DelayProb:     0.1,
		Delay:         50 * time.Millisecond,
		MaxFaults:     30,
	}
	coord := dist.NewCoordinator(dist.CoordinatorConfig{
		Workers:     []string{healthy.URL, doomed.URL},
		Client:      &http.Client{Transport: chaos},
		RunTimeout:  10 * time.Second,
		MaxAttempts: 4,
	})
	svc := New(Config{Coordinator: coord, Registry: obs.NewRegistry()})
	defer svc.Close()
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	id := submit(t, api.URL, "soak", spec)
	events := followSSE(t, api.URL, "soak", id)
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	if last := events[len(events)-1]; last.Type != "done" {
		t.Fatalf("stream ended with %q (error=%q), want done", last.Type, last.Error)
	}

	status, gotHW := fetch(t, api.URL, "soak", "/v1/campaigns/"+id+"/archive/hw")
	if status != http.StatusOK {
		t.Fatalf("hw archive status %d", status)
	}
	if !bytes.Equal(gotHW, archiveBytes(t, goldenHW)) {
		t.Error("hw archive differs from local collect under chaos")
	}
	status, gotSim := fetch(t, api.URL, "soak", "/v1/campaigns/"+id+"/archive/sim")
	if status != http.StatusOK {
		t.Fatalf("sim archive status %d", status)
	}
	if !bytes.Equal(gotSim, archiveBytes(t, goldenSim)) {
		t.Error("sim archive differs from local collect under chaos")
	}
	t.Logf("chaos: %d faults (%d drops, %d dups, %d corrupts, %d delays)",
		chaos.Faults(), chaos.Drops(), chaos.Duplicates(), chaos.Corrupts(), chaos.Delays())
}

// TestServerCloseCancelsCampaigns pins shutdown: Close cancels running
// campaigns, their streams end with an error frame, and Close returns.
func TestServerCloseCancelsCampaigns(t *testing.T) {
	block := make(chan struct{})
	stub := func(ctx context.Context, pl *platform.Platform, opt core.CollectOptions) (*core.RunSet, error) {
		close(block)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	svc := New(Config{Collector: stub})
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	id := submit(t, api.URL, "t", testSpec(1))
	<-block

	events := make(chan []Event, 1)
	go func() { events <- followSSE(t, api.URL, "t", id) }()

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case evs := <-events:
		if len(evs) == 0 {
			t.Fatal("empty stream")
		}
		if last := evs[len(evs)-1]; last.Type != "error" {
			t.Fatalf("stream ended with %q, want error", last.Type)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not terminate after Close")
	}

	// New submissions are refused after Close.
	body, _ := json.Marshal(testSpec(1))
	resp := doReq(t, http.MethodPost, api.URL+"/v1/campaigns", "t", bytes.NewReader(body))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post after close: %d, want 503", resp.StatusCode)
	}
}

// TestTerminalFrameAtomicity is the regression test for the SSE
// terminal-frame race: complete/failWith commit the terminal frame and
// the terminal state under one campaign mutex hold, so a subscriber
// running the stream handler's loop can never observe a terminal state
// without having already drained the terminal frame. A mid-window
// snapshot (terminal state, "done" not yet appended) would make the
// stream close one frame short.
func TestTerminalFrameAtomicity(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		c := newCampaign("c", "t", testSpec(1))
		fail := make(chan string, 1)
		done := make(chan struct{})
		go func() {
			defer close(done)
			cursor := 0
			var last Event
			for {
				tail, notify, state := c.snapshot(cursor)
				cursor += len(tail)
				if len(tail) > 0 {
					last = tail[len(tail)-1]
					if last.Type == "done" || last.Type == "error" {
						return // the handler's normal exit: terminal frame written
					}
					continue
				}
				if state.Terminal() {
					// The handler's backstop exit: nothing to drain and the
					// state is terminal — the terminal frame must already
					// have been delivered.
					select {
					case fail <- fmt.Sprintf("terminal state observed with last frame %q, want done", last.Type):
					default:
					}
					return
				}
				<-notify
			}
		}()
		c.append(Event{Type: "started"})
		c.append(Event{Type: "validated"})
		c.complete(nil, nil, nil, Event{Type: "done"})
		<-done
		select {
		case msg := <-fail:
			t.Fatal(msg)
		default:
		}
	}
}

// waitTerminal polls a campaign's status until it reports a terminal
// state (an already-evicted campaign counts: eviction implies terminal).
func waitTerminal(t *testing.T, base, tenant, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, body := fetch(t, base, tenant, "/v1/campaigns/"+id)
		if status == http.StatusNotFound {
			return
		}
		var st statusBody
		if err := json.Unmarshal(body, &st); err == nil && st.State.Terminal() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s not terminal after 10s (last status %d: %s)", id, status, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRetentionEviction pins the memory bound on terminal campaigns:
// once more than MaxRetained campaigns have settled, the oldest are
// evicted (404, gone from the listing) so a long-running daemon's
// footprint is in-flight work plus a fixed archive window — never the
// lifetime submission count.
func TestRetentionEviction(t *testing.T) {
	stub := func(ctx context.Context, pl *platform.Platform, opt core.CollectOptions) (*core.RunSet, error) {
		return nil, fmt.Errorf("stub: fail fast")
	}
	reg := obs.NewRegistry()
	svc := New(Config{Collector: stub, Registry: reg, MaxRetained: 2, MaxCampaigns: -1, TenantQuota: -1})
	defer svc.Close()
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		id := submit(t, api.URL, "t", testSpec(1))
		ids = append(ids, id)
		waitTerminal(t, api.URL, "t", id)
	}

	// Eviction runs when a campaign settles (after its terminal frame),
	// so poll briefly for the oldest two to disappear.
	for _, id := range ids[:2] {
		deadline := time.Now().Add(10 * time.Second)
		for {
			status, _ := fetch(t, api.URL, "t", "/v1/campaigns/"+id)
			if status == http.StatusNotFound {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s still retained beyond MaxRetained=2", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for _, id := range ids[2:] {
		if status, _ := fetch(t, api.URL, "t", "/v1/campaigns/"+id); status != http.StatusOK {
			t.Fatalf("retained campaign %s: status %d, want 200", id, status)
		}
	}
	status, body := fetch(t, api.URL, "t", "/v1/campaigns")
	if status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	var list []json.RawMessage
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("listing has %d campaigns, want the 2 retained", len(list))
	}
	// The counter increments just after the eviction's critical section,
	// so give it a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := reg.Snapshot()["gemstone_serve_evicted_total"]; got == 2 {
			break
		} else if time.Now().After(deadline) {
			t.Errorf("gemstone_serve_evicted_total = %v, want 2", got)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeleteCampaign pins the DELETE surface: running campaigns 409
// (deletion never frees an admission slot), terminal campaigns delete
// to 204 and then 404, and cross-tenant deletes 404 without removing
// anything.
func TestDeleteCampaign(t *testing.T) {
	release := make(chan struct{})
	stub := func(ctx context.Context, pl *platform.Platform, opt core.CollectOptions) (*core.RunSet, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, fmt.Errorf("stub: campaign aborted")
	}
	svc := New(Config{Collector: stub})
	defer svc.Close()
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	id := submit(t, api.URL, "alice", testSpec(1))

	resp := doReq(t, http.MethodDelete, api.URL+"/v1/campaigns/"+id, "alice", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delete of running campaign: %d, want 409", resp.StatusCode)
	}

	close(release)
	waitTerminal(t, api.URL, "alice", id)

	resp = doReq(t, http.MethodDelete, api.URL+"/v1/campaigns/"+id, "bob", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant delete: %d, want 404", resp.StatusCode)
	}
	if status, _ := fetch(t, api.URL, "alice", "/v1/campaigns/"+id); status != http.StatusOK {
		t.Fatalf("campaign gone after cross-tenant delete: status %d", status)
	}

	resp = doReq(t, http.MethodDelete, api.URL+"/v1/campaigns/"+id, "alice", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d, want 204", resp.StatusCode)
	}
	if status, _ := fetch(t, api.URL, "alice", "/v1/campaigns/"+id); status != http.StatusNotFound {
		t.Fatalf("campaign still present after delete: status %d", status)
	}
	resp = doReq(t, http.MethodDelete, api.URL+"/v1/campaigns/"+id, "alice", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete: %d, want 404", resp.StatusCode)
	}
}

// TestQueueDepthGauge pins gemstone_serve_queue_depth: admitted
// campaigns raise their tenant's gauge, terminal transitions (here the
// failure path — the stub errors on release) drain it back to zero,
// and /v1/statusz mirrors the same per-tenant depths while campaigns
// are in flight.
func TestQueueDepthGauge(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 16)
	stub := func(ctx context.Context, pl *platform.Platform, opt core.CollectOptions) (*core.RunSet, error) {
		name := opt.Name
		started <- name
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("stub: campaign aborted")
	}
	reg := obs.NewRegistry()
	svc := New(Config{Collector: stub, Registry: reg, MaxCampaigns: -1, TenantQuota: -1})
	defer svc.Close()
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	for _, tn := range []string{"alice", "alice", "bob"} {
		id := submit(t, api.URL, tn, testSpec(1))
		if id == "" {
			t.Fatal("empty id")
		}
		<-started
	}

	snap := reg.Snapshot()
	if got := snap[`gemstone_serve_queue_depth{tenant="alice"}`]; got != 2 {
		t.Errorf("alice queue depth = %v, want 2", got)
	}
	if got := snap[`gemstone_serve_queue_depth{tenant="bob"}`]; got != 1 {
		t.Errorf("bob queue depth = %v, want 1", got)
	}

	// /v1/statusz surfaces the same depths.
	code, body := fetch(t, api.URL, "alice", "/v1/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: %d", code)
	}
	var sz struct {
		Campaigns struct {
			QueueDepth map[string]int `json:"queue_depth"`
		} `json:"campaigns"`
	}
	if err := json.Unmarshal(body, &sz); err != nil {
		t.Fatal(err)
	}
	if sz.Campaigns.QueueDepth["alice"] != 2 || sz.Campaigns.QueueDepth["bob"] != 1 {
		t.Errorf("statusz queue_depth = %v, want alice:2 bob:1", sz.Campaigns.QueueDepth)
	}

	// Terminal transitions — failures included — drain the gauge.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap = reg.Snapshot()
		if snap[`gemstone_serve_queue_depth{tenant="alice"}`] == 0 &&
			snap[`gemstone_serve_queue_depth{tenant="bob"}`] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never drained: alice=%v bob=%v",
				snap[`gemstone_serve_queue_depth{tenant="alice"}`],
				snap[`gemstone_serve_queue_depth{tenant="bob"}`])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap[`gemstone_serve_campaigns_total{tenant="alice",outcome="failed"}`] != 2 {
		t.Errorf("alice failed count = %v, want 2",
			snap[`gemstone_serve_campaigns_total{tenant="alice",outcome="failed"}`])
	}
	code, body = fetch(t, api.URL, "alice", "/v1/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: %d", code)
	}
	sz.Campaigns.QueueDepth = nil
	if err := json.Unmarshal(body, &sz); err != nil {
		t.Fatal(err)
	}
	if len(sz.Campaigns.QueueDepth) != 0 {
		t.Errorf("statusz queue_depth after drain = %v, want empty", sz.Campaigns.QueueDepth)
	}
}
