package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gemstone/internal/core"
	"gemstone/internal/platform"
)

// fuzzServer lazily builds one shared service whose collector is a stub
// (valid fuzz inputs must not launch real simulations), reused across
// every fuzz iteration — the decode path under test is per-request, the
// server is not.
var fuzzServer struct {
	once sync.Once
	url  string
}

func fuzzServerURL() string {
	fuzzServer.once.Do(func() {
		svc := New(Config{
			// Admission must never push back during fuzzing: a valid spec
			// that hits a 429 would look like a decode outcome.
			MaxCampaigns: -1,
			TenantQuota:  -1,
			Collector: func(ctx context.Context, pl *platform.Platform, opt core.CollectOptions) (*core.RunSet, error) {
				return &core.RunSet{Platform: pl.Name(), Runs: map[core.RunKey]platform.Measurement{}}, nil
			},
		})
		srv := httptest.NewServer(svc.Handler())
		fuzzServer.url = srv.URL
		// Deliberately not closed: the fuzz process exits with the server.
	})
	return fuzzServer.url
}

// FuzzCampaignSpec feeds arbitrary bytes to the campaign-spec decoder,
// both directly and through the HTTP surface. The contract: parsing
// never panics, every rejection is exactly ErrMalformed or ErrInvalid
// (400 or 422 over HTTP — never a 5xx), and an accepted spec
// re-validates cleanly with defaults applied.
func FuzzCampaignSpec(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"cluster":"a15","freq_mhz":1000,"freqs_mhz":[1000],"workloads":["mi-qsort"]}`))
	f.Add([]byte(`{"gem5_version":2,"cluster":"a7"}`))
	f.Add([]byte(`{"max_workloads":2}`))
	f.Add([]byte(`{"cluster":"m7"}`))
	f.Add([]byte(`{"workloads":["no-such-workload"]}`))
	f.Add([]byte(`{"freqs_mhz":[123456]}`))
	f.Add([]byte(`{"bogus":"field"}`))
	f.Add([]byte(`{"freq_mhz":"fast"}`))
	f.Add([]byte(`{} {}`))
	f.Add([]byte(`{"workloads":[` + strings.Repeat(`"mi-qsort",`, 100) + `"mi-qsort"]}`))
	f.Add(bytes.Repeat([]byte(`[`), 1024))
	f.Add([]byte(`{"fidelity":"atomic"}`))
	f.Add([]byte(`{"fidelity":"detailed","mode":"full"}`))
	f.Add([]byte(`{"mode":"screen","max_workloads":2}`))
	f.Add([]byte(`{"fidelity":"turbo"}`))
	f.Add([]byte(`{"mode":"sideways"}`))
	f.Add([]byte(`{"mode":"screen","fidelity":"atomic"}`))
	f.Add([]byte(`{"fidelity":7}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseCampaignSpec(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrInvalid) {
				t.Fatalf("error outside the taxonomy: %v", err)
			}
		} else {
			// Accepted specs are fully defaulted: re-validation must be
			// idempotent and the collector options constructible.
			if len(spec.Profiles()) == 0 || len(spec.FreqsMHz) == 0 || spec.Cluster == "" {
				t.Fatalf("accepted spec missing defaults: %+v", spec)
			}
			if err := spec.Validate(); err != nil {
				t.Fatalf("accepted spec fails re-validation: %v", err)
			}
			opt := spec.Options()
			if len(opt.Workloads) != len(spec.Profiles()) {
				t.Fatalf("options dropped workloads: %d vs %d", len(opt.Workloads), len(spec.Profiles()))
			}
		}

		// The same bytes through the HTTP surface: 202 on accept, 400 on
		// malformed, 422 on invalid — never a panic (500) and never a
		// mismatch with the direct parse.
		resp, herr := http.Post(fuzzServerURL()+"/v1/campaigns", "application/json", bytes.NewReader(data))
		if herr != nil {
			t.Fatalf("POST failed: %v", herr)
		}
		resp.Body.Close()
		want := http.StatusAccepted
		switch {
		case errors.Is(err, ErrMalformed):
			want = http.StatusBadRequest
		case errors.Is(err, ErrInvalid):
			want = http.StatusUnprocessableEntity
		}
		if resp.StatusCode != want {
			t.Fatalf("HTTP status %d, want %d (parse err: %v)", resp.StatusCode, want, err)
		}
	})
}
