package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"net/http"
	"testing"

	"gemstone/internal/core"
	"gemstone/internal/hw"
	"gemstone/internal/platform"
	"gemstone/internal/workload"
)

// TestJobIDFidelitySeparation pins the content-addressing contract for
// tiers: the same operating point at different fidelities must map to
// different job IDs, so a cached or duplicated atomic result can never be
// recorded as a detailed measurement (or vice versa).
func TestJobIDFidelitySeparation(t *testing.T) {
	pl := hw.Platform()
	prof := workload.Validation()[0]
	det, err := core.CacheKeyFidelity(pl, prof, hw.ClusterA15, 1000, platform.FidelityDetailed)
	if err != nil {
		t.Fatal(err)
	}
	atom, err := core.CacheKeyFidelity(pl, prof, hw.ClusterA15, 1000, platform.FidelityAtomic)
	if err != nil {
		t.Fatal(err)
	}
	if det == atom {
		t.Fatalf("detailed and atomic job IDs alias: %s", det)
	}
	legacy, err := core.CacheKey(pl, prof, hw.ClusterA15, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if legacy != det {
		t.Fatalf("legacy CacheKey %s != detailed-tier key %s", legacy, det)
	}
}

// TestDistributedAtomicCampaign runs an atomic-tier campaign over a real
// worker and checks the distributed archive is byte-identical to a local
// atomic collection — the worker must dispatch on Job.Fidelity, not
// silently simulate detailed.
func TestDistributedAtomicCampaign(t *testing.T) {
	n := campaignSize(t)
	opt := campaignOpts(n)
	opt.Fidelity = platform.FidelityAtomic
	local, err := core.Collect(context.Background(), hw.Platform(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for k, m := range local.Runs {
		if m.Fidelity != platform.FidelityAtomic {
			t.Fatalf("local atomic run %v has fidelity %s", k, m.Fidelity)
		}
	}

	w := startWorker(t, nil)
	coord := NewCoordinator(CoordinatorConfig{Workers: []string{w.URL}})
	dist, err := coord.Collect(context.Background(), hw.Platform(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := archiveBytes(t, dist), archiveBytes(t, local); !bytes.Equal(got, want) {
		t.Fatalf("distributed atomic archive differs from local: %d vs %d bytes", len(got), len(want))
	}
	remote := 0
	for _, ws := range coord.WorkerStats() {
		remote += ws.Jobs
	}
	if remote != n {
		t.Fatalf("workers ran %d jobs, want %d", remote, n)
	}
}

// TestWorkerRejectsInvalidFidelity pins the worker-side validation: a job
// carrying an out-of-range tier is terminal (422), never simulated.
func TestWorkerRejectsInvalidFidelity(t *testing.T) {
	srv := startWorker(t, nil)
	pl := hw.Platform()
	spec, ok := SpecFor(pl)
	if !ok {
		t.Fatal("no spec for hw platform")
	}
	job := Job{
		Proto:      ProtoVersion,
		ID:         "bogus-fidelity-job",
		Spec:       spec,
		PlatformFP: pl.Config().Fingerprint(),
		Profile:    workload.Validation()[0],
		Cluster:    hw.ClusterA15,
		FreqMHz:    1000,
		Fidelity:   platform.Fidelity(99),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&job); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+PathRun, contentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid fidelity: status %d, want 422", resp.StatusCode)
	}
}
