package dist

import (
	"encoding/gob"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gemstone/internal/obs"
	"gemstone/internal/platform"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// MaxParallel bounds concurrent simulations; 0 means GOMAXPROCS.
	// Hello advertises it as the worker's capacity, and the coordinator
	// opens exactly that many request slots.
	MaxParallel int
	// Registry, when non-nil, receives gemstone_dist_worker_* metrics.
	Registry *obs.Registry
	// Log, when non-nil, receives per-job logging.
	Log *slog.Logger
}

// Worker executes jobs for a coordinator. It is an http.Handler factory:
// mount Handler() on any server (cmd/gemstoned in production, httptest in
// the chaos suite). Simulation state is pooled per platform — a
// SimContext costs hundreds of kilobytes to build, and the coordinator
// orders jobs workload-major, so reuse hits constantly.
type Worker struct {
	cfg WorkerConfig
	sem chan struct{}

	mu        sync.Mutex
	platforms map[PlatformSpec]*platform.Platform
	idle      map[string][]*platform.SimContext // platform fingerprint -> free contexts

	runs     atomic.Int64
	runsOK   *obs.Counter
	runsErr  *obs.Counter
	busy     *obs.Gauge
	simTime  *obs.Histogram
	capacity int

	// clock overrides time.Now for the clock-skew tests; nil means the
	// real clock.
	clock func() time.Time
}

// now reads the worker's clock.
func (w *Worker) now() time.Time {
	if w.clock != nil {
		return w.clock()
	}
	return time.Now()
}

// NewWorker builds a worker.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.MaxParallel <= 0 {
		cfg.MaxParallel = runtime.GOMAXPROCS(0)
	}
	w := &Worker{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxParallel),
		platforms: make(map[PlatformSpec]*platform.Platform),
		idle:      make(map[string][]*platform.SimContext),
		capacity:  cfg.MaxParallel,
	}
	if reg := cfg.Registry; reg != nil {
		runsTotal := reg.Counter("gemstone_dist_worker_runs_total",
			"Jobs executed by this worker, by outcome.", "outcome")
		w.runsOK, w.runsErr = runsTotal, runsTotal
		w.busy = reg.Gauge("gemstone_dist_worker_busy",
			"Simulations currently executing on this worker.")
		w.simTime = reg.Histogram("gemstone_dist_worker_sim_seconds",
			"Per-job simulation wall time on this worker.", nil)
	}
	return w
}

// Runs reports the number of jobs completed since the worker started.
func (w *Worker) Runs() int64 { return w.runs.Load() }

// Capacity reports the advertised parallelism.
func (w *Worker) Capacity() int { return w.capacity }

// Handler returns the worker's HTTP surface: PathHello (probe) and
// PathRun (execute one job).
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathHello, w.handleHello)
	mux.HandleFunc(PathRun, w.handleRun)
	return mux
}

func (w *Worker) handleHello(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", contentType)
	_ = gob.NewEncoder(rw).Encode(Hello{
		Proto:    ProtoVersion,
		Capacity: w.capacity,
		Runs:     w.runs.Load(),
	})
}

// handleRun executes one job. Status discipline:
//
//	400 — undecodable request (a bug or corrupted-in-flight job)
//	409 — protocol version or platform fingerprint mismatch: this worker
//	      must not contribute measurements (retrying elsewhere may work)
//	422 — the simulation itself failed; deterministic, so the coordinator
//	      fails the campaign instead of retrying
//	200 — a gob RunResult
func (w *Worker) handleRun(rw http.ResponseWriter, req *http.Request) {
	recv := w.now()
	if req.Method != http.MethodPost {
		http.Error(rw, "dist: POST required", http.StatusMethodNotAllowed)
		return
	}
	var job Job
	if err := gob.NewDecoder(req.Body).Decode(&job); err != nil {
		http.Error(rw, fmt.Sprintf("dist: decoding job: %v", err), http.StatusBadRequest)
		return
	}
	if job.Proto != ProtoVersion {
		http.Error(rw, fmt.Sprintf("dist: protocol %d, worker speaks %d", job.Proto, ProtoVersion),
			http.StatusConflict)
		return
	}
	pl, err := w.platform(job.Spec)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusConflict)
		return
	}
	if fp := pl.Config().Fingerprint(); fp != job.PlatformFP {
		// A fingerprint mismatch means coordinator and worker binaries
		// model different machines; measurements would differ silently.
		http.Error(rw, fmt.Sprintf("dist: platform fingerprint mismatch (worker %s)", fp[:12]),
			http.StatusConflict)
		return
	}
	if !job.Fidelity.Valid() {
		// An invalid tier is a malformed job, not a simulation failure:
		// 422 marks it terminal so the coordinator does not retry a job
		// that can never succeed.
		http.Error(rw, fmt.Sprintf("dist: invalid job fidelity %d", job.Fidelity),
			http.StatusUnprocessableEntity)
		return
	}

	// Span recording costs nothing unless the job asks for it: untraced
	// jobs take the exact pre-tracing path plus one branch per phase.
	traced := job.Trace.Recording()
	var spans []obs.SpanRecord
	mark := func(name string, start time.Time, attrs ...obs.Attr) {
		if traced {
			spans = append(spans, obs.NewSpanRecord(name, start, w.now(), attrs...))
		}
	}
	mark("receive", recv, obs.Int64("bytes", req.ContentLength))

	queueT := w.now()
	w.sem <- struct{}{}
	mark("queue", queueT)
	if w.busy != nil {
		w.busy.Add(1)
	}
	ctxT := w.now()
	sc, reused := w.simContext(pl)
	mark("simctx", ctxT, obs.Bool("reused", reused))
	start := w.now()
	m, err := sc.RunFidelity(job.Profile, job.Cluster, job.FreqMHz, job.Fidelity, nil)
	elapsed := w.now().Sub(start)
	mark("simulate", start, obs.String("workload", job.Profile.Name),
		obs.String("cluster", job.Cluster), obs.Int("freq_mhz", job.FreqMHz),
		obs.String("fidelity", job.Fidelity.String()))
	w.releaseSimContext(pl, sc)
	if w.busy != nil {
		w.busy.Add(-1)
	}
	<-w.sem

	if err != nil {
		if w.runsErr != nil {
			w.runsErr.Inc("error")
		}
		if w.cfg.Log != nil {
			w.cfg.Log.Error("job failed", "id", job.ID, "key", job.Profile.Name,
				"campaign", job.Trace.Campaign, "tenant", job.Trace.Tenant, "err", err)
		}
		http.Error(rw, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	encT := w.now()
	payload, digest, err := encodeMeasurement(m)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	mark("encode", encT, obs.Int("bytes", len(payload)))
	w.runs.Add(1)
	if w.runsOK != nil {
		w.runsOK.Inc("ok")
	}
	if w.simTime != nil {
		w.simTime.Observe(elapsed.Seconds())
	}
	if w.cfg.Log != nil {
		w.cfg.Log.Debug("job done", "id", job.ID,
			"workload", job.Profile.Name, "cluster", job.Cluster, "freq_mhz", job.FreqMHz,
			"campaign", job.Trace.Campaign, "tenant", job.Trace.Tenant,
			"sim", elapsed.Round(time.Millisecond).String())
	}
	res := RunResult{
		Proto:      ProtoVersion,
		ID:         job.ID,
		Payload:    payload,
		Digest:     digest,
		SimSeconds: elapsed.Seconds(),
	}
	if traced {
		done := w.now()
		// The root span brackets everything the worker did for the job;
		// its endpoints double as the clock-sync timestamps.
		root := obs.NewSpanRecord("job", recv, done,
			obs.String("job", job.ID), obs.String("campaign", job.Trace.Campaign),
			obs.String("tenant", job.Trace.Tenant), obs.String("parent", job.Trace.Parent))
		res.Spans = append([]obs.SpanRecord{root}, spans...)
		res.RecvUnixNano = recv.UnixNano()
		res.DoneUnixNano = done.UnixNano()
	}
	rw.Header().Set("Content-Type", contentType)
	_ = gob.NewEncoder(rw).Encode(res)
}

// platform resolves (and memoises) the spec's platform.
func (w *Worker) platform(spec PlatformSpec) (*platform.Platform, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if pl, ok := w.platforms[spec]; ok {
		return pl, nil
	}
	pl, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	w.platforms[spec] = pl
	return pl, nil
}

// simContext pops an idle reusable context for pl, or builds one. The
// pool is keyed by platform fingerprint and bounded by MaxParallel via
// the semaphore, so at most MaxParallel contexts exist per platform.
// reused reports whether the context came from the pool (a trace
// annotation: a cold build costs hundreds of kilobytes and milliseconds).
func (w *Worker) simContext(pl *platform.Platform) (sc *platform.SimContext, reused bool) {
	fp := pl.Config().Fingerprint()
	w.mu.Lock()
	defer w.mu.Unlock()
	if free := w.idle[fp]; len(free) > 0 {
		sc := free[len(free)-1]
		w.idle[fp] = free[:len(free)-1]
		return sc, true
	}
	return platform.NewSimContext(pl), false
}

func (w *Worker) releaseSimContext(pl *platform.Platform, sc *platform.SimContext) {
	fp := pl.Config().Fingerprint()
	w.mu.Lock()
	w.idle[fp] = append(w.idle[fp], sc)
	w.mu.Unlock()
}
