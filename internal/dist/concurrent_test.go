package dist

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/obs"
)

// TestConcurrentCampaigns is the regression test for the coordinator's
// former one-campaign-at-a-time assumption: overlapping campaigns share
// one worker fleet, including two campaigns with *identical* specs —
// whose content-addressed job IDs collide across campaigns, so only a
// campaign-keyed lease table keeps their bookkeeping apart. Every
// campaign must produce the byte-identical canonical archive a local
// Collect yields (no cross-campaign job bleed), and the lease table
// must drain to empty.
func TestConcurrentCampaigns(t *testing.T) {
	n := campaignSize(t)
	localHW, err := core.Collect(context.Background(), hw.Platform(), campaignOpts(n))
	if err != nil {
		t.Fatal(err)
	}
	localSim, err := core.Collect(context.Background(), gem5.Platform(gem5.V1), campaignOpts(n))
	if err != nil {
		t.Fatal(err)
	}

	w1 := startWorker(t, nil)
	w2 := startWorker(t, nil)
	coord := NewCoordinator(CoordinatorConfig{
		Workers:  []string{w1.URL, w2.URL},
		Registry: obs.NewRegistry(),
	})

	// Campaigns a and b are the same spec on the same platform —
	// identical job IDs in flight at once. Campaign c interleaves a
	// different platform through the same fleet.
	type launch struct {
		name string
		pl   string
	}
	launches := []launch{
		{"campaign-a", "hw"},
		{"campaign-b", "hw"},
		{"campaign-c", "sim"},
	}
	results := make([]*core.RunSet, len(launches))
	errs := make([]error, len(launches))
	var wg sync.WaitGroup
	for i, l := range launches {
		wg.Add(1)
		go func(i int, l launch) {
			defer wg.Done()
			pl := hw.Platform()
			if l.pl == "sim" {
				pl = gem5.Platform(gem5.V1)
			}
			results[i], errs[i] = coord.CollectNamed(context.Background(), l.name, pl, campaignOpts(n))
		}(i, l)
	}
	wg.Wait()

	for i, l := range launches {
		if errs[i] != nil {
			t.Fatalf("%s: %v", l.name, errs[i])
		}
		want := localHW
		if l.pl == "sim" {
			want = localSim
		}
		if got := archiveBytes(t, results[i]); !bytes.Equal(got, archiveBytes(t, want)) {
			t.Errorf("%s: archive differs from local %s collect (cross-campaign bleed?)", l.name, l.pl)
		}
	}

	if leases := coord.Leases(); len(leases) != 0 {
		t.Errorf("lease table not drained: %d leases held after all campaigns finished", len(leases))
	}

	remote := 0
	for _, ws := range coord.WorkerStats() {
		remote += ws.Jobs
	}
	if remote == 0 {
		t.Error("no jobs ran remotely; the fleet was bypassed")
	}
}

// TestLeaseKeysAreCampaignScoped pins the lease-table shape directly:
// while two same-spec campaigns are in flight, leases for the same job
// ID may exist under both campaign keys without colliding.
func TestLeaseKeysAreCampaignScoped(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	c.leaseAcquire("campaign-a", "job-1", "w1")
	c.leaseAcquire("campaign-b", "job-1", "w2")
	leases := c.Leases()
	if len(leases) != 2 {
		t.Fatalf("got %d leases, want 2 (same job under two campaigns)", len(leases))
	}
	if got := leases[LeaseKey{Campaign: "campaign-a", Job: "job-1"}].Worker; got != "w1" {
		t.Fatalf("campaign-a lease held by %q, want w1", got)
	}
	if got := leases[LeaseKey{Campaign: "campaign-b", Job: "job-1"}].Worker; got != "w2" {
		t.Fatalf("campaign-b lease held by %q, want w2", got)
	}
	c.leaseRelease("campaign-a", "job-1")
	if leases := c.Leases(); len(leases) != 1 {
		t.Fatalf("releasing campaign-a's lease left %d leases, want 1", len(leases))
	}
}

// TestFleetSlotsSharedAcrossCampaigns pins the capacity contract: a
// worker advertising capacity k never executes more than k jobs at once
// even when multiple campaigns dispatch to it concurrently. The worker
// wrapper counts in-flight run requests.
func TestFleetSlotsSharedAcrossCampaigns(t *testing.T) {
	n := campaignSize(t)
	var mu sync.Mutex
	inflight, peak := 0, 0
	w := startWorker(t, func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
			if strings.HasSuffix(req.URL.Path, PathRun) {
				mu.Lock()
				inflight++
				if inflight > peak {
					peak = inflight
				}
				mu.Unlock()
				defer func() {
					mu.Lock()
					inflight--
					mu.Unlock()
				}()
			}
			h.ServeHTTP(rw, req)
		})
	})
	coord := NewCoordinator(CoordinatorConfig{Workers: []string{w.URL}})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := coord.CollectNamed(context.Background(), fmt.Sprintf("cap-%d", i), hw.Platform(), campaignOpts(n))
			if err != nil {
				t.Errorf("cap-%d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	// startWorker advertises MaxParallel=2. The worker itself would 409
	// excess jobs; the fleet slot pool must prevent them being sent at
	// all, so peak concurrency never exceeds the advertised capacity.
	if peak > 2 {
		t.Fatalf("worker saw %d concurrent runs, advertised capacity 2", peak)
	}
}

// TestSlotPoolResizePreservesHeldSlots is the regression test for the
// capacity-change race: when a restarted worker comes back advertising
// different parallelism, slotsFor must resize the existing pool in
// place, never swap in a fresh one — otherwise campaigns probed under
// the old capacity keep dispatching through the abandoned pool and the
// fleet can exceed the worker's new capacity until they finish.
func TestSlotPoolResizePreservesHeldSlots(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	sp := c.slotsFor("http://w1", 2)
	if got := c.slotsFor("http://w1", 3); got != sp {
		t.Fatal("capacity change replaced the slot pool; held slots would escape accounting")
	}
	c.slotsFor("http://w1", 2)

	cancel := make(chan struct{})
	// An old campaign holds both slots.
	for i := 0; i < 2; i++ {
		if !sp.acquire(cancel, nil) {
			t.Fatalf("acquire %d failed with free slots", i)
		}
	}

	// The worker restarts advertising capacity 1: nothing is revoked,
	// but a new campaign gets no slot until *both* old holders release —
	// held slots count against the shrunk limit.
	c.slotsFor("http://w1", 1)
	acquired := make(chan bool, 1)
	go func() { acquired <- sp.acquire(cancel, nil) }()
	for i := 0; i < 2; i++ {
		select {
		case <-acquired:
			t.Fatalf("acquired a slot with %d old slots held, limit 1", 2-i)
		case <-time.After(20 * time.Millisecond):
		}
		sp.release()
	}
	select {
	case ok := <-acquired:
		if !ok {
			t.Fatal("acquire reported cancellation after slots freed")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire still blocked after enough releases")
	}
	sp.release()

	// A waiter blocked on a full pool unblocks when cancelled.
	if !sp.acquire(cancel, nil) {
		t.Fatal("acquire failed on an empty pool")
	}
	go func() { acquired <- sp.acquire(cancel, nil) }()
	close(cancel)
	select {
	case ok := <-acquired:
		if ok {
			t.Fatal("cancelled acquire reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire did not return")
	}
	sp.release()
}
