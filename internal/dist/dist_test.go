package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/workload"
)

// campaignOpts builds a small real campaign: n validation workloads on the
// big cluster at one frequency. Each run simulates in a few hundred
// milliseconds, so the suite stays fast even under -race.
func campaignOpts(n int) core.CollectOptions {
	return core.CollectOptions{
		Workloads: workload.Validation()[:n],
		Clusters:  []string{hw.ClusterA15},
		Freqs:     map[string][]int{hw.ClusterA15: {1000}},
	}
}

func campaignSize(t *testing.T) int {
	t.Helper()
	if testing.Short() {
		return 2
	}
	return 4
}

// startWorker serves a fresh Worker over httptest, optionally wrapped.
func startWorker(t *testing.T, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	h := http.Handler(NewWorker(WorkerConfig{MaxParallel: 2}).Handler())
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// archiveBytes renders the canonical RunSet archive.
func archiveBytes(t *testing.T, rs *core.RunSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.SaveRunSet(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSpecForRoundTrip(t *testing.T) {
	platforms := []*platform.Platform{
		hw.Platform(),
		gem5.Platform(gem5.V1),
		gem5.Platform(gem5.V2),
		gem5.PlatformWithDefects(gem5.DefectBP),
	}
	for _, pl := range platforms {
		spec, ok := SpecFor(pl)
		if !ok {
			t.Fatalf("SpecFor(%s) found no spec", pl.Name())
		}
		back, err := spec.Resolve()
		if err != nil {
			t.Fatalf("Resolve(%+v): %v", spec, err)
		}
		if got, want := back.Config().Fingerprint(), pl.Config().Fingerprint(); got != want {
			t.Fatalf("%s: resolved fingerprint %s, want %s", pl.Name(), got[:12], want[:12])
		}
	}
	if _, ok := SpecFor(platform.New(hw.Platform().Config())); !ok {
		// platform.New over the hw config still fingerprints identically,
		// so it SHOULD resolve; this guards the matcher's reach.
		t.Fatal("SpecFor rejected a fingerprint-identical platform")
	}
}

// TestRoundTrip pins the tentpole's core contract on the happy path: a
// distributed campaign over two real workers returns the byte-identical
// canonical archive a local Collect produces, and the work was actually
// remote.
func TestRoundTrip(t *testing.T) {
	n := campaignSize(t)
	local, err := core.Collect(context.Background(), hw.Platform(), campaignOpts(n))
	if err != nil {
		t.Fatal(err)
	}

	w1 := startWorker(t, nil)
	w2 := startWorker(t, nil)
	reg := obs.NewRegistry()
	coord := NewCoordinator(CoordinatorConfig{
		Workers:  []string{w1.URL, w2.URL},
		Registry: reg,
	})
	dist, err := coord.Collect(context.Background(), hw.Platform(), campaignOpts(n))
	if err != nil {
		t.Fatal(err)
	}

	if got, want := archiveBytes(t, dist), archiveBytes(t, local); !bytes.Equal(got, want) {
		t.Fatalf("distributed archive differs from local: %d vs %d bytes", len(got), len(want))
	}

	remote := 0
	for _, ws := range coord.WorkerStats() {
		remote += ws.Jobs
		if !ws.Alive {
			t.Fatalf("worker %s not alive after a clean campaign", ws.Addr)
		}
	}
	if remote != n {
		t.Fatalf("workers ran %d jobs, want %d", remote, n)
	}
	snap := reg.Snapshot()
	if got := snap[`gemstone_dist_jobs_total{mode="remote"}`]; got != float64(n) {
		t.Fatalf("gemstone_dist_jobs_total{mode=remote} = %v, want %d", got, n)
	}
	if got := snap[`gemstone_dist_inflight_leases`]; got != 0 {
		t.Fatalf("leases leaked: gauge = %v", got)
	}
}

// TestZeroWorkersDegradesToLocal pins graceful degradation: no workers
// configured, or none answering, must run the campaign locally with no
// error and identical bytes.
func TestZeroWorkersDegradesToLocal(t *testing.T) {
	n := campaignSize(t)
	local, err := core.Collect(context.Background(), hw.Platform(), campaignOpts(n))
	if err != nil {
		t.Fatal(err)
	}
	for name, workers := range map[string][]string{
		"none":        nil,
		"unreachable": {"127.0.0.1:1"}, // reserved port: connection refused
	} {
		t.Run(name, func(t *testing.T) {
			coord := NewCoordinator(CoordinatorConfig{
				Workers:      workers,
				ProbeTimeout: 2 * time.Second,
			})
			rs, err := coord.Collect(context.Background(), hw.Platform(), campaignOpts(n))
			if err != nil {
				t.Fatalf("degraded campaign errored: %v", err)
			}
			if !bytes.Equal(archiveBytes(t, rs), archiveBytes(t, local)) {
				t.Fatal("degraded archive differs from local")
			}
			if coord.DegradedCampaigns() != 1 {
				t.Fatalf("DegradedCampaigns = %d, want 1", coord.DegradedCampaigns())
			}
		})
	}
}

// TestGoldenChaosEquivalence is the acceptance-criteria golden test: two
// workers, one killed mid-campaign, one response duplicated, and the
// distributed archive must still be byte-identical to local Collect.
func TestGoldenChaosEquivalence(t *testing.T) {
	// Not shrunk in -short mode: the kill choreography needs four jobs so
	// that each worker slot pulls exactly one and the doomed worker
	// deterministically sees a second request after its allowed run.
	n := 4
	local, err := core.Collect(context.Background(), hw.Platform(), campaignOpts(n))
	if err != nil {
		t.Fatal(err)
	}

	// Worker 2 dies after one successful run; the coordinator must bench
	// it and finish on worker 1 (or locally).
	kill := &KillSwitch{After: 1}
	w1 := startWorker(t, nil)
	w2 := startWorker(t, func(h http.Handler) http.Handler {
		kill.Handler = h
		return kill
	})
	// One duplicated response: the job executes twice, the campaign must
	// record it once.
	chaos := &Chaos{Seed: 7, DuplicateProb: 1, MaxFaults: 1}
	reg := obs.NewRegistry()
	coord := NewCoordinator(CoordinatorConfig{
		Workers:     []string{w1.URL, w2.URL},
		Client:      &http.Client{Transport: chaos},
		RunTimeout:  time.Minute,
		BackoffBase: time.Millisecond,
		Registry:    reg,
	})
	dist, err := coord.Collect(context.Background(), hw.Platform(), campaignOpts(n))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(archiveBytes(t, dist), archiveBytes(t, local)) {
		t.Fatal("chaotic distributed archive differs from local")
	}
	if chaos.Duplicates() != 1 {
		t.Fatalf("chaos injected %d duplicates, want 1", chaos.Duplicates())
	}
	if !kill.Dead() {
		t.Fatal("kill switch never tripped")
	}
}

// TestCorruptPayloadRetried pins the digest check: a corrupted-in-flight
// payload must be rejected and the job retried to success, never recorded.
func TestCorruptPayloadRetried(t *testing.T) {
	n := campaignSize(t)
	local, err := core.Collect(context.Background(), hw.Platform(), campaignOpts(n))
	if err != nil {
		t.Fatal(err)
	}
	chaos := &Chaos{Seed: 3, CorruptProb: 1, MaxFaults: 2}
	reg := obs.NewRegistry()
	coord := NewCoordinator(CoordinatorConfig{
		Workers:     []string{startWorker(t, nil).URL},
		Client:      &http.Client{Transport: chaos},
		BackoffBase: time.Millisecond,
		Registry:    reg,
	})
	dist, err := coord.Collect(context.Background(), hw.Platform(), campaignOpts(n))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(archiveBytes(t, dist), archiveBytes(t, local)) {
		t.Fatal("archive differs after corruption retries")
	}
	if chaos.Corrupts() == 0 {
		t.Fatal("chaos never corrupted a payload")
	}
	snap := reg.Snapshot()
	if snap[`gemstone_dist_retries_total`] < float64(chaos.Corrupts()) {
		t.Fatalf("retries %v < corruptions %d", snap[`gemstone_dist_retries_total`], chaos.Corrupts())
	}
	if snap[`gemstone_dist_http_errors_total{kind="digest"}`] == 0 {
		t.Fatal("digest-mismatch errors not counted")
	}
}

// TestDroppedResponseReassigned pins lease-style reassignment: the worker
// executes the job but the response is lost; the retry must succeed and
// the extra execution must not double-record.
func TestDroppedResponseReassigned(t *testing.T) {
	n := campaignSize(t)
	chaos := &Chaos{Seed: 5, DropProb: 1, MaxFaults: 1}
	coord := NewCoordinator(CoordinatorConfig{
		Workers:     []string{startWorker(t, nil).URL},
		Client:      &http.Client{Transport: chaos},
		BackoffBase: time.Millisecond,
	})
	rs, err := coord.Collect(context.Background(), hw.Platform(), campaignOpts(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Runs) != n {
		t.Fatalf("recorded %d runs, want %d", len(rs.Runs), n)
	}
	if chaos.Drops() != 1 {
		t.Fatalf("chaos dropped %d responses, want 1", chaos.Drops())
	}
}

// TestSimulationErrorIsTerminal pins the 422 path: a deterministic
// simulation failure must fail the campaign without retries, and the error
// chain must expose core.RunError.
func TestSimulationErrorIsTerminal(t *testing.T) {
	opt := campaignOpts(2)
	opt.Freqs = map[string][]int{hw.ClusterA15: {123}} // not a real DVFS point
	reg := obs.NewRegistry()
	coord := NewCoordinator(CoordinatorConfig{
		Workers:  []string{startWorker(t, nil).URL},
		Registry: reg,
	})
	_, err := coord.Collect(context.Background(), hw.Platform(), opt)
	if err == nil {
		t.Fatal("expected a campaign failure")
	}
	var ce *core.CollectError
	if !errors.As(err, &ce) || len(ce.Failed) == 0 {
		t.Fatalf("error %v is not a CollectError with failures", err)
	}
	var re core.RunError
	if !errors.As(err, &re) {
		t.Fatalf("errors.As(RunError) failed on %v", err)
	}
	if reg.Snapshot()[`gemstone_dist_retries_total`] != 0 {
		t.Fatal("terminal failure was retried")
	}
}

// TestCancellationCause pins context.Cause propagation through the
// distributed path.
func TestCancellationCause(t *testing.T) {
	why := errors.New("operator aborted")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(why)
	coord := NewCoordinator(CoordinatorConfig{
		Workers: []string{startWorker(t, nil).URL},
	})
	_, err := coord.Collect(ctx, hw.Platform(), campaignOpts(2))
	if err == nil {
		t.Fatal("expected a cancelled campaign to error")
	}
	if !errors.Is(err, why) {
		t.Fatalf("errors.Is(err, cause) = false; err = %v", err)
	}
}

// TestCacheIntegration pins that the coordinator shares the content-
// addressed cache contract: a second campaign over the same cache is all
// hits and touches no worker.
func TestCacheIntegration(t *testing.T) {
	n := campaignSize(t)
	worker := NewWorker(WorkerConfig{MaxParallel: 2})
	srv := httptest.NewServer(worker.Handler())
	t.Cleanup(srv.Close)

	opt := campaignOpts(n)
	opt.Cache = core.NewMemoryCache(0)
	coord := NewCoordinator(CoordinatorConfig{Workers: []string{srv.URL}})
	first, err := coord.Collect(context.Background(), hw.Platform(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ranAfterFirst := worker.Runs()
	if ranAfterFirst != int64(n) {
		t.Fatalf("worker ran %d jobs, want %d", ranAfterFirst, n)
	}
	second, err := coord.Collect(context.Background(), hw.Platform(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if worker.Runs() != ranAfterFirst {
		t.Fatal("warm-cache campaign reached the worker")
	}
	if !bytes.Equal(archiveBytes(t, first), archiveBytes(t, second)) {
		t.Fatal("cached archive differs")
	}
}

// TestWorkerRejectsMismatches pins the worker's 409 discipline for
// protocol and fingerprint skew.
func TestWorkerRejectsMismatches(t *testing.T) {
	srv := startWorker(t, nil)
	pl := hw.Platform()
	prof := workload.Validation()[0]
	spec, _ := SpecFor(pl)

	post := func(job Job) int {
		t.Helper()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(job); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+PathRun, contentType, &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	good := Job{Proto: ProtoVersion, ID: "x", Spec: spec,
		PlatformFP: pl.Config().Fingerprint(), Profile: prof,
		Cluster: hw.ClusterA15, FreqMHz: 1000}

	badProto := good
	badProto.Proto = ProtoVersion + 1
	if got := post(badProto); got != http.StatusConflict {
		t.Fatalf("version skew: status %d, want 409", got)
	}
	badFP := good
	badFP.PlatformFP = "not-a-fingerprint"
	if got := post(badFP); got != http.StatusConflict {
		t.Fatalf("fingerprint skew: status %d, want 409", got)
	}
	if resp, err := http.Get(srv.URL + PathRun); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET run: status %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if got := post(good); got != http.StatusOK {
		t.Fatalf("well-formed job: status %d, want 200", got)
	}
}

// TestRecordAbsorbsDuplicate unit-tests the idempotence guard directly: a
// second completion of the same job must be discarded and counted, not
// double-finish the campaign.
func TestRecordAbsorbsDuplicate(t *testing.T) {
	pl := hw.Platform()
	opt := campaignOpts(1)
	jobs, err := core.PlanCampaign(pl, &opt)
	if err != nil {
		t.Fatal(err)
	}
	cp := &campaign{
		c:       NewCoordinator(CoordinatorConfig{}),
		ctx:     context.Background(),
		pl:      pl,
		opt:     &opt,
		jobs:    jobs,
		ids:     []string{"job-0"},
		done:    make(chan struct{}),
		runs:    make(map[core.RunKey]platform.Measurement),
		started: make([]bool, 1),
	}
	cp.remaining.Store(1)
	var m platform.Measurement
	cp.record(0, m, 0, "remote")
	select {
	case <-cp.done:
	default:
		t.Fatal("first record did not finish the campaign")
	}
	cp.record(0, m, 0, "remote") // late duplicate: must not re-close done
	if cp.dups.Load() != 1 {
		t.Fatalf("duplicates = %d, want 1", cp.dups.Load())
	}
	if cp.remote.Load() != 1 {
		t.Fatalf("remote completions = %d, want 1", cp.remote.Load())
	}
}

// TestHelloProbe pins the registration surface.
func TestHelloProbe(t *testing.T) {
	w := NewWorker(WorkerConfig{MaxParallel: 3})
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + PathHello)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), contentType) {
		t.Fatalf("content type %q", resp.Header.Get("Content-Type"))
	}
	var h Hello
	if err := gob.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Proto != ProtoVersion || h.Capacity != 3 || h.Runs != 0 {
		t.Fatalf("hello = %+v", h)
	}
}
