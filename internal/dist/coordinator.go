package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/xrand"
)

// CoordinatorConfig tunes a Coordinator. The zero value of every field is
// usable: no workers means every campaign runs locally.
type CoordinatorConfig struct {
	// Workers lists worker base addresses ("host:port" or a full URL).
	Workers []string
	// Client issues all worker HTTP requests. Tests install a Chaos
	// transport here; nil means a private default client.
	Client *http.Client
	// ProbeTimeout bounds the per-worker hello probe; 0 means 5s.
	ProbeTimeout time.Duration
	// RunTimeout is the job lease: a dispatched job that has not answered
	// within it is reassigned. 0 means 2 minutes.
	RunTimeout time.Duration
	// MaxAttempts bounds remote attempts per job before the coordinator
	// simulates it locally. 0 means 3.
	MaxAttempts int
	// BackoffBase and BackoffMax shape retry delays: attempt n waits
	// BackoffBase<<(n-1), capped at BackoffMax, jittered ±50%. Zero means
	// 50ms base, 2s cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the deterministic jitter source; 0 means 1.
	Seed uint64
	// Registry, when non-nil, receives gemstone_dist_* metrics.
	Registry *obs.Registry
	// Log, when non-nil, receives coordinator logging.
	Log *slog.Logger
}

// WorkerStats is the per-worker provenance a coordinator accumulates
// across campaigns, recorded into the run ledger manifest.
type WorkerStats struct {
	// Addr is the worker's base URL.
	Addr string `json:"addr"`
	// Capacity is the parallelism the worker advertised at probe time.
	Capacity int `json:"capacity"`
	// Jobs counts measurements this worker contributed.
	Jobs int `json:"jobs"`
	// Retries counts failed attempts against this worker.
	Retries int `json:"retries"`
	// Alive reports whether the worker was healthy after its last campaign.
	Alive bool `json:"alive"`
}

// LeaseKey identifies one in-flight job assignment. Leases are keyed by
// (campaign, job), never by job alone: concurrent campaigns may schedule
// the identical content-addressed job (same platform, workload and DVFS
// point — hence the same ID) at the same time, and each campaign's lease
// must expire and reassign independently of the other's.
type LeaseKey struct {
	// Campaign is the campaign the assignment belongs to (see
	// CollectNamed).
	Campaign string
	// Job is the content-addressed job ID (the run-cache key).
	Job string
}

// Lease records one in-flight job assignment.
type Lease struct {
	// Worker is the base URL of the worker holding the job.
	Worker string
	// Expires is when the lease times out and the job is reassigned.
	Expires time.Time
}

// Coordinator shards campaigns across remote workers. It is safe for
// concurrent campaigns over one shared fleet: each worker's advertised
// capacity is enforced by a shared slot pool (a campaign never opens
// request slots the fleet does not have), the lease table is keyed by
// (campaign, job) so identical jobs in overlapping campaigns cannot
// collide, and worker provenance accumulates across campaigns for the
// ledger.
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client
	log    *slog.Logger

	// Metrics are nil when no Registry was configured; every use is
	// nil-guarded so a bare Coordinator stays allocation-free on the
	// metrics path.
	mWorkerUp   *obs.Gauge
	mInflight   *obs.Gauge
	mQueue      *obs.Gauge
	mRetries    *obs.Counter
	mJobs       *obs.Counter
	mHTTPErrors *obs.Counter
	mDuplicates *obs.Counter

	// seq names anonymous campaigns (Collect without CollectNamed).
	seq atomic.Int64

	mu       sync.Mutex
	leases   map[LeaseKey]Lease
	stats    map[string]*WorkerStats
	slots    map[string]*slotPool
	degraded int
}

// slotPool bounds the coordinator-side request slots of one worker across
// every concurrent campaign. The limit is the worker's advertised
// parallelism: holding a slot is holding the right to have one request
// in flight against that worker. It is a resizable counting semaphore
// rather than a buffered channel so that when a restarted worker comes
// back advertising different parallelism the limit adjusts in place:
// slots held by campaigns probed under the old capacity keep counting
// against the new limit, and the fleet can never exceed the worker's
// current advertised capacity — not even transiently across old and new
// campaigns together.
type slotPool struct {
	mu    sync.Mutex
	limit int
	held  int
	wake  chan struct{} // closed and replaced whenever a slot may have freed
}

func newSlotPool(limit int) *slotPool {
	return &slotPool{limit: limit, wake: make(chan struct{})}
}

// acquire blocks until a slot is free or either cancel channel is
// closed, reporting whether the slot was taken.
func (sp *slotPool) acquire(cancelA, cancelB <-chan struct{}) bool {
	for {
		sp.mu.Lock()
		if sp.held < sp.limit {
			sp.held++
			sp.mu.Unlock()
			return true
		}
		wake := sp.wake
		sp.mu.Unlock()
		select {
		case <-wake:
		case <-cancelA:
			return false
		case <-cancelB:
			return false
		}
	}
}

// release returns a slot and wakes every waiter (each re-checks under
// the lock, so a spurious wake-up costs one loop iteration, never a
// slot).
func (sp *slotPool) release() {
	sp.mu.Lock()
	sp.held--
	close(sp.wake)
	sp.wake = make(chan struct{})
	sp.mu.Unlock()
}

// setLimit adjusts the pool's capacity in place. Growing wakes waiters;
// shrinking below the held count revokes nothing — in-flight requests
// finish, and new acquisitions wait until enough slots release.
func (sp *slotPool) setLimit(limit int) {
	sp.mu.Lock()
	if limit != sp.limit {
		sp.limit = limit
		close(sp.wake)
		sp.wake = make(chan struct{})
	}
	sp.mu.Unlock()
}

// NewCoordinator builds a coordinator.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 5 * time.Second
	}
	if cfg.RunTimeout <= 0 {
		cfg.RunTimeout = 2 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	c := &Coordinator{
		cfg:    cfg,
		client: cfg.Client,
		log:    cfg.Log,
		leases: make(map[LeaseKey]Lease),
		stats:  make(map[string]*WorkerStats),
		slots:  make(map[string]*slotPool),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if reg := cfg.Registry; reg != nil {
		c.mWorkerUp = reg.Gauge("gemstone_dist_worker_up",
			"Worker health: 1 when the last probe or request succeeded.", "worker")
		c.mInflight = reg.Gauge("gemstone_dist_inflight_leases",
			"Jobs currently leased to remote workers.")
		c.mQueue = reg.Gauge("gemstone_dist_queue_depth",
			"Jobs waiting for a worker slot.")
		c.mRetries = reg.Counter("gemstone_dist_retries_total",
			"Remote job attempts that failed and were rescheduled.")
		c.mJobs = reg.Counter("gemstone_dist_jobs_total",
			"Jobs finished, by execution mode.", "mode")
		c.mHTTPErrors = reg.Counter("gemstone_dist_http_errors_total",
			"Worker request failures, by kind.", "kind")
		c.mDuplicates = reg.Counter("gemstone_dist_duplicates_total",
			"Responses discarded because the job had already been recorded.")
	}
	return c
}

// WorkerStats reports per-worker provenance accumulated across this
// coordinator's campaigns, sorted by address.
func (c *Coordinator) WorkerStats() []WorkerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStats, 0, len(c.stats))
	for _, ws := range c.stats {
		out = append(out, *ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// DegradedCampaigns counts campaigns that ran fully locally because no
// worker answered the probe (or the platform had no wire spec).
func (c *Coordinator) DegradedCampaigns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// LiveWorkers probes every configured worker right now and reports how
// many answered with a compatible hello. Probe outcomes update the
// cached WorkerStats, so a readiness endpoint calling this keeps the
// fleet snapshot fresh as a side effect. The probe respects ctx as well
// as the configured ProbeTimeout.
func (c *Coordinator) LiveWorkers(ctx context.Context) int {
	return len(c.probe(ctx))
}

// Leases snapshots the in-flight lease table (tests and debugging).
func (c *Coordinator) Leases() map[LeaseKey]Lease {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[LeaseKey]Lease, len(c.leases))
	for k, l := range c.leases {
		out[k] = l
	}
	return out
}

func (c *Coordinator) leaseAcquire(campaign, job, worker string) {
	c.mu.Lock()
	c.leases[LeaseKey{Campaign: campaign, Job: job}] =
		Lease{Worker: worker, Expires: time.Now().Add(c.cfg.RunTimeout)}
	n := len(c.leases)
	c.mu.Unlock()
	if c.mInflight != nil {
		c.mInflight.Set(float64(n))
	}
}

func (c *Coordinator) leaseRelease(campaign, job string) {
	c.mu.Lock()
	delete(c.leases, LeaseKey{Campaign: campaign, Job: job})
	n := len(c.leases)
	c.mu.Unlock()
	if c.mInflight != nil {
		c.mInflight.Set(float64(n))
	}
}

// slotsFor returns the shared slot pool for a worker, resizing it in
// place when the advertised capacity changed (a restarted worker may
// come back with different parallelism). Pool identity is stable for a
// worker's lifetime, so campaigns probed under the old capacity and
// campaigns probed under the new one are counted by the same semaphore.
func (c *Coordinator) slotsFor(base string, capacity int) *slotPool {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sp, ok := c.slots[base]
	if !ok {
		sp = newSlotPool(capacity)
		c.slots[base] = sp
	} else {
		sp.setLimit(capacity)
	}
	return sp
}

func (c *Coordinator) workerStat(addr string) *WorkerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws, ok := c.stats[addr]
	if !ok {
		ws = &WorkerStats{Addr: addr}
		c.stats[addr] = ws
	}
	return ws
}

func (c *Coordinator) logf() *slog.Logger {
	if c.log != nil {
		return c.log
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// workerConn is one probed, healthy worker for the duration of a campaign.
// The alive flag and failure count are per-campaign (a worker benched by
// one campaign's faults is re-probed by the next); the slot pool is the
// fleet-shared capacity semaphore.
type workerConn struct {
	base     string // normalised base URL
	capacity int
	slots    *slotPool // shared across concurrent campaigns
	alive    atomic.Bool
	fails    atomic.Int32 // consecutive request failures
}

// deadAfter is the consecutive-failure count that marks a worker dead for
// the rest of the campaign. Two strikes: a single fault-injected hiccup
// must not bench a healthy worker, but a crashed one fails every request
// and is benched almost immediately.
const deadAfter = 2

func normalizeAddr(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + strings.TrimRight(addr, "/")
}

// noteProbe records a probe outcome in the shared per-worker stats.
// Campaigns probe concurrently, so the write happens under the
// coordinator lock like every other WorkerStats mutation.
func (c *Coordinator) noteProbe(base string, alive bool, capacity int) {
	st := c.workerStat(base)
	c.mu.Lock()
	st.Alive = alive
	if alive {
		st.Capacity = capacity
	}
	c.mu.Unlock()
}

// probe hellos every configured worker and returns the healthy ones.
func (c *Coordinator) probe(ctx context.Context) []*workerConn {
	var conns []*workerConn
	for _, addr := range c.cfg.Workers {
		base := normalizeAddr(addr)
		hello, err := c.hello(ctx, base)
		if err != nil {
			c.logf().Warn("worker probe failed", "worker", base, "err", err)
			if c.mWorkerUp != nil {
				c.mWorkerUp.Set(0, base)
			}
			c.noteProbe(base, false, 0)
			continue
		}
		if hello.Proto != ProtoVersion {
			c.logf().Warn("worker speaks a different protocol",
				"worker", base, "proto", hello.Proto, "want", ProtoVersion)
			if c.mWorkerUp != nil {
				c.mWorkerUp.Set(0, base)
			}
			c.noteProbe(base, false, 0)
			continue
		}
		if c.mWorkerUp != nil {
			c.mWorkerUp.Set(1, base)
		}
		c.noteProbe(base, true, hello.Capacity)
		conn := &workerConn{
			base:     base,
			capacity: hello.Capacity,
			slots:    c.slotsFor(base, hello.Capacity),
		}
		conn.alive.Store(true)
		conns = append(conns, conn)
	}
	return conns
}

func (c *Coordinator) hello(ctx context.Context, base string) (Hello, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+PathHello, nil)
	if err != nil {
		return Hello{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return Hello{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Hello{}, fmt.Errorf("dist: hello: status %s", resp.Status)
	}
	var h Hello
	if err := gob.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Hello{}, fmt.Errorf("dist: decoding hello: %w", err)
	}
	return h, nil
}

// Collect runs a campaign across the configured workers. It is a drop-in
// replacement for core.Collect with the identical result contract: the
// returned RunSet (and its canonical archive bytes) are bit-for-bit what
// a local collection produces. When no worker answers the probe — or the
// platform cannot be named over the wire — it degrades to pure-local
// execution with no error.
//
// opt.Name names the campaign: the name keys the campaign's leases and
// appears in coordinator logging, so a service scheduling concurrent
// campaigns (gemstone serve) can attribute in-flight work to the tenant
// campaign that owns it. Names must be unique among in-flight campaigns;
// an empty Name is auto-assigned.
//
// Collect may be called concurrently: campaigns share the worker fleet
// (per-worker capacity is enforced fleet-wide, so overlapping campaigns
// queue for slots instead of overloading workers).
func (c *Coordinator) Collect(ctx context.Context, pl *platform.Platform, opt core.CollectOptions) (*core.RunSet, error) {
	name := opt.Name
	if name == "" {
		name = fmt.Sprintf("campaign-%d", c.seq.Add(1))
	}
	return c.collectNamed(ctx, name, pl, opt)
}

// CollectNamed is Collect with the campaign name as a parameter — the
// pre-fidelity surface, kept as a thin shim.
//
// Deprecated: set CollectOptions.Name and call Collect.
func (c *Coordinator) CollectNamed(ctx context.Context, name string, pl *platform.Platform, opt core.CollectOptions) (*core.RunSet, error) {
	return c.collectNamed(ctx, name, pl, opt)
}

func (c *Coordinator) collectNamed(ctx context.Context, name string, pl *platform.Platform, opt core.CollectOptions) (*core.RunSet, error) {
	start := time.Now()
	root := opt.Tracer.Start("collect",
		obs.String("platform", pl.Name()), obs.String("campaign", name),
		obs.Bool("distributed", true))
	defer root.End()
	planSpan := root.Child("plan")
	jobs, err := core.PlanCampaign(pl, &opt)
	planSpan.Annotate(obs.Int("jobs", len(jobs)))
	planSpan.End()
	if err != nil {
		return nil, err
	}
	planTime := time.Since(start)

	spec, ok := SpecFor(pl)
	probeSpan := root.Child("probe", obs.Int("workers", len(c.cfg.Workers)))
	conns := c.probe(ctx)
	probeSpan.Annotate(obs.Int("alive", len(conns)))
	probeSpan.End()
	if !ok || len(conns) == 0 {
		reason := "no workers available"
		if !ok {
			reason = "platform has no wire spec"
		}
		c.logf().Info("degrading campaign to local execution",
			"platform", pl.Name(), "reason", reason)
		c.mu.Lock()
		c.degraded++
		c.mu.Unlock()
		// End the distributed root before delegating: the local collector
		// starts its own fully-detailed "collect" root, and this span
		// should cover only the planning and probing that preceded the
		// degradation decision.
		root.Annotate(obs.Bool("degraded", true), obs.String("reason", reason))
		root.End()
		return core.Collect(ctx, pl, opt)
	}

	cp := &campaign{
		c:        c,
		id:       name,
		ctx:      ctx,
		pl:       pl,
		opt:      &opt,
		span:     root,
		jobs:     jobs,
		ids:      make([]string, len(jobs)),
		spec:     spec,
		fp:       pl.Config().Fingerprint(),
		conns:    conns,
		pending:  make(chan int, len(jobs)),
		local:    make(chan int, len(jobs)),
		done:     make(chan struct{}),
		stopCh:   make(chan struct{}),
		runs:     make(map[core.RunKey]platform.Measurement, len(jobs)),
		attempts: make([]int, len(jobs)),
		started:  make([]bool, len(jobs)),
		rng:      xrand.New(c.cfg.Seed),
	}
	for i, j := range jobs {
		if j.CacheKey != "" {
			cp.ids[i] = j.CacheKey
			continue
		}
		id, err := core.CacheKeyFidelity(pl, j.Profile, j.Key.Cluster, j.Key.FreqMHz, opt.Fidelity)
		if err != nil {
			return nil, err
		}
		cp.ids[i] = id
	}
	return cp.run(start, planTime)
}

// campaign is the per-Collect state machine. Job ownership is structural:
// an index lives in exactly one place at a time — the pending channel, the
// local channel, a retry timer, or a dispatch in flight — so the buffered
// channels never block and a job can never run twice concurrently on the
// coordinator's initiative. (Duplicate *responses* — chaos or a worker
// answering after its lease expired — are absorbed by record's idempotence
// guard instead.)
type campaign struct {
	c     *Coordinator
	id    string // lease-table key prefix and log tag
	ctx   context.Context
	pl    *platform.Platform
	opt   *core.CollectOptions
	span  *obs.Span // campaign root; nil-safe like the whole span API
	jobs  []core.PlannedJob
	ids   []string
	spec  PlatformSpec
	fp    string
	conns []*workerConn

	pending chan int
	local   chan int
	done    chan struct{}

	remaining atomic.Int64
	stop      atomic.Bool
	stopCh    chan struct{} // closed by fail; wakes every blocked loop
	stopOnce  sync.Once
	drainOnce sync.Once

	mu      sync.Mutex
	runs    map[core.RunKey]platform.Measurement
	failed  []core.RunError
	started []bool

	attempts []int // guarded by mu

	hits, remote, localRuns, dups atomic.Int64
	simNS, cacheNS                atomic.Int64

	rngMu sync.Mutex
	rng   *xrand.RNG
}

func (cp *campaign) observer() core.CollectObserver { return cp.opt.Observer }

func (cp *campaign) run(start time.Time, planTime time.Duration) (*core.RunSet, error) {
	if obsv := cp.observer(); obsv != nil {
		obsv.CollectStart(cp.pl.Name(), len(cp.jobs))
	}
	cp.remaining.Store(int64(len(cp.jobs)))

	// Cache pass: hits complete immediately, misses queue for dispatch.
	cacheSpan := cp.span.Child("cache-pass")
	for i := range cp.jobs {
		if cp.opt.Cache != nil {
			t0 := time.Now()
			m, ok := cp.opt.Cache.Get(cp.ids[i])
			cp.cacheNS.Add(int64(time.Since(t0)))
			if ok {
				cp.hits.Add(1)
				if cp.c.mJobs != nil {
					cp.c.mJobs.Inc("cache")
				}
				if obsv := cp.observer(); obsv != nil {
					obsv.CacheHit(cp.jobs[i].Key)
				}
				cp.mu.Lock()
				cp.runs[cp.jobs[i].Key] = m
				cp.mu.Unlock()
				cp.finish()
				continue
			}
		}
		cp.pending <- i
	}
	cacheSpan.Annotate(obs.Int64("hits", cp.hits.Load()))
	cacheSpan.End()
	cp.setQueueGauge()

	var wg sync.WaitGroup
	for _, w := range cp.conns {
		for s := 0; s < w.capacity; s++ {
			wg.Add(1)
			go func(w *workerConn, slot int) {
				defer wg.Done()
				cp.workerLoop(w, slot)
			}(w, s)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cp.localLoop()
	}()
	wg.Wait()
	cp.setQueueGauge()

	rs := &core.RunSet{Platform: cp.pl.Name(), Runs: cp.runs}
	cp.mu.Lock()
	failed := cp.failed
	cp.mu.Unlock()
	failedKeys := make(map[core.RunKey]bool, len(failed))
	for _, re := range failed {
		failedKeys[re.Key] = true
	}
	var skipped []core.RunKey
	for _, j := range cp.jobs {
		if _, ok := cp.runs[j.Key]; !ok && !failedKeys[j.Key] {
			skipped = append(skipped, j.Key)
		}
	}

	stats := core.CollectStats{
		Platform:  cp.pl.Name(),
		Jobs:      len(cp.jobs),
		Simulated: int(cp.remote.Load() + cp.localRuns.Load()),
		CacheHits: int(cp.hits.Load()),
		Errors:    len(failed),
		Skipped:   len(skipped),
		PlanTime:  planTime,
		CacheTime: time.Duration(cp.cacheNS.Load()),
		SimTime:   time.Duration(cp.simNS.Load()),
		WallTime:  time.Since(start),
	}
	if obsv := cp.observer(); obsv != nil {
		obsv.CollectDone(stats)
	}
	cp.c.logf().Info("distributed campaign done",
		"campaign", cp.id,
		"platform", stats.Platform, "jobs", stats.Jobs,
		"remote", cp.remote.Load(), "local", cp.localRuns.Load(),
		"cache_hits", stats.CacheHits, "duplicates", cp.dups.Load(),
		"errors", stats.Errors, "wall", stats.WallTime.Round(time.Millisecond).String())

	if len(failed) > 0 || cp.ctx.Err() != nil {
		return nil, &core.CollectError{
			Platform: cp.pl.Name(),
			Failed:   failed,
			Skipped:  skipped,
			Cause:    context.Cause(cp.ctx),
			Partial:  rs,
		}
	}
	return rs, nil
}

func (cp *campaign) setQueueGauge() {
	if cp.c.mQueue != nil {
		cp.c.mQueue.Set(float64(len(cp.pending)))
	}
}

// finish marks one job complete; the last one releases every loop.
func (cp *campaign) finish() {
	if cp.remaining.Add(-1) == 0 {
		close(cp.done)
	}
}

// record stores a measurement exactly once, reporting whether this call
// was the one that stored it. The duplicate guard makes completion
// idempotent: a chaos-duplicated response, or a worker answering after
// its lease expired and the job was reassigned, is counted and discarded
// instead of double-finishing the campaign. Both executions of a
// deterministic job carry identical bits, so dropping either copy
// preserves the equivalence contract — and callers drop the duplicate's
// trace spans on the same signal, so a job never renders twice.
func (cp *campaign) record(i int, m platform.Measurement, simTime time.Duration, mode string) bool {
	key := cp.jobs[i].Key
	cp.mu.Lock()
	if _, dup := cp.runs[key]; dup {
		cp.mu.Unlock()
		cp.dups.Add(1)
		if cp.c.mDuplicates != nil {
			cp.c.mDuplicates.Inc()
		}
		return false
	}
	cp.runs[key] = m
	cp.mu.Unlock()

	switch mode {
	case "remote":
		cp.remote.Add(1)
	case "local":
		cp.localRuns.Add(1)
	}
	if cp.c.mJobs != nil {
		cp.c.mJobs.Inc(mode)
	}
	cp.simNS.Add(int64(simTime))
	if cp.opt.Cache != nil {
		t0 := time.Now()
		cp.opt.Cache.Put(cp.ids[i], m)
		cp.cacheNS.Add(int64(time.Since(t0)))
	}
	if obsv := cp.observer(); obsv != nil {
		obsv.RunDone(key, m, simTime)
	}
	cp.finish()
	return true
}

// fail records a terminal run failure and stops the campaign, mirroring
// core.CollectContext's fail-fast: the remaining jobs become skipped.
func (cp *campaign) fail(i int, err error) {
	re := core.RunError{Key: cp.jobs[i].Key, Err: err}
	cp.mu.Lock()
	cp.failed = append(cp.failed, re)
	cp.mu.Unlock()
	cp.stop.Store(true)
	cp.stopOnce.Do(func() { close(cp.stopCh) })
	if obsv := cp.observer(); obsv != nil {
		obsv.RunError(re.Key, err)
	}
}

// runStartOnce fires the observer's RunStart exactly once per job, however
// many attempts it takes.
func (cp *campaign) runStartOnce(i int) {
	cp.mu.Lock()
	first := !cp.started[i]
	cp.started[i] = true
	cp.mu.Unlock()
	if first {
		if obsv := cp.observer(); obsv != nil {
			obsv.RunStart(cp.jobs[i].Key)
		}
	}
}

func (cp *campaign) aliveWorkers() int {
	n := 0
	for _, w := range cp.conns {
		if w.alive.Load() {
			n++
		}
	}
	return n
}

// workerLoop pulls pending jobs and dispatches them to one worker slot.
// When tracing, the slot owns a root span for the campaign's duration:
// per-dispatch children render on its lane, and the worker's own spans
// (imported under the worker's pid) nest inside the dispatch window.
func (cp *campaign) workerLoop(w *workerConn, slot int) {
	ws := cp.opt.Tracer.Start("slot",
		obs.String("worker", w.base), obs.Int("slot", slot))
	defer ws.End()
	for {
		if cp.stop.Load() || !w.alive.Load() {
			return
		}
		select {
		case <-cp.done:
			return
		case <-cp.stopCh:
			return
		case <-cp.ctx.Done():
			return
		case i := <-cp.pending:
			cp.setQueueGauge()
			if cp.stop.Load() {
				return
			}
			if !w.alive.Load() {
				// This slot was benched while blocked on the queue; hand
				// the job back without burning an attempt.
				cp.reroute(i)
				return
			}
			// Acquire a fleet-shared capacity slot before dispatching:
			// concurrent campaigns contend here, so the worker never sees
			// more in-flight requests than it advertised. The slot is
			// taken only while a job is in hand (never while idling on the
			// queue), so an idle campaign cannot starve a busy one.
			waitSpan := ws.Child("slot-wait")
			if !w.slots.acquire(cp.stopCh, cp.ctx.Done()) {
				waitSpan.End()
				return // campaign is failing or cancelled; i becomes a skipped job
			}
			waitSpan.End()
			cp.dispatch(w, i, ws)
			w.slots.release()
		}
	}
}

// reroute sends a job to another live worker, or to the local lane when
// none remain.
func (cp *campaign) reroute(i int) {
	if cp.aliveWorkers() == 0 {
		cp.local <- i
		return
	}
	cp.pending <- i
	cp.setQueueGauge()
}

// dispatch runs one remote attempt of job i on w and routes the outcome:
// success records, a terminal (simulation) failure stops the campaign, and
// a transport/server failure reschedules with exponential backoff and
// jitter — to any live worker, or locally once attempts are exhausted.
// ws is the slot's trace span (nil when untraced); the dispatch child it
// opens is the local-side window the worker's returned spans are clamped
// into, so a stitched trace nests worker activity inside the dispatch
// that provably contained it.
func (cp *campaign) dispatch(w *workerConn, i int, ws *obs.Span) {
	cp.runStartOnce(i)
	var dspan *obs.Span
	if ws != nil {
		dspan = ws.Child("dispatch", obs.String("job", cp.jobs[i].Key.String()))
	}
	cp.c.leaseAcquire(cp.id, cp.ids[i], w.base)
	m, simSec, batch, err := cp.runRemote(w, i)
	cp.c.leaseRelease(cp.id, cp.ids[i])

	if err == nil {
		w.fails.Store(0)
		st := cp.c.workerStat(w.base)
		cp.c.mu.Lock()
		st.Jobs++
		cp.c.mu.Unlock()
		fresh := cp.record(i, m, time.Duration(simSec*float64(time.Second)), "remote")
		dspan.Annotate(obs.Bool("recorded", fresh))
		dspan.End()
		// Import the worker's spans only for the response that actually
		// recorded: a duplicate completion (chaos, or a worker answering
		// after its lease expired) must not render the job twice.
		if fresh && batch != nil {
			cp.opt.Tracer.ImportProcess("worker "+w.base,
				batch.spans, batch.offset, batch.lo, batch.hi)
		}
		return
	}

	if isTerminal(err) {
		dspan.Annotate(obs.String("error", "terminal"))
		dspan.End()
		cp.fail(i, err)
		return
	}

	// Retryable failure: charge the worker and the job, then reschedule.
	dspan.Annotate(obs.String("error", "retry"))
	dspan.End()
	cp.noteWorkerFailure(w, err)
	if cp.c.mRetries != nil {
		cp.c.mRetries.Inc()
	}
	cp.mu.Lock()
	cp.attempts[i]++
	n := cp.attempts[i]
	cp.mu.Unlock()
	cp.c.logf().Warn("remote attempt failed",
		"campaign", cp.id, "job", cp.jobs[i].Key.String(),
		"worker", w.base, "attempt", n, "err", err)

	if n >= cp.c.cfg.MaxAttempts || cp.aliveWorkers() == 0 {
		cp.local <- i
		return
	}
	delay := cp.backoff(n)
	time.AfterFunc(delay, func() {
		if cp.stop.Load() {
			return
		}
		select {
		case <-cp.done:
			return
		case <-cp.ctx.Done():
			return
		default:
		}
		cp.pending <- i
		cp.setQueueGauge()
	})
}

// noteWorkerFailure charges a failed attempt to w; deadAfter consecutive
// failures bench it for the rest of the campaign. When the last live
// worker is benched, a drainer moves queued jobs to the local lane so
// nothing starves waiting for workers that will never answer.
func (cp *campaign) noteWorkerFailure(w *workerConn, err error) {
	st := cp.c.workerStat(w.base)
	cp.c.mu.Lock()
	st.Retries++
	cp.c.mu.Unlock()
	if w.fails.Add(1) < deadAfter {
		return
	}
	if !w.alive.CompareAndSwap(true, false) {
		return
	}
	if cp.c.mWorkerUp != nil {
		cp.c.mWorkerUp.Set(0, w.base)
	}
	cp.c.mu.Lock()
	st.Alive = false
	cp.c.mu.Unlock()
	cp.c.logf().Warn("worker benched for this campaign", "worker", w.base, "err", err)
	if cp.aliveWorkers() == 0 {
		cp.drainOnce.Do(func() { go cp.drainToLocal() })
	}
}

// drainToLocal forwards every queued job to the local lane once no worker
// remains alive.
func (cp *campaign) drainToLocal() {
	for {
		select {
		case <-cp.done:
			return
		case <-cp.stopCh:
			return
		case <-cp.ctx.Done():
			return
		case i := <-cp.pending:
			if cp.stop.Load() {
				return
			}
			cp.local <- i
		}
	}
}

// localLoop is the coordinator-side fallback lane: jobs whose remote
// attempts are exhausted (or that lost every worker) simulate here on a
// reused SimContext, exactly as a local campaign would.
func (cp *campaign) localLoop() {
	ls := cp.opt.Tracer.Start("local-lane")
	defer ls.End()
	var sim *platform.SimContext // built on first use
	for {
		if cp.stop.Load() {
			return
		}
		select {
		case <-cp.done:
			return
		case <-cp.stopCh:
			return
		case <-cp.ctx.Done():
			return
		case i := <-cp.local:
			if cp.stop.Load() {
				return
			}
			cp.runStartOnce(i)
			if sim == nil {
				sim = platform.NewSimContext(cp.pl)
			}
			j := cp.jobs[i]
			// Attribute strings are built only when tracing (ls non-nil):
			// the key format allocates, and untraced campaigns must stay
			// allocation-free on this path.
			var sp *obs.Span
			if ls != nil {
				sp = ls.Child("simulate", obs.String("key", j.Key.String()))
			}
			t0 := time.Now()
			m, err := sim.RunFidelity(j.Profile, j.Key.Cluster, j.Key.FreqMHz, cp.opt.Fidelity, sp)
			sp.End()
			if err != nil {
				cp.fail(i, err)
				return
			}
			cp.record(i, m, time.Since(t0), "local")
		}
	}
}

// backoff computes the jittered delay before attempt n+1.
func (cp *campaign) backoff(n int) time.Duration {
	d := cp.c.cfg.BackoffBase << (n - 1)
	if d > cp.c.cfg.BackoffMax || d <= 0 {
		d = cp.c.cfg.BackoffMax
	}
	cp.rngMu.Lock()
	f := 0.5 + cp.rng.Float64()
	cp.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// remoteError is a retryable worker-request failure, tagged for the
// gemstone_dist_http_errors_total metric.
type remoteError struct {
	kind string // conn | status | decode | proto | misroute | digest
	err  error
}

func (e *remoteError) Error() string { return fmt.Sprintf("dist: %s: %v", e.kind, e.err) }
func (e *remoteError) Unwrap() error { return e.err }

// simFailedError wraps a worker's 422: the simulation itself failed.
// Deterministic simulations fail everywhere, so this is terminal — the
// campaign stops instead of retrying, matching local Collect.
type simFailedError struct{ msg string }

func (e *simFailedError) Error() string { return e.msg }

func isTerminal(err error) bool {
	var sf *simFailedError
	return errors.As(err, &sf)
}

// workerSpanBatch is one job's worth of worker-side spans plus what the
// coordinator needs to place them on its own timeline: the estimated
// worker-minus-coordinator clock offset and the local dispatch window
// [lo, hi] that provably contains the worker's activity.
type workerSpanBatch struct {
	spans  []obs.SpanRecord
	offset time.Duration
	lo, hi time.Time
}

// runRemote performs one HTTP attempt of job i against w under the lease
// timeout, verifying protocol version, job identity and payload digest
// before trusting the measurement. When the job was traced and the worker
// returned spans, the non-nil batch carries them with a clock-offset
// estimate derived from the exchange's four timestamps (the coordinator's
// send/receive bracket the worker's receive/done, NTP-style):
//
//	offset = ((W0 - t0) + (W1 - t1)) / 2
//
// The symmetric-delay assumption can be off by half the round trip, so
// the importer additionally clamps every span into [t0, t1] — worker
// spans can therefore never escape the dispatch span that contains them,
// whatever the skew (including negative offsets).
func (cp *campaign) runRemote(w *workerConn, i int) (platform.Measurement, float64, *workerSpanBatch, error) {
	j := cp.jobs[i]
	job := Job{
		Proto:      ProtoVersion,
		ID:         cp.ids[i],
		Spec:       cp.spec,
		PlatformFP: cp.fp,
		Profile:    j.Profile,
		Cluster:    j.Key.Cluster,
		FreqMHz:    j.Key.FreqMHz,
		Fidelity:   cp.opt.Fidelity,
	}
	if tc := cp.opt.Trace; tc.Correlated() || cp.opt.Tracer.Enabled() {
		if tc.Campaign == "" {
			tc.Campaign = cp.id
		}
		tc.Job = cp.ids[i]
		tc.Parent = "dispatch"
		tc.Record = cp.opt.Tracer.Enabled()
		job.Trace = tc
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(job); err != nil {
		return platform.Measurement{}, 0, nil, cp.httpErr("encode", err)
	}
	ctx, cancel := context.WithTimeout(cp.ctx, cp.c.cfg.RunTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+PathRun, bytes.NewReader(body.Bytes()))
	if err != nil {
		return platform.Measurement{}, 0, nil, cp.httpErr("encode", err)
	}
	req.Header.Set("Content-Type", contentType)

	sendT := time.Now()
	resp, err := cp.c.client.Do(req)
	if err != nil {
		kind := "conn"
		if ctx.Err() == context.DeadlineExceeded {
			kind = "lease-expired"
		}
		return platform.Measurement{}, 0, nil, cp.httpErr(kind, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	switch resp.StatusCode {
	case http.StatusOK:
		// fall through to decoding
	case http.StatusUnprocessableEntity:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return platform.Measurement{}, 0, nil, &simFailedError{msg: strings.TrimSpace(string(msg))}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return platform.Measurement{}, 0, nil, cp.httpErr("status",
			fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg))))
	}

	var res RunResult
	if err := gob.NewDecoder(resp.Body).Decode(&res); err != nil {
		return platform.Measurement{}, 0, nil, cp.httpErr("decode", err)
	}
	recvT := time.Now()
	if res.Proto != ProtoVersion {
		return platform.Measurement{}, 0, nil, cp.httpErr("proto",
			fmt.Errorf("result protocol %d, want %d", res.Proto, ProtoVersion))
	}
	if res.ID != job.ID {
		return platform.Measurement{}, 0, nil, cp.httpErr("misroute",
			fmt.Errorf("result for %s, want %s", res.ID, job.ID))
	}
	m, err := res.Measurement()
	if err != nil {
		return platform.Measurement{}, 0, nil, cp.httpErr("digest", err)
	}
	var batch *workerSpanBatch
	if len(res.Spans) > 0 && res.RecvUnixNano != 0 && res.DoneUnixNano != 0 {
		w0 := time.Unix(0, res.RecvUnixNano)
		w1 := time.Unix(0, res.DoneUnixNano)
		offset := (w0.Sub(sendT) + w1.Sub(recvT)) / 2
		batch = &workerSpanBatch{spans: res.Spans, offset: offset, lo: sendT, hi: recvT}
	}
	return m, res.SimSeconds, batch, nil
}

func (cp *campaign) httpErr(kind string, err error) error {
	if cp.c.mHTTPErrors != nil {
		cp.c.mHTTPErrors.Inc(kind)
	}
	return &remoteError{kind: kind, err: err}
}
