package dist

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gemstone/internal/xrand"
)

// Chaos is a deterministic fault-injecting http.RoundTripper for the
// coordinator's client. It perturbs only PathRun exchanges (probes pass
// through, so campaigns always start) and draws every fault decision from
// a seeded counter-based RNG, so a given (seed, probabilities, request
// order modulo scheduling) replays the same fault classes. Faults model
// the distributed failure matrix:
//
//   - Drop: the request reaches the worker and executes, but the response
//     never arrives — the "worker did the work, coordinator never heard"
//     case that forces lease-based reassignment and exercises the
//     duplicate-absorption path when the retry also completes.
//   - Duplicate: the same job is executed twice and the coordinator sees
//     the second response — a replayed/late answer. Deterministic jobs
//     make both answers bit-identical; record's idempotence guard must
//     absorb the extra one.
//   - Corrupt: one payload byte is flipped in flight. The digest check
//     must catch it and the coordinator must retry elsewhere.
//   - Delay: the response stalls by Delay, exercising lease timeouts.
//
// MaxFaults bounds total injections so a chaotic test still converges:
// after the budget is spent Chaos is a transparent transport.
type Chaos struct {
	// Transport performs the real exchange; nil means
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Seed seeds the fault RNG; 0 means 1.
	Seed uint64
	// Fault probabilities in [0,1], checked in this order: drop,
	// duplicate, corrupt, delay. At most one fault fires per request.
	DropProb      float64
	DuplicateProb float64
	CorruptProb   float64
	DelayProb     float64
	// Delay is how long a delayed response stalls.
	Delay time.Duration
	// MaxFaults caps injected faults; 0 means unlimited.
	MaxFaults int

	once sync.Once
	mu   sync.Mutex
	rng  *xrand.RNG

	faults     atomic.Int64
	drops      atomic.Int64
	duplicates atomic.Int64
	corrupts   atomic.Int64
	delays     atomic.Int64
}

// Faults reports the total number of injected faults.
func (c *Chaos) Faults() int64 { return c.faults.Load() }

// Drops reports injected response drops.
func (c *Chaos) Drops() int64 { return c.drops.Load() }

// Duplicates reports injected double executions.
func (c *Chaos) Duplicates() int64 { return c.duplicates.Load() }

// Corrupts reports injected payload corruptions.
func (c *Chaos) Corrupts() int64 { return c.corrupts.Load() }

// Delays reports injected response delays.
func (c *Chaos) Delays() int64 { return c.delays.Load() }

func (c *Chaos) transport() http.RoundTripper {
	if c.Transport != nil {
		return c.Transport
	}
	return http.DefaultTransport
}

// roll draws one uniform [0,1) variate from the seeded RNG.
func (c *Chaos) roll() float64 {
	c.once.Do(func() {
		seed := c.Seed
		if seed == 0 {
			seed = 1
		}
		c.rng = xrand.New(seed)
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// budget reserves one fault from MaxFaults; false means the budget is
// spent and the request must pass through untouched.
func (c *Chaos) budget() bool {
	for {
		n := c.faults.Load()
		if c.MaxFaults > 0 && n >= int64(c.MaxFaults) {
			return false
		}
		if c.faults.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// RoundTrip implements http.RoundTripper.
func (c *Chaos) RoundTrip(req *http.Request) (*http.Response, error) {
	if !strings.HasSuffix(req.URL.Path, PathRun) {
		return c.transport().RoundTrip(req)
	}
	roll := c.roll()
	switch {
	case roll < c.DropProb:
		if c.budget() {
			return c.drop(req)
		}
	case roll < c.DropProb+c.DuplicateProb:
		if c.budget() {
			return c.duplicate(req)
		}
	case roll < c.DropProb+c.DuplicateProb+c.CorruptProb:
		if c.budget() {
			return c.corrupt(req)
		}
	case roll < c.DropProb+c.DuplicateProb+c.CorruptProb+c.DelayProb:
		if c.budget() {
			return c.delay(req)
		}
	}
	return c.transport().RoundTrip(req)
}

// drop lets the worker execute the job, then loses the response.
func (c *Chaos) drop(req *http.Request) (*http.Response, error) {
	c.drops.Add(1)
	resp, err := c.transport().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil, fmt.Errorf("chaos: response dropped")
}

// duplicate executes the job twice and returns the second response: the
// coordinator observes one answer, but the work unit ran twice — the wire
// analogue of a worker answering after its lease expired.
func (c *Chaos) duplicate(req *http.Request) (*http.Response, error) {
	if req.GetBody == nil {
		// Cannot replay the body; degrade to a transparent exchange.
		return c.transport().RoundTrip(req)
	}
	c.duplicates.Add(1)
	first, err := c.transport().RoundTrip(req)
	if err == nil {
		_, _ = io.Copy(io.Discard, first.Body)
		first.Body.Close()
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	replay := req.Clone(req.Context())
	replay.Body = body
	return c.transport().RoundTrip(replay)
}

// corrupt flips one byte in the middle half of the response body — the
// region the measurement payload occupies in a gob RunResult. A flip
// drawn over the whole body could land on a byte no integrity check
// covers (the SimSeconds float, or a gob descriptor name whose mangling
// just makes the decoder skip a field), and an undetectable corruption
// exercises nothing; the middle half keeps the fault inside the digested
// payload whatever optional fields pad the frame.
func (c *Chaos) corrupt(req *http.Request) (*http.Response, error) {
	resp, err := c.transport().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if len(payload) > 0 {
		c.corrupts.Add(1)
		c.mu.Lock()
		i := c.rng.Intn(len(payload))
		c.mu.Unlock()
		if len(payload) >= 4 {
			i = len(payload)/4 + i%(len(payload)/2)
		}
		payload[i] ^= 0xff
	}
	resp.Body = io.NopCloser(bytes.NewReader(payload))
	resp.ContentLength = int64(len(payload))
	return resp, nil
}

// delay stalls the response.
func (c *Chaos) delay(req *http.Request) (*http.Response, error) {
	c.delays.Add(1)
	resp, err := c.transport().RoundTrip(req)
	select {
	case <-time.After(c.Delay):
	case <-req.Context().Done():
	}
	return resp, err
}

// KillSwitch wraps a worker handler and kills the worker after it has
// accepted After requests: every request from then on — including ones
// already executing — aborts with a connection reset, which is what a
// coordinator observes when a worker process dies mid-job. Run requests
// only are counted, so probes can't trip the switch.
//
// A KillSwitch can also be driven externally: Kill drops the worker
// immediately (every request — probes included — aborts, exactly like
// a dead process) and Revive brings it back, modelling a supervisor
// restarting the crashed worker at the same address. A chaos soak
// cycles Kill/Revive on a schedule while load runs; the coordinator's
// per-campaign probe picks revived workers back up.
type KillSwitch struct {
	// Handler is the wrapped worker surface.
	Handler http.Handler
	// After is how many run requests succeed before the worker dies.
	After int64

	seen   atomic.Int64
	downed atomic.Bool // externally killed via Kill
}

// Dead reports whether the switch has tripped (by request count or by
// an explicit Kill).
func (k *KillSwitch) Dead() bool { return k.downed.Load() || k.seen.Load() > k.After }

// Kill drops the worker now: every subsequent request, including
// health probes and requests already executing, aborts with a
// connection reset.
func (k *KillSwitch) Kill() { k.downed.Store(true) }

// Revive undoes Kill (the supervisor restarted the process). The
// request-count trigger is unaffected: a switch that tripped via After
// stays dead.
func (k *KillSwitch) Revive() { k.downed.Store(false) }

// ServeHTTP implements http.Handler.
func (k *KillSwitch) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if k.downed.Load() {
		// http.ErrAbortHandler makes the server drop the connection
		// without a response: the client sees io.ErrUnexpectedEOF or a
		// reset, exactly like a crashed process.
		panic(http.ErrAbortHandler)
	}
	if strings.HasSuffix(req.URL.Path, PathRun) {
		if k.seen.Add(1) > k.After {
			panic(http.ErrAbortHandler)
		}
	}
	k.Handler.ServeHTTP(rw, req)
}
