// Package dist distributes a GemStone campaign across machines: a
// coordinator shards the campaign's job list into content-addressed work
// units (the same keys the PR-1 run cache uses) and serves them over HTTP
// to remote workers, which simulate with the batched SimContext path and
// stream measurements back. The paper's workflow (Fig. 1) is
// embarrassingly parallel across (workload x cluster x DVFS) runs, so the
// coordinator's only hard job is fault tolerance: retry with exponential
// backoff and jitter, per-job lease timeouts, reassignment when a worker
// dies mid-job, and graceful degradation to pure-local execution when no
// workers answer. The contract is bit-for-bit equivalence: a distributed
// campaign produces the identical canonical RunSet archive as a local
// core.Collect, including under injected faults (see Chaos).
package dist

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"

	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/workload"
)

// ProtoVersion versions the wire protocol. Coordinator and worker both
// embed it in every message and reject a peer speaking another version —
// a version-skewed worker must never contribute measurements, or the
// bit-for-bit equivalence contract silently breaks.
//
// Additive, behaviour-optional fields do NOT bump the version: gob
// decoders skip stream fields the receiver's struct lacks and zero
// receiver fields the stream lacks, in both directions. The tracing
// fields (Job.Trace, RunResult.Spans/RecvUnixNano/DoneUnixNano) rely on
// exactly that — an old worker simply returns no spans and the
// coordinator's trace shows its dispatch window without worker detail,
// while an old coordinator ignores spans a new worker would have sent.
//
// Version 2 added Job.Fidelity, which is behaviour-REQUIRED: a version-1
// worker would zero the field and silently simulate an atomic job at the
// detailed tier (wrong cost) — or worse, the reverse — so fidelity rode
// a version bump, not gob's skip-and-zero tolerance.
const ProtoVersion = 2

// Wire endpoints (all relative to the worker's base URL).
const (
	// PathHello is the registration/health probe: GET returns a Hello.
	PathHello = "/v1/hello"
	// PathRun accepts one Job (gob body) and returns a RunResult.
	PathRun = "/v1/run"
)

// contentType marks gob-framed request and response bodies.
const contentType = "application/x-gob"

// Hello is the worker's registration/probe response.
type Hello struct {
	// Proto is the worker's protocol version.
	Proto int
	// Capacity is the number of jobs the worker simulates concurrently.
	Capacity int
	// Runs counts the jobs the worker has completed since it started.
	Runs int64
}

// PlatformSpec identifies a platform over the wire. Platforms are code,
// not data — a worker rebuilds the platform from its own binary — so the
// spec names a constructor, and the accompanying fingerprint proves both
// sides built the same configuration.
type PlatformSpec struct {
	// Kind selects the constructor: "hw" (the reference board), "gem5"
	// (a versioned model) or "gem5-defects" (an ablation model).
	Kind string
	// Version is the gem5 model version when Kind is "gem5".
	Version int
	// Defects is the big-cluster defect mask when Kind is "gem5-defects".
	Defects uint64
}

// Platform-spec kinds.
const (
	KindHW          = "hw"
	KindGem5        = "gem5"
	KindGem5Defects = "gem5-defects"
)

// Resolve builds the platform the spec names.
func (s PlatformSpec) Resolve() (*platform.Platform, error) {
	switch s.Kind {
	case KindHW:
		return hw.Platform(), nil
	case KindGem5:
		switch gem5.Version(s.Version) {
		case gem5.V1, gem5.V2:
			return gem5.Platform(gem5.Version(s.Version)), nil
		}
		return nil, fmt.Errorf("dist: unknown gem5 version %d", s.Version)
	case KindGem5Defects:
		if s.Defects > uint64(gem5.AllDefects) {
			return nil, fmt.Errorf("dist: defect mask %#x out of range", s.Defects)
		}
		return gem5.PlatformWithDefects(gem5.Defect(s.Defects)), nil
	}
	return nil, fmt.Errorf("dist: unknown platform kind %q", s.Kind)
}

// SpecFor finds the spec whose constructor reproduces pl, by matching the
// full configuration fingerprint (the same content hash the run cache
// keys on). A platform no spec reproduces — a hand-assembled
// platform.New — reports ok=false, and the coordinator degrades that
// campaign to local execution rather than shipping work it cannot name.
func SpecFor(pl *platform.Platform) (PlatformSpec, bool) {
	fp := pl.Config().Fingerprint()
	if hw.Platform().Config().Fingerprint() == fp {
		return PlatformSpec{Kind: KindHW}, true
	}
	for _, v := range []gem5.Version{gem5.V1, gem5.V2} {
		if gem5.Platform(v).Config().Fingerprint() == fp {
			return PlatformSpec{Kind: KindGem5, Version: int(v)}, true
		}
	}
	// Ablation platforms: the defect mask is a handful of bits, so an
	// exhaustive fingerprint sweep is cheap and runs once per campaign.
	for d := gem5.Defect(0); d <= gem5.AllDefects; d++ {
		if gem5.PlatformWithDefects(d).Config().Fingerprint() == fp {
			return PlatformSpec{Kind: KindGem5Defects, Defects: uint64(d)}, true
		}
	}
	return PlatformSpec{}, false
}

// Job is one work unit: a single (workload, cluster, frequency) run.
type Job struct {
	// Proto is the coordinator's protocol version.
	Proto int
	// ID is the content-addressed work-unit key — core.CacheKey of the
	// run, so the same job always carries the same ID and a cached or
	// duplicated response is attributable to exactly one unit of work.
	ID string
	// Spec names the platform; PlatformFP is the coordinator's
	// Config.Fingerprint, which the worker must reproduce exactly.
	Spec       PlatformSpec
	PlatformFP string
	// Profile, Cluster and FreqMHz describe the run.
	Profile workload.Profile
	Cluster string
	FreqMHz int
	// Fidelity is the simulation tier of the run. It participates in the
	// job ID (tiers are distinct work units) and the worker dispatches on
	// it, which is why it is protocol-version-gated.
	Fidelity platform.Fidelity
	// Trace carries the job's correlation identity (campaign, tenant,
	// job, dispatch parent) and whether the worker should record and
	// return spans. Optional: the zero value is an anonymous, untraced
	// job, which is also what a pre-tracing coordinator sends.
	Trace obs.TraceContext
}

// RunResult is the worker's reply to one Job.
type RunResult struct {
	// Proto is the worker's protocol version.
	Proto int
	// ID echoes the job ID, so a misrouted or stale response can never be
	// recorded under the wrong work unit.
	ID string
	// Payload is the gob-encoded platform.Measurement. gob round-trips
	// float64 bits exactly, which the equivalence contract requires.
	Payload []byte
	// Digest is the SHA-256 of Payload. The coordinator recomputes it on
	// receipt: a corrupted-in-flight payload that still gob-decodes is
	// caught here and retried instead of poisoning the run set.
	Digest [sha256.Size]byte
	// SimSeconds is the worker-side wall time of the simulation, reported
	// so the coordinator's CollectStats aggregate stays meaningful.
	SimSeconds float64
	// Spans are the worker-side spans of this job (request receipt to
	// response encoding), timed on the worker's clock. Empty unless the
	// job asked for recording (Job.Trace.Record) — and always empty from
	// a pre-tracing worker, which this protocol version tolerates.
	Spans []obs.SpanRecord
	// RecvUnixNano and DoneUnixNano bracket the worker's handling on its
	// own clock: request decoded, response about to be written. Together
	// with the coordinator's send/receive times they yield an NTP-style
	// clock-offset estimate used to place Spans on the campaign timeline.
	RecvUnixNano int64
	DoneUnixNano int64
}

// encodeMeasurement frames a measurement as a digested payload.
func encodeMeasurement(m platform.Measurement) ([]byte, [sha256.Size]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, [sha256.Size]byte{}, fmt.Errorf("dist: encoding measurement: %w", err)
	}
	return buf.Bytes(), sha256.Sum256(buf.Bytes()), nil
}

// Measurement verifies the result's digest and decodes the payload.
func (r *RunResult) Measurement() (platform.Measurement, error) {
	if sha256.Sum256(r.Payload) != r.Digest {
		return platform.Measurement{}, fmt.Errorf("dist: result %s: payload digest mismatch", r.ID)
	}
	var m platform.Measurement
	if err := gob.NewDecoder(bytes.NewReader(r.Payload)).Decode(&m); err != nil {
		return platform.Measurement{}, fmt.Errorf("dist: decoding result %s: %w", r.ID, err)
	}
	return m, nil
}
