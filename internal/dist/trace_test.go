package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/hw"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/xrand"
)

// chromeDoc mirrors the Chrome trace-event JSON shape the tracer writes;
// the tests re-parse the exported artifact rather than peeking at tracer
// internals, because the artifact is the contract.
type chromeDoc struct {
	TraceEvents []chromeEv `json:"traceEvents"`
}

type chromeEv struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func (e chromeEv) end() float64 { return e.Ts + e.Dur }

// exportTrace renders and re-parses the tracer's Chrome JSON.
func exportTrace(t *testing.T, tr *obs.Tracer) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	return doc
}

// traceEps absorbs ns→µs float conversion rounding in interval checks.
const traceEps = 0.01 // microseconds

// spans returns the "X" (complete) events of a document.
func (d chromeDoc) spans() []chromeEv {
	var out []chromeEv
	for _, ev := range d.TraceEvents {
		if ev.Ph == "X" {
			out = append(out, ev)
		}
	}
	return out
}

// validateNesting asserts that within every (pid, tid) lane any two
// spans are either disjoint or properly nested — a partial overlap means
// the merge produced a timeline no viewer can render truthfully.
func validateNesting(t *testing.T, doc chromeDoc) {
	t.Helper()
	type lane struct{ pid, tid int }
	byLane := map[lane][]chromeEv{}
	for _, ev := range doc.spans() {
		k := lane{ev.Pid, ev.Tid}
		byLane[k] = append(byLane[k], ev)
	}
	for k, evs := range byLane {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				a, b := evs[i], evs[j]
				disjoint := b.Ts >= a.end()-traceEps
				nested := b.Ts >= a.Ts-traceEps && b.end() <= a.end()+traceEps
				if !disjoint && !nested {
					t.Errorf("pid %d tid %d: %q [%.1f,%.1f] partially overlaps %q [%.1f,%.1f]",
						k.pid, k.tid, a.Name, a.Ts, a.end(), b.Name, b.Ts, b.end())
				}
			}
		}
	}
}

// validateWorkerContainment asserts every remote-process span lies
// inside the local campaign root span AND inside some coordinator-side
// dispatch span — i.e. worker activity is never orphaned outside the
// exchange that provably contained it.
func validateWorkerContainment(t *testing.T, doc chromeDoc, rootName string) {
	t.Helper()
	var root *chromeEv
	var dispatches []chromeEv
	for _, ev := range doc.spans() {
		if ev.Pid != 1 {
			continue
		}
		ev := ev
		if ev.Name == rootName && root == nil {
			root = &ev
		}
		if ev.Name == "dispatch" {
			dispatches = append(dispatches, ev)
		}
	}
	if root == nil {
		t.Fatalf("no %q root span on pid 1", rootName)
	}
	for _, ev := range doc.spans() {
		if ev.Pid == 1 {
			continue
		}
		if ev.Ts < root.Ts-traceEps || ev.end() > root.end()+traceEps {
			t.Errorf("worker span %q (pid %d) [%.1f,%.1f] escapes root %q [%.1f,%.1f]",
				ev.Name, ev.Pid, ev.Ts, ev.end(), root.Name, root.Ts, root.end())
		}
		contained := false
		for _, d := range dispatches {
			if ev.Ts >= d.Ts-traceEps && ev.end() <= d.end()+traceEps {
				contained = true
				break
			}
		}
		if !contained {
			t.Errorf("worker span %q (pid %d) [%.1f,%.1f] is orphaned outside every dispatch span",
				ev.Name, ev.Pid, ev.Ts, ev.end())
		}
	}
}

// startWorkerCap is startWorker with explicit parallelism and an
// optional clock override.
func startWorkerCap(t *testing.T, par int, clock func() time.Time, wrap func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	w := NewWorker(WorkerConfig{MaxParallel: par})
	w.clock = clock
	h := http.Handler(w.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// TestFleetTraceStitching is the tentpole's acceptance test: a
// distributed campaign over two real worker processes produces one
// Chrome trace whose spans come from >= 2 worker pids, each correctly
// nested under the campaign span and its dispatch window. A barrier on
// the workers' run handlers holds the first job on each until both
// workers have one, so both provably contribute.
func TestFleetTraceStitching(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	both := make(chan struct{})
	barrier := func(name string) func(http.Handler) http.Handler {
		return func(h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasSuffix(r.URL.Path, PathRun) {
					mu.Lock()
					if !seen[name] {
						seen[name] = true
						if len(seen) == 2 {
							close(both)
						}
					}
					mu.Unlock()
					select {
					case <-both:
					case <-time.After(30 * time.Second):
						t.Error("barrier timeout: a worker never saw a job")
					}
				}
				h.ServeHTTP(w, r)
			})
		}
	}
	// Capacity 1 per worker: exactly one coordinator slot loop per
	// worker, so the two pending jobs split one per worker and the
	// barrier cannot deadlock.
	w1 := startWorkerCap(t, 1, nil, barrier("w1"))
	w2 := startWorkerCap(t, 1, nil, barrier("w2"))

	coord := NewCoordinator(CoordinatorConfig{Workers: []string{w1.URL, w2.URL}})
	tr := obs.NewTracer()
	opt := campaignOpts(2)
	opt.Tracer = tr
	opt.Trace = obs.TraceContext{Campaign: "trace-test", Tenant: "acme"}
	rs, err := coord.CollectNamed(context.Background(), "trace-test", hw.Platform(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Runs) != 2 {
		t.Fatalf("campaign recorded %d runs, want 2", len(rs.Runs))
	}

	doc := exportTrace(t, tr)
	validateNesting(t, doc)
	validateWorkerContainment(t, doc, "collect")

	// Process metadata: the coordinator plus one named process per worker.
	procs := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Pid], _ = ev.Args["name"].(string)
		}
	}
	if procs[1] != "coordinator" {
		t.Errorf("pid 1 named %q, want coordinator", procs[1])
	}

	// Spans from >= 2 distinct worker processes, each with a "job" root
	// correlated to the campaign and a nested "simulate" phase.
	jobByPid := map[int]chromeEv{}
	simByPid := map[int]chromeEv{}
	for _, ev := range doc.spans() {
		if ev.Pid == 1 {
			continue
		}
		switch ev.Name {
		case "job":
			jobByPid[ev.Pid] = ev
		case "simulate":
			simByPid[ev.Pid] = ev
		}
	}
	if len(jobByPid) < 2 {
		t.Fatalf("job spans from %d worker processes, want >= 2", len(jobByPid))
	}
	for pid, job := range jobByPid {
		if name := procs[pid]; !strings.HasPrefix(name, "worker ") {
			t.Errorf("pid %d named %q, want a worker process name", pid, name)
		}
		if got, _ := job.Args["campaign"].(string); got != "trace-test" {
			t.Errorf("pid %d job campaign = %q, want trace-test", pid, got)
		}
		if got, _ := job.Args["tenant"].(string); got != "acme" {
			t.Errorf("pid %d job tenant = %q, want acme", pid, got)
		}
		sim, ok := simByPid[pid]
		if !ok {
			t.Errorf("pid %d has no simulate span", pid)
			continue
		}
		if sim.Ts < job.Ts-traceEps || sim.end() > job.end()+traceEps {
			t.Errorf("pid %d simulate [%.1f,%.1f] not nested in job [%.1f,%.1f]",
				pid, sim.Ts, sim.end(), job.Ts, job.end())
		}
	}
}

// TestTraceClockSkewNegativeOffset runs a worker whose clock is far
// behind the coordinator's: without the NTP-style offset correction its
// spans would land seconds before the campaign even started. The merged
// trace must keep every worker span inside the local dispatch windows.
func TestTraceClockSkewNegativeOffset(t *testing.T) {
	skews := []time.Duration{-90 * time.Second, 90 * time.Second}
	for _, skew := range skews {
		skew := skew
		t.Run(fmt.Sprintf("skew=%v", skew), func(t *testing.T) {
			srv := startWorkerCap(t, 2, func() time.Time { return time.Now().Add(skew) }, nil)
			coord := NewCoordinator(CoordinatorConfig{Workers: []string{srv.URL}})
			tr := obs.NewTracer()
			opt := campaignOpts(2)
			opt.Tracer = tr
			if _, err := coord.CollectNamed(context.Background(), "skew-test", hw.Platform(), opt); err != nil {
				t.Fatal(err)
			}

			doc := exportTrace(t, tr)
			validateNesting(t, doc)
			validateWorkerContainment(t, doc, "collect")
			workerSpans := 0
			for _, ev := range doc.spans() {
				if ev.Pid != 1 {
					workerSpans++
					if ev.Ts < -traceEps {
						t.Errorf("span %q starts before the trace epoch (Ts=%.1f)", ev.Name, ev.Ts)
					}
				}
			}
			if workerSpans == 0 {
				t.Fatal("no worker spans imported")
			}
		})
	}
}

// TestTraceKillSwitchNoOrphans kills the only worker after one job: the
// remaining jobs retry and drain to the local lane. The merged trace
// must stay well-formed — no orphaned worker spans, no partial overlap,
// and at most one worker-side job span per completed job.
func TestTraceKillSwitchNoOrphans(t *testing.T) {
	kill := &KillSwitch{After: 1}
	srv := startWorkerCap(t, 1, nil, func(h http.Handler) http.Handler {
		kill.Handler = h
		return kill
	})
	coord := NewCoordinator(CoordinatorConfig{
		Workers:     []string{srv.URL},
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})
	tr := obs.NewTracer()
	opt := campaignOpts(2)
	opt.Tracer = tr
	rs, err := coord.CollectNamed(context.Background(), "kill-test", hw.Platform(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Runs) != 2 {
		t.Fatalf("campaign recorded %d runs, want 2", len(rs.Runs))
	}
	if !kill.Dead() {
		t.Fatal("kill switch never tripped")
	}

	doc := exportTrace(t, tr)
	validateNesting(t, doc)
	validateWorkerContainment(t, doc, "collect")
	jobs := 0
	for _, ev := range doc.spans() {
		if ev.Pid != 1 && ev.Name == "job" {
			jobs++
		}
	}
	if jobs > 1 {
		t.Errorf("%d worker job spans survived a single successful remote job", jobs)
	}
	// The drained jobs simulated locally: their spans render on the
	// coordinator's local lane.
	locals := 0
	for _, ev := range doc.spans() {
		if ev.Pid == 1 && ev.Name == "simulate" {
			locals++
		}
	}
	if locals == 0 {
		t.Error("no local-lane simulate spans after the worker died")
	}
}

// TestTraceDuplicateCompletionImportsOnce dispatches the same job twice
// (a worker answering after its lease expired looks exactly like this):
// the second completion is absorbed by record's idempotence guard and
// its spans must NOT be imported — the job renders exactly once.
func TestTraceDuplicateCompletionImportsOnce(t *testing.T) {
	srv := startWorkerCap(t, 2, nil, nil)
	coord := NewCoordinator(CoordinatorConfig{Workers: []string{srv.URL}})
	conns := coord.probe(context.Background())
	if len(conns) != 1 {
		t.Fatalf("probe found %d workers", len(conns))
	}

	pl := hw.Platform()
	opt := campaignOpts(1)
	tr := obs.NewTracer()
	opt.Tracer = tr
	jobs, err := core.PlanCampaign(pl, &opt)
	if err != nil {
		t.Fatal(err)
	}
	id, err := core.CacheKey(pl, jobs[0].Profile, jobs[0].Key.Cluster, jobs[0].Key.FreqMHz)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := SpecFor(pl)
	if !ok {
		t.Fatal("no spec for hw platform")
	}
	cp := &campaign{
		c:        coord,
		id:       "dup-test",
		ctx:      context.Background(),
		pl:       pl,
		opt:      &opt,
		jobs:     jobs,
		ids:      []string{id},
		spec:     spec,
		fp:       pl.Config().Fingerprint(),
		conns:    conns,
		pending:  make(chan int, 1),
		local:    make(chan int, 1),
		done:     make(chan struct{}),
		stopCh:   make(chan struct{}),
		runs:     make(map[core.RunKey]platform.Measurement, 1),
		attempts: make([]int, 1),
		started:  make([]bool, 1),
		rng:      xrand.New(1),
	}
	cp.remaining.Store(1)

	ws := tr.Start("slot", obs.String("worker", conns[0].base), obs.Int("slot", 0))
	cp.dispatch(conns[0], 0, ws)
	cp.dispatch(conns[0], 0, ws) // the duplicate completion
	ws.End()

	if cp.dups.Load() != 1 {
		t.Fatalf("duplicates = %d, want 1", cp.dups.Load())
	}
	jobSpans, dispatchSpans := 0, 0
	for _, ev := range tr.Events() {
		switch {
		case ev.Proc != 0 && ev.Name == "job":
			jobSpans++
		case ev.Proc == 0 && ev.Name == "dispatch":
			dispatchSpans++
		}
	}
	if jobSpans != 1 {
		t.Errorf("imported %d worker job spans, want exactly 1", jobSpans)
	}
	if dispatchSpans != 2 {
		t.Errorf("recorded %d dispatch spans, want 2 (both attempts)", dispatchSpans)
	}
}

// TestTraceOverheadSmoke is the ≤2% overhead gate, runnable on demand
// (GEMSTONE_TRACE_SMOKE=1; `make trace-smoke` sets it): the same
// two-worker campaign runs untraced and traced, interleaved best-of-5,
// and the traced best must stay within 2% of the untraced best plus a
// small absolute slack that absorbs scheduler noise on sub-second runs.
// Run it WITHOUT -race (the race detector's instrumentation swamps the
// signal); BENCH_obs.json carries the precise steady-state measurement.
func TestTraceOverheadSmoke(t *testing.T) {
	if os.Getenv("GEMSTONE_TRACE_SMOKE") == "" {
		t.Skip("set GEMSTONE_TRACE_SMOKE=1 to run the trace-overhead smoke")
	}
	w1 := startWorker(t, nil)
	w2 := startWorker(t, nil)
	coord := NewCoordinator(CoordinatorConfig{Workers: []string{w1.URL, w2.URL}})

	run := func(traced bool) time.Duration {
		opt := campaignOpts(2)
		if traced {
			opt.Tracer = obs.NewTracer()
		}
		start := time.Now()
		if _, err := coord.Collect(context.Background(), hw.Platform(), opt); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	run(false) // warm worker SimContext pools so neither side pays the cold build
	bestUntraced, bestTraced := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < 5; i++ {
		if d := run(false); d < bestUntraced {
			bestUntraced = d
		}
		if d := run(true); d < bestTraced {
			bestTraced = d
		}
	}
	limit := bestUntraced + bestUntraced/50 + 20*time.Millisecond
	t.Logf("untraced best %v, traced best %v, limit %v", bestUntraced, bestTraced, limit)
	if bestTraced > limit {
		t.Errorf("traced campaign %v exceeds overhead limit %v (untraced %v)",
			bestTraced, limit, bestUntraced)
	}
}
