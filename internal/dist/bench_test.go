package dist

import (
	"context"
	"net/http/httptest"
	"testing"

	"gemstone/internal/hw"
	"gemstone/internal/obs"
)

// benchFleet stands up a two-worker fleet for the campaign benchmarks.
func benchFleet(b *testing.B) *Coordinator {
	b.Helper()
	var urls []string
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(NewWorker(WorkerConfig{MaxParallel: 2}).Handler())
		b.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	return NewCoordinator(CoordinatorConfig{Workers: urls})
}

func benchCampaign(b *testing.B, traced bool) {
	coord := benchFleet(b)
	run := func() {
		opt := campaignOpts(2)
		if traced {
			opt.Tracer = obs.NewTracer()
		}
		if _, err := coord.Collect(context.Background(), hw.Platform(), opt); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm the workers' SimContext pools
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkRemoteCampaign / BenchmarkRemoteCampaignTraced re-measure
// the PR 2 tracing-overhead bar on the distributed path: the traced
// run additionally records four spans per job worker-side, ships them
// back in the JobResult gob, and stitches them clock-offset-adjusted
// into the campaign tracer. The pair is committed as BENCH_trace.json.
func BenchmarkRemoteCampaign(b *testing.B)       { benchCampaign(b, false) }
func BenchmarkRemoteCampaignTraced(b *testing.B) { benchCampaign(b, true) }
