package pipeline

import (
	"testing"

	"gemstone/internal/isa"
)

// These tests pin down the out-of-order model's resource bounds: the
// reorder-buffer window, the retire width and the unpipelined divider.

// missLoads builds n independent loads that always miss to DRAM.
func missLoads(n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{
			PC: 0x1000 + uint64(i)*4, Op: isa.OpLoad,
			Addr: 0x10_0000 + uint64(i)*8192, Size: 4,
			Src1: 1, Src2: 1, Dst: uint8(2 + i%8),
		}
	}
	return insts
}

func TestROBSizeBoundsMemoryParallelism(t *testing.T) {
	// With a larger window, more independent misses overlap, so the run
	// finishes in fewer cycles.
	run := func(rob int) uint64 {
		cfg := oooConfig()
		cfg.ROBSize = rob
		core := newCore(cfg)
		return core.Run(isa.NewSliceStream(missLoads(3000))).Cycles
	}
	small, large := run(8), run(192)
	if large*3/2 >= small {
		t.Fatalf("ROB 192 (%d cy) should be well under ROB 8 (%d cy)", large, small)
	}
}

// residentALU builds independent ALU ops within an L1I-resident loop (PCs
// wrap) so the frontend streams at full bandwidth after warm-up.
func residentALU(n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		r := uint8(2 + i%20)
		insts[i] = isa.Inst{PC: 0x1000 + uint64(i%512)*4, Op: isa.OpIntALU, Src1: r, Src2: r, Dst: r}
	}
	return insts
}

func TestRetireWidthBoundsThroughput(t *testing.T) {
	run := func(rw int) float64 {
		cfg := oooConfig()
		cfg.RetireWidth = rw
		cfg.IssueWidth = 4
		cfg.FetchWidth = 4
		core := newCore(cfg)
		tal := core.Run(isa.NewSliceStream(residentALU(20000)))
		return tal.IPC()
	}
	one := run(1)
	if one > 1.01 {
		t.Fatalf("retire width 1 caps IPC at 1, got %.2f", one)
	}
	three := run(3)
	if three <= 1.5 {
		t.Fatalf("retire width 3 should lift IPC well above 1, got %.2f", three)
	}
}

func TestUnpipelinedDivideOccupiesPort(t *testing.T) {
	// Back-to-back independent divides serialise on the unpipelined
	// divider; independent adds of the same latency would not.
	mk := func(op isa.Op) isa.Stream {
		insts := make([]isa.Inst, 2000)
		for i := range insts {
			r := uint8(2 + i%16)
			insts[i] = isa.Inst{PC: 0x1000 + uint64(i%512)*4, Op: op, Src1: r, Src2: r, Dst: r}
		}
		return isa.NewSliceStream(insts)
	}
	cfg := oooConfig()
	cfg.IssueWidth = 1 // one port: occupancy matters
	cfg.Lat[isa.OpIntDiv] = 12
	cfg.Lat[isa.OpIntMul] = 12 // same latency, but pipelined
	div := newCore(cfg).Run(mk(isa.OpIntDiv)).Cycles
	mul := newCore(cfg).Run(mk(isa.OpIntMul)).Cycles
	if div < mul*4 {
		t.Fatalf("unpipelined divides (%d cy) should be several times pipelined ops (%d cy)", div, mul)
	}
}

func TestFrontendRedirectGatesFetchAfterMispredict(t *testing.T) {
	// A stream of always-mispredicted branches is bound by redirects:
	// doubling MispredictPenalty must increase cycles accordingly.
	mk := func() isa.Stream {
		insts := make([]isa.Inst, 0, 6000)
		for i := 0; i < 3000; i++ {
			taken := i%2 == 0 // alternating, gshare-hostile with PC reuse
			insts = append(insts,
				isa.Inst{PC: 0x1000, Op: isa.OpIntALU, Src1: 1, Src2: 1, Dst: 2},
				isa.Inst{PC: 0x1004, Op: isa.OpBranch, Taken: taken, Target: 0x1000, Src1: 2, Src2: 2, Dst: 31},
			)
		}
		return isa.NewSliceStream(insts)
	}
	run := func(pen int) uint64 {
		cfg := oooConfig()
		cfg.MispredictPenalty = pen
		return newCore(cfg).Run(mk()).Cycles
	}
	lo, hi := run(4), run(24)
	if hi <= lo {
		t.Fatalf("larger mispredict penalty must cost cycles: %d vs %d", lo, hi)
	}
}

func TestOoOTallyStallAttribution(t *testing.T) {
	core := newCore(oooConfig())
	tal := core.Run(isa.NewSliceStream(missLoads(2000)))
	if tal.MemStallCycles == 0 {
		t.Fatal("DRAM-bound run must attribute memory stall cycles")
	}
	if tal.Committed != 2000 {
		t.Fatalf("committed = %d", tal.Committed)
	}
}
