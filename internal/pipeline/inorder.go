package pipeline

import (
	"math/bits"

	"gemstone/internal/isa"
)

// storeBuffer models a small ring of store-buffer slots: a store occupies a
// slot from issue until its write drains to the memory system, and a full
// buffer stalls the pipeline. This is what bounds (but does not eliminate)
// the cost of store misses on both core models.
type storeBuffer struct {
	slots []uint64 // cycle at which each slot drains
	head  int
}

// reset prepares the buffer for a fresh run with n slots, reusing the
// backing array across runs.
func (sb *storeBuffer) reset(n int) {
	if cap(sb.slots) < n {
		sb.slots = make([]uint64, n)
	} else {
		sb.slots = sb.slots[:n]
		clear(sb.slots)
	}
	sb.head = 0
}

// push reserves a slot for a store issued at cycle `start` whose write
// takes drainLat cycles to reach the memory system. It returns the cycle at
// which the pipeline may proceed (start, unless the buffer was full).
func (sb *storeBuffer) push(start uint64, drainLat int) uint64 {
	free := sb.slots[sb.head]
	if free > start {
		start = free // stall until the oldest store drains
	}
	sb.slots[sb.head] = start + uint64(drainLat)
	sb.head++
	if sb.head == len(sb.slots) {
		sb.head = 0
	}
	return start
}

const inOrderStoreBufferSlots = 4

// runInOrder is the stall-on-use in-order model (Cortex-A7 class).
//
// Instructions arrive in blocks (see blockSource): the loop walks a slice
// instead of paying an interface call per instruction, with the scalar
// Next path kept as a contract-equivalent fallback.
func (c *Core) runInOrder(stream isa.Stream) Tally {
	var t Tally
	// Sized 256 for bounds-check-free indexing by uint8 fields; see
	// runOutOfOrder.
	var regReady [256]uint64
	var opCounts [256]uint64

	cycle := uint64(0) // earliest cycle the next instruction may issue
	slots := 0         // instructions already issued this cycle
	fetchReady := uint64(0)
	lastComplete := uint64(0)
	sb := &c.sb
	sb.reset(inOrderStoreBufferSlots)

	// Invariant configuration hoisted out of the loop; see runOutOfOrder
	// for the fetch-group shift.
	fetchBytes := uint64(c.cfg.FetchWidth) * 4
	fetchPow2 := fetchBytes&(fetchBytes-1) == 0
	fetchShift := uint(bits.TrailingZeros64(fetchBytes))
	curGroup := ^uint64(0)
	baseFetchLat := c.Hier.L1I.LatencyCycles()
	fetchPerInst := c.cfg.FetchPerInstruction
	issueWidth := c.cfg.IssueWidth
	redirectPenalty := uint64(c.cfg.FrontendDepth + c.cfg.MispredictPenalty)
	strexRetry := uint64(c.cfg.StrexRetryCycles)
	var latTab [256]uint64
	for op, l := range c.cfg.Lat {
		latTab[op] = uint64(l)
	}

	src := newBlockSource(stream)
	for {
		blk := src.next(c)
		if len(blk) == 0 {
			break
		}
		for bi := range blk {
			in := &blk[bi]

			// Frontend: one I-side access per fetch group; under the gem5
			// defect the lookup repeats per instruction, inflating access
			// counts without affecting timing (the repeats hit the same line).
			group := in.PC >> fetchShift
			if !fetchPow2 {
				group = in.PC / fetchBytes
			}
			if group != curGroup {
				curGroup = group
				t.FetchAccesses++
				lat := c.Hier.FetchAccess(in.PC)
				if extra := lat - baseFetchLat; extra > 0 {
					// Miss beyond the pipelined hit latency stalls delivery.
					nr := cycle + uint64(extra)
					if nr > fetchReady {
						fetchReady = nr
					}
				}
			} else if fetchPerInst {
				t.FetchAccesses++
				c.Hier.FetchAccess(in.PC)
			}

			// Issue: stall-on-use semantics.
			start := cycle
			if fetchReady > start {
				t.FetchStallCycles += fetchReady - start
				start = fetchReady
			}
			if r := regReady[in.Src1]; r > start {
				t.DepStallCycles += r - start
				start = r
			}
			if r := regReady[in.Src2]; r > start {
				t.DepStallCycles += r - start
				start = r
			}
			if start > cycle {
				cycle = start
				slots = 0
			}

			// Execute.
			lat := latTab[in.Op]
			complete := start + lat
			switch in.Op {
			case isa.OpLoad:
				// The dataAccess arms are unrolled into the switch: one
				// dispatch per memory instruction instead of two. The L1D hit
				// latency is part of the load-use latency; misses extend it.
				c.maybeSnoop(in.Addr)
				dlat := c.Hier.LoadAccess(in.Addr, in.Unaligned)
				complete = start + lat + uint64(dlat)
			case isa.OpLoadEx:
				dlat := c.Hier.LoadExclusive(in.Addr)
				complete = start + lat + uint64(dlat)
			case isa.OpStore:
				c.maybeSnoop(in.Addr)
				dlat := c.Hier.StoreAccess(in.Addr, int(in.Size), in.Unaligned)
				st := sb.push(start, dlat)
				if st > start {
					t.MemStallCycles += st - start
					cycle = st
					slots = 0
					complete = st + lat
				}
			case isa.OpStoreEx:
				dlat, failed := c.dataAccess(in)
				st := sb.push(start, dlat)
				if st > start {
					t.MemStallCycles += st - start
					cycle = st
					slots = 0
					complete = st + lat
				}
				if failed { // store-exclusive retry
					t.StrexRetries++
					cycle = complete + strexRetry
					slots = 0
				}
			case isa.OpBarrier:
				c.Hier.Barrier()
				wait := c.barrierWait()
				drainTo := max(cycle, lastComplete) + wait
				t.BarrierStallCycles += drainTo - cycle
				cycle = drainTo
				slots = 0
				complete = cycle
			case isa.OpBranch, isa.OpCall, isa.OpReturn, isa.OpBranchInd:
				correct := c.predict(in)
				if !correct {
					redirect := complete + redirectPenalty
					t.BranchStallCycles += redirect - cycle
					cycle = redirect
					slots = 0
					fetchReady = cycle
					c.chargeWrongPath(&t, in)
					curGroup = ^uint64(0)
				} else if in.Taken {
					// Taken-branch fetch bubble.
					cycle++
					slots = 0
					curGroup = ^uint64(0)
				}
			}

			if complete > lastComplete {
				lastComplete = complete
			}
			if writesDst[in.Op] {
				regReady[in.Dst] = complete
			}

			t.Committed++
			opCounts[in.Op]++

			slots++
			if slots >= issueWidth {
				cycle++
				slots = 0
			}
		}
	}

	for op := range t.OpCounts {
		t.OpCounts[op] = opCounts[op]
	}
	t.Cycles = max(cycle, lastComplete)
	return t
}

// chargeWrongPath models the squashed instructions fetched down a
// mispredicted path: they count as speculative work and pollute the
// instruction-side hierarchy (including the ITLB — the mechanism behind
// the paper's Cluster A finding that gem5 branch mispredictions drive L2
// ITLB traffic).
func (c *Core) chargeWrongPath(t *Tally, in *isa.Inst) {
	// Squash reach: roughly one fetch group enters the pipeline before the
	// redirect propagates. (The paper's Fig. 6 observes only ~1.1x more
	// speculatively executed instructions in the model than on hardware
	// even with 21x the mispredicts, so the per-squash wrong-path depth is
	// small.)
	wrong := uint64(c.cfg.FetchWidth)
	t.WrongPathInsts += wrong

	// The wrong path starts at the predicted (wrong) continuation: for a
	// branch wrongly predicted taken this is the stale BTB target; for one
	// wrongly predicted not-taken it is the fall-through. Either way the
	// frontend touches one or two extra lines there.
	wrongPC := in.PC + 8
	if in.Op == isa.OpBranchInd || in.Op == isa.OpReturn {
		// Wrong indirect targets land far away — often on another page.
		wrongPC = in.Target ^ 0x1740
	} else if !in.Taken {
		wrongPC = in.Target // predicted taken, actually not taken
	}
	line := uint64(c.Hier.L1I.LineBytes())
	for i := uint64(0); i < 2; i++ {
		t.FetchAccesses++
		c.Hier.FetchAccess(wrongPC + i*line)
	}
	// Stale BTB/RAS entries steer a share of wrong paths to far-away
	// addresses; the resulting speculative translation reaches the L2
	// ITLB before the squash. The far page cycles deterministically over
	// a set larger than the L1 ITLB, so this traffic scales with the
	// misprediction count — the coupling Section IV-C exposes.
	farPC := in.PC + (((t.WrongPathInsts/4)&63)+1)*4096
	c.Hier.WrongPathProbe(farPC)
}
