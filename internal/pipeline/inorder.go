package pipeline

import "gemstone/internal/isa"

// storeBuffer models a small ring of store-buffer slots: a store occupies a
// slot from issue until its write drains to the memory system, and a full
// buffer stalls the pipeline. This is what bounds (but does not eliminate)
// the cost of store misses on both core models.
type storeBuffer struct {
	slots []uint64 // cycle at which each slot drains
	head  int
}

func newStoreBuffer(n int) *storeBuffer {
	return &storeBuffer{slots: make([]uint64, n)}
}

// push reserves a slot for a store issued at cycle `start` whose write
// takes drainLat cycles to reach the memory system. It returns the cycle at
// which the pipeline may proceed (start, unless the buffer was full).
func (sb *storeBuffer) push(start uint64, drainLat int) uint64 {
	free := sb.slots[sb.head]
	if free > start {
		start = free // stall until the oldest store drains
	}
	sb.slots[sb.head] = start + uint64(drainLat)
	sb.head = (sb.head + 1) % len(sb.slots)
	return start
}

const inOrderStoreBufferSlots = 4

// runInOrder is the stall-on-use in-order model (Cortex-A7 class).
func (c *Core) runInOrder(stream isa.Stream) Tally {
	var t Tally
	var regReady [isa.NumRegs]uint64

	cycle := uint64(0) // earliest cycle the next instruction may issue
	slots := 0         // instructions already issued this cycle
	fetchReady := uint64(0)
	lastComplete := uint64(0)
	sb := newStoreBuffer(inOrderStoreBufferSlots)

	fetchBytes := uint64(c.cfg.FetchWidth) * 4
	curGroup := ^uint64(0)
	baseFetchLat := c.Hier.L1I.LatencyCycles()

	for {
		in, ok := stream.Next()
		if !ok {
			break
		}

		// Frontend: one I-side access per fetch group; under the gem5
		// defect the lookup repeats per instruction, inflating access
		// counts without affecting timing (the repeats hit the same line).
		group := in.PC / fetchBytes
		if group != curGroup {
			curGroup = group
			t.FetchAccesses++
			lat := c.Hier.FetchAccess(in.PC)
			if extra := lat - baseFetchLat; extra > 0 {
				// Miss beyond the pipelined hit latency stalls delivery.
				nr := cycle + uint64(extra)
				if nr > fetchReady {
					fetchReady = nr
				}
			}
		} else if c.cfg.FetchPerInstruction {
			t.FetchAccesses++
			c.Hier.FetchAccess(in.PC)
		}

		// Issue: stall-on-use semantics.
		start := cycle
		if fetchReady > start {
			t.FetchStallCycles += fetchReady - start
			start = fetchReady
		}
		if r := regReady[in.Src1]; r > start {
			t.DepStallCycles += r - start
			start = r
		}
		if r := regReady[in.Src2]; r > start {
			t.DepStallCycles += r - start
			start = r
		}
		if start > cycle {
			cycle = start
			slots = 0
		}

		// Execute.
		lat := c.cfg.Lat[in.Op]
		complete := start + uint64(lat)
		switch {
		case in.Op.IsLoad():
			dlat, _ := c.dataAccess(in)
			// The L1D hit latency is part of the load-use latency; misses
			// extend it.
			complete = start + uint64(lat+dlat)
		case in.Op.IsStore():
			dlat, failed := c.dataAccess(in)
			st := sb.push(start, dlat)
			if st > start {
				t.MemStallCycles += st - start
				cycle = st
				slots = 0
				complete = st + uint64(lat)
			}
			if failed { // store-exclusive retry
				t.StrexRetries++
				cycle = complete + uint64(c.cfg.StrexRetryCycles)
				slots = 0
			}
		case in.Op == isa.OpBarrier:
			c.Hier.Barrier()
			wait := c.barrierWait()
			drainTo := maxU64(cycle, lastComplete) + wait
			t.BarrierStallCycles += drainTo - cycle
			cycle = drainTo
			slots = 0
			complete = cycle
		case in.Op.IsBranch():
			correct := c.predict(in)
			if !correct {
				penalty := uint64(c.cfg.FrontendDepth + c.cfg.MispredictPenalty)
				redirect := complete + penalty
				t.BranchStallCycles += redirect - cycle
				cycle = redirect
				slots = 0
				fetchReady = cycle
				c.chargeWrongPath(&t, in)
				curGroup = ^uint64(0)
			} else if in.Taken {
				// Taken-branch fetch bubble.
				cycle++
				slots = 0
				curGroup = ^uint64(0)
			}
		}

		if complete > lastComplete {
			lastComplete = complete
		}
		if in.Op != isa.OpBranch && in.Op != isa.OpBarrier && !in.Op.IsStore() {
			regReady[in.Dst] = complete
		}

		t.Committed++
		t.OpCounts[in.Op]++

		slots++
		if slots >= c.cfg.IssueWidth {
			cycle++
			slots = 0
		}
	}

	t.Cycles = maxU64(cycle, lastComplete)
	return t
}

// chargeWrongPath models the squashed instructions fetched down a
// mispredicted path: they count as speculative work and pollute the
// instruction-side hierarchy (including the ITLB — the mechanism behind
// the paper's Cluster A finding that gem5 branch mispredictions drive L2
// ITLB traffic).
func (c *Core) chargeWrongPath(t *Tally, in isa.Inst) {
	// Squash reach: roughly one fetch group enters the pipeline before the
	// redirect propagates. (The paper's Fig. 6 observes only ~1.1x more
	// speculatively executed instructions in the model than on hardware
	// even with 21x the mispredicts, so the per-squash wrong-path depth is
	// small.)
	wrong := uint64(c.cfg.FetchWidth)
	t.WrongPathInsts += wrong

	// The wrong path starts at the predicted (wrong) continuation: for a
	// branch wrongly predicted taken this is the stale BTB target; for one
	// wrongly predicted not-taken it is the fall-through. Either way the
	// frontend touches one or two extra lines there.
	wrongPC := in.PC + 8
	if in.Op == isa.OpBranchInd || in.Op == isa.OpReturn {
		// Wrong indirect targets land far away — often on another page.
		wrongPC = in.Target ^ 0x1740
	} else if !in.Taken {
		wrongPC = in.Target // predicted taken, actually not taken
	}
	line := uint64(c.Hier.L1I.LineBytes())
	for i := uint64(0); i < 2; i++ {
		t.FetchAccesses++
		c.Hier.FetchAccess(wrongPC + i*line)
	}
	// Stale BTB/RAS entries steer a share of wrong paths to far-away
	// addresses; the resulting speculative translation reaches the L2
	// ITLB before the squash. The far page cycles deterministically over
	// a set larger than the L1 ITLB, so this traffic scales with the
	// misprediction count — the coupling Section IV-C exposes.
	farPC := in.PC + (((t.WrongPathInsts/4)&63)+1)*4096
	c.Hier.WrongPathProbe(farPC)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
