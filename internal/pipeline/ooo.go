package pipeline

import "gemstone/internal/isa"

// runOutOfOrder is the bounded-dataflow out-of-order model (Cortex-A15
// class). Each instruction's issue time is the maximum of:
//
//   - its dispatch time (fetch-group delivery + frontend depth, gated by
//     reorder-buffer occupancy),
//   - its operands' ready times,
//   - a free issue port.
//
// Completion feeds the register scoreboard; retirement is in order and
// bounded by the retire width. Branch mispredictions stall the frontend
// until the branch resolves, which is how out-of-order cores convert bad
// prediction into execution time: the deeper the window, the more work a
// squash discards. This is the model through which the gem5-v1 BP defect
// becomes the paper's -51% execution-time MPE.
func (c *Core) runOutOfOrder(stream isa.Stream) Tally {
	var t Tally
	var regReady [isa.NumRegs]uint64

	robRetire := make([]uint64, c.cfg.ROBSize) // retire time, ring by index
	ports := make([]uint64, c.cfg.IssueWidth)  // next-free time per port
	sb := newStoreBuffer(16)

	fetchBytes := uint64(c.cfg.FetchWidth) * 4
	curGroup := ^uint64(0)
	baseFetchLat := c.Hier.L1I.LatencyCycles()

	groupTime := uint64(0)  // cycle the current fetch group is delivered
	redirect := uint64(0)   // frontend resume time after a mispredict
	lastRetire := uint64(0) // retire time of the previous instruction
	retiredInCycle := 0
	idx := 0 // dynamic instruction index

	for {
		in, ok := stream.Next()
		if !ok {
			break
		}

		// Frontend delivery.
		group := in.PC / fetchBytes
		if group != curGroup {
			curGroup = group
			t.FetchAccesses++
			next := groupTime + 1
			if redirect > next {
				t.FetchStallCycles += redirect - next
				next = redirect
			}
			lat := c.Hier.FetchAccess(in.PC)
			if extra := lat - baseFetchLat; extra > 0 {
				next += uint64(extra)
				t.FetchStallCycles += uint64(extra)
			}
			groupTime = next
		} else if c.cfg.FetchPerInstruction {
			// gem5 defect: the model performs an I-side lookup for every
			// instruction instead of once per fetch group. The repeated
			// lookups hit the line just fetched, so timing is unaffected,
			// but the access counts (L1I, ITLB) are inflated — the paper's
			// Fig. 6 shows >2x L1I accesses for exactly this reason.
			t.FetchAccesses++
			c.Hier.FetchAccess(in.PC)
		}
		fetchReady := groupTime

		// Dispatch: bounded by ROB occupancy (the instruction ROBSize
		// older must have retired).
		dispatch := fetchReady + uint64(c.cfg.FrontendDepth)
		if older := robRetire[idx%c.cfg.ROBSize]; older > dispatch {
			t.ROBStallCycles += older - dispatch
			dispatch = older
		}

		// Operand readiness.
		ready := dispatch
		if r := regReady[in.Src1]; r > ready {
			ready = r
		}
		if r := regReady[in.Src2]; r > ready {
			ready = r
		}

		// Issue port: pick the earliest-free port.
		p := 0
		for i := 1; i < len(ports); i++ {
			if ports[i] < ports[p] {
				p = i
			}
		}
		issue := ready
		if ports[p] > issue {
			issue = ports[p]
		}
		lat := c.cfg.Lat[in.Op]
		// Divides are unpipelined; everything else is fully pipelined.
		busyFor := uint64(1)
		if in.Op == isa.OpIntDiv || in.Op == isa.OpFPDiv {
			busyFor = uint64(lat)
		}
		ports[p] = issue + busyFor

		complete := issue + uint64(lat)
		switch {
		case in.Op.IsLoad():
			dlat, _ := c.dataAccess(in)
			complete = issue + uint64(lat+dlat)
			if dlat > c.Hier.L1D.LatencyCycles() {
				t.MemStallCycles += uint64(dlat - c.Hier.L1D.LatencyCycles())
			}
		case in.Op.IsStore():
			dlat, failed := c.dataAccess(in)
			st := sb.push(issue, dlat)
			if st > issue {
				t.MemStallCycles += st - issue
				complete = st + uint64(lat)
			}
			if failed {
				t.StrexRetries++
				complete += uint64(c.cfg.StrexRetryCycles)
			}
		case in.Op == isa.OpBarrier:
			c.Hier.Barrier()
			wait := c.barrierWait()
			// A barrier drains the window: it completes after everything
			// older has retired, plus the synchronisation wait.
			if lastRetire > complete {
				complete = lastRetire
			}
			complete += wait
			t.BarrierStallCycles += wait
		case in.Op.IsBranch():
			correct := c.predict(in)
			if !correct {
				// The frontend refetches from the resolved target.
				r := complete + uint64(c.cfg.MispredictPenalty)
				if r > redirect {
					redirect = r
				}
				t.BranchStallCycles += uint64(c.cfg.MispredictPenalty)
				c.chargeWrongPath(&t, in)
				curGroup = ^uint64(0)
			}
		}

		if in.Op != isa.OpBranch && in.Op != isa.OpBarrier && !in.Op.IsStore() {
			regReady[in.Dst] = complete
		}

		// In-order retirement, RetireWidth per cycle.
		retire := complete
		if retire < lastRetire {
			retire = lastRetire
		}
		if retire == lastRetire {
			retiredInCycle++
			if retiredInCycle >= c.cfg.RetireWidth {
				retire++
				retiredInCycle = 0
			}
		} else {
			retiredInCycle = 1
		}
		lastRetire = retire
		robRetire[idx%c.cfg.ROBSize] = retire

		t.Committed++
		t.OpCounts[in.Op]++
		idx++
	}

	t.Cycles = lastRetire
	return t
}
