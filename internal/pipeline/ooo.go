package pipeline

import (
	"math/bits"

	"gemstone/internal/isa"
)

// runOutOfOrder is the bounded-dataflow out-of-order model (Cortex-A15
// class). Each instruction's issue time is the maximum of:
//
//   - its dispatch time (fetch-group delivery + frontend depth, gated by
//     reorder-buffer occupancy),
//   - its operands' ready times,
//   - a free issue port.
//
// Completion feeds the register scoreboard; retirement is in order and
// bounded by the retire width. Branch mispredictions stall the frontend
// until the branch resolves, which is how out-of-order cores convert bad
// prediction into execution time: the deeper the window, the more work a
// squash discards. This is the model through which the gem5-v1 BP defect
// becomes the paper's -51% execution-time MPE.
//
// Instructions arrive in blocks (see blockSource): the loop walks a slice
// instead of paying an interface call per instruction, with the scalar
// Next path kept as a contract-equivalent fallback.
func (c *Core) runOutOfOrder(stream isa.Stream) Tally {
	var t Tally
	// The scoreboard, latency table and op counters are sized 256 so that
	// indexing by the uint8 register/op fields never needs a bounds check.
	var regReady [256]uint64
	var opCounts [256]uint64

	robSize := c.cfg.ROBSize
	robRetire := scratchU64(&c.robRetire, robSize)  // retire time, ring by index
	ports := scratchU64(&c.ports, c.cfg.IssueWidth) // next-free time per port
	sb := &c.sb
	sb.reset(16)

	// Invariant configuration hoisted out of the loop. Fetch-group ids are
	// PC/fetchBytes; for power-of-two widths (every real config) the
	// division becomes a shift, which matters at one division per
	// instruction.
	fetchBytes := uint64(c.cfg.FetchWidth) * 4
	fetchPow2 := fetchBytes&(fetchBytes-1) == 0
	fetchShift := uint(bits.TrailingZeros64(fetchBytes))
	curGroup := ^uint64(0)
	baseFetchLat := c.Hier.L1I.LatencyCycles()
	l1dLat := c.Hier.L1D.LatencyCycles()
	fetchPerInst := c.cfg.FetchPerInstruction
	frontendDepth := uint64(c.cfg.FrontendDepth)
	mispredict := uint64(c.cfg.MispredictPenalty)
	strexRetry := uint64(c.cfg.StrexRetryCycles)
	retireWidth := c.cfg.RetireWidth
	var latTab [256]uint64
	for op, l := range c.cfg.Lat {
		latTab[op] = uint64(l)
	}
	// Port occupancy per op: divides are unpipelined and hold their port
	// for the full latency; everything else is fully pipelined.
	var busyTab [256]uint64
	for op := range busyTab {
		busyTab[op] = 1
	}
	busyTab[isa.OpIntDiv] = latTab[isa.OpIntDiv]
	busyTab[isa.OpFPDiv] = latTab[isa.OpFPDiv]

	groupTime := uint64(0)  // cycle the current fetch group is delivered
	redirect := uint64(0)   // frontend resume time after a mispredict
	lastRetire := uint64(0) // retire time of the previous instruction
	retiredInCycle := 0
	rp := 0 // ROB ring position (dynamic instruction index mod robSize)

	src := newBlockSource(stream)
	for {
		blk := src.next(c)
		if len(blk) == 0 {
			break
		}
		for bi := range blk {
			in := &blk[bi]

			// Frontend delivery.
			group := in.PC >> fetchShift
			if !fetchPow2 {
				group = in.PC / fetchBytes
			}
			if group != curGroup {
				curGroup = group
				t.FetchAccesses++
				next := groupTime + 1
				if redirect > next {
					t.FetchStallCycles += redirect - next
					next = redirect
				}
				lat := c.Hier.FetchAccess(in.PC)
				if extra := lat - baseFetchLat; extra > 0 {
					next += uint64(extra)
					t.FetchStallCycles += uint64(extra)
				}
				groupTime = next
			} else if fetchPerInst {
				// gem5 defect: the model performs an I-side lookup for every
				// instruction instead of once per fetch group. The repeated
				// lookups hit the line just fetched, so timing is unaffected,
				// but the access counts (L1I, ITLB) are inflated — the paper's
				// Fig. 6 shows >2x L1I accesses for exactly this reason.
				t.FetchAccesses++
				c.Hier.FetchAccess(in.PC)
			}
			fetchReady := groupTime

			// Dispatch: bounded by ROB occupancy (the instruction ROBSize
			// older must have retired).
			dispatch := fetchReady + frontendDepth
			if older := robRetire[rp]; older > dispatch {
				t.ROBStallCycles += older - dispatch
				dispatch = older
			}

			// Operand readiness.
			ready := dispatch
			if r := regReady[in.Src1]; r > ready {
				ready = r
			}
			if r := regReady[in.Src2]; r > ready {
				ready = r
			}

			// Issue port: pick the earliest-free port (ties go to the
			// lowest index). Width 4 covers every shipped out-of-order
			// config; packing time<<2|index makes the min branchless, and
			// the packed compare resolves time ties toward the lowest
			// index exactly like the scan's strict < does. Cycle counts
			// stay far below 2^62, so the shift cannot overflow.
			var p int
			if len(ports) == 4 {
				v := ports[0] << 2
				if w := ports[1]<<2 | 1; w < v {
					v = w
				}
				if w := ports[2]<<2 | 2; w < v {
					v = w
				}
				if w := ports[3]<<2 | 3; w < v {
					v = w
				}
				p = int(v & 3)
			} else {
				for i := 1; i < len(ports); i++ {
					if ports[i] < ports[p] {
						p = i
					}
				}
			}
			issue := ready
			if pt := ports[p]; pt > issue {
				issue = pt
			}
			lat := latTab[in.Op]
			ports[p] = issue + busyTab[in.Op]

			complete := issue + lat
			switch in.Op {
			case isa.OpLoad:
				// The dataAccess arms are unrolled into the switch: one
				// dispatch per memory instruction instead of two.
				c.maybeSnoop(in.Addr)
				dlat := c.Hier.LoadAccess(in.Addr, in.Unaligned)
				complete = issue + lat + uint64(dlat)
				if dlat > l1dLat {
					t.MemStallCycles += uint64(dlat - l1dLat)
				}
			case isa.OpLoadEx:
				dlat := c.Hier.LoadExclusive(in.Addr)
				complete = issue + lat + uint64(dlat)
				if dlat > l1dLat {
					t.MemStallCycles += uint64(dlat - l1dLat)
				}
			case isa.OpStore:
				c.maybeSnoop(in.Addr)
				dlat := c.Hier.StoreAccess(in.Addr, int(in.Size), in.Unaligned)
				st := sb.push(issue, dlat)
				if st > issue {
					t.MemStallCycles += st - issue
					complete = st + lat
				}
			case isa.OpStoreEx:
				dlat, failed := c.dataAccess(in)
				st := sb.push(issue, dlat)
				if st > issue {
					t.MemStallCycles += st - issue
					complete = st + lat
				}
				if failed {
					t.StrexRetries++
					complete += strexRetry
				}
			case isa.OpBarrier:
				c.Hier.Barrier()
				wait := c.barrierWait()
				// A barrier drains the window: it completes after everything
				// older has retired, plus the synchronisation wait.
				if lastRetire > complete {
					complete = lastRetire
				}
				complete += wait
				t.BarrierStallCycles += wait
			case isa.OpBranch, isa.OpCall, isa.OpReturn, isa.OpBranchInd:
				correct := c.predict(in)
				if !correct {
					// The frontend refetches from the resolved target.
					r := complete + mispredict
					if r > redirect {
						redirect = r
					}
					t.BranchStallCycles += mispredict
					c.chargeWrongPath(&t, in)
					curGroup = ^uint64(0)
				}
			}

			if writesDst[in.Op] {
				regReady[in.Dst] = complete
			}

			// In-order retirement, RetireWidth per cycle.
			retire := complete
			if retire < lastRetire {
				retire = lastRetire
			}
			if retire == lastRetire {
				retiredInCycle++
				if retiredInCycle >= retireWidth {
					retire++
					retiredInCycle = 0
				}
			} else {
				retiredInCycle = 1
			}
			lastRetire = retire
			robRetire[rp] = retire
			rp++
			if rp == robSize {
				rp = 0
			}

			t.Committed++
			opCounts[in.Op]++
		}
	}

	for op := range t.OpCounts {
		t.OpCounts[op] = opCounts[op]
	}
	t.Cycles = lastRetire
	return t
}
