package pipeline

import (
	"testing"

	"gemstone/internal/branch"
	"gemstone/internal/isa"
	"gemstone/internal/mem"
	"gemstone/internal/xrand"
)

func testLatencies() Latencies {
	var l Latencies
	l[isa.OpNop] = 1
	l[isa.OpIntALU] = 1
	l[isa.OpIntMul] = 3
	l[isa.OpIntDiv] = 12
	l[isa.OpFPAdd] = 4
	l[isa.OpFPMul] = 4
	l[isa.OpFPDiv] = 15
	l[isa.OpSIMD] = 3
	l[isa.OpLoad] = 1
	l[isa.OpStore] = 1
	l[isa.OpLoadEx] = 2
	l[isa.OpStoreEx] = 2
	l[isa.OpBarrier] = 1
	l[isa.OpBranch] = 1
	l[isa.OpCall] = 1
	l[isa.OpReturn] = 1
	l[isa.OpBranchInd] = 1
	return l
}

func inOrderConfig() Config {
	return Config{
		Name: "a7", Kind: InOrder, FetchWidth: 2, IssueWidth: 2,
		FrontendDepth: 5, MispredictPenalty: 3, Lat: testLatencies(),
		BarrierDrainCycles: 8, StrexRetryCycles: 6,
	}
}

func oooConfig() Config {
	return Config{
		Name: "a15", Kind: OutOfOrder, FetchWidth: 4, IssueWidth: 3,
		ROBSize: 64, RetireWidth: 3, FrontendDepth: 9, MispredictPenalty: 6,
		Lat: testLatencies(), BarrierDrainCycles: 12, StrexRetryCycles: 8,
	}
}

func testHier() *mem.Hierarchy {
	return mem.NewHierarchy(mem.HierarchyConfig{
		L1I:  mem.CacheConfig{Name: "l1i", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 2, LatencyCycles: 1},
		L1D:  mem.CacheConfig{Name: "l1d", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 2, WriteAllocate: true},
		L2:   mem.CacheConfig{Name: "l2", SizeBytes: 512 << 10, LineBytes: 64, Assoc: 8, LatencyCycles: 12, WriteAllocate: true},
		ITLB: mem.TLBConfig{Name: "itb", Entries: 32, Assoc: 32},
		DTLB: mem.TLBConfig{Name: "dtb", Entries: 32, Assoc: 32},

		UnifiedL2TLB:      true,
		L2TLB:             mem.TLBConfig{Name: "l2tlb", Entries: 512, Assoc: 4, LatencyCycles: 2},
		DRAM:              mem.DRAMConfig{Banks: 8, RowBytes: 2048, RowHitNs: 30, RowMissNs: 90, BandwidthBytesPerNs: 8},
		WalkMemAccesses:   2,
		WalkLatencyCycles: 8,

		StreamingStoreMerge: true,
		StreamDetectRun:     4,
	})
}

func testPred() *branch.Predictor {
	return branch.New(branch.Config{
		Name: "bp", GlobalBits: 12, LocalBits: 12, ChoiceBits: 12,
		BTBEntries: 1024, RASEntries: 16, IndirectEntries: 256,
	})
}

func newCore(cfg Config) *Core { return NewCore(cfg, testHier(), testPred()) }

// aluChain builds n dependent single-cycle ALU ops (serial dependency).
func aluChain(n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		insts[i] = isa.Inst{PC: 0x1000 + uint64(i)*4, Op: isa.OpIntALU, Src1: 1, Src2: 1, Dst: 1}
	}
	return insts
}

// aluParallel builds n independent ALU ops across many registers.
func aluParallel(n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	for i := range insts {
		r := uint8(2 + i%20)
		insts[i] = isa.Inst{PC: 0x1000 + uint64(i)*4, Op: isa.OpIntALU, Src1: r, Src2: r, Dst: r}
	}
	return insts
}

func TestConfigValidation(t *testing.T) {
	bad := oooConfig()
	bad.ROBSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("OoO config without ROB must be invalid")
	}
	bad2 := inOrderConfig()
	bad2.IssueWidth = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero issue width must be invalid")
	}
	bad3 := inOrderConfig()
	bad3.Lat[isa.OpLoad] = -1
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative latency must be invalid")
	}
}

func TestIPCNeverExceedsIssueWidth(t *testing.T) {
	for _, cfg := range []Config{inOrderConfig(), oooConfig()} {
		core := newCore(cfg)
		tal := core.Run(isa.NewSliceStream(aluParallel(20000)))
		if ipc := tal.IPC(); ipc > float64(cfg.IssueWidth) {
			t.Fatalf("%s: IPC %.2f exceeds issue width %d", cfg.Name, ipc, cfg.IssueWidth)
		}
	}
}

func TestSerialChainBoundsIPCToOne(t *testing.T) {
	// A fully serial dependency chain cannot exceed IPC 1 on any model.
	for _, cfg := range []Config{inOrderConfig(), oooConfig()} {
		core := newCore(cfg)
		tal := core.Run(isa.NewSliceStream(aluChain(10000)))
		if ipc := tal.IPC(); ipc > 1.01 {
			t.Fatalf("%s: serial-chain IPC %.2f > 1", cfg.Name, ipc)
		}
	}
}

func TestOoOBeatsInOrderOnIndependentLoadMisses(t *testing.T) {
	// Independent loads with large strides (cache misses) — the OoO window
	// overlaps them, the in-order core serialises on use.
	mkStream := func() isa.Stream {
		var insts []isa.Inst
		for i := 0; i < 4000; i++ {
			addr := uint64(i) * 4096 // new page+line every time: always miss
			dst := uint8(2 + i%8)
			insts = append(insts,
				isa.Inst{PC: 0x1000 + uint64(i)*8, Op: isa.OpLoad, Addr: addr, Size: 4, Src1: 1, Src2: 1, Dst: dst},
				isa.Inst{PC: 0x1004 + uint64(i)*8, Op: isa.OpIntALU, Src1: dst, Src2: dst, Dst: dst},
			)
		}
		return isa.NewSliceStream(insts)
	}
	io := newCore(inOrderConfig())
	ooo := newCore(oooConfig())
	ioT := io.Run(mkStream())
	oooT := ooo.Run(mkStream())
	if oooT.Cycles*3/2 >= ioT.Cycles {
		t.Fatalf("OoO (%d cy) should be well below in-order (%d cy) on independent misses",
			oooT.Cycles, ioT.Cycles)
	}
}

func TestMispredictsCostCycles(t *testing.T) {
	// Random 50/50 branches vs always-taken branches: the former must be
	// slower on both models.
	mkStream := func(random bool) isa.Stream {
		rng := xrand.New(5)
		var insts []isa.Inst
		taken := true
		for i := 0; i < 5000; i++ {
			if random {
				taken = rng.Bool(0.5) // high-entropy: unlearnable
			}
			insts = append(insts,
				isa.Inst{PC: 0x1000, Op: isa.OpIntALU, Src1: 1, Src2: 1, Dst: 2},
				isa.Inst{PC: 0x1004, Op: isa.OpBranch, Taken: taken, Target: 0x1000, Src1: 2, Src2: 2, Dst: 31},
			)
		}
		return isa.NewSliceStream(insts)
	}
	for _, cfg := range []Config{inOrderConfig(), oooConfig()} {
		pred := newCore(cfg)
		regular := pred.Run(mkStream(false))
		noisy := newCore(cfg).Run(mkStream(true))
		if noisy.Cycles <= regular.Cycles {
			t.Fatalf("%s: random branches (%d cy) not slower than regular (%d cy)",
				cfg.Name, noisy.Cycles, regular.Cycles)
		}
		if noisy.BranchStallCycles == 0 {
			t.Fatalf("%s: expected branch stall cycles", cfg.Name)
		}
	}
}

func TestFetchPerInstructionInflatesL1IAccesses(t *testing.T) {
	run := func(perInst bool) uint64 {
		cfg := oooConfig()
		cfg.FetchPerInstruction = perInst
		core := newCore(cfg)
		core.Run(isa.NewSliceStream(aluParallel(8000)))
		return core.Hier.L1I.Stats.Accesses()
	}
	normal, perInst := run(false), run(true)
	ratio := float64(perInst) / float64(normal)
	if ratio < 1.8 {
		t.Fatalf("per-instruction fetch gives %.2fx L1I accesses, want ~%dx (fetch width)",
			ratio, oooConfig().FetchWidth)
	}
}

func TestBarrierDrains(t *testing.T) {
	withBarriers := make([]isa.Inst, 0, 2000)
	without := make([]isa.Inst, 0, 2000)
	for i := 0; i < 1000; i++ {
		in := isa.Inst{PC: 0x1000 + uint64(i)*8, Op: isa.OpIntALU, Src1: 1, Src2: 2, Dst: 3}
		withBarriers = append(withBarriers, in, isa.Inst{PC: in.PC + 4, Op: isa.OpBarrier})
		without = append(without, in, isa.Inst{PC: in.PC + 4, Op: isa.OpIntALU, Src1: 1, Src2: 2, Dst: 4})
	}
	for _, cfg := range []Config{inOrderConfig(), oooConfig()} {
		bt := newCore(cfg).Run(isa.NewSliceStream(withBarriers))
		nt := newCore(cfg).Run(isa.NewSliceStream(without))
		if bt.Cycles <= nt.Cycles {
			t.Fatalf("%s: barriers (%d cy) must cost more than ALU ops (%d cy)",
				cfg.Name, bt.Cycles, nt.Cycles)
		}
		if bt.BarrierStallCycles == 0 {
			t.Fatalf("%s: expected barrier stall cycles", cfg.Name)
		}
	}
}

func TestSyncModelInjectsContention(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 2000; i++ {
		insts = append(insts,
			isa.Inst{PC: 0x1000, Op: isa.OpLoadEx, Addr: 0x8000, Size: 4, Dst: 2},
			isa.Inst{PC: 0x1004, Op: isa.OpStoreEx, Addr: 0x8000, Size: 4, Src1: 2},
			isa.Inst{PC: 0x1008, Op: isa.OpLoad, Addr: uint64(i%64) * 64, Size: 4, Dst: 3},
		)
	}
	core := newCore(oooConfig())
	core.Sync = NewSyncModel(123, 0.05, 40, 0.2)
	tal := core.Run(isa.NewSliceStream(insts))
	if core.Hier.Stats.Snoops == 0 {
		t.Fatal("sync model should inject snoops")
	}
	if tal.StrexRetries == 0 {
		t.Fatal("sync model should force some store-exclusive retries")
	}
	if core.Hier.Stats.ExclusiveFails == 0 {
		t.Fatal("expected failed exclusives under contention")
	}
}

func TestCommittedMatchesStreamLength(t *testing.T) {
	for _, cfg := range []Config{inOrderConfig(), oooConfig()} {
		tal := newCore(cfg).Run(isa.NewSliceStream(aluParallel(1234)))
		if tal.Committed != 1234 {
			t.Fatalf("%s: committed %d, want 1234", cfg.Name, tal.Committed)
		}
		var sum uint64
		for _, n := range tal.OpCounts {
			sum += n
		}
		if sum != tal.Committed {
			t.Fatalf("%s: op counts sum %d != committed %d", cfg.Name, sum, tal.Committed)
		}
	}
}

func TestPipelineDeterminism(t *testing.T) {
	mk := func() isa.Stream {
		var insts []isa.Inst
		for i := 0; i < 3000; i++ {
			insts = append(insts, isa.Inst{
				PC: 0x1000 + uint64(i%256)*4, Op: isa.OpLoad,
				Addr: uint64((i*7)%4096) * 64, Size: 4,
				Src1: uint8(i % 16), Src2: uint8((i + 3) % 16), Dst: uint8((i + 5) % 16),
			})
		}
		return isa.NewSliceStream(insts)
	}
	for _, cfg := range []Config{inOrderConfig(), oooConfig()} {
		a := newCore(cfg).Run(mk())
		b := newCore(cfg).Run(mk())
		if a != b {
			t.Fatalf("%s: non-deterministic tally", cfg.Name)
		}
	}
}
