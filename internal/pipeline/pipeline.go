// Package pipeline implements the core timing models that consume
// instruction streams and drive the memory hierarchy and branch predictor.
//
// Two models are provided, matching the two Exynos-5422 clusters the paper
// studies: an in-order dual-issue core (Cortex-A7 class) and an
// out-of-order window-based core (Cortex-A15 class). The out-of-order model
// is a bounded-dataflow ("interval") simulation: each instruction's issue
// time is the maximum of its operand-ready times and structural
// constraints (fetch bandwidth, issue ports, reorder-buffer occupancy,
// retire bandwidth), which captures the latency-hiding behaviour that
// separates big from LITTLE cores without simulating every pipeline stage.
package pipeline

import (
	"fmt"

	"gemstone/internal/branch"
	"gemstone/internal/isa"
	"gemstone/internal/mem"
	"gemstone/internal/xrand"
)

// Kind selects the timing model.
type Kind int

const (
	// InOrder is a stall-on-use in-order pipeline (Cortex-A7 class).
	InOrder Kind = iota
	// OutOfOrder is a window-based out-of-order pipeline (Cortex-A15 class).
	OutOfOrder
)

// String returns a human-readable model name.
func (k Kind) String() string {
	if k == InOrder {
		return "in-order"
	}
	return "out-of-order"
}

// Latencies gives the execute latency in cycles for each instruction class.
// Memory classes hold the non-memory part of the latency; cache/DRAM time
// is charged by the hierarchy.
type Latencies [isa.NumOps]int

// Config describes one core timing model.
type Config struct {
	// Name identifies the core in diagnostics (e.g. "a15").
	Name string
	// Kind selects in-order or out-of-order timing.
	Kind Kind
	// FetchWidth is instructions fetched per I-side access.
	FetchWidth int
	// IssueWidth is instructions issued per cycle.
	IssueWidth int
	// ROBSize bounds in-flight instructions (OutOfOrder only).
	ROBSize int
	// RetireWidth bounds instructions retired per cycle (OutOfOrder only).
	RetireWidth int
	// FrontendDepth is the fetch-to-dispatch depth in cycles; it sets the
	// minimum branch-mispredict redirect cost.
	FrontendDepth int
	// MispredictPenalty is the additional refill penalty after a branch
	// mispredict resolves.
	MispredictPenalty int
	// Lat gives per-class execute latencies.
	Lat Latencies
	// FetchPerInstruction models the gem5 defect of performing one L1I
	// access per instruction instead of one per fetch group; it roughly
	// doubles L1I accesses (paper Fig. 6) without changing timing much.
	FetchPerInstruction bool
	// BarrierDrainCycles is the pipeline-drain cost of a memory barrier.
	BarrierDrainCycles int
	// StrexRetryCycles is the replay cost of a failed store-exclusive.
	StrexRetryCycles int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 {
		return fmt.Errorf("pipeline: %q: widths must be positive", c.Name)
	}
	if c.Kind == OutOfOrder && (c.ROBSize <= 0 || c.RetireWidth <= 0) {
		return fmt.Errorf("pipeline: %q: out-of-order needs ROBSize and RetireWidth", c.Name)
	}
	if c.FrontendDepth < 1 || c.MispredictPenalty < 0 {
		return fmt.Errorf("pipeline: %q: bad frontend parameters", c.Name)
	}
	for op, l := range c.Lat {
		if l < 0 {
			return fmt.Errorf("pipeline: %q: negative latency for %v", c.Name, isa.Op(op))
		}
	}
	return nil
}

// SyncModel injects multi-threaded contention effects into a run: snoop
// traffic from sibling cores, barrier wait times and store-exclusive
// failures. Single-threaded workloads use a nil SyncModel.
//
// This replaces cycle-level simulation of sibling cores: what the paper's
// analysis observes from concurrency is barrier/exclusive event rates,
// snoop counts and the attendant stall cycles, all of which the model
// produces deterministically.
type SyncModel struct {
	rng *xrand.RNG
	// SnoopProb is the per-memory-access probability of an incoming
	// coherence snoop for the accessed line.
	SnoopProb float64
	// BarrierWaitMean is the mean extra wait (cycles) per barrier,
	// modelling arrival skew at synchronisation points.
	BarrierWaitMean float64
	// StrexFailProb is the probability a store-exclusive loses the line to
	// a sibling and must retry.
	StrexFailProb float64
}

// NewSyncModel builds a contention model with a deterministic seed.
func NewSyncModel(seed uint64, snoopProb, barrierWaitMean, strexFailProb float64) *SyncModel {
	return &SyncModel{
		rng:             xrand.New(seed),
		SnoopProb:       snoopProb,
		BarrierWaitMean: barrierWaitMean,
		StrexFailProb:   strexFailProb,
	}
}

// Tally is the raw event record of one run. The PMU and gem5-statistics
// layers derive all architectural events from a Tally plus the component
// stats held by the hierarchy and predictor.
type Tally struct {
	Cycles    uint64
	Committed uint64
	OpCounts  [isa.NumOps]uint64
	// WrongPathInsts approximates instructions fetched down mispredicted
	// paths (speculatively executed but squashed).
	WrongPathInsts uint64
	FetchAccesses  uint64 // I-side accesses issued by the frontend
	StrexRetries   uint64

	// Stall attribution (cycles); the sum can exceed Cycles when causes
	// overlap in the out-of-order model.
	FetchStallCycles   uint64
	DepStallCycles     uint64
	MemStallCycles     uint64
	BranchStallCycles  uint64
	BarrierStallCycles uint64
	ROBStallCycles     uint64
}

// IPC returns committed instructions per cycle.
func (t *Tally) IPC() float64 {
	if t.Cycles == 0 {
		return 0
	}
	return float64(t.Committed) / float64(t.Cycles)
}

// Core binds a timing model to its memory hierarchy and branch predictor.
type Core struct {
	cfg  Config
	Hier *mem.Hierarchy
	Pred *branch.Predictor
	Sync *SyncModel // nil for single-threaded runs

	// Run-loop scratch reused across runs. Every field is (re)initialised
	// at the start of a run, so a reused Core produces output identical to
	// a fresh one; reuse only removes the per-run allocations.
	blk       []isa.Inst
	robRetire []uint64
	ports     []uint64
	sb        storeBuffer
}

// writesDst marks the instruction classes that write a destination register
// visible to the dependency scoreboard: everything except plain branches,
// barriers and stores (calls/returns/indirect branches write the link or
// address register, so they stay in). The table is sized 256 so that
// indexing by the uint8 Op never needs a bounds check in the timing loops.
var writesDst = func() (w [256]bool) {
	for op := 0; op < isa.NumOps; op++ {
		o := isa.Op(op)
		w[op] = o != isa.OpBranch && o != isa.OpBarrier && !o.IsStore()
	}
	return
}()

// instBlockSize is the batch the timing loops request from a BlockStream:
// large enough to amortise the per-block call, small enough that the buffer
// stays L1-resident (256 instructions ≈ 12 KB).
const instBlockSize = 256

// block returns the core's reusable instruction block buffer.
func (c *Core) block() []isa.Inst {
	if c.blk == nil {
		c.blk = make([]isa.Inst, instBlockSize)
	}
	return c.blk
}

// scratchU64 returns buf resized to n zeroed elements, reusing its backing
// array when possible.
func scratchU64(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
		return *buf
	}
	s := (*buf)[:n]
	clear(s)
	return s
}

// blockSource resolves the fastest delivery path a stream supports once,
// so the per-block refill is a single non-interface branch.
type blockSource struct {
	stream isa.Stream
	bs     isa.BlockStream // non-nil: batched copy path
	vs     isa.ViewStream  // non-nil: zero-copy view path
}

func newBlockSource(stream isa.Stream) blockSource {
	src := blockSource{stream: stream}
	src.bs, _ = stream.(isa.BlockStream)
	src.vs, _ = stream.(isa.ViewStream)
	return src
}

// next returns the next run of instructions, or an empty slice at end of
// stream. Views come straight from the stream's backing storage (no copy);
// the batched and scalar paths fill the core's block buffer. By the
// isa.BlockStream/ViewStream contracts all three paths drain the exact
// same sequence, which the golden equivalence tests pin.
func (src *blockSource) next(c *Core) []isa.Inst {
	if src.vs != nil {
		return src.vs.NextView(0)
	}
	buf := c.block()
	if src.bs != nil {
		return buf[:src.bs.NextBlock(buf)]
	}
	n := 0
	for n < len(buf) {
		in, ok := src.stream.Next()
		if !ok {
			break
		}
		buf[n] = in
		n++
	}
	return buf[:n]
}

// NewCore builds a core, panicking on invalid configuration.
func NewCore(cfg Config, hier *mem.Hierarchy, pred *branch.Predictor) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Core{cfg: cfg, Hier: hier, Pred: pred}
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Run executes the stream to completion and returns the tally.
func (c *Core) Run(stream isa.Stream) Tally {
	if c.cfg.Kind == InOrder {
		return c.runInOrder(stream)
	}
	return c.runOutOfOrder(stream)
}

// predict routes one control-flow instruction through the predictor and
// reports whether it was predicted correctly.
func (c *Core) predict(in *isa.Inst) bool {
	switch in.Op {
	case isa.OpBranch:
		return c.Pred.PredictCond(in.PC, in.Taken, in.Target)
	case isa.OpCall:
		return c.Pred.Call(in.PC, in.Target, in.PC+4)
	case isa.OpReturn:
		return c.Pred.Return(in.PC, in.Target)
	case isa.OpBranchInd:
		return c.Pred.Indirect(in.PC, in.Target)
	}
	return true
}

// maybeSnoop injects sibling-core coherence traffic for data accesses.
func (c *Core) maybeSnoop(addr uint64) {
	if c.Sync != nil && c.Sync.SnoopProb > 0 && c.Sync.rng.Bool(c.Sync.SnoopProb) {
		c.Hier.InjectSnoop(addr)
	}
}

// dataAccess performs the memory access for in and returns (latency,
// strexFailed).
func (c *Core) dataAccess(in *isa.Inst) (int, bool) {
	switch in.Op {
	case isa.OpLoad:
		c.maybeSnoop(in.Addr)
		return c.Hier.LoadAccess(in.Addr, in.Unaligned), false
	case isa.OpStore:
		c.maybeSnoop(in.Addr)
		return c.Hier.StoreAccess(in.Addr, int(in.Size), in.Unaligned), false
	case isa.OpLoadEx:
		return c.Hier.LoadExclusive(in.Addr), false
	case isa.OpStoreEx:
		if c.Sync != nil && c.Sync.StrexFailProb > 0 && c.Sync.rng.Bool(c.Sync.StrexFailProb) {
			// A sibling stole the line between LDREX and STREX.
			c.Hier.InjectSnoop(in.Addr)
		}
		lat, ok := c.Hier.StoreExclusive(in.Addr)
		return lat, !ok
	}
	return 0, false
}

func (c *Core) barrierWait() uint64 {
	w := uint64(c.cfg.BarrierDrainCycles)
	if c.Sync != nil && c.Sync.BarrierWaitMean > 0 {
		w += uint64(c.Sync.rng.Exp(c.Sync.BarrierWaitMean))
	}
	return w
}
