package power

import (
	"math"
	"strings"
	"testing"

	"gemstone/internal/pmu"
	"gemstone/internal/xrand"
)

// synthObs generates observations from a known ground-truth linear power
// process: P = 0.3 + V²(0.5·cyc + 2.0·l2 + 0.15·inst)·1e-9 + noise.
func synthObs(n int, noise float64, seed uint64) []Observation {
	rng := xrand.New(seed)
	freqs := []struct {
		mhz int
		v   float64
	}{{600, 0.9}, {1000, 1.0}, {1400, 1.1}, {1800, 1.25}}
	obs := make([]Observation, n)
	for i := range obs {
		f := freqs[i%len(freqs)]
		cyc := float64(f.mhz) * 1e6
		inst := cyc * (0.5 + rng.Float64()) // IPC 0.5..1.5
		l2 := inst * (0.001 + 0.05*rng.Float64())
		br := inst * 0.1 * rng.Float64()
		rates := map[pmu.Event]float64{
			pmu.CPUCycles: cyc,
			pmu.InstSpec:  inst,
			pmu.L2DCache:  l2,
			pmu.BrPred:    br, // irrelevant to power
		}
		v2 := f.v * f.v
		p := 0.3 + v2*(0.5*cyc+2.0*l2+0.15*inst)*1e-9
		p *= 1 + noise*rng.Norm()
		obs[i] = Observation{
			Workload: "w", Cluster: "a15", FreqMHz: f.mhz, VoltageV: f.v,
			Rates: rates, PowerW: p,
		}
	}
	return obs
}

func TestBuildRecoversGroundTruth(t *testing.T) {
	obs := synthObs(200, 0.004, 1)
	m, err := Build("a15", obs, BuildOptions{
		Pool: []pmu.Event{pmu.CPUCycles, pmu.InstSpec, pmu.L2DCache, pmu.BrPred},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Quality.MAPE > 2 {
		t.Fatalf("MAPE = %.2f%%, want < 2%%", m.Quality.MAPE)
	}
	if m.Quality.AdjR2 < 0.98 {
		t.Fatalf("adj R2 = %v", m.Quality.AdjR2)
	}
	// The true events must be selected; the irrelevant one must not.
	found := map[pmu.Event]bool{}
	for _, e := range m.Events {
		found[e] = true
	}
	for _, want := range []pmu.Event{pmu.CPUCycles, pmu.InstSpec, pmu.L2DCache} {
		if !found[want] {
			t.Fatalf("true event %s not selected: %v", want, m.Events)
		}
	}
	if found[pmu.BrPred] {
		t.Fatalf("irrelevant event selected: %v", m.Events)
	}
	if math.Abs(m.Intercept-0.3) > 0.05 {
		t.Fatalf("intercept = %v, want ~0.3", m.Intercept)
	}
}

func TestBuildRespectsPool(t *testing.T) {
	obs := synthObs(100, 0.004, 2)
	m, err := Build("a15", obs, BuildOptions{
		Pool: []pmu.Event{pmu.CPUCycles, pmu.InstSpec}, // L2 excluded
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Events {
		if e == pmu.L2DCache {
			t.Fatal("event outside the pool selected")
		}
	}
}

func TestRestrictedPoolExcludesBadEvents(t *testing.T) {
	r := RestrictedPool()
	for _, e := range r {
		switch e {
		case pmu.UnalignedLdSt, pmu.VfpSpec, pmu.L1DCacheWB,
			pmu.BrMisPred, pmu.ITLBRefill, pmu.L1ICache, pmu.L1ICacheRefill:
			t.Fatalf("restricted pool contains excluded event %s", e)
		}
	}
	if len(r) != len(DefaultPool())-7 {
		t.Fatalf("restricted pool size %d, want %d", len(r), len(DefaultPool())-7)
	}
}

func TestValidateAndComponents(t *testing.T) {
	obs := synthObs(120, 0.004, 3)
	m, err := Build("a15", obs, BuildOptions{Pool: DefaultPool()})
	if err != nil {
		t.Fatal(err)
	}
	q := Validate(m, obs)
	if q.N != 120 || q.MAPE < 0 || q.MaxAPE < q.MAPE {
		t.Fatalf("quality = %+v", q)
	}
	comps := m.Components(&obs[0])
	if comps[0].Name != "intercept" {
		t.Fatal("first component must be the intercept")
	}
	sum := 0.0
	for _, c := range comps {
		sum += c.Watts
	}
	if math.Abs(sum-m.Estimate(&obs[0])) > 1e-9 {
		t.Fatal("components must sum to the estimate")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("a15", nil, BuildOptions{}); err == nil {
		t.Fatal("no observations must error")
	}
}

func TestMappingAvailability(t *testing.T) {
	m := DefaultMapping()
	if !m.Available(pmu.CPUCycles) || !m.Available(pmu.L2DCache) {
		t.Fatal("core events must be mappable")
	}
	if m.Available(pmu.UnalignedLdSt) {
		t.Fatal("unaligned accesses have no gem5 equivalent (paper Section V)")
	}
	if _, err := m.Count(pmu.UnalignedLdSt, nil); err == nil {
		t.Fatal("unmapped count must error")
	}
}

func TestMappingEvaluation(t *testing.T) {
	m := DefaultMapping()
	stats := map[string]float64{
		"sim_seconds":                    2,
		"system.cpu.numCycles":           2e9,
		"system.mem_ctrls.readReqs":      100,
		"system.mem_ctrls.writeReqs":     50,
		"system.cpu.iq.FU_type::IntAlu":  1000,
		"system.cpu.iq.FU_type::IntMult": 200,
		"system.cpu.iq.FU_type::IntDiv":  10,
	}
	if c, err := m.Count(pmu.BusAccess, stats); err != nil || c != 150 {
		t.Fatalf("bus = %v, %v", c, err)
	}
	if c, _ := m.Count(pmu.DpSpec, stats); c != 1210 {
		t.Fatalf("dp = %v", c)
	}
	obs, err := m.ObservationFromGem5("w", "a15", 1000, 1.0, stats)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Rates[pmu.CPUCycles] != 1e9 {
		t.Fatalf("cycle rate = %v", obs.Rates[pmu.CPUCycles])
	}
	if _, err := m.ObservationFromGem5("w", "a15", 1000, 1.0, map[string]float64{}); err == nil {
		t.Fatal("missing sim_seconds must error")
	}
}

func TestMisclassificationVisibleThroughMapping(t *testing.T) {
	// FP work lands in SIMD stats: the VFP mapping reads ~0 while the ASE
	// mapping absorbs the FP counts — the defect the paper reports.
	m := DefaultMapping()
	stats := map[string]float64{
		"system.cpu.iq.FU_type::FloatAdd":     0,
		"system.cpu.iq.FU_type::SimdFloatAdd": 5000,
		"system.cpu.iq.FU_type::SimdAlu":      1000,
	}
	vfp, _ := m.Count(pmu.VfpSpec, stats)
	ase, _ := m.Count(pmu.AseSpec, stats)
	if vfp != 0 || ase != 6000 {
		t.Fatalf("vfp=%v ase=%v; misclassification not reproduced", vfp, ase)
	}
}

func TestEquationExport(t *testing.T) {
	obs := synthObs(100, 0.004, 4)
	m, err := Build("a15", obs, BuildOptions{Pool: []pmu.Event{pmu.CPUCycles, pmu.L2DCache}})
	if err != nil {
		t.Fatal(err)
	}
	eq := m.Equation(DefaultMapping())
	if !strings.Contains(eq, "power = ") || !strings.Contains(eq, "system.cpu.numCycles") {
		t.Fatalf("equation = %q", eq)
	}
	if !strings.Contains(eq, "voltage^2") || !strings.Contains(eq, "sim_seconds") {
		t.Fatalf("equation lacks scaling terms: %q", eq)
	}
}

func TestModelString(t *testing.T) {
	m := &Model{Cluster: "a7", Intercept: 0.1,
		Events: []pmu.Event{pmu.CPUCycles}, Coef: []float64{0.5}}
	s := m.String()
	if !strings.Contains(s, "P(a7)") || !strings.Contains(s, "CPU_CYCLES") {
		t.Fatalf("String() = %q", s)
	}
}
