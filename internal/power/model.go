// Package power implements the empirical PMC-based power modelling of the
// paper's Section V: the Powmon methodology (constrained stepwise PMC
// selection + OLS formulation), model validation statistics, the software
// tool that applies one model to either hardware PMC data or gem5
// statistics (Fig. 2), and the export of run-time power equations.
//
// Model form. Each regressor is a PMC event *rate* scaled by V² (dynamic
// energy moves charge at the supply voltage); the intercept captures
// static and constant dynamic power:
//
//	P = β₀ + Σ_e β_e · V² · rate_e · 1e-9
//
// The cycle counter (0x11) acts as the frequency term — its rate is the
// effective clock — so a single model covers every DVFS point and "the
// voltage for a selected frequency can be changed without re-running the
// gem5 simulation", as the paper's tool allows.
package power

import (
	"fmt"
	"sort"
	"strings"

	"gemstone/internal/pmu"
)

// Observation is one power-characterisation data point: the event rates of
// a workload at one DVFS point together with the measured average power.
type Observation struct {
	Workload string
	Cluster  string
	FreqMHz  int
	VoltageV float64
	// Rates holds events per second for every captured PMC event.
	Rates map[pmu.Event]float64
	// PowerW is the sensor-measured average power.
	PowerW float64
}

// regressor returns the model regressor value for event e.
func regressor(o *Observation, e pmu.Event) float64 {
	return o.VoltageV * o.VoltageV * o.Rates[e] * 1e-9
}

// Quality summarises a model's validation statistics against its training
// (or a held-out) observation set — the numbers Table/Section V reports.
type Quality struct {
	MAPE    float64 // mean absolute percentage error (%)
	MPE     float64 // mean signed percentage error (%)
	MaxAPE  float64 // worst single-observation error (%)
	SER     float64 // standard error of regression (W)
	R2      float64
	AdjR2   float64
	MeanVIF float64
	MaxP    float64 // largest coefficient p-value
	N       int
}

// Model is a fitted empirical power model.
type Model struct {
	// Cluster names the CPU cluster the model was trained for.
	Cluster string
	// Events lists the selected PMC events, in selection order (most
	// explanatory first).
	Events []pmu.Event
	// Coef holds one coefficient per event (same order).
	Coef []float64
	// Intercept is β₀: static plus constant dynamic power.
	Intercept float64
	// Quality holds the training-set validation statistics.
	Quality Quality
	// PValues holds the coefficient p-values (same order as Events).
	PValues []float64
	// VIFs holds per-event variance inflation factors.
	VIFs []float64
}

// Estimate returns the power estimate for one observation's rates.
func (m *Model) Estimate(o *Observation) float64 {
	p := m.Intercept
	for i, e := range m.Events {
		p += m.Coef[i] * regressor(o, e)
	}
	return p
}

// Component is one additive term of a power estimate — the per-component
// breakdown Fig. 7's stacked bars show.
type Component struct {
	Name  string
	Watts float64
}

// Components decomposes the estimate for one observation.
func (m *Model) Components(o *Observation) []Component {
	out := []Component{{Name: "intercept", Watts: m.Intercept}}
	for i, e := range m.Events {
		out = append(out, Component{Name: e.String(), Watts: m.Coef[i] * regressor(o, e)})
	}
	return out
}

// Validate computes quality statistics of the model against obs.
func Validate(m *Model, obs []Observation) Quality {
	var q Quality
	if len(obs) == 0 {
		return q
	}
	var sumPE, sumAPE, maxAPE, ssRes float64
	for i := range obs {
		o := &obs[i]
		est := m.Estimate(o)
		pe := 0.0
		if o.PowerW != 0 {
			pe = 100 * (o.PowerW - est) / o.PowerW
		}
		ape := pe
		if ape < 0 {
			ape = -ape
		}
		sumPE += pe
		sumAPE += ape
		if ape > maxAPE {
			maxAPE = ape
		}
		d := o.PowerW - est
		ssRes += d * d
	}
	n := float64(len(obs))
	q.N = len(obs)
	q.MPE = sumPE / n
	q.MAPE = sumAPE / n
	q.MaxAPE = maxAPE
	df := n - float64(len(m.Events)+1)
	if df > 0 {
		q.SER = sqrt(ssRes / df)
	}
	return q
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty for reporting purposes, but use the
	// stdlib for exactness.
	return mathSqrt(x)
}

// Equation renders the model as a run-time power equation over gem5
// statistic names — the format the paper's tool outputs so the equation
// can be inserted directly into gem5's power-model configuration.
func (m *Model) Equation(mapping Mapping) string {
	var b strings.Builder
	fmt.Fprintf(&b, "power = %.6g", m.Intercept)
	for i, e := range m.Events {
		expr, ok := mapping.Expr(e)
		if !ok {
			expr = fmt.Sprintf("<unavailable:%s>", e)
		}
		fmt.Fprintf(&b, " + %.6g * voltage^2 * (%s)/sim_seconds * 1e-9", m.Coef[i], expr)
	}
	return b.String()
}

// String gives a compact human-readable summary.
func (m *Model) String() string {
	parts := make([]string, 0, len(m.Events)+1)
	parts = append(parts, fmt.Sprintf("%.4g", m.Intercept))
	for i, e := range m.Events {
		parts = append(parts, fmt.Sprintf("%.4g*V2r[%s]", m.Coef[i], e))
	}
	return fmt.Sprintf("P(%s) = %s", m.Cluster, strings.Join(parts, " + "))
}

// SortedEvents returns the model's events sorted by event number (for
// stable display).
func (m *Model) SortedEvents() []pmu.Event {
	evs := append([]pmu.Event(nil), m.Events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i] < evs[j] })
	return evs
}
