package power

import (
	"fmt"
	"math"

	"gemstone/internal/pmu"
	"gemstone/internal/stats"
)

func mathSqrt(x float64) float64 { return math.Sqrt(x) }

// BuildOptions controls the Powmon model-building process.
type BuildOptions struct {
	// Pool is the set of candidate PMC events the selection may choose
	// from. The paper restricts this pool to events that are readily
	// available and accurate in gem5 (Section V); an unrestricted pool
	// gives the baseline model.
	Pool []pmu.Event
	// MaxEvents bounds the number of selected events; 0 applies
	// DefaultMaxEvents (the paper's models use ~7 events), negative
	// removes the bound.
	MaxEvents int
	// PEnter is the stepwise significance threshold.
	PEnter float64
}

// DefaultPool returns the candidate events a power-characterisation
// campaign on the reference platform would offer.
func DefaultPool() []pmu.Event {
	return []pmu.Event{
		pmu.CPUCycles, pmu.InstRetired, pmu.InstSpec, pmu.DpSpec,
		pmu.VfpSpec, pmu.AseSpec, pmu.LdSpec, pmu.StSpec,
		pmu.L1DCache, pmu.L1DCacheRefill, pmu.L1DCacheRefillWr, pmu.L1DCacheWB,
		pmu.L1ICache, pmu.L1ICacheRefill,
		pmu.L2DCache, pmu.L2DCacheRefill, pmu.L2DCacheWB,
		pmu.BusAccess, pmu.BrMisPred, pmu.BrPred,
		pmu.UnalignedLdSt, pmu.ITLBRefill, pmu.DTLBRefill,
		pmu.DmbSpec, pmu.LdrexSpec,
	}
}

// RestrictedPool returns DefaultPool minus the events the paper found
// unavailable or badly modelled in gem5: unaligned accesses have no gem5
// statistic, VFP is mis-classified as SIMD, and the L1D writeback count
// (0x15) had an MPE over 1000%.
func RestrictedPool() []pmu.Event {
	bad := map[pmu.Event]bool{
		pmu.UnalignedLdSt:  true, // not readily available in gem5
		pmu.VfpSpec:        true, // misclassified as SIMD FP
		pmu.L1DCacheWB:     true, // MPE > 1000% for total and rate
		pmu.BrMisPred:      true, // ~21x in the model (the BP bug)
		pmu.ITLBRefill:     true, // ~0.06x (wrong L1 ITLB size)
		pmu.L1ICache:       true, // >2x (per-instruction fetch)
		pmu.L1ICacheRefill: true, // follows the inflated access stream
	}
	var out []pmu.Event
	for _, e := range DefaultPool() {
		if !bad[e] {
			out = append(out, e)
		}
	}
	return out
}

// DefaultMaxEvents is the event cap applied when BuildOptions.MaxEvents
// is zero; the paper's Cortex-A15 model selects seven events.
const DefaultMaxEvents = 8

// Build fits an empirical power model to the observations using forward
// stepwise selection over opt.Pool.
func Build(cluster string, obs []Observation, opt BuildOptions) (*Model, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("power: no observations")
	}
	pool := opt.Pool
	if len(pool) == 0 {
		pool = DefaultPool()
	}
	pEnter := opt.PEnter
	if pEnter == 0 {
		pEnter = 0.05
	}
	maxEvents := opt.MaxEvents
	if maxEvents == 0 {
		maxEvents = DefaultMaxEvents
	} else if maxEvents < 0 {
		maxEvents = 0
	}

	// Candidate columns: V²·rate for each pool event.
	cands := make([][]float64, len(pool))
	for c, e := range pool {
		col := make([]float64, len(obs))
		for i := range obs {
			col[i] = regressor(&obs[i], e)
		}
		cands[c] = col
	}
	y := make([]float64, len(obs))
	for i := range obs {
		y[i] = obs[i].PowerW
	}

	res, err := stats.Stepwise(cands, y, stats.StepwiseOptions{
		PEnter: pEnter, MaxTerms: maxEvents, MinR2Gain: 1e-4,
	})
	if err != nil {
		return nil, fmt.Errorf("power: stepwise selection failed: %w", err)
	}
	if len(res.Selected) == 0 {
		return nil, fmt.Errorf("power: no event survived selection")
	}

	m := &Model{
		Cluster:   cluster,
		Intercept: res.Fit.Coef[0],
	}
	selCols := make([][]float64, 0, len(res.Selected))
	for i, ci := range res.Selected {
		m.Events = append(m.Events, pool[ci])
		m.Coef = append(m.Coef, res.Fit.Coef[i+1])
		m.PValues = append(m.PValues, res.Fit.PValue[i+1])
		selCols = append(selCols, cands[ci])
	}

	// Quality statistics.
	q := Validate(m, obs)
	q.R2 = res.Fit.R2
	q.AdjR2 = res.Fit.AdjR2
	q.SER = res.Fit.SER
	q.MaxP = 0
	for _, p := range m.PValues {
		if p > q.MaxP {
			q.MaxP = p
		}
	}
	// VIFs over the selected regressors (observations × events).
	X := make([][]float64, len(obs))
	for r := range obs {
		X[r] = make([]float64, len(selCols))
		for c := range selCols {
			X[r][c] = selCols[c][r]
		}
	}
	m.VIFs = stats.VIF(X)
	sum, n := 0.0, 0
	for _, v := range m.VIFs {
		if !math.IsInf(v, 1) {
			sum += v
			n++
		}
	}
	if n > 0 {
		q.MeanVIF = sum / float64(n)
	}
	m.Quality = q
	return m, nil
}
