package power

import (
	"fmt"

	"gemstone/internal/pmu"
)

// Mapping relates PMC events to gem5 statistics — the "equivalent gem5
// events" table of the paper's box l (Fig. 1). A mapping entry evaluates
// the gem5 stats map to a count; events with no reliable gem5 equivalent
// (e.g. unaligned accesses) have no entry.
type Mapping struct {
	entries map[pmu.Event]mapEntry
}

type mapEntry struct {
	expr string // human-readable stat expression
	eval func(stats map[string]float64) float64
}

// DefaultMapping returns the gem5 equivalences used throughout the paper's
// Section IV-E/V/VI analyses, including the deliberate divergences:
// hardware L2 data cache loads are equated to gem5 L2 cache accesses, and
// VFP maps to the (near-empty) Float* functional-unit statistics because
// the model misclassifies FP as SIMD.
func DefaultMapping() Mapping {
	m := Mapping{entries: map[pmu.Event]mapEntry{}}
	add := func(e pmu.Event, stats ...string) {
		// The displayed expression uses the full statistic names so the
		// exported run-time equation can be pasted into gem5 directly.
		expr := ""
		for i, name := range stats {
			if i > 0 {
				expr += " + "
			}
			expr += name
		}
		m.entries[e] = mapEntry{expr: expr, eval: func(sm map[string]float64) float64 {
			s := 0.0
			for _, name := range stats {
				s += sm[name]
			}
			return s
		}}
	}
	add(pmu.CPUCycles,
		"system.cpu.numCycles")
	add(pmu.InstRetired,
		"system.cpu.committedInsts")
	add(pmu.InstSpec,
		"system.cpu.iew.iewExecutedInsts")
	add(pmu.DpSpec,
		"system.cpu.iq.FU_type::IntAlu", "system.cpu.iq.FU_type::IntMult", "system.cpu.iq.FU_type::IntDiv")
	// The misclassification: VFP reads the empty Float* FUs; SIMD absorbs
	// both FP and SIMD work.
	add(pmu.VfpSpec,
		"system.cpu.iq.FU_type::FloatAdd", "system.cpu.iq.FU_type::FloatMult", "system.cpu.iq.FU_type::FloatDiv")
	add(pmu.AseSpec,
		"system.cpu.iq.FU_type::SimdAlu", "system.cpu.iq.FU_type::SimdFloatAdd",
		"system.cpu.iq.FU_type::SimdFloatMult", "system.cpu.iq.FU_type::SimdFloatDiv")
	add(pmu.LdSpec,
		"system.cpu.iq.FU_type::MemRead")
	add(pmu.StSpec,
		"system.cpu.iq.FU_type::MemWrite")
	add(pmu.L1DCache,
		"system.cpu.dcache.overall_accesses")
	add(pmu.L1DCacheRefill,
		"system.cpu.dcache.overall_mshr_misses")
	add(pmu.L1DCacheRefillWr,
		"system.cpu.dcache.WriteReq_mshr_misses")
	add(pmu.L1DCacheWB,
		"system.cpu.dcache.writebacks")
	add(pmu.L1ICache,
		"system.cpu.icache.overall_accesses")
	add(pmu.L1ICacheRefill,
		"system.cpu.icache.overall_misses")
	// HW L2 data loads are equated to gem5 L2 accesses (see Section II).
	add(pmu.L2DCache,
		"system.l2.overall_accesses")
	add(pmu.L2DCacheRefill,
		"system.l2.overall_misses")
	add(pmu.L2DCacheWB,
		"system.l2.writebacks")
	add(pmu.BusAccess,
		"system.mem_ctrls.readReqs", "system.mem_ctrls.writeReqs")
	add(pmu.BrMisPred,
		"system.cpu.commit.branchMispredicts")
	add(pmu.BrPred,
		"system.cpu.branchPred.lookups")
	add(pmu.ITLBRefill,
		"system.cpu.itb.misses")
	add(pmu.DTLBRefill,
		"system.cpu.dtb.misses")
	add(pmu.LdrexSpec,
		"system.cpu.ldrex_count")
	add(pmu.StrexPassSpec,
		"system.cpu.strex_pass_count")
	add(pmu.StrexFailSpec,
		"system.cpu.strex_fail_count")
	// Barriers: gem5 counts them together; DMB is the dominant kind.
	add(pmu.DmbSpec,
		"system.cpu.commit.membars")
	add(pmu.PCWriteRetired,
		"system.cpu.commit.branches")
	// No entries for UnalignedLdSt / UnalignedLdSpec / UnalignedStSpec:
	// the paper found no readily available gem5 equivalent.
	return m
}

// Available reports whether event e has a gem5 equivalent.
func (m Mapping) Available(e pmu.Event) bool {
	_, ok := m.entries[e]
	return ok
}

// Expr returns the stat expression for e.
func (m Mapping) Expr(e pmu.Event) (string, bool) {
	en, ok := m.entries[e]
	return en.expr, ok
}

// Count evaluates the gem5 equivalent count of e against a stats map.
func (m Mapping) Count(e pmu.Event, stats map[string]float64) (float64, error) {
	en, ok := m.entries[e]
	if !ok {
		return 0, fmt.Errorf("power: event %s has no gem5 equivalent", e)
	}
	return en.eval(stats), nil
}

// ObservationFromGem5 converts a gem5 statistics map into a power-model
// Observation: every mappable event's count becomes a rate over
// sim_seconds. This is the "apply power models to gem5 output files"
// path of the paper's Fig. 2 tool.
func (m Mapping) ObservationFromGem5(workload, cluster string, freqMHz int, voltageV float64, stats map[string]float64) (Observation, error) {
	secs := stats["sim_seconds"]
	if secs <= 0 {
		return Observation{}, fmt.Errorf("power: gem5 stats have non-positive sim_seconds")
	}
	rates := make(map[pmu.Event]float64, len(m.entries))
	for e, en := range m.entries {
		rates[e] = en.eval(stats) / secs
	}
	return Observation{
		Workload: workload, Cluster: cluster,
		FreqMHz: freqMHz, VoltageV: voltageV,
		Rates: rates,
	}, nil
}
