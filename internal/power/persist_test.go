package power

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gemstone/internal/pmu"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	obs := synthObs(120, 0.004, 9)
	m, err := Build("a15", obs, BuildOptions{Pool: DefaultPool()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cluster != m.Cluster || loaded.Intercept != m.Intercept {
		t.Fatal("header mismatch")
	}
	if len(loaded.Events) != len(m.Events) {
		t.Fatalf("events %d != %d", len(loaded.Events), len(m.Events))
	}
	for i := range m.Events {
		if loaded.Events[i] != m.Events[i] || loaded.Coef[i] != m.Coef[i] {
			t.Fatalf("term %d mismatch", i)
		}
	}
	if loaded.Quality.MAPE != m.Quality.MAPE || loaded.Quality.N != m.Quality.N {
		t.Fatal("quality mismatch")
	}
	// A loaded model estimates identically.
	for i := range obs[:10] {
		a, b := m.Estimate(&obs[i]), loaded.Estimate(&obs[i])
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("estimate diverges: %v vs %v", a, b)
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("{")); err == nil {
		t.Fatal("bad JSON must error")
	}
	if _, err := LoadModel(strings.NewReader(`{"cluster":"","events":[]}`)); err == nil {
		t.Fatal("incomplete document must error")
	}
}

func TestObservationsCSVRoundTrip(t *testing.T) {
	obs := synthObs(25, 0.004, 10)
	var buf bytes.Buffer
	if err := WriteObservationsCSV(&buf, obs); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadObservationsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(obs) {
		t.Fatalf("rows %d != %d", len(loaded), len(obs))
	}
	for i := range obs {
		a, b := obs[i], loaded[i]
		if a.Workload != b.Workload || a.FreqMHz != b.FreqMHz ||
			a.VoltageV != b.VoltageV || a.PowerW != b.PowerW {
			t.Fatalf("row %d header mismatch", i)
		}
		for e, v := range a.Rates {
			if b.Rates[e] != v {
				t.Fatalf("row %d rate %s: %v != %v", i, e, b.Rates[e], v)
			}
		}
	}
	// A model built from the round-tripped data is identical.
	m1, err := Build("a15", obs, BuildOptions{Pool: DefaultPool()})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build("a15", loaded, BuildOptions{Pool: DefaultPool()})
	if err != nil {
		t.Fatal(err)
	}
	if m1.String() != m2.String() {
		t.Fatalf("models differ:\n%s\n%s", m1, m2)
	}
}

func TestReadObservationsCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"workload,cluster,freq_mhz,voltage_v,power_w\n", // no rows
		"workload,cluster,freq_mhz,voltage_v,power_w,bogus\nw,a15,600,0.9,1,2\n",
		"workload,cluster,freq_mhz,voltage_v,power_w\nw,a15,NOTANUM,0.9,1\n",
	}
	for i, in := range cases {
		if _, err := ReadObservationsCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	_ = pmu.CPUCycles
}
