package power

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"gemstone/internal/pmu"
)

// The paper publishes its models and datasets alongside the GemStone tool;
// this file provides the corresponding serialisation: power models as JSON
// documents and characterisation datasets as CSV tables.

// modelJSON is the on-disk representation of a Model.
type modelJSON struct {
	Cluster   string             `json:"cluster"`
	Intercept float64            `json:"intercept_watts"`
	Events    []modelTerm        `json:"events"`
	Quality   map[string]float64 `json:"quality"`
}

type modelTerm struct {
	Event  uint16  `json:"event"`
	Name   string  `json:"name"`
	Coef   float64 `json:"coefficient"`
	PValue float64 `json:"p_value"`
	VIF    float64 `json:"vif"`
}

// SaveModel writes the model as indented JSON.
func SaveModel(w io.Writer, m *Model) error {
	doc := modelJSON{
		Cluster:   m.Cluster,
		Intercept: m.Intercept,
		Quality: map[string]float64{
			"mape":     m.Quality.MAPE,
			"mpe":      m.Quality.MPE,
			"max_ape":  m.Quality.MaxAPE,
			"ser":      m.Quality.SER,
			"r2":       m.Quality.R2,
			"adj_r2":   m.Quality.AdjR2,
			"mean_vif": m.Quality.MeanVIF,
			"n":        float64(m.Quality.N),
		},
	}
	for i, e := range m.Events {
		term := modelTerm{Event: uint16(e), Name: e.Name(), Coef: m.Coef[i]}
		if i < len(m.PValues) {
			term.PValue = m.PValues[i]
		}
		if i < len(m.VIFs) {
			term.VIF = m.VIFs[i]
		}
		doc.Events = append(doc.Events, term)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadModel reads a model saved by SaveModel.
func LoadModel(r io.Reader) (*Model, error) {
	var doc modelJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("power: decoding model: %w", err)
	}
	if doc.Cluster == "" || len(doc.Events) == 0 {
		return nil, fmt.Errorf("power: model document incomplete")
	}
	m := &Model{Cluster: doc.Cluster, Intercept: doc.Intercept}
	for _, t := range doc.Events {
		m.Events = append(m.Events, pmu.Event(t.Event))
		m.Coef = append(m.Coef, t.Coef)
		m.PValues = append(m.PValues, t.PValue)
		m.VIFs = append(m.VIFs, t.VIF)
	}
	q := doc.Quality
	m.Quality = Quality{
		MAPE: q["mape"], MPE: q["mpe"], MaxAPE: q["max_ape"], SER: q["ser"],
		R2: q["r2"], AdjR2: q["adj_r2"], MeanVIF: q["mean_vif"], N: int(q["n"]),
	}
	return m, nil
}

// WriteObservationsCSV exports a characterisation dataset. Columns:
// workload, cluster, freq_mhz, voltage_v, power_w, then one rate column
// per event present in any observation (sorted by event number).
func WriteObservationsCSV(w io.Writer, obs []Observation) error {
	eventSet := map[pmu.Event]bool{}
	for i := range obs {
		for e := range obs[i].Rates {
			eventSet[e] = true
		}
	}
	events := make([]pmu.Event, 0, len(eventSet))
	for e := range eventSet {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })

	cw := csv.NewWriter(w)
	header := []string{"workload", "cluster", "freq_mhz", "voltage_v", "power_w"}
	for _, e := range events {
		header = append(header, fmt.Sprintf("rate_0x%02x", uint16(e)))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range obs {
		o := &obs[i]
		row := []string{
			o.Workload, o.Cluster,
			strconv.Itoa(o.FreqMHz),
			strconv.FormatFloat(o.VoltageV, 'g', -1, 64),
			strconv.FormatFloat(o.PowerW, 'g', -1, 64),
		}
		for _, e := range events {
			row = append(row, strconv.FormatFloat(o.Rates[e], 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadObservationsCSV imports a dataset written by WriteObservationsCSV.
func ReadObservationsCSV(r io.Reader) ([]Observation, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("power: reading dataset: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("power: dataset has no rows")
	}
	header := records[0]
	const fixed = 5
	if len(header) < fixed {
		return nil, fmt.Errorf("power: dataset header too short")
	}
	events := make([]pmu.Event, 0, len(header)-fixed)
	for _, col := range header[fixed:] {
		var id uint16
		if _, err := fmt.Sscanf(col, "rate_0x%x", &id); err != nil {
			return nil, fmt.Errorf("power: bad rate column %q", col)
		}
		events = append(events, pmu.Event(id))
	}
	var obs []Observation
	for ln, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("power: row %d has %d fields, want %d", ln+2, len(rec), len(header))
		}
		freq, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("power: row %d freq: %w", ln+2, err)
		}
		volt, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("power: row %d voltage: %w", ln+2, err)
		}
		pw, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("power: row %d power: %w", ln+2, err)
		}
		o := Observation{
			Workload: rec[0], Cluster: rec[1],
			FreqMHz: freq, VoltageV: volt, PowerW: pw,
			Rates: make(map[pmu.Event]float64, len(events)),
		}
		for i, e := range events {
			v, err := strconv.ParseFloat(rec[fixed+i], 64)
			if err != nil {
				return nil, fmt.Errorf("power: row %d rate %s: %w", ln+2, e, err)
			}
			o.Rates[e] = v
		}
		obs = append(obs, o)
	}
	return obs, nil
}
