// Package mcpat implements a McPAT-style *analytical* power model: power
// is derived from the micro-architectural structure (cache geometries,
// issue width, window size, technology node) and activity statistics,
// with no fitting against measured power whatsoever.
//
// This is the baseline the paper positions empirical PMC models against:
// simulator-based analytical models (Wattch, McPAT) are flexible — they
// can estimate power for a machine that does not exist — but carry large
// abstraction and technology-calibration errors (Section II cites MAPEs
// around 25 % when McPAT is compared against this same board, and [3]/[6]
// report worse). The model here mirrors that architecture: per-component
// energy/access values are computed from structure via generic CACTI-like
// scaling rules and a nominal technology node, not calibrated to the
// reference silicon. The benchmark suite compares its accuracy against
// the empirical models of internal/power on identical observations.
package mcpat

import (
	"fmt"
	"math"

	"gemstone/internal/platform"
	"gemstone/internal/pmu"
	"gemstone/internal/power"
)

// Config holds the analytical model's technology assumptions.
type Config struct {
	// TechNm is the assumed process node in nanometres. The Exynos-5422
	// is a 28 nm part; analytical models are routinely run with the
	// nearest library the tool ships (e.g. 32 or 22 nm), which is one of
	// the calibration-error sources.
	TechNm float64
	// NominalVolt is the library's characterisation voltage.
	NominalVolt float64
}

// DefaultConfig mirrors common McPAT usage: the nearest shipped library
// rather than the part's actual process.
func DefaultConfig() Config {
	return Config{TechNm: 32, NominalVolt: 1.0}
}

// Model is an analytical power model for one cluster.
type Model struct {
	cluster platform.ClusterConfig
	cfg     Config

	// Derived per-event energies (nJ at NominalVolt) and static power.
	energyNJ map[pmu.Event]float64
	clockCV  float64 // W per GHz·V²
	leakW    float64 // W per V at nominal temperature
}

// New derives the analytical model from a cluster's structure.
func New(cluster platform.ClusterConfig, cfg Config) (*Model, error) {
	if cfg.TechNm <= 0 || cfg.NominalVolt <= 0 {
		return nil, fmt.Errorf("mcpat: bad technology config %+v", cfg)
	}
	m := &Model{cluster: cluster, cfg: cfg, energyNJ: map[pmu.Event]float64{}}

	// Technology scaling: dynamic energy scales roughly with feature size;
	// everything below is expressed at 45 nm and scaled.
	scale := cfg.TechNm / 45.0

	// CACTI-like cache access energies: E ≈ k · sqrt(KB · assoc) nJ.
	h := cluster.Hier
	l1dNJ := 0.05 * math.Sqrt(float64(h.L1D.SizeBytes)/1024*float64(h.L1D.Assoc)) * scale
	l1iNJ := 0.05 * math.Sqrt(float64(h.L1I.SizeBytes)/1024*float64(h.L1I.Assoc)) * scale
	l2NJ := 0.05 * math.Sqrt(float64(h.L2.SizeBytes)/1024*float64(h.L2.Assoc)) * scale

	// Core energies from pipeline structure: wider machines pay more per
	// instruction (rename/bypass/wakeup grow superlinearly with width).
	width := float64(cluster.Core.IssueWidth)
	instNJ := 0.015 * width * math.Sqrt(width) * scale
	if cluster.Core.ROBSize > 0 {
		// Out-of-order bookkeeping: ROB/IQ/LSQ CAM energy.
		instNJ += 0.0008 * math.Sqrt(float64(cluster.Core.ROBSize)) * width * scale
	}
	fpuNJ := 6 * instNJ // FP datapath energy dominates integer issue
	simdNJ := 8 * instNJ
	busNJ := 4.0 * scale // off-chip request launch
	mispNJ := 0.4 * width * scale

	m.energyNJ[pmu.InstSpec] = instNJ
	m.energyNJ[pmu.VfpSpec] = fpuNJ
	m.energyNJ[pmu.AseSpec] = simdNJ
	m.energyNJ[pmu.L1DCache] = l1dNJ
	m.energyNJ[pmu.L1ICache] = l1iNJ
	m.energyNJ[pmu.L2DCache] = l2NJ
	m.energyNJ[pmu.BusAccess] = busNJ
	m.energyNJ[pmu.BrMisPred] = mispNJ

	// Clock tree + global interconnect: proportional to core width.
	m.clockCV = 0.09 * width * scale

	// Leakage from "area": caches dominate; per-MB leak plus core leak.
	areaMB := float64(h.L1I.SizeBytes+h.L1D.SizeBytes+h.L2.SizeBytes) / (1 << 20)
	m.leakW = (0.10*areaMB + 0.03*width) * scale

	return m, nil
}

// Estimate returns the analytical power estimate for the observation's
// activity, operating voltage and (via the cycle rate) frequency.
func (m *Model) Estimate(o *power.Observation) float64 {
	v2 := o.VoltageV * o.VoltageV / (m.cfg.NominalVolt * m.cfg.NominalVolt)
	p := m.clockCV * (o.Rates[pmu.CPUCycles] / 1e9) * v2
	for e, nj := range m.energyNJ {
		p += o.Rates[e] * nj * 1e-9 * v2
	}
	p += m.leakW * o.VoltageV / m.cfg.NominalVolt
	return p
}

// Components returns the additive breakdown of an estimate.
func (m *Model) Components(o *power.Observation) []power.Component {
	v2 := o.VoltageV * o.VoltageV / (m.cfg.NominalVolt * m.cfg.NominalVolt)
	out := []power.Component{
		{Name: "leakage", Watts: m.leakW * o.VoltageV / m.cfg.NominalVolt},
		{Name: "clock", Watts: m.clockCV * (o.Rates[pmu.CPUCycles] / 1e9) * v2},
	}
	for e, nj := range m.energyNJ {
		out = append(out, power.Component{
			Name:  e.String(),
			Watts: o.Rates[e] * nj * 1e-9 * v2,
		})
	}
	return out
}

// Validate computes error statistics of the analytical model against
// sensor-measured observations — directly comparable with the empirical
// models' power.Quality.
func (m *Model) Validate(obs []power.Observation) power.Quality {
	var q power.Quality
	if len(obs) == 0 {
		return q
	}
	var sumPE, sumAPE, maxAPE float64
	for i := range obs {
		o := &obs[i]
		if o.PowerW == 0 {
			continue
		}
		pe := 100 * (o.PowerW - m.Estimate(o)) / o.PowerW
		ape := math.Abs(pe)
		sumPE += pe
		sumAPE += ape
		if ape > maxAPE {
			maxAPE = ape
		}
		q.N++
	}
	if q.N > 0 {
		q.MPE = sumPE / float64(q.N)
		q.MAPE = sumAPE / float64(q.N)
		q.MaxAPE = maxAPE
	}
	return q
}
