package mcpat

import (
	"context"
	"sync"
	"testing"

	"gemstone/internal/core"
	"gemstone/internal/hw"
	"gemstone/internal/pmu"
	"gemstone/internal/power"
	"gemstone/internal/workload"
)

func pmuInst() pmu.Event { return pmu.InstSpec }
func pmuL2() pmu.Event   { return pmu.L2DCache }

var (
	obsOnce sync.Once
	obsErr  error
	a15Obs  []power.Observation
	a15Runs *core.RunSet
)

func a15Observations(t *testing.T) []power.Observation {
	t.Helper()
	obsOnce.Do(func() {
		a15Runs, obsErr = core.Collect(context.Background(), hw.Platform(), core.CollectOptions{
			Workloads: workload.All(), Clusters: []string{hw.ClusterA15}})
		if obsErr != nil {
			return
		}
		for _, m := range a15Runs.Runs {
			a15Obs = append(a15Obs, core.PowerObservation(m))
		}
	})
	if obsErr != nil {
		t.Fatal(obsErr)
	}
	return a15Obs
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(hw.A15Cluster(), Config{}); err == nil {
		t.Fatal("zero config must error")
	}
	if _, err := New(hw.A15Cluster(), DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestStructuralScaling(t *testing.T) {
	big, err := New(hw.A15Cluster(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	little, err := New(hw.A7Cluster(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Structure drives the analytical model: the wide out-of-order core
	// with the 2 MiB L2 must cost more per instruction and leak more.
	if big.energyNJ[pmuInst()] <= little.energyNJ[pmuInst()] {
		t.Fatal("A15 per-instruction energy must exceed A7's")
	}
	if big.leakW <= little.leakW {
		t.Fatal("A15 leakage must exceed A7's")
	}
	if big.energyNJ[pmuL2()] <= little.energyNJ[pmuL2()] {
		t.Fatal("2 MiB L2 access must cost more than 512 KiB")
	}
}

func TestAnalyticalModelInBallparkButWorseThanEmpirical(t *testing.T) {
	obs := a15Observations(t)
	analytical, err := New(hw.A15Cluster(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qa := analytical.Validate(obs)
	// An uncalibrated analytical model lands in the right ballpark —
	// useful for design-space exploration — but nowhere near sensor
	// accuracy (the paper cites ~25 % MAPE for McPAT on this board).
	if qa.MAPE < 5 {
		t.Fatalf("analytical MAPE %.1f%% implausibly good for an uncalibrated model", qa.MAPE)
	}
	if qa.MAPE > 80 {
		t.Fatalf("analytical MAPE %.1f%% outside any useful ballpark", qa.MAPE)
	}

	empirical, err := power.Build(hw.ClusterA15, obs, power.BuildOptions{Pool: power.RestrictedPool()})
	if err != nil {
		t.Fatal(err)
	}
	if empirical.Quality.MAPE*3 > qa.MAPE {
		t.Fatalf("empirical model (%.2f%%) should beat analytical (%.1f%%) by a wide margin — the paper's Section II claim",
			empirical.Quality.MAPE, qa.MAPE)
	}
}

func TestComponentsSumToEstimate(t *testing.T) {
	obs := a15Observations(t)
	m, err := New(hw.A15Cluster(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	o := &obs[0]
	sum := 0.0
	for _, c := range m.Components(o) {
		sum += c.Watts
	}
	if d := sum - m.Estimate(o); d > 1e-9 || d < -1e-9 {
		t.Fatalf("components sum %v != estimate %v", sum, m.Estimate(o))
	}
}

func TestVoltageScaling(t *testing.T) {
	obs := a15Observations(t)
	m, err := New(hw.A15Cluster(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	o := obs[0]
	lo := m.Estimate(&o)
	o.VoltageV *= 1.2
	hi := m.Estimate(&o)
	if hi <= lo {
		t.Fatal("power must grow with voltage")
	}
}
