package gem5

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseStatsFile guards the stats.txt parser against malformed input:
// it must either return an error or a well-formed map — never panic.
// The seed corpus covers the format variations gem5 produces; `go test`
// runs the seeds, `go test -fuzz=FuzzParseStatsFile` explores further.
func FuzzParseStatsFile(f *testing.F) {
	f.Add("sim_seconds 1.5\n")
	f.Add("---------- Begin Simulation Statistics ----------\na.b 1 # c\n---------- End Simulation Statistics   ----------\n")
	f.Add("x nan\ny inf\nz -inf\n")
	f.Add("pct 97.5% # annotated\n")
	f.Add("")
	f.Add("name")
	f.Add("name value")
	f.Add(strings.Repeat("a.b 1\n", 1000))
	f.Fuzz(func(t *testing.T, input string) {
		stats, err := ParseStatsFile(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(stats) == 0 {
			t.Fatal("nil-error parse must return statistics")
		}
		// A successful parse must round-trip through the writer.
		var buf bytes.Buffer
		if werr := WriteStatsFile(&buf, stats); werr != nil {
			t.Fatalf("write after parse: %v", werr)
		}
		if _, rerr := ParseStatsFile(&buf); rerr != nil {
			t.Fatalf("re-parse after write: %v", rerr)
		}
	})
}
