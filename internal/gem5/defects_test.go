package gem5

import (
	"strings"
	"testing"

	"gemstone/internal/hw"
	"gemstone/internal/mem"
)

func TestDefectsEnumeration(t *testing.T) {
	ds := Defects()
	if len(ds) != 10 {
		t.Fatalf("defects = %d", len(ds))
	}
	var union Defect
	for _, d := range ds {
		if d&(d-1) != 0 {
			t.Fatalf("defect %v is not a single bit", d)
		}
		union |= d
	}
	if union != AllDefects {
		t.Fatalf("union %v != AllDefects %v", union, AllDefects)
	}
	if V2Defects != AllDefects&^DefectBP {
		t.Fatal("V2 must be V1 minus the BP bug")
	}
}

func TestDefectString(t *testing.T) {
	if Defect(0).String() != "none" {
		t.Fatal("zero defects")
	}
	if DefectBP.String() != "bp-bug" {
		t.Fatalf("bp name = %q", DefectBP.String())
	}
	s := (DefectBP | DefectDRAM).String()
	if !strings.Contains(s, "bp-bug") || !strings.Contains(s, "dram-latency") {
		t.Fatalf("combined name = %q", s)
	}
}

func TestZeroDefectsMatchesHardware(t *testing.T) {
	clean := BigClusterWithDefects(0)
	ref := hw.A15Cluster()
	// Everything the defects touch must equal the hardware shape
	// (gem5 names its TLBs differently; geometry is what matters).
	sameGeom := func(a, b mem.TLBConfig) bool {
		return a.Entries == b.Entries && a.Assoc == b.Assoc && a.LatencyCycles == b.LatencyCycles
	}
	if !sameGeom(clean.Hier.ITLB, ref.Hier.ITLB) {
		t.Fatal("ITLB differs")
	}
	if !sameGeom(clean.Hier.DTLB, ref.Hier.DTLB) {
		t.Fatal("DTLB differs")
	}
	if !clean.Hier.UnifiedL2TLB || !sameGeom(clean.Hier.L2TLB, ref.Hier.L2TLB) {
		t.Fatal("L2 TLB differs")
	}
	if clean.Hier.DRAM != ref.Hier.DRAM {
		t.Fatal("DRAM differs")
	}
	if !clean.Hier.StreamingStoreMerge {
		t.Fatal("write merge differs")
	}
	if clean.Core.FetchPerInstruction {
		t.Fatal("fetch policy differs")
	}
	if clean.Core.MispredictPenalty != ref.Core.MispredictPenalty ||
		clean.Core.FrontendDepth != ref.Core.FrontendDepth {
		t.Fatal("squash cost differs")
	}
	if clean.Branch.BugSkewedUpdate {
		t.Fatal("BP bug present")
	}
	if clean.ContentionScale != 0 {
		t.Fatal("contention scale differs")
	}
	// The only intended differences: no sensors.
	if clean.Power != nil {
		t.Fatal("gem5 cluster must not carry a power process")
	}
}

func TestBigClusterVersionsMatchDefectSets(t *testing.T) {
	v1 := BigCluster(V1)
	all := BigClusterWithDefects(AllDefects)
	if v1.Branch != all.Branch || v1.Hier.ITLB != all.Hier.ITLB ||
		v1.Core.MispredictPenalty != all.Core.MispredictPenalty {
		t.Fatal("BigCluster(V1) must equal the all-defects configuration")
	}
	v2 := BigCluster(V2)
	if v2.Branch.BugSkewedUpdate {
		t.Fatal("V2 must have the BP fix")
	}
	if !v2.Core.FetchPerInstruction {
		t.Fatal("V2 keeps the non-BP defects")
	}
}
