package gem5

import (
	"sort"

	"gemstone/internal/isa"
	"gemstone/internal/pmu"
)

// Stats converts the raw event record of a gem5-model run into the dotted
// statistics namespace a gem5 stats.txt would contain. The analysis layer
// (Section IV-C) consumes these names directly, so the set includes every
// statistic the paper cites: the itb_walker_cache.* group behind Cluster A,
// the branchPred.* group behind Cluster B, the icache/dcache/l2 groups,
// and the commit/fetch/iew pipeline statistics.
//
// One deliberate modelling defect lives here: the model mis-classifies VFP
// operations as SIMD-float (paper Section V), so FloatAdd/FloatMult read
// near zero and the SimdFloat* statistics absorb the FP counts.
func Stats(s *pmu.Sample) map[string]float64 {
	t := &s.Tally
	op := func(o isa.Op) float64 { return float64(t.OpCounts[o]) }
	spec := 1.0
	if t.Committed > 0 {
		spec = 1 + float64(t.WrongPathInsts)/float64(t.Committed)
	}
	secs := s.Seconds()

	m := map[string]float64{
		"sim_seconds":                 secs,
		"sim_insts":                   float64(t.Committed),
		"sim_ops":                     float64(t.Committed) * spec,
		"system.cpu.numCycles":        float64(t.Cycles),
		"system.cpu.committedInsts":   float64(t.Committed),
		"system.cpu.committedOps":     float64(t.Committed) * spec,
		"system.cpu.cpi":              safeDiv(float64(t.Cycles), float64(t.Committed)),
		"system.cpu.ipc":              safeDiv(float64(t.Committed), float64(t.Cycles)),
		"system.cpu.idleCycles":       float64(t.FetchStallCycles + t.BarrierStallCycles),
		"system.cpu.quiesceCycles":    float64(t.BarrierStallCycles),
		"system.cpu.numSquashedInsts": float64(t.WrongPathInsts),

		// Fetch stage.
		"system.cpu.fetch.Insts":                  float64(t.Committed) * spec,
		"system.cpu.fetch.Branches":               float64(s.Branch.Lookups),
		"system.cpu.fetch.predictedBranches":      float64(s.Branch.PredictedTaken + s.Branch.BTBHits),
		"system.cpu.fetch.Cycles":                 float64(t.Cycles - t.FetchStallCycles),
		"system.cpu.fetch.SquashCycles":           float64(t.BranchStallCycles),
		"system.cpu.fetch.TlbCycles":              float64(s.L2TLBI.Accesses) * 4,
		"system.cpu.fetch.IcacheStallCycles":      float64(t.FetchStallCycles),
		"system.cpu.fetch.PendingTrapStallCycles": float64(s.Hier.ITLBWalks) * 8,
		"system.cpu.fetch.rate":                   safeDiv(float64(t.Committed)*spec, float64(t.Cycles)),

		// Branch predictor.
		"system.cpu.branchPred.lookups":             float64(s.Branch.Lookups),
		"system.cpu.branchPred.condPredicted":       float64(s.Branch.CondLookups),
		"system.cpu.branchPred.condIncorrect":       float64(s.Branch.CondMispredicts),
		"system.cpu.branchPred.BTBLookups":          float64(s.Branch.BTBLookups),
		"system.cpu.branchPred.BTBHits":             float64(s.Branch.BTBHits),
		"system.cpu.branchPred.BTBHitPct":           100 * safeDiv(float64(s.Branch.BTBHits), float64(s.Branch.BTBLookups)),
		"system.cpu.branchPred.usedRAS":             float64(s.Branch.RASPops),
		"system.cpu.branchPred.RASInCorrect":        float64(s.Branch.RASIncorrect),
		"system.cpu.branchPred.indirectLookups":     float64(s.Branch.IndirectLookups),
		"system.cpu.branchPred.indirectHits":        float64(s.Branch.IndirectHits),
		"system.cpu.branchPred.indirectMisses":      float64(s.Branch.IndirectMispredicts),
		"system.cpu.branchPredindirectMispredicted": float64(s.Branch.IndirectMispredicts),
		"system.cpu.iew.predictedTakenIncorrect":    float64(s.Branch.CondMispredicts) * 0.6,
		"system.cpu.iew.predictedNotTakenIncorrect": float64(s.Branch.CondMispredicts) * 0.4,
		"system.cpu.iew.branchMispredicts":          float64(s.Branch.Mispredicts),
		"system.cpu.commit.branchMispredicts":       float64(s.Branch.Mispredicts),
		"system.cpu.commit.branches":                float64(s.Branch.Lookups),
		"system.cpu.commit.commitSquashedInsts":     float64(t.WrongPathInsts),
		"system.cpu.commit.commitNonSpecStalls":     float64(s.Hier.Barriers + s.Hier.ExclusiveStores),
		"system.cpu.commit.membars":                 op(isa.OpBarrier),
		"system.cpu.rob.rob_reads":                  float64(t.Committed) * spec * 2,
		"system.cpu.iew.exec_nop":                   op(isa.OpNop) * spec,
		"system.cpu.iew.iewExecutedInsts":           float64(t.Committed) * spec,
		"system.cpu.iew.memOrderViolationEvents":    float64(t.StrexRetries),
		"system.cpu.iew.lsqFullEvents":              float64(t.MemStallCycles) / 8,
		"system.cpu.iq.fu_full::MemRead":            float64(t.MemStallCycles) / 16,
		"system.cpu.iq.rate":                        safeDiv(float64(t.Committed)*spec, float64(t.Cycles)),

		// Functional-unit classification. The VFP->SIMD misclassification:
		// FP ops land in the SimdFloat* statistics.
		"system.cpu.iq.FU_type::IntAlu":        op(isa.OpIntALU) * spec,
		"system.cpu.iq.FU_type::IntMult":       op(isa.OpIntMul) * spec,
		"system.cpu.iq.FU_type::IntDiv":        op(isa.OpIntDiv) * spec,
		"system.cpu.iq.FU_type::FloatAdd":      0,
		"system.cpu.iq.FU_type::FloatMult":     0,
		"system.cpu.iq.FU_type::FloatDiv":      0,
		"system.cpu.iq.FU_type::SimdFloatAdd":  op(isa.OpFPAdd) * spec,
		"system.cpu.iq.FU_type::SimdFloatMult": op(isa.OpFPMul) * spec,
		"system.cpu.iq.FU_type::SimdFloatDiv":  op(isa.OpFPDiv) * spec,
		"system.cpu.iq.FU_type::SimdAlu":       op(isa.OpSIMD) * spec,
		"system.cpu.iq.FU_type::MemRead":       (op(isa.OpLoad) + op(isa.OpLoadEx)) * spec,
		"system.cpu.iq.FU_type::MemWrite":      (op(isa.OpStore) + op(isa.OpStoreEx)) * spec,

		// L1 instruction TLB ("itb") and its walker cache — the Cluster A
		// statistics of Section IV-C.
		"system.cpu.itb.accesses":                      float64(s.ITLB.Accesses + s.ITLB.SpecProbes),
		"system.cpu.itb.hits":                          float64(s.ITLB.Hits()),
		"system.cpu.itb.misses":                        float64(s.ITLB.Misses),
		"system.cpu.itb.flushes":                       float64(s.ITLB.Flushes),
		"system.cpu.itb.walks":                         float64(s.Hier.ITLBWalks),
		"system.cpu.itb_walker_cache.overall_accesses": float64(s.L2TLBI.Accesses),
		"system.cpu.itb_walker_cache.overall_hits":     float64(s.L2TLBI.Hits()),
		"system.cpu.itb_walker_cache.overall_misses":   float64(s.L2TLBI.Misses),
		"system.cpu.itb_walker_cache.ReadReq_accesses": float64(s.L2TLBI.Accesses),
		"system.cpu.itb_walker_cache.ReadReq_hits":     float64(s.L2TLBI.Hits()),
		"system.cpu.itb_walker_cache.ReadReq_misses":   float64(s.L2TLBI.Misses),
		"system.cpu.itb_walker_cache.overall_miss_rate": safeDiv(
			float64(s.L2TLBI.Misses), float64(s.L2TLBI.Accesses)),
		"system.cpu.itb_walker_cache.tags.data_accesses": float64(s.L2TLBI.Accesses) * 8,
		"system.cpu.itb_walker_cache.replacements":       float64(s.L2TLBI.Refills),

		// L1 data TLB and walker cache.
		"system.cpu.dtb.accesses":                      float64(s.DTLB.Accesses),
		"system.cpu.dtb.hits":                          float64(s.DTLB.Hits()),
		"system.cpu.dtb.misses":                        float64(s.DTLB.Misses),
		"system.cpu.dtb.walks":                         float64(s.Hier.DTLBWalks),
		"system.cpu.dtb.prefetch_faults":               float64(s.DTLB.Misses) * 0.1,
		"system.cpu.dtb_walker_cache.overall_accesses": float64(s.L2TLBD.Accesses),
		"system.cpu.dtb_walker_cache.overall_hits":     float64(s.L2TLBD.Hits()),
		"system.cpu.dtb_walker_cache.overall_misses":   float64(s.L2TLBD.Misses),
		"system.cpu.dtb_walker_cache.ReadReq_accesses": float64(s.L2TLBD.Accesses),
		"system.cpu.dtb_walker_cache.ReadReq_hits":     float64(s.L2TLBD.Hits()),
		"system.cpu.dtb_walker_cache.ReadReq_misses":   float64(s.L2TLBD.Misses),

		// L1 instruction cache.
		"system.cpu.icache.overall_accesses": float64(s.L1I.Accesses()),
		"system.cpu.icache.overall_hits":     float64(s.L1I.Accesses() - s.L1I.Misses()),
		"system.cpu.icache.overall_misses":   float64(s.L1I.Misses()),
		"system.cpu.icache.overall_miss_rate": safeDiv(
			float64(s.L1I.Misses()), float64(s.L1I.Accesses())),
		"system.cpu.icache.replacements": float64(s.L1I.Refills()),

		// L1 data cache.
		"system.cpu.dcache.overall_accesses":  float64(s.L1D.Accesses()),
		"system.cpu.dcache.overall_misses":    float64(s.L1D.Misses()),
		"system.cpu.dcache.ReadReq_accesses":  float64(s.L1D.ReadAccesses),
		"system.cpu.dcache.ReadReq_hits":      float64(s.L1D.ReadAccesses - s.L1D.ReadMisses),
		"system.cpu.dcache.ReadReq_misses":    float64(s.L1D.ReadMisses),
		"system.cpu.dcache.WriteReq_accesses": float64(s.L1D.WriteAccesses),
		"system.cpu.dcache.WriteReq_hits":     float64(s.L1D.WriteAccesses - s.L1D.WriteMisses),
		"system.cpu.dcache.WriteReq_misses":   float64(s.L1D.WriteMisses),
		"system.cpu.dcache.writebacks":        float64(s.L1D.Writebacks),
		"system.cpu.dcache.WriteReq_mshr_misses": float64(
			s.L1D.WriteMisses),
		"system.cpu.dcache.ReadReq_mshr_misses": float64(s.L1D.ReadMisses),
		"system.cpu.dcache.overall_mshr_misses": float64(s.L1D.Misses()),
		"system.cpu.dcache.prefetcher.issued":   float64(s.L1D.Prefetches),
		"system.cpu.dcache.prefetcher.used":     float64(s.L1D.PrefetchHits),
		"system.cpu.dcache.snoops":              float64(s.Hier.Snoops),
		"system.cpu.dcache.snoop_invalidates":   float64(s.L1D.Invalidations),
		"system.cpu.dcache.uncacheable_latency": float64(s.Hier.Barriers) * 30,
		"system.cpu.dcache.avg_blocked_cycles":  safeDiv(float64(t.MemStallCycles), float64(s.L1D.Misses())),

		// Shared L2.
		"system.l2.overall_accesses":    float64(s.L2.Accesses()),
		"system.l2.overall_hits":        float64(s.L2.Accesses() - s.L2.Misses()),
		"system.l2.overall_misses":      float64(s.L2.Misses()),
		"system.l2.overall_miss_rate":   safeDiv(float64(s.L2.Misses()), float64(s.L2.Accesses())),
		"system.l2.ReadReq_accesses":    float64(s.L2.ReadAccesses),
		"system.l2.ReadReq_misses":      float64(s.L2.ReadMisses),
		"system.l2.ReadExReq_accesses":  float64(s.L2.WriteAccesses),
		"system.l2.ReadExReq_hits":      float64(s.L2.WriteAccesses - s.L2.WriteMisses),
		"system.l2.ReadExReq_misses":    float64(s.L2.WriteMisses),
		"system.l2.writebacks":          float64(s.L2.Writebacks),
		"system.l2.overall_mshr_misses": float64(s.L2.Misses()),
		"system.l2.prefetcher.issued":   float64(s.L2.Prefetches),
		"system.l2.prefetcher.used":     float64(s.L2.PrefetchHits),
		"system.l2.overall_avg_miss_latency": safeDiv(
			float64(t.MemStallCycles), float64(s.L2.Misses())),

		// Memory controller.
		"system.mem_ctrls.readReqs":    float64(s.DRAM.Reads),
		"system.mem_ctrls.writeReqs":   float64(s.DRAM.Writes),
		"system.mem_ctrls.pageHitRate": safeDiv(float64(s.DRAM.RowHits), float64(s.DRAM.Accesses())),
		"system.mem_ctrls.bytesRead":   float64(s.DRAM.Reads) * 64,
		"system.mem_ctrls.bytesWritten": float64(
			s.DRAM.Writes) * 64,

		// Memory-order / synchronisation.
		"system.cpu.num_mem_refs":      float64(s.L1D.Accesses()),
		"system.cpu.num_load_insts":    op(isa.OpLoad) + op(isa.OpLoadEx),
		"system.cpu.num_store_insts":   op(isa.OpStore) + op(isa.OpStoreEx),
		"system.cpu.ldrex_count":       float64(s.Hier.ExclusiveLoads),
		"system.cpu.strex_pass_count":  float64(s.Hier.ExclusivePasses),
		"system.cpu.strex_fail_count":  float64(s.Hier.ExclusiveFails),
		"system.cpu.dcache.writeClean": float64(s.Hier.MergedStores),
	}
	return m
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// StatNames returns the sorted statistic names Stats emits; the analysis
// layer uses it to build the gem5-event matrix.
func StatNames(s *pmu.Sample) []string {
	m := Stats(s)
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
