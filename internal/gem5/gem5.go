// Package gem5 defines the simulated gem5 models of the Exynos-5422
// (the ex5_LITTLE.py / ex5_big.py configurations the paper evaluates) and
// the gem5-style statistics they emit.
//
// The models share the simulation engine with the reference platform; they
// differ only in configuration, and each difference is one of the
// specification errors the paper documents:
//
//   - Version 1 of the big model carries the branch-predictor bug that
//     Section IV identifies as the dominant error source (BP accuracy ~65%
//     vs ~96% on hardware); Version 2 carries the fix (Section VII).
//   - The big model's L1 ITLB has 64 entries where the hardware has 32,
//     and its second-level TLBs are two split 8-way walker caches with a
//     4-cycle latency where the hardware has one shared 512-entry 4-way
//     TLB at 2 cycles.
//   - DRAM latency is too low (Fig. 4), the LITTLE model's L2 latency is
//     too high, the L2 prefetcher is too aggressive, there is no merging
//     write buffer (inflating L1D write refills ~10x and writebacks ~19x,
//     Fig. 6), the L1I cache is accessed per instruction (~2x accesses),
//     and VFP operations are mis-classified as SIMD in the statistics.
package gem5

import (
	"gemstone/internal/hw"
	"gemstone/internal/mem"
	"gemstone/internal/platform"
)

// Version selects the gem5 model vintage.
type Version int

const (
	// V1 is the model with the branch-predictor bug (paper Sections IV-VI).
	V1 Version = 1
	// V2 is the model after the BP bug fix (paper Section VII).
	V2 Version = 2
)

// String returns "v1" or "v2".
func (v Version) String() string {
	if v == V2 {
		return "v2"
	}
	return "v1"
}

// gem5DRAM is the model's too-optimistic memory: the microbenchmarks of
// Fig. 4 show the modelled DRAM latency well below the hardware's.
func gem5DRAM() mem.DRAMConfig {
	return mem.DRAMConfig{
		Banks: 8, RowBytes: 2048,
		RowHitNs: 22, RowMissNs: 60,
		BandwidthBytesPerNs: 8.5,
	}
}

// LITTLECluster returns the ex5_LITTLE model configuration.
func LITTLECluster(v Version) platform.ClusterConfig {
	c := hw.A7Cluster()
	c.Name = hw.ClusterA7
	c.Power = nil // gem5 has no power sensors
	c.Thermal = platform.ThermalConfig{}

	// Specification errors of the LITTLE model:
	c.Hier.DRAM = gem5DRAM()
	c.Hier.L2.LatencyCycles = 17 // too high (Fig. 4: A7 L2 latency)
	c.Hier.StreamingStoreMerge = false
	c.Core.FetchPerInstruction = true
	c.Core.FrontendDepth = 6 // refill cost understated
	// The LITTLE model's L2 TLBs: two split 1 KiB 4-way caches, 2 cycles.
	c.Hier.UnifiedL2TLB = false
	c.Hier.L2TLB = mem.TLBConfig{}
	c.Hier.L2TLBI = mem.TLBConfig{Name: "itb_walker_cache", Entries: 128, Assoc: 4, LatencyCycles: 2}
	c.Hier.L2TLBD = mem.TLBConfig{Name: "dtb_walker_cache", Entries: 128, Assoc: 4, LatencyCycles: 2}
	// The model's idealised interconnect under-costs inter-core
	// communication (Fig. 5: barrier/exclusive-heavy workloads are
	// underestimated).
	c.ContentionScale = 0.25
	// The LITTLE model's predictor is adequate in both versions; only the
	// big model carried the bug.
	return c
}

// BigCluster returns the ex5_big model configuration for the given
// version: every documented defect for V1, everything except the
// branch-predictor bug for V2. See defects.go for the individual knobs.
func BigCluster(v Version) platform.ClusterConfig {
	if v == V2 {
		return BigClusterWithDefects(V2Defects)
	}
	return BigClusterWithDefects(AllDefects)
}

// Platform returns the gem5 simulator "platform" (no power sensors) for
// the given model version.
func Platform(v Version) *platform.Platform {
	return platform.New(platform.Config{
		Name:       "gem5-ex5-" + v.String(),
		Clusters:   []platform.ClusterConfig{LITTLECluster(v), BigCluster(v)},
		HasSensors: false,
	})
}
