package gem5

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements gem5's stats.txt on-disk format. The real GemStone
// tool consumes the stats files a gem5 simulation dumps; reproducing the
// format keeps the retrospective-analysis workflow intact: a simulation
// can be run once, its statistics archived, and power models applied (or
// re-applied with different voltages) later without re-running anything.

const (
	statsBegin = "---------- Begin Simulation Statistics ----------"
	statsEnd   = "---------- End Simulation Statistics   ----------"
)

// WriteStatsFile renders a statistics map in gem5's stats.txt format:
// a begin marker, one "name value" line per statistic (sorted), and an
// end marker. NaN values are written as "nan" like gem5 does.
func WriteStatsFile(w io.Writer, stats map[string]float64) error {
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, statsBegin); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	for _, n := range names {
		v := stats[n]
		var rendered string
		switch {
		case math.IsNaN(v):
			rendered = "nan"
		case v == math.Trunc(v) && math.Abs(v) < 1e15:
			rendered = strconv.FormatInt(int64(v), 10)
		default:
			rendered = strconv.FormatFloat(v, 'f', 6, 64)
		}
		if _, err := fmt.Fprintf(bw, "%-60s %20s\n", n, rendered); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, statsEnd); err != nil {
		return err
	}
	return bw.Flush()
}

// ParseStatsFile parses a gem5 stats.txt dump. It accepts the common
// variations gem5 produces: "# comment" suffixes, percentage annotations,
// "nan"/"inf" values, and multiple dumps in one file (statistics from the
// FIRST dump are returned, matching how GemStone consumes per-run files).
func ParseStatsFile(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	inDump := false
	sawDump := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "---------- Begin"):
			if sawDump {
				return out, nil // only the first dump
			}
			inDump = true
			continue
		case strings.HasPrefix(line, "---------- End"):
			inDump = false
			sawDump = true
			continue
		}
		if !inDump && !sawDump {
			// Tolerate headerless files (hand-edited extracts).
			inDump = true
		}
		if !inDump {
			continue
		}
		// Strip trailing "# comment".
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		name := fields[0]
		raw := strings.TrimSuffix(fields[1], "%")
		var v float64
		switch strings.ToLower(raw) {
		case "nan":
			v = math.NaN()
		case "inf", "+inf":
			v = math.Inf(1)
		case "-inf":
			v = math.Inf(-1)
		default:
			parsed, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("gem5: bad statistic line %q: %w", line, err)
			}
			v = parsed
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("gem5: no statistics found")
	}
	return out, nil
}
