package gem5

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gemstone/internal/hw"
	"gemstone/internal/workload"
)

func TestStatsFileRoundTrip(t *testing.T) {
	p := Platform(V1)
	prof, err := workload.ByName("whetstone")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Run(prof, hw.ClusterA15, 1000)
	if err != nil {
		t.Fatal(err)
	}
	stats := Stats(&m.Sample)

	var buf bytes.Buffer
	if err := WriteStatsFile(&buf, stats); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "Begin Simulation Statistics") ||
		!strings.Contains(text, "End Simulation Statistics") {
		t.Fatal("missing gem5 dump markers")
	}

	parsed, err := ParseStatsFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(stats) {
		t.Fatalf("parsed %d stats, wrote %d", len(parsed), len(stats))
	}
	for name, want := range stats {
		got, ok := parsed[name]
		if !ok {
			t.Fatalf("missing %q after round trip", name)
		}
		// Values render with 6 decimal places; integers exactly.
		if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("%s: %v != %v", name, got, want)
		}
	}
}

func TestParseStatsFileVariations(t *testing.T) {
	in := `
---------- Begin Simulation Statistics ----------

sim_seconds                      0.001234     # Number of seconds simulated
sim_insts                        240000       # Number of instructions
system.cpu.ipc                   1.5
system.cpu.branchPred.BTBHitPct  97.5%        # hit percent
system.cpu.cpi                   nan
badline

---------- End Simulation Statistics   ----------

---------- Begin Simulation Statistics ----------
sim_seconds                      9.9
---------- End Simulation Statistics   ----------
`
	stats, err := ParseStatsFile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if stats["sim_seconds"] != 0.001234 {
		t.Fatalf("sim_seconds = %v (second dump must be ignored)", stats["sim_seconds"])
	}
	if stats["sim_insts"] != 240000 {
		t.Fatalf("sim_insts = %v", stats["sim_insts"])
	}
	if stats["system.cpu.branchPred.BTBHitPct"] != 97.5 {
		t.Fatalf("percent parsing: %v", stats["system.cpu.branchPred.BTBHitPct"])
	}
	if !math.IsNaN(stats["system.cpu.cpi"]) {
		t.Fatal("nan must parse")
	}
}

func TestParseStatsFileHeaderless(t *testing.T) {
	stats, err := ParseStatsFile(strings.NewReader("a.b 1\nc.d 2.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if stats["a.b"] != 1 || stats["c.d"] != 2.5 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestParseStatsFileErrors(t *testing.T) {
	if _, err := ParseStatsFile(strings.NewReader("")); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ParseStatsFile(strings.NewReader("x notanumber\n")); err == nil {
		t.Fatal("malformed value must error")
	}
}
