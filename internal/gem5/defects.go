package gem5

import (
	"strings"

	"gemstone/internal/hw"
	"gemstone/internal/mem"
	"gemstone/internal/platform"
)

// Defect identifies one specification error of the gem5 models. The
// ablation machinery (internal/core, BenchmarkAblation_*) toggles defects
// individually to attribute error — and to reproduce the paper's warning
// that fixing one component (the L1 ITLB size) in isolation makes the
// overall error LARGER while the dominant defect (the BP bug) remains.
type Defect uint

const (
	// DefectBP is the branch-predictor bug (Section IV/VII).
	DefectBP Defect = 1 << iota
	// DefectITLBSize is the 64-entry L1 ITLB (hardware: 32).
	DefectITLBSize
	// DefectSplitL2TLB is the pair of split 8-way 4-cycle walker caches
	// (hardware: shared 512-entry 4-way TLB at 2 cycles).
	DefectSplitL2TLB
	// DefectDTLBSize is the undersized L1 DTLB (~1.7x misses, Fig. 6).
	DefectDTLBSize
	// DefectDRAM is the too-low DRAM latency (Fig. 4).
	DefectDRAM
	// DefectWriteMerge is the missing merging write buffer (Fig. 6:
	// ~10x L1D write refills, ~19x writebacks).
	DefectWriteMerge
	// DefectFetchPerInst is the per-instruction L1I access (~2x accesses).
	DefectFetchPerInst
	// DefectPrefetch is the over-aggressive L2-side prefetching.
	DefectPrefetch
	// DefectSquashCost is the overstated squash/refill cost.
	DefectSquashCost
	// DefectContention is the idealised interconnect (inter-core
	// communication too cheap).
	DefectContention

	defectLimit
)

// AllDefects is the ex5_big v1 defect set.
const AllDefects = defectLimit - 1

// V2Defects is the v1 set minus the branch-predictor bug (the Section VII
// fix).
const V2Defects = AllDefects &^ DefectBP

var defectNames = map[Defect]string{
	DefectBP:           "bp-bug",
	DefectITLBSize:     "itlb-size",
	DefectSplitL2TLB:   "split-l2tlb",
	DefectDTLBSize:     "dtlb-size",
	DefectDRAM:         "dram-latency",
	DefectWriteMerge:   "no-write-merge",
	DefectFetchPerInst: "fetch-per-inst",
	DefectPrefetch:     "prefetch",
	DefectSquashCost:   "squash-cost",
	DefectContention:   "contention",
}

// Defects lists every individual defect.
func Defects() []Defect {
	out := make([]Defect, 0, 10)
	for d := DefectBP; d < defectLimit; d <<= 1 {
		out = append(out, d)
	}
	return out
}

// String names the defect set.
func (d Defect) String() string {
	if d == 0 {
		return "none"
	}
	var parts []string
	for _, one := range Defects() {
		if d&one != 0 {
			parts = append(parts, defectNames[one])
		}
	}
	return strings.Join(parts, "+")
}

// BigClusterWithDefects builds the ex5_big model carrying exactly the
// given defects; zero defects yields a faithful copy of the hardware
// cluster (minus the power sensors gem5 never has).
func BigClusterWithDefects(d Defect) platform.ClusterConfig {
	c := hw.A15Cluster()
	c.Name = hw.ClusterA15
	c.Power = nil
	c.Thermal = platform.ThermalConfig{}

	if d&DefectDRAM != 0 {
		c.Hier.DRAM = gem5DRAM()
	}
	if d&DefectITLBSize != 0 {
		c.Hier.ITLB = mem.TLBConfig{Name: "itb", Entries: 64, Assoc: 64}
	} else {
		c.Hier.ITLB = mem.TLBConfig{Name: "itb", Entries: 32, Assoc: 32}
	}
	if d&DefectDTLBSize != 0 {
		// Slightly undersized: 24 entries where the hardware micro-TLB
		// holds 32 — enough to give the model the moderate DTLB-refill
		// excess of Fig. 6 (~1.7x) without changing gross behaviour.
		c.Hier.DTLB = mem.TLBConfig{Name: "dtb", Entries: 24, Assoc: 24}
	} else {
		c.Hier.DTLB = mem.TLBConfig{Name: "dtb", Entries: 32, Assoc: 32}
	}
	if d&DefectSplitL2TLB != 0 {
		c.Hier.UnifiedL2TLB = false
		c.Hier.L2TLB = mem.TLBConfig{}
		c.Hier.L2TLBI = mem.TLBConfig{Name: "itb_walker_cache", Entries: 128, Assoc: 8, LatencyCycles: 4}
		c.Hier.L2TLBD = mem.TLBConfig{Name: "dtb_walker_cache", Entries: 128, Assoc: 8, LatencyCycles: 4}
	}
	if d&DefectWriteMerge != 0 {
		c.Hier.StreamingStoreMerge = false
	}
	if d&DefectPrefetch != 0 {
		c.Hier.L1D.PrefetchDegree = 4
		c.Hier.L2.NextLinePrefetch = true
		c.Hier.L2.PrefetchDegree = 4
	}
	if d&DefectFetchPerInst != 0 {
		c.Core.FetchPerInstruction = true
	}
	if d&DefectSquashCost != 0 {
		c.Core.MispredictPenalty = 12
		c.Core.FrontendDepth = 13
	}
	if d&DefectContention != 0 {
		c.ContentionScale = 0.25
	}
	c.Branch.BugSkewedUpdate = d&DefectBP != 0
	return c
}

// PlatformWithDefects returns a gem5 platform whose big cluster carries
// exactly the given defects (the LITTLE cluster keeps its v1 shape; the
// ablation studies of the paper focus on the big model).
func PlatformWithDefects(d Defect) *platform.Platform {
	return platform.New(platform.Config{
		Name:       "gem5-ex5-" + d.String(),
		Clusters:   []platform.ClusterConfig{LITTLECluster(V1), BigClusterWithDefects(d)},
		HasSensors: false,
	})
}
