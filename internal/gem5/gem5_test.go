package gem5

import (
	"strings"
	"testing"

	"gemstone/internal/hw"
	"gemstone/internal/workload"
)

func TestVersionString(t *testing.T) {
	if V1.String() != "v1" || V2.String() != "v2" {
		t.Fatal("version strings")
	}
}

func TestConfigurationsValid(t *testing.T) {
	for _, v := range []Version{V1, V2} {
		p := Platform(v)
		if err := p.Config().Validate(); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if p.Config().HasSensors {
			t.Fatal("gem5 platforms must not have power sensors")
		}
	}
}

func TestDocumentedDefectsPresent(t *testing.T) {
	big := BigCluster(V1)
	ref := hw.A15Cluster()

	if big.Hier.ITLB.Entries != 2*ref.Hier.ITLB.Entries {
		t.Fatalf("model ITLB %d vs HW %d: want 64 vs 32", big.Hier.ITLB.Entries, ref.Hier.ITLB.Entries)
	}
	if big.Hier.UnifiedL2TLB {
		t.Fatal("model must use split walker caches")
	}
	if !ref.Hier.UnifiedL2TLB {
		t.Fatal("hardware must use a unified L2 TLB")
	}
	if big.Hier.L2TLBI.LatencyCycles <= ref.Hier.L2TLB.LatencyCycles {
		t.Fatal("model walker-cache latency must exceed the HW L2 TLB latency")
	}
	if big.Hier.DRAM.RowMissNs >= ref.Hier.DRAM.RowMissNs {
		t.Fatal("model DRAM latency must be below hardware (Fig. 4)")
	}
	if big.Hier.StreamingStoreMerge {
		t.Fatal("model must lack the merging write buffer")
	}
	if !big.Core.FetchPerInstruction {
		t.Fatal("model must fetch per instruction")
	}
	if !big.Branch.BugSkewedUpdate {
		t.Fatal("v1 must carry the BP bug")
	}
	if BigCluster(V2).Branch.BugSkewedUpdate {
		t.Fatal("v2 must not carry the BP bug")
	}

	little := LITTLECluster(V1)
	if little.Hier.L2.LatencyCycles <= hw.A7Cluster().Hier.L2.LatencyCycles {
		t.Fatal("LITTLE model L2 latency must exceed hardware (Fig. 4)")
	}
	if little.Branch.BugSkewedUpdate {
		t.Fatal("the LITTLE model predictor is not affected by the bug")
	}
}

func TestStatsEmission(t *testing.T) {
	p := Platform(V1)
	prof, err := workload.ByName("dhrystone")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Run(prof, hw.ClusterA15, 1000)
	if err != nil {
		t.Fatal(err)
	}
	stats := Stats(&m.Sample)
	if len(stats) < 100 {
		t.Fatalf("gem5 stats map has %d entries, want >= 100", len(stats))
	}
	// The statistics the paper cites must exist.
	for _, name := range []string{
		"sim_seconds", "sim_insts",
		"system.cpu.numCycles",
		"system.cpu.branchPred.condIncorrect",
		"system.cpu.branchPred.RASInCorrect",
		"system.cpu.commit.branchMispredicts",
		"system.cpu.commit.commitNonSpecStalls",
		"system.cpu.branchPred.indirectMisses",
		"system.cpu.dtb.prefetch_faults",
		"system.l2.ReadExReq_hits",
		"system.cpu.itb_walker_cache.overall_accesses",
		"system.cpu.itb_walker_cache.ReadReq_hits",
		"system.cpu.iew.exec_nop",
		"system.cpu.fetch.TlbCycles",
		"system.cpu.iew.predictedTakenIncorrect",
		"system.cpu.fetch.PendingTrapStallCycles",
		"system.cpu.dcache.writebacks",
		"system.mem_ctrls.readReqs",
	} {
		if _, ok := stats[name]; !ok {
			t.Errorf("missing statistic %q", name)
		}
	}
	if stats["sim_seconds"] <= 0 {
		t.Fatal("sim_seconds must be positive")
	}
	if stats["sim_insts"] != float64(m.Sample.Tally.Committed) {
		t.Fatal("sim_insts mismatch")
	}

	// The FP->SIMD misclassification defect is in the stats namespace.
	if stats["system.cpu.iq.FU_type::FloatAdd"] != 0 {
		t.Fatal("FloatAdd must read zero (misclassified as SIMD)")
	}

	names := StatNames(&m.Sample)
	if len(names) != len(stats) {
		t.Fatal("StatNames length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if strings.Compare(names[i-1], names[i]) >= 0 {
			t.Fatal("StatNames must be sorted and unique")
		}
	}
}
