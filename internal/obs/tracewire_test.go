package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTraceContext(t *testing.T) {
	var zero TraceContext
	if zero.Correlated() || zero.Recording() {
		t.Fatal("zero TraceContext must be anonymous and untraced")
	}
	if !(TraceContext{Campaign: "c-1"}).Correlated() {
		t.Error("campaign alone should correlate")
	}
	if !(TraceContext{Tenant: "alice"}).Correlated() {
		t.Error("tenant alone should correlate")
	}
	if !(TraceContext{Job: "k"}).Correlated() {
		t.Error("job alone should correlate")
	}
	if (TraceContext{Campaign: "c-1"}).Recording() {
		t.Error("correlation must not imply recording")
	}
	if !(TraceContext{Record: true}).Recording() {
		t.Error("Record flag should report recording")
	}
}

func TestAttrRecordRoundTrip(t *testing.T) {
	attrs := []Attr{
		String("s", "v"),
		Int("i", -7),
		Int64("i64", 1<<40),
		Uint64("u", 9),
		Float64("f", 2.5),
		Bool("b", true),
	}
	for _, a := range attrs {
		got := recordAttr(a).Attr()
		if got.Key != a.Key || got.Value != a.Value {
			t.Errorf("round trip of %v produced %v", a, got)
		}
	}
	// A dynamic type no constructor produces degrades to a string marker
	// instead of losing the key.
	odd := recordAttr(Attr{Key: "x", Value: struct{}{}})
	if odd.Kind != AttrString || odd.Str != "?" {
		t.Errorf("unknown attr type: %+v", odd)
	}
}

func TestNewSpanRecordClampsNegativeDuration(t *testing.T) {
	now := time.Now()
	rec := NewSpanRecord("backwards", now, now.Add(-time.Second))
	if rec.DurNanos != 0 {
		t.Fatalf("negative duration survived: %d", rec.DurNanos)
	}
}

func TestExportImport(t *testing.T) {
	src := NewTracer()
	root := src.Start("job", String("id", "k1"))
	child := root.Child("simulate", Int("freq_mhz", 1000))
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()

	recs := src.Export()
	if len(recs) != 2 {
		t.Fatalf("exported %d spans, want 2", len(recs))
	}

	dst := NewTracer()
	dst.ImportProcess("worker a", recs, 0, time.Time{}, time.Time{})
	events := dst.Events()
	if len(events) != 2 {
		t.Fatalf("imported %d events, want 2", len(events))
	}
	names := map[string]bool{}
	for _, ev := range events {
		if ev.Proc == 0 {
			t.Errorf("imported span %q kept the local process id", ev.Name)
		}
		names[ev.Name] = true
	}
	if !names["job"] || !names["simulate"] {
		t.Fatalf("imported span names %v", names)
	}
}

func TestExportNilTracer(t *testing.T) {
	var tr *Tracer
	if got := tr.Export(); got != nil {
		t.Fatalf("nil tracer exported %v", got)
	}
	// And import on a nil tracer must not panic.
	tr.ImportProcess("w", []SpanRecord{{Name: "x"}}, 0, time.Time{}, time.Time{})
}

// TestImportProcessNegativeOffset pins the negative-skew case: the
// worker's clock runs behind the coordinator's, so the offset estimate
// is negative and imported spans must shift forward onto the local
// timeline (remote − offset = remote + |offset|).
func TestImportProcessNegativeOffset(t *testing.T) {
	tr := NewTracer()
	skew := -40 * time.Millisecond // worker behind by 40ms

	// Local dispatch window: [10ms, 30ms] after the epoch.
	lo := tr.epoch.Add(10 * time.Millisecond)
	hi := tr.epoch.Add(30 * time.Millisecond)

	// The worker handled the job (on its own skewed clock) in what is
	// locally the window [15ms, 25ms].
	workerStart := lo.Add(5 * time.Millisecond).Add(skew)
	rec := NewSpanRecord("job", workerStart, workerStart.Add(10*time.Millisecond))
	tr.ImportProcess("worker a", []SpanRecord{rec}, skew, lo, hi)

	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("imported %d events", len(events))
	}
	ev := events[0]
	wantStart := 15 * time.Millisecond
	if ev.Start != wantStart {
		t.Errorf("start = %v, want %v", ev.Start, wantStart)
	}
	if ev.Dur != 10*time.Millisecond {
		t.Errorf("dur = %v, want 10ms", ev.Dur)
	}
}

// TestImportProcessClampsToWindow pins the invariant the merge leans on:
// whatever the offset estimate error, no imported span may leak outside
// the local dispatch window that provably contains the work.
func TestImportProcessClampsToWindow(t *testing.T) {
	tr := NewTracer()
	lo := tr.epoch.Add(10 * time.Millisecond)
	hi := tr.epoch.Add(20 * time.Millisecond)

	recs := []SpanRecord{
		// Starts before the window opens.
		NewSpanRecord("early", lo.Add(-5*time.Millisecond), lo.Add(5*time.Millisecond)),
		// Ends after the window closes.
		NewSpanRecord("late", hi.Add(-2*time.Millisecond), hi.Add(8*time.Millisecond)),
		// Entirely after the window: collapses to a zero-width span at hi.
		NewSpanRecord("beyond", hi.Add(5*time.Millisecond), hi.Add(9*time.Millisecond)),
	}
	tr.ImportProcess("worker a", recs, 0, lo, hi)

	loD, hiD := lo.Sub(tr.epoch), hi.Sub(tr.epoch)
	for _, ev := range tr.Events() {
		if ev.Start < loD || ev.Start+ev.Dur > hiD {
			t.Errorf("span %q [%v,%v] escapes window [%v,%v]",
				ev.Name, ev.Start, ev.Start+ev.Dur, loD, hiD)
		}
		if ev.Dur < 0 {
			t.Errorf("span %q has negative duration %v", ev.Name, ev.Dur)
		}
	}
}

// TestImportProcessLanePacking checks per-process lane allocation:
// sequential batches reuse lanes, overlapping batches stack, and a
// two-lane batch keeps its internal lane split.
func TestImportProcessLanePacking(t *testing.T) {
	tr := NewTracer()
	at := func(ms int) time.Time { return tr.epoch.Add(time.Duration(ms) * time.Millisecond) }
	span := func(name string, lane, startMS, endMS int) SpanRecord {
		rec := NewSpanRecord(name, at(startMS), at(endMS))
		rec.Lane = lane
		return rec
	}

	tr.ImportProcess("w", []SpanRecord{span("a", 0, 0, 10)}, 0, time.Time{}, time.Time{})
	// Overlaps batch a: must land on a fresh lane.
	tr.ImportProcess("w", []SpanRecord{span("b", 0, 5, 15)}, 0, time.Time{}, time.Time{})
	// Starts after both ended: reuses the lowest lane.
	tr.ImportProcess("w", []SpanRecord{span("c", 0, 20, 30)}, 0, time.Time{}, time.Time{})
	// Two-lane batch overlapping c: occupies two fresh adjacent lanes.
	tr.ImportProcess("w", []SpanRecord{
		span("d0", 0, 25, 35), span("d1", 1, 25, 35),
	}, 0, time.Time{}, time.Time{})

	lanes := map[string]int{}
	for _, ev := range tr.Events() {
		lanes[ev.Name] = ev.Lane
	}
	if lanes["a"] != 0 || lanes["b"] != 1 {
		t.Errorf("overlapping batches on lanes a=%d b=%d, want 0 and 1", lanes["a"], lanes["b"])
	}
	if lanes["c"] != 0 {
		t.Errorf("sequential batch on lane %d, want reuse of lane 0", lanes["c"])
	}
	if lanes["d1"] != lanes["d0"]+1 {
		t.Errorf("two-lane batch split %d/%d, want adjacent", lanes["d0"], lanes["d1"])
	}
}

func TestChromeTraceMultiProcess(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("campaign")
	time.Sleep(time.Millisecond)
	s.End()

	now := time.Now()
	tr.ImportProcess("worker a", []SpanRecord{NewSpanRecord("job", now, now.Add(time.Millisecond))},
		0, time.Time{}, time.Time{})
	tr.ImportProcess("worker b", []SpanRecord{NewSpanRecord("job", now, now.Add(time.Millisecond))},
		0, time.Time{}, time.Time{})
	// Re-import into an existing process: the pid must be stable.
	tr.ImportProcess("worker a", []SpanRecord{NewSpanRecord("job2", now.Add(2*time.Millisecond), now.Add(3*time.Millisecond))},
		0, time.Time{}, time.Time{})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	procName := map[int]string{}
	pidsByName := map[string][]int{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procName[ev.Pid], _ = ev.Args["name"].(string)
			continue
		}
		pidsByName[ev.Name] = append(pidsByName[ev.Name], ev.Pid)
	}
	if procName[1] != "coordinator" {
		t.Errorf("pid 1 metadata %q, want coordinator", procName[1])
	}
	var aPid, bPid int
	for pid, name := range procName {
		switch name {
		case "worker a":
			aPid = pid
		case "worker b":
			bPid = pid
		}
	}
	if aPid < 2 || bPid < 2 || aPid == bPid {
		t.Fatalf("worker pids %d/%d, want distinct ids >= 2", aPid, bPid)
	}
	if got := pidsByName["campaign"]; len(got) != 1 || got[0] != 1 {
		t.Errorf("campaign span pids %v, want [1]", got)
	}
	if got := pidsByName["job2"]; len(got) != 1 || got[0] != aPid {
		t.Errorf("re-imported span pids %v, want stable pid %d", got, aPid)
	}
}
