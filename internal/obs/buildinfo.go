package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Build provenance. Scrape surfaces (the gemstone_build_info gauge) and
// the experiment ledger's RunManifest both need to answer "which build
// produced this number?"; ReadBuildInfo is the single source both share,
// so a ledger entry can always be matched to the scrape series of the
// process that wrote it.

// BuildInfo identifies the running binary: toolchain, main module and —
// when the binary was built inside a version-controlled checkout — the
// VCS state stamped by the Go toolchain.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary (e.g. "go1.22.0").
	GoVersion string `json:"go_version"`
	// Path is the main module path ("gemstone").
	Path string `json:"path,omitempty"`
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version,omitempty"`
	// VCSRevision is the commit hash the binary was built from, when the
	// toolchain stamped one ("" under `go test` and vendor-less builds).
	VCSRevision string `json:"vcs_revision,omitempty"`
	// VCSTime is the commit timestamp (RFC 3339), when stamped.
	VCSTime string `json:"vcs_time,omitempty"`
	// VCSModified reports a dirty working tree at build time.
	VCSModified bool `json:"vcs_modified,omitempty"`
}

var (
	buildInfoOnce sync.Once
	buildInfo     BuildInfo
)

// ReadBuildInfo returns the binary's build provenance. The underlying
// runtime lookup is performed once and cached; the result is identical
// for the lifetime of the process.
func ReadBuildInfo() BuildInfo {
	buildInfoOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.GoVersion != "" {
			buildInfo.GoVersion = bi.GoVersion
		}
		buildInfo.Path = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.VCSRevision = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.VCSModified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// RegisterBuildInfo exports the binary's provenance as the constant-1
// gauge gemstone_build_info, carrying the build identity as labels — the
// standard Prometheus idiom for joining build metadata onto any other
// series. It returns the BuildInfo it exported.
func RegisterBuildInfo(reg *Registry) BuildInfo {
	bi := ReadBuildInfo()
	modified := "false"
	if bi.VCSModified {
		modified = "true"
	}
	reg.Gauge("gemstone_build_info",
		"Build provenance of the running binary; value is always 1.",
		"go_version", "path", "version", "vcs_revision", "vcs_modified").
		Set(1, bi.GoVersion, bi.Path, bi.Version, bi.VCSRevision, modified)
	return bi
}
