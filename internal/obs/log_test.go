package obs

import (
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNewLoggerText(t *testing.T) {
	var buf strings.Builder
	lg, err := NewLogger(&buf, LogText, slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("collecting", "platform", "odroid-xu3", "jobs", 180)
	out := buf.String()
	if !strings.Contains(out, "msg=collecting") || !strings.Contains(out, "platform=odroid-xu3") {
		t.Fatalf("text output missing fields: %q", out)
	}

	buf.Reset()
	lg.Debug("hidden")
	if buf.Len() != 0 {
		t.Fatalf("debug logged at info level: %q", buf.String())
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf strings.Builder
	lg, err := NewLogger(&buf, LogJSON, slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("run done", "key", "dhrystone/a15@1000MHz")
	var rec map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &rec); err != nil {
		t.Fatalf("JSON log line does not parse: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "run done" || rec["key"] != "dhrystone/a15@1000MHz" {
		t.Fatalf("unexpected record: %v", rec)
	}
}

func TestNewLoggerDefaultAndBadFormat(t *testing.T) {
	var buf strings.Builder
	if _, err := NewLogger(&buf, "", slog.LevelInfo); err != nil {
		t.Fatalf("empty format rejected: %v", err)
	}
	if _, err := NewLogger(&buf, "xml", slog.LevelInfo); err == nil {
		t.Fatal("unknown format accepted")
	}
}
