package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total", "runs", "result")
	c.Inc("simulated")
	c.Add(2, "simulated")
	c.Inc("cache_hit")
	c.Add(-5, "simulated") // ignored: counters are monotonic

	g := r.Gauge("inflight", "in-flight runs")
	g.Set(3)
	g.Add(-1)

	snap := r.Snapshot()
	if got := snap[`runs_total{result="simulated"}`]; got != 3 {
		t.Fatalf("simulated = %v, want 3", got)
	}
	if got := snap[`runs_total{result="cache_hit"}`]; got != 1 {
		t.Fatalf("cache_hit = %v, want 1", got)
	}
	if got := snap["inflight"]; got != 2 {
		t.Fatalf("inflight = %v, want 2", got)
	}
}

func TestCounterReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	a.Inc()
	b.Inc()
	if got := r.Snapshot()["x_total"]; got != 2 {
		t.Fatalf("shared family = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with different shape did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sim_seconds", "per-run sim time", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if got := snap["sim_seconds_count"]; got != 5 {
		t.Fatalf("count = %v, want 5", got)
	}
	if got := snap["sim_seconds_sum"]; got != 56.05 {
		t.Fatalf("sum = %v, want 56.05", got)
	}

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`sim_seconds_bucket{le="0.1"} 1`,
		`sim_seconds_bucket{le="1"} 3`,
		`sim_seconds_bucket{le="10"} 4`,
		`sim_seconds_bucket{le="+Inf"} 5`,
		`sim_seconds_sum 56.05`,
		`sim_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "with \\ and \n in help", "k").Inc("a\"b\\c\nd")
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `# HELP esc_total with \\ and \n in help`) {
		t.Fatalf("help not escaped:\n%s", text)
	}
	if !strings.Contains(text, `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", text)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "", "w")
	h := r.Histogram("conc_seconds", "", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Inc(strconv.Itoa(w % 2))
				h.Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap[`conc_total{w="0"}`] + snap[`conc_total{w="1"}`]; got != 800 {
		t.Fatalf("total = %v, want 800", got)
	}
	if got := snap["conc_seconds_count"]; got != 800 {
		t.Fatalf("observations = %v, want 800", got)
	}
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string // including any {labels}
	value  float64
	family string
	typ    string
}

// parsePrometheus is a minimal exposition-format parser: it validates the
// line discipline a real Prometheus scraper relies on (TYPE before
// samples, known types, one "name{labels} value" sample per line) and
// returns the samples.
func parsePrometheus(t *testing.T, r io.Reader) []promSample {
	t.Helper()
	types := map[string]string{}
	var samples []promSample
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type %q in %q", parts[3], line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		// name{labels} value — the value is the last space-separated field
		// (label values may contain spaces, but ours never do).
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			base = base[:i]
		}
		family := base
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(base, suffix)
			if trimmed != base {
				if _, ok := types[trimmed]; ok {
					family = trimmed
				}
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			t.Fatalf("sample %q appears before its TYPE line", line)
		}
		samples = append(samples, promSample{name: name, value: val, family: family, typ: typ})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestScrapeAndParse serves the registry over HTTP and re-parses the
// scrape — the acceptance check that /metrics emits parseable Prometheus
// text exposition.
func TestScrapeAndParse(t *testing.T) {
	r := NewRegistry()
	r.Counter("gemstone_runs_total", "campaign runs", "result").Add(7, "simulated")
	r.Gauge("gemstone_inflight", "in-flight").Set(2)
	r.Histogram("gemstone_sim_seconds", "sim time", []float64{0.5, 5}).Observe(1.5)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}

	samples := parsePrometheus(t, resp.Body)
	got := map[string]float64{}
	for _, s := range samples {
		got[s.name] = s.value
	}
	for name, want := range map[string]float64{
		`gemstone_runs_total{result="simulated"}`: 7,
		`gemstone_inflight`:                       2,
		`gemstone_sim_seconds_bucket{le="0.5"}`:   0,
		`gemstone_sim_seconds_bucket{le="5"}`:     1,
		`gemstone_sim_seconds_bucket{le="+Inf"}`:  1,
		`gemstone_sim_seconds_sum`:                1.5,
		`gemstone_sim_seconds_count`:              1,
	} {
		if got[name] != want {
			t.Fatalf("%s = %v, want %v (samples: %v)", name, got[name], want, got)
		}
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("demo_total", "a demo counter", "kind").Add(3, "x")
	var buf strings.Builder
	_ = r.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP demo_total a demo counter
	// # TYPE demo_total counter
	// demo_total{kind="x"} 3
}
