package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start("root", String("k", "v"))
	if sp != nil {
		t.Fatalf("nil tracer Start returned %v", sp)
	}
	// The whole span API must be nil-safe: this is the disabled fast path
	// threaded through the simulator.
	child := sp.Child("child")
	child.Annotate(Int("i", 1))
	child.End()
	sp.End()
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer recorded events: %v", got)
	}
}

func TestSpanRecording(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("campaign", String("platform", "odroid-xu3"))
	child := root.Child("plan")
	time.Sleep(time.Millisecond)
	child.Annotate(Int("jobs", 42))
	child.End()
	child.End() // double End is ignored
	root.End()

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	// Events() orders by start: root first, then its child.
	if events[0].Name != "campaign" || events[1].Name != "plan" {
		t.Fatalf("unexpected order: %q, %q", events[0].Name, events[1].Name)
	}
	if events[0].Lane != events[1].Lane {
		t.Fatalf("child lane %d differs from root lane %d", events[1].Lane, events[0].Lane)
	}
	if events[1].Dur < time.Millisecond {
		t.Fatalf("child duration %v too short", events[1].Dur)
	}
	if events[0].Dur < events[1].Dur {
		t.Fatalf("root (%v) shorter than child (%v)", events[0].Dur, events[1].Dur)
	}
	var jobs any
	for _, a := range events[1].Attrs {
		if a.Key == "jobs" {
			jobs = a.Value
		}
	}
	if jobs != int64(42) {
		t.Fatalf("annotated attr = %v, want 42", jobs)
	}
}

func TestLaneReuse(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("a")
	b := tr.Start("b")
	if a.lane == b.lane {
		t.Fatalf("concurrent roots share lane %d", a.lane)
	}
	a.End()
	c := tr.Start("c")
	if c.lane != a.lane {
		t.Fatalf("freed lane %d not reused (got %d)", a.lane, c.lane)
	}
	b.End()
	c.End()
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	const workers, spansPer = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			root := tr.Start("worker", Int("worker", w))
			for i := 0; i < spansPer; i++ {
				sp := root.Child("job", Int("i", i))
				sp.End()
			}
			root.End()
		}(w)
	}
	wg.Wait()
	if got := len(tr.Events()); got != workers*(spansPer+1) {
		t.Fatalf("got %d events, want %d", got, workers*(spansPer+1))
	}
}

// TestChromeTraceRoundTrip asserts the exported JSON is a loadable Chrome
// trace: the envelope decodes, every event is a complete ("X") event with
// the required fields, timestamps are non-negative microseconds, and the
// args survive the round trip.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("collect", String("platform", "gem5-ex5-v1"))
	sim := root.Child("simulate", String("key", "dhrystone/a15@1000MHz"))
	time.Sleep(time.Millisecond)
	sim.Annotate(Uint64("cycles", 123456), Float64("mape", 17.5), Bool("hit", false))
	sim.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}
	if len(decoded.TraceEvents) != 2 {
		t.Fatalf("got %d traceEvents, want 2", len(decoded.TraceEvents))
	}
	for _, ev := range decoded.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == "" || ev.Cat == "" {
			t.Fatalf("event missing name/cat: %+v", ev)
		}
		if ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %q missing required numeric fields", ev.Name)
		}
		if *ev.Ts < 0 || *ev.Dur < 0 {
			t.Fatalf("event %q has negative ts/dur", ev.Name)
		}
	}
	sim2 := decoded.TraceEvents[1]
	if sim2.Name != "simulate" {
		t.Fatalf("second event = %q, want simulate", sim2.Name)
	}
	if *sim2.Dur < 1000 { // >= 1ms in microseconds
		t.Fatalf("simulate dur = %v us, want >= 1000", *sim2.Dur)
	}
	if sim2.Args["key"] != "dhrystone/a15@1000MHz" {
		t.Fatalf("args.key = %v", sim2.Args["key"])
	}
	if sim2.Args["cycles"] != float64(123456) {
		t.Fatalf("args.cycles = %v", sim2.Args["cycles"])
	}
	if sim2.Args["hit"] != false {
		t.Fatalf("args.hit = %v", sim2.Args["hit"])
	}

	if err := (*Tracer)(nil).WriteChromeTrace(&buf); err == nil {
		t.Fatal("nil tracer WriteChromeTrace succeeded")
	}
}

// BenchmarkSpanDisabled measures the disabled-tracing fast path: the full
// Start/Child/Annotate/End sequence on a nil tracer. This is the cost
// every instrumented simulator phase pays on uninstrumented runs; it must
// stay in the nanoseconds (a pointer check per call).
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("run")
		child := sp.Child("phase")
		child.Annotate(Int("i", i))
		child.End()
		sp.End()
	}
}

// BenchmarkSpanEnabled is the recording path, for the enabled:disabled
// cost ratio.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("run")
		child := sp.Child("phase")
		child.End()
		sp.End()
	}
}
