package obs

import (
	"strings"
	"testing"
)

func TestReadBuildInfo(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" {
		t.Fatal("GoVersion must always be populated")
	}
	if bi != ReadBuildInfo() {
		t.Fatal("ReadBuildInfo must be stable across calls")
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	bi := RegisterBuildInfo(reg)
	if bi != ReadBuildInfo() {
		t.Fatal("RegisterBuildInfo must return the shared provenance record")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE gemstone_build_info gauge") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `go_version="`+bi.GoVersion+`"`) {
		t.Fatalf("missing go_version label:\n%s", out)
	}

	// The series value is the constant 1 regardless of label content.
	for k, v := range reg.Snapshot() {
		if strings.HasPrefix(k, "gemstone_build_info") && v != 1 {
			t.Fatalf("%s = %v, want 1", k, v)
		}
	}

	// Re-registering must not panic or duplicate the family.
	RegisterBuildInfo(reg)
}
