package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Prometheus-style metrics. A Registry holds named metric families —
// counters, gauges and histograms, each optionally labelled — and renders
// them in the Prometheus text exposition format (version 0.0.4, the
// format every Prometheus scraper parses). A Snapshot API exposes the
// same numbers as a flat map for tests and expvar-style consumers.

// MetricKind distinguishes the family types.
type MetricKind int

// Metric family kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (label values → state) sample of a family.
type series struct {
	labels []string // label values, parallel to family.labelNames
	value  float64  // counter/gauge value
	// histogram state
	buckets []uint64
	count   uint64
	sum     float64
}

// family is one named metric of a registry.
type family struct {
	name       string
	help       string
	kind       MetricKind
	labelNames []string
	bounds     []float64 // histogram upper bounds, ascending, without +Inf

	mu     sync.Mutex
	series map[string]*series // keyed by joined label values
}

// get returns (creating if needed) the series for the given label values.
func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]string(nil), labelValues...)}
		if f.kind == KindHistogram {
			s.buckets = make([]uint64, len(f.bounds))
		}
		f.series[key] = s
	}
	return s
}

// Registry is a set of metric families. All methods are safe for
// concurrent use. The zero value is not usable; construct with
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds (or returns the existing, identical) family.
func (r *Registry) register(name, help string, kind MetricKind, bounds []float64, labelNames []string) *family {
	if name == "" {
		panic("obs: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		bounds:     append([]float64(nil), bounds...),
		series:     make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter is a monotonically increasing metric family.
type Counter struct{ f *family }

// Counter registers (or fetches) a counter family. labelNames may be
// empty for a single-series counter.
func (r *Registry) Counter(name, help string, labelNames ...string) *Counter {
	return &Counter{f: r.register(name, help, KindCounter, nil, labelNames)}
}

// Add increases the series selected by labelValues. Negative deltas are
// ignored (counters are monotonic).
func (c *Counter) Add(delta float64, labelValues ...string) {
	if delta < 0 {
		return
	}
	s := c.f.get(labelValues)
	c.f.mu.Lock()
	s.value += delta
	c.f.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Gauge is a metric family that can go up and down.
type Gauge struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *Gauge {
	return &Gauge{f: r.register(name, help, KindGauge, nil, labelNames)}
}

// Set stores the series value.
func (g *Gauge) Set(v float64, labelValues ...string) {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	s.value = v
	g.f.mu.Unlock()
}

// Add adjusts the series value by delta (negative deltas allowed).
func (g *Gauge) Add(delta float64, labelValues ...string) {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	s.value += delta
	g.f.mu.Unlock()
}

// Histogram is a bucketed distribution family.
type Histogram struct{ f *family }

// DefaultDurationBuckets suit per-run simulation times: 1 ms .. ~2 min in
// roughly 3x steps.
func DefaultDurationBuckets() []float64 {
	return []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 120}
}

// Histogram registers (or fetches) a histogram family with the given
// ascending upper bounds (the implicit +Inf bucket is added on render).
// nil bounds select DefaultDurationBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labelNames ...string) *Histogram {
	if bounds == nil {
		bounds = DefaultDurationBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
		}
	}
	return &Histogram{f: r.register(name, help, KindHistogram, bounds, labelNames)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	s := h.f.get(labelValues)
	h.f.mu.Lock()
	for i, ub := range h.f.bounds {
		if v <= ub {
			s.buckets[i]++
		}
	}
	s.count++
	s.sum += v
	h.f.mu.Unlock()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// labelString renders {name="value",...} with an optional extra label
// (the histogram "le"), or "" when there are none.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedFamilies snapshots the family list ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries snapshots a family's series ordered by label values.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		// Copy the mutable state so rendering happens outside the lock.
		cp := &series{labels: s.labels, value: s.value, count: s.count, sum: s.sum}
		cp.buckets = append([]uint64(nil), s.buckets...)
		out = append(out, cp)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].labels, "\x00") < strings.Join(out[j].labels, "\x00")
	})
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Families appear sorted by name; a family with no series yet is
// rendered as HELP/TYPE only (for counters and gauges without labels, a
// zero series is implicit on first use, not on registration).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			switch f.kind {
			case KindCounter, KindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n",
					f.name, labelString(f.labelNames, s.labels, "", ""), formatValue(s.value)); err != nil {
					return err
				}
			case KindHistogram:
				cum := uint64(0)
				for i, ub := range f.bounds {
					cum = s.buckets[i]
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.name, labelString(f.labelNames, s.labels, "le", formatValue(ub)), cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, labelString(f.labelNames, s.labels, "le", "+Inf"), s.count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
					f.name, labelString(f.labelNames, s.labels, "", ""), formatValue(s.sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
					f.name, labelString(f.labelNames, s.labels, "", ""), s.count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Snapshot returns every sample as a flat map for tests and expvar-style
// consumers. Counter and gauge samples appear under
// name{label="value",...}; histograms contribute name_sum and name_count.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			ls := labelString(f.labelNames, s.labels, "", "")
			switch f.kind {
			case KindCounter, KindGauge:
				out[f.name+ls] = s.value
			case KindHistogram:
				out[f.name+"_sum"+ls] = s.sum
				out[f.name+"_count"+ls] = float64(s.count)
			}
		}
	}
	return out
}

// Handler serves the registry in the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
