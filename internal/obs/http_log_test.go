package obs

import (
	"bytes"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInstrumentHandlerLogRequestID(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	correlate := func(r *http.Request) []any {
		return []any{"tenant", r.Header.Get("X-Test-Tenant")}
	}
	h := InstrumentHandlerLog(nil, "svc", "/v1/things", http.HandlerFunc(
		func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusTeapot)
		}), log, correlate)

	req := httptest.NewRequest(http.MethodGet, "/v1/things", nil)
	req.Header.Set("X-Test-Tenant", "alice")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	id := rec.Header().Get(RequestIDHeader)
	if id == "" {
		t.Fatal("no request ID header assigned")
	}
	line := buf.String()
	for _, want := range []string{"req=" + id, "route=/v1/things", "status=418", "tenant=alice"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}

	// A second request gets a distinct ID.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if id2 := rec2.Header().Get(RequestIDHeader); id2 == id {
		t.Errorf("request IDs not unique: %s", id2)
	}
}

func TestInstrumentHandlerLogNilBoth(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {})
	// With neither a registry nor a logger the handler must come back
	// unwrapped — zero overhead for uninstrumented servers.
	h := InstrumentHandlerLog(nil, "svc", "/", inner, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Header().Get(RequestIDHeader) != "" {
		t.Error("unwrapped handler should not assign request IDs")
	}
}

// TestStatusRecorderHijack drives a real connection takeover through the
// instrumented wrapper: a handler that type-asserts http.Hijacker must
// keep working behind the middleware.
func TestStatusRecorderHijack(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHandler(reg, "svc", "/hijack", http.HandlerFunc(
		func(w http.ResponseWriter, _ *http.Request) {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("instrumented writer lost http.Hijacker")
				w.WriteHeader(http.StatusInternalServerError)
				return
			}
			conn, rw, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			defer conn.Close()
			_, _ = rw.WriteString("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\ntaken")
			_ = rw.Flush()
		}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/hijack")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "taken" {
		t.Fatalf("hijacked response %q", body)
	}
}

func TestStatusRecorderHijackUnsupported(t *testing.T) {
	// httptest.ResponseRecorder is not a Hijacker: the wrapper must
	// report http.ErrNotSupported, not panic or pretend.
	rec := &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	_, _, err := rec.Hijack()
	if !errors.Is(err, http.ErrNotSupported) {
		t.Fatalf("err = %v, want http.ErrNotSupported", err)
	}
}

// readerFromWriter counts ReadFrom delegations, proving the wrapper
// forwards to the underlying writer's zero-copy path.
type readerFromWriter struct {
	http.ResponseWriter
	buf       bytes.Buffer
	readFroms int
}

func (w *readerFromWriter) ReadFrom(src io.Reader) (int64, error) {
	w.readFroms++
	return w.buf.ReadFrom(src)
}

func TestStatusRecorderReadFromForwards(t *testing.T) {
	under := &readerFromWriter{ResponseWriter: httptest.NewRecorder()}
	rec := &statusRecorder{ResponseWriter: under}
	// Strip strings.Reader's WriterTo so io.Copy takes the destination's
	// ReaderFrom path — the one the wrapper must forward.
	src := struct{ io.Reader }{strings.NewReader("payload")}
	n, err := io.Copy(rec, src)
	if err != nil || n != 7 {
		t.Fatalf("copy: n=%d err=%v", n, err)
	}
	if under.readFroms != 1 {
		t.Errorf("underlying ReadFrom called %d times, want 1", under.readFroms)
	}
	if under.buf.String() != "payload" {
		t.Errorf("payload = %q", under.buf.String())
	}
	if rec.status != http.StatusOK {
		t.Errorf("implicit status = %d, want 200", rec.status)
	}
}

func TestStatusRecorderReadFromFallback(t *testing.T) {
	// The plain recorder has no ReadFrom: the wrapper must fall back to
	// a copy without recursing into its own ReadFrom.
	httpRec := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: httpRec}
	n, err := rec.ReadFrom(strings.NewReader("fallback"))
	if err != nil || n != 8 {
		t.Fatalf("fallback copy: n=%d err=%v", n, err)
	}
	if got := httpRec.Body.String(); got != "fallback" {
		t.Errorf("body = %q", got)
	}
}

// TestStatusRecorderUnwrap keeps http.ResponseController working through
// the wrapper.
func TestStatusRecorderUnwrap(t *testing.T) {
	srv := httptest.NewServer(InstrumentHandler(NewRegistry(), "svc", "/rc", http.HandlerFunc(
		func(w http.ResponseWriter, _ *http.Request) {
			rc := http.NewResponseController(w)
			if err := rc.Flush(); err != nil {
				t.Errorf("ResponseController.Flush through wrapper: %v", err)
			}
			_, _ = io.WriteString(w, "ok")
		})))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/rc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if b, _ := io.ReadAll(resp.Body); string(b) != "ok" {
		t.Fatalf("body %q", b)
	}
}
