package obs

import (
	"net/http"
	"strconv"
	"time"
)

// HTTP server instrumentation for the campaign service. One middleware
// wraps every route of `gemstone serve` and emits the request-level RED
// metrics (rate, errors, duration) under a service-scoped prefix, so a
// single registry can carry both campaign metrics and the HTTP surface
// without per-handler boilerplate.

// httpDurationBounds buckets request latency from sub-millisecond JSON
// handlers out to multi-minute SSE streams that stay open for a whole
// campaign.
var httpDurationBounds = []float64{
	0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300, 1800,
}

// statusRecorder captures the response status code while passing the
// writer through. It deliberately forwards http.Flusher: the events
// endpoint streams SSE frames and a wrapper that hides Flush would
// silently buffer the stream until the campaign ends.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports streaming.
// ResponseController (used by handlers that need Flush errors) also
// finds the underlying writer through Unwrap.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// InstrumentHandler wraps h with request metrics labelled by route (a
// static pattern like "/v1/campaigns/{id}/events", never the raw URL —
// raw paths would explode series cardinality), method and status code:
//
//	<name>_requests_total{route,method,code}
//	<name>_requests_in_flight{route}
//	<name>_request_seconds{route,method}
//
// The route label is passed explicitly rather than read back from the
// request so the middleware works on any Go 1.22 mux.
func InstrumentHandler(reg *Registry, name, route string, h http.Handler) http.Handler {
	total := reg.Counter(name+"_requests_total",
		"HTTP requests served, by route, method and status code.",
		"route", "method", "code")
	inflight := reg.Gauge(name+"_requests_in_flight",
		"HTTP requests currently being served, by route.", "route")
	seconds := reg.Histogram(name+"_request_seconds",
		"HTTP request duration in seconds, by route and method.",
		httpDurationBounds, "route", "method")
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		inflight.Add(1, route)
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			inflight.Add(-1, route)
			seconds.Observe(time.Since(start).Seconds(), route, req.Method)
			code := rec.status
			if code == 0 { // handler never wrote; net/http sends 200
				code = http.StatusOK
			}
			total.Inc(route, req.Method, strconv.Itoa(code))
		}()
		h.ServeHTTP(rec, req)
	})
}
