package obs

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// HTTP server instrumentation for the campaign service. One middleware
// wraps every route of `gemstone serve`, emits the request-level RED
// metrics (rate, errors, duration) under a service-scoped prefix, and —
// when a logger is supplied — assigns each request an ID and logs its
// completion with whatever correlation attributes the service extracts
// (tenant, campaign), so a single registry and log stream carry the whole
// HTTP surface without per-handler boilerplate.

// httpDurationBounds buckets request latency from sub-millisecond JSON
// handlers out to multi-minute SSE streams that stay open for a whole
// campaign.
var httpDurationBounds = []float64{
	0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300, 1800,
}

// RequestIDHeader carries the per-request ID assigned by the logging
// middleware, echoed on the response so clients can quote it back.
const RequestIDHeader = "X-Gemstone-Request-ID"

// reqSeq numbers requests process-wide; the ID ties a response to its
// log line, so uniqueness within one process lifetime is all it needs.
var reqSeq atomic.Int64

// statusRecorder captures the response status code while passing the
// writer through. It forwards the optional interfaces streaming and
// file-serving handlers probe for — http.Flusher, http.Hijacker,
// io.ReaderFrom — because a wrapper that hid them would silently buffer
// SSE streams or disable sendfile. ResponseController reaches the
// underlying writer through Unwrap as well.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports streaming.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack forwards connection takeover when the underlying writer
// supports it; otherwise it reports http.ErrNotSupported like net/http
// itself does, instead of hiding the capability probe.
func (r *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := r.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, fmt.Errorf("obs: response writer does not support hijacking: %w", http.ErrNotSupported)
}

// ReadFrom keeps the underlying writer's zero-copy path (sendfile)
// reachable through the wrapper. The implicit 200 is recorded exactly as
// Write would, and the fallback copies through the plain writer without
// re-probing ReaderFrom on the recorder itself.
func (r *statusRecorder) ReadFrom(src io.Reader) (int64, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	if rf, ok := r.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(src)
	}
	return io.Copy(writerOnly{r.ResponseWriter}, src)
}

// writerOnly strips every optional interface so io.Copy cannot loop back
// into a ReaderFrom probe.
type writerOnly struct{ io.Writer }

// Unwrap exposes the wrapped writer to http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// InstrumentHandler wraps h with request metrics labelled by route (a
// static pattern like "/v1/campaigns/{id}/events", never the raw URL —
// raw paths would explode series cardinality), method and status code:
//
//	<name>_requests_total{route,method,code}
//	<name>_requests_in_flight{route}
//	<name>_request_seconds{route,method}
//
// The route label is passed explicitly rather than read back from the
// request so the middleware works on any Go 1.22 mux.
func InstrumentHandler(reg *Registry, name, route string, h http.Handler) http.Handler {
	return InstrumentHandlerLog(reg, name, route, h, nil, nil)
}

// InstrumentHandlerLog is InstrumentHandler plus request logging: every
// request is assigned an ID (echoed in the X-Gemstone-Request-ID response
// header) and logged on completion with method, route, status, duration
// and whatever attributes correlate extracts from the request (the
// campaign service returns tenant and campaign ID). A nil log disables
// the logging side, a nil reg the metrics side; with both nil the handler
// is returned unwrapped.
func InstrumentHandlerLog(reg *Registry, name, route string, h http.Handler,
	log *slog.Logger, correlate func(*http.Request) []any) http.Handler {
	if reg == nil && log == nil {
		return h
	}
	var (
		total    *Counter
		inflight *Gauge
		seconds  *Histogram
	)
	if reg != nil {
		total = reg.Counter(name+"_requests_total",
			"HTTP requests served, by route, method and status code.",
			"route", "method", "code")
		inflight = reg.Gauge(name+"_requests_in_flight",
			"HTTP requests currently being served, by route.", "route")
		seconds = reg.Histogram(name+"_request_seconds",
			"HTTP request duration in seconds, by route and method.",
			httpDurationBounds, "route", "method")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		var reqID string
		if log != nil {
			reqID = fmt.Sprintf("r%06d", reqSeq.Add(1))
			w.Header().Set(RequestIDHeader, reqID)
		}
		if inflight != nil {
			inflight.Add(1, route)
		}
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			elapsed := time.Since(start)
			code := rec.status
			if code == 0 { // handler never wrote; net/http sends 200
				code = http.StatusOK
			}
			if inflight != nil {
				inflight.Add(-1, route)
				seconds.Observe(elapsed.Seconds(), route, req.Method)
				total.Inc(route, req.Method, strconv.Itoa(code))
			}
			if log != nil {
				attrs := []any{
					"req", reqID, "method", req.Method, "route", route,
					"status", code, "dur", elapsed.Round(time.Microsecond).String(),
				}
				if correlate != nil {
					attrs = append(attrs, correlate(req)...)
				}
				level := slog.LevelDebug
				if code >= 500 {
					level = slog.LevelWarn
				} else if code >= 400 {
					level = slog.LevelInfo
				}
				log.Log(req.Context(), level, "http request", attrs...)
			}
		}()
		h.ServeHTTP(rec, req)
	})
}
