package obs

import (
	"math/bits"
	"time"
)

// HDR is a high-dynamic-range latency histogram in the spirit of Gil
// Tene's HdrHistogram: values are bucketed log-linearly, so every
// recorded value lands in a bucket whose width is a bounded fraction of
// its magnitude. Quantiles are therefore exact up to the bucket
// resolution — at most hdrRelError relative error — across the full
// int64 range, with no per-record allocation and O(1) record cost.
//
// The intended use is per-worker shards: each load-generator worker
// records into its own HDR (no locking on the hot path) and the shards
// are folded together with Merge when the run ends. An HDR is NOT safe
// for concurrent use; Merge the shards instead of sharing one.
//
// Values are int64 "units" — the load driver records nanoseconds via
// RecordDuration — and negative values clamp to zero.
type HDR struct {
	counts []uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// Bucket geometry: values below hdrSub are exact (one bucket per
// value); above, each doubling of magnitude gets hdrSub/2 linear
// sub-buckets, so bucket width / bucket lower bound <= 2/hdrSub.
const (
	hdrSubBits = 6
	hdrSub     = 1 << hdrSubBits // 64 exact low buckets, 32 per octave after
	hdrLevels  = 64 - hdrSubBits // enough octaves to cover int64
	hdrSlots   = hdrSub + hdrLevels*hdrSub/2
)

// HDRRelError is the worst-case relative quantile error introduced by
// bucketing: bucket width over bucket lower bound, 2/hdrSub.
const HDRRelError = 2.0 / hdrSub

// NewHDR returns an empty histogram.
func NewHDR() *HDR {
	return &HDR{counts: make([]uint64, hdrSlots), min: 0, max: 0}
}

// hdrIndex maps a non-negative value to its bucket.
func hdrIndex(v int64) int {
	u := uint64(v)
	if u < hdrSub {
		return int(u)
	}
	// Shift so the value fits in [hdrSub/2, hdrSub); each level k >= 1
	// contributes hdrSub/2 buckets of width 2^k.
	k := bits.Len64(u) - hdrSubBits
	return hdrSub + (k-1)*hdrSub/2 + int(u>>uint(k)) - hdrSub/2
}

// hdrBounds returns the inclusive value range [lo, hi] of bucket i.
func hdrBounds(i int) (lo, hi int64) {
	if i < hdrSub {
		return int64(i), int64(i)
	}
	k := (i-hdrSub)/(hdrSub/2) + 1
	sub := int64((i-hdrSub)%(hdrSub/2) + hdrSub/2)
	lo = sub << uint(k)
	return lo, lo + (1 << uint(k)) - 1
}

// Record adds one value. Negative values clamp to zero.
func (h *HDR) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[hdrIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// RecordDuration records d in nanoseconds.
func (h *HDR) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Merge folds o into h. o is unchanged; a nil or empty o is a no-op.
func (h *HDR) Merge(o *HDR) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of recorded values.
func (h *HDR) Count() uint64 { return h.n }

// Min returns the smallest recorded value (0 when empty).
func (h *HDR) Min() int64 { return h.min }

// Max returns the largest recorded value (0 when empty).
func (h *HDR) Max() int64 { return h.max }

// Sum returns the sum of recorded values.
func (h *HDR) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean (0 when empty). Unlike quantiles it
// is exact: the sum is accumulated outside the buckets.
func (h *HDR) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the q-th quantile (q in [0, 1]) as the midpoint of
// the bucket holding the q-th ordered value, clamped into [Min, Max] so
// bucketing can never report a quantile outside the observed range.
// Empty histograms return 0.
func (h *HDR) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// rank is the 1-based position of the quantile value.
	rank := uint64(q*float64(h.n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			lo, hi := hdrBounds(i)
			mid := lo + (hi-lo)/2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// QuantileDuration returns Quantile(q) as a time.Duration (the load
// driver records nanoseconds).
func (h *HDR) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}
