package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served_total", "").Inc()

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "served_total 1") {
		t.Fatalf("/metrics: code %d body %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz: code %d", code)
	}
	// The profiler must be mounted: the index lists the runtime profiles
	// and the goroutine profile dumps.
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code %d", code)
	}
	if code, body := get("/debug/pprof/goroutine?debug=1"); code != http.StatusOK || !strings.Contains(body, "goroutine profile") {
		t.Fatalf("/debug/pprof/goroutine: code %d body %.80q", code, body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:0", NewRegistry()); err == nil {
		t.Fatal("Serve on a bogus address succeeded")
	}
}

func ExampleServe() {
	reg := NewRegistry()
	reg.Gauge("example_up", "").Set(1)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr().String() + "/metrics")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Print(strings.Contains(string(body), "example_up 1"))
	// Output: true
}
