package obs

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInstrumentHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHandler(reg, "svc", "/v1/thing/{id}",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/thing/missing" {
				http.Error(w, "nope", http.StatusNotFound)
				return
			}
			w.Write([]byte("ok")) // implicit 200
		}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, p := range []string{"/v1/thing/a", "/v1/thing/b", "/v1/thing/missing"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	snap := reg.Snapshot()
	if got := snap[`svc_requests_total{route="/v1/thing/{id}",method="GET",code="200"}`]; got != 2 {
		t.Fatalf("200 count = %v, want 2", got)
	}
	if got := snap[`svc_requests_total{route="/v1/thing/{id}",method="GET",code="404"}`]; got != 1 {
		t.Fatalf("404 count = %v, want 1", got)
	}
	if got := snap[`svc_request_seconds_count{route="/v1/thing/{id}",method="GET"}`]; got != 3 {
		t.Fatalf("duration observations = %v, want 3", got)
	}
	if got := snap[`svc_requests_in_flight{route="/v1/thing/{id}"}`]; got != 0 {
		t.Fatalf("in-flight after completion = %v, want 0", got)
	}
}

// TestInstrumentHandlerForwardsFlush pins the SSE contract: the wrapped
// writer must still implement http.Flusher and actually deliver flushed
// bytes to the client before the handler returns.
func TestInstrumentHandlerForwardsFlush(t *testing.T) {
	reg := NewRegistry()
	release := make(chan struct{})
	h := InstrumentHandler(reg, "svc", "/stream",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			f, ok := w.(http.Flusher)
			if !ok {
				t.Error("instrumented writer lost http.Flusher")
				return
			}
			w.Header().Set("Content-Type", "text/event-stream")
			w.Write([]byte("data: first\n\n"))
			f.Flush()
			<-release
		}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	defer close(release)

	resp, err := http.Get(srv.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The handler is still blocked on release: any readable line proves
	// the Flush reached the wire through the wrapper.
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil {
		t.Fatalf("reading flushed frame: %v", err)
	}
	if !strings.HasPrefix(line, "data: first") {
		t.Fatalf("unexpected frame %q", line)
	}
}
