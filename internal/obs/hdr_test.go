package obs

import (
	"math"
	"sort"
	"testing"
	"time"

	"gemstone/internal/xrand"
)

func TestHDRExactBelowSub(t *testing.T) {
	h := NewHDR()
	for v := int64(0); v < hdrSub; v++ {
		h.Record(v)
	}
	if got := h.Count(); got != hdrSub {
		t.Fatalf("count = %d, want %d", got, hdrSub)
	}
	// Values below hdrSub are bucketed exactly: the median of 0..63 is
	// recoverable without bucket error.
	if got := h.Quantile(0.5); got != 31 && got != 32 {
		t.Fatalf("median of 0..63 = %d, want 31 or 32", got)
	}
	if h.Min() != 0 || h.Max() != hdrSub-1 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHDRIndexBoundsRoundTrip(t *testing.T) {
	// Every probe value must land in a bucket whose bounds contain it.
	probes := []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for _, v := range probes {
		i := hdrIndex(v)
		if i < 0 || i >= hdrSlots {
			t.Fatalf("index(%d) = %d out of range [0,%d)", v, i, hdrSlots)
		}
		lo, hi := hdrBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d bucketed into [%d,%d]", v, lo, hi)
		}
		// Bucket resolution: width bounded by HDRRelError of the value.
		if lo >= hdrSub && float64(hi-lo) > HDRRelError*float64(lo) {
			t.Fatalf("bucket [%d,%d] wider than %.3f relative", lo, hi, HDRRelError)
		}
	}
}

func TestHDRQuantileAccuracy(t *testing.T) {
	// Against an exact sorted reference over a heavy-tailed sample.
	rng := xrand.New(7)
	h := NewHDR()
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform-ish spread across 6 orders of magnitude.
		v := int64(math.Exp(rng.Float64()*13.8)) + int64(rng.Intn(1000))
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		rel := math.Abs(float64(got-exact)) / float64(exact)
		// Bucket midpoint error plus rank-rounding slack.
		if rel > HDRRelError+0.01 {
			t.Errorf("q%.3f: got %d, exact %d (rel err %.4f)", q, got, exact, rel)
		}
	}
}

func TestHDRMergeEquivalence(t *testing.T) {
	rng := xrand.New(11)
	whole, a, b := NewHDR(), NewHDR(), NewHDR()
	for i := 0; i < 10000; i++ {
		v := int64(rng.Uint64() >> 34) // up to ~2^30
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	m := NewHDR()
	m.Merge(a)
	m.Merge(b)
	m.Merge(nil)      // no-op
	m.Merge(NewHDR()) // empty no-op
	if m.Count() != whole.Count() || m.Sum() != whole.Sum() ||
		m.Min() != whole.Min() || m.Max() != whole.Max() {
		t.Fatalf("merge mismatch: count %d/%d sum %d/%d min %d/%d max %d/%d",
			m.Count(), whole.Count(), m.Sum(), whole.Sum(), m.Min(), whole.Min(), m.Max(), whole.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if m.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%.2f: merged %d != whole %d", q, m.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHDREmptyAndEdge(t *testing.T) {
	h := NewHDR()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamps
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative record: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
	h2 := NewHDR()
	h2.RecordDuration(250 * time.Millisecond)
	if got := h2.QuantileDuration(0.5); got < 240*time.Millisecond || got > 260*time.Millisecond {
		t.Fatalf("single duration quantile = %v", got)
	}
	if h2.Quantile(0) != h2.Min() || h2.Quantile(1) != h2.Max() {
		t.Fatal("q=0/1 must be min/max")
	}
}
