package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux builds the observability HTTP handler: the registry's
// Prometheus exposition on /metrics, the Go profiler on /debug/pprof/
// (index, cmdline, profile, symbol, trace and every runtime profile),
// and a trivial liveness probe on /healthz. The pprof handlers are
// registered explicitly so the server works without touching
// http.DefaultServeMux.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv  *http.Server
	addr net.Addr
}

// Serve starts the observability endpoint on addr (host:port; ":0" picks
// a free port) and serves until Close. Campaigns are long-running, so the
// listener comes up before any simulation starts and profiles can be
// taken mid-campaign.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// ErrServerClosed is the normal shutdown path; anything else has
		// nowhere useful to go once the campaign owns the foreground.
		_ = srv.Serve(ln)
	}()
	return &Server{srv: srv, addr: ln.Addr()}, nil
}

// Addr returns the bound listener address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.addr }

// Close shuts the endpoint down, waiting briefly for in-flight scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
