package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// Structured logging. The command binaries log through log/slog; this
// constructor centralises the -log-format flag handling so every binary
// accepts the same values.

// Log formats accepted by NewLogger (the -log-format flag).
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogger builds a slog.Logger writing to w in the given format
// ("text" or "json") at the given level. An unknown format is an error —
// the binaries surface it as flag misuse.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case LogText, "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %q or %q)", format, LogText, LogJSON)
	}
}
