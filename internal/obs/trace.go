// Package obs is GemStone's observability layer: low-overhead tracing of
// campaign and simulator phases (exported as Chrome trace-event JSON that
// chrome://tracing and Perfetto load directly), a Prometheus-style metrics
// registry with an HTTP exposition endpoint that also mounts
// net/http/pprof, and structured-logging helpers shared by the command
// binaries.
//
// The package is dependency-free within the repository so every layer —
// the collector, the platform, the pipelines — can be instrumented without
// import cycles. All tracing entry points are near-zero cost when tracing
// is off: a nil *Tracer (and the nil *Span it hands out) reduces every
// call to a single pointer check, so instrumented hot paths cost nothing
// measurable on uninstrumented runs (see BenchmarkSpanDisabled).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation attached to a span. Values are kept as
// produced (string, int64, float64, bool) and serialised into the trace
// event's args object.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: int64(value)} }

// Int64 builds an integer attribute.
func Int64(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Uint64 builds an integer attribute (stored as int64; simulator tallies
// never approach the sign bit).
func Uint64(key string, value uint64) Attr { return Attr{Key: key, Value: int64(value)} }

// Float64 builds a floating-point attribute.
func Float64(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// Event is one completed span, recorded relative to the tracer epoch.
type Event struct {
	// Name is the span name ("simulate", "plan", ...).
	Name string
	// Lane is the virtual thread the span renders on (Chrome "tid"):
	// root spans claim a free lane, children inherit their parent's.
	Lane int
	// Proc is the process lane group the span renders in (Chrome "pid"):
	// 0 is the local process; spans merged from remote processes via
	// ImportProcess carry the id assigned to their process name.
	Proc int
	// Start is the span start, relative to the tracer epoch.
	Start time.Duration
	// Dur is the span duration.
	Dur time.Duration
	// Attrs carries the span annotations.
	Attrs []Attr
}

// Tracer records spans from any number of goroutines. The zero value is
// not usable; construct with NewTracer. A nil *Tracer is the disabled
// tracer: Start returns a nil *Span and every operation on either is a
// pointer-check no-op.
type Tracer struct {
	epoch time.Time

	mu     sync.Mutex
	events []Event
	free   []int // released lanes, reused lowest-first
	lanes  int   // high-water lane count
	procs  map[string]*traceProc
}

// traceProc is one remote process merged into the trace: its Chrome pid
// and the per-lane high-water marks the lane allocator packs imported
// batches against.
type traceProc struct {
	id      int
	laneEnd []time.Duration // per lane: end of the latest batch placed on it
}

// NewTracer returns an enabled tracer whose epoch is now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a root span on its own lane. The returned span must be
// ended exactly once; children opened via Span.Child share its lane.
// Start on a nil tracer returns a nil span; the whole span API is no-op
// safe on nil receivers.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var lane int
	if n := len(t.free); n > 0 {
		lane = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		lane = t.lanes
		t.lanes++
	}
	t.mu.Unlock()
	return &Span{tracer: t, name: name, lane: lane, root: true, start: time.Now(), attrs: attrs}
}

// record appends a finished span and, for roots, releases its lane.
func (t *Tracer) record(s *Span, end time.Time) {
	ev := Event{
		Name:  s.name,
		Lane:  s.lane,
		Start: s.start.Sub(t.epoch),
		Dur:   end.Sub(s.start),
		Attrs: s.attrs,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	if s.root {
		t.free = append(t.free, s.lane)
		// Keep the free list sorted descending so the lowest lane is
		// reused first and traces stay compact.
		sort.Sort(sort.Reverse(sort.IntSlice(t.free)))
	}
	t.mu.Unlock()
}

// Events returns a copy of the recorded spans, ordered by start time.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Span is one in-flight trace region. A span belongs to a single
// goroutine; spans of different goroutines may overlap freely (each root
// gets its own lane). All methods are no-ops on a nil receiver.
type Span struct {
	tracer *Tracer
	name   string
	lane   int
	root   bool
	start  time.Time
	attrs  []Attr
	ended  bool
}

// Child opens a sub-span on the same lane. Children must end before
// their parent for the trace to nest correctly.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{tracer: s.tracer, name: name, lane: s.lane, start: time.Now(), attrs: attrs}
}

// Annotate appends attributes to the span (visible once it ends).
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End records the span. A second End is ignored.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.tracer.record(s, time.Now())
}

// chromeEvent is one Chrome trace-event object ("X" complete events; see
// the Trace Event Format spec). Perfetto and chrome://tracing load a JSON
// object with a traceEvents array of these.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds since trace start
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope form of a Chrome trace file.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders every recorded span as Chrome trace-event
// JSON. The output is a single JSON object loadable by chrome://tracing
// and ui.perfetto.dev. Spans merged from remote processes (ImportProcess)
// render under their own pid with a process_name metadata record, so a
// stitched fleet trace shows one timeline with per-worker lanes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteChromeTrace on a disabled (nil) tracer")
	}
	events := t.Events()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	if names := t.procNames(); len(names) > 0 {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Cat: "__metadata", Ph: "M", Pid: 1,
			Args: map[string]any{"name": "coordinator"},
		})
		for _, pid := range sortedPids(names) {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Cat: "__metadata", Ph: "M", Pid: pid,
				Args: map[string]any{"name": names[pid]},
			})
		}
	}
	for _, ev := range events {
		pid := ev.Proc
		if pid == 0 {
			pid = 1
		}
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  "gemstone",
			Ph:   "X",
			Ts:   float64(ev.Start) / float64(time.Microsecond),
			Dur:  float64(ev.Dur) / float64(time.Microsecond),
			Pid:  pid,
			Tid:  ev.Lane + 1, // tid 0 renders oddly in some viewers
		}
		if len(ev.Attrs) > 0 {
			ce.Args = make(map[string]any, len(ev.Attrs))
			for _, a := range ev.Attrs {
				ce.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
