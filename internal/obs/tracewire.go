package obs

import (
	"sort"
	"time"
)

// Wire forms for distributed tracing. A coordinator ships a TraceContext
// with every remote job; the worker records SpanRecords against its own
// clock and returns them with the result; the coordinator imports them
// into the campaign tracer via Tracer.ImportProcess, adjusting for the
// clock offset it estimates from the exchange timestamps. Every type here
// is flat, concretely typed data — no interfaces, no pointers — so
// encoding/gob round-trips it without registration and tolerates fields
// that one side does not know about.

// TraceContext is the correlation identity a job carries across the
// wire: which campaign and tenant own it, the job's content-addressed ID,
// and the coordinator-side span it was dispatched under. The zero value
// means "anonymous and untraced". Correlation and recording are separate
// concerns: a job may carry IDs purely so remote log lines can be
// attributed (Correlated) without asking the worker to build and return
// spans (Recording).
type TraceContext struct {
	// Campaign names the owning campaign (the coordinator's lease-table
	// key prefix, e.g. "c-000042/hw").
	Campaign string
	// Tenant is the submitting tenant, when the campaign has one.
	Tenant string
	// Job is the content-addressed job ID (the run-cache key).
	Job string
	// Parent names the coordinator-side span the job was dispatched
	// under, so a merged trace can be read back to its dispatch site.
	Parent string
	// Record asks the remote side to record spans and return them with
	// the result. Correlation IDs may be set without it: then the worker
	// tags its log lines but pays nothing on the span path.
	Record bool
}

// Correlated reports whether the context carries any identity worth
// logging.
func (tc TraceContext) Correlated() bool {
	return tc.Campaign != "" || tc.Tenant != "" || tc.Job != ""
}

// Recording reports whether the remote side should record spans.
func (tc TraceContext) Recording() bool { return tc.Record }

// AttrRecord is the wire form of one span attribute. Attr carries its
// value as `any`, which gob cannot transport without per-type
// registration; the record flattens the four concrete kinds the Attr
// constructors produce into tagged fields instead.
type AttrRecord struct {
	// Key is the attribute key.
	Key string
	// Kind discriminates which value field is live.
	Kind AttrKind
	// Str, Int, Float and Bool carry the value for the matching kind.
	Str   string
	Int   int64
	Float float64
	Bool  bool
}

// AttrKind discriminates AttrRecord values.
type AttrKind uint8

// AttrRecord value kinds.
const (
	AttrString AttrKind = iota
	AttrInt
	AttrFloat
	AttrBool
)

// recordAttr flattens one Attr into its wire form. Unknown dynamic types
// (impossible via the constructors) degrade to the string form.
func recordAttr(a Attr) AttrRecord {
	switch v := a.Value.(type) {
	case string:
		return AttrRecord{Key: a.Key, Kind: AttrString, Str: v}
	case int64:
		return AttrRecord{Key: a.Key, Kind: AttrInt, Int: v}
	case float64:
		return AttrRecord{Key: a.Key, Kind: AttrFloat, Float: v}
	case bool:
		return AttrRecord{Key: a.Key, Kind: AttrBool, Bool: v}
	}
	return AttrRecord{Key: a.Key, Kind: AttrString, Str: "?"}
}

// Attr rebuilds the in-memory attribute.
func (r AttrRecord) Attr() Attr {
	switch r.Kind {
	case AttrInt:
		return Attr{Key: r.Key, Value: r.Int}
	case AttrFloat:
		return Attr{Key: r.Key, Value: r.Float}
	case AttrBool:
		return Attr{Key: r.Key, Value: r.Bool}
	}
	return Attr{Key: r.Key, Value: r.Str}
}

// SpanRecord is the wire form of one completed span, timed against the
// recording process's own clock (absolute unix nanoseconds, not a tracer
// epoch — the two sides do not share one). Lane is relative to the batch:
// a single-threaded recorder emits everything on lane 0 and the importer
// re-lanes the whole batch together.
type SpanRecord struct {
	// Name is the span name.
	Name string
	// Lane is the batch-relative lane.
	Lane int
	// StartUnixNano is the span start on the recorder's clock.
	StartUnixNano int64
	// DurNanos is the span duration.
	DurNanos int64
	// Attrs carries the span annotations in wire form.
	Attrs []AttrRecord
}

// NewSpanRecord builds one wire-form span from absolute times, the shape
// a remote worker records without carrying a Tracer.
func NewSpanRecord(name string, start time.Time, end time.Time, attrs ...Attr) SpanRecord {
	rec := SpanRecord{
		Name:          name,
		StartUnixNano: start.UnixNano(),
		DurNanos:      int64(end.Sub(start)),
	}
	if rec.DurNanos < 0 {
		rec.DurNanos = 0
	}
	if len(attrs) > 0 {
		rec.Attrs = make([]AttrRecord, len(attrs))
		for i, a := range attrs {
			rec.Attrs[i] = recordAttr(a)
		}
	}
	return rec
}

// Export snapshots every recorded span in wire form, with absolute times
// (epoch + offset). A nil tracer exports nothing.
func (t *Tracer) Export() []SpanRecord {
	if t == nil {
		return nil
	}
	events := t.Events()
	out := make([]SpanRecord, len(events))
	for i, ev := range events {
		rec := SpanRecord{
			Name:          ev.Name,
			Lane:          ev.Lane,
			StartUnixNano: t.epoch.Add(ev.Start).UnixNano(),
			DurNanos:      int64(ev.Dur),
		}
		if len(ev.Attrs) > 0 {
			rec.Attrs = make([]AttrRecord, len(ev.Attrs))
			for j, a := range ev.Attrs {
				rec.Attrs[j] = recordAttr(a)
			}
		}
		out[i] = rec
	}
	return out
}

// ImportProcess merges a batch of remote spans into the trace as process
// proc (same name, same Chrome pid across batches). offset is the
// estimated remote-minus-local clock skew: remote timestamps are shifted
// by -offset onto the local clock. lo/hi, when non-zero, bound the batch
// to the local observation window (for a remote job: the dispatch
// request/response interval) — after skew adjustment every span is
// clamped inside it, so an offset estimate error can never make a worker
// span leak outside the dispatch span that provably contains it. Within
// the batch all spans shift uniformly, so their relative nesting is
// preserved exactly.
//
// Lanes are allocated per process: a batch occupies its recorder-relative
// lanes shifted to the lowest base where every lane's previous batch has
// ended, so concurrent jobs from one worker render side by side while
// sequential jobs share a lane. A nil tracer ignores the call.
func (t *Tracer) ImportProcess(proc string, recs []SpanRecord, offset time.Duration, lo, hi time.Time) {
	if t == nil || len(recs) == 0 {
		return
	}
	type placed struct {
		rec        SpanRecord
		start, end time.Duration // relative to the tracer epoch, clamped
	}
	batch := make([]placed, 0, len(recs))
	var batchStart, batchEnd time.Duration
	width := 1
	for _, rec := range recs {
		start := time.Unix(0, rec.StartUnixNano).Add(-offset)
		end := start.Add(time.Duration(rec.DurNanos))
		if !lo.IsZero() {
			if start.Before(lo) {
				start = lo
			}
			if end.Before(start) {
				end = start
			}
		}
		if !hi.IsZero() {
			if end.After(hi) {
				end = hi
			}
			if start.After(end) {
				start = end
			}
		}
		p := placed{rec: rec, start: start.Sub(t.epoch), end: end.Sub(t.epoch)}
		if len(batch) == 0 || p.start < batchStart {
			batchStart = p.start
		}
		if len(batch) == 0 || p.end > batchEnd {
			batchEnd = p.end
		}
		if rec.Lane+1 > width {
			width = rec.Lane + 1
		}
		batch = append(batch, p)
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.procs == nil {
		t.procs = make(map[string]*traceProc)
	}
	tp, ok := t.procs[proc]
	if !ok {
		// Remote pids start at 2; pid 1 is the local process.
		tp = &traceProc{id: len(t.procs) + 2}
		t.procs[proc] = tp
	}
	// Lowest base lane where all `width` lanes are free by batchStart.
	base := 0
	for ; base+width <= len(tp.laneEnd); base++ {
		fits := true
		for k := 0; k < width; k++ {
			if tp.laneEnd[base+k] > batchStart {
				fits = false
				break
			}
		}
		if fits {
			break
		}
	}
	for len(tp.laneEnd) < base+width {
		tp.laneEnd = append(tp.laneEnd, 0)
	}
	for k := 0; k < width; k++ {
		if batchEnd > tp.laneEnd[base+k] {
			tp.laneEnd[base+k] = batchEnd
		}
	}
	for _, p := range batch {
		t.events = append(t.events, Event{
			Name:  p.rec.Name,
			Lane:  base + p.rec.Lane,
			Proc:  tp.id,
			Start: p.start,
			Dur:   p.end - p.start,
			Attrs: attrsFromRecords(p.rec.Attrs),
		})
	}
}

func attrsFromRecords(recs []AttrRecord) []Attr {
	if len(recs) == 0 {
		return nil
	}
	out := make([]Attr, len(recs))
	for i, r := range recs {
		out[i] = r.Attr()
	}
	return out
}

// procNames snapshots the imported process names by pid.
func (t *Tracer) procNames() map[int]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.procs) == 0 {
		return nil
	}
	out := make(map[int]string, len(t.procs))
	for name, tp := range t.procs {
		out[tp.id] = name
	}
	return out
}

// sortedPids returns the metadata pids in stable order.
func sortedPids(names map[int]string) []int {
	pids := make([]int, 0, len(names))
	for pid := range names {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	return pids
}
