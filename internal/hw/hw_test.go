package hw

import (
	"testing"

	"gemstone/internal/pipeline"
)

func TestPlatformValid(t *testing.T) {
	p := Platform()
	if err := p.Config().Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Config().HasSensors {
		t.Fatal("the reference board has power sensors")
	}
	if p.Name() != "odroid-xu3" {
		t.Fatalf("platform name = %q", p.Name())
	}
}

func TestClusterShapes(t *testing.T) {
	a7, a15 := A7Cluster(), A15Cluster()
	if a7.Core.Kind != pipeline.InOrder {
		t.Fatal("A7 must be in-order")
	}
	if a15.Core.Kind != pipeline.OutOfOrder {
		t.Fatal("A15 must be out-of-order")
	}
	// The paper's TRM-sourced TLB shape (Section IV-F).
	if a15.Hier.ITLB.Entries != 32 {
		t.Fatalf("A15 L1 ITLB = %d entries, TRM says 32", a15.Hier.ITLB.Entries)
	}
	if !a15.Hier.UnifiedL2TLB || a15.Hier.L2TLB.Entries != 512 || a15.Hier.L2TLB.Assoc != 4 {
		t.Fatalf("A15 L2 TLB must be shared 512-entry 4-way, got %+v", a15.Hier.L2TLB)
	}
	if a15.Hier.L2.SizeBytes != 2<<20 || a7.Hier.L2.SizeBytes != 512<<10 {
		t.Fatal("L2 sizes: A15 2 MiB, A7 512 KiB")
	}
	if !a7.Hier.StreamingStoreMerge || !a15.Hier.StreamingStoreMerge {
		t.Fatal("hardware has merging write buffers")
	}
	if a7.Branch.BugSkewedUpdate || a15.Branch.BugSkewedUpdate {
		t.Fatal("hardware predictors have no bug")
	}
}

func TestExperimentFrequencies(t *testing.T) {
	a7 := ExperimentFrequencies(ClusterA7)
	a15 := ExperimentFrequencies(ClusterA15)
	if len(a7) != 4 || a7[0] != 200 || a7[3] != 1400 {
		t.Fatalf("A7 frequencies = %v", a7)
	}
	if len(a15) != 4 || a15[0] != 600 || a15[3] != 1800 {
		t.Fatalf("A15 frequencies = %v (2 GHz must be excluded: throttling)", a15)
	}
	// 2 GHz exists on the platform but is not an experiment point.
	cl := A15Cluster()
	found2G := false
	for _, pt := range cl.DVFS {
		if pt.FreqMHz == 2000 {
			found2G = true
		}
	}
	if !found2G {
		t.Fatal("the 2 GHz DVFS point must exist (it throttles)")
	}
}

func TestVoltageLookup(t *testing.T) {
	cl := A15Cluster()
	v, err := cl.Voltage(1800)
	if err != nil || v != 1.25 {
		t.Fatalf("voltage(1800) = %v, %v", v, err)
	}
	if _, err := cl.Voltage(123); err == nil {
		t.Fatal("unknown frequency must error")
	}
}

func TestPowerProcessesValid(t *testing.T) {
	for _, cl := range []string{ClusterA7, ClusterA15} {
		cc, err := Platform().Cluster(cl)
		if err != nil {
			t.Fatal(err)
		}
		if cc.Power == nil {
			t.Fatalf("%s: no power process", cl)
		}
		if err := cc.Power.Validate(); err != nil {
			t.Fatalf("%s: %v", cl, err)
		}
	}
	// The big cluster burns more power per event than the LITTLE one.
	a7, a15 := A7Cluster().Power, A15Cluster().Power
	if a15.ClockCV <= a7.ClockCV || a15.Leak0 <= a7.Leak0 {
		t.Fatal("A15 power process must dominate the A7's")
	}
}
