// Package hw defines the reference hardware platform: a simulated
// Hardkernel ODROID-XU3 (Samsung Exynos-5422) with a quad-core Cortex-A7
// LITTLE cluster and a quad-core Cortex-A15 big cluster, on-board power
// sensors and DVFS, standing in for the board the paper characterises.
//
// Geometry follows the Cortex-A7/A15 TRMs where the paper cites them —
// notably the A15's 32-entry L1 ITLB and shared 512-entry 4-way L2 TLB,
// the exact parameters whose divergence from the gem5 model Section IV
// identifies.
package hw

import (
	"gemstone/internal/branch"
	"gemstone/internal/isa"
	"gemstone/internal/mem"
	"gemstone/internal/pipeline"
	"gemstone/internal/platform"
	"gemstone/internal/pmu"
)

// Cluster names used across the repository.
const (
	ClusterA7  = "a7"
	ClusterA15 = "a15"
)

// a7Latencies returns Cortex-A7-class execute latencies.
func a7Latencies() pipeline.Latencies {
	var l pipeline.Latencies
	l[isa.OpNop] = 1
	l[isa.OpIntALU] = 1
	l[isa.OpIntMul] = 3
	l[isa.OpIntDiv] = 20
	l[isa.OpFPAdd] = 4
	l[isa.OpFPMul] = 4
	l[isa.OpFPDiv] = 25
	l[isa.OpSIMD] = 4
	l[isa.OpLoad] = 1
	l[isa.OpStore] = 1
	l[isa.OpLoadEx] = 2
	l[isa.OpStoreEx] = 2
	l[isa.OpBarrier] = 2
	l[isa.OpBranch] = 1
	l[isa.OpCall] = 1
	l[isa.OpReturn] = 1
	l[isa.OpBranchInd] = 1
	return l
}

// a15Latencies returns Cortex-A15-class execute latencies.
func a15Latencies() pipeline.Latencies {
	var l pipeline.Latencies
	l[isa.OpNop] = 1
	l[isa.OpIntALU] = 1
	l[isa.OpIntMul] = 4
	l[isa.OpIntDiv] = 18
	l[isa.OpFPAdd] = 5
	l[isa.OpFPMul] = 5
	l[isa.OpFPDiv] = 30
	l[isa.OpSIMD] = 4
	l[isa.OpLoad] = 2
	l[isa.OpStore] = 1
	l[isa.OpLoadEx] = 2
	l[isa.OpStoreEx] = 2
	l[isa.OpBarrier] = 2
	l[isa.OpBranch] = 1
	l[isa.OpCall] = 1
	l[isa.OpReturn] = 1
	l[isa.OpBranchInd] = 1
	return l
}

// dram returns the board's LPDDR3 model. These latencies are the "truth"
// the gem5 model understates (Fig. 4).
func dram() mem.DRAMConfig {
	return mem.DRAMConfig{
		Banks: 8, RowBytes: 2048,
		RowHitNs: 45, RowMissNs: 115,
		BandwidthBytesPerNs: 6.4,
	}
}

// A7Cluster returns the LITTLE-cluster configuration.
func A7Cluster() platform.ClusterConfig {
	return platform.ClusterConfig{
		Name: ClusterA7,
		Core: pipeline.Config{
			Name: "a7", Kind: pipeline.InOrder,
			FetchWidth: 2, IssueWidth: 2,
			FrontendDepth: 8, MispredictPenalty: 3,
			Lat:                a7Latencies(),
			BarrierDrainCycles: 10, StrexRetryCycles: 6,
		},
		Hier: mem.HierarchyConfig{
			L1I: mem.CacheConfig{Name: "l1i", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 2, LatencyCycles: 1},
			L1D: mem.CacheConfig{Name: "l1d", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 2,
				WriteAllocate: true, NextLinePrefetch: true, PrefetchDegree: 1},
			L2: mem.CacheConfig{Name: "l2", SizeBytes: 512 << 10, LineBytes: 64, Assoc: 8, LatencyCycles: 10,
				WriteAllocate: true},
			ITLB:              mem.TLBConfig{Name: "itlb", Entries: 16, Assoc: 16},
			DTLB:              mem.TLBConfig{Name: "dtlb", Entries: 16, Assoc: 16},
			UnifiedL2TLB:      true,
			L2TLB:             mem.TLBConfig{Name: "l2tlb", Entries: 256, Assoc: 4, LatencyCycles: 2},
			DRAM:              dram(),
			WalkMemAccesses:   2,
			WalkLatencyCycles: 10,

			StreamingStoreMerge: true,
			StreamDetectRun:     4,
		},
		Branch: branch.Config{
			Name: "a7-bp", GlobalBits: 11, LocalBits: 11, ChoiceBits: 11,
			BTBEntries: 1024, RASEntries: 8, IndirectEntries: 128,
		},
		DVFS: []platform.DVFSPoint{
			{FreqMHz: 200, VoltageV: 0.90},
			{FreqMHz: 600, VoltageV: 0.95},
			{FreqMHz: 1000, VoltageV: 1.05},
			{FreqMHz: 1400, VoltageV: 1.20},
		},
		Power:   a7Power(),
		Thermal: platform.ThermalConfig{AmbientC: 24, RthCPerW: 25, TauSeconds: 10, ThrottleC: 85},
	}
}

// A15Cluster returns the big-cluster configuration.
func A15Cluster() platform.ClusterConfig {
	return platform.ClusterConfig{
		Name: ClusterA15,
		Core: pipeline.Config{
			Name: "a15", Kind: pipeline.OutOfOrder,
			FetchWidth: 4, IssueWidth: 4,
			ROBSize: 128, RetireWidth: 3,
			FrontendDepth: 12, MispredictPenalty: 4,
			Lat:                a15Latencies(),
			BarrierDrainCycles: 14, StrexRetryCycles: 8,
		},
		Hier: mem.HierarchyConfig{
			L1I: mem.CacheConfig{Name: "l1i", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 2, LatencyCycles: 1},
			L1D: mem.CacheConfig{Name: "l1d", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 2,
				WriteAllocate: true, NextLinePrefetch: true, PrefetchDegree: 2},
			L2: mem.CacheConfig{Name: "l2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 16, LatencyCycles: 12,
				WriteAllocate: true},
			// The TLB shape the paper quotes from the A15 TRM: 32-entry L1
			// ITLB, shared 512-entry 4-way L2 TLB with a short latency.
			ITLB:              mem.TLBConfig{Name: "itlb", Entries: 32, Assoc: 32},
			DTLB:              mem.TLBConfig{Name: "dtlb", Entries: 32, Assoc: 32},
			UnifiedL2TLB:      true,
			L2TLB:             mem.TLBConfig{Name: "l2tlb", Entries: 512, Assoc: 4, LatencyCycles: 2},
			DRAM:              dram(),
			WalkMemAccesses:   2,
			WalkLatencyCycles: 12,

			StreamingStoreMerge: true,
			StreamDetectRun:     4,
		},
		Branch: branch.Config{
			Name: "a15-bp", GlobalBits: 14, LocalBits: 13, ChoiceBits: 13,
			BTBEntries: 8192, RASEntries: 16, IndirectEntries: 512,
		},
		DVFS: []platform.DVFSPoint{
			{FreqMHz: 600, VoltageV: 0.90},
			{FreqMHz: 1000, VoltageV: 1.00},
			{FreqMHz: 1400, VoltageV: 1.10},
			{FreqMHz: 1800, VoltageV: 1.25},
			// 2 GHz exists but throttles thermally; the paper capped its
			// experiments at 1.8 GHz for exactly this reason.
			{FreqMHz: 2000, VoltageV: 1.45},
		},
		Power:   a15Power(),
		Thermal: platform.ThermalConfig{AmbientC: 24, RthCPerW: 13, TauSeconds: 12, ThrottleC: 70},
	}
}

// a15Power is the hidden ground-truth power process of the big cluster.
// The empirical models of internal/power are validated against sensor
// readings generated from this process; they never see these numbers.
func a15Power() *platform.PowerProcess {
	return &platform.PowerProcess{
		ClockCV: 0.50,
		EnergyNJ: map[pmu.Event]float64{
			pmu.InstSpec:         0.10,
			pmu.DpSpec:           0.05,
			pmu.VfpSpec:          0.35,
			pmu.AseSpec:          0.45,
			pmu.L1DCache:         0.25,
			pmu.L1DCacheWB:       0.80,
			pmu.L2DCache:         1.80,
			pmu.BusAccess:        6.00,
			pmu.BrMisPred:        1.20,
			pmu.L1DCacheRefillWr: 1.00,
		},
		Leak0: 0.35, LeakT: 0.004,
		NoiseFrac: 0.004, QuantumW: 0.001,
	}
}

// a7Power is the ground-truth power process of the LITTLE cluster.
func a7Power() *platform.PowerProcess {
	return &platform.PowerProcess{
		ClockCV: 0.09,
		EnergyNJ: map[pmu.Event]float64{
			pmu.InstSpec:         0.025,
			pmu.DpSpec:           0.012,
			pmu.VfpSpec:          0.080,
			pmu.AseSpec:          0.100,
			pmu.L1DCache:         0.060,
			pmu.L1DCacheWB:       0.250,
			pmu.L2DCache:         0.500,
			pmu.BusAccess:        2.000,
			pmu.BrMisPred:        0.300,
			pmu.L1DCacheRefillWr: 0.300,
		},
		Leak0: 0.040, LeakT: 0.0012,
		NoiseFrac: 0.004, QuantumW: 0.001,
	}
}

// Platform returns the simulated ODROID-XU3 reference board.
func Platform() *platform.Platform {
	return platform.New(platform.Config{
		Name:       "odroid-xu3",
		Clusters:   []platform.ClusterConfig{A7Cluster(), A15Cluster()},
		HasSensors: true,
	})
}

// ExperimentFrequencies returns the DVFS points the paper's Experiment 1
// uses per cluster (2 GHz excluded on the A15 due to throttling).
func ExperimentFrequencies(cluster string) []int {
	if cluster == ClusterA7 {
		return []int{200, 600, 1000, 1400}
	}
	return []int{600, 1000, 1400, 1800}
}
