// Package branch implements the branch-prediction substrate: a tournament
// direction predictor (bimodal + gshare + chooser), a branch target buffer,
// a return-address stack and an indirect-target predictor.
//
// The package also implements the specification defect at the heart of the
// paper's Section IV/VII finding. The gem5 ex5_big model of its day carried
// a branch-predictor bug that collapsed prediction accuracy from the
// hardware's ~96% to ~65% on average — and to below 1% on one highly
// regular ParMiBench loop kernel that the hardware predicted at 99.9%.
// We model this as a train/read index skew in the global history component
// (Config.BugSkewedUpdate): the predictor trains one PHT entry but consults
// a different one, so strongly biased branches are steered by untrained
// counters. Regular workloads are hit hardest, exactly as in the paper,
// and fixing the bug (gem5 v2) swings the execution-time MPE sign.
package branch

import "fmt"

// Config describes one predictor instance.
type Config struct {
	// Name identifies the predictor in diagnostics.
	Name string
	// GlobalBits sets the gshare history length and PHT size (2^bits).
	GlobalBits int
	// LocalBits sets the bimodal PHT size (2^bits).
	LocalBits int
	// ChoiceBits sets the tournament chooser size (2^bits).
	ChoiceBits int
	// BTBEntries is the branch target buffer capacity (power of two).
	BTBEntries int
	// RASEntries is the return-address stack depth.
	RASEntries int
	// IndirectEntries is the indirect-target predictor capacity (pow2).
	IndirectEntries int
	// BugSkewedUpdate enables the gem5-v1 defect: global-component PHT
	// updates are written to a skewed index so the entries consulted at
	// prediction time are never the entries being trained.
	BugSkewedUpdate bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.GlobalBits <= 0 || c.GlobalBits > 24 ||
		c.LocalBits <= 0 || c.LocalBits > 24 ||
		c.ChoiceBits <= 0 || c.ChoiceBits > 24 {
		return fmt.Errorf("branch: %q: table bits out of range", c.Name)
	}
	for _, n := range []int{c.BTBEntries, c.IndirectEntries} {
		if n <= 0 || n&(n-1) != 0 {
			return fmt.Errorf("branch: %q: entry count %d not a positive power of two", c.Name, n)
		}
	}
	if c.RASEntries <= 0 {
		return fmt.Errorf("branch: %q: RAS depth must be positive", c.Name)
	}
	return nil
}

// Stats accumulates predictor event counts. These feed both the ARM PMU
// events (0x10 BR_MIS_PRED, 0x12 BR_PRED) and the gem5 branchPred.* stats.
type Stats struct {
	Lookups             uint64 // all control-flow instructions seen
	CondLookups         uint64 // conditional branches
	Mispredicts         uint64 // any kind of misprediction
	CondMispredicts     uint64 // direction mispredictions
	TargetMispredicts   uint64 // right direction, wrong/unknown target
	BTBLookups          uint64
	BTBHits             uint64
	RASPushes           uint64
	RASPops             uint64
	RASIncorrect        uint64 // return target popped from RAS was wrong
	IndirectLookups     uint64
	IndirectHits        uint64
	IndirectMispredicts uint64
	PredictedTaken      uint64 // conditional branches predicted taken
}

// Accuracy returns the fraction of lookups predicted correctly.
func (s *Stats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return 1 - float64(s.Mispredicts)/float64(s.Lookups)
}

// Predictor is the tournament predictor with BTB, RAS and indirect table.
type Predictor struct {
	cfg Config
	// Stats is exported for the PMU/stats layers to read directly.
	Stats Stats

	globalPHT []uint8 // 2-bit counters
	localPHT  []uint8
	choice    []uint8 // 2-bit: >=2 prefer global
	history   uint64
	histMask  uint64

	// BTB: 2-way set-associative with LRU (btbMRU marks the most
	// recently used way per set).
	btbTags    []uint64 // 2 ways per set, interleaved
	btbTargets []uint64
	btbMRU     []uint8
	btbMask    uint64 // set mask

	ras    []uint64
	rasTop int

	indTags    []uint64
	indTargets []uint64
	indMask    uint64
}

// New builds a predictor, panicking on invalid configuration.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Predictor{
		cfg:        cfg,
		globalPHT:  make([]uint8, 1<<cfg.GlobalBits),
		localPHT:   make([]uint8, 1<<cfg.LocalBits),
		choice:     make([]uint8, 1<<cfg.ChoiceBits),
		histMask:   (1 << cfg.GlobalBits) - 1,
		btbTags:    make([]uint64, cfg.BTBEntries),
		btbTargets: make([]uint64, cfg.BTBEntries),
		btbMRU:     make([]uint8, cfg.BTBEntries/2),
		btbMask:    uint64(cfg.BTBEntries/2 - 1),
		ras:        make([]uint64, cfg.RASEntries),
		indTags:    make([]uint64, cfg.IndirectEntries),
		indTargets: make([]uint64, cfg.IndirectEntries),
		indMask:    uint64(cfg.IndirectEntries - 1),
	}
	// Initialise direction counters to weakly not-taken and choosers to
	// weakly-global, matching common simulator defaults. The weakly
	// not-taken start is what makes the skewed-update bug catastrophic for
	// almost-always-taken loop branches.
	for i := range p.choice {
		p.choice[i] = 2
	}
	for i := range p.globalPHT {
		p.globalPHT[i] = 1
	}
	for i := range p.localPHT {
		p.localPHT[i] = 1
	}
	return p
}

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Reset restores the predictor to its just-constructed state — direction
// counters back at their weakly not-taken / weakly-global init values,
// history, BTB, RAS and indirect table cleared, statistics zeroed — without
// reallocating any table. A Reset predictor must be indistinguishable from
// New(cfg); the SimContext reuse path depends on that.
func (p *Predictor) Reset() {
	p.Stats = Stats{}
	p.history = 0
	for i := range p.choice {
		p.choice[i] = 2
	}
	for i := range p.globalPHT {
		p.globalPHT[i] = 1
	}
	for i := range p.localPHT {
		p.localPHT[i] = 1
	}
	clear(p.btbTags)
	clear(p.btbTargets)
	clear(p.btbMRU)
	clear(p.ras)
	p.rasTop = 0
	clear(p.indTags)
	clear(p.indTargets)
}

func taken2(c uint8) bool { return c >= 2 }

func inc2(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return c
}

func dec2(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return c
}

func (p *Predictor) globalIndex(pc uint64) uint64 {
	return ((pc >> 2) ^ p.history) & p.histMask
}

// skewedGlobalIndex is the defective update index used when
// BugSkewedUpdate is set: a wrong folding constant is XORed into the PHT
// update address, so the entry trained is never the entry that the same
// (pc, history) pair reads at prediction time. Branches with a small set of
// recurring history values — regular loops — are steered by counters that
// are never trained and stay at their weakly-not-taken reset value, which
// is what collapses accuracy on the paper's most regular workloads.
func (p *Predictor) skewedGlobalIndex(pc uint64) uint64 {
	return ((pc >> 2) ^ p.history ^ 0x155) & p.histMask
}

func (p *Predictor) localIndex(pc uint64) uint64 {
	return ((pc >> 2) ^ (pc >> 14)) & ((1 << p.cfg.LocalBits) - 1)
}

func (p *Predictor) choiceIndex(pc uint64) uint64 {
	return ((pc >> 2) ^ (pc >> 14)) & ((1 << p.cfg.ChoiceBits) - 1)
}

// PredictCond returns the predicted direction for a conditional branch and
// trains the predictor with the actual outcome. It returns whether the
// overall prediction (direction and, if taken, target) was correct; the
// pipeline charges the mispredict penalty when it was not.
func (p *Predictor) PredictCond(pc uint64, actualTaken bool, actualTarget uint64) bool {
	p.Stats.Lookups++
	p.Stats.CondLookups++

	gi := p.globalIndex(pc)
	li := p.localIndex(pc)
	ci := p.choiceIndex(pc)

	gPred := taken2(p.globalPHT[gi])
	lPred := taken2(p.localPHT[li])
	pred := lPred
	useGlobal := taken2(p.choice[ci])
	if useGlobal {
		pred = gPred
	}
	if pred {
		p.Stats.PredictedTaken++
	}

	// Target check: a correctly predicted-taken branch still mispredicts
	// if the BTB has no (or a wrong) target.
	targetOK := true
	if pred && actualTaken {
		targetOK = p.btbLookupAndTrain(pc, actualTarget)
	} else if actualTaken {
		// Not predicted taken: train the BTB anyway so the next encounter
		// has the target available.
		p.btbTrain(pc, actualTarget)
	}

	correct := pred == actualTaken && targetOK
	if !correct {
		p.Stats.Mispredicts++
		if pred != actualTaken {
			p.Stats.CondMispredicts++
		} else {
			p.Stats.TargetMispredicts++
		}
	}

	// Chooser update: strengthen whichever component was right when they
	// disagree. The skewed-update bug corrupts this index too (both tables
	// are written through the same defective update path in gem5 v1), so
	// the chooser consulted at prediction time keeps its weakly-global
	// reset value and the broken global component stays in charge.
	uc := ci
	if p.cfg.BugSkewedUpdate {
		uc = (ci + 1) & ((1 << p.cfg.ChoiceBits) - 1)
	}
	if gPred != lPred {
		if gPred == actualTaken {
			p.choice[uc] = inc2(p.choice[uc])
		} else {
			p.choice[uc] = dec2(p.choice[uc])
		}
	}

	// Direction training.
	ui := gi
	if p.cfg.BugSkewedUpdate {
		ui = p.skewedGlobalIndex(pc)
	}
	if actualTaken {
		p.globalPHT[ui] = inc2(p.globalPHT[ui])
		p.localPHT[li] = inc2(p.localPHT[li])
	} else {
		p.globalPHT[ui] = dec2(p.globalPHT[ui])
		p.localPHT[li] = dec2(p.localPHT[li])
	}

	// History update.
	p.history = ((p.history << 1) | boolBit(actualTaken)) & p.histMask

	return correct
}

// PredictUncond handles a direct unconditional branch or call: direction is
// always taken; only the target can mispredict (BTB cold/alias).
func (p *Predictor) PredictUncond(pc, actualTarget uint64) bool {
	p.Stats.Lookups++
	ok := p.btbLookupAndTrain(pc, actualTarget)
	if !ok {
		p.Stats.Mispredicts++
		p.Stats.TargetMispredicts++
	}
	return ok
}

// Call records a call instruction: predicts like an unconditional branch
// and pushes the return address onto the RAS.
func (p *Predictor) Call(pc, actualTarget, returnAddr uint64) bool {
	ok := p.PredictUncond(pc, actualTarget)
	p.Stats.RASPushes++
	p.ras[p.rasTop] = returnAddr
	p.rasTop++
	if p.rasTop == len(p.ras) {
		p.rasTop = 0
	}
	return ok
}

// Return predicts a function return via the RAS.
func (p *Predictor) Return(pc, actualTarget uint64) bool {
	p.Stats.Lookups++
	p.Stats.RASPops++
	if p.rasTop == 0 {
		p.rasTop = len(p.ras)
	}
	p.rasTop--
	predicted := p.ras[p.rasTop]
	if predicted != actualTarget {
		p.Stats.RASIncorrect++
		p.Stats.Mispredicts++
		p.Stats.TargetMispredicts++
		return false
	}
	return true
}

// Indirect predicts an indirect branch through the indirect-target table.
func (p *Predictor) Indirect(pc, actualTarget uint64) bool {
	p.Stats.Lookups++
	p.Stats.IndirectLookups++
	idx := ((pc >> 2) ^ p.history) & p.indMask
	ok := p.indTags[idx] == pc && p.indTargets[idx] == actualTarget
	if ok {
		p.Stats.IndirectHits++
	} else {
		p.Stats.IndirectMispredicts++
		p.Stats.Mispredicts++
		p.Stats.TargetMispredicts++
	}
	p.indTags[idx] = pc
	p.indTargets[idx] = actualTarget
	return ok
}

// btbIndex spreads branch PCs across the BTB sets; block-strided code
// would otherwise alias heavily in a power-of-two table.
func (p *Predictor) btbIndex(pc uint64) uint64 {
	return ((pc >> 2) ^ (pc >> 13)) & p.btbMask
}

func (p *Predictor) btbLookupAndTrain(pc, actualTarget uint64) bool {
	p.Stats.BTBLookups++
	set := p.btbIndex(pc)
	w0 := set * 2
	ok := false
	for w := uint64(0); w < 2; w++ {
		if p.btbTags[w0+w] == pc {
			ok = p.btbTargets[w0+w] == actualTarget
			p.btbTargets[w0+w] = actualTarget
			p.btbMRU[set] = uint8(w)
			break
		}
	}
	if ok {
		p.Stats.BTBHits++
	} else {
		p.btbTrain(pc, actualTarget)
	}
	return ok
}

func (p *Predictor) btbTrain(pc, actualTarget uint64) {
	set := p.btbIndex(pc)
	w0 := set * 2
	for w := uint64(0); w < 2; w++ {
		if p.btbTags[w0+w] == pc {
			p.btbTargets[w0+w] = actualTarget
			p.btbMRU[set] = uint8(w)
			return
		}
	}
	victim := uint64(1 - p.btbMRU[set]) // LRU way
	p.btbTags[w0+victim] = pc
	p.btbTargets[w0+victim] = actualTarget
	p.btbMRU[set] = uint8(victim)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
