package branch

import (
	"testing"
	"testing/quick"

	"gemstone/internal/xrand"
)

func testConfig() Config {
	return Config{
		Name: "test", GlobalBits: 12, LocalBits: 12, ChoiceBits: 12,
		BTBEntries: 1024, RASEntries: 16, IndirectEntries: 256,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.GlobalBits = 0 },
		func(c *Config) { c.LocalBits = 30 },
		func(c *Config) { c.ChoiceBits = -1 },
		func(c *Config) { c.BTBEntries = 100 },
		func(c *Config) { c.RASEntries = 0 },
		func(c *Config) { c.IndirectEntries = 0 },
	}
	for i, mut := range mutations {
		cfg := testConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d: expected validation error", i)
		}
	}
}

// runLoopPattern simulates a loop branch: taken (iters-1) times, then
// not-taken, repeated. Returns prediction accuracy on the loop branch.
func runLoopPattern(p *Predictor, iters, reps int) float64 {
	const pc, target = 0x8000, 0x7F00
	correct, total := 0, 0
	for r := 0; r < reps; r++ {
		for i := 0; i < iters; i++ {
			taken := i < iters-1
			if p.PredictCond(pc, taken, target) {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total)
}

func TestLoopBranchLearnedByHealthyPredictor(t *testing.T) {
	p := New(testConfig())
	acc := runLoopPattern(p, 8, 500)
	if acc < 0.95 {
		t.Fatalf("healthy predictor accuracy on regular loop = %.3f, want >= 0.95", acc)
	}
}

func TestSkewedUpdateBugCollapsesLoopAccuracy(t *testing.T) {
	cfg := testConfig()
	cfg.BugSkewedUpdate = true
	p := New(cfg)
	acc := runLoopPattern(p, 8, 500)
	if acc > 0.30 {
		t.Fatalf("buggy predictor accuracy on regular loop = %.3f, want <= 0.30 "+
			"(the paper observed 0.86%% on par-basicmath-rad2deg)", acc)
	}
	healthy := New(testConfig())
	haccc := runLoopPattern(healthy, 8, 500)
	if haccc <= acc {
		t.Fatalf("bug must degrade accuracy: healthy %.3f vs buggy %.3f", haccc, acc)
	}
}

func TestBiasedBranchPrediction(t *testing.T) {
	// A 90%-taken data-dependent branch should approach ~90% accuracy.
	p := New(testConfig())
	rng := xrand.New(3)
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		taken := rng.Bool(0.9)
		if p.PredictCond(0x4000, taken, 0x3000) {
			correct++
		}
		total++
	}
	acc := float64(correct) / float64(total)
	if acc < 0.85 {
		t.Fatalf("biased-branch accuracy = %.3f, want >= 0.85", acc)
	}
}

func TestRASPredictsNestedCalls(t *testing.T) {
	p := New(testConfig())
	// call A (ret 0x104), call B (ret 0x204), return B, return A.
	p.Call(0x100, 0x1000, 0x104)
	p.Call(0x200, 0x2000, 0x204)
	if !p.Return(0x2100, 0x204) {
		t.Fatal("inner return should be predicted by RAS")
	}
	if !p.Return(0x1100, 0x104) {
		t.Fatal("outer return should be predicted by RAS")
	}
	if p.Stats.RASIncorrect != 0 {
		t.Fatalf("RASIncorrect = %d, want 0", p.Stats.RASIncorrect)
	}
	// Mismatched return target counts as RAS-incorrect.
	p.Call(0x300, 0x3000, 0x304)
	if p.Return(0x3100, 0xDEAD) {
		t.Fatal("wrong return target must mispredict")
	}
	if p.Stats.RASIncorrect != 1 {
		t.Fatalf("RASIncorrect = %d, want 1", p.Stats.RASIncorrect)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	cfg := testConfig()
	cfg.RASEntries = 4
	p := New(cfg)
	// Push 6 calls: the two oldest return addresses are overwritten.
	for i := uint64(0); i < 6; i++ {
		p.Call(0x100+i*8, 0x1000, 0x104+i*8)
	}
	// The 6 returns: innermost 4 predicted, outermost 2 mispredicted.
	correct := 0
	for i := int64(5); i >= 0; i-- {
		if p.Return(0x2000, 0x104+uint64(i)*8) {
			correct++
		}
	}
	if correct != 4 {
		t.Fatalf("RAS with depth 4 predicted %d of 6 returns, want 4", correct)
	}
}

func TestIndirectPredictorLearnsStableTarget(t *testing.T) {
	p := New(testConfig())
	// Stable target: first lookup misses, subsequent ones hit.
	if p.Indirect(0x900, 0x5000) {
		t.Fatal("cold indirect must mispredict")
	}
	for i := 0; i < 10; i++ {
		if !p.Indirect(0x900, 0x5000) {
			t.Fatal("stable indirect target must be predicted after training")
		}
	}
	// Alternating targets defeat the last-target predictor.
	hits := 0
	for i := 0; i < 100; i++ {
		tgt := uint64(0x6000)
		if i%2 == 0 {
			tgt = 0x7000
		}
		if p.Indirect(0xA00, tgt) {
			hits++
		}
	}
	if hits > 40 {
		t.Fatalf("alternating indirect target hits = %d, expected mostly misses", hits)
	}
}

func TestUncondBranchBTBWarmup(t *testing.T) {
	p := New(testConfig())
	if p.PredictUncond(0x500, 0x9000) {
		t.Fatal("cold unconditional branch must mispredict on target")
	}
	if !p.PredictUncond(0x500, 0x9000) {
		t.Fatal("warm unconditional branch must hit BTB")
	}
	if p.Stats.BTBHits != 1 || p.Stats.BTBLookups != 2 {
		t.Fatalf("BTB stats: %+v", p.Stats)
	}
}

// Property: mispredict counters are consistent with lookups and accuracy
// stays in [0,1] for arbitrary outcome sequences.
func TestStatsConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		p := New(testConfig())
		for i := 0; i < 2000; i++ {
			pc := uint64(rng.Intn(64)) * 4
			switch rng.Intn(4) {
			case 0:
				p.PredictCond(pc, rng.Bool(0.6), pc+64)
			case 1:
				p.PredictUncond(pc, pc+128)
			case 2:
				p.Call(pc, pc+256, pc+4)
			default:
				p.Indirect(pc, uint64(rng.Intn(4))*64+0x1000)
			}
		}
		s := p.Stats
		acc := s.Accuracy()
		return s.Mispredicts <= s.Lookups &&
			s.CondMispredicts+s.TargetMispredicts == s.Mispredicts &&
			acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorDeterminism(t *testing.T) {
	run := func(bug bool) Stats {
		cfg := testConfig()
		cfg.BugSkewedUpdate = bug
		p := New(cfg)
		rng := xrand.New(11)
		for i := 0; i < 5000; i++ {
			p.PredictCond(uint64(rng.Intn(256))*4, rng.Bool(0.7), 0x100)
		}
		return p.Stats
	}
	for _, bug := range []bool{false, true} {
		a, b := run(bug), run(bug)
		if a != b {
			t.Fatalf("bug=%v: predictor is not deterministic", bug)
		}
	}
}
