package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatal("different seeds should diverge immediately")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		nn := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(nn)
			if v < 0 || v >= nn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", b, c, want)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(5)
	if r.Bool(0) || !r.Bool(1) {
		t.Fatal("degenerate probabilities")
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if hits < 2700 || hits > 3300 {
		t.Fatalf("Bool(0.3) hit rate %d/10000", hits)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(23)
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(40)
	}
	if m := sum / n; m < 38 || m > 42 {
		t.Fatalf("exp mean = %v, want ~40", m)
	}
}

func TestWeighted(t *testing.T) {
	w := NewWeighted([]float64{1, 0, 3})
	r := New(3)
	counts := [3]int{}
	for i := 0; i < 40000; i++ {
		counts[w.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Fatal("zero-weight outcome sampled")
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
	// Degenerate: all zero weights always yield 0.
	z := NewWeighted([]float64{0, 0})
	if z.Sample(r) != 0 {
		t.Fatal("zero-weight sampler must return 0")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(11)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatal("split children must not correlate")
	}
}

func TestHashString(t *testing.T) {
	if HashString("mi-qsort") == HashString("mi-qsorT") {
		t.Fatal("hash collisions on near-identical names")
	}
	if HashString("x") != HashString("x") {
		t.Fatal("hash must be stable")
	}
	if Hash64(1) == Hash64(2) {
		t.Fatal("Hash64 collision")
	}
}
