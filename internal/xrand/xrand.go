// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used by workload generation and by the platform noise models.
//
// Determinism is a hard requirement of the reproduction: every experiment
// must produce bit-identical results across runs so that figures and tables
// regenerate exactly. The generator is SplitMix64 (Steele et al., "Fast
// Splittable Pseudorandom Number Generators"), which passes BigCrush for
// our stream lengths and needs no allocation.
package xrand

import "math"

// RNG is a SplitMix64 pseudo-random number generator. The zero value is a
// valid generator seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Split returns a new, statistically independent generator derived from r.
// The parent advances, so successive Split calls yield distinct children.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free approximation is fine here:
	// the bias is < 2^-32 for all n we use.
	return int((uint64(r.Uint32()) * uint64(n)) >> 32)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Norm returns a standard normal deviate computed with the Box-Muller
// transform. Used for measurement-noise synthesis.
func (r *RNG) Norm() float64 {
	// Avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns an exponentially distributed deviate with mean m.
func (r *RNG) Exp(m float64) float64 {
	u := 1 - r.Float64()
	return -m * math.Log(u)
}

// Weighted is a pre-normalised discrete distribution sampled by inverse
// transform. Build one with NewWeighted; Sample is O(k) for k outcomes,
// which is fast for the small mixes used by the workload generator.
type Weighted struct {
	cum []float64
}

// NewWeighted builds a sampler over len(weights) outcomes. Negative weights
// are treated as zero. If all weights are zero the sampler always returns 0.
func NewWeighted(weights []float64) *Weighted {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	if total > 0 {
		for i := range cum {
			cum[i] /= total
		}
	}
	return &Weighted{cum: cum}
}

// Sample draws an outcome index using rng.
func (w *Weighted) Sample(rng *RNG) int {
	if len(w.cum) == 0 || w.cum[len(w.cum)-1] == 0 {
		return 0 // degenerate distribution
	}
	u := rng.Float64()
	for i, c := range w.cum {
		if u < c {
			return i
		}
	}
	return len(w.cum) - 1
}

// Hash64 mixes a 64-bit value through the SplitMix64 finaliser. It is used
// to derive stable per-name seeds from string hashes.
func Hash64(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashString returns a stable 64-bit hash of s (FNV-1a folded through the
// SplitMix64 finaliser), used to seed per-workload generators by name.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return Hash64(h)
}
