package isa

import "testing"

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                               Op
		mem, load, store, branch, fp, ex bool
	}{
		{OpNop, false, false, false, false, false, false},
		{OpIntALU, false, false, false, false, false, false},
		{OpFPAdd, false, false, false, false, true, false},
		{OpFPDiv, false, false, false, false, true, false},
		{OpLoad, true, true, false, false, false, false},
		{OpStore, true, false, true, false, false, false},
		{OpLoadEx, true, true, false, false, false, true},
		{OpStoreEx, true, false, true, false, false, true},
		{OpBranch, false, false, false, true, false, false},
		{OpCall, false, false, false, true, false, false},
		{OpReturn, false, false, false, true, false, false},
		{OpBranchInd, false, false, false, true, false, false},
		{OpBarrier, false, false, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsMem() != c.mem || c.op.IsLoad() != c.load || c.op.IsStore() != c.store ||
			c.op.IsBranch() != c.branch || c.op.IsFP() != c.fp || c.op.IsExclusive() != c.ex {
			t.Errorf("%v: classification mismatch", c.op)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpIntALU.String() != "int_alu" || OpBranchInd.String() != "branch_ind" {
		t.Fatal("op names")
	}
	if Op(200).String() != "op(200)" {
		t.Fatalf("unknown op string = %q", Op(200).String())
	}
	// Every defined op has a name.
	for op := Op(0); int(op) < NumOps; op++ {
		if op.String() == "" {
			t.Fatalf("op %d has empty name", op)
		}
	}
}

func TestSliceStream(t *testing.T) {
	insts := []Inst{{PC: 4}, {PC: 8}, {PC: 12}}
	s := NewSliceStream(insts)
	if s.Len() != 3 {
		t.Fatal("len")
	}
	var got []Inst
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, in)
	}
	if len(got) != 3 || got[2].PC != 12 {
		t.Fatalf("drained %v", got)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream must return false")
	}
	s.Reset()
	if in, ok := s.Next(); !ok || in.PC != 4 {
		t.Fatal("reset must rewind")
	}
}

func TestCollect(t *testing.T) {
	insts := []Inst{{PC: 4}, {PC: 8}, {PC: 12}}
	if got := Collect(NewSliceStream(insts), 0); len(got) != 3 {
		t.Fatalf("unbounded collect = %d", len(got))
	}
	if got := Collect(NewSliceStream(insts), 2); len(got) != 2 {
		t.Fatalf("bounded collect = %d", len(got))
	}
}
