package isa

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTrace() []Inst {
	return []Inst{
		{PC: 0x1000, Op: OpIntALU, Src1: 1, Src2: 2, Dst: 3},
		{PC: 0x1004, Op: OpLoad, Addr: 0x2000_0000, Size: 4, Src1: 3, Dst: 4},
		{PC: 0x1008, Op: OpStore, Addr: 0x2000_0040, Size: 4, Src1: 4, Unaligned: true},
		{PC: 0x100C, Op: OpBranch, Taken: true, Target: 0x1000},
		{PC: 0x1010, Op: OpBarrier},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	insts := sampleTrace()
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(insts) {
		t.Fatalf("wrote %d records, want %d", n, len(insts))
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(tr, 0)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insts) {
		t.Fatalf("read %d records, want %d", len(got), len(insts))
	}
	for i := range insts {
		if got[i] != insts[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], insts[i])
		}
	}
}

func TestTraceReaderRejectsGarbage(t *testing.T) {
	if _, err := NewTraceReader(strings.NewReader("not a trace")); err == nil {
		t.Fatal("bad magic must error")
	}
	if _, err := NewTraceReader(strings.NewReader("GS")); err == nil {
		t.Fatal("truncated magic must error")
	}
	// Wrong version.
	var buf bytes.Buffer
	buf.WriteString("GSTR")
	buf.Write([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := NewTraceReader(&buf); err == nil {
		t.Fatal("wrong version must error")
	}
}

func TestTraceTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, NewSliceStream(sampleTrace())); err != nil {
		t.Fatal(err)
	}
	// Chop mid-record.
	data := buf.Bytes()[:buf.Len()-7]
	tr, err := NewTraceReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(tr, 0)
	if len(got) != len(sampleTrace())-1 {
		t.Fatalf("collected %d complete records", len(got))
	}
	if tr.Err() == nil {
		t.Fatal("truncated record must surface an error")
	}
}

func TestTraceEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, NewSliceStream(nil))
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("empty trace must yield nothing")
	}
	if tr.Err() != nil {
		t.Fatalf("clean EOF must not be an error: %v", tr.Err())
	}
}
