package isa

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace file format: instruction streams can be recorded once and replayed
// many times (or inspected offline), the analogue of a simulator's trace
// capture. The format is a fixed little-endian header followed by packed
// 32-byte records:
//
//	magic  "GSTR"  (4 bytes)
//	version uint32 (currently 1)
//	count   uint64 (reserved; written as all-ones, readers stop at EOF)
//	records: pc(8) addr(8) target(8) size(1) op(1) src1(1) src2(1)
//	         dst(1) flags(1) pad(2)
//
// flags bit 0 = Taken, bit 1 = Unaligned.

const (
	traceMagic   = "GSTR"
	traceVersion = 1
	recordBytes  = 32
)

// WriteTrace records every instruction remaining in the stream to w and
// returns the number written.
func WriteTrace(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return 0, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceVersion)
	// Streams are single-use and writers need not be seekable, so the
	// count field is written as "unknown" (all ones); readers stop at EOF.
	binary.LittleEndian.PutUint64(hdr[4:12], ^uint64(0))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	var rec [recordBytes]byte
	n := 0
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		binary.LittleEndian.PutUint64(rec[0:8], in.PC)
		binary.LittleEndian.PutUint64(rec[8:16], in.Addr)
		binary.LittleEndian.PutUint64(rec[16:24], in.Target)
		rec[24] = in.Size
		rec[25] = uint8(in.Op)
		rec[26] = in.Src1
		rec[27] = in.Src2
		rec[28] = in.Dst
		var flags uint8
		if in.Taken {
			flags |= 1
		}
		if in.Unaligned {
			flags |= 2
		}
		rec[29] = flags
		rec[30], rec[31] = 0, 0
		if _, err := bw.Write(rec[:]); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// TraceReader replays a recorded trace as an isa.Stream.
type TraceReader struct {
	r   *bufio.Reader
	err error
}

// NewTraceReader validates the header and returns a replaying stream.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("isa: reading trace magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("isa: not a trace file (magic %q)", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("isa: reading trace header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != traceVersion {
		return nil, fmt.Errorf("isa: unsupported trace version %d", v)
	}
	return &TraceReader{r: br}, nil
}

// Next implements Stream.
func (t *TraceReader) Next() (Inst, bool) {
	if t.err != nil {
		return Inst{}, false
	}
	var rec [recordBytes]byte
	if _, err := io.ReadFull(t.r, rec[:]); err != nil {
		t.err = err
		return Inst{}, false
	}
	in := Inst{
		PC:     binary.LittleEndian.Uint64(rec[0:8]),
		Addr:   binary.LittleEndian.Uint64(rec[8:16]),
		Target: binary.LittleEndian.Uint64(rec[16:24]),
		Size:   rec[24],
		Op:     Op(rec[25]),
		Src1:   rec[26],
		Src2:   rec[27],
		Dst:    rec[28],
	}
	in.Taken = rec[29]&1 != 0
	in.Unaligned = rec[29]&2 != 0
	return in, true
}

// Err reports the terminal error, nil on clean EOF.
func (t *TraceReader) Err() error {
	if t.err == io.EOF {
		return nil
	}
	return t.err
}
