// Package isa defines the synthetic instruction-set architecture used by
// every CPU model in this repository.
//
// The reproduction does not execute real ARMv7 binaries; workloads are
// deterministic synthetic instruction streams (see internal/workload) whose
// micro-architectural behaviour — instruction mix, control flow, memory
// locality, synchronisation — spans the same space as the benchmark suites
// used in the paper. The ISA therefore only captures what the timing models
// and performance counters observe: operation class, register dependencies,
// memory addresses and control-flow targets.
package isa

import "fmt"

// Op enumerates instruction classes. The classes mirror the granularity at
// which the ARMv7 PMU and gem5 statistics distinguish operations.
type Op uint8

const (
	// OpNop performs no work but occupies a pipeline slot.
	OpNop Op = iota
	// OpIntALU is a single-cycle integer operation (add, sub, logic, shift).
	OpIntALU
	// OpIntMul is an integer multiply.
	OpIntMul
	// OpIntDiv is an integer divide (long latency, typically unpipelined).
	OpIntDiv
	// OpFPAdd is a floating-point add/sub/compare.
	OpFPAdd
	// OpFPMul is a floating-point multiply.
	OpFPMul
	// OpFPDiv is a floating-point divide/sqrt.
	OpFPDiv
	// OpSIMD is a NEON-class packed integer/FP operation.
	OpSIMD
	// OpLoad reads memory.
	OpLoad
	// OpStore writes memory.
	OpStore
	// OpLoadEx is a load-exclusive (LDREX), used by synchronisation code.
	OpLoadEx
	// OpStoreEx is a store-exclusive (STREX); it may fail and be retried.
	OpStoreEx
	// OpBarrier is a data memory/synchronisation barrier (DMB/DSB/ISB).
	OpBarrier
	// OpBranch is a direct conditional or unconditional branch.
	OpBranch
	// OpCall is a direct function call (BL); pushes the return address.
	OpCall
	// OpReturn is a function return (BX LR / POP PC); predicted by the RAS.
	OpReturn
	// OpBranchInd is an indirect branch (computed jump, e.g. a switch table).
	OpBranchInd

	numOps
)

// NumOps is the number of distinct instruction classes.
const NumOps = int(numOps)

var opNames = [NumOps]string{
	"nop", "int_alu", "int_mul", "int_div",
	"fp_add", "fp_mul", "fp_div", "simd",
	"load", "store", "ldrex", "strex", "barrier",
	"branch", "call", "return", "branch_ind",
}

// String returns the lower-case mnemonic for the instruction class.
func (o Op) String() string {
	if int(o) < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the class accesses data memory.
func (o Op) IsMem() bool {
	switch o {
	case OpLoad, OpStore, OpLoadEx, OpStoreEx:
		return true
	}
	return false
}

// IsStore reports whether the class writes data memory.
func (o Op) IsStore() bool { return o == OpStore || o == OpStoreEx }

// IsLoad reports whether the class reads data memory.
func (o Op) IsLoad() bool { return o == OpLoad || o == OpLoadEx }

// IsBranch reports whether the class redirects control flow.
func (o Op) IsBranch() bool {
	switch o {
	case OpBranch, OpCall, OpReturn, OpBranchInd:
		return true
	}
	return false
}

// IsFP reports whether the class executes in the floating-point pipeline.
func (o Op) IsFP() bool {
	switch o {
	case OpFPAdd, OpFPMul, OpFPDiv:
		return true
	}
	return false
}

// IsExclusive reports whether the class is a load/store-exclusive.
func (o Op) IsExclusive() bool { return o == OpLoadEx || o == OpStoreEx }

// NumRegs is the size of the architectural register file visible to the
// dependency model. ARMv7 has 16 integer registers; we model 32 so that FP
// and SIMD registers share the same scoreboard namespace.
const NumRegs = 32

// Inst is one dynamic instruction as observed by a timing model.
//
// Fields are chosen so that an Inst fully determines timing behaviour:
// the PC drives the instruction-side hierarchy (L1I, ITLB, predictors),
// Addr drives the data side, registers drive dependency stalls and the
// branch fields drive the predictor.
type Inst struct {
	// PC is the virtual address of the instruction (4-byte aligned).
	PC uint64
	// Addr is the virtual data address for memory operations; 0 otherwise.
	Addr uint64
	// Size is the access size in bytes for memory operations.
	Size uint8
	// Op is the instruction class.
	Op Op
	// Src1, Src2 are source register indices (< NumRegs).
	Src1, Src2 uint8
	// Dst is the destination register index (< NumRegs); for classes with
	// no destination the generator sets a scratch register.
	Dst uint8
	// Taken reports the actual direction of a branch.
	Taken bool
	// Target is the actual target of a taken branch.
	Target uint64
	// Unaligned marks memory accesses that cross an alignment boundary.
	Unaligned bool
}

// Stream supplies dynamic instructions to a timing model.
//
// Next returns the next instruction and true, or a zero Inst and false when
// the stream is exhausted. Implementations must be deterministic: two
// streams constructed with identical parameters must produce identical
// sequences.
type Stream interface {
	Next() (Inst, bool)
}

// BlockStream is the batched fast path of Stream: NextBlock fills the
// caller-owned buffer with the next instructions of the stream and returns
// how many were delivered (0 at end of stream, never 0 before it).
//
// The contract is strict sequence equivalence: interleaving Next and
// NextBlock calls in any order must drain the exact instruction sequence
// the scalar Next path would produce. The timing models type-assert this
// interface and fall back to Next when it is absent, so implementing it is
// purely a performance optimisation — TestBlockStreamEquivalence pins the
// equivalence for every suite workload.
type BlockStream interface {
	Stream
	NextBlock(buf []Inst) int
}

// ViewStream is the zero-copy extension of BlockStream for streams whose
// remaining instructions are already materialised contiguously (replayed
// expansions, test slices): NextView returns a read-only view of up to max
// next instructions (the whole remainder when max <= 0) and advances the
// stream past them. An empty view means end of stream. The same strict
// sequence-equivalence contract as BlockStream applies; callers must not
// retain or mutate the view past the next stream call.
type ViewStream interface {
	BlockStream
	NextView(max int) []Inst
}

// SliceStream adapts a pre-generated instruction slice to the Stream
// interface. It is used heavily in tests and microbenchmarks.
type SliceStream struct {
	insts []Inst
	pos   int
}

// NewSliceStream returns a Stream that replays insts once.
func NewSliceStream(insts []Inst) *SliceStream {
	return &SliceStream{insts: insts}
}

// Next implements Stream.
func (s *SliceStream) Next() (Inst, bool) {
	if s.pos >= len(s.insts) {
		return Inst{}, false
	}
	i := s.insts[s.pos]
	s.pos++
	return i, true
}

// NextBlock implements BlockStream: one bulk copy per block instead of an
// interface call per instruction.
func (s *SliceStream) NextBlock(buf []Inst) int {
	n := copy(buf, s.insts[s.pos:])
	s.pos += n
	return n
}

// NextView implements ViewStream: the remaining instructions are already
// contiguous, so the view is the backing slice itself — no copy at all.
func (s *SliceStream) NextView(max int) []Inst {
	rem := s.insts[s.pos:]
	if max > 0 && len(rem) > max {
		rem = rem[:max]
	}
	s.pos += len(rem)
	return rem
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of instructions in the stream.
func (s *SliceStream) Len() int { return len(s.insts) }

// Collect drains up to max instructions from a stream into a slice.
// A max of 0 means no limit.
func Collect(s Stream, max int) []Inst {
	var out []Inst
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		in, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}
