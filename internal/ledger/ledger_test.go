package ledger

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/pmu"
	"gemstone/internal/workload"
)

// sampleEntry builds a small but fully populated entry.
func sampleEntry(model string, mpe float64) Entry {
	return Entry{
		Manifest: RunManifest{
			Schema:           SchemaVersion,
			CreatedUnix:      1700000000,
			Build:            obs.BuildInfo{GoVersion: "go1.22.0", Path: "gemstone"},
			HWPlatform:       "odroid-xu3",
			ModelPlatform:    model,
			HWFingerprint:    "aaaa",
			ModelFingerprint: "bbbb-" + model,
			Gem5Version:      1,
			Cluster:          "a15",
			FreqMHz:          1600,
			Workloads:        []string{"mi-qsort", "par-bitcount"},
			WorkloadSetHash:  "cafe",
			Seed:             42,
			DVFSGrid:         map[string][]int{"a15": {800, 1600}},
			Campaigns: []CampaignStats{
				{Platform: model, Jobs: 4, Simulated: 3, CacheHits: 1, WallSec: 1.5},
			},
			PhaseSeconds: map[string]float64{"collect": 1.4},
		},
		Results: Results{
			Cluster: "a15",
			FreqMHz: 1600,
			MAPE:    12.5,
			MPE:     mpe,
			ByFreq:  map[int]Headline{1600: {MAPE: 12.5, MPE: mpe}},
			Workloads: []WorkloadResult{
				{Workload: "mi-qsort", HCACluster: 0, PE: mpe - 1},
				{Workload: "par-bitcount", HCACluster: 1, PE: mpe + 1},
			},
			Power: &PowerResult{
				Cluster: "a15", Intercept: 0.5, R2: 0.97, AdjR2: 0.96,
				SER: 0.1, MAPE: 4, MPE: -0.5, N: 60,
				Terms: []PowerTerm{{Event: "CPU_CYCLES", Coef: 1e-9}},
			},
			Latency:             []LatencyDigest{{WorkingSetBytes: 1024, HWNs: 1.5, SimNs: 1.6}},
			ValidatorChecks:     100,
			ValidatorViolations: 0,
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	e := sampleEntry("gem5-ex5-v1", -51.7)
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Entry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("round trip changed the record:\n%s\n%s", data, data2)
	}
	if back.Manifest.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", back.Manifest.Schema, SchemaVersion)
	}
	if back.Results.Power == nil || back.Results.Power.R2 != 0.97 {
		t.Fatal("power summary lost in round trip")
	}
}

func TestStoreAppendScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "ledger.jsonl")
	st := Open(path)

	// Missing file is an empty ledger, not an error.
	res, err := st.Scan()
	if err != nil || len(res.Entries) != 0 || res.Skipped != 0 {
		t.Fatalf("fresh scan: %+v, %v", res, err)
	}
	if _, ok, err := st.Latest(); ok || err != nil {
		t.Fatalf("Latest on empty ledger: ok=%v err=%v", ok, err)
	}

	if err := st.Append(sampleEntry("gem5-ex5-v1", -51.7)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(sampleEntry("gem5-ex5-v2", 10.2)); err != nil {
		t.Fatal(err)
	}

	res, err = st.Scan()
	if err != nil || len(res.Entries) != 2 {
		t.Fatalf("scan: %d entries, err %v", len(res.Entries), err)
	}
	first, ok, err := st.Baseline()
	if err != nil || !ok || first.Manifest.ModelPlatform != "gem5-ex5-v1" {
		t.Fatalf("Baseline: %+v %v %v", first.Manifest.ModelPlatform, ok, err)
	}
	last, ok, err := st.Latest()
	if err != nil || !ok || last.Manifest.ModelPlatform != "gem5-ex5-v2" {
		t.Fatalf("Latest: %+v %v %v", last.Manifest.ModelPlatform, ok, err)
	}
}

func TestStoreAppendStampsSchema(t *testing.T) {
	st := Open(filepath.Join(t.TempDir(), "ledger.jsonl"))
	e := sampleEntry("gem5-ex5-v1", -51.7)
	e.Manifest.Schema = 0
	if err := st.Append(e); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Latest()
	if err != nil || !ok {
		t.Fatal(ok, err)
	}
	if got.Manifest.Schema != SchemaVersion {
		t.Fatalf("schema not stamped: %d", got.Manifest.Schema)
	}
}

func TestStoreToleratesCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	st := Open(path)
	if err := st.Append(sampleEntry("gem5-ex5-v1", -51.7)); err != nil {
		t.Fatal(err)
	}

	// Simulate an interrupted writer: append half of a record.
	full, err := json.Marshal(sampleEntry("gem5-ex5-v2", 10.2))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res, err := st.Scan()
	if err != nil {
		t.Fatalf("truncated final record must not fail the scan: %v", err)
	}
	if len(res.Entries) != 1 || res.Skipped != 1 {
		t.Fatalf("entries=%d skipped=%d, want 1/1", len(res.Entries), res.Skipped)
	}
	latest, ok, err := st.Latest()
	if err != nil || !ok || latest.Manifest.ModelPlatform != "gem5-ex5-v1" {
		t.Fatalf("Latest after truncation: %v %v %v", latest.Manifest.ModelPlatform, ok, err)
	}

	// And appends recover: a new full record lands after the junk line...
	if err := st.Append(sampleEntry("gem5-ex5-v2", 10.2)); err != nil {
		t.Fatal(err)
	}
	res, err = st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	// ...but the half record has glued to the next line's JSON, so the
	// combined line stays skipped. The count of valid entries is what
	// corruption tolerance guarantees — never losing *earlier* records.
	if len(res.Entries) < 1 {
		t.Fatalf("lost valid records after corruption: %d", len(res.Entries))
	}
}

func TestStoreSkipsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	st := Open(path)
	future := sampleEntry("gem5-ex5-v9", 0)
	future.Manifest.Schema = SchemaVersion + 1
	data, _ := json.Marshal(future)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := st.Scan()
	if err != nil || len(res.Entries) != 0 || res.Skipped != 1 {
		t.Fatalf("future schema must be skipped: %+v %v", res, err)
	}
}

func TestWorkloadSetDigest(t *testing.T) {
	a := workload.Profile{Name: "a", Suite: "mibench", TotalInsts: 1000}
	b := workload.Profile{Name: "b", Suite: "parsec", TotalInsts: 2000}
	names1, hash1, seed1 := WorkloadSetDigest([]workload.Profile{a, b})
	names2, hash2, seed2 := WorkloadSetDigest([]workload.Profile{b, a})
	if hash1 != hash2 || seed1 != seed2 {
		t.Fatal("digest must be order independent")
	}
	if len(names1) != 2 || names1[0] != "a" || names1[1] != "b" || len(names2) != 2 {
		t.Fatalf("names: %v / %v", names1, names2)
	}
	a.TotalInsts++
	_, hash3, _ := WorkloadSetDigest([]workload.Profile{a, b})
	if hash3 == hash1 {
		t.Fatal("profile edit must change the digest")
	}
}

// goodMeasurement fabricates a self-consistent measurement.
func goodMeasurement(platformName string) platform.Measurement {
	var s pmu.Sample
	s.FreqGHz = 1.6
	s.Tally.Cycles = 3_200_000
	s.Tally.Committed = 2_000_000
	s.L1I.ReadAccesses = 2_000_000
	s.L1I.ReadMisses = 1_000
	s.L1D.ReadAccesses = 500_000
	s.L1D.WriteAccesses = 250_000
	s.L1D.ReadMisses = 20_000
	s.L1D.WriteMisses = 8_000
	s.L2.ReadAccesses = 29_000
	s.L2.ReadMisses = 4_000
	s.ITLB.Accesses = 2_000_000
	s.ITLB.Misses = 50
	s.DTLB.Accesses = 750_000
	s.DTLB.Misses = 400
	s.L2TLBI.Accesses = 50
	s.L2TLBI.Misses = 5
	s.L2TLBD.Accesses = 400
	s.L2TLBD.Misses = 40
	s.Hier.ITLBWalks = 5
	s.Hier.DTLBWalks = 40
	sec := s.Seconds()
	return platform.Measurement{
		Platform: platformName, Cluster: "a15", Workload: "mi-qsort",
		FreqMHz: 1600, VoltageV: 1.1,
		Sample: s, Seconds: sec,
		PowerWatts: 2.5, EnergyJoules: 2.5 * sec,
	}
}

func TestValidatorPasses(t *testing.T) {
	reg := obs.NewRegistry()
	v := NewValidator(reg)
	v.CheckMeasurement(goodMeasurement("gem5-ex5-v1"))
	if v.Count() != 0 {
		t.Fatalf("clean measurement flagged: %v", v.Violations())
	}
	if v.Checks() == 0 {
		t.Fatal("no checks recorded")
	}
	snap := reg.Snapshot()
	if snap["gemstone_validator_checks_total"] == 0 {
		t.Fatalf("checks metric not exported: %v", snap)
	}
}

func TestValidatorCatchesInjectedCorruption(t *testing.T) {
	reg := obs.NewRegistry()
	v := NewValidator(reg)

	// Corrupt the L1D read-miss counter past the access count — the kind
	// of defect a broken refill path would produce.
	m := goodMeasurement("gem5-ex5-v1")
	m.Sample.L1D.ReadMisses = m.Sample.L1D.ReadAccesses + 1
	v.CheckMeasurement(m)

	diags := v.Violations()
	if len(diags) != 1 {
		t.Fatalf("want exactly one violation, got %v", diags)
	}
	d := diags[0]
	if d.Invariant != "cache-misses" {
		t.Fatalf("invariant = %q", d.Invariant)
	}
	if !strings.Contains(d.Run, "mi-qsort") || !strings.Contains(d.Detail, "L1D") {
		t.Fatalf("diagnostic lacks evidence: %+v", d)
	}

	snap := reg.Snapshot()
	if snap[`gemstone_validator_violations_total{invariant="cache-misses"}`] != 1 {
		t.Fatalf("violation metric missing: %v", snap)
	}
}

func TestValidatorEnergyAndTime(t *testing.T) {
	v := NewValidator(nil)
	// AddPlatform needs a constructed Platform; drive the map directly.
	v.sensored["hw"] = true

	m := goodMeasurement("hw")
	m.EnergyJoules *= 1.02 // 2% off power×time
	v.CheckMeasurement(m)
	if got := invariants(v); !got["energy-power-time"] {
		t.Fatalf("energy mismatch not caught: %v", v.Violations())
	}

	v2 := NewValidator(nil)
	m2 := goodMeasurement("gem5-ex5-v1")
	m2.Seconds *= 1.5 // inconsistent with cycles/frequency
	v2.CheckMeasurement(m2)
	if got := invariants(v2); !got["time-cycles"] {
		t.Fatalf("time inconsistency not caught: %v", v2.Violations())
	}
}

func TestValidatorIssueWidthAndTLB(t *testing.T) {
	v := NewValidator(nil)
	v.issueWidth["gem5-ex5-v1"] = map[string]int{"a15": 2}

	m := goodMeasurement("gem5-ex5-v1")
	m.Sample.Tally.Committed = m.Sample.Tally.Cycles*2 + 1
	v.CheckMeasurement(m)
	if got := invariants(v); !got["cycles-issue-width"] {
		t.Fatalf("issue-width overflow not caught: %v", v.Violations())
	}

	v2 := NewValidator(nil)
	m2 := goodMeasurement("gem5-ex5-v1")
	m2.Sample.Hier.DTLBWalks = m2.Sample.L2TLBD.Misses + 7
	v2.CheckMeasurement(m2)
	if got := invariants(v2); !got["tlb-walks"] {
		t.Fatalf("phantom page walks not caught: %v", v2.Violations())
	}
}

func TestValidatorDVFSMonotone(t *testing.T) {
	mk := func(freq int, sec float64) platform.Measurement {
		m := goodMeasurement("gem5-ex5-v1")
		m.FreqMHz = freq
		m.Seconds = sec
		return m
	}
	rs := &core.RunSet{Platform: "gem5-ex5-v1", Runs: map[core.RunKey]platform.Measurement{
		{Workload: "mi-qsort", Cluster: "a15", FreqMHz: 800}:  mk(800, 4.0),
		{Workload: "mi-qsort", Cluster: "a15", FreqMHz: 1600}: mk(1600, 2.1),
	}}
	v := NewValidator(nil)
	v.CheckRunSet(rs)
	if v.Count() != 0 {
		t.Fatalf("monotone series flagged: %v", v.Violations())
	}

	rs.Runs[core.RunKey{Workload: "mi-qsort", Cluster: "a15", FreqMHz: 1600}] = mk(1600, 4.5)
	v2 := NewValidator(nil)
	v2.CheckRunSet(rs)
	if got := invariants(v2); !got["dvfs-monotone"] {
		t.Fatalf("non-monotone series not caught: %v", v2.Violations())
	}
}

func TestValidatorPESign(t *testing.T) {
	vs := &core.ValidationSummary{
		Cluster: "a15",
		PerRun: []core.WorkloadError{
			// Model overestimates time (sim > hw) → PE must be negative;
			// this row lies with a positive PE.
			{Workload: "mi-qsort", Cluster: "a15", FreqMHz: 1600,
				HWSeconds: 1.0, SimSeconds: 1.5, PE: +50},
		},
	}
	v := NewValidator(nil)
	v.CheckValidation(vs)
	if got := invariants(v); !got["pe-sign"] {
		t.Fatalf("sign-convention lie not caught: %v", v.Violations())
	}

	vs.PerRun[0].PE = -50 // the correct value
	v2 := NewValidator(nil)
	v2.CheckValidation(vs)
	if v2.Count() != 0 {
		t.Fatalf("correct PE flagged: %v", v2.Violations())
	}
}

func TestValidatorAsObserver(t *testing.T) {
	var _ core.CollectObserver = (*Validator)(nil)
	v := NewValidator(nil)
	v.RunDone(core.RunKey{}, goodMeasurement("gem5-ex5-v1"), time.Second)
	if v.Checks() == 0 {
		t.Fatal("RunDone must validate the measurement")
	}
}

func invariants(v *Validator) map[string]bool {
	out := map[string]bool{}
	for _, d := range v.Violations() {
		out[d.Invariant] = true
	}
	return out
}

func TestCompareNoDrift(t *testing.T) {
	base := sampleEntry("gem5-ex5-v1", -51.7)
	r := Compare(base, base, DriftOptions{})
	if r.Drift {
		t.Fatalf("identical entries reported drift: %+v", r)
	}
	if len(r.Headlines) == 0 || len(r.Workloads) != 2 {
		t.Fatalf("report incomplete: %+v", r)
	}
	if r.FingerprintChanged {
		t.Fatal("same fingerprint flagged as changed")
	}
}

func TestCompareHeadlineBreach(t *testing.T) {
	base := sampleEntry("gem5-ex5-v1", -51.7)
	cur := sampleEntry("gem5-ex5-v2", 10.2) // the Section VII v1→v2 swing
	for i := range cur.Results.Workloads {
		cur.Results.Workloads[i].PE = 10.2
	}
	r := Compare(base, cur, DriftOptions{})
	if !r.Drift {
		t.Fatal("a 60 pp MPE swing must drift")
	}
	var mpeBreach bool
	for _, h := range r.BreachedHeadlines() {
		if h.Name == "MPE (pp)" {
			mpeBreach = true
		}
	}
	if !mpeBreach {
		t.Fatalf("MPE breach missing: %+v", r.Headlines)
	}
	if !r.FingerprintChanged || len(r.ManifestNotes) == 0 {
		t.Fatalf("model fingerprint change not noted: %+v", r.ManifestNotes)
	}
}

func TestCompareOutlierNamesCluster(t *testing.T) {
	base := sampleEntry("gem5-ex5-v1", 0)
	cur := sampleEntry("gem5-ex5-v1", 0)
	// Give both entries a wider cohort so the MAD is meaningful.
	base.Results.Workloads = nil
	cur.Results.Workloads = nil
	names := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	for i, n := range names {
		label := 0
		if i >= 6 {
			label = 1
		}
		base.Results.Workloads = append(base.Results.Workloads,
			WorkloadResult{Workload: n, HCACluster: label, PE: float64(i)})
		pe := float64(i) + 0.1 // small uniform jitter
		if n == "w7" {
			pe = float64(i) + 40 // one workload swings 40 pp
		}
		cur.Results.Workloads = append(cur.Results.Workloads,
			WorkloadResult{Workload: n, HCACluster: label, PE: pe})
	}
	r := Compare(base, cur, DriftOptions{MPETolerancePP: 100, MAPETolerancePP: 100})
	if !r.Drift {
		t.Fatal("outlier swing must drift")
	}
	var shifted *WorkloadDrift
	for i := range r.Workloads {
		if r.Workloads[i].Workload == "w7" {
			shifted = &r.Workloads[i]
		}
	}
	if shifted == nil || !shifted.Shifted {
		t.Fatalf("w7 not flagged: %+v", r.Workloads)
	}
	sc := r.ShiftedClusters()
	if len(sc) != 1 || sc[0].Label != 1 {
		t.Fatalf("shifted cluster not named: %+v", sc)
	}
	if len(sc[0].Workloads) != 1 || sc[0].Workloads[0] != "w7" {
		t.Fatalf("shifted members wrong: %+v", sc[0])
	}
}

func TestCompareSetMismatch(t *testing.T) {
	base := sampleEntry("gem5-ex5-v1", 0)
	cur := sampleEntry("gem5-ex5-v1", 0)
	cur.Results.Workloads = cur.Results.Workloads[:1] // drop par-bitcount
	cur.Results.Workloads = append(cur.Results.Workloads,
		WorkloadResult{Workload: "new-one", HCACluster: 0, PE: 0})
	r := Compare(base, cur, DriftOptions{})
	if !r.Drift {
		t.Fatal("set mismatch must drift")
	}
	if len(r.MissingWorkloads) != 1 || r.MissingWorkloads[0] != "par-bitcount" {
		t.Fatalf("missing: %v", r.MissingWorkloads)
	}
	if len(r.NewWorkloads) != 1 || r.NewWorkloads[0] != "new-one" {
		t.Fatalf("new: %v", r.NewWorkloads)
	}
}

func TestCompareR2DegradationOnly(t *testing.T) {
	base := sampleEntry("gem5-ex5-v1", 0)
	cur := sampleEntry("gem5-ex5-v1", 0)
	cur.Results.Power.R2 = base.Results.Power.R2 + 0.02 // improvement
	r := Compare(base, cur, DriftOptions{})
	for _, h := range r.Headlines {
		if h.Name == "power R²" && h.Breach {
			t.Fatal("R² improvement flagged as drift")
		}
	}
	cur.Results.Power.R2 = base.Results.Power.R2 - 0.05 // degradation
	r = Compare(base, cur, DriftOptions{})
	var breach bool
	for _, h := range r.Headlines {
		if h.Name == "power R²" && h.Breach {
			breach = true
		}
	}
	if !breach {
		t.Fatal("R² degradation not flagged")
	}
}

func TestPhaseSeconds(t *testing.T) {
	evs := []obs.Event{
		{Name: "collect", Dur: 2 * time.Second},
		{Name: "simulate", Dur: 500 * time.Millisecond},
		{Name: "simulate", Dur: 1500 * time.Millisecond},
	}
	ps := PhaseSeconds(evs)
	if math.Abs(ps["collect"]-2) > 1e-12 || math.Abs(ps["simulate"]-2) > 1e-12 {
		t.Fatalf("phase aggregation wrong: %v", ps)
	}
	if PhaseSeconds(nil) != nil {
		t.Fatal("no events must map to nil")
	}
}
