package ledger

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBenchMetricsShapes(t *testing.T) {
	// The serve shape and the go-bench shape load through one reader.
	path := writeBench(t, "b.json", `[
		{"name": "serve/cold/p99_ms", "value": 120.5, "unit": "ms"},
		{"name": "BenchmarkHotLoop", "ns_per_op": 1234}
	]`)
	ms, err := LoadBenchMetrics(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("loaded %d metrics, want 2", len(ms))
	}
	if ms[0].Value != 120.5 || ms[0].Unit != "ms" {
		t.Fatalf("serve shape: %+v", ms[0])
	}
	if ms[1].Value != 1234 || ms[1].Unit != "ns/op" {
		t.Fatalf("go-bench shape: %+v", ms[1])
	}

	if _, err := LoadBenchMetrics(writeBench(t, "e.json", `[]`)); err == nil {
		t.Fatal("empty file must error")
	}
	if _, err := LoadBenchMetrics(writeBench(t, "v.json", `[{"name":"x"}]`)); err == nil {
		t.Fatal("valueless metric must error")
	}
	if _, err := LoadBenchMetrics(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestCompareServeBenchDirections(t *testing.T) {
	base := []BenchMetric{
		{Name: "serve/cold/p99_ms", Value: 100, Unit: "ms"},
		{Name: "serve/cold/rps", Value: 50, Unit: "rps"},
		{Name: "serve/warm/p50_ms", Value: 10, Unit: "ms"},
		{Name: "serve/gone/rps", Value: 5, Unit: "rps"},
	}
	cur := []BenchMetric{
		// Latency up 50% — breach at 25% tolerance.
		{Name: "serve/cold/p99_ms", Value: 150, Unit: "ms"},
		// Throughput up is an improvement, never a breach.
		{Name: "serve/cold/rps", Value: 100, Unit: "rps"},
		// Latency down is an improvement.
		{Name: "serve/warm/p50_ms", Value: 2, Unit: "ms"},
		// New metric: a note, not a row.
		{Name: "serve/new/p50_ms", Value: 1, Unit: "ms"},
	}
	rows, notes := CompareServeBench(base, cur, 25)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3: %+v", len(rows), rows)
	}
	byName := map[string]HeadlineDrift{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if !byName["serve/cold/p99_ms"].Breach {
		t.Error("latency regression not flagged")
	}
	if byName["serve/cold/rps"].Breach {
		t.Error("throughput improvement flagged as breach")
	}
	if byName["serve/warm/p50_ms"].Breach {
		t.Error("latency improvement flagged as breach")
	}
	if len(notes) != 2 {
		t.Fatalf("notes = %v, want missing+new", notes)
	}

	// Throughput collapse breaches.
	rows, _ = CompareServeBench(
		[]BenchMetric{{Name: "r", Value: 100, Unit: "rps"}},
		[]BenchMetric{{Name: "r", Value: 10, Unit: "rps"}}, 25)
	if !rows[0].Breach {
		t.Error("throughput collapse not flagged")
	}

	// Within tolerance passes in both directions.
	rows, _ = CompareServeBench(
		[]BenchMetric{{Name: "l", Value: 100, Unit: "ms"}, {Name: "r", Value: 100, Unit: "rps"}},
		[]BenchMetric{{Name: "l", Value: 110, Unit: "ms"}, {Name: "r", Value: 90, Unit: "rps"}}, 25)
	for _, r := range rows {
		if r.Breach {
			t.Errorf("%s within tolerance flagged: %+v", r.Name, r)
		}
	}
}
