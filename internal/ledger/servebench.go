package ledger

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
)

// BenchMetric is one scalar from a committed benchmark baseline file
// (BENCH_serve.json and friends): a name, a value and the unit that
// tells the drift check which direction is a regression. Two shapes
// are accepted so the serve-level files and the older go-bench derived
// ones load through one reader:
//
//	{"name": "serve/cold/p99_ms", "value": 120.5, "unit": "ms"}
//	{"name": "BenchmarkHotLoop", "ns_per_op": 1234}
type BenchMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// UnmarshalJSON accepts both metric shapes.
func (m *BenchMetric) UnmarshalJSON(b []byte) error {
	var raw struct {
		Name    string   `json:"name"`
		Value   *float64 `json:"value"`
		Unit    string   `json:"unit"`
		NsPerOp *float64 `json:"ns_per_op"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	m.Name = raw.Name
	m.Unit = raw.Unit
	switch {
	case raw.Value != nil:
		m.Value = *raw.Value
	case raw.NsPerOp != nil:
		m.Value = *raw.NsPerOp
		if m.Unit == "" {
			m.Unit = "ns/op"
		}
	default:
		return fmt.Errorf("bench metric %q: no value or ns_per_op", raw.Name)
	}
	return nil
}

// LoadBenchMetrics reads a bench baseline file (a JSON array of
// metrics).
func LoadBenchMetrics(path string) ([]BenchMetric, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []BenchMetric
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no metrics", path)
	}
	return out, nil
}

// regressionDirection reports which way a metric regresses: +1 when
// bigger is worse (latencies, ns/op, allocations), −1 when smaller is
// worse (throughput). Unknown units regress in both directions — any
// movement beyond tolerance is flagged.
func regressionDirection(unit string) int {
	switch {
	case unit == "rps" || strings.HasSuffix(unit, "/s"):
		return -1
	case unit == "ms" || unit == "ns/op" || unit == "s" || unit == "allocs/op" || unit == "B/op":
		return 1
	default:
		return 0
	}
}

// CompareServeBench compares a current serve bench export against the
// committed baseline, one direction-aware HeadlineDrift row per
// metric. tolPct is the allowed regression in percent of the baseline
// value. Metrics present on only one side become notes, not breaches —
// a new op in the mix must not fail the watchdog.
func CompareServeBench(base, cur []BenchMetric, tolPct float64) (rows []HeadlineDrift, notes []string) {
	if tolPct <= 0 {
		tolPct = 25
	}
	curByName := map[string]BenchMetric{}
	for _, m := range cur {
		curByName[m.Name] = m
	}
	seen := map[string]bool{}
	for _, b := range base {
		seen[b.Name] = true
		c, ok := curByName[b.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("serve bench: %s missing from current run", b.Name))
			continue
		}
		tol := math.Abs(b.Value) * tolPct / 100
		delta := c.Value - b.Value
		var breach bool
		switch regressionDirection(b.Unit) {
		case 1:
			breach = delta > tol
		case -1:
			breach = -delta > tol
		default:
			breach = math.Abs(delta) > tol
		}
		rows = append(rows, HeadlineDrift{
			Name:      b.Name,
			Base:      b.Value,
			Cur:       c.Value,
			Delta:     delta,
			Tolerance: tol,
			Breach:    breach,
		})
	}
	for _, c := range cur {
		if !seen[c.Name] {
			notes = append(notes, fmt.Sprintf("serve bench: %s new in current run", c.Name))
		}
	}
	return rows, notes
}
