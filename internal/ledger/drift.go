package ledger

import (
	"fmt"
	"math"
	"sort"

	"gemstone/internal/stats"
)

// DriftOptions are the watchdog tolerances. The zero value means "use
// defaults" — fill() substitutes them so a zero-valued field never makes
// a tolerance of 0 (which would flag float jitter as drift).
type DriftOptions struct {
	// MPETolerancePP / MAPETolerancePP bound the headline error shifts in
	// percentage points. Default 2.
	MPETolerancePP  float64
	MAPETolerancePP float64
	// R2Tolerance bounds power-model R² degradation. Default 0.01.
	R2Tolerance float64
	// PEFloorPP is the minimum absolute per-workload PE shift (percentage
	// points) before a robust-z outlier counts as drifted. Default 5.
	PEFloorPP float64
	// OutlierZ is the MAD-based robust z-score above which a workload's
	// PE shift is an outlier against the cohort. Default 3.5.
	OutlierZ float64
}

func (o DriftOptions) fill() DriftOptions {
	if o.MPETolerancePP == 0 {
		o.MPETolerancePP = 2
	}
	if o.MAPETolerancePP == 0 {
		o.MAPETolerancePP = 2
	}
	if o.R2Tolerance == 0 {
		o.R2Tolerance = 0.01
	}
	if o.PEFloorPP == 0 {
		o.PEFloorPP = 5
	}
	if o.OutlierZ == 0 {
		o.OutlierZ = 3.5
	}
	return o
}

// HeadlineDrift compares one scalar between baseline and current runs.
type HeadlineDrift struct {
	Name      string  `json:"name"`
	Base      float64 `json:"base"`
	Cur       float64 `json:"cur"`
	Delta     float64 `json:"delta"`
	Tolerance float64 `json:"tolerance"`
	Breach    bool    `json:"breach"`
}

// WorkloadDrift compares one workload's signed PE between runs.
type WorkloadDrift struct {
	Workload string `json:"workload"`
	// HCABase / HCACur are the HCA cluster designations in each run (−1
	// when unclustered). Labels are arbitrary per run, so only the BASE
	// labels are used for grouping.
	HCABase int     `json:"hca_base"`
	HCACur  int     `json:"hca_cur"`
	BasePE  float64 `json:"base_pe"`
	CurPE   float64 `json:"cur_pe"`
	// DeltaPP is CurPE − BasePE in percentage points.
	DeltaPP float64 `json:"delta_pp"`
	// RobustZ is the MAD z-score of DeltaPP against all workloads' deltas.
	RobustZ float64 `json:"robust_z"`
	// Shifted marks an outlier shift beyond the PE floor.
	Shifted bool `json:"shifted"`
}

// ClusterDrift aggregates workload shifts by the baseline's HCA groups —
// "which behavioural cluster moved" is the actionable unit (the paper's
// v1→v2 fix moved exactly the branch-sensitive cluster).
type ClusterDrift struct {
	// Label is the baseline HCA designation (−1 = unclustered).
	Label int `json:"label"`
	// N is the number of workloads in the group.
	N int `json:"n"`
	// MeanDeltaPP is the group's mean PE shift.
	MeanDeltaPP float64 `json:"mean_delta_pp"`
	// Shifted counts the group's outlier workloads.
	Shifted int `json:"shifted"`
	// Workloads lists the group's shifted members.
	Workloads []string `json:"workloads,omitempty"`
}

// DriftReport is gemwatch's verdict comparing a current ledger entry to a
// baseline.
type DriftReport struct {
	// BasePlatform / CurPlatform name the model platforms compared.
	BasePlatform string `json:"base_platform"`
	CurPlatform  string `json:"cur_platform"`
	// FingerprintChanged reports a model-configuration hash change —
	// drift with a changed fingerprint is an expected consequence of a
	// model edit; with an unchanged fingerprint it is a regression.
	FingerprintChanged bool `json:"fingerprint_changed"`
	// ManifestNotes lists human-readable provenance differences.
	ManifestNotes []string `json:"manifest_notes,omitempty"`

	Headlines []HeadlineDrift `json:"headlines"`
	Workloads []WorkloadDrift `json:"workloads"`
	Clusters  []ClusterDrift  `json:"clusters"`

	// MissingWorkloads / NewWorkloads are set-membership changes.
	MissingWorkloads []string `json:"missing_workloads,omitempty"`
	NewWorkloads     []string `json:"new_workloads,omitempty"`

	// Drift is the overall verdict: any headline breach, any shifted
	// workload, or a workload-set mismatch.
	Drift bool `json:"drift"`
}

// BreachedHeadlines returns the headline comparisons that exceeded their
// tolerance.
func (r *DriftReport) BreachedHeadlines() []HeadlineDrift {
	var out []HeadlineDrift
	for _, h := range r.Headlines {
		if h.Breach {
			out = append(out, h)
		}
	}
	return out
}

// ShiftedClusters returns the baseline HCA groups containing at least one
// shifted workload, ordered by |mean shift| descending.
func (r *DriftReport) ShiftedClusters() []ClusterDrift {
	var out []ClusterDrift
	for _, c := range r.Clusters {
		if c.Shifted > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].MeanDeltaPP) > math.Abs(out[j].MeanDeltaPP)
	})
	return out
}

// Compare diffs the current entry against the baseline under opt.
func Compare(base, cur Entry, opt DriftOptions) *DriftReport {
	opt = opt.fill()
	r := &DriftReport{
		BasePlatform: base.Manifest.ModelPlatform,
		CurPlatform:  cur.Manifest.ModelPlatform,
	}

	// Provenance: changed fingerprints or versions annotate the verdict.
	if base.Manifest.ModelFingerprint != cur.Manifest.ModelFingerprint {
		r.FingerprintChanged = true
		r.ManifestNotes = append(r.ManifestNotes, fmt.Sprintf(
			"model fingerprint changed: %.12s → %.12s",
			base.Manifest.ModelFingerprint, cur.Manifest.ModelFingerprint))
	}
	if base.Manifest.Gem5Version != cur.Manifest.Gem5Version {
		r.ManifestNotes = append(r.ManifestNotes, fmt.Sprintf(
			"gem5 model version changed: v%d → v%d",
			base.Manifest.Gem5Version, cur.Manifest.Gem5Version))
	}
	if base.Manifest.WorkloadSetHash != cur.Manifest.WorkloadSetHash {
		r.ManifestNotes = append(r.ManifestNotes, "workload set hash changed")
	}
	if base.Manifest.HWFingerprint != cur.Manifest.HWFingerprint {
		r.ManifestNotes = append(r.ManifestNotes, "reference platform fingerprint changed")
	}

	// Headline tolerances.
	headline := func(name string, b, c, tol float64) {
		d := c - b
		r.Headlines = append(r.Headlines, HeadlineDrift{
			Name: name, Base: b, Cur: c, Delta: d, Tolerance: tol,
			Breach: math.Abs(d) > tol,
		})
	}
	headline("MPE (pp)", base.Results.MPE, cur.Results.MPE, opt.MPETolerancePP)
	headline("MAPE (pp)", base.Results.MAPE, cur.Results.MAPE, opt.MAPETolerancePP)
	if bp, cp := base.Results.Power, cur.Results.Power; bp != nil && cp != nil {
		// R² may only degrade; an improvement is never drift.
		drop := bp.R2 - cp.R2
		r.Headlines = append(r.Headlines, HeadlineDrift{
			Name: "power R²", Base: bp.R2, Cur: cp.R2, Delta: cp.R2 - bp.R2,
			Tolerance: opt.R2Tolerance, Breach: drop > opt.R2Tolerance,
		})
		headline("power MAPE (pp)", bp.MAPE, cp.MAPE, opt.MAPETolerancePP)
	}
	if lat := latencyMaxRel(base.Results.Latency, cur.Results.Latency); !math.IsNaN(lat) {
		r.Headlines = append(r.Headlines, HeadlineDrift{
			Name: "lmbench max rel Δ", Base: 0, Cur: lat, Delta: lat,
			Tolerance: 0.01, Breach: lat > 0.01,
		})
	}

	// Per-workload deltas with MAD outlier flagging.
	curPE := map[string]WorkloadResult{}
	for _, w := range cur.Results.Workloads {
		curPE[w.Workload] = w
	}
	seen := map[string]bool{}
	var deltas []float64
	for _, bw := range base.Results.Workloads {
		cw, ok := curPE[bw.Workload]
		if !ok {
			r.MissingWorkloads = append(r.MissingWorkloads, bw.Workload)
			continue
		}
		seen[bw.Workload] = true
		r.Workloads = append(r.Workloads, WorkloadDrift{
			Workload: bw.Workload,
			HCABase:  bw.HCACluster, HCACur: cw.HCACluster,
			BasePE: bw.PE, CurPE: cw.PE, DeltaPP: cw.PE - bw.PE,
		})
		deltas = append(deltas, cw.PE-bw.PE)
	}
	for _, cw := range cur.Results.Workloads {
		if !seen[cw.Workload] {
			r.NewWorkloads = append(r.NewWorkloads, cw.Workload)
		}
	}
	sort.Strings(r.MissingWorkloads)
	sort.Strings(r.NewWorkloads)

	zs := stats.RobustZ(deltas)
	for i := range r.Workloads {
		w := &r.Workloads[i]
		w.RobustZ = zs[i]
		outlier := w.RobustZ > opt.OutlierZ || math.IsInf(w.RobustZ, 1)
		w.Shifted = outlier && math.Abs(w.DeltaPP) > opt.PEFloorPP
	}
	sort.Slice(r.Workloads, func(i, j int) bool {
		return math.Abs(r.Workloads[i].DeltaPP) > math.Abs(r.Workloads[j].DeltaPP)
	})

	// Group by baseline HCA designation.
	groups := map[int]*ClusterDrift{}
	for _, w := range r.Workloads {
		g := groups[w.HCABase]
		if g == nil {
			g = &ClusterDrift{Label: w.HCABase}
			groups[w.HCABase] = g
		}
		g.N++
		g.MeanDeltaPP += w.DeltaPP
		if w.Shifted {
			g.Shifted++
			g.Workloads = append(g.Workloads, w.Workload)
		}
	}
	for _, g := range groups {
		if g.N > 0 {
			g.MeanDeltaPP /= float64(g.N)
		}
		sort.Strings(g.Workloads)
		r.Clusters = append(r.Clusters, *g)
	}
	sort.Slice(r.Clusters, func(i, j int) bool { return r.Clusters[i].Label < r.Clusters[j].Label })

	for _, h := range r.Headlines {
		r.Drift = r.Drift || h.Breach
	}
	for _, w := range r.Workloads {
		r.Drift = r.Drift || w.Shifted
	}
	r.Drift = r.Drift || len(r.MissingWorkloads) > 0 || len(r.NewWorkloads) > 0
	return r
}

// latencyMaxRel returns the largest relative |Δ| of the model latency at
// working-set sizes present in both digests, or NaN when incomparable.
func latencyMaxRel(base, cur []LatencyDigest) float64 {
	curNs := map[int]float64{}
	for _, p := range cur {
		curNs[p.WorkingSetBytes] = p.SimNs
	}
	max := math.NaN()
	for _, p := range base {
		c, ok := curNs[p.WorkingSetBytes]
		if !ok || p.SimNs == 0 {
			continue
		}
		rel := math.Abs(c-p.SimNs) / math.Abs(p.SimNs)
		if math.IsNaN(max) || rel > max {
			max = rel
		}
	}
	return max
}
