package ledger

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/stats"
)

// Diagnostic records one invariant violation for the ledger.
type Diagnostic struct {
	// Invariant names the broken rule ("cache-misses", "energy-power-time",
	// "dvfs-monotone", ...).
	Invariant string `json:"invariant"`
	// Run identifies the offending run ("workload/cluster@freqMHz"), or
	// the scope for cross-run invariants.
	Run string `json:"run"`
	// Detail is the human-readable evidence with the offending numbers.
	Detail string `json:"detail"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("[%s] %s: %s", d.Invariant, d.Run, d.Detail)
}

// Validator sanity-checks raw simulator output while a campaign collects.
// It implements core.CollectObserver, so -validate composes with the
// progress and metrics observers via core.MultiObserver. Checks are
// microarchitecture-level conservation laws: a violation means a
// simulator defect (or an injected corruption), never a modelling error.
type Validator struct {
	mu         sync.Mutex
	checks     int
	violations []Diagnostic

	// issueWidth maps platform name -> cluster name -> issue width, fed
	// by AddPlatform; the cycles-issue-width invariant is skipped for
	// unknown clusters.
	issueWidth map[string]map[string]int
	// sensored marks platforms whose measurements carry power; the
	// energy-power-time invariant only applies there.
	sensored map[string]bool

	checksMetric     *obs.Counter
	violationsMetric *obs.Counter
}

// NewValidator returns a validator that also exports tallies as the
// gemstone_validator_checks_total and
// gemstone_validator_violations_total{invariant} counters. reg may be nil
// (no metrics).
func NewValidator(reg *obs.Registry) *Validator {
	v := &Validator{
		issueWidth: map[string]map[string]int{},
		sensored:   map[string]bool{},
	}
	if reg != nil {
		v.checksMetric = reg.Counter("gemstone_validator_checks_total",
			"Invariant checks evaluated by the -validate pass.")
		v.violationsMetric = reg.Counter("gemstone_validator_violations_total",
			"Invariant violations detected by the -validate pass.", "invariant")
	}
	return v
}

// AddPlatform teaches the validator a platform's configuration so
// configuration-dependent invariants (issue width, sensors) can apply.
func (v *Validator) AddPlatform(pl *platform.Platform) {
	cfg := pl.Config()
	v.mu.Lock()
	defer v.mu.Unlock()
	widths := map[string]int{}
	for _, cl := range cfg.Clusters {
		widths[cl.Name] = cl.Core.IssueWidth
	}
	v.issueWidth[cfg.Name] = widths
	v.sensored[cfg.Name] = cfg.HasSensors
}

// CollectStart implements core.CollectObserver.
func (v *Validator) CollectStart(string, int) {}

// RunStart implements core.CollectObserver.
func (v *Validator) RunStart(core.RunKey) {}

// CacheHit implements core.CollectObserver. Cached measurements are
// validated when the caller replays them through CheckRunSet /
// CheckMeasurement; the observer hook itself has no measurement to check.
func (v *Validator) CacheHit(core.RunKey) {}

// RunDone implements core.CollectObserver: every freshly simulated
// measurement is checked as it lands.
func (v *Validator) RunDone(_ core.RunKey, m platform.Measurement, _ time.Duration) {
	v.CheckMeasurement(m)
}

// RunError implements core.CollectObserver.
func (v *Validator) RunError(core.RunKey, error) {}

// CollectDone implements core.CollectObserver.
func (v *Validator) CollectDone(core.CollectStats) {}

// relTol reports |a−b| ≤ eps·max(|a|,|b|) — the comparison used for
// identities that survive float64 round-trips (energy = power × time).
func relTol(a, b, eps float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*m
}

func (v *Validator) check(ok bool, invariant, run, format string, args ...any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.checks++
	if v.checksMetric != nil {
		v.checksMetric.Inc()
	}
	if ok {
		return
	}
	v.violations = append(v.violations, Diagnostic{
		Invariant: invariant,
		Run:       run,
		Detail:    fmt.Sprintf(format, args...),
	})
	if v.violationsMetric != nil {
		v.violationsMetric.Inc(invariant)
	}
}

// CheckMeasurement evaluates every single-run invariant against m.
func (v *Validator) CheckMeasurement(m platform.Measurement) {
	run := fmt.Sprintf("%s:%s/%s@%dMHz", m.Platform, m.Workload, m.Cluster, m.FreqMHz)
	s := &m.Sample
	t := &s.Tally

	// A committed instruction costs at least 1/IssueWidth cycles.
	v.mu.Lock()
	width := v.issueWidth[m.Platform][m.Cluster]
	sensored, knownPlatform := v.sensored[m.Platform]
	v.mu.Unlock()
	if width > 0 {
		v.check(t.Committed <= t.Cycles*uint64(width),
			"cycles-issue-width", run,
			"committed %d > cycles %d × issue width %d", t.Committed, t.Cycles, width)
	}

	// A run that produced a measurement must have executed something.
	v.check(t.Cycles > 0 && t.Committed > 0, "nonzero", run,
		"empty run: cycles=%d committed=%d", t.Cycles, t.Committed)

	// Demand misses cannot exceed demand lookups, per port.
	for _, c := range []struct {
		name           string
		ra, wa, rm, wm uint64
	}{
		{"L1I", s.L1I.ReadAccesses, s.L1I.WriteAccesses, s.L1I.ReadMisses, s.L1I.WriteMisses},
		{"L1D", s.L1D.ReadAccesses, s.L1D.WriteAccesses, s.L1D.ReadMisses, s.L1D.WriteMisses},
		{"L2", s.L2.ReadAccesses, s.L2.WriteAccesses, s.L2.ReadMisses, s.L2.WriteMisses},
	} {
		v.check(c.rm <= c.ra && c.wm <= c.wa, "cache-misses", run,
			"%s misses exceed accesses: reads %d/%d writes %d/%d",
			c.name, c.rm, c.ra, c.wm, c.wa)
	}

	// TLB misses cannot exceed TLB lookups.
	for _, tl := range []struct {
		name             string
		accesses, misses uint64
	}{
		{"ITLB", s.ITLB.Accesses, s.ITLB.Misses},
		{"DTLB", s.DTLB.Accesses, s.DTLB.Misses},
		{"L2TLBI", s.L2TLBI.Accesses, s.L2TLBI.Misses},
		{"L2TLBD", s.L2TLBD.Accesses, s.L2TLBD.Misses},
	} {
		v.check(tl.misses <= tl.accesses, "tlb-misses", run,
			"%s misses %d > accesses %d", tl.name, tl.misses, tl.accesses)
	}

	// A page-table walk happens only after the last-level TLB misses.
	v.check(s.Hier.ITLBWalks <= s.L2TLBI.Misses, "tlb-walks", run,
		"ITLB walks %d > L2TLBI misses %d", s.Hier.ITLBWalks, s.L2TLBI.Misses)
	v.check(s.Hier.DTLBWalks <= s.L2TLBD.Misses, "tlb-walks", run,
		"DTLB walks %d > L2TLBD misses %d", s.Hier.DTLBWalks, s.L2TLBD.Misses)

	// Wall time is cycles over frequency, by construction.
	if s.FreqGHz > 0 {
		v.check(relTol(m.Seconds, s.Seconds(), 1e-9), "time-cycles", run,
			"seconds %.9g != cycles %d / %.3f GHz = %.9g",
			m.Seconds, t.Cycles, s.FreqGHz, s.Seconds())
	}

	// On sensored platforms, reported energy is power × time exactly.
	if knownPlatform && sensored {
		v.check(relTol(m.EnergyJoules, m.PowerWatts*m.Seconds, 1e-9),
			"energy-power-time", run,
			"energy %.9g J != power %.6g W × time %.6g s = %.9g J",
			m.EnergyJoules, m.PowerWatts, m.Seconds, m.PowerWatts*m.Seconds)
	}
}

// CheckRunSet evaluates cross-run invariants over a complete run set —
// currently DVFS monotonicity: for a fixed workload and cluster, raising
// the clock must not raise execution time (memory latency is fixed in
// nanoseconds, so higher frequency only re-prices stalls in cycles).
func (v *Validator) CheckRunSet(rs *core.RunSet) {
	if rs == nil {
		return
	}
	type series struct {
		freqs   []int
		seconds map[int]float64
	}
	byWC := map[[2]string]*series{}
	for key, m := range rs.Runs {
		id := [2]string{key.Workload, key.Cluster}
		sr := byWC[id]
		if sr == nil {
			sr = &series{seconds: map[int]float64{}}
			byWC[id] = sr
		}
		sr.freqs = append(sr.freqs, key.FreqMHz)
		sr.seconds[key.FreqMHz] = m.Seconds
	}
	ids := make([][2]string, 0, len(byWC))
	for id := range byWC {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i][0] != ids[j][0] {
			return ids[i][0] < ids[j][0]
		}
		return ids[i][1] < ids[j][1]
	})
	for _, id := range ids {
		sr := byWC[id]
		sort.Ints(sr.freqs)
		scope := fmt.Sprintf("%s:%s/%s", rs.Platform, id[0], id[1])
		for i := 1; i < len(sr.freqs); i++ {
			lo, hi := sr.freqs[i-1], sr.freqs[i]
			sLo, sHi := sr.seconds[lo], sr.seconds[hi]
			// Allow float jitter: time at the higher clock may exceed the
			// lower-clock time by at most 1e-6 relative.
			v.check(sHi <= sLo*(1+1e-6), "dvfs-monotone", scope,
				"%d MHz takes %.6g s but %d MHz takes %.6g s", hi, sHi, lo, sLo)
		}
	}
}

// CheckValidation recomputes the paper's signed-error convention over the
// summary: PE must equal 100·(hw−sim)/hw for every row, and a model that
// overestimates execution time must carry a negative PE.
func (v *Validator) CheckValidation(vs *core.ValidationSummary) {
	if vs == nil {
		return
	}
	for _, e := range vs.PerRun {
		run := fmt.Sprintf("%s/%s@%dMHz", e.Workload, e.Cluster, e.FreqMHz)
		want := stats.PercentError(e.HWSeconds, e.SimSeconds)
		ok := relTol(e.PE, want, 1e-9) || (e.PE == 0 && want == 0)
		if ok && e.HWSeconds > 0 && e.SimSeconds > e.HWSeconds {
			ok = e.PE < 0
		}
		v.check(ok, "pe-sign", run,
			"PE %.6g%% inconsistent with hw %.6g s vs sim %.6g s (want %.6g%%)",
			e.PE, e.HWSeconds, e.SimSeconds, want)
	}
}

// Checks returns the number of invariant evaluations so far.
func (v *Validator) Checks() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.checks
}

// Violations returns the recorded diagnostics in detection order.
func (v *Validator) Violations() []Diagnostic {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]Diagnostic(nil), v.violations...)
}

// Count returns the number of violations.
func (v *Validator) Count() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.violations)
}
