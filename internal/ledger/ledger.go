package ledger

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"gemstone/internal/core"
	"gemstone/internal/lmbench"
	"gemstone/internal/power"
)

// Entry is one ledger record: the provenance manifest plus the scientific
// results of a single gemstone invocation, serialised as one JSON line.
type Entry struct {
	Manifest    RunManifest  `json:"manifest"`
	Results     Results      `json:"results"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}

// Results holds the campaign's scientific outputs — everything gemwatch
// compares across runs.
type Results struct {
	// Cluster and FreqMHz mirror the analysis operating point.
	Cluster string `json:"cluster"`
	FreqMHz int    `json:"freq_mhz"`
	// MAPE / MPE are the headline execution-time errors across every
	// workload × frequency pair (paper sign convention).
	MAPE float64 `json:"mape"`
	MPE  float64 `json:"mpe"`
	// ByFreq breaks the headline numbers down per DVFS point.
	ByFreq map[int]Headline `json:"by_freq,omitempty"`
	// Workloads holds per-workload error at the analysis frequency,
	// with the HCA cluster designation (Fig. 3).
	Workloads []WorkloadResult `json:"workloads,omitempty"`
	// Power summarises the fitted power model, when one was trained.
	Power *PowerResult `json:"power,omitempty"`
	// Latency is the lmbench memory-latency digest (Fig. 4).
	Latency []LatencyDigest `json:"latency,omitempty"`
	// ValidatorChecks / ValidatorViolations tally the invariant
	// validators (-validate); violations detail in Entry.Diagnostics.
	ValidatorChecks     int `json:"validator_checks,omitempty"`
	ValidatorViolations int `json:"validator_violations,omitempty"`
}

// Headline is a MAPE/MPE pair.
type Headline struct {
	MAPE float64 `json:"mape"`
	MPE  float64 `json:"mpe"`
}

// WorkloadResult is one workload's signed error and HCA designation at
// the analysis frequency.
type WorkloadResult struct {
	Workload   string  `json:"workload"`
	HCACluster int     `json:"hca_cluster"`
	PE         float64 `json:"pe"`
}

// PowerResult summarises a fitted power.Model.
type PowerResult struct {
	Cluster   string      `json:"cluster"`
	Terms     []PowerTerm `json:"terms"`
	Intercept float64     `json:"intercept"`
	R2        float64     `json:"r2"`
	AdjR2     float64     `json:"adj_r2"`
	SER       float64     `json:"ser"`
	MAPE      float64     `json:"mape"`
	MPE       float64     `json:"mpe"`
	N         int         `json:"n"`
}

// PowerTerm is one selected PMC event and its coefficient.
type PowerTerm struct {
	Event string  `json:"event"`
	Coef  float64 `json:"coef"`
}

// LatencyDigest pairs hardware and model lmbench latency at one working
// set size.
type LatencyDigest struct {
	WorkingSetBytes int     `json:"working_set_bytes"`
	HWNs            float64 `json:"hw_ns"`
	SimNs           float64 `json:"sim_ns"`
}

// ResultsFromValidation converts a campaign's validation summary (and
// optional clustering) into ledger results. The per-workload table is
// taken at the summary's analysis frequency.
func ResultsFromValidation(vs *core.ValidationSummary, freqMHz int, wc *core.WorkloadClustering) Results {
	r := Results{Cluster: vs.Cluster, FreqMHz: freqMHz, MAPE: vs.MAPE, MPE: vs.MPE}
	if len(vs.ByFreq) > 0 {
		r.ByFreq = make(map[int]Headline, len(vs.ByFreq))
		for f, h := range vs.ByFreq {
			r.ByFreq[f] = Headline{MAPE: h.MAPE, MPE: h.MPE}
		}
	}
	labels := map[string]int{}
	if wc != nil {
		labels = wc.Labels
	}
	for _, e := range vs.ErrorsAt(freqMHz) {
		label, ok := labels[e.Workload]
		if !ok {
			label = -1
		}
		r.Workloads = append(r.Workloads, WorkloadResult{
			Workload: e.Workload, HCACluster: label, PE: e.PE,
		})
	}
	return r
}

// PowerFromModel converts a fitted power model into its ledger summary.
func PowerFromModel(m *power.Model) *PowerResult {
	if m == nil {
		return nil
	}
	p := &PowerResult{
		Cluster:   m.Cluster,
		Intercept: m.Intercept,
		R2:        m.Quality.R2,
		AdjR2:     m.Quality.AdjR2,
		SER:       m.Quality.SER,
		MAPE:      m.Quality.MAPE,
		MPE:       m.Quality.MPE,
		N:         m.Quality.N,
	}
	for i, e := range m.Events {
		p.Terms = append(p.Terms, PowerTerm{Event: e.Name(), Coef: m.Coef[i]})
	}
	return p
}

// LatencyFromPoints zips matched hardware and model lmbench sweeps. Sizes
// present in only one sweep are dropped.
func LatencyFromPoints(hw, sim []lmbench.Point) []LatencyDigest {
	simNs := make(map[int]float64, len(sim))
	for _, p := range sim {
		simNs[p.WorkingSetBytes] = p.LatencyNs
	}
	var out []LatencyDigest
	for _, p := range hw {
		s, ok := simNs[p.WorkingSetBytes]
		if !ok {
			continue
		}
		out = append(out, LatencyDigest{WorkingSetBytes: p.WorkingSetBytes, HWNs: p.LatencyNs, SimNs: s})
	}
	return out
}

// Store is an append-only JSONL ledger on disk. Appends are atomic at the
// line level (single O_APPEND write); reads tolerate truncated or corrupt
// records by skipping them, mirroring the run cache's
// corruption-tolerance discipline.
type Store struct {
	path string
}

// Open returns a store for path. No I/O happens until Append or Scan; a
// nonexistent file is an empty ledger.
func Open(path string) *Store { return &Store{path: path} }

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Append serialises e as one JSON line and appends it to the ledger,
// creating the file (and parents) on first use. A zero Manifest.Schema is
// stamped with the current SchemaVersion.
func (s *Store) Append(e Entry) error {
	if e.Manifest.Schema == 0 {
		e.Manifest.Schema = SchemaVersion
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ledger: marshal entry: %w", err)
	}
	if dir := filepath.Dir(s.path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("ledger: %w", err)
		}
	}
	f, err := os.OpenFile(s.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	defer f.Close()
	data = append(data, '\n')
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("ledger: append: %w", err)
	}
	return f.Close()
}

// ScanResult reports what a Scan found.
type ScanResult struct {
	// Entries holds every decodable, schema-compatible record in file
	// order.
	Entries []Entry
	// Skipped counts undecodable or schema-incompatible lines (a
	// truncated final record counts here, not as an error).
	Skipped int
}

// maxLine bounds a single ledger record; entries are a few KB, so 8 MiB
// of headroom means a longer line is corruption, not data.
const maxLine = 8 << 20

// Scan reads the whole ledger. A missing file yields an empty result; a
// corrupt line (bad JSON, wrong schema, over-long) is counted and
// skipped, never fatal — interrupted writers must not poison the ledger.
func (s *Store) Scan() (ScanResult, error) {
	var res ScanResult
	f, err := os.Open(s.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return res, nil
		}
		return res, fmt.Errorf("ledger: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			res.Skipped++
			continue
		}
		if e.Manifest.Schema < 1 || e.Manifest.Schema > SchemaVersion {
			res.Skipped++
			continue
		}
		res.Entries = append(res.Entries, e)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// One pathological line; everything before it was decoded.
			res.Skipped++
			return res, nil
		}
		return res, fmt.Errorf("ledger: scan %s: %w", s.path, err)
	}
	return res, nil
}

// Latest returns the newest valid entry (ok=false on an empty or fully
// corrupt ledger).
func (s *Store) Latest() (Entry, bool, error) {
	res, err := s.Scan()
	if err != nil || len(res.Entries) == 0 {
		return Entry{}, false, err
	}
	return res.Entries[len(res.Entries)-1], true, nil
}

// Baseline returns the oldest valid entry — the convention for a
// committed baseline ledger holding one blessed record.
func (s *Store) Baseline() (Entry, bool, error) {
	res, err := s.Scan()
	if err != nil || len(res.Entries) == 0 {
		return Entry{}, false, err
	}
	return res.Entries[0], true, nil
}
