// Package ledger is GemStone's experiment flight recorder. Where
// internal/obs makes the *process* observable (spans, metrics, profiles),
// ledger records the *results*: every invocation appends a provenance
// manifest plus the scientific outputs — per-workload percentage error,
// MAPE/MPE, power-model quality, latency curves — to an append-only JSONL
// store, turning one-shot campaign numbers into a time series that a drift
// watchdog (cmd/gemwatch) can guard against a committed baseline. The
// package also hosts the invariant validators that sanity-check raw
// counters while a campaign collects.
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"gemstone/internal/core"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/workload"
)

// SchemaVersion is the current ledger entry schema. Readers accept
// entries with schema 1..SchemaVersion and skip anything newer or
// unversioned, so a ledger written by a future build degrades to "no
// comparable entries" instead of silently mis-decoding.
const SchemaVersion = 1

// RunManifest is the provenance half of a ledger entry: everything needed
// to answer "what produced these numbers?" — build identity, platform and
// model fingerprints (the same content hashes the PR 1 run cache keys
// on), the workload set, the DVFS grid, and the campaign statistics.
type RunManifest struct {
	// Schema versions the entry layout; see SchemaVersion.
	Schema int `json:"schema"`
	// CreatedUnix is the entry creation time (Unix seconds).
	CreatedUnix int64 `json:"created_unix"`
	// Build identifies the binary (shared with the gemstone_build_info
	// metric — one provenance source for scrapes and ledger alike).
	Build obs.BuildInfo `json:"build"`

	// HWPlatform / ModelPlatform name the reference and model platforms.
	HWPlatform    string `json:"hw_platform"`
	ModelPlatform string `json:"model_platform"`
	// HWFingerprint / ModelFingerprint are the platform configuration
	// content hashes (platform.Config.Fingerprint): any model change —
	// a defect fix, a DVFS edit, a predictor resize — changes them.
	HWFingerprint    string `json:"hw_fingerprint"`
	ModelFingerprint string `json:"model_fingerprint"`
	// Gem5Version is the simulated gem5 model version (Section VII).
	Gem5Version int `json:"gem5_version"`

	// Tenant and CampaignID attribute entries produced through the
	// campaign service (`gemstone serve`): Tenant is the submitting
	// tenant's identifier, CampaignID the service-assigned campaign.
	// Both are empty for CLI invocations, so existing ledgers and
	// readers are unaffected (omitempty keeps old entries byte-stable).
	Tenant     string `json:"tenant,omitempty"`
	CampaignID string `json:"campaign_id,omitempty"`

	// Fidelity is the campaign's simulation tier ("atomic"; empty means
	// detailed) and Mode its execution shape ("screen"; empty means a
	// plain full-grid campaign). ScreenFlagged lists the operating points
	// a screen-mode campaign re-simulated at the detailed tier, as
	// "workload/cluster/freqMHz" in screening order (descending |percent
	// error|) — per-run tier provenance for mixed-fidelity archives.
	// All empty for pre-fidelity entries (omitempty keeps them
	// byte-stable).
	Fidelity      string   `json:"fidelity,omitempty"`
	Mode          string   `json:"mode,omitempty"`
	ScreenFlagged []string `json:"screen_flagged,omitempty"`

	// Cluster and FreqMHz are the analysis operating point.
	Cluster string `json:"cluster"`
	FreqMHz int    `json:"freq_mhz"`
	// Workloads lists the campaign workload names (sorted).
	Workloads []string `json:"workloads"`
	// WorkloadSetHash is a content hash over the full profile records, so
	// a profile edit is distinguishable from a same-named set.
	WorkloadSetHash string `json:"workload_set_hash"`
	// Seed folds the per-workload generator seeds into one digest.
	Seed uint64 `json:"seed"`
	// DVFSGrid maps cluster name to the swept frequencies (MHz).
	DVFSGrid map[string][]int `json:"dvfs_grid,omitempty"`

	// Campaigns records one entry per Collect call (hardware, model,
	// version-comparison reruns), with cache hit/miss tallies and stage
	// wall times.
	Campaigns []CampaignStats `json:"campaigns,omitempty"`
	// PhaseSeconds aggregates tracer span durations by span name
	// ("collect", "plan", "simulate", "cache-get", "pipeline", ...) —
	// cumulative across lanes, so concurrent phases sum beyond wall time.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
	// DistWorkers records the remote workers of a distributed campaign
	// (gemstone -workers): who simulated what, and how reliably. Empty for
	// purely local runs.
	DistWorkers []DistWorker `json:"dist_workers,omitempty"`
}

// DistWorker is per-worker provenance from a distributed campaign. It is
// the manifest's own shape (not internal/dist's) so ledger readers never
// depend on the wire package.
type DistWorker struct {
	// Addr is the worker's base URL.
	Addr string `json:"addr"`
	// Capacity is the parallelism the worker advertised.
	Capacity int `json:"capacity"`
	// Jobs counts measurements the worker contributed.
	Jobs int `json:"jobs"`
	// Retries counts failed attempts charged to the worker.
	Retries int `json:"retries"`
	// Alive reports whether the worker was still healthy at the end.
	Alive bool `json:"alive"`
}

// CampaignStats is the JSON-friendly form of core.CollectStats.
type CampaignStats struct {
	Platform  string  `json:"platform"`
	Jobs      int     `json:"jobs"`
	Simulated int     `json:"simulated"`
	CacheHits int     `json:"cache_hits"`
	Errors    int     `json:"errors"`
	Skipped   int     `json:"skipped"`
	PlanSec   float64 `json:"plan_sec"`
	CacheSec  float64 `json:"cache_sec"`
	SimSec    float64 `json:"sim_sec"`
	WallSec   float64 `json:"wall_sec"`
}

// CampaignFromStats converts collector statistics for the manifest.
func CampaignFromStats(s core.CollectStats) CampaignStats {
	return CampaignStats{
		Platform:  s.Platform,
		Jobs:      s.Jobs,
		Simulated: s.Simulated,
		CacheHits: s.CacheHits,
		Errors:    s.Errors,
		Skipped:   s.Skipped,
		PlanSec:   s.PlanTime.Seconds(),
		CacheSec:  s.CacheTime.Seconds(),
		SimSec:    s.SimTime.Seconds(),
		WallSec:   s.WallTime.Seconds(),
	}
}

// CampaignRecorder is a core.CollectObserver that keeps per-campaign
// statistics for the manifest (core.Metrics only exposes the aggregate).
// It is safe for concurrent use and composes via core.MultiObserver.
type CampaignRecorder struct {
	mu       sync.Mutex
	recorded []CampaignStats
}

// NewCampaignRecorder returns an empty recorder.
func NewCampaignRecorder() *CampaignRecorder { return &CampaignRecorder{} }

// CollectStart implements core.CollectObserver.
func (r *CampaignRecorder) CollectStart(string, int) {}

// RunStart implements core.CollectObserver.
func (r *CampaignRecorder) RunStart(core.RunKey) {}

// CacheHit implements core.CollectObserver.
func (r *CampaignRecorder) CacheHit(core.RunKey) {}

// RunDone implements core.CollectObserver.
func (r *CampaignRecorder) RunDone(core.RunKey, platform.Measurement, time.Duration) {}

// RunError implements core.CollectObserver.
func (r *CampaignRecorder) RunError(core.RunKey, error) {}

// CollectDone implements core.CollectObserver.
func (r *CampaignRecorder) CollectDone(s core.CollectStats) {
	r.mu.Lock()
	r.recorded = append(r.recorded, CampaignFromStats(s))
	r.mu.Unlock()
}

// Campaigns returns the recorded per-campaign statistics in completion
// order.
func (r *CampaignRecorder) Campaigns() []CampaignStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]CampaignStats(nil), r.recorded...)
}

// PhaseSeconds aggregates completed tracer spans by name into cumulative
// seconds — the manifest's per-phase time breakdown.
func PhaseSeconds(events []obs.Event) map[string]float64 {
	if len(events) == 0 {
		return nil
	}
	out := make(map[string]float64)
	for _, e := range events {
		out[e.Name] += e.Dur.Seconds()
	}
	return out
}

// WorkloadSetDigest returns the sorted workload names, a content hash
// over the full profile records and the folded generator seed digest.
func WorkloadSetDigest(profiles []workload.Profile) (names []string, hash string, seed uint64) {
	sorted := append([]workload.Profile(nil), profiles...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	h := sha256.New()
	for _, p := range sorted {
		names = append(names, p.Name)
		h.Write(profileJSON(p))
		h.Write([]byte{0})
		seed ^= p.Seed()
	}
	return names, hex.EncodeToString(h.Sum(nil)), seed
}

// profileJSON is the canonical byte serialisation of one profile (the
// same discipline as the run-cache key derivation).
func profileJSON(p workload.Profile) []byte {
	data, err := json.Marshal(p)
	if err != nil {
		// Profiles are plain data; unreachable short of NaN fields. Keep
		// the digest deterministic rather than failing the manifest.
		data = []byte(fmt.Sprintf("unmarshalable profile: %v", err))
	}
	return data
}
