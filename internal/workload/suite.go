package workload

import (
	"fmt"
	"sort"
)

// Suites. The names mirror the paper's benchmark sources; prefixes match
// the labels of Fig. 3 (mi-, par-, parsec-).
const (
	SuiteMiBench    = "mibench"
	SuiteParMiBench = "parmibench"
	SuiteParsec     = "parsec"
	SuiteClassic    = "classic"
	SuiteLongbottom = "longbottom"
	SuiteLMBench    = "lmbench"
)

// base returns the common starting profile; each workload overrides the
// axes that define its behaviour.
func base(name, suite string) Profile {
	return Profile{
		Name: name, Suite: suite, Threads: 1,
		TotalInsts: 240_000,
		LoopIters:  50, BodyBlocks: 6, BlockLen: 10, CodeBlocks: 48,
		CondFraction: 0.35, CondBias: 0.8, CondEntropy: false,
		CallFraction: 0.10, IndirectFraction: 0.02, IndirectTargets: 4,
		LoadFraction: 0.22, StoreFraction: 0.10,
		IntMulFraction: 0.02, NopFraction: 0.01,
		WorkingSetBytes: 64 << 10,
		StreamBytes:     64 << 10,
		StrideBytes:     256,
		PatternWeights:  [4]float64{0.7, 0.2, 0.1, 0},
		DepDistance:     4,
		CodeSpreadBytes: 3072,
	}
}

// parallel marks a profile as a 4-thread run with PARSEC-style
// synchronisation (lock-protected queues, pipeline hand-offs, barriers).
// Data-parallel kernels with coarse partitioning (most of ParMiBench)
// override these rates downwards.
func parallel(p Profile) Profile {
	p.Threads = 4
	p.BarrierPer1K = 1.5
	p.ExclusivePer1K = 6
	p.SnoopProb = 0.018
	p.StrexFailProb = 0.2
	p.BarrierWaitMean = 500
	return p
}

// buildSuite constructs the full 65-workload suite: 45 validation
// workloads (Experiment 1/2) plus 20 power-characterisation workloads
// (Experiments 3/4). Definitions are data; the behaviours they encode are
// described per family below.
func buildSuite() []Profile {
	var ps []Profile
	add := func(p Profile) { ps = append(ps, p) }

	// ---------------------------------------------------------------- //
	// MiBench: small embedded kernels — predictable loops, small code,
	// small-to-medium data. 17 workloads.
	// ---------------------------------------------------------------- //
	{
		p := base("mi-qsort", SuiteMiBench)
		p.CondEntropy, p.CondBias, p.CondFraction = true, 0.55, 0.45
		p.WorkingSetBytes = 256 << 10
		p.LoadFraction, p.StoreFraction = 0.28, 0.12
		p.CallFraction = 0.15
		add(p)
	}
	{
		p := base("mi-dijkstra", SuiteMiBench)
		p.PatternWeights = [4]float64{0.3, 0, 0, 0.7}
		p.ChaseBytes = 512 << 10
		p.CondEntropy, p.CondBias = true, 0.6
		add(p)
	}
	{
		p := base("mi-patricia", SuiteMiBench)
		p.PatternWeights = [4]float64{0.2, 0, 0, 0.8}
		p.ChaseBytes = 1 << 20
		p.CondEntropy, p.CondBias, p.CondFraction = true, 0.5, 0.5
		p.CallFraction = 0.2
		add(p)
	}
	{
		p := base("mi-stringsearch", SuiteMiBench)
		p.BlockLen = 5
		p.CondEntropy, p.CondBias, p.CondFraction = true, 0.85, 0.55
		p.LoadFraction = 0.30
		p.WorkingSetBytes = 128 << 10
		p.UnalignedFraction = 0.06
		add(p)
	}
	{
		p := base("mi-blowfish", SuiteMiBench)
		p.LoopIters, p.BodyBlocks = 200, 2
		p.CondFraction = 0.1
		p.PatternWeights = [4]float64{0.3, 0.7, 0, 0}
		p.LoadFraction, p.StoreFraction = 0.25, 0.12
		p.DepDistance = 3
		add(p)
	}
	{
		p := base("mi-sha", SuiteMiBench)
		p.LoopIters, p.BodyBlocks = 150, 2
		p.CondFraction = 0.08
		p.PatternWeights = [4]float64{0.2, 0.8, 0, 0}
		p.LoadFraction, p.StoreFraction = 0.2, 0.08
		p.DepDistance = 2
		add(p)
	}
	{
		p := base("mi-crc32", SuiteMiBench)
		p.LoopIters, p.BodyBlocks, p.BlockLen, p.CodeBlocks = 400, 1, 4, 4
		p.CondFraction, p.CallFraction, p.IndirectFraction = 0, 0, 0
		p.PatternWeights = [4]float64{0, 1, 0, 0}
		p.StreamBytes = 1 << 20
		p.LoadFraction = 0.35
		p.DepDistance = 2
		add(p)
	}
	{
		p := base("mi-jpeg-c", SuiteMiBench)
		p.SIMDFraction = 0.20
		p.PatternWeights = [4]float64{0.2, 0.4, 0.4, 0}
		p.StrideBytes = 512
		p.WorkingSetBytes = 512 << 10
		add(p)
	}
	{
		p := base("mi-jpeg-d", SuiteMiBench)
		p.SIMDFraction = 0.18
		p.StoreStreamShare = 0.9
		p.StoreScatterBytes = 8 << 10
		p.StoreFraction = 0.2
		p.PatternWeights = [4]float64{0.9, 0.1, 0, 0}
		p.StreamBytes = 1 << 20
		p.WorkingSetBytes = 64 << 10
		add(p)
	}
	{
		p := base("mi-susan-s", SuiteMiBench)
		p.FPAddFraction, p.FPMulFraction = 0.15, 0.10
		p.PatternWeights = [4]float64{0.3, 0.3, 0.4, 0}
		p.WorkingSetBytes = 512 << 10
		add(p)
	}
	{
		p := base("mi-susan-e", SuiteMiBench)
		p.FPAddFraction, p.FPMulFraction = 0.12, 0.08
		p.CondEntropy, p.CondBias, p.CondFraction = true, 0.7, 0.45
		p.WorkingSetBytes = 384 << 10
		add(p)
	}
	{
		p := base("mi-susan-c", SuiteMiBench)
		p.FPAddFraction = 0.10
		p.CondBias, p.CondFraction = 0.9, 0.4
		p.WorkingSetBytes = 384 << 10
		add(p)
	}
	{
		p := base("mi-fft", SuiteMiBench)
		p.FPAddFraction, p.FPMulFraction = 0.18, 0.18
		p.PatternWeights = [4]float64{0.2, 0.2, 0.6, 0}
		p.StrideBytes = 1024
		p.WorkingSetBytes = 1 << 20
		p.LoopIters = 80
		add(p)
	}
	{
		p := base("mi-fft-inv", SuiteMiBench)
		p.FPAddFraction, p.FPMulFraction = 0.18, 0.17
		p.PatternWeights = [4]float64{0.2, 0.25, 0.55, 0}
		p.StrideBytes = 1024
		p.WorkingSetBytes = 1 << 20
		p.LoopIters = 80
		add(p)
	}
	{
		p := base("mi-adpcm-c", SuiteMiBench)
		p.LoopIters, p.BodyBlocks, p.BlockLen = 250, 1, 8
		p.CondFraction = 0.2
		p.PatternWeights = [4]float64{0.1, 0.9, 0, 0}
		p.LoadFraction = 0.3
		p.StreamBytes = 2 << 20
		p.DepDistance = 2
		add(p)
	}
	{
		p := base("mi-adpcm-d", SuiteMiBench)
		p.LoopIters, p.BodyBlocks, p.BlockLen = 250, 1, 8
		p.CondFraction = 0.2
		p.StoreStreamShare = 0.95
		p.StoreScatterBytes = 4 << 10
		p.StoreFraction = 0.25
		p.PatternWeights = [4]float64{1, 0, 0, 0}
		p.WorkingSetBytes = 16 << 10
		p.StreamBytes = 2 << 20
		p.DepDistance = 2
		add(p)
	}
	{
		p := base("mi-gsm-c", SuiteMiBench)
		p.IntMulFraction = 0.12
		p.PatternWeights = [4]float64{0.2, 0.8, 0, 0}
		p.StreamBytes = 512 << 10
		p.LoopIters = 120
		add(p)
	}

	// ---------------------------------------------------------------- //
	// ParMiBench: 4-thread embedded kernels with synchronisation. The
	// star is par-basicmath-rad2deg: an extremely regular tiny FP loop
	// (hardware BP accuracy 99.9%, gem5-v1 accuracy < 1% per the paper).
	// 8 workloads.
	// ---------------------------------------------------------------- //
	{
		p := parallel(base("par-basicmath-rad2deg", SuiteParMiBench))
		p.LoopIters, p.BodyBlocks, p.BlockLen, p.CodeBlocks = 2000, 1, 8, 2
		p.CondFraction, p.CallFraction, p.IndirectFraction = 0, 0, 0
		p.FPAddFraction, p.FPMulFraction, p.FPDivFraction = 0.25, 0.15, 0.06
		p.LoadFraction, p.StoreFraction = 0.08, 0.04
		p.WorkingSetBytes = 16 << 10
		p.BarrierPer1K, p.ExclusivePer1K = 0.05, 0.1
		add(p)
	}
	{
		p := parallel(base("par-basicmath-cubic", SuiteParMiBench))
		p.LoopIters, p.BodyBlocks, p.BlockLen, p.CodeBlocks = 500, 2, 8, 4
		p.CondFraction = 0.1
		p.BarrierPer1K, p.ExclusivePer1K, p.SnoopProb = 0.2, 0.3, 0.002
		p.FPAddFraction, p.FPMulFraction, p.FPDivFraction = 0.2, 0.15, 0.08
		p.WorkingSetBytes = 32 << 10
		add(p)
	}
	{
		p := parallel(base("par-bitcount", SuiteParMiBench))
		p.LoopIters, p.BodyBlocks, p.BlockLen, p.CodeBlocks = 300, 1, 6, 8
		p.CondFraction = 0.15
		p.BarrierPer1K, p.ExclusivePer1K, p.SnoopProb = 0.1, 0.2, 0.001
		p.LoadFraction, p.StoreFraction = 0.1, 0.02
		p.WorkingSetBytes = 16 << 10
		p.DepDistance = 2
		add(p)
	}
	{
		p := parallel(base("par-susan-e", SuiteParMiBench))
		p.FPAddFraction, p.FPMulFraction = 0.12, 0.08
		p.CondEntropy, p.CondBias = true, 0.7
		p.WorkingSetBytes = 512 << 10
		p.BarrierPer1K, p.ExclusivePer1K = 0.8, 1
		add(p)
	}
	{
		p := parallel(base("par-dijkstra", SuiteParMiBench))
		p.PatternWeights = [4]float64{0.3, 0, 0, 0.7}
		p.ChaseBytes = 1 << 20
		p.CondEntropy, p.CondBias = true, 0.6
		p.ExclusivePer1K = 2
		p.SnoopProb = 0.008
		add(p)
	}
	{
		p := parallel(base("par-patricia", SuiteParMiBench))
		p.PatternWeights = [4]float64{0.2, 0, 0, 0.8}
		p.ChaseBytes = 2 << 20
		p.CondEntropy, p.CondBias, p.CondFraction = true, 0.5, 0.5
		p.ExclusivePer1K = 2
		p.SnoopProb = 0.008
		add(p)
	}
	{
		p := parallel(base("par-stringsearch", SuiteParMiBench))
		p.BarrierPer1K, p.ExclusivePer1K, p.SnoopProb = 0.1, 0.3, 0.002
		p.BlockLen = 5
		p.CondEntropy, p.CondBias, p.CondFraction = true, 0.85, 0.55
		p.LoadFraction = 0.3
		p.UnalignedFraction = 0.08
		add(p)
	}
	{
		p := parallel(base("par-sha", SuiteParMiBench))
		p.LoopIters, p.BodyBlocks = 150, 2
		p.CondFraction = 0.08
		p.PatternWeights = [4]float64{0.2, 0.8, 0, 0}
		p.DepDistance = 2
		p.BarrierPer1K, p.ExclusivePer1K, p.SnoopProb = 0.3, 0.3, 0.002
		add(p)
	}

	// ---------------------------------------------------------------- //
	// PARSEC: nine applications, single-threaded and 4-thread variants.
	// Larger code and data footprints; the -4 variants add contention.
	// 18 workloads.
	// ---------------------------------------------------------------- //
	parsecApps := []Profile{}
	{
		p := base("parsec-blackscholes", SuiteParsec)
		p.FPAddFraction, p.FPMulFraction, p.FPDivFraction = 0.18, 0.15, 0.04
		p.LoopIters = 120
		p.WorkingSetBytes = 256 << 10
		parsecApps = append(parsecApps, p)
	}
	{
		p := base("parsec-bodytrack", SuiteParsec)
		p.FPAddFraction, p.FPMulFraction = 0.1, 0.08
		p.CondStatic, p.CondBias, p.CondFraction = true, 0.7, 0.4
		p.WorkingSetBytes = 1 << 20
		p.CodeBlocks, p.BodyBlocks, p.LoopIters = 2400, 2400, 8
		p.CallFraction = 0.18
		parsecApps = append(parsecApps, p)
	}
	{
		p := base("parsec-canneal", SuiteParsec)
		p.PatternWeights = [4]float64{0.25, 0, 0, 0.75}
		p.ChaseBytes = 8 << 20
		p.CondEntropy, p.CondBias = true, 0.55
		p.WorkingSetBytes = 4 << 20
		parsecApps = append(parsecApps, p)
	}
	{
		p := base("parsec-dedup", SuiteParsec)
		p.StoreStreamShare = 0.9
		p.StoreScatterBytes = 32 << 10
		p.StoreFraction, p.LoadFraction = 0.18, 0.22
		p.IntMulFraction = 0.08
		p.StreamBytes = 4 << 20
		p.WorkingSetBytes = 2 << 20
		parsecApps = append(parsecApps, p)
	}
	{
		p := base("parsec-fluidanimate", SuiteParsec)
		p.FPAddFraction, p.FPMulFraction = 0.16, 0.12
		p.PatternWeights = [4]float64{0.3, 0.2, 0.5, 0}
		p.StrideBytes = 320
		p.WorkingSetBytes = 2 << 20
		parsecApps = append(parsecApps, p)
	}
	{
		p := base("parsec-freqmine", SuiteParsec)
		p.PatternWeights = [4]float64{0.4, 0, 0, 0.6}
		p.ChaseBytes = 2 << 20
		p.CondStatic, p.CondBias, p.CondFraction = true, 0.6, 0.45
		p.CodeBlocks, p.BodyBlocks, p.LoopIters, p.BlockLen = 3200, 3200, 6, 8
		p.CallFraction = 0.2
		parsecApps = append(parsecApps, p)
	}
	{
		p := base("parsec-streamcluster", SuiteParsec)
		p.FPAddFraction, p.FPMulFraction = 0.15, 0.1
		p.PatternWeights = [4]float64{0.1, 0.85, 0.05, 0}
		p.StoreStreamShare = 0.85
		p.StoreScatterBytes = 32 << 10
		p.StreamBytes = 4 << 20
		p.LoadFraction = 0.3
		p.LoopIters = 150
		parsecApps = append(parsecApps, p)
	}
	{
		p := base("parsec-swaptions", SuiteParsec)
		p.FPAddFraction, p.FPMulFraction, p.FPDivFraction = 0.15, 0.14, 0.06
		p.WorkingSetBytes = 64 << 10
		p.LoopIters = 100
		parsecApps = append(parsecApps, p)
	}
	{
		p := base("parsec-x264", SuiteParsec)
		p.SIMDFraction = 0.28
		p.PatternWeights = [4]float64{0.2, 0.5, 0.3, 0}
		p.StoreStreamShare = 0.8
		p.StoreScatterBytes = 64 << 10
		p.StreamBytes = 2 << 20
		p.WorkingSetBytes = 1 << 20
		p.CondStatic, p.CondBias = true, 0.75
		p.CodeBlocks, p.BodyBlocks, p.LoopIters = 4000, 4000, 5
		p.CallFraction, p.IndirectFraction = 0.15, 0.06
		p.IndirectTargets = 8
		parsecApps = append(parsecApps, p)
	}
	for _, app := range parsecApps {
		one := app
		one.Name = app.Name + "-1"
		add(one)
		four := parallel(app)
		four.Name = app.Name + "-4"
		add(four)
	}

	// ---------------------------------------------------------------- //
	// Classics: Dhrystone and Whetstone. 2 workloads.
	// ---------------------------------------------------------------- //
	{
		p := base("dhrystone", SuiteClassic)
		p.LoopIters, p.BodyBlocks, p.CodeBlocks = 100, 4, 12
		p.CondFraction, p.CallFraction = 0.3, 0.25
		p.LoadFraction, p.StoreFraction = 0.2, 0.12
		p.WorkingSetBytes = 8 << 10
		add(p)
	}
	{
		p := base("whetstone", SuiteClassic)
		p.LoopIters, p.BodyBlocks, p.CodeBlocks = 200, 2, 8
		p.FPAddFraction, p.FPMulFraction, p.FPDivFraction = 0.25, 0.2, 0.05
		p.CondFraction = 0.05
		p.CallFraction = 0.15
		p.WorkingSetBytes = 16 << 10
		add(p)
	}

	// ---------------------------------------------------------------- //
	// Power-characterisation extras (Roy Longbottom collection and
	// LMbench-style kernels): single-component stressors that give the
	// power-model training set its dynamic range. 20 workloads.
	// ---------------------------------------------------------------- //
	stressor := func(name string) Profile {
		p := base(name, SuiteLongbottom)
		p.TotalInsts = 180_000
		p.LoopIters, p.BodyBlocks, p.BlockLen, p.CodeBlocks = 500, 1, 12, 2
		p.CondFraction, p.CallFraction, p.IndirectFraction = 0, 0, 0
		p.LoadFraction, p.StoreFraction = 0, 0
		p.IntMulFraction, p.NopFraction = 0, 0
		p.WorkingSetBytes = 16 << 10
		p.DepDistance = 6
		return p
	}
	{
		p := stressor("long-int-alu")
		add(p)
	}
	{
		p := stressor("long-int-mul")
		p.IntMulFraction = 0.7
		add(p)
	}
	{
		p := stressor("long-int-div")
		p.IntDivFraction = 0.5
		add(p)
	}
	{
		p := stressor("long-fp-add")
		p.FPAddFraction = 0.8
		add(p)
	}
	{
		p := stressor("long-fp-mul")
		p.FPMulFraction = 0.8
		add(p)
	}
	{
		p := stressor("long-fp-div")
		p.FPDivFraction = 0.5
		add(p)
	}
	{
		p := stressor("long-simd")
		p.SIMDFraction = 0.8
		add(p)
	}
	{
		p := stressor("long-mem-l1")
		p.LoadFraction = 0.5
		p.WorkingSetBytes = 16 << 10
		add(p)
	}
	{
		p := stressor("long-mem-l2")
		p.LoadFraction = 0.5
		p.WorkingSetBytes = 256 << 10
		add(p)
	}
	{
		p := stressor("long-mem-dram")
		p.LoadFraction = 0.5
		p.WorkingSetBytes = 8 << 20
		add(p)
	}
	{
		p := stressor("long-stream-rd")
		p.LoadFraction = 0.5
		p.PatternWeights = [4]float64{0, 1, 0, 0}
		p.StreamBytes = 4 << 20
		add(p)
	}
	{
		p := stressor("long-stream-wr")
		p.StoreFraction = 0.5
		p.StoreStreamShare = 1
		p.StreamBytes = 4 << 20
		add(p)
	}
	{
		p := stressor("long-chase-dram")
		p.LoadFraction = 0.4
		p.PatternWeights = [4]float64{0, 0, 0, 1}
		p.ChaseBytes = 16 << 20
		add(p)
	}
	{
		p := stressor("long-mm")
		p.FPMulFraction, p.FPAddFraction = 0.3, 0.2
		p.LoadFraction, p.StoreFraction = 0.25, 0.05
		p.PatternWeights = [4]float64{0.1, 0.4, 0.5, 0}
		p.StrideBytes = 2048
		p.WorkingSetBytes = 2 << 20
		add(p)
	}
	{
		p := base("long-dhry", SuiteLongbottom)
		p.TotalInsts = 180_000
		p.LoopIters, p.BodyBlocks, p.CodeBlocks = 150, 4, 12
		p.CondFraction, p.CallFraction = 0.3, 0.25
		p.WorkingSetBytes = 8 << 10
		add(p)
	}
	{
		p := base("long-whet", SuiteLongbottom)
		p.TotalInsts = 180_000
		p.FPAddFraction, p.FPMulFraction, p.FPDivFraction = 0.25, 0.2, 0.05
		p.CondFraction = 0.05
		p.WorkingSetBytes = 16 << 10
		add(p)
	}
	{
		p := base("long-linpack", SuiteLongbottom)
		p.TotalInsts = 180_000
		p.FPAddFraction, p.FPMulFraction = 0.22, 0.22
		p.PatternWeights = [4]float64{0.1, 0.7, 0.2, 0}
		p.StreamBytes = 2 << 20
		p.LoadFraction = 0.28
		add(p)
	}
	{
		p := base("long-livermore", SuiteLongbottom)
		p.TotalInsts = 180_000
		p.FPAddFraction, p.FPMulFraction = 0.2, 0.15
		p.PatternWeights = [4]float64{0.2, 0.3, 0.5, 0}
		p.StrideBytes = 512
		p.WorkingSetBytes = 1 << 20
		add(p)
	}
	{
		p := base("long-branch-rand", SuiteLMBench)
		p.TotalInsts = 180_000
		p.BlockLen = 4
		p.CondEntropy, p.CondBias, p.CondFraction = true, 0.5, 0.8
		p.WorkingSetBytes = 32 << 10
		add(p)
	}
	{
		p := base("long-nop", SuiteLMBench)
		p.TotalInsts = 180_000
		p.NopFraction = 0.7
		p.LoadFraction, p.StoreFraction = 0.02, 0.01
		p.CondFraction = 0.05
		p.WorkingSetBytes = 4 << 10
		add(p)
	}

	return ps
}

var suite = buildSuite()

// All returns every workload (the 65-workload power/characterisation set).
// The returned slice is a copy; profiles are values and safe to mutate.
func All() []Profile {
	out := make([]Profile, len(suite))
	copy(out, suite)
	return out
}

// Validation returns the 45 workloads used to validate the gem5 models
// (Experiment 1/2): everything except the power-characterisation extras.
func Validation() []Profile {
	var out []Profile
	for _, p := range suite {
		if p.Suite != SuiteLongbottom && p.Suite != SuiteLMBench {
			out = append(out, p)
		}
	}
	return out
}

// ByName looks up a workload profile.
func ByName(name string) (Profile, error) {
	for _, p := range suite {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names returns all workload names, sorted.
func Names() []string {
	names := make([]string, len(suite))
	for i, p := range suite {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
