// Package workload defines the synthetic benchmark suite used to exercise
// the platforms: deterministic instruction-stream generators parameterised
// by behaviour profiles that span the same micro-architectural space as
// the paper's suites (MiBench, ParMiBench, PARSEC, LMbench, Dhrystone,
// Whetstone, Roy Longbottom's collection).
//
// A workload only influences the analyses through its behaviour vector —
// instruction mix, control-flow regularity, code/data footprints, sharing
// and synchronisation — so a profile captures exactly those axes. Every
// generator is seeded from the workload name: two streams for the same
// workload are bit-identical, on every platform, at every frequency.
package workload

import (
	"fmt"
	"math"

	"gemstone/internal/xrand"
)

// Pattern enumerates data-access patterns available to a profile.
type Pattern int

const (
	// PatternRandom picks uniform addresses inside the working set.
	PatternRandom Pattern = iota
	// PatternStream walks sequentially through a streaming region.
	PatternStream
	// PatternStride walks with a fixed stride (matrix-column style).
	PatternStride
	// PatternChase follows a dependent pointer chain (linked lists).
	PatternChase
)

// Profile is the behaviour description of one workload.
type Profile struct {
	// Name is the unique workload identifier (e.g. "mi-qsort").
	Name string
	// Suite is the benchmark family ("mibench", "parmibench", "parsec",
	// "classic", "longbottom", "lmbench").
	Suite string
	// Threads is 1 for single-threaded runs, 4 for the "-4" PARSEC and
	// ParMiBench variants. Multi-threaded behaviour is modelled with
	// synchronisation instructions plus the platform contention model.
	Threads int
	// TotalInsts is the dynamic instruction budget of one run.
	TotalInsts int

	// Control flow -----------------------------------------------------

	// LoopIters is the trip count of the innermost loop; high values give
	// the highly regular control flow of kernels such as basicmath.
	LoopIters int
	// BodyBlocks is the number of basic blocks executed per iteration.
	BodyBlocks int
	// BlockLen is the number of non-branch instructions per basic block
	// (branch density is 1/(BlockLen+1)).
	BlockLen int
	// CodeBlocks is the static code footprint in basic blocks; together
	// with BlockLen it sets the L1I and ITLB footprints.
	CodeBlocks int
	// CodeSpreadBytes is the spacing between consecutive static blocks
	// (0 = dense packing). Real binaries spread hot code across many
	// pages (libraries, padding, cold paths between hot blocks), which is
	// what puts pressure on the instruction TLB; the ITLB-size divergence
	// of Fig. 6 is only observable with realistic code spread.
	CodeSpreadBytes int
	// CondFraction is the fraction of block terminators that are
	// data-dependent conditional branches (the rest are loop branches,
	// calls or indirect jumps).
	CondFraction float64
	// CondBias is the taken probability of data-dependent branches.
	CondBias float64
	// CondEntropy selects truly random outcomes (true) versus a fixed
	// history-learnable pattern (false).
	CondEntropy bool
	// CondStatic makes each conditional branch's outcome fixed per static
	// block (if/else dominated by one side) — the behaviour of large,
	// flat codebases whose branches execute too rarely to train dynamic
	// pattern predictors. Overrides the period-4 pattern; CondBias sets
	// the fraction of blocks whose branch is taken.
	CondStatic bool
	// CallFraction is the fraction of terminators that call a function.
	CallFraction float64
	// IndirectFraction is the fraction of terminators that are indirect
	// jumps (switch dispatch).
	IndirectFraction float64
	// IndirectTargets is the number of distinct indirect targets.
	IndirectTargets int

	// Instruction mix (fractions of non-branch body instructions; the
	// remainder is integer ALU) -----------------------------------------

	LoadFraction   float64
	StoreFraction  float64
	IntMulFraction float64
	IntDivFraction float64
	FPAddFraction  float64
	FPMulFraction  float64
	FPDivFraction  float64
	SIMDFraction   float64
	NopFraction    float64

	// Data behaviour -----------------------------------------------------

	// WorkingSetBytes is the size of the random-access data region.
	WorkingSetBytes int
	// StreamBytes is the size of the streaming region.
	StreamBytes int
	// ChaseBytes is the size of the pointer-chase region.
	ChaseBytes int
	// StrideBytes is the stride of the strided pattern.
	StrideBytes int
	// PatternWeights gives the relative frequency of each access pattern,
	// indexed by Pattern.
	PatternWeights [4]float64
	// StoreStreamShare is the fraction of stores that stream (memset/
	// memcpy-like destination writes) regardless of PatternWeights.
	StoreStreamShare float64
	// StoreScatterBytes is the region size for non-streaming stores
	// (stack, locals, small tables); 0 means WorkingSetBytes. Output-
	// writer workloads keep this small so their store behaviour is
	// dominated by the write stream.
	StoreScatterBytes int
	// UnalignedFraction is the probability a memory access is unaligned.
	UnalignedFraction float64
	// DepDistance is the typical producer→consumer register distance;
	// small values serialise the pipeline, large values expose ILP.
	DepDistance int

	// Concurrency (only meaningful when Threads > 1) ---------------------

	// BarrierPer1K is barrier instructions per 1000 instructions.
	BarrierPer1K float64
	// ExclusivePer1K is LDREX/STREX pairs per 1000 instructions.
	ExclusivePer1K float64
	// SnoopProb is the per-memory-access probability of incoming
	// coherence traffic from sibling cores.
	SnoopProb float64
	// StrexFailProb is the store-exclusive failure probability.
	StrexFailProb float64
	// BarrierWaitMean is the mean barrier wait in cycles (arrival skew).
	BarrierWaitMean float64
}

// Validate checks the profile for internal consistency.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile with empty name")
	}
	if p.Threads != 1 && p.Threads != 4 {
		return fmt.Errorf("workload %q: threads must be 1 or 4", p.Name)
	}
	if p.TotalInsts <= 0 || p.LoopIters <= 0 || p.BodyBlocks <= 0 ||
		p.BlockLen <= 0 || p.CodeBlocks <= 0 {
		return fmt.Errorf("workload %q: non-positive structural parameter", p.Name)
	}
	if p.BodyBlocks > p.CodeBlocks {
		return fmt.Errorf("workload %q: BodyBlocks %d > CodeBlocks %d", p.Name, p.BodyBlocks, p.CodeBlocks)
	}
	fracs := []float64{
		p.CondFraction, p.CallFraction, p.IndirectFraction,
		p.LoadFraction, p.StoreFraction, p.IntMulFraction, p.IntDivFraction,
		p.FPAddFraction, p.FPMulFraction, p.FPDivFraction, p.SIMDFraction,
		p.NopFraction, p.StoreStreamShare, p.UnalignedFraction,
	}
	for _, f := range fracs {
		if !(f >= 0 && f <= 1) { // also rejects NaN
			return fmt.Errorf("workload %q: fraction %v out of [0,1]", p.Name, f)
		}
	}
	if p.CondFraction+p.CallFraction+p.IndirectFraction > 1 {
		return fmt.Errorf("workload %q: terminator fractions exceed 1", p.Name)
	}
	mixSum := p.LoadFraction + p.StoreFraction + p.IntMulFraction + p.IntDivFraction +
		p.FPAddFraction + p.FPMulFraction + p.FPDivFraction + p.SIMDFraction + p.NopFraction
	if mixSum > 1 {
		return fmt.Errorf("workload %q: instruction mix sums to %v > 1", p.Name, mixSum)
	}
	if p.WorkingSetBytes <= 0 {
		return fmt.Errorf("workload %q: working set must be positive", p.Name)
	}
	if p.StreamBytes < 0 || p.ChaseBytes < 0 || p.StrideBytes < 0 ||
		p.StoreScatterBytes < 0 || p.CodeSpreadBytes < 0 {
		return fmt.Errorf("workload %q: negative region size", p.Name)
	}
	if p.IndirectTargets < 0 {
		return fmt.Errorf("workload %q: negative IndirectTargets", p.Name)
	}
	for _, w := range p.PatternWeights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("workload %q: bad pattern weight %v", p.Name, w)
		}
	}
	if p.DepDistance <= 0 {
		return fmt.Errorf("workload %q: DepDistance must be positive", p.Name)
	}
	return nil
}

// Seed returns the deterministic generator seed for this workload.
func (p Profile) Seed() uint64 { return xrand.HashString(p.Name) }

// IsParallel reports whether the workload models a 4-thread run.
func (p Profile) IsParallel() bool { return p.Threads > 1 }
