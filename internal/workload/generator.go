package workload

import (
	"gemstone/internal/isa"
	"gemstone/internal/xrand"
)

// Generator produces the deterministic dynamic instruction stream of one
// workload. It implements isa.Stream.
type Generator struct {
	p   Profile
	rng *xrand.RNG

	emitted int
	buf     []isa.Inst
	bufPos  int

	// code layout
	codeBase   uint64
	blockBytes uint64
	spread     uint64

	// control state
	loopStart int // first body block of the current loop instance
	bodyPos   int // block index within the body
	iter      int // current inner-loop iteration
	loopCount int // completed loop instances (drives code-phase rotation)

	retStack []int // caller "next block" indices for nested calls
	indRot   int   // round-robin cursor for indirect targets

	// data state
	streamPtr  uint64 // read-stream cursor
	wstreamPtr uint64 // write-stream cursor (memcpy/memset destination)
	chasePtr   uint64
	stridePtr  uint64
	dataBase   uint64

	// registers
	recentDst [8]uint8
	dstCursor int
	rotReg    uint8

	opPicker  *xrand.Weighted
	patPicker *xrand.Weighted
}

// memory-layout constants: the regions are disjoint by construction.
const (
	codeBaseAddr    = 0x0001_0000
	dataBaseAddr    = 0x2000_0000
	streamBaseAddr  = 0x4000_0000
	wstreamBaseAddr = 0x5000_0000
	chaseBaseAddr   = 0x6000_0000
	strideBaseAddr  = 0x7000_0000
)

// NewGenerator builds the stream for profile p, panicking on an invalid
// profile (profiles are code, not user input).
func NewGenerator(p Profile) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		p:        p,
		rng:      xrand.New(p.Seed()),
		codeBase: codeBaseAddr,
		dataBase: dataBaseAddr,
	}
	// Block size in bytes, rounded up to a multiple of 16.
	bb := uint64((p.BlockLen + 1) * 4)
	g.blockBytes = (bb + 15) &^ 15
	g.spread = g.blockBytes
	if s := uint64(p.CodeSpreadBytes); s > g.spread {
		g.spread = s
	}
	g.opPicker = xrand.NewWeighted([]float64{
		p.LoadFraction,   // 0 load
		p.StoreFraction,  // 1 store
		p.IntMulFraction, // 2
		p.IntDivFraction, // 3
		p.FPAddFraction,  // 4
		p.FPMulFraction,  // 5
		p.FPDivFraction,  // 6
		p.SIMDFraction,   // 7
		p.NopFraction,    // 8
		remainderALU(p),  // 9 int ALU
	})
	g.patPicker = xrand.NewWeighted(p.PatternWeights[:])
	g.rotReg = 2
	for i := range g.recentDst {
		g.recentDst[i] = 2
	}
	return g
}

func remainderALU(p Profile) float64 {
	r := 1 - (p.LoadFraction + p.StoreFraction + p.IntMulFraction + p.IntDivFraction +
		p.FPAddFraction + p.FPMulFraction + p.FPDivFraction + p.SIMDFraction + p.NopFraction)
	if r < 0 {
		return 0
	}
	return r
}

// Profile returns the profile the generator was built from.
func (g *Generator) Profile() Profile { return g.p }

// Next implements isa.Stream.
func (g *Generator) Next() (isa.Inst, bool) {
	for g.bufPos >= len(g.buf) {
		if g.emitted >= g.p.TotalInsts {
			return isa.Inst{}, false
		}
		g.fill()
	}
	in := g.buf[g.bufPos]
	g.bufPos++
	g.emitted++
	return in, true
}

// NextBlock implements isa.BlockStream: it drains whole basic blocks into
// the caller's buffer with bulk copies, preserving the exact instruction
// sequence (and termination point) of the scalar Next path.
func (g *Generator) NextBlock(out []isa.Inst) int {
	n := 0
	for n < len(out) {
		if g.bufPos >= len(g.buf) {
			if g.emitted >= g.p.TotalInsts {
				break
			}
			g.fill()
		}
		c := copy(out[n:], g.buf[g.bufPos:])
		g.bufPos += c
		g.emitted += c
		n += c
	}
	return n
}

// blockPC returns the starting PC of static block idx.
func (g *Generator) blockPC(idx int) uint64 {
	return g.codeBase + uint64(idx)*g.spread
}

// nextDst rotates the destination register through r2..r25 and records it.
func (g *Generator) nextDst() uint8 {
	g.rotReg++
	if g.rotReg > 25 {
		g.rotReg = 2
	}
	g.dstCursor = (g.dstCursor + 1) % len(g.recentDst)
	g.recentDst[g.dstCursor] = g.rotReg
	return g.rotReg
}

// srcReg picks a source register at roughly DepDistance producers back.
func (g *Generator) srcReg() uint8 {
	d := 1 + g.rng.Intn(g.p.DepDistance)
	if d > len(g.recentDst) {
		d = len(g.recentDst)
	}
	idx := (g.dstCursor - d + len(g.recentDst)) % len(g.recentDst)
	return g.recentDst[idx]
}

// dataAddr draws the next data address for a load or store.
func (g *Generator) dataAddr(store bool) uint64 {
	if store && g.p.StoreStreamShare > 0 && g.rng.Bool(g.p.StoreStreamShare) {
		// Destination stream: stores walk their own contiguous region so
		// runs of sequential stores stay contiguous (what a merging write
		// buffer detects) even when interleaved with stream loads.
		return g.advanceWriteStream()
	}
	if store {
		// Non-streaming stores never land in the read stream; scattering
		// them keeps the write stream pure.
		scatter := g.p.StoreScatterBytes
		if scatter <= 0 {
			scatter = g.p.WorkingSetBytes
		}
		return g.dataBase + uint64(g.rng.Intn(scatter))&^3
	}
	switch Pattern(g.patPicker.Sample(g.rng)) {
	case PatternStream:
		return g.advanceStream()
	case PatternStride:
		stride := uint64(g.p.StrideBytes)
		if stride == 0 {
			stride = 64
		}
		limit := uint64(g.p.WorkingSetBytes)
		g.stridePtr = (g.stridePtr + stride) % limit
		return strideBaseAddr + g.stridePtr
	case PatternChase:
		// A deterministic full-period permutation walk (LCG over the line
		// index ring, Hull–Dobell conditions satisfied): every line of the
		// chase region is visited before any repeats, as a linked list
		// threaded through the whole region would be. The pipeline sees
		// the dependent-register chain through the dedicated chase reg.
		size := uint64(g.p.ChaseBytes)
		if size == 0 {
			size = uint64(g.p.WorkingSetBytes)
		}
		lines := size / 64
		if lines == 0 {
			lines = 1 // sub-line regions degenerate to a single-line chase
		}
		idx := g.chasePtr / 64
		idx = (idx*40509 + 12345) % lines
		g.chasePtr = idx * 64
		return chaseBaseAddr + g.chasePtr
	default:
		return g.dataBase + uint64(g.rng.Intn(g.p.WorkingSetBytes))&^3
	}
}

func (g *Generator) advanceStream() uint64 {
	size := uint64(g.p.StreamBytes)
	if size == 0 {
		size = uint64(g.p.WorkingSetBytes)
	}
	a := streamBaseAddr + g.streamPtr
	g.streamPtr = (g.streamPtr + 4) % size
	return a
}

func (g *Generator) advanceWriteStream() uint64 {
	size := uint64(g.p.StreamBytes)
	if size == 0 {
		size = uint64(g.p.WorkingSetBytes)
	}
	a := wstreamBaseAddr + g.wstreamPtr
	g.wstreamPtr = (g.wstreamPtr + 4) % size
	return a
}

// chaseReg is the dedicated register carrying the pointer-chase chain.
const chaseReg = 28

// emitBody appends the BlockLen body instructions of block idx.
func (g *Generator) emitBody(idx int) {
	pc := g.blockPC(idx)
	p := &g.p
	for i := 0; i < p.BlockLen; i++ {
		ipc := pc + uint64(i)*4
		// Synchronisation injection (parallel workloads).
		if p.ExclusivePer1K > 0 && g.rng.Bool(p.ExclusivePer1K/1000) {
			lockAddr := dataBaseAddr + uint64(g.rng.Intn(8))*64 + 0x0800_0000
			g.buf = append(g.buf,
				isa.Inst{PC: ipc, Op: isa.OpLoadEx, Addr: lockAddr, Size: 4, Src1: 1, Src2: 1, Dst: 26},
				isa.Inst{PC: ipc, Op: isa.OpStoreEx, Addr: lockAddr, Size: 4, Src1: 26, Src2: 26, Dst: 27},
			)
			continue
		}
		if p.BarrierPer1K > 0 && g.rng.Bool(p.BarrierPer1K/1000) {
			g.buf = append(g.buf, isa.Inst{PC: ipc, Op: isa.OpBarrier})
			continue
		}

		var in isa.Inst
		in.PC = ipc
		switch g.opPicker.Sample(g.rng) {
		case 0: // load
			in.Op = isa.OpLoad
			in.Addr = g.dataAddr(false)
			in.Size = 4
			in.Unaligned = g.rng.Bool(p.UnalignedFraction)
			if in.Addr >= chaseBaseAddr && in.Addr < strideBaseAddr {
				// Dependent pointer chase: reads and writes the chase reg.
				in.Src1, in.Src2, in.Dst = chaseReg, chaseReg, chaseReg
			} else {
				in.Src1, in.Src2, in.Dst = g.srcReg(), g.srcReg(), g.nextDst()
			}
		case 1: // store
			in.Op = isa.OpStore
			in.Addr = g.dataAddr(true)
			in.Size = 4
			in.Unaligned = g.rng.Bool(p.UnalignedFraction)
			in.Src1, in.Src2, in.Dst = g.srcReg(), g.srcReg(), 31
		case 2:
			in.Op = isa.OpIntMul
			in.Src1, in.Src2, in.Dst = g.srcReg(), g.srcReg(), g.nextDst()
		case 3:
			in.Op = isa.OpIntDiv
			in.Src1, in.Src2, in.Dst = g.srcReg(), g.srcReg(), g.nextDst()
		case 4:
			in.Op = isa.OpFPAdd
			in.Src1, in.Src2, in.Dst = g.srcReg(), g.srcReg(), g.nextDst()
		case 5:
			in.Op = isa.OpFPMul
			in.Src1, in.Src2, in.Dst = g.srcReg(), g.srcReg(), g.nextDst()
		case 6:
			in.Op = isa.OpFPDiv
			in.Src1, in.Src2, in.Dst = g.srcReg(), g.srcReg(), g.nextDst()
		case 7:
			in.Op = isa.OpSIMD
			in.Src1, in.Src2, in.Dst = g.srcReg(), g.srcReg(), g.nextDst()
		case 8:
			in.Op = isa.OpNop
			in.Dst = 31
		default:
			in.Op = isa.OpIntALU
			in.Src1, in.Src2, in.Dst = g.srcReg(), g.srcReg(), g.nextDst()
		}
		g.buf = append(g.buf, in)
	}
}

// bodyBlock returns the static block index of body position pos for the
// current loop instance: loop instances rotate through the code footprint
// so CodeBlocks controls the L1I/ITLB working set.
func (g *Generator) bodyBlock(pos int) int {
	return (g.loopStart + pos) % g.p.CodeBlocks
}

// fill emits one basic block (body + terminator) into the buffer.
func (g *Generator) fill() {
	g.buf = g.buf[:0]
	g.bufPos = 0
	p := &g.p

	// Handle a pending return first: the callee block was emitted by the
	// call terminator; nothing to do here (returns are emitted inline).

	idx := g.bodyBlock(g.bodyPos)
	g.emitBody(idx)
	termPC := g.blockPC(idx) + uint64(p.BlockLen)*4

	lastBody := g.bodyPos == p.BodyBlocks-1
	if lastBody {
		// Loop-control branch: taken back to the loop head until the trip
		// count is reached.
		taken := g.iter < p.LoopIters-1
		target := g.blockPC(g.bodyBlock(0))
		g.buf = append(g.buf, isa.Inst{
			PC: termPC, Op: isa.OpBranch, Taken: taken, Target: target,
			Src1: g.srcReg(), Src2: g.srcReg(), Dst: 31,
		})
		if taken {
			g.iter++
			g.bodyPos = 0
		} else {
			// Loop done: rotate the code phase.
			g.iter = 0
			g.bodyPos = 0
			g.loopCount++
			g.loopStart = (g.loopStart + p.BodyBlocks) % p.CodeBlocks
		}
		return
	}

	// Interior terminator. Kind and target assignment are STATIC per block
	// (derived from a per-block hash), as in real code: the branch at a
	// given PC always has the same type, the same callee, the same target
	// set. Only data-dependent outcomes vary per execution.
	kind, blockRand := g.blockKind(idx)
	nextIdx := g.bodyBlock(g.bodyPos + 1)
	nextPC := g.blockPC(nextIdx)
	switch kind {
	case termIndirect:
		// Switch dispatch: the target rotates over K fixed blocks.
		g.indRot = (g.indRot + 1 + g.rng.Intn(p.IndirectTargets)) % p.IndirectTargets
		tgt := g.blockPC((idx + 1 + g.indRot) % p.CodeBlocks)
		g.buf = append(g.buf, isa.Inst{
			PC: termPC, Op: isa.OpBranchInd, Taken: true, Target: tgt,
			Src1: g.srcReg(), Src2: g.srcReg(), Dst: 31,
		})
	case termCall:
		// Call the block's fixed callee in the upper half of the code
		// space, emit its body, then return past the call site.
		callee := p.CodeBlocks + int(blockRand)%max(1, p.CodeBlocks/2)
		calleePC := g.blockPC(callee)
		g.buf = append(g.buf, isa.Inst{
			PC: termPC, Op: isa.OpCall, Taken: true, Target: calleePC, Dst: 31,
		})
		g.retStack = append(g.retStack, g.bodyPos+1)
		g.emitBody(callee)
		retPC := calleePC + uint64(p.BlockLen)*4
		g.retStack = g.retStack[:len(g.retStack)-1]
		g.buf = append(g.buf, isa.Inst{
			PC: retPC, Op: isa.OpReturn, Taken: true, Target: termPC + 4, Dst: 31,
		})
	case termCond:
		taken := g.condOutcome(idx, blockRand)
		g.buf = append(g.buf, isa.Inst{
			PC: termPC, Op: isa.OpBranch, Taken: taken, Target: nextPC,
			Src1: g.srcReg(), Src2: g.srcReg(), Dst: 31,
		})
	default:
		// Unconditional jump to the next block.
		g.buf = append(g.buf, isa.Inst{
			PC: termPC, Op: isa.OpBranch, Taken: true, Target: nextPC, Dst: 31,
		})
	}
	g.bodyPos++
}

// Terminator kinds assigned statically per block.
const (
	termUncond = iota
	termCond
	termCall
	termIndirect
)

// blockKind returns the fixed terminator kind of static block idx plus a
// per-block random value used for static assignments (callee selection,
// branch pattern phase).
func (g *Generator) blockKind(idx int) (int, uint64) {
	h := xrand.Hash64(g.p.Seed() ^ uint64(idx)*0x9E3779B97F4A7C15)
	u := float64(h>>11) / (1 << 53)
	p := &g.p
	kind := termUncond
	switch {
	case u < p.IndirectFraction && p.IndirectTargets > 1:
		kind = termIndirect
	case u < p.IndirectFraction+p.CallFraction && len(g.retStack) < 6:
		kind = termCall
	case u < p.IndirectFraction+p.CallFraction+p.CondFraction:
		kind = termCond
	}
	return kind, xrand.Hash64(h)
}

// condOutcome decides a data-dependent branch: random (entropy) or a fixed
// learnable pattern whose phase is static per block.
func (g *Generator) condOutcome(blockIdx int, blockRand uint64) bool {
	if g.p.CondEntropy {
		return g.rng.Bool(g.p.CondBias)
	}
	if g.p.CondStatic {
		return float64(blockRand%1000) < g.p.CondBias*1000
	}
	// Learnable period-4 pattern with a per-block static phase offset.
	phase := (g.iter + int(blockRand%4)) % 4
	switch {
	case g.p.CondBias >= 0.75:
		return phase != 0
	case g.p.CondBias >= 0.5:
		return phase < 2
	default:
		return phase == 0
	}
}
