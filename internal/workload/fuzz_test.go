package workload

import (
	"testing"
)

// fuzzInsts bounds one fuzz execution; large budgets only slow the
// fuzzer down without reaching new generator states.
const fuzzInsts = 50_000

// FuzzGenerator drives the instruction-stream generator with arbitrary
// profile parameters. The contract under test: any profile that passes
// Validate generates a terminating, deterministic stream without
// panicking — no modulo-by-zero on degenerate region sizes, no stuck
// buffer, no divergence between two generators built from the same
// profile.
func FuzzGenerator(f *testing.F) {
	// Seeds beyond testdata/fuzz/FuzzGenerator: one real profile per
	// structural extreme of the shipped suite.
	for _, name := range []string{"dhrystone", "parsec-canneal-1", "lm-lat-mem-rd"} {
		if p, err := ByName(name); err == nil {
			f.Add(p.TotalInsts, p.LoopIters, p.BodyBlocks, p.BlockLen, p.CodeBlocks,
				p.WorkingSetBytes, p.StreamBytes, p.ChaseBytes, p.StrideBytes,
				p.CondFraction, p.PatternWeights[int(PatternChase)], p.IndirectTargets)
		}
	}

	f.Fuzz(func(t *testing.T, totalInsts, loopIters, bodyBlocks, blockLen, codeBlocks,
		wset, stream, chase, stride int, condFrac, chaseWeight float64, indirect int) {
		p := Profile{
			Name:             "fuzz",
			Suite:            "fuzz",
			Threads:          1,
			TotalInsts:       totalInsts,
			LoopIters:        loopIters,
			BodyBlocks:       bodyBlocks,
			BlockLen:         blockLen,
			CodeBlocks:       codeBlocks,
			CondFraction:     condFrac,
			CondBias:         0.5,
			IndirectFraction: 0.1,
			IndirectTargets:  indirect,
			CallFraction:     0.1,
			LoadFraction:     0.3,
			StoreFraction:    0.1,
			WorkingSetBytes:  wset,
			StreamBytes:      stream,
			ChaseBytes:       chase,
			StrideBytes:      stride,
			PatternWeights:   [4]float64{1, 0.5, 0.25, chaseWeight},
			DepDistance:      3,
		}
		if p.TotalInsts > fuzzInsts {
			p.TotalInsts = fuzzInsts
		}
		if err := p.Validate(); err != nil {
			return // invalid profiles are rejected up front, never generated
		}

		count := emitAll(t, NewGenerator(p))
		if count < p.TotalInsts {
			t.Fatalf("stream ended after %d of %d instructions", count, p.TotalInsts)
		}
		// The generator finishes the basic block in flight when the budget
		// runs out; anything past one block plus one emitted callee body is
		// a runaway.
		slack := 2*(p.BlockLen+1) + 2
		if count > p.TotalInsts+slack {
			t.Fatalf("stream overran its budget: %d > %d+%d", count, p.TotalInsts, slack)
		}
		if again := emitAll(t, NewGenerator(p)); again != count {
			t.Fatalf("same profile generated %d then %d instructions", count, again)
		}
	})
}

// emitAll drains a generator, failing the test if it refuses to
// terminate.
func emitAll(t *testing.T, g *Generator) int {
	t.Helper()
	limit := 4 * fuzzInsts
	count := 0
	for {
		_, ok := g.Next()
		if !ok {
			return count
		}
		count++
		if count > limit {
			t.Fatalf("generator emitted %d instructions without terminating", count)
		}
	}
}
