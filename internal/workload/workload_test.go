package workload

import (
	"testing"
	"testing/quick"

	"gemstone/internal/isa"
	"gemstone/internal/xrand"
)

func TestSuiteSizes(t *testing.T) {
	all := All()
	if len(all) != 65 {
		t.Fatalf("full suite has %d workloads, want 65 (paper Section III)", len(all))
	}
	val := Validation()
	if len(val) != 45 {
		t.Fatalf("validation set has %d workloads, want 45 (paper Experiment 1)", len(val))
	}
}

func TestSuiteProfilesValid(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate workload name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestSuiteHasPaperWorkloads(t *testing.T) {
	for _, name := range []string{
		"par-basicmath-rad2deg", // the pathological Cluster 16 workload
		"parsec-canneal-4",      // max power-model error observation
		"dhrystone", "whetstone",
		"parsec-blackscholes-1", "parsec-blackscholes-4",
	} {
		if _, err := ByName(name); err != nil {
			t.Errorf("missing expected workload: %v", err)
		}
	}
	if _, err := ByName("no-such-thing"); err == nil {
		t.Error("ByName must reject unknown names")
	}
}

func TestParallelWorkloadsHaveSyncBehaviour(t *testing.T) {
	n4 := 0
	for _, p := range All() {
		if p.Threads == 4 {
			n4++
			if p.ExclusivePer1K == 0 && p.BarrierPer1K == 0 {
				t.Errorf("%s: 4-thread workload without synchronisation", p.Name)
			}
		}
	}
	// 8 ParMiBench + 9 PARSEC "-4" variants.
	if n4 != 17 {
		t.Fatalf("parallel workloads = %d, want 17", n4)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, err := ByName("mi-qsort")
	if err != nil {
		t.Fatal(err)
	}
	a := isa.Collect(NewGenerator(p), 0)
	b := isa.Collect(NewGenerator(p), 0)
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorRespectsBudget(t *testing.T) {
	for _, name := range []string{"mi-crc32", "parsec-x264-4", "long-nop"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		insts := isa.Collect(NewGenerator(p), 0)
		if len(insts) < p.TotalInsts || len(insts) > p.TotalInsts+p.BlockLen+4 {
			t.Fatalf("%s: emitted %d instructions, budget %d", name, len(insts), p.TotalInsts)
		}
	}
}

func TestGeneratorStreamsDifferAcrossWorkloads(t *testing.T) {
	a := isa.Collect(NewGenerator(mustByName(t, "mi-fft")), 1000)
	b := isa.Collect(NewGenerator(mustByName(t, "mi-fft-inv")), 1000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("distinct workloads must not produce identical streams")
	}
}

func mustByName(t *testing.T, name string) Profile {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// opHistogram counts instruction classes in the first n instructions.
func opHistogram(p Profile, n int) map[isa.Op]int {
	h := map[isa.Op]int{}
	for _, in := range isa.Collect(NewGenerator(p), n) {
		h[in.Op]++
	}
	return h
}

func TestMixMatchesProfile(t *testing.T) {
	p := mustByName(t, "long-fp-mul") // 80% FP mul stressor
	h := opHistogram(p, 50_000)
	total := 0
	for _, n := range h {
		total += n
	}
	frac := float64(h[isa.OpFPMul]) / float64(total)
	if frac < 0.6 || frac > 0.9 {
		t.Fatalf("FP-mul fraction = %.2f, want ~0.8 of body instructions", frac)
	}
}

func TestParallelStreamContainsSync(t *testing.T) {
	p := mustByName(t, "par-dijkstra")
	h := opHistogram(p, 100_000)
	if h[isa.OpLoadEx] == 0 || h[isa.OpStoreEx] == 0 {
		t.Fatal("parallel workload stream must contain exclusives")
	}
	if h[isa.OpLoadEx] != h[isa.OpStoreEx] {
		t.Fatalf("LDREX (%d) and STREX (%d) must pair up", h[isa.OpLoadEx], h[isa.OpStoreEx])
	}
}

func TestRegularLoopWorkloadBranchBehaviour(t *testing.T) {
	// par-basicmath-rad2deg: almost every branch is the loop-back branch,
	// taken with probability (iters-1)/iters.
	p := mustByName(t, "par-basicmath-rad2deg")
	taken, total := 0, 0
	for _, in := range isa.Collect(NewGenerator(p), 0) {
		if in.Op == isa.OpBranch {
			total++
			if in.Taken {
				taken++
			}
		}
	}
	if total == 0 {
		t.Fatal("no branches in loop workload")
	}
	ratio := float64(taken) / float64(total)
	if ratio < 0.995 {
		t.Fatalf("loop-branch taken ratio = %.4f, want >= 0.995 (trip count 2000)", ratio)
	}
}

func TestCodeFootprintDiffers(t *testing.T) {
	pages := func(name string) int {
		seen := map[uint64]bool{}
		for _, in := range isa.Collect(NewGenerator(mustByName(t, name)), 100_000) {
			seen[in.PC>>12] = true
		}
		return len(seen)
	}
	small := pages("mi-crc32")
	large := pages("parsec-x264-1")
	if large < 8*small {
		t.Fatalf("x264 code pages (%d) should dwarf crc32 (%d)", large, small)
	}
	if large < 33 {
		t.Fatalf("large-code workload touches %d code pages; need > 32 to stress the HW ITLB", large)
	}
}

// Property: every generated instruction is well-formed.
func TestGeneratedInstructionsWellFormed(t *testing.T) {
	f := func(pick uint8) bool {
		all := All()
		p := all[int(pick)%len(all)]
		for _, in := range isa.Collect(NewGenerator(p), 5_000) {
			if in.PC == 0 || in.PC%4 != 0 {
				return false
			}
			if in.Src1 >= isa.NumRegs || in.Src2 >= isa.NumRegs || in.Dst >= isa.NumRegs {
				return false
			}
			if in.Op.IsMem() && in.Addr == 0 {
				return false
			}
			if in.Op.IsBranch() && in.Taken && in.Target == 0 {
				return false
			}
			if !in.Op.IsMem() && in.Addr != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedStability(t *testing.T) {
	// Seeds derive from names only — renaming-stability guard.
	if xrand.HashString("mi-qsort") != mustByName(t, "mi-qsort").Seed() {
		t.Fatal("profile seed must be the hash of its name")
	}
}

// The suite must span the behaviour space: each family occupies its own
// region (the property that makes HCA produce meaningful clusters).
func TestSuiteFamiliesAreBehaviourallyDistinct(t *testing.T) {
	mixVector := func(p Profile) []float64 {
		h := opHistogram(p, 30_000)
		total := 0.0
		for _, n := range h {
			total += float64(n)
		}
		classes := []isa.Op{isa.OpLoad, isa.OpStore, isa.OpFPAdd, isa.OpFPMul,
			isa.OpSIMD, isa.OpBranch, isa.OpIntALU}
		v := make([]float64, len(classes))
		for i, c := range classes {
			v[i] = float64(h[c]) / total
		}
		return v
	}
	fp := mixVector(mustByName(t, "whetstone"))
	intw := mixVector(mustByName(t, "dhrystone"))
	simd := mixVector(mustByName(t, "parsec-x264-1"))
	// FP share (indices 2,3) dominates in whetstone, vanishes in dhrystone.
	if fp[2]+fp[3] < 0.2 {
		t.Fatalf("whetstone FP share = %.2f", fp[2]+fp[3])
	}
	if intw[2]+intw[3] > 0.02 {
		t.Fatalf("dhrystone FP share = %.2f", intw[2]+intw[3])
	}
	if simd[4] < 0.15 {
		t.Fatalf("x264 SIMD share = %.2f", simd[4])
	}
	// Memory intensity separates streaming kernels from compute kernels.
	stream := mixVector(mustByName(t, "mi-crc32"))
	alu := mixVector(mustByName(t, "long-int-alu"))
	if stream[0] < 2*alu[0]+0.1 {
		t.Fatalf("crc32 load share %.2f vs pure-ALU %.2f", stream[0], alu[0])
	}
}

// Every workload is distinguishable from every other by its behaviour
// vector — no two profiles collapse onto the same point.
func TestNoDuplicateBehaviours(t *testing.T) {
	type sig struct {
		mix   [isa.NumOps]int // per-class counts, quantised
		pages int
	}
	seen := map[sig][]string{}
	for _, p := range All() {
		h := opHistogram(p, 20_000)
		pages := map[uint64]bool{}
		for _, in := range isa.Collect(NewGenerator(p), 20_000) {
			if in.Op.IsMem() {
				pages[in.Addr>>12] = true
			}
		}
		var s sig
		for op, n := range h {
			s.mix[op] = n / 100
		}
		s.pages = len(pages) / 8
		seen[s] = append(seen[s], p.Name)
	}
	for s, names := range seen {
		if len(names) > 3 {
			t.Errorf("behaviour signature %+v shared by %v", s, names)
		}
	}
}
