package mem

import (
	"fmt"
	"math"
)

// HierarchyConfig assembles the per-core and per-cluster memory system.
type HierarchyConfig struct {
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	ITLB TLBConfig
	DTLB TLBConfig

	// UnifiedL2TLB selects the hardware shape (one shared second-level TLB
	// for instruction and data translations). When false, L2TLBI/L2TLBD
	// model gem5's split walker caches.
	UnifiedL2TLB bool
	L2TLB        TLBConfig // used when UnifiedL2TLB
	L2TLBI       TLBConfig // used when split
	L2TLBD       TLBConfig // used when split

	DRAM DRAMConfig

	// WalkMemAccesses is the number of page-table memory accesses charged
	// per hardware page-table walk (2 for a 2-level table).
	WalkMemAccesses int
	// WalkLatencyCycles is fixed walker overhead per walk.
	WalkLatencyCycles int

	// StreamingStoreMerge enables the merging write buffer: runs of
	// sequential stores covering whole lines bypass L1D allocation and are
	// sent to L2 as merged line writes. Real Cortex cores have this; the
	// gem5 model's lack of it is what inflates L1D write refills (9.9x)
	// and writebacks (19x) in the paper's Fig. 6.
	StreamingStoreMerge bool
	// StreamDetectRun is the number of consecutive sequential stores that
	// triggers streaming mode.
	StreamDetectRun int
}

// Validate checks every sub-configuration.
func (c HierarchyConfig) Validate() error {
	for _, cc := range []CacheConfig{c.L1I, c.L1D, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	tlbs := []TLBConfig{c.ITLB, c.DTLB}
	if c.UnifiedL2TLB {
		tlbs = append(tlbs, c.L2TLB)
	} else {
		tlbs = append(tlbs, c.L2TLBI, c.L2TLBD)
	}
	for _, tc := range tlbs {
		if err := tc.Validate(); err != nil {
			return err
		}
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.WalkMemAccesses <= 0 {
		return fmt.Errorf("mem: hierarchy: WalkMemAccesses must be positive")
	}
	return nil
}

// HierarchyStats gathers counters that do not belong to a single component.
type HierarchyStats struct {
	ITLBWalks       uint64 // full page-table walks on the instruction side
	DTLBWalks       uint64
	Snoops          uint64 // coherence snoops observed
	SnoopHits       uint64 // snoops that invalidated a resident line
	MergedStores    uint64 // stores absorbed by the merging write buffer
	UnalignedAccess uint64 // unaligned data accesses (extra L1D access)
	ExclusiveLoads  uint64
	ExclusiveStores uint64
	ExclusivePasses uint64 // store-exclusives that succeeded
	ExclusiveFails  uint64
	Barriers        uint64
	BusAccesses     uint64 // L2<->DRAM transfers (reads + writebacks)
}

// Hierarchy composes the full memory system for one simulated core plus its
// cluster-shared L2 and DRAM. It converts DRAM nanoseconds into core cycles
// at the currently configured frequency.
type Hierarchy struct {
	cfg HierarchyConfig

	L1I, L1D, L2 *Cache
	ITLB, DTLB   *TLB
	L2TLBI       *TLB // == L2TLBD when unified
	L2TLBD       *TLB
	DRAM         *DRAM

	Stats HierarchyStats

	freqGHz float64

	// Hot-path invariants hoisted out of the per-access loops: hit
	// latencies and line geometry are configuration constants, and the
	// two possible DRAM latencies (row hit / row miss, always one L2-line
	// transfer) are precomputed as integer cycles by SetFrequencyGHz so
	// no float math survives on the access path.
	l1iLat, l1dLat, l2Lat         int
	l1dLine                       uint64
	l1dWriteAlloc                 bool
	walkLat, walkAccesses         int
	dramHitCycles, dramMissCycles int

	// Streaming-store detector: a small write-combining buffer tracking
	// several independent store streams (real merging write buffers have
	// 4-8 line entries, so interleaved scattered stores do not destroy a
	// detected stream).
	wcb     [8]wcbEntry
	wcbTick uint64

	// exclusive monitor
	monitorValid bool
	monitorAddr  uint64

	// DVFS trace state (see dvfstrace.go): mode, the armed trace, the
	// replay cursor, and the per-access DRAM row hit/miss counters the
	// recorder decomposes latencies with.
	traceMode          int
	trace              *DVFSTrace
	tracePos           int
	recHits, recMisses int

	// page-table region base for synthetic walk addresses
	ptBase uint64
}

// NewHierarchy builds the hierarchy, panicking on invalid configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Hierarchy{
		cfg:     cfg,
		L1I:     NewCache(cfg.L1I),
		L1D:     NewCache(cfg.L1D),
		L2:      NewCache(cfg.L2),
		ITLB:    NewTLB(cfg.ITLB),
		DTLB:    NewTLB(cfg.DTLB),
		DRAM:    NewDRAM(cfg.DRAM),
		freqGHz: 1.0,
		ptBase:  0x7f00_0000_0000,
	}
	if cfg.UnifiedL2TLB {
		u := NewTLB(cfg.L2TLB)
		h.L2TLBI, h.L2TLBD = u, u
	} else {
		h.L2TLBI = NewTLB(cfg.L2TLBI)
		h.L2TLBD = NewTLB(cfg.L2TLBD)
	}
	h.l1iLat = cfg.L1I.LatencyCycles
	h.l1dLat = cfg.L1D.LatencyCycles
	h.l2Lat = cfg.L2.LatencyCycles
	h.l1dLine = uint64(cfg.L1D.LineBytes)
	h.l1dWriteAlloc = cfg.L1D.WriteAllocate
	h.walkLat = cfg.WalkLatencyCycles
	h.walkAccesses = cfg.WalkMemAccesses
	h.SetFrequencyGHz(1.0)
	return h
}

// Reset restores the hierarchy (every cache, TLB, the DRAM model, the
// write-combining buffer, the exclusive monitor and all statistics) to its
// just-constructed state without reallocating any storage. The current
// frequency is retained; callers reconfiguring a reused hierarchy call
// SetFrequencyGHz afterwards as they would after NewHierarchy. A Reset
// hierarchy is indistinguishable from a fresh one — the SimContext reuse
// path and the golden equivalence tests rely on exactly that.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.ITLB.Reset()
	h.DTLB.Reset()
	h.L2TLBI.Reset()
	if h.L2TLBD != h.L2TLBI {
		h.L2TLBD.Reset()
	}
	h.DRAM.Reset()
	h.Stats = HierarchyStats{}
	h.wcb = [8]wcbEntry{}
	h.wcbTick = 0
	h.monitorValid = false
	h.monitorAddr = 0
	h.traceMode = traceOff
	h.trace = nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// SetFrequencyGHz sets the core clock used to convert DRAM ns to cycles
// and precomputes the integer DRAM latency table for that clock. Every
// DRAM access the hierarchy issues is one L2-line transfer, so the only
// two latencies are row hit and row miss; computing ceil(ns*GHz) here,
// with the same float expression the per-access path used, keeps cycle
// counts bit-identical while removing all float math from the hot loop.
func (h *Hierarchy) SetFrequencyGHz(ghz float64) {
	if ghz <= 0 {
		panic("mem: non-positive frequency")
	}
	h.freqGHz = ghz
	transfer := float64(h.L2.LineBytes()) / h.cfg.DRAM.BandwidthBytesPerNs
	h.dramHitCycles = int(math.Ceil((h.cfg.DRAM.RowHitNs + transfer) * ghz))
	h.dramMissCycles = int(math.Ceil((h.cfg.DRAM.RowMissNs + transfer) * ghz))
}

// FrequencyGHz returns the current core clock.
func (h *Hierarchy) FrequencyGHz() float64 { return h.freqGHz }

// l2Fill performs an L2 lookup for a line fill on behalf of an L1 miss and
// returns the added latency in cycles beyond the L1 hit latency.
func (h *Hierarchy) l2Fill(addr uint64, write bool) int {
	res := h.L2.Access(addr, write)
	lat := h.l2Lat
	if res.Writeback {
		h.Stats.BusAccesses++
		// Writeback is off the critical path: state update only.
		h.DRAM.AccessRowHit(res.WritebackAddr, true)
	}
	if !res.Hit {
		h.Stats.BusAccesses++
		if h.DRAM.AccessRowHit(addr, write) {
			lat += h.dramHitCycles
			h.recHits++
		} else {
			lat += h.dramMissCycles
			h.recMisses++
		}
	}
	for _, pa := range res.PrefetchAddrs {
		wbAddr, wb := h.L2.prefetchAbsent(pa)
		if wb {
			h.Stats.BusAccesses++
			h.DRAM.AccessRowHit(wbAddr, true)
		}
		h.Stats.BusAccesses++
		h.DRAM.AccessRowHit(pa, false)
	}
	return lat
}

// l2FillOffPath is l2Fill for fills whose latency the caller discards
// (prefetch fills, the second line of an unaligned store): the DRAM row
// hit/miss counters only ever track latency-contributing accesses — the
// DVFS-trace recorder decomposes each returned latency with them — so they
// are restored around the call.
func (h *Hierarchy) l2FillOffPath(addr uint64) {
	hits, misses := h.recHits, h.recMisses
	h.l2Fill(addr, false)
	h.recHits, h.recMisses = hits, misses
}

// translate performs a TLB lookup on the given side and returns the added
// latency in cycles. L1 TLB lookups are free (folded into the cache
// pipeline); L2 TLB hits charge the L2 TLB latency; misses charge a walk.
func (h *Hierarchy) translate(addr uint64, l1 *TLB, l2 *TLB, walks *uint64) int {
	if l1.Lookup(addr) {
		return 0
	}
	lat := l2.LatencyCycles()
	if l2.Lookup(addr) {
		l1.Refill(addr)
		return lat
	}
	// Full page-table walk.
	*walks++
	lat += h.walkLat
	vpn := addr >> PageShift
	for i := 0; i < h.walkAccesses; i++ {
		pta := h.ptBase + vpn*8 + uint64(i)*(1<<20)
		lat += h.l2Fill(pta, false)
	}
	l2.Refill(addr)
	l1.Refill(addr)
	return lat
}

// FetchAccess charges one instruction-side access for the line containing
// pc and returns its latency in cycles (L1I hit latency included).
func (h *Hierarchy) FetchAccess(pc uint64) int {
	if h.traceMode != traceOff {
		if h.traceMode == traceReplay {
			return h.replayLat()
		}
		h.recHits, h.recMisses = 0, 0
		lat := h.fetchAccess(pc)
		if h.traceMode == traceRecord { // recording may have aborted mid-call
			h.recordEntry(lat)
		}
		return lat
	}
	return h.fetchAccess(pc)
}

func (h *Hierarchy) fetchAccess(pc uint64) int {
	// Sequential fetch repeats the previous page and usually the previous
	// line; both memo checks inline, so the common case does no calls
	// beyond this one.
	lat := h.l1iLat
	if !h.ITLB.lookupLast(pc >> PageShift) {
		lat += h.translate(pc, h.ITLB, h.L2TLBI, &h.Stats.ITLBWalks)
	}
	if h.L1I.hitLast(pc, false) {
		return lat
	}
	if h.L1I.hitFast(pc, false) {
		return lat
	}
	res := h.L1I.missDemand(pc, false)
	lat += h.l2Fill(pc, false)
	for _, pa := range res.PrefetchAddrs {
		// L1I lines are never dirty, so the victim writeback is ignored.
		h.L1I.prefetchAbsent(pa)
		h.l2FillOffPath(pa)
	}
	return lat
}

// LoadAccess charges one data load and returns its latency in cycles.
// Loads do not disturb the streaming-store detector: a merging write
// buffer coalesces store runs regardless of interleaved reads.
func (h *Hierarchy) LoadAccess(addr uint64, unaligned bool) int {
	if h.traceMode != traceOff {
		if h.traceMode == traceReplay {
			return h.replayLat()
		}
		h.recHits, h.recMisses = 0, 0
		lat := h.loadAccess(addr, unaligned)
		if h.traceMode == traceRecord {
			h.recordEntry(lat)
		}
		return lat
	}
	return h.loadAccess(addr, unaligned)
}

func (h *Hierarchy) loadAccess(addr uint64, unaligned bool) int {
	lat := h.l1dLat
	if !h.DTLB.lookupLast(addr >> PageShift) {
		lat += h.translate(addr, h.DTLB, h.L2TLBD, &h.Stats.DTLBWalks)
	}
	if !h.L1D.hitLast(addr, false) && !h.L1D.hitFast(addr, false) {
		res := h.L1D.missDemand(addr, false)
		if res.Writeback {
			h.l2WriteBack(res.WritebackAddr)
		}
		lat += h.l2Fill(addr, false)
		for _, pa := range res.PrefetchAddrs {
			wbAddr, wb := h.L1D.prefetchAbsent(pa)
			if wb {
				h.l2WriteBack(wbAddr)
			}
			h.l2FillOffPath(pa)
		}
	}
	if unaligned {
		h.Stats.UnalignedAccess++
		// Second access for the straddling part.
		res2 := h.L1D.Access(addr+h.l1dLine, false)
		lat += h.l1dLat
		if res2.Writeback {
			h.l2WriteBack(res2.WritebackAddr)
		}
		if !res2.Hit {
			lat += h.l2Fill(addr+h.l1dLine, false)
		}
	}
	return lat
}

func (h *Hierarchy) l2WriteBack(addr uint64) {
	res := h.L2.Access(addr, true)
	if res.Writeback {
		h.Stats.BusAccesses++
		h.DRAM.AccessRowHit(res.WritebackAddr, true)
	}
	if !res.Hit {
		// Write-allocate in L2 for the victim line; DRAM fill off the
		// critical path, but the traffic is real.
		h.Stats.BusAccesses++
		h.DRAM.AccessRowHit(addr, true)
	}
}

// wcbEntry is one write-combining-buffer stream tracker.
type wcbEntry struct {
	end      uint64 // address the stream's next sequential store would hit
	runBytes int    // contiguous bytes written so far
	lastUse  uint64
}

// noteStore updates the write-combining buffer and reports whether addr
// belongs to an established store stream (a run at least StreamDetectRun
// stores long).
func (h *Hierarchy) noteStore(addr uint64, size int) bool {
	h.wcbTick++
	need := h.cfg.StreamDetectRun * size
	for i := range h.wcb {
		e := &h.wcb[i]
		if e.end == addr && e.runBytes > 0 {
			e.end += uint64(size)
			e.runBytes += size
			e.lastUse = h.wcbTick
			return e.runBytes >= need
		}
	}
	// New stream: replace the LRU entry.
	victim := 0
	for i := 1; i < len(h.wcb); i++ {
		if h.wcb[i].lastUse < h.wcb[victim].lastUse {
			victim = i
		}
	}
	h.wcb[victim] = wcbEntry{end: addr + uint64(size), runBytes: size, lastUse: h.wcbTick}
	return false
}

// StoreAccess charges one data store and returns its visible latency in
// cycles (usually small: stores retire through the store buffer).
func (h *Hierarchy) StoreAccess(addr uint64, size int, unaligned bool) int {
	if h.traceMode != traceOff {
		if h.traceMode == traceReplay {
			return h.replayLat()
		}
		h.recHits, h.recMisses = 0, 0
		lat := h.storeAccess(addr, size, unaligned)
		if h.traceMode == traceRecord {
			h.recordEntry(lat)
		}
		return lat
	}
	return h.storeAccess(addr, size, unaligned)
}

func (h *Hierarchy) storeAccess(addr uint64, size int, unaligned bool) int {
	lat := 0
	if !h.DTLB.lookupLast(addr >> PageShift) {
		lat = h.translate(addr, h.DTLB, h.L2TLBD, &h.Stats.DTLBWalks)
	}

	inStream := h.noteStore(addr, size)
	streaming := h.cfg.StreamingStoreMerge && inStream &&
		!h.L1D.Contains(addr)
	if streaming {
		// Merging write buffer: the store bypasses L1D allocation and is
		// merged into a line write sent to L2 once per line.
		h.Stats.MergedStores++
		res := h.L1D.AccessWriteNoAlloc(addr)
		lat += h.l1dLat
		if res.Writeback {
			h.l2WriteBack(res.WritebackAddr)
		}
		lineOff := addr & (h.l1dLine - 1)
		if lineOff < uint64(size) {
			// First store touching this line: emit the merged line write.
			h.l2WriteBack(addr)
		}
		return lat
	}

	lat += h.l1dLat
	if !h.L1D.hitLast(addr, true) && !h.L1D.hitFast(addr, true) {
		res := h.L1D.missDemand(addr, true)
		if res.Writeback {
			h.l2WriteBack(res.WritebackAddr)
		}
		if h.l1dWriteAlloc {
			// Write-allocate: fetch the line from L2 before merging the store.
			lat += h.l2Fill(addr, false)
		} else {
			// Write-no-allocate: the store goes straight to L2.
			h.l2WriteBack(addr)
		}
	}
	if unaligned {
		h.Stats.UnalignedAccess++
		res2 := h.L1D.Access(addr+h.l1dLine, true)
		if res2.Writeback {
			h.l2WriteBack(res2.WritebackAddr)
		}
		if !res2.Hit && h.l1dWriteAlloc {
			h.l2FillOffPath(addr + h.l1dLine)
		}
	}
	return lat
}

// LoadExclusive performs a load-exclusive: a normal load that also arms the
// local exclusive monitor.
func (h *Hierarchy) LoadExclusive(addr uint64) int {
	h.Stats.ExclusiveLoads++
	h.monitorValid = true
	h.monitorAddr = addr &^ (h.l1dLine - 1)
	return h.LoadAccess(addr, false)
}

// StoreExclusive performs a store-exclusive. It succeeds if the monitor is
// still armed for addr's line; contention (snoops) clears the monitor.
// It returns the latency and whether the store succeeded.
func (h *Hierarchy) StoreExclusive(addr uint64) (int, bool) {
	h.Stats.ExclusiveStores++
	line := addr &^ (h.l1dLine - 1)
	ok := h.monitorValid && h.monitorAddr == line
	h.monitorValid = false
	if !ok {
		h.Stats.ExclusiveFails++
		return h.l1dLat, false
	}
	h.Stats.ExclusivePasses++
	return h.StoreAccess(addr, 4, false), true
}

// Barrier records a memory barrier. The timing cost is charged by the
// pipeline model (drain); the hierarchy only counts the event.
func (h *Hierarchy) Barrier() { h.Stats.Barriers++ }

// WrongPathProbe models the instruction-side translation attempt of a
// squashed wrong-path fetch: the L1 ITLB is probed, and on a miss the
// request reaches the second-level TLB / walker cache (counting an access
// and a hit or miss there) before the squash cancels it — nothing is
// refilled. This is the paper's Cluster A mechanism: branch mispredictions
// drive L2 ITLB traffic.
func (h *Hierarchy) WrongPathProbe(pc uint64) {
	if h.traceMode == traceReplay {
		// Probe effects (stats, L2 TLB LRU touches) are part of the
		// recorded run; the restored snapshot carries them.
		return
	}
	if !h.ITLB.Probe(pc) {
		h.L2TLBI.Lookup(pc)
	}
}

// InjectSnoop models a coherence request from another core for addr's
// line: the line is invalidated if resident and the exclusive monitor for
// that line is cleared. Returns true if the snoop hit.
func (h *Hierarchy) InjectSnoop(addr uint64) bool {
	h.Stats.Snoops++
	line := addr &^ (h.l1dLine - 1)
	if h.monitorValid && h.monitorAddr == line {
		h.monitorValid = false
	}
	if h.traceMode == traceReplay {
		// The invalidation's effect on later accesses is baked into the
		// recorded outcomes; only the exclusive monitor must track live,
		// because store-exclusive success is recomputed during replay.
		// The return value is unused on the pipeline's snoop path.
		return false
	}
	dirty, present := h.L1D.Invalidate(addr)
	if dirty {
		h.l2WriteBack(addr)
	}
	if present {
		h.Stats.SnoopHits++
	}
	return present
}
