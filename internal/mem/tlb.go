package mem

import "fmt"

// PageBytes is the virtual-memory page size used throughout the models.
const PageBytes = 4096

// PageShift is log2(PageBytes).
const PageShift = 12

// TLBConfig describes one translation lookaside buffer.
//
// The paper's central TLB finding is a geometry divergence: the Cortex-A15
// hardware has a 32-entry L1 ITLB backed by a shared 512-entry 4-way L2 TLB
// (2-cycle access), while the gem5 model has a 64-entry L1 ITLB backed by
// two *split* 8-way walker caches with a 4-cycle access latency. Both
// shapes are expressible with this config.
type TLBConfig struct {
	// Name identifies the TLB in statistics output (e.g. "itb").
	Name string
	// Entries is the total entry count.
	Entries int
	// Assoc is the associativity; Entries/Assoc sets must be a power of two.
	// Assoc == Entries gives a fully-associative TLB.
	Assoc int
	// LatencyCycles is charged on a hit in this level beyond the L1 lookup
	// (zero for L1 TLBs, whose lookup is folded into the cache access).
	LatencyCycles int
}

// Validate checks the configuration.
func (c TLBConfig) Validate() error {
	if c.Entries <= 0 || c.Assoc <= 0 || c.Entries%c.Assoc != 0 {
		return fmt.Errorf("mem: tlb %q: bad geometry entries=%d assoc=%d", c.Name, c.Entries, c.Assoc)
	}
	sets := c.Entries / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: tlb %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// TLBStats accumulates raw TLB event counts.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
	Refills  uint64
	Flushes  uint64
	// SpecProbes counts speculative (wrong-path) translation attempts
	// that were squashed before resolving: they occupy TLB ports and are
	// visible in access statistics but never refill.
	SpecProbes uint64
}

// Hits returns Accesses - Misses.
func (s *TLBStats) Hits() uint64 { return s.Accesses - s.Misses }

type tlbEntry struct {
	vpn     uint64
	lastUse uint64
	valid   bool
}

// TLB is a set-associative translation buffer with LRU replacement. Like
// Cache it is a pure state machine; the hierarchy charges walk latency.
type TLB struct {
	cfg     TLBConfig
	Stats   TLBStats
	entries []tlbEntry
	sets    int
	assoc   int
	setMask uint64
	tick    uint64
}

// NewTLB builds a TLB from cfg, panicking on invalid configuration.
func NewTLB(cfg TLBConfig) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Entries / cfg.Assoc
	return &TLB{
		cfg:     cfg,
		entries: make([]tlbEntry, cfg.Entries),
		sets:    sets,
		assoc:   cfg.Assoc,
		setMask: uint64(sets - 1),
	}
}

// Config returns the TLB configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// LatencyCycles returns the configured hit latency.
func (t *TLB) LatencyCycles() int { return t.cfg.LatencyCycles }

// Lookup translates the page containing addr. It returns true on a hit.
// On a miss the entry is NOT installed; call Refill once the walk (or the
// next TLB level) provides the translation.
func (t *TLB) Lookup(addr uint64) bool {
	t.Stats.Accesses++
	vpn := addr >> PageShift
	base := int(vpn&t.setMask) * t.assoc
	for w := 0; w < t.assoc; w++ {
		if e := &t.entries[base+w]; e.valid && e.vpn == vpn {
			t.tick++
			e.lastUse = t.tick
			return true
		}
	}
	t.Stats.Misses++
	return false
}

// Refill installs the translation for addr's page, evicting LRU if needed.
func (t *TLB) Refill(addr uint64) {
	t.Stats.Refills++
	vpn := addr >> PageShift
	base := int(vpn&t.setMask) * t.assoc
	best := base
	var bestUse uint64 = ^uint64(0)
	for w := 0; w < t.assoc; w++ {
		e := &t.entries[base+w]
		if !e.valid {
			best = base + w
			break
		}
		if e.lastUse < bestUse {
			bestUse = e.lastUse
			best = base + w
		}
	}
	t.tick++
	t.entries[best] = tlbEntry{vpn: vpn, lastUse: t.tick, valid: true}
}

// Probe performs a speculative lookup: it records a SpecProbe and reports
// residency without counting a hit/miss or installing anything. Wrong-path
// fetches use this — the squash cancels the translation before it refills.
func (t *TLB) Probe(addr uint64) bool {
	t.Stats.SpecProbes++
	return t.Contains(addr)
}

// Contains reports whether addr's page is resident (no stats recorded).
func (t *TLB) Contains(addr uint64) bool {
	vpn := addr >> PageShift
	base := int(vpn&t.setMask) * t.assoc
	for w := 0; w < t.assoc; w++ {
		if e := &t.entries[base+w]; e.valid && e.vpn == vpn {
			return true
		}
	}
	return false
}

// Flush invalidates every entry (context-switch behaviour).
func (t *TLB) Flush() {
	t.Stats.Flushes++
	for i := range t.entries {
		t.entries[i].valid = false
	}
}
