package mem

import "fmt"

// PageBytes is the virtual-memory page size used throughout the models.
const PageBytes = 4096

// PageShift is log2(PageBytes).
const PageShift = 12

// TLBConfig describes one translation lookaside buffer.
//
// The paper's central TLB finding is a geometry divergence: the Cortex-A15
// hardware has a 32-entry L1 ITLB backed by a shared 512-entry 4-way L2 TLB
// (2-cycle access), while the gem5 model has a 64-entry L1 ITLB backed by
// two *split* 8-way walker caches with a 4-cycle access latency. Both
// shapes are expressible with this config.
type TLBConfig struct {
	// Name identifies the TLB in statistics output (e.g. "itb").
	Name string
	// Entries is the total entry count.
	Entries int
	// Assoc is the associativity; Entries/Assoc sets must be a power of two.
	// Assoc == Entries gives a fully-associative TLB.
	Assoc int
	// LatencyCycles is charged on a hit in this level beyond the L1 lookup
	// (zero for L1 TLBs, whose lookup is folded into the cache access).
	LatencyCycles int
}

// Validate checks the configuration.
func (c TLBConfig) Validate() error {
	if c.Entries <= 0 || c.Assoc <= 0 || c.Entries%c.Assoc != 0 {
		return fmt.Errorf("mem: tlb %q: bad geometry entries=%d assoc=%d", c.Name, c.Entries, c.Assoc)
	}
	sets := c.Entries / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: tlb %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// TLBStats accumulates raw TLB event counts.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
	Refills  uint64
	Flushes  uint64
	// SpecProbes counts speculative (wrong-path) translation attempts
	// that were squashed before resolving: they occupy TLB ports and are
	// visible in access statistics but never refill.
	SpecProbes uint64
}

// Hits returns Accesses - Misses.
func (s *TLBStats) Hits() uint64 { return s.Accesses - s.Misses }

// TLB is a set-associative translation buffer with LRU replacement. Like
// Cache it is a pure state machine; the hierarchy charges walk latency.
//
// Entries live in parallel arrays for scan density (the L1 TLBs are 32-entry
// fully associative, so every miss walks all of them): keys holds vpn+1 for
// valid entries and 0 for invalid ones — vpn+1 cannot overflow (a vpn has at
// most 52 bits) and cannot be 0, so one comparison checks tag and validity.
type TLB struct {
	cfg     TLBConfig
	Stats   TLBStats
	keys    []uint64
	lastUse []uint64
	sets    int
	assoc   int
	setMask uint64
	tick    uint64
	// last memoises the index of the most recently hit entry. Page-sized
	// locality means most translations repeat the previous page, so the
	// common case is one compare instead of a (often fully-associative)
	// way scan. Pure memoisation: hit/miss outcomes, LRU state and stats
	// are byte-identical with or without it.
	last int
}

// NewTLB builds a TLB from cfg, panicking on invalid configuration.
func NewTLB(cfg TLBConfig) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Entries / cfg.Assoc
	return &TLB{
		cfg:     cfg,
		keys:    make([]uint64, cfg.Entries),
		lastUse: make([]uint64, cfg.Entries),
		sets:    sets,
		assoc:   cfg.Assoc,
		setMask: uint64(sets - 1),
	}
}

// Config returns the TLB configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// LatencyCycles returns the configured hit latency.
func (t *TLB) LatencyCycles() int { return t.cfg.LatencyCycles }

// Lookup translates the page containing addr. It returns true on a hit.
// On a miss the entry is NOT installed; call Refill once the walk (or the
// next TLB level) provides the translation.
func (t *TLB) Lookup(addr uint64) bool {
	t.Stats.Accesses++
	vpn := addr >> PageShift
	key := vpn + 1
	if t.keys[t.last] == key {
		t.tick++
		t.lastUse[t.last] = t.tick
		return true
	}
	base := int(vpn&t.setMask) * t.assoc
	// Subslicing lets the compiler drop the per-way bounds checks; the L1
	// TLBs are fully associative, so a miss scans every entry.
	keys := t.keys[base : base+t.assoc]
	for w, k := range keys {
		if k == key {
			t.tick++
			t.lastUse[base+w] = t.tick
			t.last = base + w
			return true
		}
	}
	t.Stats.Misses++
	return false
}

// lookupLast is Lookup restricted to the memoised entry: it applies the
// full hit bookkeeping when the last-hit entry matches and reports false
// otherwise (recording nothing — the caller falls back to Lookup, which
// then counts the access exactly once). Small enough for the inliner, so
// the hierarchy's translation fast path costs no call.
func (t *TLB) lookupLast(vpn uint64) bool {
	if t.keys[t.last] != vpn+1 {
		return false
	}
	t.Stats.Accesses++
	t.tick++
	t.lastUse[t.last] = t.tick
	return true
}

// Refill installs the translation for addr's page, evicting LRU if needed.
func (t *TLB) Refill(addr uint64) {
	t.Stats.Refills++
	vpn := addr >> PageShift
	base := int(vpn&t.setMask) * t.assoc
	keys := t.keys[base : base+t.assoc]
	lastUse := t.lastUse[base : base+t.assoc]
	best := 0
	var bestUse uint64 = ^uint64(0)
	for w, k := range keys {
		if k == 0 {
			best = w
			break
		}
		if u := lastUse[w]; u < bestUse {
			bestUse = u
			best = w
		}
	}
	best += base
	t.tick++
	t.keys[best] = vpn + 1
	t.lastUse[best] = t.tick
	t.last = best
}

// Reset restores the TLB to its just-constructed state without
// reallocating the entry array; indistinguishable from NewTLB with the
// same configuration.
func (t *TLB) Reset() {
	clear(t.keys)
	clear(t.lastUse)
	t.Stats = TLBStats{}
	t.tick = 0
	t.last = 0
}

// Probe performs a speculative lookup: it records a SpecProbe and reports
// residency without counting a hit/miss or installing anything. Wrong-path
// fetches use this — the squash cancels the translation before it refills.
func (t *TLB) Probe(addr uint64) bool {
	t.Stats.SpecProbes++
	return t.Contains(addr)
}

// Contains reports whether addr's page is resident (no stats recorded).
func (t *TLB) Contains(addr uint64) bool {
	key := addr>>PageShift + 1
	if t.keys[t.last] == key {
		return true
	}
	base := int((key-1)&t.setMask) * t.assoc
	for _, k := range t.keys[base : base+t.assoc] {
		if k == key {
			return true
		}
	}
	return false
}

// Flush invalidates every entry (context-switch behaviour).
func (t *TLB) Flush() {
	t.Stats.Flushes++
	clear(t.keys)
}
