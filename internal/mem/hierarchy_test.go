package mem

import (
	"testing"

	"gemstone/internal/xrand"
)

func testDRAMConfig() DRAMConfig {
	return DRAMConfig{Banks: 8, RowBytes: 2048, RowHitNs: 30, RowMissNs: 90, BandwidthBytesPerNs: 8}
}

func testHierConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:  CacheConfig{Name: "l1i", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 2, LatencyCycles: 1},
		L1D:  CacheConfig{Name: "l1d", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 2, WriteAllocate: true},
		L2:   CacheConfig{Name: "l2", SizeBytes: 512 << 10, LineBytes: 64, Assoc: 8, LatencyCycles: 12, WriteAllocate: true},
		ITLB: TLBConfig{Name: "itb", Entries: 32, Assoc: 32},
		DTLB: TLBConfig{Name: "dtb", Entries: 32, Assoc: 32},

		UnifiedL2TLB:        true,
		L2TLB:               TLBConfig{Name: "l2tlb", Entries: 512, Assoc: 4, LatencyCycles: 2},
		DRAM:                testDRAMConfig(),
		WalkMemAccesses:     2,
		WalkLatencyCycles:   8,
		StreamingStoreMerge: true,
		StreamDetectRun:     4,
	}
}

func TestDRAMRowBuffer(t *testing.T) {
	d := NewDRAM(testDRAMConfig())
	first := d.Access(0, false, 64)
	second := d.Access(64, false, 64) // same row
	if first <= second {
		t.Fatalf("row miss (%v ns) must be slower than row hit (%v ns)", first, second)
	}
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 {
		t.Fatalf("stats = %+v", d.Stats)
	}
}

func TestDRAMConfigValidate(t *testing.T) {
	bad := []DRAMConfig{
		{Banks: 3, RowBytes: 2048, RowHitNs: 10, RowMissNs: 20, BandwidthBytesPerNs: 1},
		{Banks: 8, RowBytes: 1000, RowHitNs: 10, RowMissNs: 20, BandwidthBytesPerNs: 1},
		{Banks: 8, RowBytes: 2048, RowHitNs: 20, RowMissNs: 10, BandwidthBytesPerNs: 1},
		{Banks: 8, RowBytes: 2048, RowHitNs: 10, RowMissNs: 20, BandwidthBytesPerNs: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestHierarchyFetchLatencyOrdering(t *testing.T) {
	h := NewHierarchy(testHierConfig())
	h.SetFrequencyGHz(1.0)
	cold := h.FetchAccess(0x8000)
	warm := h.FetchAccess(0x8000)
	if cold <= warm {
		t.Fatalf("cold fetch (%d cy) must cost more than warm fetch (%d cy)", cold, warm)
	}
	if warm != h.L1I.LatencyCycles() {
		t.Fatalf("warm fetch = %d cy, want L1I latency %d", warm, h.L1I.LatencyCycles())
	}
}

func TestHierarchyLoadMissChargesL2AndDRAM(t *testing.T) {
	h := NewHierarchy(testHierConfig())
	h.SetFrequencyGHz(1.0)
	lat := h.LoadAccess(0x4_0000, false)
	// Cold: L1D + L2 + DRAM + TLB walk memory accesses.
	min := h.L1D.LatencyCycles() + h.L2.LatencyCycles()
	if lat <= min {
		t.Fatalf("cold load latency %d must exceed L1+L2 %d (DRAM missing?)", lat, min)
	}
	if h.DRAM.Stats.Accesses() == 0 {
		t.Fatal("cold load must reach DRAM")
	}
	warm := h.LoadAccess(0x4_0000, false)
	if warm != h.L1D.LatencyCycles() {
		t.Fatalf("warm load = %d, want %d", warm, h.L1D.LatencyCycles())
	}
}

func TestHierarchyFrequencyScalesDRAMLatency(t *testing.T) {
	lat := func(ghz float64) int {
		h := NewHierarchy(testHierConfig())
		h.SetFrequencyGHz(ghz)
		return h.LoadAccess(0x9_0000, false)
	}
	slow, fast := lat(0.2), lat(1.8)
	if fast <= slow {
		t.Fatalf("DRAM cycles at 1.8 GHz (%d) must exceed cycles at 0.2 GHz (%d)", fast, slow)
	}
}

func TestHierarchyTLBWalkCharged(t *testing.T) {
	h := NewHierarchy(testHierConfig())
	before := h.Stats.DTLBWalks
	h.LoadAccess(0xAB0000, false)
	if h.Stats.DTLBWalks != before+1 {
		t.Fatalf("DTLBWalks = %d, want %d", h.Stats.DTLBWalks, before+1)
	}
	// Second access to the same page: no walk.
	h.LoadAccess(0xAB0040, false)
	if h.Stats.DTLBWalks != before+1 {
		t.Fatal("warm-page access must not walk")
	}
}

func TestHierarchyUnifiedVsSplitL2TLBSharing(t *testing.T) {
	cfg := testHierConfig()
	h := NewHierarchy(cfg)
	if h.L2TLBI != h.L2TLBD {
		t.Fatal("unified config must share one L2 TLB instance")
	}
	cfg.UnifiedL2TLB = false
	cfg.L2TLBI = TLBConfig{Name: "itb_walker", Entries: 64, Assoc: 8, LatencyCycles: 4}
	cfg.L2TLBD = TLBConfig{Name: "dtb_walker", Entries: 64, Assoc: 8, LatencyCycles: 4}
	h2 := NewHierarchy(cfg)
	if h2.L2TLBI == h2.L2TLBD {
		t.Fatal("split config must use two L2 TLB instances")
	}
}

// The paper's Fig. 6 mechanism: without a merging write buffer (gem5),
// streaming stores inflate L1D write refills and writebacks by ~10-20x.
func TestStreamingStoreMergeReducesWriteRefills(t *testing.T) {
	run := func(merge bool) (refills, writebacks uint64) {
		cfg := testHierConfig()
		cfg.StreamingStoreMerge = merge
		h := NewHierarchy(cfg)
		// Stream 64 KiB of sequential 4-byte stores (memset-like).
		for a := uint64(0); a < 64<<10; a += 4 {
			h.StoreAccess(0x50_0000+a, 4, false)
		}
		// Evict everything with reads to force dirty writebacks out.
		for a := uint64(0); a < 256<<10; a += 64 {
			h.LoadAccess(0x90_0000+a, false)
		}
		return h.L1D.Stats.WriteRefills, h.L1D.Stats.Writebacks
	}
	hwRef, hwWB := run(true)
	g5Ref, g5WB := run(false)
	if g5Ref < 5*max64(hwRef, 1) {
		t.Fatalf("no-merge write refills %d not >> merge refills %d", g5Ref, hwRef)
	}
	if g5WB < 5*max64(hwWB, 1) {
		t.Fatalf("no-merge writebacks %d not >> merge writebacks %d", g5WB, hwWB)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestExclusiveMonitor(t *testing.T) {
	h := NewHierarchy(testHierConfig())
	h.LoadExclusive(0x1000)
	if _, ok := h.StoreExclusive(0x1000); !ok {
		t.Fatal("store-exclusive after load-exclusive must succeed")
	}
	// Monitor is consumed.
	if _, ok := h.StoreExclusive(0x1000); ok {
		t.Fatal("second store-exclusive must fail (monitor cleared)")
	}
	// A snoop to the monitored line clears the monitor.
	h.LoadExclusive(0x2000)
	h.InjectSnoop(0x2000)
	if _, ok := h.StoreExclusive(0x2000); ok {
		t.Fatal("store-exclusive after snoop must fail")
	}
	s := h.Stats
	if s.ExclusiveLoads != 2 || s.ExclusiveStores != 3 ||
		s.ExclusivePasses != 1 || s.ExclusiveFails != 2 {
		t.Fatalf("exclusive stats = %+v", s)
	}
}

func TestSnoopInvalidatesAndCounts(t *testing.T) {
	h := NewHierarchy(testHierConfig())
	h.LoadAccess(0x3000, false)
	if !h.InjectSnoop(0x3000) {
		t.Fatal("snoop to resident line must hit")
	}
	if h.L1D.Contains(0x3000) {
		t.Fatal("snooped line must be invalidated")
	}
	if h.InjectSnoop(0x7777000) {
		t.Fatal("snoop to absent line must miss")
	}
	if h.Stats.Snoops != 2 || h.Stats.SnoopHits != 1 {
		t.Fatalf("snoop stats = %+v", h.Stats)
	}
}

func TestUnalignedAccessCounted(t *testing.T) {
	h := NewHierarchy(testHierConfig())
	h.LoadAccess(0x100, true)
	h.StoreAccess(0x200, 4, true)
	if h.Stats.UnalignedAccess != 2 {
		t.Fatalf("UnalignedAccess = %d, want 2", h.Stats.UnalignedAccess)
	}
}

func TestHierarchyDeterminism(t *testing.T) {
	run := func() (HierarchyStats, CacheStats, TLBStats) {
		rng := xrand.New(99)
		h := NewHierarchy(testHierConfig())
		for i := 0; i < 5000; i++ {
			a := uint64(rng.Intn(1 << 22))
			switch rng.Intn(3) {
			case 0:
				h.LoadAccess(a, false)
			case 1:
				h.StoreAccess(a, 4, false)
			default:
				h.FetchAccess(a)
			}
		}
		return h.Stats, h.L2.Stats, h.DTLB.Stats
	}
	h1, c1, t1 := run()
	h2, c2, t2 := run()
	if h1 != h2 || c1 != c2 || t1 != t2 {
		t.Fatal("hierarchy simulation is not deterministic")
	}
}
