package mem

import (
	"testing"
	"testing/quick"

	"gemstone/internal/xrand"
)

func testCacheConfig() CacheConfig {
	return CacheConfig{
		Name: "test", SizeBytes: 4096, LineBytes: 64, Assoc: 4,
		LatencyCycles: 2, WriteAllocate: true,
	}
}

func TestCacheConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CacheConfig)
		ok   bool
	}{
		{"valid", func(c *CacheConfig) {}, true},
		{"zero line", func(c *CacheConfig) { c.LineBytes = 0 }, false},
		{"non-pow2 line", func(c *CacheConfig) { c.LineBytes = 48 }, false},
		{"zero assoc", func(c *CacheConfig) { c.Assoc = 0 }, false},
		{"size not multiple", func(c *CacheConfig) { c.SizeBytes = 4000 }, false},
		{"non-pow2 sets", func(c *CacheConfig) { c.SizeBytes = 4096 * 3 }, false},
		{"negative latency", func(c *CacheConfig) { c.LatencyCycles = -1 }, false},
		{"fully associative", func(c *CacheConfig) { c.Assoc = 64; c.SizeBytes = 64 * 64 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testCacheConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("expected valid, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected validation error, got nil")
			}
		})
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := NewCache(testCacheConfig())
	if res := c.Access(0x1000, false); res.Hit {
		t.Fatal("cold access must miss")
	}
	if res := c.Access(0x1000, false); !res.Hit {
		t.Fatal("second access must hit")
	}
	if res := c.Access(0x1004, false); !res.Hit {
		t.Fatal("same-line access must hit")
	}
	if got := c.Stats.ReadAccesses; got != 3 {
		t.Fatalf("ReadAccesses = %d, want 3", got)
	}
	if got := c.Stats.ReadMisses; got != 1 {
		t.Fatalf("ReadMisses = %d, want 1", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 4-way cache: 5 distinct lines mapping to the same set evict the LRU.
	cfg := testCacheConfig()
	c := NewCache(cfg)
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc) // 16 sets
	stride := uint64(sets * cfg.LineBytes)              // same-set stride
	for i := uint64(0); i < 5; i++ {
		c.Access(i*stride, false)
	}
	if c.Contains(0) {
		t.Fatal("LRU line should have been evicted")
	}
	for i := uint64(1); i < 5; i++ {
		if !c.Contains(i * stride) {
			t.Fatalf("line %d should be resident", i)
		}
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	cfg := testCacheConfig()
	c := NewCache(cfg)
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	stride := uint64(sets * cfg.LineBytes)
	c.Access(0, true) // dirty line
	for i := uint64(1); i < 4; i++ {
		c.Access(i*stride, false)
	}
	res := c.Access(4*stride, false)
	if !res.Writeback {
		t.Fatal("evicting a dirty line must report a writeback")
	}
	if res.WritebackAddr != 0 {
		t.Fatalf("WritebackAddr = %#x, want 0", res.WritebackAddr)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestCacheWriteNoAllocatePolicy(t *testing.T) {
	cfg := testCacheConfig()
	cfg.WriteAllocate = false
	c := NewCache(cfg)
	c.Access(0x40, true)
	if c.Contains(0x40) {
		t.Fatal("write-no-allocate cache must not install write misses")
	}
	if c.Stats.WriteMisses != 1 || c.Stats.WriteRefills != 0 {
		t.Fatalf("stats = %+v, want 1 write miss, 0 write refills", c.Stats)
	}
}

func TestCacheAccessWriteNoAlloc(t *testing.T) {
	c := NewCache(testCacheConfig())
	res := c.AccessWriteNoAlloc(0x80)
	if res.Hit || c.Contains(0x80) {
		t.Fatal("no-alloc write miss must not install the line")
	}
	c.Access(0x80, false) // install
	res = c.AccessWriteNoAlloc(0x80)
	if !res.Hit {
		t.Fatal("no-alloc write to resident line must hit")
	}
}

func TestCacheNextLinePrefetch(t *testing.T) {
	cfg := testCacheConfig()
	cfg.NextLinePrefetch = true
	cfg.PrefetchDegree = 2
	c := NewCache(cfg)
	res := c.Access(0x1000, false)
	if len(res.PrefetchAddrs) != 2 {
		t.Fatalf("prefetch addrs = %v, want 2 entries", res.PrefetchAddrs)
	}
	if res.PrefetchAddrs[0] != 0x1040 || res.PrefetchAddrs[1] != 0x1080 {
		t.Fatalf("prefetch addrs = %#x", res.PrefetchAddrs)
	}
	for _, pa := range res.PrefetchAddrs {
		c.Prefetch(pa)
	}
	if c.Stats.Prefetches != 2 {
		t.Fatalf("Prefetches = %d, want 2", c.Stats.Prefetches)
	}
	if res := c.Access(0x1040, false); !res.Hit {
		t.Fatal("prefetched line must hit")
	}
	if c.Stats.PrefetchHits != 1 {
		t.Fatalf("PrefetchHits = %d, want 1", c.Stats.PrefetchHits)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(testCacheConfig())
	c.Access(0x200, true)
	dirty, present := c.Invalidate(0x200)
	if !present || !dirty {
		t.Fatalf("Invalidate = (dirty=%v, present=%v), want both true", dirty, present)
	}
	if c.Contains(0x200) {
		t.Fatal("invalidated line still resident")
	}
	dirty, present = c.Invalidate(0x200)
	if present || dirty {
		t.Fatal("second invalidate must be a no-op")
	}
}

// Property: for any access sequence, hits+misses == accesses per side, and
// resident lines never exceed capacity.
func TestCacheStatsInvariant(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := xrand.New(seed)
		c := NewCache(testCacheConfig())
		steps := int(n%2048) + 1
		for i := 0; i < steps; i++ {
			addr := uint64(rng.Intn(1 << 14))
			c.Access(addr, rng.Bool(0.3))
		}
		s := c.Stats
		if s.ReadAccesses+s.WriteAccesses != uint64(steps) {
			return false
		}
		if s.ReadMisses > s.ReadAccesses || s.WriteMisses > s.WriteAccesses {
			return false
		}
		if s.ReadRefills != s.ReadMisses { // read misses always refill
			return false
		}
		maxLines := testCacheConfig().SizeBytes / testCacheConfig().LineBytes
		return c.ResidentLines() <= maxLines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a line that was just accessed is always resident afterwards
// (with write-allocate), i.e. the cache never "loses" the MRU line.
func TestCacheMRUResident(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		c := NewCache(testCacheConfig())
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(1 << 16))
			c.Access(addr, rng.Bool(0.5))
			if !c.Contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheDeterminism(t *testing.T) {
	run := func() CacheStats {
		rng := xrand.New(42)
		c := NewCache(testCacheConfig())
		for i := 0; i < 2000; i++ {
			c.Access(uint64(rng.Intn(1<<15)), rng.Bool(0.25))
		}
		return c.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic cache stats: %+v vs %+v", a, b)
	}
}
