package mem

import (
	"testing"
)

func TestDRAMBandwidthTermScalesWithLineSize(t *testing.T) {
	d := NewDRAM(testDRAMConfig())
	small := d.Access(0, false, 64)
	d2 := NewDRAM(testDRAMConfig())
	large := d2.Access(0, false, 256)
	if large <= small {
		t.Fatalf("larger transfers must take longer: %v vs %v ns", large, small)
	}
	// The difference is exactly the serialisation term.
	want := (256.0 - 64.0) / testDRAMConfig().BandwidthBytesPerNs
	if got := large - small; got != want {
		t.Fatalf("bandwidth term = %v ns, want %v", got, want)
	}
}

func TestPageWalkGeneratesMemoryTraffic(t *testing.T) {
	cfg := testHierConfig()
	h := NewHierarchy(cfg)
	l2Before := h.L2.Stats.Accesses()
	// Cold page: L1 and L2 TLB miss, full walk.
	h.LoadAccess(0xDEAD000, false)
	walkAccesses := h.L2.Stats.Accesses() - l2Before
	// The walk issues WalkMemAccesses page-table reads (plus the data
	// line's own L2 fill).
	if walkAccesses < uint64(cfg.WalkMemAccesses)+1 {
		t.Fatalf("L2 saw %d accesses for a cold page, want >= %d",
			walkAccesses, cfg.WalkMemAccesses+1)
	}
	// Second access to the same page walks nothing.
	l2Mid := h.L2.Stats.Accesses()
	h.LoadAccess(0xDEAD040, false)
	if h.L2.Stats.Accesses() != l2Mid+1 { // just the data line fill
		t.Fatal("warm-page access must not walk")
	}
}

func TestWalkRefillsBothTLBLevels(t *testing.T) {
	h := NewHierarchy(testHierConfig())
	h.FetchAccess(0xABC000)
	if !h.ITLB.Contains(0xABC000) {
		t.Fatal("walk must refill the L1 ITLB")
	}
	if !h.L2TLBI.Contains(0xABC000) {
		t.Fatal("walk must refill the L2 TLB")
	}
}

func TestPrefetchGeneratesBusTraffic(t *testing.T) {
	cfg := testHierConfig()
	cfg.L1D.NextLinePrefetch = true
	cfg.L1D.PrefetchDegree = 2
	h := NewHierarchy(cfg)
	h.LoadAccess(0x40_0000, false)
	// Demand fill + 2 prefetch fills reach DRAM (all cold).
	if got := h.DRAM.Stats.Reads; got < 3 {
		t.Fatalf("DRAM reads = %d, want demand + prefetches", got)
	}
	if h.L1D.Stats.Prefetches != 2 {
		t.Fatalf("prefetches = %d", h.L1D.Stats.Prefetches)
	}
}

func TestWrongPathProbeCountsButDoesNotRefill(t *testing.T) {
	h := NewHierarchy(testHierConfig())
	addr := uint64(0xFEED000)
	before := h.L2TLBI.Stats.Accesses
	h.WrongPathProbe(addr)
	if h.ITLB.Stats.SpecProbes != 1 {
		t.Fatalf("spec probes = %d", h.ITLB.Stats.SpecProbes)
	}
	if h.L2TLBI.Stats.Accesses != before+1 {
		t.Fatal("L1-miss probe must reach the L2 TLB")
	}
	if h.ITLB.Contains(addr) || h.L2TLBI.Contains(addr) {
		t.Fatal("squashed translation must not refill")
	}
	if h.Stats.ITLBWalks != 0 {
		t.Fatal("squashed translation must not walk")
	}
	// A resident page's probe stops at the L1 ITLB.
	h.FetchAccess(0x1000)
	mid := h.L2TLBI.Stats.Accesses
	h.WrongPathProbe(0x1000)
	if h.L2TLBI.Stats.Accesses != mid {
		t.Fatal("resident-page probe must not reach the L2 TLB")
	}
}

func TestMergedStoreEmitsOneLineWritePerLine(t *testing.T) {
	cfg := testHierConfig()
	h := NewHierarchy(cfg)
	l2Before := h.L2.Stats.WriteAccesses
	// 32 sequential 4-byte stores = 2 full 64-byte lines.
	for i := uint64(0); i < 32; i++ {
		h.StoreAccess(0x70_0000+i*4, 4, false)
	}
	merged := h.Stats.MergedStores
	if merged == 0 {
		t.Fatal("sequential stores must merge")
	}
	lineWrites := h.L2.Stats.WriteAccesses - l2Before
	if lineWrites > 3 {
		t.Fatalf("merged stream emitted %d L2 line writes for 2 lines", lineWrites)
	}
}

func TestSnoopWritesBackDirtyVictim(t *testing.T) {
	h := NewHierarchy(testHierConfig())
	h.StoreAccess(0x3000, 4, false) // dirty line
	l2Before := h.L2.Stats.WriteAccesses
	h.InjectSnoop(0x3000)
	if h.L2.Stats.WriteAccesses == l2Before {
		t.Fatal("snooping a dirty line must push the data to L2")
	}
}
