package mem

// DVFS-sweep replay.
//
// A characterisation campaign simulates the same workload on the same
// cluster at every DVFS operating point. The memory-system event stream is
// frequency-invariant: which lookups hit, which DRAM rows open, which lines
// write back depends only on the instruction stream's addresses, never on
// how many cycles an access took. The only frequency-dependent quantities
// the hierarchy produces are the two integer DRAM latencies precomputed by
// SetFrequencyGHz, so every latency the pipeline observes decomposes as
//
//	fixed + rowHits*dramHitCycles + rowMisses*dramMissCycles
//
// with fixed, rowHits and rowMisses identical at every frequency.
//
// DVFSTrace records that decomposition — one packed uint32 per
// pipeline-level access (FetchAccess/LoadAccess/StoreAccess) — plus a
// snapshot of every statistics block at end of run. Replaying the trace at
// another operating point reproduces, bit for bit, the latencies and
// statistics a full simulation at that frequency would produce, while
// skipping all cache, TLB and DRAM work. The exclusive monitor stays live
// during replay (it is the one piece of hierarchy state whose effect —
// store-exclusive success — feeds back into the pipeline between accesses),
// and InjectSnoop/WrongPathProbe become monitor-only/no-ops because their
// cache and TLB effects are already baked into the recorded outcomes.
//
// The golden equivalence tests and the cross-frequency campaign tests pin
// the bit-for-bit property.

// Packed entry layout: fixed cycles in the low 16 bits, DRAM row misses in
// bits 16..23, DRAM row hits in bits 24..31. Recording aborts (and the
// trace is discarded) if any field would overflow, so decoding is exact.
const (
	traceFixedMask  = 0xFFFF
	traceMissShift  = 16
	traceHitShift   = 24
	traceCountLimit = 0xFF
)

// Hierarchy trace modes.
const (
	traceOff = iota
	traceRecord
	traceReplay
)

// DVFSTrace holds the frequency-invariant memory trace of one
// workload×cluster run: the per-access latency decompositions and the
// end-of-run statistics snapshot. The zero value is an invalid (empty)
// trace; storage is reused across recordings.
type DVFSTrace struct {
	entries []uint32
	valid   bool
	snap    hierSnapshot
}

// Valid reports whether the trace holds a complete recorded run.
func (t *DVFSTrace) Valid() bool { return t.valid }

// hierSnapshot is the end-of-run state of every statistics block a
// pmu capture reads from the hierarchy.
type hierSnapshot struct {
	hier           HierarchyStats
	l1i, l1d, l2   CacheStats
	itlb, dtlb     TLBStats
	l2tlbi, l2tlbd TLBStats
	dram           DRAMStats
}

func (t *DVFSTrace) snapshot(h *Hierarchy) {
	t.snap = hierSnapshot{
		hier: h.Stats,
		l1i:  h.L1I.Stats, l1d: h.L1D.Stats, l2: h.L2.Stats,
		itlb: h.ITLB.Stats, dtlb: h.DTLB.Stats,
		l2tlbi: h.L2TLBI.Stats, l2tlbd: h.L2TLBD.Stats,
		dram: h.DRAM.Stats,
	}
}

func (t *DVFSTrace) restore(h *Hierarchy) {
	h.Stats = t.snap.hier
	h.L1I.Stats, h.L1D.Stats, h.L2.Stats = t.snap.l1i, t.snap.l1d, t.snap.l2
	h.ITLB.Stats, h.DTLB.Stats = t.snap.itlb, t.snap.dtlb
	// With a unified second-level TLB both fields alias one TLB and both
	// snapshot fields hold the same value, so the double write is benign.
	h.L2TLBI.Stats, h.L2TLBD.Stats = t.snap.l2tlbi, t.snap.l2tlbd
	h.DRAM.Stats = t.snap.dram
}

// BeginTraceRecord arms trace recording into tr for the next run. The
// trace's previous contents are discarded; storage is reused.
func (h *Hierarchy) BeginTraceRecord(tr *DVFSTrace) {
	tr.entries = tr.entries[:0]
	tr.valid = false
	h.trace = tr
	h.traceMode = traceRecord
}

// EndTraceRecord finishes recording. The trace becomes valid unless
// recording aborted mid-run (an entry field overflowed its packed width).
func (h *Hierarchy) EndTraceRecord() {
	if h.traceMode == traceRecord {
		h.trace.snapshot(h)
		h.trace.valid = true
	}
	h.trace = nil
	h.traceMode = traceOff
}

// abortRecord discards an in-progress recording; the run continues as a
// plain simulation and the trace stays invalid.
func (h *Hierarchy) abortRecord() {
	h.trace = nil
	h.traceMode = traceOff
}

// BeginTraceReplay arms replay of a valid trace for the next run and
// reports whether replay was armed.
func (h *Hierarchy) BeginTraceReplay(tr *DVFSTrace) bool {
	if !tr.valid {
		return false
	}
	h.trace = tr
	h.tracePos = 0
	h.traceMode = traceReplay
	return true
}

// EndTraceReplay finishes a replayed run: it checks the pipeline consumed
// exactly the recorded access sequence (anything else means the simulation
// is non-deterministic, which the whole engine relies on) and installs the
// recorded statistics into the hierarchy for collation.
func (h *Hierarchy) EndTraceReplay() {
	if h.traceMode != traceReplay {
		panic("mem: EndTraceReplay without BeginTraceReplay")
	}
	if h.tracePos != len(h.trace.entries) {
		panic("mem: DVFS trace replay out of sync with pipeline")
	}
	h.trace.restore(h)
	h.trace = nil
	h.traceMode = traceOff
}

// recordEntry appends the decomposition of one pipeline-level access whose
// total latency was lat and whose DRAM row hit/miss counts are in
// h.recHits/h.recMisses.
func (h *Hierarchy) recordEntry(lat int) {
	fixed := lat - h.recHits*h.dramHitCycles - h.recMisses*h.dramMissCycles
	if uint(fixed) > traceFixedMask || h.recHits > traceCountLimit || h.recMisses > traceCountLimit {
		h.abortRecord()
		return
	}
	h.trace.entries = append(h.trace.entries,
		uint32(fixed)|uint32(h.recMisses)<<traceMissShift|uint32(h.recHits)<<traceHitShift)
}

// replayLat pops the next recorded access and rebuilds its latency with
// the current frequency's DRAM cycle table.
func (h *Hierarchy) replayLat() int {
	e := h.trace.entries[h.tracePos]
	h.tracePos++
	return int(e&traceFixedMask) +
		int(e>>traceHitShift)*h.dramHitCycles +
		int(e>>traceMissShift&traceCountLimit)*h.dramMissCycles
}

// Len returns the number of recorded accesses.
func (t *DVFSTrace) Len() int { return len(t.entries) }
