package mem

import (
	"testing"

	"gemstone/internal/xrand"
)

// driveHier runs a deterministic mixed access sequence against h and
// returns every latency (and store-exclusive outcome) the "pipeline"
// observed. The sequence exercises every pipeline-level entry point the
// DVFS trace covers — fetches, loads, stores (aligned, unaligned and
// streaming runs), exclusive pairs, barriers, snoops and wrong-path
// probes — over a footprint large enough to miss in every cache level
// and walk the page table.
func driveHier(h *Hierarchy) []int {
	rng := xrand.New(0xD1F5)
	var out []int
	pc := uint64(0x10000)
	for i := 0; i < 20000; i++ {
		pc += 4
		if rng.Bool(0.1) {
			pc = 0x10000 + uint64(rng.Intn(1<<22))&^3 // far jump
		}
		out = append(out, h.FetchAccess(pc))
		switch {
		case rng.Bool(0.30):
			addr := uint64(rng.Intn(1 << 24))
			out = append(out, h.LoadAccess(addr, rng.Bool(0.05)))
		case rng.Bool(0.30):
			addr := uint64(rng.Intn(1 << 24))
			out = append(out, h.StoreAccess(addr, 4, rng.Bool(0.05)))
		case rng.Bool(0.05):
			// Streaming store run long enough to trigger merging.
			base := uint64(0x200_0000) + uint64(i)*4
			for j := uint64(0); j < 8; j++ {
				out = append(out, h.StoreAccess(base+j*4, 4, false))
			}
		case rng.Bool(0.05):
			addr := uint64(rng.Intn(1 << 20))
			out = append(out, h.LoadExclusive(addr))
			if rng.Bool(0.3) {
				h.InjectSnoop(addr) // clears the monitor: strex must fail
			}
			lat, ok := h.StoreExclusive(addr)
			flag := 0
			if ok {
				flag = 1
			}
			out = append(out, lat, flag)
		case rng.Bool(0.02):
			h.Barrier()
		case rng.Bool(0.02):
			h.WrongPathProbe(pc + 0x123456)
		}
	}
	return out
}

// hierPMUState snapshots every statistics block a pmu capture reads.
func hierPMUState(h *Hierarchy) hierSnapshot {
	var tr DVFSTrace
	tr.snapshot(h)
	return tr.snap
}

// TestDVFSTraceReplayMatchesFreshSimulation pins the replay engine's
// contract: recording a run at one frequency and replaying it at another
// yields, bit for bit, the latencies, store-exclusive outcomes and
// statistics of a full simulation at the second frequency.
func TestDVFSTraceReplayMatchesFreshSimulation(t *testing.T) {
	const f1, f2 = 0.6, 1.9

	// Record at f1.
	rec := NewHierarchy(testHierConfig())
	rec.SetFrequencyGHz(f1)
	var tr DVFSTrace
	rec.BeginTraceRecord(&tr)
	driveHier(rec)
	rec.EndTraceRecord()
	if !tr.Valid() {
		t.Fatal("recording aborted: latency decomposition overflowed")
	}

	// Replay at f2 on the same (Reset) hierarchy.
	rec.Reset()
	rec.SetFrequencyGHz(f2)
	if !rec.BeginTraceReplay(&tr) {
		t.Fatal("BeginTraceReplay refused a valid trace")
	}
	replayed := driveHier(rec)
	rec.EndTraceReplay()
	replayState := hierPMUState(rec)

	// Full simulation at f2 on a fresh hierarchy.
	fresh := NewHierarchy(testHierConfig())
	fresh.SetFrequencyGHz(f2)
	live := driveHier(fresh)
	liveState := hierPMUState(fresh)

	if len(replayed) != len(live) {
		t.Fatalf("replay observed %d values, full simulation %d", len(replayed), len(live))
	}
	for i := range live {
		if replayed[i] != live[i] {
			t.Fatalf("value %d: replay=%d full=%d", i, replayed[i], live[i])
		}
	}
	if replayState != liveState {
		t.Errorf("replayed statistics diverge from full simulation:\nreplay: %+v\nfull:   %+v",
			replayState, liveState)
	}
}

// TestDVFSTraceSameFrequencyRoundTrip replays at the recording frequency:
// the degenerate sweep point must also be exact.
func TestDVFSTraceSameFrequencyRoundTrip(t *testing.T) {
	h := NewHierarchy(testHierConfig())
	h.SetFrequencyGHz(1.0)
	var tr DVFSTrace
	h.BeginTraceRecord(&tr)
	recorded := driveHier(h)
	h.EndTraceRecord()
	if !tr.Valid() {
		t.Fatal("recording aborted")
	}
	recState := hierPMUState(h)

	h.Reset()
	h.SetFrequencyGHz(1.0)
	if !h.BeginTraceReplay(&tr) {
		t.Fatal("BeginTraceReplay refused a valid trace")
	}
	replayed := driveHier(h)
	h.EndTraceReplay()

	for i := range recorded {
		if replayed[i] != recorded[i] {
			t.Fatalf("value %d: replay=%d recorded=%d", i, replayed[i], recorded[i])
		}
	}
	if got := hierPMUState(h); got != recState {
		t.Errorf("round-trip statistics diverge:\nreplay: %+v\nrecord: %+v", got, recState)
	}
}

// TestDVFSTraceInvalidReplayRefused pins the safety property: an invalid
// (never-completed) trace cannot be armed for replay.
func TestDVFSTraceInvalidReplayRefused(t *testing.T) {
	h := NewHierarchy(testHierConfig())
	var tr DVFSTrace
	if h.BeginTraceReplay(&tr) {
		t.Fatal("BeginTraceReplay armed an invalid trace")
	}
	if h.traceMode != traceOff {
		t.Fatal("refused replay left the hierarchy in a trace mode")
	}
}
