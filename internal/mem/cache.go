// Package mem implements the memory-system substrate shared by every CPU
// model in the repository: set-associative write-back caches, TLBs, a
// banked DRAM model and the composed cache/TLB hierarchy the pipeline
// models access.
//
// The same implementation is configured twice — once as the reference
// "hardware" platform and once as the "gem5" model with the specification
// defects the paper documents (see internal/hw and internal/gem5). Keeping
// a single implementation means every divergence between the two platforms
// is attributable to an explicit configuration knob, which is exactly the
// property the GemStone methodology is designed to detect.
package mem

import "fmt"

// CacheConfig describes the geometry and policies of one cache level.
type CacheConfig struct {
	// Name identifies the cache in statistics output (e.g. "l1d").
	Name string
	// SizeBytes is the total capacity. Must be a multiple of LineBytes*Assoc.
	SizeBytes int
	// LineBytes is the line size (power of two).
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// LatencyCycles is the hit latency in core cycles.
	LatencyCycles int
	// WriteAllocate controls whether write misses allocate a line.
	WriteAllocate bool
	// NextLinePrefetch enables a simple next-line prefetcher on read misses.
	NextLinePrefetch bool
	// PrefetchDegree is the number of sequential lines fetched per trigger.
	PrefetchDegree int
}

// Validate checks the configuration for internal consistency.
func (c CacheConfig) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: cache %q: line size %d is not a positive power of two", c.Name, c.LineBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("mem: cache %q: associativity %d must be positive", c.Name, c.Assoc)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("mem: cache %q: size %d is not a multiple of line*assoc", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: cache %q: set count %d is not a power of two", c.Name, sets)
	}
	if c.LatencyCycles < 0 {
		return fmt.Errorf("mem: cache %q: negative latency", c.Name)
	}
	return nil
}

// CacheStats accumulates the raw event counts a cache produces. The PMU and
// gem5 statistics layers derive their event values from these fields.
type CacheStats struct {
	ReadAccesses  uint64 // demand read lookups
	WriteAccesses uint64 // demand write lookups
	ReadMisses    uint64 // demand read lookups that missed
	WriteMisses   uint64 // demand write lookups that missed
	ReadRefills   uint64 // lines allocated due to read misses
	WriteRefills  uint64 // lines allocated due to write misses
	Writebacks    uint64 // dirty lines evicted to the next level
	Prefetches    uint64 // prefetch fills issued
	PrefetchHits  uint64 // demand hits on prefetched-but-unused lines
	Invalidations uint64 // lines removed by coherence snoops
}

// Accesses returns total demand lookups.
func (s *CacheStats) Accesses() uint64 { return s.ReadAccesses + s.WriteAccesses }

// Misses returns total demand misses.
func (s *CacheStats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// Refills returns total demand line fills.
func (s *CacheStats) Refills() uint64 { return s.ReadRefills + s.WriteRefills }

// Line metadata bits (see Cache.meta).
const (
	metaDirty      uint8 = 1 << 0
	metaPrefetched uint8 = 1 << 1 // filled by prefetch and not yet demand-touched
)

// AccessResult reports the outcome of a cache access to the caller, which
// is responsible for charging latency and propagating traffic downstream.
type AccessResult struct {
	Hit bool
	// WritebackAddr is the line-aligned address of a dirty victim that must
	// be written to the next level. Valid only when Writeback is true.
	Writeback     bool
	WritebackAddr uint64
	// PrefetchAddrs are line-aligned addresses the prefetcher wants filled.
	PrefetchAddrs []uint64
}

// Cache is a set-associative write-back cache with true-LRU replacement.
// It is a pure state machine: it records hits/misses and reports required
// downstream actions, but never touches other levels itself.
// Cache state is held in parallel arrays rather than a []struct so that the
// associative scans (lookup, victim) walk densely packed words: a 16-way tag
// scan touches 128 bytes instead of the ~384 a line-struct layout costs.
type Cache struct {
	cfg   CacheConfig
	Stats CacheStats
	// tags holds the line-aligned address with the low bit set for valid
	// entries and 0 for invalid ones (line addresses always have zero low
	// bits, so the encoding is unambiguous). One comparison both matches the
	// tag and checks validity.
	tags     []uint64
	lastUse  []uint64
	meta     []uint8 // metaDirty | metaPrefetched
	sets     int
	assoc    int
	lineMask uint64
	setShift uint
	setMask  uint64
	tick     uint64
	// last memoises the index of the most recently touched line: spatially
	// local access runs (stream loads walking a line, sequential fetch
	// groups) hit it with a single compare instead of an associative scan.
	// It is pure memoisation — replacement state and statistics are
	// byte-identical with or without it.
	last  int
	pfBuf [8]uint64 // reusable prefetch-address buffer
}

// NewCache builds a cache from cfg. It panics if cfg is invalid; callers
// construct configurations from code, not user input, so an invalid config
// is a programming error.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	setShift := uint(0)
	for 1<<setShift != cfg.LineBytes {
		setShift++
	}
	return &Cache{
		cfg:      cfg,
		tags:     make([]uint64, sets*cfg.Assoc),
		lastUse:  make([]uint64, sets*cfg.Assoc),
		meta:     make([]uint8, sets*cfg.Assoc),
		sets:     sets,
		assoc:    cfg.Assoc,
		lineMask: ^uint64(cfg.LineBytes - 1),
		setShift: setShift,
		setMask:  uint64(sets - 1),
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// LatencyCycles returns the configured hit latency.
func (c *Cache) LatencyCycles() int { return c.cfg.LatencyCycles }

func (c *Cache) set(addr uint64) int {
	return int((addr >> c.setShift) & c.setMask)
}

// lookup returns the way index holding addr's line, or -1.
func (c *Cache) lookup(addr uint64) int {
	key := (addr & c.lineMask) | 1
	if c.tags[c.last] == key {
		return c.last
	}
	base := c.set(addr) * c.assoc
	// Subslicing lets the compiler drop the per-way bounds checks.
	tags := c.tags[base : base+c.assoc]
	for w, tag := range tags {
		if tag == key {
			c.last = base + w
			return base + w
		}
	}
	return -1
}

// victim returns the LRU way index in addr's set, preferring invalid ways.
func (c *Cache) victim(addr uint64) int {
	base := c.set(addr) * c.assoc
	tags := c.tags[base : base+c.assoc]
	lastUse := c.lastUse[base : base+c.assoc]
	best := 0
	var bestUse uint64 = ^uint64(0)
	for w, tag := range tags {
		if tag == 0 {
			return base + w
		}
		if u := lastUse[w]; u < bestUse {
			bestUse = u
			best = w
		}
	}
	return base + best
}

// fill installs addr's line, returning any dirty victim.
func (c *Cache) fill(addr uint64, dirty, prefetched bool) (wbAddr uint64, wb bool) {
	idx := c.victim(addr)
	if c.tags[idx] != 0 && c.meta[idx]&metaDirty != 0 {
		wbAddr, wb = c.tags[idx]&^uint64(1), true
		c.Stats.Writebacks++
	}
	c.tick++
	c.tags[idx] = (addr & c.lineMask) | 1
	c.lastUse[idx] = c.tick
	var m uint8
	if dirty {
		m = metaDirty
	}
	if prefetched {
		m |= metaPrefetched
	}
	c.meta[idx] = m
	c.last = idx
	return wbAddr, wb
}

// Reset restores the cache to its just-constructed state (all lines
// invalid, statistics and LRU clock zeroed) without reallocating the line
// array. SimContext reuse depends on Reset being indistinguishable from
// NewCache with the same configuration.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.lastUse)
	clear(c.meta)
	c.Stats = CacheStats{}
	c.tick = 0
	c.last = 0
}

// hitFast is the demand-hit fast path of Access: when addr hits it applies
// the full hit bookkeeping (access count, LRU touch, prefetch-hit and dirty
// flags) and returns true; on a miss it records nothing and returns false,
// and the caller falls back to Access for the miss path. Statistics and
// replacement state stay byte-identical to calling Access directly — the
// fast path only avoids materialising an AccessResult on hits.
func (c *Cache) hitFast(addr uint64, write bool) bool {
	idx := c.lookup(addr)
	if idx < 0 {
		return false
	}
	if write {
		c.Stats.WriteAccesses++
	} else {
		c.Stats.ReadAccesses++
	}
	c.tick++
	c.lastUse[idx] = c.tick
	m := c.meta[idx]
	if m&metaPrefetched != 0 {
		c.Stats.PrefetchHits++
		m &^= metaPrefetched
	}
	if write {
		m |= metaDirty
	}
	c.meta[idx] = m
	return true
}

// hitLast is hitFast restricted to the memoised line: it applies the full
// hit bookkeeping when the last-touched line matches and reports false
// otherwise (recording nothing). Unlike hitFast it is small enough to
// inline, so repeat accesses to the same line cost no call at all.
func (c *Cache) hitLast(addr uint64, write bool) bool {
	idx := c.last
	if c.tags[idx] != (addr&c.lineMask)|1 {
		return false
	}
	if write {
		c.Stats.WriteAccesses++
	} else {
		c.Stats.ReadAccesses++
	}
	c.tick++
	c.lastUse[idx] = c.tick
	m := c.meta[idx]
	if m&metaPrefetched != 0 {
		c.Stats.PrefetchHits++
		m &^= metaPrefetched
	}
	if write {
		m |= metaDirty
	}
	c.meta[idx] = m
	return true
}

// missDemand applies the demand-miss path of Access for an address the
// caller has just observed to miss (hitFast returned false with no
// intervening cache mutations). Splitting it from Access spares the miss
// path a second associative scan; statistics and replacement state are
// byte-identical to calling Access.
func (c *Cache) missDemand(addr uint64, write bool) AccessResult {
	var res AccessResult
	if write {
		c.Stats.WriteAccesses++
		c.Stats.WriteMisses++
		if c.cfg.WriteAllocate {
			c.Stats.WriteRefills++
			res.WritebackAddr, res.Writeback = c.fill(addr, true, false)
		}
		return res
	}
	c.Stats.ReadAccesses++
	c.Stats.ReadMisses++
	c.Stats.ReadRefills++
	res.WritebackAddr, res.Writeback = c.fill(addr, false, false)
	if c.cfg.NextLinePrefetch {
		deg := c.cfg.PrefetchDegree
		if deg <= 0 {
			deg = 1
		}
		if deg > len(c.pfBuf) {
			deg = len(c.pfBuf)
		}
		line := uint64(c.cfg.LineBytes)
		base := addr & c.lineMask
		n := 0
		for i := 1; i <= deg; i++ {
			pa := base + uint64(i)*line
			if c.lookup(pa) < 0 {
				c.pfBuf[n] = pa
				n++
			}
		}
		res.PrefetchAddrs = c.pfBuf[:n]
	}
	return res
}

// Access performs a demand read or write lookup. On a miss with allocation
// the line is installed (the caller is assumed to fetch it from the next
// level and charge the appropriate latency). The returned AccessResult
// lists the dirty victim, if any, and prefetch requests to issue.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	var res AccessResult
	if write {
		c.Stats.WriteAccesses++
	} else {
		c.Stats.ReadAccesses++
	}
	if idx := c.lookup(addr); idx >= 0 {
		c.tick++
		c.lastUse[idx] = c.tick
		m := c.meta[idx]
		if m&metaPrefetched != 0 {
			c.Stats.PrefetchHits++
			m &^= metaPrefetched
		}
		if write {
			m |= metaDirty
		}
		c.meta[idx] = m
		res.Hit = true
		return res
	}
	// Miss.
	if write {
		c.Stats.WriteMisses++
		if c.cfg.WriteAllocate {
			c.Stats.WriteRefills++
			res.WritebackAddr, res.Writeback = c.fill(addr, true, false)
		}
		// Write-no-allocate misses pass through to the next level; the
		// hierarchy handles that traffic.
	} else {
		c.Stats.ReadMisses++
		c.Stats.ReadRefills++
		res.WritebackAddr, res.Writeback = c.fill(addr, false, false)
		if c.cfg.NextLinePrefetch {
			deg := c.cfg.PrefetchDegree
			if deg <= 0 {
				deg = 1
			}
			if deg > len(c.pfBuf) {
				deg = len(c.pfBuf)
			}
			line := uint64(c.cfg.LineBytes)
			base := addr & c.lineMask
			n := 0
			for i := 1; i <= deg; i++ {
				pa := base + uint64(i)*line
				if c.lookup(pa) < 0 {
					c.pfBuf[n] = pa
					n++
				}
			}
			res.PrefetchAddrs = c.pfBuf[:n]
		}
	}
	return res
}

// AccessWriteNoAlloc performs a write lookup that never allocates on a
// miss, regardless of the configured write-allocate policy. The merging
// write buffer in the hierarchy uses this for detected streaming stores.
func (c *Cache) AccessWriteNoAlloc(addr uint64) AccessResult {
	var res AccessResult
	c.Stats.WriteAccesses++
	if idx := c.lookup(addr); idx >= 0 {
		c.tick++
		c.lastUse[idx] = c.tick
		m := c.meta[idx] | metaDirty
		if m&metaPrefetched != 0 {
			c.Stats.PrefetchHits++
			m &^= metaPrefetched
		}
		c.meta[idx] = m
		res.Hit = true
		return res
	}
	c.Stats.WriteMisses++
	return res
}

// Prefetch installs a line speculatively (no demand stats recorded). The
// returned values describe a dirty victim writeback, if one occurred.
func (c *Cache) Prefetch(addr uint64) (wbAddr uint64, wb bool) {
	if c.lookup(addr) >= 0 {
		return 0, false
	}
	c.Stats.Prefetches++
	return c.fill(addr, false, true)
}

// prefetchAbsent is Prefetch for a line the caller knows is not resident:
// the candidates an AccessResult carries were filtered against the cache,
// and the only mutations since are prefetch fills of other lines (which can
// only evict). Skipping Prefetch's residency scan is therefore
// byte-identical.
func (c *Cache) prefetchAbsent(addr uint64) (wbAddr uint64, wb bool) {
	c.Stats.Prefetches++
	return c.fill(addr, false, true)
}

// Contains reports whether addr's line is resident. Used by tests and by
// the snoop filter.
func (c *Cache) Contains(addr uint64) bool { return c.lookup(addr) >= 0 }

// Invalidate removes addr's line if present, returning whether it was dirty
// (in which case the caller must write it back).
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasPresent bool) {
	idx := c.lookup(addr)
	if idx < 0 {
		return false, false
	}
	c.Stats.Invalidations++
	dirty := c.meta[idx]&metaDirty != 0
	c.tags[idx] = 0
	c.meta[idx] &^= metaDirty
	return dirty, true
}

// ResidentLines returns the number of valid lines. Used by property tests.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, tag := range c.tags {
		if tag != 0 {
			n++
		}
	}
	return n
}
