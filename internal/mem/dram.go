package mem

import "fmt"

// DRAMConfig describes the off-chip memory model.
//
// The model is a banked open-page DRAM: each access maps to a bank, and the
// latency depends on whether the access hits the bank's open row. This is
// the level of detail the paper's findings require — Butko et al. and the
// microbenchmark analysis (Fig. 4) both identify "an overly simple DRAM
// model" and "DRAM memory latency too low" as gem5 error sources, which we
// reproduce with a lower RowHit/RowMiss latency in the gem5 configuration.
type DRAMConfig struct {
	// Banks is the number of independent banks (power of two).
	Banks int
	// RowBytes is the size of an open row per bank.
	RowBytes int
	// RowHitNs is the access latency when the row is already open.
	RowHitNs float64
	// RowMissNs is the access latency when a precharge+activate is needed.
	RowMissNs float64
	// BandwidthBytesPerNs bounds sustained throughput; each access to a
	// line adds LineBytes/Bandwidth of serialisation delay.
	BandwidthBytesPerNs float64
}

// Validate checks the configuration.
func (c DRAMConfig) Validate() error {
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("mem: dram: bank count %d not a positive power of two", c.Banks)
	}
	if c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("mem: dram: row size %d not a positive power of two", c.RowBytes)
	}
	if c.RowHitNs <= 0 || c.RowMissNs < c.RowHitNs {
		return fmt.Errorf("mem: dram: bad latencies hit=%g miss=%g", c.RowHitNs, c.RowMissNs)
	}
	if c.BandwidthBytesPerNs <= 0 {
		return fmt.Errorf("mem: dram: bandwidth must be positive")
	}
	return nil
}

// DRAMStats accumulates raw DRAM event counts.
type DRAMStats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
}

// Accesses returns total reads+writes.
func (s *DRAMStats) Accesses() uint64 { return s.Reads + s.Writes }

// DRAM models off-chip memory latency. Access returns nanoseconds; the
// hierarchy converts to core cycles at the current frequency, which is what
// makes memory-bound workloads scale sub-linearly with DVFS (Fig. 8).
type DRAM struct {
	cfg      DRAMConfig
	Stats    DRAMStats
	openRows []uint64
	rowValid []bool
	bankMask uint64
	rowShift uint
}

// NewDRAM builds a DRAM model from cfg, panicking on invalid configuration.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rowShift := uint(0)
	for 1<<rowShift != cfg.RowBytes {
		rowShift++
	}
	return &DRAM{
		cfg:      cfg,
		openRows: make([]uint64, cfg.Banks),
		rowValid: make([]bool, cfg.Banks),
		bankMask: uint64(cfg.Banks - 1),
		rowShift: rowShift,
	}
}

// Config returns the DRAM configuration.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

// Access performs one line-sized transfer and returns its latency in ns.
func (d *DRAM) Access(addr uint64, write bool, lineBytes int) float64 {
	lat := d.cfg.RowMissNs
	if d.AccessRowHit(addr, write) {
		lat = d.cfg.RowHitNs
	}
	return lat + float64(lineBytes)/d.cfg.BandwidthBytesPerNs
}

// AccessRowHit performs one transfer's state update and reports whether it
// hit the open row. The hierarchy's hot path uses this with latencies
// precomputed as integer cycles (RowHitCycles/RowMissCycles in Hierarchy),
// avoiding per-access float math; Access keeps the ns-returning form.
func (d *DRAM) AccessRowHit(addr uint64, write bool) bool {
	if write {
		d.Stats.Writes++
	} else {
		d.Stats.Reads++
	}
	row := addr >> d.rowShift
	bank := int(row & d.bankMask)
	if d.rowValid[bank] && d.openRows[bank] == row {
		d.Stats.RowHits++
		return true
	}
	d.Stats.RowMisses++
	d.openRows[bank] = row
	d.rowValid[bank] = true
	return false
}

// Reset restores the DRAM model to its just-constructed state (all banks
// closed, statistics zeroed) without reallocating the row arrays.
func (d *DRAM) Reset() {
	d.Stats = DRAMStats{}
	clear(d.openRows)
	clear(d.rowValid)
}
