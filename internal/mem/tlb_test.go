package mem

import (
	"testing"
	"testing/quick"

	"gemstone/internal/xrand"
)

func TestTLBConfigValidate(t *testing.T) {
	good := TLBConfig{Name: "t", Entries: 32, Assoc: 32}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []TLBConfig{
		{Name: "t", Entries: 0, Assoc: 1},
		{Name: "t", Entries: 32, Assoc: 0},
		{Name: "t", Entries: 30, Assoc: 4},     // not divisible
		{Name: "t", Entries: 4 * 12, Assoc: 4}, // 12 sets, not pow2
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestTLBMissThenRefillHits(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "itb", Entries: 32, Assoc: 32})
	addr := uint64(0x12345678)
	if tlb.Lookup(addr) {
		t.Fatal("cold lookup must miss")
	}
	tlb.Refill(addr)
	if !tlb.Lookup(addr) {
		t.Fatal("lookup after refill must hit")
	}
	// Same page, different offset.
	if !tlb.Lookup(addr + 100) {
		t.Fatal("same-page lookup must hit")
	}
	// Different page.
	if tlb.Lookup(addr + PageBytes) {
		t.Fatal("different-page lookup must miss")
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	// Fully associative, 4 entries: touching 5 pages evicts the LRU page.
	tlb := NewTLB(TLBConfig{Name: "t", Entries: 4, Assoc: 4})
	for i := uint64(0); i < 5; i++ {
		a := i * PageBytes
		tlb.Lookup(a)
		tlb.Refill(a)
	}
	if tlb.Contains(0) {
		t.Fatal("LRU page should have been evicted")
	}
	for i := uint64(1); i < 5; i++ {
		if !tlb.Contains(i * PageBytes) {
			t.Fatalf("page %d should be resident", i)
		}
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "t", Entries: 8, Assoc: 2})
	tlb.Refill(0)
	tlb.Refill(PageBytes)
	tlb.Flush()
	if tlb.Contains(0) || tlb.Contains(PageBytes) {
		t.Fatal("flush must invalidate all entries")
	}
	if tlb.Stats.Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1", tlb.Stats.Flushes)
	}
}

// Property: hits + misses == accesses, and refills never exceed misses+1
// window (every refill in our usage follows a miss).
func TestTLBStatsInvariant(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := xrand.New(seed)
		tlb := NewTLB(TLBConfig{Name: "t", Entries: 16, Assoc: 4})
		steps := int(n%1000) + 1
		for i := 0; i < steps; i++ {
			addr := uint64(rng.Intn(64)) * PageBytes
			if !tlb.Lookup(addr) {
				tlb.Refill(addr)
			}
		}
		s := tlb.Stats
		return s.Accesses == uint64(steps) &&
			s.Hits() == s.Accesses-s.Misses &&
			s.Refills == s.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The paper's TLB insight: a unified L2 TLB of size 2N has a better hit
// ratio than two split TLBs of size N when the I/D footprints are skewed.
func TestUnifiedTLBBeatsSplitOnSkewedFootprint(t *testing.T) {
	unified := NewTLB(TLBConfig{Name: "u", Entries: 64, Assoc: 4})
	splitI := NewTLB(TLBConfig{Name: "si", Entries: 32, Assoc: 4})
	splitD := NewTLB(TLBConfig{Name: "sd", Entries: 32, Assoc: 4})

	rng := xrand.New(7)
	missUnified, missSplit := 0, 0
	for i := 0; i < 20000; i++ {
		// Skew: small code footprint (8 pages), large data footprint (56).
		iaddr := uint64(rng.Intn(8)) * PageBytes
		daddr := uint64(0x100000 + rng.Intn(56)*PageBytes)
		for _, a := range []uint64{iaddr, daddr} {
			if !unified.Lookup(a) {
				unified.Refill(a)
				missUnified++
			}
		}
		if !splitI.Lookup(iaddr) {
			splitI.Refill(iaddr)
			missSplit++
		}
		if !splitD.Lookup(daddr) {
			splitD.Refill(daddr)
			missSplit++
		}
	}
	if missUnified >= missSplit {
		t.Fatalf("unified misses %d >= split misses %d; expected unified to win on skewed footprints",
			missUnified, missSplit)
	}
}
