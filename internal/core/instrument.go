package core

import (
	"time"

	"gemstone/internal/obs"
	"gemstone/internal/platform"
)

// registryObserver feeds campaign lifecycle events and per-run simulator
// tallies into an obs.Registry, giving campaigns a live Prometheus
// surface: scraping /metrics mid-campaign shows run throughput, the
// run-cache hit ratio and the architectural-event totals (stall
// breakdown, cache and TLB misses) of everything simulated so far.
type registryObserver struct {
	campaigns   *obs.Counter
	runs        *obs.Counter // result: simulated|cache_hit|error|skipped
	inflight    *obs.Gauge
	jobs        *obs.Gauge // current campaign size
	hitRatio    *obs.Gauge // run-cache hit ratio of the last campaign
	simSeconds  *obs.Histogram
	stallCycles *obs.Counter // cause: fetch|dep|mem|branch|barrier|rob
	simCycles   *obs.Counter
	simInsts    *obs.Counter
	cacheMisses *obs.Counter // level: l1i|l1d|l2
	tlbMisses   *obs.Counter // side: i|d
	stageTime   *obs.Counter // stage: plan|cache|sim|wall
	fidelity    *obs.Counter // tier: detailed|atomic
}

// NewRegistryObserver returns a CollectObserver that exports campaign
// progress and simulator tallies as gemstone_* metrics in reg. Combine it
// with other observers via MultiObserver; all callbacks are safe for
// concurrent use (the registry serialises internally).
func NewRegistryObserver(reg *obs.Registry) CollectObserver {
	return &registryObserver{
		campaigns: reg.Counter("gemstone_campaigns_total",
			"Campaigns completed (CollectDone callbacks)."),
		runs: reg.Counter("gemstone_campaign_runs_total",
			"Campaign runs by outcome.", "result"),
		inflight: reg.Gauge("gemstone_campaign_inflight_runs",
			"Simulations currently executing."),
		jobs: reg.Gauge("gemstone_campaign_jobs",
			"Size of the most recently started campaign."),
		hitRatio: reg.Gauge("gemstone_campaign_cache_hit_ratio",
			"Run-cache hit ratio of the most recently finished campaign."),
		simSeconds: reg.Histogram("gemstone_run_sim_seconds",
			"Wall time of one simulated run.", nil),
		stallCycles: reg.Counter("gemstone_pipeline_stall_cycles_total",
			"Pipeline stall cycles by cause, summed over simulated runs.", "cause"),
		simCycles: reg.Counter("gemstone_sim_cycles_total",
			"Simulated CPU cycles."),
		simInsts: reg.Counter("gemstone_sim_instructions_total",
			"Simulated committed instructions."),
		cacheMisses: reg.Counter("gemstone_cache_misses_total",
			"Cache misses by level, summed over simulated runs.", "level"),
		tlbMisses: reg.Counter("gemstone_tlb_misses_total",
			"First-level TLB refills by side, summed over simulated runs.", "side"),
		stageTime: reg.Counter("gemstone_campaign_stage_seconds_total",
			"Cumulative campaign time by stage.", "stage"),
		fidelity: reg.Counter("gemstone_fidelity_runs_total",
			"Simulated runs by fidelity tier.", "tier"),
	}
}

// CollectStart implements CollectObserver.
func (o *registryObserver) CollectStart(_ string, totalJobs int) {
	o.jobs.Set(float64(totalJobs))
}

// RunStart implements CollectObserver.
func (o *registryObserver) RunStart(RunKey) { o.inflight.Add(1) }

// CacheHit implements CollectObserver.
func (o *registryObserver) CacheHit(RunKey) { o.runs.Inc("cache_hit") }

// RunDone implements CollectObserver.
func (o *registryObserver) RunDone(_ RunKey, m platform.Measurement, simTime time.Duration) {
	o.inflight.Add(-1)
	o.runs.Inc("simulated")
	o.fidelity.Inc(m.Fidelity.String())
	o.simSeconds.Observe(simTime.Seconds())

	t := &m.Sample.Tally
	o.stallCycles.Add(float64(t.FetchStallCycles), "fetch")
	o.stallCycles.Add(float64(t.DepStallCycles), "dep")
	o.stallCycles.Add(float64(t.MemStallCycles), "mem")
	o.stallCycles.Add(float64(t.BranchStallCycles), "branch")
	o.stallCycles.Add(float64(t.BarrierStallCycles), "barrier")
	o.stallCycles.Add(float64(t.ROBStallCycles), "rob")
	o.simCycles.Add(float64(t.Cycles))
	o.simInsts.Add(float64(t.Committed))
	o.cacheMisses.Add(float64(m.Sample.L1I.Misses()), "l1i")
	o.cacheMisses.Add(float64(m.Sample.L1D.Misses()), "l1d")
	o.cacheMisses.Add(float64(m.Sample.L2.Misses()), "l2")
	o.tlbMisses.Add(float64(m.Sample.ITLB.Misses), "i")
	o.tlbMisses.Add(float64(m.Sample.DTLB.Misses), "d")
}

// RunError implements CollectObserver.
func (o *registryObserver) RunError(RunKey, error) {
	o.inflight.Add(-1)
	o.runs.Inc("error")
}

// CollectDone implements CollectObserver.
func (o *registryObserver) CollectDone(stats CollectStats) {
	o.campaigns.Inc()
	o.runs.Add(float64(stats.Skipped), "skipped")
	if stats.Jobs > 0 {
		o.hitRatio.Set(float64(stats.CacheHits) / float64(stats.Jobs))
	}
	o.stageTime.Add(stats.PlanTime.Seconds(), "plan")
	o.stageTime.Add(stats.CacheTime.Seconds(), "cache")
	o.stageTime.Add(stats.SimTime.Seconds(), "sim")
	o.stageTime.Add(stats.WallTime.Seconds(), "wall")
}
