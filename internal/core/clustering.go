package core

import (
	"fmt"
	"sort"

	"gemstone/internal/pmu"
	"gemstone/internal/stats"
)

// DefaultWorkloadClusters is the cluster count used for the Fig. 3
// analysis (the paper's HCA yields 16 groups over 45 workloads).
const DefaultWorkloadClusters = 16

// Fig3Row is one bar of Fig. 3: a workload, its HCA cluster designation,
// and its execution-time error.
type Fig3Row struct {
	Workload string
	Cluster  int
	PE       float64
}

// ClusterSummary aggregates one workload cluster.
type ClusterSummary struct {
	Label     int
	Workloads []string
	MeanPE    float64
}

// WorkloadClustering is the result of HCA over the hardware PMC behaviour
// of the workloads, combined with the model's execution-time errors.
type WorkloadClustering struct {
	Cluster string
	FreqMHz int
	K       int
	// Labels maps workload name to cluster label (0-based).
	Labels map[string]int
	// Rows is Fig. 3: ordered by cluster designation, then name.
	Rows []Fig3Row
	// Clusters summarises each group, ordered by label.
	Clusters []ClusterSummary
}

// pmcRateMatrix builds the (workload × event) rate matrix from hardware
// runs at one operating point, dropping zero-variance events. It returns
// the matrix, the workload names (row order) and the retained events.
func pmcRateMatrix(hw *RunSet, cluster string, freqMHz int) ([][]float64, []string, []pmu.Event, error) {
	var names []string
	for key := range hw.Runs {
		if key.Cluster == cluster && key.FreqMHz == freqMHz {
			names = append(names, key.Workload)
		}
	}
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("core: no %s runs at %d MHz in %s", cluster, freqMHz, hw.Platform)
	}
	sort.Strings(names)

	events := pmu.AllEvents()
	raw := make([][]float64, len(names))
	for i, name := range names {
		m := hw.Runs[RunKey{Workload: name, Cluster: cluster, FreqMHz: freqMHz}]
		raw[i] = make([]float64, len(events))
		for j, e := range events {
			raw[i][j] = m.Sample.Rate(e)
		}
	}
	// Drop events with no variance across workloads (they carry no
	// clustering information; CPU cycles rate is constant at fixed f).
	var keep []int
	for j := range events {
		col := make([]float64, len(names))
		for i := range names {
			col[i] = raw[i][j]
		}
		if stats.StdDev(col) > 0 {
			keep = append(keep, j)
		}
	}
	X := make([][]float64, len(names))
	kept := make([]pmu.Event, len(keep))
	for i := range names {
		X[i] = make([]float64, len(keep))
		for c, j := range keep {
			X[i][c] = raw[i][j]
		}
	}
	for c, j := range keep {
		kept[c] = events[j]
	}
	return X, names, kept, nil
}

// ClusterWorkloads performs the Fig. 3 analysis: HCA (average linkage,
// Euclidean distance over standardised PMC rates) groups the workloads,
// and each group is annotated with the model's execution-time errors.
func ClusterWorkloads(hw, sim *RunSet, cluster string, freqMHz, k int) (*WorkloadClustering, error) {
	if k <= 0 {
		k = DefaultWorkloadClusters
	}
	X, names, _, err := pmcRateMatrix(hw, cluster, freqMHz)
	if err != nil {
		return nil, err
	}
	if k > len(names) {
		k = len(names)
	}
	dend := stats.Agglomerate(stats.EuclideanDist(stats.Standardize(X)), stats.AverageLinkage)
	labels, err := dend.CutK(k)
	if err != nil {
		return nil, err
	}

	wc := &WorkloadClustering{
		Cluster: cluster, FreqMHz: freqMHz, K: k,
		Labels: make(map[string]int, len(names)),
	}
	for i, name := range names {
		wc.Labels[name] = labels[i]
	}

	// Attach errors.
	vs, err := Validate(hw, sim, cluster)
	if err != nil {
		return nil, err
	}
	peByName := map[string]float64{}
	for _, e := range vs.ErrorsAt(freqMHz) {
		peByName[e.Workload] = e.PE
	}
	for i, name := range names {
		wc.Rows = append(wc.Rows, Fig3Row{Workload: name, Cluster: labels[i], PE: peByName[name]})
	}
	sort.Slice(wc.Rows, func(i, j int) bool {
		if wc.Rows[i].Cluster != wc.Rows[j].Cluster {
			return wc.Rows[i].Cluster < wc.Rows[j].Cluster
		}
		return wc.Rows[i].Workload < wc.Rows[j].Workload
	})

	for label, members := range stats.GroupByLabel(labels) {
		cs := ClusterSummary{Label: label}
		var pes []float64
		for _, idx := range members {
			cs.Workloads = append(cs.Workloads, names[idx])
			pes = append(pes, peByName[names[idx]])
		}
		cs.MeanPE = stats.Mean(pes)
		wc.Clusters = append(wc.Clusters, cs)
	}
	sort.Slice(wc.Clusters, func(i, j int) bool { return wc.Clusters[i].Label < wc.Clusters[j].Label })
	return wc, nil
}
