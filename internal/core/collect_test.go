package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/workload"
)

// smallCampaign returns a reduced but multi-suite campaign used by the
// engine tests: 8 validation workloads, one cluster, one frequency.
func smallCampaign() CollectOptions {
	return CollectOptions{
		Workloads: workload.Validation()[:8],
		Clusters:  []string{hw.ClusterA15},
		Freqs:     map[string][]int{hw.ClusterA15: {1000}},
	}
}

// archiveBytes serialises rs through the canonical gob envelope.
func archiveBytes(t *testing.T, rs *RunSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveRunSet(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCollectDeterministicAcrossWorkerCounts pins the doc-comment claim
// of CollectContext: a GOMAXPROCS-parallel campaign is byte-identical
// (via the canonical archive encoding) to a sequential one.
func TestCollectDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping four-campaign determinism sweep in -short mode")
	}
	pl := hw.Platform()
	opt := smallCampaign()
	opt.Workers = 1
	sequential, err := Collect(context.Background(), pl, opt)
	if err != nil {
		t.Fatal(err)
	}
	seqBytes := archiveBytes(t, sequential)

	for _, workers := range []int{0, 2, 7} {
		opt := smallCampaign()
		opt.Workers = workers
		parallel, err := Collect(context.Background(), pl, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqBytes, archiveBytes(t, parallel)) {
			t.Fatalf("collection with %d workers diverged from sequential collection", workers)
		}
	}
}

// failingProfile passes campaign planning but fails platform validation
// at run time, injecting a deterministic mid-campaign failure.
func failingProfile() workload.Profile {
	p := workload.Validation()[0]
	p.Name = "injected-failure"
	p.TotalInsts = 0 // rejected by Profile.Validate inside Platform.Run
	return p
}

// TestCollectStopsRemainingJobsAfterFirstError is the regression test for
// the original error-path bug: a failing run used to stop only its own
// worker while every other worker kept simulating jobs whose results were
// then thrown away. Now the first failure cancels the outstanding work.
func TestCollectStopsRemainingJobsAfterFirstError(t *testing.T) {
	profiles := append([]workload.Profile{failingProfile()}, workload.Validation()...)
	metrics := NewMetrics()
	_, err := Collect(context.Background(), hw.Platform(), CollectOptions{
		Workloads: profiles,
		Clusters:  []string{hw.ClusterA15},
		Freqs:     map[string][]int{hw.ClusterA15: {1000}},
		Workers:   2,
		Observer:  metrics,
	})
	var ce *CollectError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CollectError, got %v", err)
	}
	if len(ce.Failed) == 0 || ce.Failed[0].Key.Workload != "injected-failure" {
		t.Fatalf("first failure not attributed to the injected workload: %+v", ce.Failed)
	}
	stats := metrics.Stats()
	total := len(profiles)
	started := stats.Simulated + stats.Errors
	// The failing job is first in line and errors within microseconds;
	// with 2 workers only the jobs already in flight may still finish.
	// The generous bound stays far below the 45 jobs the old engine would
	// have burned through.
	if started > 6 {
		t.Fatalf("%d of %d jobs were started after the first failure; outstanding work not cancelled", started, total)
	}
	if len(ce.Skipped) < total-6 {
		t.Fatalf("only %d jobs reported skipped, want >= %d", len(ce.Skipped), total-6)
	}
	if len(ce.Skipped)+len(ce.Failed)+len(ce.Partial.Runs) != total {
		t.Fatalf("skipped %d + failed %d + done %d != %d jobs",
			len(ce.Skipped), len(ce.Failed), len(ce.Partial.Runs), total)
	}
}

// TestCollectContextCancellation asserts a pre-cancelled context stops
// the campaign before any job runs and surfaces context.Canceled.
func TestCollectContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	metrics := NewMetrics()
	opt := smallCampaign()
	opt.Observer = metrics
	_, err := CollectContext(ctx, hw.Platform(), opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in the error chain, got %v", err)
	}
	var ce *CollectError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CollectError, got %v", err)
	}
	if len(ce.Partial.Runs) != 0 || len(ce.Failed) != 0 {
		t.Fatalf("pre-cancelled campaign ran anyway: %v", ce)
	}
	if len(ce.Skipped) != 8 {
		t.Fatalf("want all 8 jobs skipped, got %d", len(ce.Skipped))
	}
	if got := metrics.Stats().Skipped; got != 8 {
		t.Fatalf("observer saw %d skipped, want 8", got)
	}
}

// TestCollectWarmCacheIdenticalToUncached is the cache-correctness half
// of the acceptance criteria: a warm-cache campaign must reproduce the
// uncached campaign byte-for-byte, while skipping every simulation.
func TestCollectWarmCacheIdenticalToUncached(t *testing.T) {
	pl := gem5.Platform(gem5.V1)
	uncached, err := Collect(context.Background(), pl, smallCampaign())
	if err != nil {
		t.Fatal(err)
	}

	cache := NewMemoryCache(0)
	cold := smallCampaign()
	cold.Cache = cache
	coldMetrics := NewMetrics()
	cold.Observer = coldMetrics
	coldRuns, err := Collect(context.Background(), pl, cold)
	if err != nil {
		t.Fatal(err)
	}
	if s := coldMetrics.Stats(); s.CacheHits != 0 || s.Simulated != 8 {
		t.Fatalf("cold campaign: %v", s)
	}

	warm := smallCampaign()
	warm.Cache = cache
	warmMetrics := NewMetrics()
	warm.Observer = warmMetrics
	warmRuns, err := Collect(context.Background(), pl, warm)
	if err != nil {
		t.Fatal(err)
	}
	if s := warmMetrics.Stats(); s.CacheHits != 8 || s.Simulated != 0 {
		t.Fatalf("warm campaign simulated: %v", s)
	}

	want := archiveBytes(t, uncached)
	if !bytes.Equal(want, archiveBytes(t, coldRuns)) {
		t.Fatal("cold cached campaign diverged from uncached campaign")
	}
	if !bytes.Equal(want, archiveBytes(t, warmRuns)) {
		t.Fatal("warm cached campaign diverged from uncached campaign")
	}
}

// TestCollectResumeAfterFailure exercises the resume story: a campaign
// that fails midway leaves its completed runs in the cache, and re-running
// without the poisoned workload replays them as hits.
func TestCollectResumeAfterFailure(t *testing.T) {
	pl := hw.Platform()
	cache := NewMemoryCache(0)
	good := workload.Validation()[:6]
	// The failing job goes last so (with one worker) every good run
	// completes and is archived before the campaign dies.
	profiles := append(append([]workload.Profile{}, good...), failingProfile())
	_, err := Collect(context.Background(), pl, CollectOptions{
		Workloads: profiles,
		Clusters:  []string{hw.ClusterA15},
		Freqs:     map[string][]int{hw.ClusterA15: {1000}},
		Workers:   1,
		Cache:     cache,
	})
	var ce *CollectError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CollectError, got %v", err)
	}
	if len(ce.Partial.Runs) != 6 {
		t.Fatalf("partial results lost: %d of 6 preserved", len(ce.Partial.Runs))
	}

	metrics := NewMetrics()
	resumed, err := Collect(context.Background(), pl, CollectOptions{
		Workloads: good,
		Clusters:  []string{hw.ClusterA15},
		Freqs:     map[string][]int{hw.ClusterA15: {1000}},
		Cache:     cache,
		Observer:  metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := metrics.Stats(); s.CacheHits != 6 || s.Simulated != 0 {
		t.Fatalf("resume re-simulated instead of replaying: %v", s)
	}
	if len(resumed.Runs) != 6 {
		t.Fatalf("resumed campaign has %d runs, want 6", len(resumed.Runs))
	}
}
