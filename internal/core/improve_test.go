package core

import (
	"testing"

	"gemstone/internal/gem5"
	"gemstone/internal/pmu"
	"gemstone/internal/power"
	"gemstone/internal/workload"
)

func TestDeriveEventRestraints(t *testing.T) {
	f := getFixture(t)
	mapping := power.DefaultMapping()
	pool, excluded, err := DeriveEventRestraints(f.hwRuns, f.v1Runs, "a15", 1000,
		mapping, power.DefaultPool(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) == 0 || len(excluded) == 0 {
		t.Fatalf("pool=%d excluded=%d; the feedback loop must split the candidates", len(pool), len(excluded))
	}
	exSet := map[pmu.Event]bool{}
	for _, e := range excluded {
		exSet[e] = true
	}
	// The Section V exclusions must be rediscovered automatically:
	// unaligned accesses (no gem5 equivalent) and the badly modelled
	// mispredict/writeback counters.
	for _, want := range []pmu.Event{pmu.UnalignedLdSt, pmu.BrMisPred, pmu.L1DCacheWB} {
		if !exSet[want] {
			t.Errorf("event %s should be excluded by the automated restraints", want)
		}
	}
	// Reliable events survive.
	poolSet := map[pmu.Event]bool{}
	for _, e := range pool {
		poolSet[e] = true
	}
	for _, want := range []pmu.Event{pmu.CPUCycles, pmu.InstRetired} {
		if !poolSet[want] {
			t.Errorf("reliable event %s must stay in the pool", want)
		}
	}
	// A model built from the derived pool has sound quality.
	model, err := BuildPowerModel(f.hwRuns, "a15", power.BuildOptions{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if model.Quality.AdjR2 < 0.96 {
		t.Fatalf("derived-pool model adj R2 = %.4f", model.Quality.AdjR2)
	}
}

func TestAssessEventReliabilityShape(t *testing.T) {
	f := getFixture(t)
	rel, err := AssessEventReliability(f.hwRuns, f.v1Runs, "a15", 1000,
		power.DefaultMapping(), power.DefaultPool())
	if err != nil {
		t.Fatal(err)
	}
	byEvent := map[pmu.Event]EventReliability{}
	for _, r := range rel {
		byEvent[r.Event] = r
	}
	if byEvent[pmu.UnalignedLdSt].Mappable {
		t.Fatal("unaligned accesses must be unmappable")
	}
	if cyc := byEvent[pmu.CPUCycles]; !cyc.Mappable || cyc.TotalMAPE < 1 {
		t.Fatalf("cycle totals must diverge (execution-time error): %+v", cyc)
	}
	if mis := byEvent[pmu.BrMisPred]; mis.RateMAPE < 200 {
		t.Fatalf("mispredict rate error should be enormous under the BP bug, got %.0f%%", mis.RateMAPE)
	}
}

func TestIterateImprovementsGreedyOrder(t *testing.T) {
	f := getFixture(t)
	// A compact but behaviourally diverse subset keeps the greedy loop
	// affordable (it validates O(defects^2) configurations).
	var profiles []workload.Profile
	for _, name := range []string{
		"mi-crc32", "whetstone", "dhrystone", "parsec-canneal-1", "mi-qsort", "mi-adpcm-d",
	} {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	steps, err := IterateImprovements(f.hwRuns, profiles, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 3 {
		t.Fatalf("expected several improvement steps, got %d", len(steps))
	}
	if steps[0].Fixed != 0 || steps[0].Remaining != gem5.AllDefects {
		t.Fatal("first step must be the unmodified baseline")
	}
	// The first fix must be the branch predictor — the paper's dominant
	// error source ("address the most significant sources first").
	if steps[1].Fixed != gem5.DefectBP {
		t.Fatalf("first fix = %v, want the BP bug", steps[1].Fixed)
	}
	// MAPE is non-increasing along the greedy path.
	for i := 1; i < len(steps); i++ {
		if steps[i].MAPE > steps[i-1].MAPE {
			t.Fatalf("step %d worsened MAPE: %.1f -> %.1f", i, steps[i-1].MAPE, steps[i].MAPE)
		}
	}
	// The endpoint approaches the defect-free model.
	last := steps[len(steps)-1]
	if last.MAPE > 10 {
		t.Fatalf("final MAPE %.1f%%; the repair loop should approach the clean model", last.MAPE)
	}
}
