package core

import (
	"context"

	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/workload"
)

// ImprovementStep is one iteration of the Section IV-F repair loop: the
// defect fixed at this step, the remaining defect set, and the error after
// the fix.
type ImprovementStep struct {
	Fixed     gem5.Defect
	Remaining gem5.Defect
	MAPE      float64
	MPE       float64
}

// IterateImprovements implements the paper's recommended repair procedure:
// "it is necessary to address the most significant sources of error first,
// otherwise changes to other parts of the system may not show a
// representative difference". Starting from the full defect set, each
// iteration greedily fixes whichever remaining defect most improves the
// MAPE, re-validating the whole system after every change (the knock-on
// effects the paper warns about make per-component evaluation in isolation
// misleading). Iteration stops when no single fix improves the error or
// every defect is repaired.
func IterateImprovements(hwRuns *RunSet, profiles []workload.Profile, freqMHz int) ([]ImprovementStep, error) {
	if len(profiles) == 0 {
		profiles = workload.Validation()
	}
	validate := func(d gem5.Defect) (float64, float64, error) {
		runs, err := Collect(context.Background(), gem5.PlatformWithDefects(d), CollectOptions{
			Workloads: profiles,
			Clusters:  []string{hw.ClusterA15},
			Freqs:     map[string][]int{hw.ClusterA15: {freqMHz}},
		})
		if err != nil {
			return 0, 0, err
		}
		vs, err := Validate(hwRuns, runs, hw.ClusterA15)
		if err != nil {
			return 0, 0, err
		}
		s := vs.ByFreq[freqMHz]
		return s.MAPE, s.MPE, nil
	}

	remaining := gem5.AllDefects
	curMAPE, curMPE, err := validate(remaining)
	if err != nil {
		return nil, err
	}
	steps := []ImprovementStep{{Fixed: 0, Remaining: remaining, MAPE: curMAPE, MPE: curMPE}}

	for remaining != 0 {
		best := gem5.Defect(0)
		bestMAPE, bestMPE := curMAPE, curMPE
		for _, d := range gem5.Defects() {
			if remaining&d == 0 {
				continue
			}
			mape, mpe, err := validate(remaining &^ d)
			if err != nil {
				return nil, err
			}
			if mape < bestMAPE {
				best, bestMAPE, bestMPE = d, mape, mpe
			}
		}
		if best == 0 {
			break // no single fix helps: the remaining errors interact
		}
		remaining &^= best
		curMAPE, curMPE = bestMAPE, bestMPE
		steps = append(steps, ImprovementStep{
			Fixed: best, Remaining: remaining, MAPE: curMAPE, MPE: curMPE,
		})
	}
	return steps, nil
}
