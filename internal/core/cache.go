package core

import (
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"gemstone/internal/platform"
	"gemstone/internal/workload"
)

// Content-addressed run memoisation. Every simulated run is a pure
// function of (workload profile, cluster configuration, platform
// identity, frequency), so a measurement can be keyed by a stable hash of
// exactly those inputs and replayed instead of re-simulated — the
// in-process analogue of the paper's released datasets, which exist so
// analyses never re-run the 45-65 workload x DVFS campaigns.

// cacheKeyScheme versions the key derivation itself: bump it whenever the
// payload layout or hash inputs change so stale on-disk entries from an
// older scheme can never alias a new key. Scheme 2 replaced the
// json-marshalled payload struct with a length-framed byte string: the
// profile JSON (still canonical — encoding/json sorts its one map) is
// marshalled once per workload and the remaining fields are framed
// directly, which removes the per-run encoder allocations that dominated
// the cold-campaign allocation profile. Scheme 3 added the simulation
// fidelity to the hashed tuple: an atomic-tier prediction and a detailed
// measurement of the same run are different artefacts and must never
// serve each other — not even entries cached before fidelity existed.
const cacheKeyScheme = 3

// CacheKey returns the content-addressed cache key of one detailed-tier
// (platform, workload, cluster, frequency) run. The key covers the full
// cluster configuration fingerprint, so any model change — a gem5 defect
// fix, a DVFS-table edit, a predictor resize — produces a different key.
// For a non-detailed tier use CacheKeyFidelity.
func CacheKey(pl *platform.Platform, prof workload.Profile, cluster string, freqMHz int) (string, error) {
	return CacheKeyFidelity(pl, prof, cluster, freqMHz, platform.FidelityDetailed)
}

// CacheKeyFidelity is CacheKey with an explicit simulation tier. Keys of
// different tiers never collide: the tier is part of the hashed tuple.
func CacheKeyFidelity(pl *platform.Platform, prof workload.Profile, cluster string, freqMHz int, fid platform.Fidelity) (string, error) {
	cc, err := pl.Cluster(cluster)
	if err != nil {
		return "", err
	}
	if !fid.Valid() {
		return "", fmt.Errorf("core: cache key for invalid fidelity %d", fid)
	}
	return cacheKeyFromParts(pl.Name(), pl.Config().HasSensors, cluster, cc.Fingerprint(), profileKeyJSON(prof), freqMHz, fid), nil
}

// profileKeyJSON is the canonical byte serialisation of a profile for key
// derivation. The collector calls it once per workload, not once per run.
func profileKeyJSON(prof workload.Profile) []byte {
	data, err := json.Marshal(prof)
	if err != nil {
		// Profile is plain data; this is unreachable short of NaN fields.
		// A per-error serialisation keeps such a run keyed (deterministically)
		// by the failure rather than aliasing a real profile.
		data = []byte(fmt.Sprintf("unmarshalable profile: %v", err))
	}
	return data
}

// cacheKeyFromParts derives the key from a precomputed cluster
// fingerprint and profile serialisation — the collector resolves each
// cluster's fingerprint once per campaign and each profile's JSON once per
// workload instead of once per run. Every variable-length field is length-
// prefixed, so distinct part tuples can never frame to the same bytes.
func cacheKeyFromParts(platformName string, hasSensors bool, cluster, clusterHash string, profJSON []byte, freqMHz int, fid platform.Fidelity) string {
	buf := make([]byte, 0,
		8*6+4+len(platformName)+len(cluster)+len(clusterHash)+len(profJSON))
	buf = binary.LittleEndian.AppendUint64(buf, cacheKeyScheme)
	buf = appendKeyField(buf, platformName)
	if hasSensors {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = append(buf, byte(fid))
	buf = appendKeyField(buf, cluster)
	buf = appendKeyField(buf, clusterHash)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(freqMHz)))
	buf = appendKeyField(buf, string(profJSON))
	sum := sha256.Sum256(buf)
	var dst [2 * sha256.Size]byte
	hex.Encode(dst[:], sum[:])
	return string(dst[:])
}

// appendKeyField appends a length-prefixed field to the key buffer.
func appendKeyField(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s)))
	return append(buf, s...)
}

// RunCache memoises measurements under content-addressed keys. All
// methods must be safe for concurrent use; Get misses on any internal
// failure rather than propagating it (a corrupt entry is a miss, not an
// error).
type RunCache interface {
	Get(key string) (platform.Measurement, bool)
	Put(key string, m platform.Measurement)
}

// MemoryCache is a fixed-capacity in-memory LRU run cache. The recency
// list is intrusive — slots in one slice linked by index — so a Put costs
// no allocation beyond amortised map/slice growth (container/list costs
// two heap objects per insertion, which dominated campaign allocation
// profiles once the simulator itself stopped allocating).
type MemoryCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]int // key -> slot index
	slots   []memSlot
	head    int // most recently used; -1 when empty
	tail    int // least recently used; -1 when empty
}

type memSlot struct {
	key        string
	m          platform.Measurement
	prev, next int // recency links; -1 terminates
}

// DefaultMemoryCacheEntries bounds NewMemoryCache(0). A full validation
// campaign is 45 workloads x 2 clusters x ~8 frequencies = 720 runs; the
// default holds several whole campaigns.
const DefaultMemoryCacheEntries = 4096

// NewMemoryCache builds an LRU cache holding at most maxEntries
// measurements (0 or negative selects DefaultMemoryCacheEntries).
func NewMemoryCache(maxEntries int) *MemoryCache {
	if maxEntries <= 0 {
		maxEntries = DefaultMemoryCacheEntries
	}
	return &MemoryCache{
		max:     maxEntries,
		entries: make(map[string]int),
		head:    -1,
		tail:    -1,
	}
}

// unlink removes slot i from the recency list.
func (c *MemoryCache) unlink(i int) {
	s := &c.slots[i]
	if s.prev >= 0 {
		c.slots[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next >= 0 {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
}

// pushFront makes slot i the most recently used.
func (c *MemoryCache) pushFront(i int) {
	s := &c.slots[i]
	s.prev = -1
	s.next = c.head
	if c.head >= 0 {
		c.slots[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// Get returns the cached measurement for key, marking it recently used.
func (c *MemoryCache) Get(key string) (platform.Measurement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.entries[key]
	if !ok {
		return platform.Measurement{}, false
	}
	c.unlink(i)
	c.pushFront(i)
	return c.slots[i].m, true
}

// Put stores a measurement, evicting the least recently used entry when
// the cache is full.
func (c *MemoryCache) Put(key string, m platform.Measurement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.entries[key]; ok {
		c.slots[i].m = m
		c.unlink(i)
		c.pushFront(i)
		return
	}
	var i int
	if len(c.entries) >= c.max {
		// Reuse the evicted LRU slot for the new entry.
		i = c.tail
		c.unlink(i)
		delete(c.entries, c.slots[i].key)
	} else {
		i = len(c.slots)
		c.slots = append(c.slots, memSlot{})
	}
	c.slots[i] = memSlot{key: key, m: m, prev: -1, next: -1}
	c.entries[key] = i
	c.pushFront(i)
}

// Len reports the number of cached entries.
func (c *MemoryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// DiskCache persists one measurement per file under a directory, using
// the same gzip+gob envelope discipline as the run-set archives of
// persist.go. It is corruption-tolerant by construction: a truncated,
// garbled or version-skewed entry decodes as a miss and the run is simply
// re-simulated.
type DiskCache struct {
	dir string
}

// cacheEntryVersion versions the on-disk entry envelope.
const cacheEntryVersion = 1

// diskEntry is the stored envelope. Key is repeated inside the payload so
// a renamed or cross-linked file can never serve the wrong measurement.
type diskEntry struct {
	Version int
	Key     string
	M       platform.Measurement
}

// NewDiskCache opens (creating if needed) an on-disk run cache rooted at
// dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating run cache dir: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache root directory.
func (c *DiskCache) Dir() string { return c.dir }

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key+".run")
}

// Get loads the entry for key; any failure — missing file, truncation,
// corruption, version skew, key mismatch — is a miss.
func (c *DiskCache) Get(key string) (platform.Measurement, bool) {
	f, err := os.Open(c.path(key))
	if err != nil {
		return platform.Measurement{}, false
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return platform.Measurement{}, false
	}
	defer zr.Close()
	var e diskEntry
	if err := gob.NewDecoder(zr).Decode(&e); err != nil {
		return platform.Measurement{}, false
	}
	// Drain to EOF so the gzip CRC over the whole entry is verified: a
	// bit flip anywhere in the file demotes the entry to a miss even when
	// the flipped byte still gob-decodes.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return platform.Measurement{}, false
	}
	if e.Version != cacheEntryVersion || e.Key != key {
		return platform.Measurement{}, false
	}
	return e.M, true
}

// Put stores a measurement atomically (temp file + rename). Storage is
// best-effort: an I/O failure loses the memoisation, never the campaign.
func (c *DiskCache) Put(key string, m platform.Measurement) {
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	zw := gzip.NewWriter(tmp)
	err = gob.NewEncoder(zw).Encode(diskEntry{Version: cacheEntryVersion, Key: key, M: m})
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return
	}
	_ = os.Rename(tmp.Name(), c.path(key))
}

// TieredCache layers a fast in-memory LRU over a persistent store: reads
// promote disk hits into memory, writes go to both tiers.
type TieredCache struct {
	mem  *MemoryCache
	disk RunCache
}

// NewTieredCache combines an LRU front with a backing store.
func NewTieredCache(mem *MemoryCache, disk RunCache) *TieredCache {
	return &TieredCache{mem: mem, disk: disk}
}

// Get checks the memory tier first, then the backing store.
func (c *TieredCache) Get(key string) (platform.Measurement, bool) {
	if m, ok := c.mem.Get(key); ok {
		return m, true
	}
	m, ok := c.disk.Get(key)
	if ok {
		c.mem.Put(key, m)
	}
	return m, ok
}

// Put stores into both tiers.
func (c *TieredCache) Put(key string, m platform.Measurement) {
	c.mem.Put(key, m)
	c.disk.Put(key, m)
}

// NamespaceCache isolates a tenant's view of a shared run cache: every
// key is re-derived as a hash over (namespace, key), so two tenants
// running the identical campaign never observe each other's entries.
// The service layer uses this to give each tenant an independent cache
// without provisioning per-tenant stores — isolation costs one SHA-256
// per access, not a directory per tenant. Derived keys are hex, so they
// remain filesystem-safe for DiskCache regardless of namespace bytes.
type NamespaceCache struct {
	ns    string
	inner RunCache
}

// NewNamespaceCache wraps inner so all keys are scoped to namespace ns.
// An empty namespace is valid and still distinct from the unwrapped
// cache (the key is re-derived either way).
func NewNamespaceCache(ns string, inner RunCache) *NamespaceCache {
	return &NamespaceCache{ns: ns, inner: inner}
}

// Namespace returns the namespace this view is scoped to.
func (c *NamespaceCache) Namespace() string { return c.ns }

// scope derives the namespaced key. Both fields are length-framed, so
// (ns="a", key="bc") and (ns="ab", key="c") can never collide.
func (c *NamespaceCache) scope(key string) string {
	buf := make([]byte, 0, 8*2+len(c.ns)+len(key))
	buf = appendKeyField(buf, c.ns)
	buf = appendKeyField(buf, key)
	sum := sha256.Sum256(buf)
	var dst [2 * sha256.Size]byte
	hex.Encode(dst[:], sum[:])
	return string(dst[:])
}

// Get looks the key up inside the namespace.
func (c *NamespaceCache) Get(key string) (platform.Measurement, bool) {
	return c.inner.Get(c.scope(key))
}

// Put stores the measurement inside the namespace.
func (c *NamespaceCache) Put(key string, m platform.Measurement) {
	c.inner.Put(c.scope(key), m)
}

// OpenRunCache builds the standard two-tier cache: a default-sized LRU in
// front of an on-disk store at dir.
func OpenRunCache(dir string) (*TieredCache, error) {
	disk, err := NewDiskCache(dir)
	if err != nil {
		return nil, err
	}
	return NewTieredCache(NewMemoryCache(0), disk), nil
}
