package core

import (
	"compress/gzip"
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"gemstone/internal/platform"
	"gemstone/internal/workload"
)

// Content-addressed run memoisation. Every simulated run is a pure
// function of (workload profile, cluster configuration, platform
// identity, frequency), so a measurement can be keyed by a stable hash of
// exactly those inputs and replayed instead of re-simulated — the
// in-process analogue of the paper's released datasets, which exist so
// analyses never re-run the 45-65 workload x DVFS campaigns.

// cacheKeyScheme versions the key derivation itself: bump it whenever the
// payload layout or hash inputs change so stale on-disk entries from an
// older scheme can never alias a new key.
const cacheKeyScheme = 1

// cacheKeyPayload is the canonical serialisation hashed into a cache key.
// json is deterministic for this shape: flat structs plus one map whose
// keys encoding/json sorts.
type cacheKeyPayload struct {
	Scheme      int
	Platform    string
	HasSensors  bool
	Cluster     string
	ClusterHash string
	FreqMHz     int
	Profile     workload.Profile
}

// CacheKey returns the content-addressed cache key of one (platform,
// workload, cluster, frequency) run. The key covers the full cluster
// configuration fingerprint, so any model change — a gem5 defect fix, a
// DVFS-table edit, a predictor resize — produces a different key.
func CacheKey(pl *platform.Platform, prof workload.Profile, cluster string, freqMHz int) (string, error) {
	cc, err := pl.Cluster(cluster)
	if err != nil {
		return "", err
	}
	return cacheKeyFromParts(pl.Name(), pl.Config().HasSensors, cluster, cc.Fingerprint(), prof, freqMHz), nil
}

// cacheKeyFromParts derives the key from a precomputed cluster
// fingerprint — the collector resolves each cluster's fingerprint once
// per campaign instead of once per run.
func cacheKeyFromParts(platformName string, hasSensors bool, cluster, clusterHash string, prof workload.Profile, freqMHz int) string {
	data, err := json.Marshal(cacheKeyPayload{
		Scheme:      cacheKeyScheme,
		Platform:    platformName,
		HasSensors:  hasSensors,
		Cluster:     cluster,
		ClusterHash: clusterHash,
		FreqMHz:     freqMHz,
		Profile:     prof,
	})
	if err != nil {
		// Profile is plain data; this is unreachable short of NaN fields.
		// A per-error key keeps such a run uncacheable rather than wrong.
		data = []byte(fmt.Sprintf("unmarshalable key: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// RunCache memoises measurements under content-addressed keys. All
// methods must be safe for concurrent use; Get misses on any internal
// failure rather than propagating it (a corrupt entry is a miss, not an
// error).
type RunCache interface {
	Get(key string) (platform.Measurement, bool)
	Put(key string, m platform.Measurement)
}

// MemoryCache is a fixed-capacity in-memory LRU run cache.
type MemoryCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *memEntry
	entries map[string]*list.Element
}

type memEntry struct {
	key string
	m   platform.Measurement
}

// DefaultMemoryCacheEntries bounds NewMemoryCache(0). A full validation
// campaign is 45 workloads x 2 clusters x ~8 frequencies = 720 runs; the
// default holds several whole campaigns.
const DefaultMemoryCacheEntries = 4096

// NewMemoryCache builds an LRU cache holding at most maxEntries
// measurements (0 or negative selects DefaultMemoryCacheEntries).
func NewMemoryCache(maxEntries int) *MemoryCache {
	if maxEntries <= 0 {
		maxEntries = DefaultMemoryCacheEntries
	}
	return &MemoryCache{
		max:     maxEntries,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached measurement for key, marking it recently used.
func (c *MemoryCache) Get(key string) (platform.Measurement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return platform.Measurement{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*memEntry).m, true
}

// Put stores a measurement, evicting the least recently used entry when
// the cache is full.
func (c *MemoryCache) Put(key string, m platform.Measurement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*memEntry).m = m
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&memEntry{key: key, m: m})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*memEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *MemoryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// DiskCache persists one measurement per file under a directory, using
// the same gzip+gob envelope discipline as the run-set archives of
// persist.go. It is corruption-tolerant by construction: a truncated,
// garbled or version-skewed entry decodes as a miss and the run is simply
// re-simulated.
type DiskCache struct {
	dir string
}

// cacheEntryVersion versions the on-disk entry envelope.
const cacheEntryVersion = 1

// diskEntry is the stored envelope. Key is repeated inside the payload so
// a renamed or cross-linked file can never serve the wrong measurement.
type diskEntry struct {
	Version int
	Key     string
	M       platform.Measurement
}

// NewDiskCache opens (creating if needed) an on-disk run cache rooted at
// dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating run cache dir: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache root directory.
func (c *DiskCache) Dir() string { return c.dir }

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key+".run")
}

// Get loads the entry for key; any failure — missing file, truncation,
// corruption, version skew, key mismatch — is a miss.
func (c *DiskCache) Get(key string) (platform.Measurement, bool) {
	f, err := os.Open(c.path(key))
	if err != nil {
		return platform.Measurement{}, false
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return platform.Measurement{}, false
	}
	defer zr.Close()
	var e diskEntry
	if err := gob.NewDecoder(zr).Decode(&e); err != nil {
		return platform.Measurement{}, false
	}
	// Drain to EOF so the gzip CRC over the whole entry is verified: a
	// bit flip anywhere in the file demotes the entry to a miss even when
	// the flipped byte still gob-decodes.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return platform.Measurement{}, false
	}
	if e.Version != cacheEntryVersion || e.Key != key {
		return platform.Measurement{}, false
	}
	return e.M, true
}

// Put stores a measurement atomically (temp file + rename). Storage is
// best-effort: an I/O failure loses the memoisation, never the campaign.
func (c *DiskCache) Put(key string, m platform.Measurement) {
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	zw := gzip.NewWriter(tmp)
	err = gob.NewEncoder(zw).Encode(diskEntry{Version: cacheEntryVersion, Key: key, M: m})
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return
	}
	_ = os.Rename(tmp.Name(), c.path(key))
}

// TieredCache layers a fast in-memory LRU over a persistent store: reads
// promote disk hits into memory, writes go to both tiers.
type TieredCache struct {
	mem  *MemoryCache
	disk RunCache
}

// NewTieredCache combines an LRU front with a backing store.
func NewTieredCache(mem *MemoryCache, disk RunCache) *TieredCache {
	return &TieredCache{mem: mem, disk: disk}
}

// Get checks the memory tier first, then the backing store.
func (c *TieredCache) Get(key string) (platform.Measurement, bool) {
	if m, ok := c.mem.Get(key); ok {
		return m, true
	}
	m, ok := c.disk.Get(key)
	if ok {
		c.mem.Put(key, m)
	}
	return m, ok
}

// Put stores into both tiers.
func (c *TieredCache) Put(key string, m platform.Measurement) {
	c.mem.Put(key, m)
	c.disk.Put(key, m)
}

// OpenRunCache builds the standard two-tier cache: a default-sized LRU in
// front of an on-disk store at dir.
func OpenRunCache(dir string) (*TieredCache, error) {
	disk, err := NewDiskCache(dir)
	if err != nil {
		return nil, err
	}
	return NewTieredCache(NewMemoryCache(0), disk), nil
}
