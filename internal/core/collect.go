// Package core implements GemStone itself: the experiment orchestration of
// Fig. 1 (hardware characterisation, gem5 simulation, power
// characterisation), the data collation, and every analysis of Sections
// IV-VII — workload/event clustering, error correlation, error regression,
// matched-event comparison, power/energy error analysis, DVFS-scaling
// analysis and model-version comparison.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gemstone/internal/gem5"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
	"gemstone/internal/pmu"
	"gemstone/internal/power"
	"gemstone/internal/workload"
)

// RunKey identifies one (workload, cluster, frequency) measurement.
type RunKey struct {
	Workload string
	Cluster  string
	FreqMHz  int
}

// String renders the key as workload/cluster@freq.
func (k RunKey) String() string {
	return fmt.Sprintf("%s/%s@%dMHz", k.Workload, k.Cluster, k.FreqMHz)
}

// RunSet holds every measurement collected from one platform.
type RunSet struct {
	Platform string
	Runs     map[RunKey]platform.Measurement
}

// Get returns the measurement for key, or an error naming what's missing.
func (rs *RunSet) Get(key RunKey) (platform.Measurement, error) {
	m, ok := rs.Runs[key]
	if !ok {
		return platform.Measurement{}, fmt.Errorf("core: %s has no run for %s/%s@%dMHz",
			rs.Platform, key.Workload, key.Cluster, key.FreqMHz)
	}
	return m, nil
}

// Workloads returns the sorted workload names present in the set.
func (rs *RunSet) Workloads() []string {
	seen := map[string]bool{}
	for k := range rs.Runs {
		seen[k.Workload] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CollectOptions scopes an experiment campaign.
type CollectOptions struct {
	// Name labels the campaign for distributed execution and service
	// ledgers. Local collection ignores it; the distributed coordinator
	// auto-names anonymous campaigns.
	Name string
	// Workloads to run; nil means the validation set.
	Workloads []workload.Profile
	// Clusters to run on; nil means both.
	Clusters []string
	// Freqs per cluster; nil means the paper's Experiment-1 frequencies.
	Freqs map[string][]int
	// Fidelity selects the simulation tier for every run of the campaign.
	// The zero value is the detailed (bit-for-bit pinned) tier;
	// FidelityAtomic predicts runs from truncated anchor simulations at a
	// documented error bound. Atomic and detailed runs are cached and
	// job-addressed under distinct keys, so tiers never alias.
	Fidelity platform.Fidelity

	// Workers bounds the campaign's parallelism; 0 means GOMAXPROCS.
	// Every run is individually deterministic, so the worker count never
	// changes the collected data — only the wall time.
	Workers int
	// Cache, when non-nil, memoises runs under content-addressed keys
	// (see CacheKey): a hit replays the archived measurement instead of
	// simulating. Warm-cache campaigns cost cache lookups only.
	Cache RunCache
	// Observer, when non-nil, receives per-run lifecycle callbacks and
	// the campaign's aggregate statistics.
	Observer CollectObserver
	// Tracer, when non-nil, records the campaign's phases as spans:
	// "collect" (the whole campaign) with a "plan" child, one root per
	// worker, and per-job "cache-get"/"simulate"/"cache-put" children.
	// The simulate span is passed into platform.RunSpan, so the
	// simulator's internal phases nest under it. Export the result with
	// Tracer.WriteChromeTrace.
	Tracer *obs.Tracer
	// Trace is the campaign's correlation identity (campaign ID, tenant)
	// for distributed execution: a coordinator stamps it — plus the job
	// ID and a Record flag derived from Tracer — onto every remote job so
	// worker log lines and returned spans attribute to the right tenant
	// campaign. Local collection ignores it; the zero value is anonymous.
	Trace obs.TraceContext
}

func (o *CollectOptions) fill(pl *platform.Platform) error {
	if !o.Fidelity.Valid() {
		return fmt.Errorf("core: invalid campaign fidelity %d", o.Fidelity)
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workload.Validation()
	}
	if len(o.Clusters) == 0 {
		for _, cl := range pl.Config().Clusters {
			o.Clusters = append(o.Clusters, cl.Name)
		}
	}
	if o.Freqs == nil {
		o.Freqs = map[string][]int{}
	}
	for _, cl := range o.Clusters {
		if len(o.Freqs[cl]) == 0 {
			cc, err := pl.Cluster(cl)
			if err != nil {
				return err
			}
			var fs []int
			for _, f := range cc.Frequencies() {
				if cl == "a15" && f >= 2000 {
					continue // the paper excludes 2 GHz (thermal throttling)
				}
				fs = append(fs, f)
			}
			o.Freqs[cl] = fs
		}
	}
	return nil
}

// RunError is one failed run of a campaign.
type RunError struct {
	Key RunKey
	Err error
}

// Error implements error.
func (e RunError) Error() string { return fmt.Sprintf("%s: %v", e.Key, e.Err) }

// Unwrap exposes the underlying platform error.
func (e RunError) Unwrap() error { return e.Err }

// CollectError reports a campaign that did not complete: a run failed, or
// the context was cancelled. It preserves everything the campaign did
// finish so the caller can analyse or resume it — re-collecting with the
// same cache replays completed runs as hits and only re-simulates the
// failed and skipped jobs.
type CollectError struct {
	// Platform names the collected platform.
	Platform string
	// Failed lists the runs that errored; the first entry is the failure
	// that cancelled the campaign, later entries (if any) were already in
	// flight when it happened.
	Failed []RunError
	// Skipped lists jobs abandoned without being attempted.
	Skipped []RunKey
	// Cause carries the context's cancellation cause (context.Cause) when
	// cancellation rather than a run failure ended the campaign:
	// context.Canceled, context.DeadlineExceeded, or whatever error the
	// caller handed to its CancelCauseFunc. It participates in Unwrap, so
	// errors.Is(err, context.DeadlineExceeded) just works.
	Cause error
	// Partial holds every completed measurement.
	Partial *RunSet
}

// Error implements error.
func (e *CollectError) Error() string {
	done := 0
	if e.Partial != nil {
		done = len(e.Partial.Runs)
	}
	msg := fmt.Sprintf("core: campaign on %s incomplete: %d done, %d failed, %d skipped",
		e.Platform, done, len(e.Failed), len(e.Skipped))
	if len(e.Failed) > 0 {
		msg += fmt.Sprintf("; first failure: %v", e.Failed[0])
	}
	if e.Cause != nil {
		msg += fmt.Sprintf("; cancelled: %v", e.Cause)
	}
	return msg
}

// Unwrap exposes the run failures and the cancellation cause to
// errors.Is/errors.As.
func (e *CollectError) Unwrap() []error {
	errs := make([]error, 0, len(e.Failed)+1)
	for _, f := range e.Failed {
		errs = append(errs, f)
	}
	if e.Cause != nil {
		errs = append(errs, e.Cause)
	}
	return errs
}

// CollectContext is the former name of Collect, kept as a thin shim for
// the pre-fidelity API surface.
//
// Deprecated: call Collect — it has carried the context since the
// fidelity-tier redesign collapsed the Collect/CollectContext split.
func CollectContext(ctx context.Context, pl *platform.Platform, opt CollectOptions) (*RunSet, error) {
	return Collect(ctx, pl, opt)
}

// PlannedJob is one schedulable unit of a campaign: the workload profile
// to run, the run key naming the (workload, cluster, frequency) point,
// and — when the planning options carry a cache — the content-addressed
// cache key of the measurement. The distributed coordinator
// (internal/dist) ships PlannedJobs to remote workers; CollectContext
// feeds them to its local worker pool. Either way the job list is
// identical, which is what makes a distributed campaign bit-for-bit
// equivalent to a local one.
type PlannedJob struct {
	Profile workload.Profile
	Key     RunKey
	// CacheKey is the content-addressed run-cache key ("" when the
	// planning options had no cache; derive one with CacheKey if needed).
	CacheKey string
}

// PlanCampaign fills opt's defaults against pl and expands it into the
// campaign's ordered job list. Jobs are ordered workload-major (workload,
// then cluster, then frequency) so that consecutive jobs pulled by one
// worker usually share a workload: the worker's SimContext then replays
// its cached expanded instruction stream instead of regenerating it per
// run. The ordering never changes the collected data — runs are
// independent and individually deterministic.
func PlanCampaign(pl *platform.Platform, opt *CollectOptions) ([]PlannedJob, error) {
	if err := opt.fill(pl); err != nil {
		return nil, err
	}
	cfg := pl.Config()
	clusterFP := map[string]string{}
	if opt.Cache != nil {
		// Fingerprint each cluster once so per-run cache keys are a hash
		// away.
		for _, cl := range opt.Clusters {
			cc, err := pl.Cluster(cl)
			if err != nil {
				return nil, err
			}
			clusterFP[cl] = cc.Fingerprint()
		}
	}
	var jobs []PlannedJob
	for _, prof := range opt.Workloads {
		var profJSON []byte
		if opt.Cache != nil {
			profJSON = profileKeyJSON(prof)
		}
		for _, cl := range opt.Clusters {
			for _, f := range opt.Freqs[cl] {
				j := PlannedJob{Profile: prof, Key: RunKey{Workload: prof.Name, Cluster: cl, FreqMHz: f}}
				if opt.Cache != nil {
					j.CacheKey = cacheKeyFromParts(cfg.Name, cfg.HasSensors, cl, clusterFP[cl], profJSON, f, opt.Fidelity)
				}
				jobs = append(jobs, j)
			}
		}
	}
	return jobs, nil
}

// Collect runs the campaign described by opt on pl and returns the run
// set. It reproduces Experiment 1 (and, on sensored platforms, 3 and 4 —
// the power data rides along with the PMU samples) or Experiment 2 when
// pl is a gem5 model, at the simulation tier selected by opt.Fidelity.
//
// Runs are independent simulations, so the campaign fans out across
// opt.Workers workers (GOMAXPROCS by default); every run is individually
// deterministic, so the resulting set is identical to a sequential
// collection (TestCollectDeterministicAcrossWorkerCounts asserts this
// byte-for-byte).
//
// The campaign stops early on the first run failure or when ctx is
// cancelled: workers finish the runs already in flight and then abandon
// the remaining jobs instead of burning CPU on a doomed campaign. In both
// cases the returned error is a *CollectError carrying the completed
// partial results, the failed runs and the skipped jobs.
func Collect(ctx context.Context, pl *platform.Platform, opt CollectOptions) (*RunSet, error) {
	start := time.Now()
	campaign := opt.Tracer.Start("collect", obs.String("platform", pl.Name()))
	defer campaign.End()
	planSpan := campaign.Child("plan")
	jobs, err := PlanCampaign(pl, &opt)
	if err != nil {
		planSpan.End()
		return nil, err
	}
	planSpan.Annotate(obs.Int("jobs", len(jobs)))
	planSpan.End()
	campaign.Annotate(obs.Int("jobs", len(jobs)))
	planTime := time.Since(start)

	observer := opt.Observer
	if observer != nil {
		observer.CollectStart(pl.Name(), len(jobs))
	}

	rs := &RunSet{Platform: pl.Name(), Runs: make(map[RunKey]platform.Measurement, len(jobs))}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	var (
		mu     sync.Mutex // guards rs.Runs and failed
		wg     sync.WaitGroup
		next   atomic.Int64
		stop   atomic.Bool // set on first failure or cancellation
		failed []RunError

		hits, sims     atomic.Int64
		cacheNS, simNS atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker traces on its own lane so concurrent runs render
			// side by side in Perfetto.
			ws := opt.Tracer.Start("worker", obs.Int("worker", w))
			defer ws.End()
			// Per-worker simulation context: hierarchies, predictors, core
			// scratch and expanded streams are reused across this worker's
			// jobs (Reset between runs), which removes nearly all per-run
			// allocation from the campaign.
			sim := platform.NewSimContext(pl)
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				if opt.Cache != nil {
					// Span attributes are built only when tracing: evaluating
					// them unconditionally would pay a key-format and boxing
					// allocation per job even on untraced campaigns.
					var sp *obs.Span
					if ws != nil {
						sp = ws.Child("cache-get", obs.String("key", j.Key.String()))
					}
					t0 := time.Now()
					m, ok := opt.Cache.Get(j.CacheKey)
					cacheNS.Add(int64(time.Since(t0)))
					if sp != nil {
						sp.Annotate(obs.Bool("hit", ok))
						sp.End()
					}
					if ok {
						hits.Add(1)
						mu.Lock()
						rs.Runs[j.Key] = m
						mu.Unlock()
						if observer != nil {
							observer.CacheHit(j.Key)
						}
						continue
					}
				}
				if observer != nil {
					observer.RunStart(j.Key)
				}
				var sp *obs.Span
				if ws != nil {
					sp = ws.Child("simulate", obs.String("key", j.Key.String()))
				}
				t0 := time.Now()
				m, err := sim.RunFidelity(j.Profile, j.Key.Cluster, j.Key.FreqMHz, opt.Fidelity, sp)
				elapsed := time.Since(t0)
				sp.End()
				simNS.Add(int64(elapsed))
				if err != nil {
					err = fmt.Errorf("core: collecting %s on %s: %w", j.Key, pl.Name(), err)
					mu.Lock()
					failed = append(failed, RunError{Key: j.Key, Err: err})
					mu.Unlock()
					stop.Store(true)
					if observer != nil {
						observer.RunError(j.Key, err)
					}
					return
				}
				sims.Add(1)
				if opt.Cache != nil {
					var sp *obs.Span
					if ws != nil {
						sp = ws.Child("cache-put", obs.String("key", j.Key.String()))
					}
					t0 = time.Now()
					opt.Cache.Put(j.CacheKey, m)
					cacheNS.Add(int64(time.Since(t0)))
					sp.End()
				}
				mu.Lock()
				rs.Runs[j.Key] = m
				mu.Unlock()
				if observer != nil {
					observer.RunDone(j.Key, m, elapsed)
				}
			}
		}(w)
	}
	wg.Wait()

	var skipped []RunKey
	if stop.Load() || ctx.Err() != nil {
		attempted := make(map[RunKey]bool, len(failed))
		for _, f := range failed {
			attempted[f.Key] = true
		}
		for _, j := range jobs {
			if _, done := rs.Runs[j.Key]; !done && !attempted[j.Key] {
				skipped = append(skipped, j.Key)
			}
		}
	}

	if observer != nil {
		observer.CollectDone(CollectStats{
			Platform:  pl.Name(),
			Jobs:      len(jobs),
			Simulated: int(sims.Load()),
			CacheHits: int(hits.Load()),
			Errors:    len(failed),
			Skipped:   len(skipped),
			PlanTime:  planTime,
			CacheTime: time.Duration(cacheNS.Load()),
			SimTime:   time.Duration(simNS.Load()),
			WallTime:  time.Since(start),
		})
	}

	if len(failed) > 0 || ctx.Err() != nil {
		return nil, &CollectError{
			Platform: pl.Name(),
			Failed:   failed,
			Skipped:  skipped,
			// context.Cause, not ctx.Err(): a deadline-exceeded or
			// WithCancelCause campaign reports *why* it was cancelled, so
			// errors.Is(err, context.DeadlineExceeded) and custom causes
			// work without string matching.
			Cause:   context.Cause(ctx),
			Partial: rs,
		}
	}
	return rs, nil
}

// Gem5Stats returns the gem5 statistics map of one model run — Experiment
// 2's stats.txt for that run.
func Gem5Stats(m platform.Measurement) map[string]float64 {
	return gem5.Stats(&m.Sample)
}

// PowerObservation converts a sensored measurement into a power-model
// training/validation observation.
func PowerObservation(m platform.Measurement) power.Observation {
	rates := make(map[pmu.Event]float64)
	for _, e := range pmu.AllEvents() {
		rates[e] = m.Sample.Rate(e)
	}
	return power.Observation{
		Workload: m.Workload, Cluster: m.Cluster,
		FreqMHz: m.FreqMHz, VoltageV: m.VoltageV,
		Rates: rates, PowerW: m.PowerWatts,
	}
}
