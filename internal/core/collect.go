// Package core implements GemStone itself: the experiment orchestration of
// Fig. 1 (hardware characterisation, gem5 simulation, power
// characterisation), the data collation, and every analysis of Sections
// IV-VII — workload/event clustering, error correlation, error regression,
// matched-event comparison, power/energy error analysis, DVFS-scaling
// analysis and model-version comparison.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"gemstone/internal/gem5"
	"gemstone/internal/platform"
	"gemstone/internal/pmu"
	"gemstone/internal/power"
	"gemstone/internal/workload"
)

// RunKey identifies one (workload, cluster, frequency) measurement.
type RunKey struct {
	Workload string
	Cluster  string
	FreqMHz  int
}

// RunSet holds every measurement collected from one platform.
type RunSet struct {
	Platform string
	Runs     map[RunKey]platform.Measurement
}

// Get returns the measurement for key, or an error naming what's missing.
func (rs *RunSet) Get(key RunKey) (platform.Measurement, error) {
	m, ok := rs.Runs[key]
	if !ok {
		return platform.Measurement{}, fmt.Errorf("core: %s has no run for %s/%s@%dMHz",
			rs.Platform, key.Workload, key.Cluster, key.FreqMHz)
	}
	return m, nil
}

// Workloads returns the sorted workload names present in the set.
func (rs *RunSet) Workloads() []string {
	seen := map[string]bool{}
	for k := range rs.Runs {
		seen[k.Workload] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CollectOptions scopes an experiment campaign.
type CollectOptions struct {
	// Workloads to run; nil means the validation set.
	Workloads []workload.Profile
	// Clusters to run on; nil means both.
	Clusters []string
	// Freqs per cluster; nil means the paper's Experiment-1 frequencies.
	Freqs map[string][]int
}

func (o *CollectOptions) fill(pl *platform.Platform) error {
	if len(o.Workloads) == 0 {
		o.Workloads = workload.Validation()
	}
	if len(o.Clusters) == 0 {
		for _, cl := range pl.Config().Clusters {
			o.Clusters = append(o.Clusters, cl.Name)
		}
	}
	if o.Freqs == nil {
		o.Freqs = map[string][]int{}
	}
	for _, cl := range o.Clusters {
		if len(o.Freqs[cl]) == 0 {
			cc, err := pl.Cluster(cl)
			if err != nil {
				return err
			}
			var fs []int
			for _, f := range cc.Frequencies() {
				if cl == "a15" && f >= 2000 {
					continue // the paper excludes 2 GHz (thermal throttling)
				}
				fs = append(fs, f)
			}
			o.Freqs[cl] = fs
		}
	}
	return nil
}

// Collect runs the campaign described by opt on pl and returns the run
// set. It reproduces Experiment 1 (and, on sensored platforms, 3 and 4 —
// the power data rides along with the PMU samples) or Experiment 2 when
// pl is a gem5 model.
//
// Runs are independent simulations, so the campaign fans out across
// GOMAXPROCS workers; every run is individually deterministic, so the
// resulting set is identical to a sequential collection.
func Collect(pl *platform.Platform, opt CollectOptions) (*RunSet, error) {
	if err := opt.fill(pl); err != nil {
		return nil, err
	}
	type job struct {
		prof workload.Profile
		key  RunKey
	}
	var jobs []job
	for _, cl := range opt.Clusters {
		for _, f := range opt.Freqs[cl] {
			for _, prof := range opt.Workloads {
				jobs = append(jobs, job{prof: prof, key: RunKey{Workload: prof.Name, Cluster: cl, FreqMHz: f}})
			}
		}
	}

	rs := &RunSet{Platform: pl.Name(), Runs: make(map[RunKey]platform.Measurement, len(jobs))}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		next    atomic.Int64
		firstMu sync.Mutex
		first   error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				m, err := pl.Run(j.prof, j.key.Cluster, j.key.FreqMHz)
				if err != nil {
					firstMu.Lock()
					if first == nil {
						first = fmt.Errorf("core: collecting %s/%s@%dMHz on %s: %w",
							j.key.Workload, j.key.Cluster, j.key.FreqMHz, pl.Name(), err)
					}
					firstMu.Unlock()
					return
				}
				mu.Lock()
				rs.Runs[j.key] = m
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return rs, nil
}

// Gem5Stats returns the gem5 statistics map of one model run — Experiment
// 2's stats.txt for that run.
func Gem5Stats(m platform.Measurement) map[string]float64 {
	return gem5.Stats(&m.Sample)
}

// PowerObservation converts a sensored measurement into a power-model
// training/validation observation.
func PowerObservation(m platform.Measurement) power.Observation {
	rates := make(map[pmu.Event]float64)
	for _, e := range pmu.AllEvents() {
		rates[e] = m.Sample.Rate(e)
	}
	return power.Observation{
		Workload: m.Workload, Cluster: m.Cluster,
		FreqMHz: m.FreqMHz, VoltageV: m.VoltageV,
		Rates: rates, PowerW: m.PowerWatts,
	}
}
