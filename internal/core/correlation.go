package core

import (
	"fmt"
	"math"
	"sort"

	"gemstone/internal/pmu"
	"gemstone/internal/stats"
)

// EventCorr is one bar of Fig. 5: a hardware PMC event, its correlation
// with the execution-time MPE across workloads, and the event's HCA
// cluster. A positive correlation means workloads with a high rate of
// this event tend to have their execution time underestimated.
type EventCorr struct {
	Event pmu.Event
	// Corr is the Pearson correlation with the execution-time MPE.
	Corr float64
	// Spearman is the rank correlation — a robustness cross-check when a
	// few extreme workloads dominate an event's dynamic range.
	Spearman float64
	Cluster  int
}

// PMCErrorCorrelation performs the Section IV-B analysis: correlate every
// hardware PMC event rate with the model's execution-time error, and
// cluster the events by their behaviour across workloads (1-|r| distance).
func PMCErrorCorrelation(hw, sim *RunSet, cluster string, freqMHz, kEvents int) ([]EventCorr, error) {
	X, names, events, err := pmcRateMatrix(hw, cluster, freqMHz)
	if err != nil {
		return nil, err
	}
	pes, err := peSeries(hw, sim, cluster, freqMHz, names)
	if err != nil {
		return nil, err
	}

	// Event series: one row per event across workloads.
	series := make([][]float64, len(events))
	for j := range events {
		col := make([]float64, len(names))
		for i := range names {
			col[i] = X[i][j]
		}
		series[j] = col
	}
	if kEvents <= 0 {
		kEvents = 30
	}
	if kEvents > len(events) {
		kEvents = len(events)
	}
	dend := stats.Agglomerate(stats.CorrelationDist(series), stats.AverageLinkage)
	labels, err := dend.CutK(kEvents)
	if err != nil {
		return nil, err
	}

	out := make([]EventCorr, len(events))
	for j, e := range events {
		out[j] = EventCorr{
			Event:    e,
			Corr:     stats.Pearson(series[j], pes),
			Spearman: stats.Spearman(series[j], pes),
			Cluster:  labels[j],
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Corr > out[j].Corr })
	return out, nil
}

// Gem5EventCorr is one row of the Section IV-C analysis: a gem5 statistic,
// its correlation with the execution-time MPE, and its HCA cluster among
// the selected statistics.
type Gem5EventCorr struct {
	Stat    string
	Corr    float64
	Cluster int
}

// Gem5EventCorrelation performs the Section IV-C analysis: correlate every
// gem5 statistic (rate over sim_seconds) with the execution-time error,
// keep statistics with |r| above minAbsCorr (the paper uses 0.3), and
// cluster the survivors by behaviour.
func Gem5EventCorrelation(hw, sim *RunSet, cluster string, freqMHz int, minAbsCorr float64, kClusters int) ([]Gem5EventCorr, error) {
	var names []string
	for key := range sim.Runs {
		if key.Cluster == cluster && key.FreqMHz == freqMHz {
			names = append(names, key.Workload)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("core: no %s runs at %d MHz in %s", cluster, freqMHz, sim.Platform)
	}
	sort.Strings(names)
	pes, err := peSeries(hw, sim, cluster, freqMHz, names)
	if err != nil {
		return nil, err
	}

	// Build per-stat rate series.
	statSeries := map[string][]float64{}
	for i, name := range names {
		m := sim.Runs[RunKey{Workload: name, Cluster: cluster, FreqMHz: freqMHz}]
		sm := Gem5Stats(m)
		secs := sm["sim_seconds"]
		if secs <= 0 {
			return nil, fmt.Errorf("core: non-positive sim_seconds for %s", name)
		}
		for stat, v := range sm {
			s, ok := statSeries[stat]
			if !ok {
				s = make([]float64, len(names))
				statSeries[stat] = s
			}
			s[i] = v / secs
		}
	}

	// Correlate and filter.
	type cand struct {
		stat   string
		corr   float64
		series []float64
	}
	var kept []cand
	for stat, s := range statSeries {
		if stats.StdDev(s) == 0 {
			continue
		}
		r := stats.Pearson(s, pes)
		if math.Abs(r) >= minAbsCorr {
			kept = append(kept, cand{stat: stat, corr: r, series: s})
		}
	}
	if len(kept) == 0 {
		return nil, nil
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].stat < kept[j].stat })

	rows := make([][]float64, len(kept))
	for i, c := range kept {
		rows[i] = c.series
	}
	if kClusters <= 0 {
		kClusters = 8
	}
	if kClusters > len(kept) {
		kClusters = len(kept)
	}
	dend := stats.Agglomerate(stats.CorrelationDist(rows), stats.AverageLinkage)
	labels, err := dend.CutK(kClusters)
	if err != nil {
		return nil, err
	}
	out := make([]Gem5EventCorr, len(kept))
	for i, c := range kept {
		out[i] = Gem5EventCorr{Stat: c.stat, Corr: c.corr, Cluster: labels[i]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Corr < out[j].Corr })
	return out, nil
}

// peSeries returns the signed percentage error per workload (aligned with
// names) at one operating point.
func peSeries(hw, sim *RunSet, cluster string, freqMHz int, names []string) ([]float64, error) {
	vs, err := Validate(hw, sim, cluster)
	if err != nil {
		return nil, err
	}
	byName := map[string]float64{}
	for _, e := range vs.ErrorsAt(freqMHz) {
		byName[e.Workload] = e.PE
	}
	out := make([]float64, len(names))
	for i, n := range names {
		pe, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("core: no error for workload %s at %d MHz", n, freqMHz)
		}
		out[i] = pe
	}
	return out, nil
}

// ClusterMembers returns the rows of group `label` (Fig. 5 helper).
func ClusterMembers(rows []EventCorr, label int) []EventCorr {
	var out []EventCorr
	for _, r := range rows {
		if r.Cluster == label {
			out = append(out, r)
		}
	}
	return out
}
