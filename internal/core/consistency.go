package core

import (
	"fmt"
	"sort"

	"gemstone/internal/stats"
)

// FrequencyConsistency quantifies the Section IV observation that "the
// workload errors have a similar pattern across all frequencies": the
// per-workload error vectors at two DVFS points are correlated.
type FrequencyConsistency struct {
	Cluster string
	// Pairs holds one row per frequency pair (ascending).
	Pairs []FreqPairCorr
	// MinCorrelation is the weakest pairwise correlation.
	MinCorrelation float64
}

// FreqPairCorr is the correlation of per-workload errors between two
// frequencies.
type FreqPairCorr struct {
	FreqA, FreqB int
	Pearson      float64
	Spearman     float64
}

// ErrorConsistency computes the cross-frequency correlation of the
// per-workload error pattern.
func ErrorConsistency(hw, sim *RunSet, cluster string) (*FrequencyConsistency, error) {
	vs, err := Validate(hw, sim, cluster)
	if err != nil {
		return nil, err
	}
	byFreq := map[int]map[string]float64{}
	for _, e := range vs.PerRun {
		m, ok := byFreq[e.FreqMHz]
		if !ok {
			m = map[string]float64{}
			byFreq[e.FreqMHz] = m
		}
		m[e.Workload] = e.PE
	}
	var freqs []int
	for f := range byFreq {
		freqs = append(freqs, f)
	}
	sort.Ints(freqs)
	if len(freqs) < 2 {
		return nil, fmt.Errorf("core: consistency needs at least two frequencies, have %v", freqs)
	}

	fc := &FrequencyConsistency{Cluster: cluster, MinCorrelation: 1}
	for i := 0; i < len(freqs); i++ {
		for j := i + 1; j < len(freqs); j++ {
			fa, fb := freqs[i], freqs[j]
			var a, b []float64
			for w, pe := range byFreq[fa] {
				if pe2, ok := byFreq[fb][w]; ok {
					a = append(a, pe)
					b = append(b, pe2)
				}
			}
			if len(a) < 3 {
				continue
			}
			pair := FreqPairCorr{
				FreqA: fa, FreqB: fb,
				Pearson:  stats.Pearson(a, b),
				Spearman: stats.Spearman(a, b),
			}
			fc.Pairs = append(fc.Pairs, pair)
			if pair.Pearson < fc.MinCorrelation {
				fc.MinCorrelation = pair.Pearson
			}
		}
	}
	if len(fc.Pairs) == 0 {
		return nil, fmt.Errorf("core: no overlapping workloads across frequencies")
	}
	return fc, nil
}
