package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"gemstone/internal/platform"
	"gemstone/internal/stats"
	"gemstone/internal/workload"
)

// Screen-then-resimulate campaigns. A full detailed validation campaign
// spends almost all of its time on operating points whose model error is
// unremarkable. Screen mode inverts the cost structure: it first sweeps
// the whole grid on *both* platforms at the atomic tier (an order of
// magnitude cheaper per run), flags the interesting points — the largest
// |percent error| between model and reference, plus robust-statistics
// outliers of the error distribution — and re-simulates only the flagged
// points at the detailed tier. The result is a pair of mixed-fidelity run
// sets in which every measurement carries its tier in
// Measurement.Fidelity, so downstream analyses and ledgers know exactly
// which numbers are pinned and which are predictions.

// ScreenOptions configures a screen-then-resimulate campaign.
type ScreenOptions struct {
	// Options scopes the underlying campaigns (workloads, clusters,
	// frequencies, cache, observer, tracer). Options.Fidelity is ignored:
	// the screening pass forces FidelityAtomic, the re-simulation pass
	// FidelityDetailed.
	Options CollectOptions
	// TopK flags the K points with the largest |percent error| of
	// execution time between the two platforms. 0 means ScreenDefaultTopK;
	// negative flags none (outliers only).
	TopK int
	// OutlierZ additionally flags every point whose signed percent error
	// has a robust z-score (median/MAD) above this threshold. 0 means
	// ScreenDefaultOutlierZ; negative disables outlier flagging.
	OutlierZ float64
	// Collect, when non-nil, replaces the local campaign runner — the
	// service layer injects the distributed coordinator here. Every
	// sub-campaign of the screen (two atomic sweeps, then the detailed
	// re-simulations) goes through it.
	Collect func(ctx context.Context, pl *platform.Platform, opt CollectOptions) (*RunSet, error)
}

// Screen-mode defaults.
const (
	ScreenDefaultTopK     = 8
	ScreenDefaultOutlierZ = 3.5
)

// ScreenResult is the outcome of a screen-then-resimulate campaign.
type ScreenResult struct {
	// HW and Sim are the mixed-fidelity run sets: atomic-tier predictions
	// everywhere except the flagged points, which hold detailed
	// measurements. Per-run provenance is in Measurement.Fidelity.
	HW, Sim *RunSet
	// Flagged lists the re-simulated points, sorted by descending
	// |percent error| as screened.
	Flagged []RunKey
	// ScreenedPE maps every screened point to the signed percent error of
	// the model's execution time against the reference, as measured at the
	// atomic tier.
	ScreenedPE map[RunKey]float64
}

// Screen runs a screen-then-resimulate campaign: both platforms at the
// atomic tier over the full grid, error screening, then detailed
// re-simulation of the flagged points on both platforms. hwPl is the
// reference platform, simPl the model under validation.
func Screen(ctx context.Context, hwPl, simPl *platform.Platform, opt ScreenOptions) (*ScreenResult, error) {
	collect := opt.Collect
	if collect == nil {
		collect = func(ctx context.Context, pl *platform.Platform, o CollectOptions) (*RunSet, error) {
			return Collect(ctx, pl, o)
		}
	}
	topK := opt.TopK
	if topK == 0 {
		topK = ScreenDefaultTopK
	}
	outlierZ := opt.OutlierZ
	if outlierZ == 0 {
		outlierZ = ScreenDefaultOutlierZ
	}

	// Phase 1: atomic sweeps of the full grid on both platforms. The
	// options are filled against the reference platform up front so both
	// platforms sweep the identical grid and phase 3 can resolve flagged
	// workload names back to profiles.
	atomicOpt := opt.Options
	atomicOpt.Fidelity = platform.FidelityAtomic
	if err := atomicOpt.fill(hwPl); err != nil {
		return nil, err
	}
	if atomicOpt.Name != "" {
		atomicOpt.Name = opt.Options.Name + "#screen"
	}
	hwRuns, err := collect(ctx, hwPl, atomicOpt)
	if err != nil {
		return nil, fmt.Errorf("core: screen pass on %s: %w", hwPl.Name(), err)
	}
	simRuns, err := collect(ctx, simPl, atomicOpt)
	if err != nil {
		return nil, fmt.Errorf("core: screen pass on %s: %w", simPl.Name(), err)
	}

	// Phase 2: screen. Signed percent error of the model's execution time
	// per operating point, then top-K by magnitude union robust outliers.
	keys := make([]RunKey, 0, len(hwRuns.Runs))
	for k := range hwRuns.Runs {
		if _, ok := simRuns.Runs[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Cluster != b.Cluster {
			return a.Cluster < b.Cluster
		}
		return a.FreqMHz < b.FreqMHz
	})
	pes := make(map[RunKey]float64, len(keys))
	ordered := make([]float64, len(keys))
	for i, k := range keys {
		pe := stats.PercentError(hwRuns.Runs[k].Seconds, simRuns.Runs[k].Seconds)
		pes[k] = pe
		ordered[i] = pe
	}

	flagged := map[RunKey]bool{}
	byMag := append([]RunKey(nil), keys...)
	sort.SliceStable(byMag, func(i, j int) bool {
		return math.Abs(pes[byMag[i]]) > math.Abs(pes[byMag[j]])
	})
	for i := 0; i < topK && i < len(byMag); i++ {
		flagged[byMag[i]] = true
	}
	if outlierZ > 0 && len(keys) > 0 {
		for i, z := range stats.RobustZ(ordered) {
			if z > outlierZ {
				flagged[keys[i]] = true
			}
		}
	}
	result := &ScreenResult{HW: hwRuns, Sim: simRuns, ScreenedPE: pes}
	for _, k := range byMag {
		if flagged[k] {
			result.Flagged = append(result.Flagged, k)
		}
	}
	if len(result.Flagged) == 0 {
		return result, nil
	}

	// Phase 3: re-simulate the flagged points detailed on both platforms
	// and merge. Flagged points are grouped per (workload, cluster) so one
	// sub-campaign sweeps all flagged frequencies of a workload — the
	// grouping keeps the campaign grid-shaped (Collect options describe a
	// cross product) without re-running anything that was not flagged.
	profiles := map[string]workload.Profile{}
	for _, prof := range atomicOpt.Workloads {
		profiles[prof.Name] = prof
	}
	type group struct {
		prof  workload.Profile
		freqs map[string][]int
	}
	groups := map[string]*group{}
	var groupOrder []string
	for _, k := range result.Flagged {
		prof, ok := profiles[k.Workload]
		if !ok {
			return nil, fmt.Errorf("core: screen flagged unknown workload %q", k.Workload)
		}
		g := groups[k.Workload]
		if g == nil {
			g = &group{prof: prof, freqs: map[string][]int{}}
			groups[k.Workload] = g
			groupOrder = append(groupOrder, k.Workload)
		}
		g.freqs[k.Cluster] = append(g.freqs[k.Cluster], k.FreqMHz)
	}
	for gi, name := range groupOrder {
		g := groups[name]
		detOpt := opt.Options
		detOpt.Fidelity = platform.FidelityDetailed
		detOpt.Workloads = []workload.Profile{g.prof}
		detOpt.Clusters = nil
		detOpt.Freqs = map[string][]int{}
		for cl, fs := range g.freqs {
			sort.Ints(fs)
			detOpt.Clusters = append(detOpt.Clusters, cl)
			detOpt.Freqs[cl] = fs
		}
		sort.Strings(detOpt.Clusters)
		if detOpt.Name != "" {
			detOpt.Name = fmt.Sprintf("%s#resim-%d", opt.Options.Name, gi)
		}
		for _, pair := range []struct {
			pl *platform.Platform
			rs *RunSet
		}{{hwPl, hwRuns}, {simPl, simRuns}} {
			det, err := collect(ctx, pair.pl, detOpt)
			if err != nil {
				return nil, fmt.Errorf("core: re-simulating flagged %s on %s: %w", name, pair.pl.Name(), err)
			}
			for k, m := range det.Runs {
				pair.rs.Runs[k] = m
			}
		}
	}
	return result, nil
}
