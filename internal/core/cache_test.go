package core

import (
	"os"
	"path/filepath"
	"testing"

	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/platform"
	"gemstone/internal/workload"
)

// TestCacheKeyInvalidation is the hit/miss table: every input the paper's
// methodology varies — workload behaviour, DVFS point, cluster, platform,
// model version — must produce a distinct key, and identical inputs must
// produce an identical key.
func TestCacheKeyInvalidation(t *testing.T) {
	prof := workload.Validation()[0]
	base, err := CacheKey(hw.Platform(), prof, hw.ClusterA15, 1000)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("identical inputs hit", func(t *testing.T) {
		again, err := CacheKey(hw.Platform(), prof, hw.ClusterA15, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if again != base {
			t.Fatal("same run derived two different keys")
		}
	})

	changed := prof
	changed.TotalInsts++
	renamed := prof
	renamed.Name = prof.Name + "-variant"
	misses := []struct {
		name string
		pl   *platform.Platform
		prof workload.Profile
		cl   string
		freq int
	}{
		{"changed workload profile", hw.Platform(), changed, hw.ClusterA15, 1000},
		{"renamed workload", hw.Platform(), renamed, hw.ClusterA15, 1000},
		{"changed DVFS point", hw.Platform(), prof, hw.ClusterA15, 1400},
		{"changed cluster", hw.Platform(), prof, hw.ClusterA7, 1000},
		{"hardware vs gem5", gem5.Platform(gem5.V1), prof, hw.ClusterA15, 1000},
	}
	for _, m := range misses {
		t.Run(m.name+" misses", func(t *testing.T) {
			key, err := CacheKey(m.pl, m.prof, m.cl, m.freq)
			if err != nil {
				t.Fatal(err)
			}
			if key == base {
				t.Fatal("key unchanged; stale measurement would be replayed")
			}
		})
	}

	t.Run("model version V1 vs V2 misses", func(t *testing.T) {
		k1, err := CacheKey(gem5.Platform(gem5.V1), prof, hw.ClusterA15, 1000)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := CacheKey(gem5.Platform(gem5.V2), prof, hw.ClusterA15, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if k1 == k2 {
			t.Fatal("V1 and V2 share a key; the Section VII comparison would read stale runs")
		}
	})

	t.Run("unknown cluster errors", func(t *testing.T) {
		if _, err := CacheKey(hw.Platform(), prof, "m7", 1000); err == nil {
			t.Fatal("want an error for an unknown cluster")
		}
	})
}

func testMeasurement(sec float64) platform.Measurement {
	return platform.Measurement{Platform: "t", Cluster: "a15", Workload: "w", FreqMHz: 1000, Seconds: sec}
}

func TestMemoryCacheLRU(t *testing.T) {
	c := NewMemoryCache(2)
	c.Put("k1", testMeasurement(1))
	c.Put("k2", testMeasurement(2))
	if _, ok := c.Get("k1"); !ok { // refresh k1: k2 becomes the eviction victim
		t.Fatal("k1 missing")
	}
	c.Put("k3", testMeasurement(3))
	if _, ok := c.Get("k2"); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	for _, k := range []string{"k1", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	c.Put("k3", testMeasurement(33)) // overwrite must not grow the cache
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if m, _ := c.Get("k3"); m.Seconds != 33 {
		t.Fatal("overwrite did not replace the entry")
	}
}

// TestNamespaceCacheIsolation is the tenancy contract: the same key
// written through two namespaces lands in two distinct entries, each
// readable only through its own namespace, and the derived keys stay
// filesystem-safe hex so a DiskCache backing works unchanged.
func TestNamespaceCacheIsolation(t *testing.T) {
	inner := NewMemoryCache(16)
	a := NewNamespaceCache("tenant-a", inner)
	b := NewNamespaceCache("tenant-b", inner)

	a.Put("k", testMeasurement(1))
	if _, ok := b.Get("k"); ok {
		t.Fatal("tenant-b read tenant-a's entry")
	}
	if _, ok := inner.Get("k"); ok {
		t.Fatal("namespaced key stored verbatim in the shared cache")
	}
	m, ok := a.Get("k")
	if !ok || m.Seconds != 1 {
		t.Fatal("tenant-a lost its own entry")
	}

	b.Put("k", testMeasurement(2))
	if m, _ := a.Get("k"); m.Seconds != 1 {
		t.Fatal("tenant-b's write clobbered tenant-a's entry")
	}
	if m, _ := b.Get("k"); m.Seconds != 2 {
		t.Fatal("tenant-b read back the wrong entry")
	}

	t.Run("length framing", func(t *testing.T) {
		// (ns="a", key="bc") must not alias (ns="ab", key="c").
		NewNamespaceCache("a", inner).Put("bc", testMeasurement(3))
		if _, ok := NewNamespaceCache("ab", inner).Get("c"); ok {
			t.Fatal("namespace/key boundary ambiguous: concatenation aliases")
		}
	})

	t.Run("disk-backed", func(t *testing.T) {
		disk, err := NewDiskCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		// A hostile namespace (path separators, dots) must still produce
		// a plain hex file name inside the cache dir.
		ns := NewNamespaceCache("../t/../../evil", disk)
		ns.Put("k", testMeasurement(4))
		if m, ok := ns.Get("k"); !ok || m.Seconds != 4 {
			t.Fatal("disk round trip through namespace failed")
		}
		ents, err := os.ReadDir(disk.Dir())
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 1 {
			t.Fatalf("expected 1 cache file inside the dir, found %d", len(ents))
		}
	})
}

func TestDiskCacheRoundTrip(t *testing.T) {
	c, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("hit on an empty cache")
	}
	want := testMeasurement(4.2)
	c.Put("k", want)
	got, ok := c.Get("k")
	if !ok || got.Seconds != want.Seconds || got.Workload != want.Workload {
		t.Fatalf("round trip lost the measurement: %+v", got)
	}
}

// TestDiskCacheCorruptionIsMiss proves the graceful-miss contract: a
// truncated, garbled, or cross-linked entry is a miss, never an error or
// a wrong measurement.
func TestDiskCacheCorruptionIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", testMeasurement(1))
	path := filepath.Join(dir, "k.run")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name string
		data []byte
	}{
		{"truncated", pristine[:len(pristine)/2]},
		{"empty", nil},
		{"garbage", []byte("not a cache entry at all")},
		{"bit flip", func() []byte {
			b := append([]byte(nil), pristine...)
			b[len(b)/2] ^= 0xFF
			return b
		}()},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get("k"); ok {
				t.Fatal("corrupted entry served as a hit")
			}
		})
	}

	t.Run("cross-linked key", func(t *testing.T) {
		// A valid entry copied under another key's filename must not be
		// served: the embedded key no longer matches.
		other := filepath.Join(dir, "other.run")
		if err := os.WriteFile(other, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get("other"); ok {
			t.Fatal("entry for key \"k\" served under key \"other\"")
		}
	})

	t.Run("recovers after re-put", func(t *testing.T) {
		c.Put("k", testMeasurement(2))
		if m, ok := c.Get("k"); !ok || m.Seconds != 2 {
			t.Fatal("cache did not recover from corruption")
		}
	})
}

func TestTieredCachePromotesDiskHits(t *testing.T) {
	disk, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disk.Put("k", testMeasurement(7))
	mem := NewMemoryCache(4)
	tc := NewTieredCache(mem, disk)
	if _, ok := tc.Get("k"); !ok {
		t.Fatal("disk entry invisible through the tiered cache")
	}
	if _, ok := mem.Get("k"); !ok {
		t.Fatal("disk hit not promoted into the memory tier")
	}
	tc.Put("k2", testMeasurement(8))
	if _, ok := mem.Get("k2"); !ok {
		t.Fatal("put skipped the memory tier")
	}
	if _, ok := disk.Get("k2"); !ok {
		t.Fatal("put skipped the disk tier")
	}
}
