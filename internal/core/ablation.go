package core

import (
	"context"
	"fmt"

	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/workload"
)

// AblationRow is one configuration of an ablation study: the big-model
// defect set it carries and the resulting execution-time error against
// the hardware reference.
type AblationRow struct {
	Label   string
	Defects gem5.Defect
	MAPE    float64
	MPE     float64
}

// AblationMode selects how defects are toggled.
type AblationMode int

const (
	// FixOneDefect runs the full defect set minus one defect per row —
	// "what would fixing just this component do?" This is the experiment
	// behind the paper's Section IV-F warning: repairing the L1 ITLB size
	// while the BP bug remains makes the overall error larger.
	FixOneDefect AblationMode = iota
	// OnlyOneDefect runs each defect in isolation — "how much error does
	// this component contribute on its own?"
	OnlyOneDefect
)

// AblationStudy validates a family of big-model configurations against
// hardware at one frequency. The first row is always the baseline: all
// defects for FixOneDefect, no defects for OnlyOneDefect.
func AblationStudy(hwRuns *RunSet, profiles []workload.Profile, freqMHz int, mode AblationMode) ([]AblationRow, error) {
	if len(profiles) == 0 {
		profiles = workload.Validation()
	}
	configs := []struct {
		label   string
		defects gem5.Defect
	}{}
	switch mode {
	case FixOneDefect:
		configs = append(configs, struct {
			label   string
			defects gem5.Defect
		}{"baseline (all defects)", gem5.AllDefects})
		for _, d := range gem5.Defects() {
			configs = append(configs, struct {
				label   string
				defects gem5.Defect
			}{"fix " + d.String(), gem5.AllDefects &^ d})
		}
	case OnlyOneDefect:
		configs = append(configs, struct {
			label   string
			defects gem5.Defect
		}{"baseline (no defects)", 0})
		for _, d := range gem5.Defects() {
			configs = append(configs, struct {
				label   string
				defects gem5.Defect
			}{"only " + d.String(), d})
		}
	default:
		return nil, fmt.Errorf("core: unknown ablation mode %d", mode)
	}

	var rows []AblationRow
	for _, cfg := range configs {
		pl := gem5.PlatformWithDefects(cfg.defects)
		runs, err := Collect(context.Background(), pl, CollectOptions{
			Workloads: profiles,
			Clusters:  []string{hw.ClusterA15},
			Freqs:     map[string][]int{hw.ClusterA15: {freqMHz}},
		})
		if err != nil {
			return nil, err
		}
		vs, err := Validate(hwRuns, runs, hw.ClusterA15)
		if err != nil {
			return nil, err
		}
		s, ok := vs.ByFreq[freqMHz]
		if !ok {
			return nil, fmt.Errorf("core: ablation: no summary at %d MHz", freqMHz)
		}
		rows = append(rows, AblationRow{
			Label: cfg.label, Defects: cfg.defects,
			MAPE: s.MAPE, MPE: s.MPE,
		})
	}
	return rows, nil
}
