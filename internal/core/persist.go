package core

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"gemstone/internal/platform"
)

// Run-set persistence: a measurement campaign (Experiments 1-4) can be
// archived and re-analysed later without re-running any simulation — the
// repository analogue of the paper's released experimental datasets
// (DOI 10.5258/SOTON/D0420). The format is gzip-compressed gob of the
// RunSet with a small versioned envelope.
//
// The encoding is canonical: runs are serialised as a slice sorted by
// (workload, cluster, frequency), never as a Go map, so the same RunSet
// always produces the same bytes. That makes archives diffable and
// content-hashable, and it is what lets the determinism test compare a
// parallel collection against a sequential one byte-for-byte.

// runSetFormatVersion 2 replaced the version-1 map encoding with the
// canonical sorted-slice encoding.
const runSetFormatVersion = 2

// runRecord is one archived measurement.
type runRecord struct {
	Key RunKey
	M   platform.Measurement
}

type runSetEnvelope struct {
	Version  int
	Platform string
	// Records is the canonical sorted run list (format version 2).
	Records []runRecord
	// Runs carries legacy version-1 archives (map-encoded RunSet).
	Runs *RunSet
}

// sortedRecords returns the run set's canonical record order.
func sortedRecords(rs *RunSet) []runRecord {
	recs := make([]runRecord, 0, len(rs.Runs))
	for k, m := range rs.Runs {
		recs = append(recs, runRecord{Key: k, M: m})
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i].Key, recs[j].Key
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Cluster != b.Cluster {
			return a.Cluster < b.Cluster
		}
		return a.FreqMHz < b.FreqMHz
	})
	return recs
}

// SaveRunSet archives a run set to w. The output is deterministic: the
// same runs produce the same bytes regardless of how (or in what order)
// they were collected.
func SaveRunSet(w io.Writer, rs *RunSet) error {
	if rs == nil || len(rs.Runs) == 0 {
		return fmt.Errorf("core: refusing to save an empty run set")
	}
	zw := gzip.NewWriter(w)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(runSetEnvelope{
		Version:  runSetFormatVersion,
		Platform: rs.Platform,
		Records:  sortedRecords(rs),
	}); err != nil {
		return fmt.Errorf("core: encoding run set: %w", err)
	}
	return zw.Close()
}

// LoadRunSet restores a run set saved by SaveRunSet. It reads both the
// current canonical format and legacy version-1 archives. Malformed input
// of any kind — truncation, corruption, or bytes that were never an
// archive — returns an error, never a panic.
func LoadRunSet(r io.Reader) (*RunSet, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: opening run-set archive: %w", err)
	}
	defer zr.Close()
	var env runSetEnvelope
	if err := gob.NewDecoder(zr).Decode(&env); err != nil {
		return nil, fmt.Errorf("core: decoding run set: %w", err)
	}
	// Drain to EOF so the gzip CRC covering the whole archive is checked;
	// truncation and bit rot surface here as errors, not as silent data.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return nil, fmt.Errorf("core: verifying run-set archive: %w", err)
	}
	switch env.Version {
	case 1:
		if env.Runs == nil || len(env.Runs.Runs) == 0 {
			return nil, fmt.Errorf("core: archive contains no runs")
		}
		return env.Runs, nil
	case runSetFormatVersion:
		if len(env.Records) == 0 {
			return nil, fmt.Errorf("core: archive contains no runs")
		}
		rs := &RunSet{Platform: env.Platform, Runs: make(map[RunKey]platform.Measurement, len(env.Records))}
		for _, rec := range env.Records {
			rs.Runs[rec.Key] = rec.M
		}
		return rs, nil
	default:
		return nil, fmt.Errorf("core: unsupported run-set version %d", env.Version)
	}
}
