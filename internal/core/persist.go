package core

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
)

// Run-set persistence: a measurement campaign (Experiments 1-4) can be
// archived and re-analysed later without re-running any simulation — the
// repository analogue of the paper's released experimental datasets
// (DOI 10.5258/SOTON/D0420). The format is gzip-compressed gob of the
// RunSet with a small versioned envelope.

const runSetFormatVersion = 1

type runSetEnvelope struct {
	Version  int
	Platform string
	Runs     *RunSet
}

// SaveRunSet archives a run set to w.
func SaveRunSet(w io.Writer, rs *RunSet) error {
	if rs == nil || len(rs.Runs) == 0 {
		return fmt.Errorf("core: refusing to save an empty run set")
	}
	zw := gzip.NewWriter(w)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(runSetEnvelope{
		Version:  runSetFormatVersion,
		Platform: rs.Platform,
		Runs:     rs,
	}); err != nil {
		return fmt.Errorf("core: encoding run set: %w", err)
	}
	return zw.Close()
}

// LoadRunSet restores a run set saved by SaveRunSet.
func LoadRunSet(r io.Reader) (*RunSet, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: opening run-set archive: %w", err)
	}
	defer zr.Close()
	var env runSetEnvelope
	if err := gob.NewDecoder(zr).Decode(&env); err != nil {
		return nil, fmt.Errorf("core: decoding run set: %w", err)
	}
	if env.Version != runSetFormatVersion {
		return nil, fmt.Errorf("core: unsupported run-set version %d", env.Version)
	}
	if env.Runs == nil || len(env.Runs.Runs) == 0 {
		return nil, fmt.Errorf("core: archive contains no runs")
	}
	return env.Runs, nil
}
