package core

import (
	"bytes"
	"compress/gzip"
	"context"
	"testing"

	"gemstone/internal/hw"
	"gemstone/internal/workload"
)

// FuzzLoadRunSet feeds arbitrary bytes to the archive loader. The
// contract under test: LoadRunSet never panics, and when it does accept
// input, the result is a well-formed, non-empty run set.
func FuzzLoadRunSet(f *testing.F) {
	// Seed with a genuine archive so mutations explore the deep decode
	// paths (gzip frame, gob envelope, version switch), not just header
	// rejection. More seeds live in testdata/fuzz/FuzzLoadRunSet.
	rs, err := Collect(context.Background(), hw.Platform(), CollectOptions{
		Workloads: workload.Validation()[:2],
		Clusters:  []string{hw.ClusterA15},
		Freqs:     map[string][]int{hw.ClusterA15: {1000}},
	})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := SaveRunSet(&valid, rs); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])

	// A gzip frame whose payload is not a gob stream.
	var notGob bytes.Buffer
	zw := gzip.NewWriter(&notGob)
	zw.Write([]byte("gzip yes, gob no"))
	zw.Close()
	f.Add(notGob.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadRunSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		if loaded == nil || len(loaded.Runs) == 0 {
			t.Fatal("LoadRunSet returned success with an empty run set")
		}
		// Anything accepted must survive a save/load round trip.
		var buf bytes.Buffer
		if err := SaveRunSet(&buf, loaded); err != nil {
			t.Fatalf("accepted archive cannot be re-saved: %v", err)
		}
		if _, err := LoadRunSet(&buf); err != nil {
			t.Fatalf("re-saved archive cannot be re-loaded: %v", err)
		}
	})
}
