package core

import (
	"context"
	"errors"
	"testing"

	"gemstone/internal/hw"
)

// The campaign error chain is part of the public contract: callers detect
// cancellation and per-run failures with errors.Is/errors.As, never by
// string matching. These tests pin the chain end to end.

// TestCollectErrorCancelCause pins that a cancelled campaign's error chain
// reaches context.Canceled through errors.Is.
func TestCollectErrorCancelCause(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CollectContext(ctx, hw.Platform(), smallCampaign())
	if err == nil {
		t.Fatal("expected an error from a cancelled campaign")
	}
	var ce *CollectError
	if !errors.As(err, &ce) {
		t.Fatalf("errors.As(*CollectError) failed on %T", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false; err = %v", err)
	}
	if !errors.Is(ce.Cause, context.Canceled) {
		t.Fatalf("Cause = %v, want context.Canceled", ce.Cause)
	}
}

// TestCollectErrorDeadlineCause pins that a deadline-exceeded campaign
// reports context.DeadlineExceeded — the context.Cause, not the bare
// context.Canceled a plain ctx.Err() chain would surface.
func TestCollectErrorDeadlineCause(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	_, err := CollectContext(ctx, hw.Platform(), smallCampaign())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) = false; err = %v", err)
	}
}

// TestCollectErrorCustomCause pins that a caller-supplied cancellation
// cause (context.WithCancelCause) propagates into the CollectError chain.
func TestCollectErrorCustomCause(t *testing.T) {
	why := errors.New("power budget exhausted")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(why)
	_, err := CollectContext(ctx, hw.Platform(), smallCampaign())
	if !errors.Is(err, why) {
		t.Fatalf("errors.Is(err, cause) = false; err = %v", err)
	}
	var ce *CollectError
	if !errors.As(err, &ce) || !errors.Is(ce.Cause, why) {
		t.Fatalf("Cause = %v, want %v", ce.Cause, why)
	}
}

// TestRunErrorUnwrapsThroughCollectError pins that a failing run's
// underlying error is reachable with errors.As/Is through the
// CollectError multi-unwrap.
func TestRunErrorUnwrapsThroughCollectError(t *testing.T) {
	opt := smallCampaign()
	// An unknown frequency fails inside the simulation path of every job.
	opt.Freqs = map[string][]int{hw.ClusterA15: {123}}
	_, err := Collect(context.Background(), hw.Platform(), opt)
	if err == nil {
		t.Fatal("expected a run failure")
	}
	var re RunError
	if !errors.As(err, &re) {
		t.Fatalf("errors.As(RunError) failed on %v", err)
	}
	if re.Key.FreqMHz != 123 {
		t.Fatalf("RunError key = %v", re.Key)
	}
	if re.Unwrap() == nil {
		t.Fatal("RunError.Unwrap returned nil")
	}
}

// TestPlanCampaignMatchesCollect pins that the exported planner produces
// the job list CollectContext runs: same keys, same order, and cache keys
// exactly when a cache is configured.
func TestPlanCampaignMatchesCollect(t *testing.T) {
	pl := hw.Platform()
	opt := smallCampaign()
	jobs, err := PlanCampaign(pl, &opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 {
		t.Fatalf("planned %d jobs, want 8", len(jobs))
	}
	for _, j := range jobs {
		if j.CacheKey != "" {
			t.Fatalf("cache key planned without a cache: %v", j.Key)
		}
		if j.Profile.Name != j.Key.Workload {
			t.Fatalf("profile %q under key %v", j.Profile.Name, j.Key)
		}
	}

	withCache := smallCampaign()
	withCache.Cache = NewMemoryCache(0)
	cachedJobs, err := PlanCampaign(pl, &withCache)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range cachedJobs {
		if j.Key != jobs[i].Key {
			t.Fatalf("job %d key %v diverged from plain plan %v", i, j.Key, jobs[i].Key)
		}
		want, err := CacheKey(pl, j.Profile, j.Key.Cluster, j.Key.FreqMHz)
		if err != nil {
			t.Fatal(err)
		}
		if j.CacheKey != want {
			t.Fatalf("job %d cache key %q, want %q", i, j.CacheKey, want)
		}
	}
}
