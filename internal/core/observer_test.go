package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gemstone/internal/gem5"
	"gemstone/internal/hw"
	"gemstone/internal/obs"
	"gemstone/internal/platform"
)

// recordingObserver appends a line per callback to a shared log, tagged
// with its id, so fan-out order is assertable.
type recordingObserver struct {
	id  string
	log *[]string
}

func (r *recordingObserver) note(event string) { *r.log = append(*r.log, r.id+":"+event) }

func (r *recordingObserver) CollectStart(p string, n int) { r.note(fmt.Sprintf("start(%s,%d)", p, n)) }
func (r *recordingObserver) RunStart(k RunKey)            { r.note("runstart(" + k.Workload + ")") }
func (r *recordingObserver) CacheHit(k RunKey)            { r.note("hit(" + k.Workload + ")") }
func (r *recordingObserver) RunDone(k RunKey, _ platform.Measurement, _ time.Duration) {
	r.note("done(" + k.Workload + ")")
}
func (r *recordingObserver) RunError(k RunKey, err error) { r.note("error(" + k.Workload + ")") }
func (r *recordingObserver) CollectDone(s CollectStats)   { r.note("collectdone") }

func TestMultiObserverNilDropping(t *testing.T) {
	if got := MultiObserver(); got != nil {
		t.Fatalf("MultiObserver() = %v, want nil", got)
	}
	if got := MultiObserver(nil, nil); got != nil {
		t.Fatalf("MultiObserver(nil, nil) = %v, want nil", got)
	}
}

func TestMultiObserverSingleCollapse(t *testing.T) {
	var log []string
	a := &recordingObserver{id: "a", log: &log}
	got := MultiObserver(nil, a, nil)
	if got != a {
		t.Fatalf("single surviving observer not collapsed: %T", got)
	}
}

func TestMultiObserverFanOutOrder(t *testing.T) {
	var log []string
	a := &recordingObserver{id: "a", log: &log}
	b := &recordingObserver{id: "b", log: &log}
	mo := MultiObserver(a, nil, b)
	if mo == a || mo == b {
		t.Fatal("two observers collapsed to one")
	}

	key := RunKey{Workload: "w", Cluster: "a15", FreqMHz: 1000}
	mo.CollectStart("p", 2)
	mo.RunStart(key)
	mo.RunDone(key, platform.Measurement{}, time.Millisecond)
	mo.CacheHit(key)
	mo.RunError(key, errors.New("boom"))
	mo.CollectDone(CollectStats{})

	want := []string{
		"a:start(p,2)", "b:start(p,2)",
		"a:runstart(w)", "b:runstart(w)",
		"a:done(w)", "b:done(w)",
		"a:hit(w)", "b:hit(w)",
		"a:error(w)", "b:error(w)",
		"a:collectdone", "b:collectdone",
	}
	if len(log) != len(want) {
		t.Fatalf("got %d callback records, want %d: %v", len(log), len(want), log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("callback %d = %q, want %q (full: %v)", i, log[i], want[i], log)
		}
	}
}

func TestCollectStatsString(t *testing.T) {
	s := CollectStats{
		Platform: "odroid-xu3", Jobs: 10, Simulated: 6, CacheHits: 2,
		Errors: 1, Skipped: 1,
		PlanTime:  1500 * time.Microsecond,
		CacheTime: 250 * time.Microsecond,
		SimTime:   3 * time.Second,
		WallTime:  1200 * time.Millisecond,
	}
	got := s.String()
	for _, want := range []string{
		"odroid-xu3", "10 jobs", "6 simulated", "2 cache hits",
		"1 errors", "1 skipped", "plan 1.5ms", "cache 250µs",
		"sim 3s", "wall 1.2s",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q, missing %q", got, want)
		}
	}
}

// TestMetricsMultiPlatformLabel is the regression test for the aggregate
// label: accumulating campaigns from two platforms used to leave only the
// last platform's name on the combined stats.
func TestMetricsMultiPlatformLabel(t *testing.T) {
	m := NewMetrics()
	m.CollectStart("odroid-xu3", 4)
	if got := m.Stats().Platform; got != "odroid-xu3" {
		t.Fatalf("single-platform label = %q", got)
	}
	m.CollectStart("gem5-ex5-v1", 4)
	m.CollectStart("odroid-xu3", 2) // repeat must not duplicate
	if got := m.Stats().Platform; got != "gem5-ex5-v1+odroid-xu3" {
		t.Fatalf("multi-platform label = %q, want gem5-ex5-v1+odroid-xu3", got)
	}
	if got := m.Stats().Jobs; got != 10 {
		t.Fatalf("jobs = %d, want 10", got)
	}
	wantList := []string{"gem5-ex5-v1", "odroid-xu3"}
	gotList := m.Platforms()
	if len(gotList) != 2 || gotList[0] != wantList[0] || gotList[1] != wantList[1] {
		t.Fatalf("Platforms() = %v, want %v", gotList, wantList)
	}
}

func TestMetricsZeroValue(t *testing.T) {
	var m Metrics // not via NewMetrics
	m.CollectStart("p", 1)
	if got := m.Stats().Platform; got != "p" {
		t.Fatalf("zero-value Metrics label = %q", got)
	}
}

// TestRegistryObserver runs a cached campaign twice against a registry
// observer and asserts the exported counters: per-outcome run totals, the
// cache hit ratio, and that the architectural tallies (stall cycles,
// cache misses) flow through from the simulator.
func TestRegistryObserver(t *testing.T) {
	reg := obs.NewRegistry()
	o := NewRegistryObserver(reg)
	pl := hw.Platform()
	cache := NewMemoryCache(0)
	opt := func() CollectOptions {
		c := smallCampaign()
		c.Cache = cache
		c.Observer = o
		return c
	}
	if _, err := Collect(context.Background(), pl, opt()); err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(context.Background(), pl, opt()); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap[`gemstone_campaign_runs_total{result="simulated"}`]; got != 8 {
		t.Fatalf("simulated = %v, want 8", got)
	}
	if got := snap[`gemstone_campaign_runs_total{result="cache_hit"}`]; got != 8 {
		t.Fatalf("cache_hit = %v, want 8", got)
	}
	if got := snap["gemstone_campaigns_total"]; got != 2 {
		t.Fatalf("campaigns = %v, want 2", got)
	}
	if got := snap["gemstone_campaign_cache_hit_ratio"]; got != 1 {
		t.Fatalf("hit ratio after warm campaign = %v, want 1", got)
	}
	if got := snap["gemstone_campaign_inflight_runs"]; got != 0 {
		t.Fatalf("inflight after campaign = %v, want 0", got)
	}
	if got := snap["gemstone_run_sim_seconds_count"]; got != 8 {
		t.Fatalf("sim time observations = %v, want 8", got)
	}
	if got := snap["gemstone_sim_cycles_total"]; got <= 0 {
		t.Fatalf("sim cycles = %v, want > 0", got)
	}
	if got := snap[`gemstone_pipeline_stall_cycles_total{cause="mem"}`]; got <= 0 {
		t.Fatalf("mem stall cycles = %v, want > 0", got)
	}
	if got := snap[`gemstone_cache_misses_total{level="l1d"}`]; got <= 0 {
		t.Fatalf("l1d misses = %v, want > 0", got)
	}
	if got := snap[`gemstone_tlb_misses_total{side="d"}`]; got <= 0 {
		t.Fatalf("dtlb misses = %v, want > 0", got)
	}
}

// TestCollectTracing runs a cached campaign under a tracer and asserts
// the span structure: campaign root with plan child, per-worker roots,
// simulate spans wrapping the platform phases, and cache get/put spans.
func TestCollectTracing(t *testing.T) {
	tr := obs.NewTracer()
	opt := smallCampaign()
	opt.Cache = NewMemoryCache(0)
	opt.Tracer = tr
	opt.Workers = 2
	if _, err := Collect(context.Background(), gem5.Platform(gem5.V1), opt); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	for _, ev := range tr.Events() {
		counts[ev.Name]++
	}
	if counts["collect"] != 1 || counts["plan"] != 1 {
		t.Fatalf("campaign spans: %v", counts)
	}
	if counts["worker"] != 2 {
		t.Fatalf("worker spans = %d, want 2", counts["worker"])
	}
	if counts["simulate"] != 8 || counts["cache-get"] != 8 || counts["cache-put"] != 8 {
		t.Fatalf("per-job spans: %v", counts)
	}
	// The simulator phases nest under each simulate span.
	if counts["expand"] != 8 || counts["pipeline"] != 8 || counts["collate"] != 8 {
		t.Fatalf("platform phase spans: %v", counts)
	}
	// gem5 platforms have no sensors: no power phase.
	if counts["power"] != 0 {
		t.Fatalf("power spans on an unsensored platform: %v", counts)
	}

	// A sensored platform records the power phase too.
	tr2 := obs.NewTracer()
	opt2 := smallCampaign()
	opt2.Tracer = tr2
	if _, err := Collect(context.Background(), hw.Platform(), opt2); err != nil {
		t.Fatal(err)
	}
	counts2 := map[string]int{}
	for _, ev := range tr2.Events() {
		counts2[ev.Name]++
	}
	if counts2["power"] != 8 {
		t.Fatalf("power spans = %d, want 8", counts2["power"])
	}
	if counts2["cache-get"] != 0 {
		t.Fatalf("cache spans without a cache: %v", counts2)
	}
}

// TestCollectUntracedUnchanged guards the disabled fast path: a campaign
// with no tracer must behave identically (no spans, same results).
func TestCollectUntracedUnchanged(t *testing.T) {
	opt := smallCampaign()
	rs, err := Collect(context.Background(), gem5.Platform(gem5.V1), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Runs) != 8 {
		t.Fatalf("got %d runs, want 8", len(rs.Runs))
	}
}
