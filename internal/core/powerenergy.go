package core

import (
	"fmt"
	"sort"

	"gemstone/internal/power"
	"gemstone/internal/stats"
)

// BuildPowerModel trains the cluster's empirical power model on the
// sensored (hardware) run set — Experiments 3/4 plus box m of Fig. 1.
// The pool should be power.RestrictedPool() for gem5-compatible models.
func BuildPowerModel(hwRuns *RunSet, cluster string, opt power.BuildOptions) (*power.Model, error) {
	var obs []power.Observation
	for key, m := range hwRuns.Runs {
		if key.Cluster != cluster {
			continue
		}
		if m.PowerWatts <= 0 {
			return nil, fmt.Errorf("core: run %s/%s@%d has no power measurement (platform %s has no sensors?)",
				key.Workload, key.Cluster, key.FreqMHz, hwRuns.Platform)
		}
		obs = append(obs, PowerObservation(m))
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("core: no %s observations in %s", cluster, hwRuns.Platform)
	}
	// OLS is order-sensitive at ULP level; sort so the map iteration
	// above cannot wobble coefficients between identical runs.
	sort.Slice(obs, func(i, j int) bool {
		if obs[i].Workload != obs[j].Workload {
			return obs[i].Workload < obs[j].Workload
		}
		return obs[i].FreqMHz < obs[j].FreqMHz
	})
	return power.Build(cluster, obs, opt)
}

// PowerEnergyRow is one cluster group of Fig. 7: power and energy errors
// between the model applied to HW PMC data and the same model applied to
// gem5 statistics.
type PowerEnergyRow struct {
	ClusterLabel int
	Workloads    int
	PowerMAPE    float64
	PowerMPE     float64
	EnergyMAPE   float64
	EnergyMPE    float64
	// HWComponents / Gem5Components are the mean per-component power
	// breakdowns (the stacked bars of Fig. 7).
	HWComponents   []power.Component
	Gem5Components []power.Component
}

// PowerEnergyAnalysis is the Section VI result for one cluster/frequency.
type PowerEnergyAnalysis struct {
	Cluster string
	FreqMHz int
	// Overall errors across all compared workloads.
	PowerMAPE, PowerMPE   float64
	EnergyMAPE, EnergyMPE float64
	// Rows aggregates per workload-cluster label, ordered by label.
	Rows []PowerEnergyRow
}

// AnalyzePowerEnergy applies one power model to the hardware PMC data and
// to the gem5 statistics of every overlapping run at the given operating
// point, comparing the resulting power and energy — the paper's Fig. 7.
//
// Per Section VI, the gem5 estimate is compared against the HW-PMC
// estimate (not the raw sensor) so both sides share the model and the
// voltage-frequency lookup; what remains is exactly the effect of the
// performance-model errors.
func AnalyzePowerEnergy(model *power.Model, mapping power.Mapping,
	hw, sim *RunSet, cluster string, freqMHz int, labels map[string]int) (*PowerEnergyAnalysis, error) {

	var names []string
	for key := range hw.Runs {
		if key.Cluster == cluster && key.FreqMHz == freqMHz {
			if _, ok := sim.Runs[key]; ok {
				names = append(names, key.Workload)
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("core: no overlapping runs for %s at %d MHz", cluster, freqMHz)
	}
	sort.Strings(names)

	var recs []peRec
	for _, name := range names {
		key := RunKey{Workload: name, Cluster: cluster, FreqMHz: freqMHz}
		hm := hw.Runs[key]
		sm := sim.Runs[key]

		hwObs := PowerObservation(hm)
		g5Obs, err := mapping.ObservationFromGem5(name, cluster, freqMHz, hm.VoltageV, Gem5Stats(sm))
		if err != nil {
			return nil, err
		}
		hwP := model.Estimate(&hwObs)
		g5P := model.Estimate(&g5Obs)
		hwE := hwP * hm.Seconds
		g5E := g5P * sm.Seconds

		recs = append(recs, peRec{
			label:    labels[name],
			pePower:  stats.PercentError(hwP, g5P),
			peEnergy: stats.PercentError(hwE, g5E),
			hwComp:   model.Components(&hwObs),
			g5Comp:   model.Components(&g5Obs),
		})
	}

	an := &PowerEnergyAnalysis{Cluster: cluster, FreqMHz: freqMHz}
	var pPEs, ePEs []float64
	byLabel := map[int][]peRec{}
	for _, r := range recs {
		pPEs = append(pPEs, r.pePower)
		ePEs = append(ePEs, r.peEnergy)
		byLabel[r.label] = append(byLabel[r.label], r)
	}
	an.PowerMPE, an.PowerMAPE = stats.Mean(pPEs), meanAbs(pPEs)
	an.EnergyMPE, an.EnergyMAPE = stats.Mean(ePEs), meanAbs(ePEs)

	var lbls []int
	for l := range byLabel {
		lbls = append(lbls, l)
	}
	sort.Ints(lbls)
	for _, l := range lbls {
		group := byLabel[l]
		row := PowerEnergyRow{ClusterLabel: l, Workloads: len(group)}
		var pp, ee []float64
		for _, r := range group {
			pp = append(pp, r.pePower)
			ee = append(ee, r.peEnergy)
		}
		row.PowerMAPE, row.PowerMPE = meanAbs(pp), stats.Mean(pp)
		row.EnergyMAPE, row.EnergyMPE = meanAbs(ee), stats.Mean(ee)
		row.HWComponents = meanComponents(group, true)
		row.Gem5Components = meanComponents(group, false)
		an.Rows = append(an.Rows, row)
	}
	return an, nil
}

// peRec is one workload's power/energy comparison record.
type peRec struct {
	label             int
	pePower, peEnergy float64
	hwComp, g5Comp    []power.Component
}

func meanComponents(group []peRec, hw bool) []power.Component {
	if len(group) == 0 {
		return nil
	}
	pick := func(r peRec) []power.Component {
		if hw {
			return r.hwComp
		}
		return r.g5Comp
	}
	first := pick(group[0])
	out := make([]power.Component, len(first))
	for i := range first {
		out[i].Name = first[i].Name
	}
	for _, r := range group {
		comps := pick(r)
		for i := range comps {
			out[i].Watts += comps[i].Watts
		}
	}
	for i := range out {
		out[i].Watts /= float64(len(group))
	}
	return out
}
