package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gemstone/internal/platform"
)

// Campaign observability. A CollectObserver receives per-run lifecycle
// callbacks from the collector — the visibility into where campaign time
// goes that call-stack profiling gives the simulator itself. Observers
// must tolerate concurrent calls: runs complete on GOMAXPROCS workers.

// CollectObserver receives campaign lifecycle events.
type CollectObserver interface {
	// CollectStart fires once, before any run, with the campaign size.
	CollectStart(platformName string, totalJobs int)
	// RunStart fires when a worker begins simulating key (cache misses
	// only — cache hits never start a simulation).
	RunStart(key RunKey)
	// CacheHit fires when key is served from the run cache.
	CacheHit(key RunKey)
	// RunDone fires when a simulation finishes, with its wall time.
	RunDone(key RunKey, m platform.Measurement, simTime time.Duration)
	// RunError fires when a simulation fails.
	RunError(key RunKey, err error)
	// CollectDone fires once, after every worker has stopped, with the
	// campaign's aggregate statistics.
	CollectDone(stats CollectStats)
}

// CollectStats aggregates one campaign.
type CollectStats struct {
	// Platform names the collected platform.
	Platform string
	// Jobs is the campaign size (workloads x clusters x frequencies).
	Jobs int
	// Simulated counts runs that were actually executed.
	Simulated int
	// CacheHits counts runs served from the cache.
	CacheHits int
	// Errors counts failed runs.
	Errors int
	// Skipped counts runs abandoned after cancellation or a failure.
	Skipped int

	// PlanTime is the time spent expanding options into the job list and
	// fingerprinting clusters.
	PlanTime time.Duration
	// CacheTime is the cumulative time spent in cache lookups and stores,
	// summed across workers.
	CacheTime time.Duration
	// SimTime is the cumulative simulation time summed across workers; on
	// an N-worker campaign it exceeds wall time up to N-fold.
	SimTime time.Duration
	// WallTime is the start-to-finish campaign duration.
	WallTime time.Duration
}

// String renders a one-line campaign summary.
func (s CollectStats) String() string {
	return fmt.Sprintf(
		"%s: %d jobs, %d simulated, %d cache hits, %d errors, %d skipped | plan %v cache %v sim %v wall %v",
		s.Platform, s.Jobs, s.Simulated, s.CacheHits, s.Errors, s.Skipped,
		s.PlanTime.Round(time.Microsecond), s.CacheTime.Round(time.Microsecond),
		s.SimTime.Round(time.Millisecond), s.WallTime.Round(time.Millisecond))
}

// Metrics is a thread-safe CollectObserver accumulating counters and
// per-stage wall time across one or more campaigns.
type Metrics struct {
	mu        sync.Mutex
	stats     CollectStats
	platforms map[string]bool // every platform observed, for the label
	running   int
	lastDone  CollectStats
}

// NewMetrics returns an empty metrics accumulator.
func NewMetrics() *Metrics { return &Metrics{platforms: make(map[string]bool)} }

// CollectStart implements CollectObserver.
func (m *Metrics) CollectStart(platformName string, totalJobs int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.platforms == nil { // tolerate a zero-value Metrics
		m.platforms = make(map[string]bool)
	}
	m.platforms[platformName] = true
	m.stats.Platform = m.platformLabel()
	m.stats.Jobs += totalJobs
}

// platformLabel names the aggregate: the single platform observed, or the
// sorted list joined with "+" when campaigns spanned several (so Stats()
// never mislabels a multi-platform aggregate with the last platform).
// Callers hold m.mu.
func (m *Metrics) platformLabel() string {
	names := make([]string, 0, len(m.platforms))
	for n := range m.platforms {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

// Platforms returns the sorted list of platforms the accumulator has
// observed campaigns on.
func (m *Metrics) Platforms() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.platforms))
	for n := range m.platforms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunStart implements CollectObserver.
func (m *Metrics) RunStart(RunKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running++
}

// CacheHit implements CollectObserver.
func (m *Metrics) CacheHit(RunKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.CacheHits++
}

// RunDone implements CollectObserver.
func (m *Metrics) RunDone(_ RunKey, _ platform.Measurement, simTime time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	m.stats.Simulated++
	m.stats.SimTime += simTime
}

// RunError implements CollectObserver.
func (m *Metrics) RunError(_ RunKey, _ error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	m.stats.Errors++
}

// CollectDone implements CollectObserver.
func (m *Metrics) CollectDone(stats CollectStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Skipped += stats.Skipped
	m.stats.PlanTime += stats.PlanTime
	m.stats.CacheTime += stats.CacheTime
	m.stats.WallTime += stats.WallTime
	m.lastDone = stats
}

// Stats returns a snapshot of the accumulated statistics.
func (m *Metrics) Stats() CollectStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// LastCampaign returns the statistics of the most recently finished
// campaign (as passed to CollectDone).
func (m *Metrics) LastCampaign() CollectStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastDone
}

// InFlight reports runs currently simulating.
func (m *Metrics) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.running
}

// multiObserver fans callbacks out to several observers.
type multiObserver []CollectObserver

// MultiObserver combines observers; nil entries are dropped. It returns
// nil when none remain so the collector's nil fast path still applies.
func MultiObserver(obs ...CollectObserver) CollectObserver {
	var kept multiObserver
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	if len(kept) == 1 {
		return kept[0]
	}
	return kept
}

func (mo multiObserver) CollectStart(p string, n int) {
	for _, o := range mo {
		o.CollectStart(p, n)
	}
}
func (mo multiObserver) RunStart(k RunKey) {
	for _, o := range mo {
		o.RunStart(k)
	}
}
func (mo multiObserver) CacheHit(k RunKey) {
	for _, o := range mo {
		o.CacheHit(k)
	}
}
func (mo multiObserver) RunDone(k RunKey, m platform.Measurement, d time.Duration) {
	for _, o := range mo {
		o.RunDone(k, m, d)
	}
}
func (mo multiObserver) RunError(k RunKey, err error) {
	for _, o := range mo {
		o.RunError(k, err)
	}
}
func (mo multiObserver) CollectDone(s CollectStats) {
	for _, o := range mo {
		o.CollectDone(s)
	}
}
