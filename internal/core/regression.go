package core

import (
	"fmt"
	"sort"

	"gemstone/internal/stats"
)

// RegressionReport is the outcome of the Section IV-D stepwise regression
// of the model error onto event candidates.
type RegressionReport struct {
	// Selected holds candidate names in selection order — decreasing
	// marginal importance ("the single best event to predict the error").
	Selected []string
	R2       float64
	AdjR2    float64
	// N is the observation (workload) count.
	N int
}

// ErrorRegressionPMC regresses the execution-time error (t_hw − t_sim,
// seconds) onto the hardware PMC events, offering both totals and rates as
// candidates, exactly as Section IV-D describes.
func ErrorRegressionPMC(hw, sim *RunSet, cluster string, freqMHz int, opt stats.StepwiseOptions) (*RegressionReport, error) {
	X, names, events, err := pmcRateMatrix(hw, cluster, freqMHz)
	if err != nil {
		return nil, err
	}
	y, err := errorSeconds(hw, sim, cluster, freqMHz, names)
	if err != nil {
		return nil, err
	}

	var cands [][]float64
	var candNames []string
	for j, e := range events {
		rate := make([]float64, len(names))
		total := make([]float64, len(names))
		for i, name := range names {
			rate[i] = X[i][j]
			m := hw.Runs[RunKey{Workload: name, Cluster: cluster, FreqMHz: freqMHz}]
			total[i] = m.Sample.Value(e)
		}
		cands = append(cands, total, rate)
		candNames = append(candNames,
			fmt.Sprintf("%s (total)", e), fmt.Sprintf("%s (rate)", e))
	}
	return runStepwise(cands, candNames, y, opt)
}

// ErrorRegressionGem5 regresses the same error onto the gem5 statistics
// (totals and rates), the second half of the Section IV-D analysis.
func ErrorRegressionGem5(hw, sim *RunSet, cluster string, freqMHz int, opt stats.StepwiseOptions) (*RegressionReport, error) {
	var names []string
	for key := range sim.Runs {
		if key.Cluster == cluster && key.FreqMHz == freqMHz {
			names = append(names, key.Workload)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("core: no %s runs at %d MHz in %s", cluster, freqMHz, sim.Platform)
	}
	sort.Strings(names)
	y, err := errorSeconds(hw, sim, cluster, freqMHz, names)
	if err != nil {
		return nil, err
	}

	// Gather stat values per workload.
	statTotals := map[string][]float64{}
	secs := make([]float64, len(names))
	for i, name := range names {
		m := sim.Runs[RunKey{Workload: name, Cluster: cluster, FreqMHz: freqMHz}]
		sm := Gem5Stats(m)
		secs[i] = sm["sim_seconds"]
		for stat, v := range sm {
			s, ok := statTotals[stat]
			if !ok {
				s = make([]float64, len(names))
				statTotals[stat] = s
			}
			s[i] = v
		}
	}
	statNames := make([]string, 0, len(statTotals))
	for stat := range statTotals {
		statNames = append(statNames, stat)
	}
	sort.Strings(statNames)

	var cands [][]float64
	var candNames []string
	for _, stat := range statNames {
		if stat == "sim_seconds" {
			continue // trivially related to the response
		}
		total := statTotals[stat]
		if stats.StdDev(total) == 0 {
			continue
		}
		rate := make([]float64, len(names))
		for i := range names {
			if secs[i] > 0 {
				rate[i] = total[i] / secs[i]
			}
		}
		cands = append(cands, total, rate)
		candNames = append(candNames, stat+" (total)", stat+" (rate)")
	}
	return runStepwise(cands, candNames, y, opt)
}

func runStepwise(cands [][]float64, candNames []string, y []float64, opt stats.StepwiseOptions) (*RegressionReport, error) {
	if opt.PEnter == 0 {
		opt = stats.DefaultStepwiseOptions()
	}
	res, err := stats.Stepwise(cands, y, opt)
	if err != nil {
		return nil, err
	}
	rep := &RegressionReport{R2: res.Fit.R2, AdjR2: res.Fit.AdjR2, N: len(y)}
	for _, ci := range res.Selected {
		rep.Selected = append(rep.Selected, candNames[ci])
	}
	return rep, nil
}

// errorSeconds returns t_hw − t_sim per workload, aligned with names.
func errorSeconds(hw, sim *RunSet, cluster string, freqMHz int, names []string) ([]float64, error) {
	out := make([]float64, len(names))
	for i, name := range names {
		key := RunKey{Workload: name, Cluster: cluster, FreqMHz: freqMHz}
		hm, err := hw.Get(key)
		if err != nil {
			return nil, err
		}
		sm, err := sim.Get(key)
		if err != nil {
			return nil, err
		}
		out[i] = hm.Seconds - sm.Seconds
	}
	return out, nil
}
