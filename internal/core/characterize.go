package core

import (
	"fmt"

	"gemstone/internal/platform"
	"gemstone/internal/pmu"
	"gemstone/internal/workload"
)

// CharacterizePMCs reproduces the collection procedure of the paper's
// Experiments 1/3: real PMUs expose only a handful of programmable
// counters (six on the Cortex-A15), so covering the full event list
// requires re-running each workload once per counter group and merging
// the counts. The paper repeated its experiment to capture 68 events.
//
// On the simulated platform the repeated runs are bit-identical, which
// this function verifies: the cycle count (captured on every run through
// the dedicated counter) must agree across all groups — the same sanity
// check a real campaign performs to detect run-to-run drift.
func CharacterizePMCs(pl *platform.Platform, prof workload.Profile,
	cluster string, freqMHz int, events []pmu.Event) (map[pmu.Event]float64, error) {

	if len(events) == 0 {
		events = pmu.AllEvents()
	}
	groups := pmu.Plan(events)
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: no events to characterise")
	}
	counts := make(map[pmu.Event]float64, len(events))
	var cycles float64 = -1
	for gi, group := range groups {
		m, err := pl.Run(prof, cluster, freqMHz)
		if err != nil {
			return nil, fmt.Errorf("core: characterisation run %d: %w", gi+1, err)
		}
		// The dedicated cycle counter rides along on every run.
		c := m.Sample.Value(pmu.CPUCycles)
		if cycles < 0 {
			cycles = c
		} else if c != cycles {
			return nil, fmt.Errorf("core: run-to-run drift: cycle count %v != %v on group %d",
				c, cycles, gi+1)
		}
		for _, e := range group {
			counts[e] = m.Sample.Value(e)
		}
	}
	counts[pmu.CPUCycles] = cycles
	return counts, nil
}

// RunsRequired returns how many workload repetitions a characterisation of
// the given events needs (Experiment 1 bookkeeping).
func RunsRequired(events []pmu.Event) int {
	if len(events) == 0 {
		events = pmu.AllEvents()
	}
	return pmu.RunsNeeded(events)
}
